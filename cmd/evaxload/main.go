// Command evaxload is the load-generation harness for evaxd: it drives N
// concurrent synthetic clients replaying a benign/attack corpus against a
// running server at a target rate, then reports throughput and round-trip
// latency percentiles. With -benchjson the measurements are merged into
// BENCH_runner.json as the `serving` section, alongside evaxbench's scoring
// sections.
//
// Usage:
//
//	evaxload -record corpus.bin                  # record a replayable corpus
//	evaxload -addr 127.0.0.1:9317 -clients 8 -n 500 -rate 20000
//	evaxload -addr 127.0.0.1:9317 -corpus corpus.bin -benchjson BENCH_runner.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"evax/internal/benchjson"
	"evax/internal/dataset"
	"evax/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9317", "evaxd framing-protocol address")
		clients = flag.Int("clients", 4, "concurrent client connections")
		perConn = flag.Int("n", 250, "samples each client streams")
		rate    = flag.Float64("rate", 0, "target aggregate samples/sec (0 = full speed)")
		corpus  = flag.String("corpus", "", "replay this recorded corpus (default: generate a quick synthetic one)")
		record  = flag.String("record", "", "generate the synthetic corpus, write it here, and exit")
		seeds   = flag.Int("seeds", 2, "seeded instances per program when generating the synthetic corpus")
		jsonOut = flag.String("benchjson", "", "merge the `serving` section into this report file")

		swapBundle = flag.String("swap-bundle", "", "hot-swap this server-local candidate bundle mid-run and measure swap latency (live vaccination)")
		swapAfter  = flag.Float64("swap-after", 0.5, "fraction of total samples sent before the mid-run swap triggers")
	)
	flag.Parse()

	var (
		samples []dataset.Sample
		err     error
	)
	if *corpus != "" {
		samples, err = dataset.ReadCorpusFile(*corpus)
	} else {
		samples = syntheticCorpus(*seeds)
	}
	if err != nil {
		fatalf("evaxload: %v", err)
	}
	if len(samples) == 0 {
		fatalf("evaxload: corpus is empty")
	}
	if *record != "" {
		if err := dataset.WriteCorpusFile(*record, samples); err != nil {
			fatalf("evaxload: %v", err)
		}
		fmt.Printf("evaxload: recorded %d samples to %s\n", len(samples), *record)
		return
	}

	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		Addr:       *addr,
		Clients:    *clients,
		PerClient:  *perConn,
		Rate:       *rate,
		Samples:    samples,
		SwapBundle: *swapBundle,
		SwapAfter:  *swapAfter,
	})
	if err != nil {
		fatalf("evaxload: %v", err)
	}

	out, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr != nil {
		fatalf("evaxload: %v", jerr)
	}
	fmt.Printf("serving: %s\n", out)
	if *jsonOut != "" {
		sections := map[string]any{"serving": rep}
		if rep.Swap != nil {
			// The swap measurement is its own top-level section: swap latency
			// and during-swap tail latency are the zero-downtime numbers.
			sections["swap"] = rep.Swap
		}
		if err := benchjson.Merge(*jsonOut, sections); err != nil {
			fatalf("evaxload: %v", err)
		}
		fmt.Printf("evaxload: merged serving section into %s\n", *jsonOut)
	}
}

// syntheticCorpus builds a small benign+attack corpus from simulator runs,
// sized to exercise the server without minutes of generation.
func syntheticCorpus(seeds int) []dataset.Sample {
	opts := dataset.DefaultCorpusOptions()
	opts.Seeds = seeds
	opts.MaxInstr = 30_000
	return dataset.CollectAll(opts)
}

// fatalf reports a fatal error and exits nonzero.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
