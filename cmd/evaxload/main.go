// Command evaxload is the load-generation harness for evaxd: it drives N
// concurrent synthetic clients replaying a benign/attack corpus against a
// running server at a target rate, then reports throughput and round-trip
// latency percentiles. With -benchjson the measurements are merged into
// BENCH_runner.json as the `serving` section, alongside evaxbench's scoring
// sections.
//
// Usage:
//
//	evaxload -record corpus.bin                  # record a replayable corpus
//	evaxload -addr 127.0.0.1:9317 -clients 8 -n 500 -rate 20000
//	evaxload -addr 127.0.0.1:9317 -corpus corpus.bin -benchjson BENCH_runner.json
//	evaxload -addr 127.0.0.1:9317 -chaos 6       # chaos mode: deterministic fault injection
//	evaxload -fleet 4 -bundle patch.json         # fleet mode: digest-identical at 1/2/4 shards
//
// Chaos mode (-chaos N) swaps the synthetic dial loop for the resilient
// client (internal/serve/client): each client suffers N deterministic
// injected connection faults (kills, torn writes, truncations, stalls, read
// kills), survives them via session resume + replay, and the merged verdict
// digest is compared against a fault-free run — it must match bit-for-bit.
// The `chaos` section (reconnect/retry/breaker counters, recovery latency,
// digest match) merges into BENCH_runner.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"evax/internal/benchjson"
	"evax/internal/dataset"
	"evax/internal/fleet"
	"evax/internal/serve"
	"evax/internal/serve/client"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9317", "evaxd framing-protocol address")
		clients = flag.Int("clients", 4, "concurrent client connections")
		perConn = flag.Int("n", 250, "samples each client streams")
		rate    = flag.Float64("rate", 0, "target aggregate samples/sec (0 = full speed)")
		corpus  = flag.String("corpus", "", "replay this recorded corpus (default: generate a quick synthetic one)")
		record  = flag.String("record", "", "generate the synthetic corpus, write it here, and exit")
		seeds   = flag.Int("seeds", 2, "seeded instances per program when generating the synthetic corpus")
		jsonOut = flag.String("benchjson", "", "merge the `serving` section into this report file")

		swapBundle = flag.String("swap-bundle", "", "hot-swap this server-local candidate bundle mid-run and measure swap latency (live vaccination)")
		swapAfter  = flag.Float64("swap-after", 0.5, "fraction of total samples sent before the mid-run swap triggers")

		chaosFaults = flag.Int("chaos", 0, "chaos mode: inject this many deterministic connection faults per client via resilient clients, then compare the verdict digest against a fault-free run")
		chaosName   = flag.String("chaos-name", "evaxload-chaos", "schedule name seeding the deterministic fault plan (same name, same faults)")
		chaosStall  = flag.Duration("chaos-stall", 50*time.Millisecond, "pause stall-write faults hold before severing the connection")

		fleetMax    = flag.Int("fleet", 0, "fleet mode: self-host in-process fleets at shard counts 1,2,4,... up to this count, replay the corpus through each, and require a bit-identical merged digest at every shard count")
		fleetBundle = flag.String("bundle", "", "detection bundle fleet mode serves (required with -fleet)")
		fleetSeed   = flag.Int64("seed", 1, "fleet-mode tenant routing seed; the merged digest is identical for every seed")
	)
	flag.Parse()

	var (
		samples []dataset.Sample
		err     error
	)
	if *corpus != "" {
		samples, err = dataset.ReadCorpusFile(*corpus)
	} else {
		samples = syntheticCorpus(*seeds)
	}
	if err != nil {
		fatalf("evaxload: %v", err)
	}
	if len(samples) == 0 {
		fatalf("evaxload: corpus is empty")
	}
	if *record != "" {
		if err := dataset.WriteCorpusFile(*record, samples); err != nil {
			fatalf("evaxload: %v", err)
		}
		fmt.Printf("evaxload: recorded %d samples to %s\n", len(samples), *record)
		return
	}

	if *chaosFaults > 0 {
		runChaos(*addr, *clients, *perConn, *chaosFaults, *chaosName, *chaosStall, *jsonOut, samples)
		return
	}

	if *fleetMax > 0 {
		if *fleetBundle == "" {
			fatalf("evaxload: -fleet needs -bundle (train one with: evaxtrain -quick -bundle patch.json)")
		}
		// Tenants are the routing granularity: with too few, per-shard skew
		// is dominated by small-sample noise rather than ring balance, so
		// the sweep floors the tenant count well above the shard counts.
		runFleet(*fleetBundle, *fleetMax, max(*clients, 4**fleetMax), *fleetSeed, *jsonOut, samples)
		return
	}

	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		Addr:       *addr,
		Clients:    *clients,
		PerClient:  *perConn,
		Rate:       *rate,
		Samples:    samples,
		SwapBundle: *swapBundle,
		SwapAfter:  *swapAfter,
	})
	if err != nil {
		fatalf("evaxload: %v", err)
	}

	out, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr != nil {
		fatalf("evaxload: %v", jerr)
	}
	fmt.Printf("serving: %s\n", out)
	if *jsonOut != "" {
		sections := map[string]any{"serving": rep}
		if rep.Swap != nil {
			// The swap measurement is its own top-level section: swap latency
			// and during-swap tail latency are the zero-downtime numbers.
			sections["swap"] = rep.Swap
		}
		if err := benchjson.Merge(*jsonOut, sections); err != nil {
			fatalf("evaxload: %v", err)
		}
		fmt.Printf("evaxload: merged serving section into %s\n", *jsonOut)
	}
}

// chaosSection is the JSON shape of the chaos measurement: resilience
// counters, recovery latency, and the exactly-once invariant (the faulted
// run's merged verdict digest must equal the fault-free run's).
type chaosSection struct {
	Clients         int     `json:"clients"`
	PerClient       int     `json:"per_client"`
	FaultsPlanned   int     `json:"faults_planned"`
	FaultsFired     int     `json:"faults_fired"`
	Reconnects      uint64  `json:"reconnects"`
	Retries         uint64  `json:"retries"`
	BreakerOpens    uint64  `json:"breaker_opens"`
	Pings           uint64  `json:"pings"`
	Timeouts        uint64  `json:"timeouts"`
	Digest          string  `json:"digest"`
	BaselineDigest  string  `json:"baseline_digest"`
	DigestMatch     bool    `json:"digest_match"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`
	BaselineP50Ms   float64 `json:"baseline_p50_ms"`
	BaselineP99Ms   float64 `json:"baseline_p99_ms"`
	DigestMatchNote string  `json:"note,omitempty"`
}

// runChaos streams the corpus through resilient clients twice — fault-free,
// then through the deterministic fault plan — and reports whether chaos
// changed a single verdict bit.
func runChaos(addr string, clients, perConn, faults int, name string, stall time.Duration, jsonOut string, samples []dataset.Sample) {
	work := make([][]client.Sample, clients)
	for i := range work {
		rows := make([]client.Sample, perConn)
		for j := 0; j < perConn; j++ {
			s := &samples[(i*perConn+j)%len(samples)]
			rows[j] = client.Sample{Instructions: s.Instructions, Cycles: s.Cycles, Raw: s.Raw}
		}
		work[i] = rows
	}
	cfg := client.ChaosConfig{
		Addr:   addr,
		RawDim: len(samples[0].Raw),
		Name:   name,
		Stall:  stall,
	}
	base, err := client.RunChaos(cfg, work)
	if err != nil {
		fatalf("evaxload: fault-free baseline: %v", err)
	}
	cfg.FaultsPerClient = faults
	rep, err := client.RunChaos(cfg, work)
	if err != nil {
		fatalf("evaxload: chaos run: %v", err)
	}

	sec := chaosSection{
		Clients:        clients,
		PerClient:      perConn,
		FaultsPlanned:  clients * faults,
		FaultsFired:    len(rep.Events),
		Reconnects:     rep.Totals(func(s client.Stats) uint64 { return s.Reconnects }),
		Retries:        rep.Totals(func(s client.Stats) uint64 { return s.Retries }),
		BreakerOpens:   rep.Totals(func(s client.Stats) uint64 { return s.BreakerOpens }),
		Pings:          rep.Totals(func(s client.Stats) uint64 { return s.Pings }),
		Timeouts:       rep.Totals(func(s client.Stats) uint64 { return s.Timeouts }),
		Digest:         fmt.Sprintf("%016x", rep.Digest),
		BaselineDigest: fmt.Sprintf("%016x", base.Digest),
		DigestMatch:    rep.Digest == base.Digest && rep.Rows == base.Rows,
		LatencyP50Ms:   rep.LatencyP50Ms,
		LatencyP99Ms:   rep.LatencyP99Ms,
		BaselineP50Ms:  base.LatencyP50Ms,
		BaselineP99Ms:  base.LatencyP99Ms,
	}
	if !sec.DigestMatch {
		sec.DigestMatchNote = "verdicts diverged under faults: exactly-once accounting is broken"
	}
	out, jerr := json.MarshalIndent(sec, "", "  ")
	if jerr != nil {
		fatalf("evaxload: %v", jerr)
	}
	fmt.Printf("chaos: %s\n", out)
	if jsonOut != "" {
		if err := benchjson.Merge(jsonOut, map[string]any{"chaos": sec}); err != nil {
			fatalf("evaxload: %v", err)
		}
		fmt.Printf("evaxload: merged chaos section into %s\n", jsonOut)
	}
	if !sec.DigestMatch {
		os.Exit(1)
	}
}

// fleetSection is the JSON shape of the fleet measurement: per-shard-count
// replay runs and the golden invariant (one merged digest across every shard
// count).
type fleetSection struct {
	ShardCounts []int      `json:"shard_counts"`
	Tenants     int        `json:"tenants"`
	Rows        int        `json:"rows"`
	Seed        int64      `json:"seed"`
	Digest      string     `json:"digest"`
	DigestMatch bool       `json:"digest_match"`
	Runs        []fleetRun `json:"runs"`
	Note        string     `json:"note,omitempty"`
}

// fleetRun is one shard count's replay summary.
type fleetRun struct {
	Shards     int       `json:"shards"`
	Digest     string    `json:"digest"`
	Flagged    int       `json:"flagged"`
	Skew       float64   `json:"skew"`
	MeanRate   float64   `json:"mean_rate"`
	ShardRows  []int     `json:"shard_rows"`
	ShardRates []float64 `json:"shard_rates"`
}

// runFleet replays the corpus through self-hosted in-process fleets at shard
// counts 1, 2, 4, ... up to maxShards and requires the merged verdict digest
// to be bit-identical at every count — the fleet determinism gate. Nonzero
// exit on any divergence.
func runFleet(bundlePath string, maxShards, tenants int, seed int64, jsonOut string, samples []dataset.Sample) {
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		fatalf("evaxload: %v", err)
	}
	var counts []int
	for n := 1; n <= maxShards; n *= 2 {
		counts = append(counts, n)
	}

	sec := fleetSection{ShardCounts: counts, Rows: len(samples), Seed: seed, DigestMatch: true}
	for _, n := range counts {
		fl, err := fleet.New(data, fleet.Config{Shards: n, Serve: serve.DefaultConfig()})
		if err != nil {
			fatalf("evaxload: fleet %d shards: %v", n, err)
		}
		if err := fl.Start(); err != nil {
			fatalf("evaxload: fleet %d shards: %v", n, err)
		}
		rep, rerr := fl.Replay(samples, fleet.ReplayOptions{Tenants: tenants, Seed: seed})
		if _, derr := fl.Drain(); derr != nil {
			fatalf("evaxload: fleet %d shards drain: %v", n, derr)
		}
		if rerr != nil {
			fatalf("evaxload: fleet %d shards replay: %v", n, rerr)
		}
		sec.Tenants = rep.Tenants
		sec.Runs = append(sec.Runs, fleetRun{
			Shards:     n,
			Digest:     rep.HashHex(),
			Flagged:    rep.Flagged,
			Skew:       rep.Skew,
			MeanRate:   rep.MeanRate,
			ShardRows:  rep.ShardRows,
			ShardRates: rep.ShardRates,
		})
		if sec.Digest == "" {
			sec.Digest = rep.HashHex()
		} else if rep.HashHex() != sec.Digest {
			sec.DigestMatch = false
		}
	}
	if !sec.DigestMatch {
		sec.Note = "merged digest diverged across shard counts: fleet routing perturbed a verdict"
	}

	out, jerr := json.MarshalIndent(sec, "", "  ")
	if jerr != nil {
		fatalf("evaxload: %v", jerr)
	}
	fmt.Printf("fleet: %s\n", out)
	if jsonOut != "" {
		if err := benchjson.Merge(jsonOut, map[string]any{"fleet": sec}); err != nil {
			fatalf("evaxload: %v", err)
		}
		fmt.Printf("evaxload: merged fleet section into %s\n", jsonOut)
	}
	if !sec.DigestMatch {
		os.Exit(1)
	}
}

// syntheticCorpus builds a small benign+attack corpus from simulator runs,
// sized to exercise the server without minutes of generation.
func syntheticCorpus(seeds int) []dataset.Sample {
	opts := dataset.DefaultCorpusOptions()
	opts.Seeds = seeds
	opts.MaxInstr = 30_000
	return dataset.CollectAll(opts)
}

// fatalf reports a fatal error and exits nonzero.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
