// Command evaxd is the online detection daemon: it loads a deployed
// detection bundle (the vendor-distributed detector patch) into a versioned
// engine generation and serves the streaming scoring protocol —
// micro-batched, backpressured, observable — answering each raw counter
// window with a verdict frame. A localhost HTTP listener exposes /metrics,
// /score, /healthz and /debug/pprof. SIGINT or SIGTERM drains gracefully:
// accept stops, every accepted sample still receives its verdict, and the
// final metrics snapshot is persisted crash-safely.
//
// Live vaccination: with -watch, the daemon rescans a candidate intake
// directory and hot-swaps validated bundles with zero downtime — each
// candidate is canary-scored against the -canary golden corpus, gated on
// verdict agreement with the active generation, staged crash-safely under
// -state, atomically swapped, health-probed, and rolled back automatically
// if the probe fails. Connected clients never drop a frame: in-flight
// batches finish on the generation they started on. Operators can also
// drive swaps remotely via the protocol's admin frame (see serve.Admin).
//
// Usage:
//
//	evaxtrain -quick -bundle patch.json     # train and export a bundle
//	evaxd -bundle patch.json -addr 127.0.0.1:9317 -http 127.0.0.1:9318
//	evaxd -bundle patch.json -replay corpus.bin -seed 7   # deterministic replay
//	evaxd -bundle patch.json -watch updates/ -state gen-state/ -canary corpus.bin
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evax/internal/dataset"
	"evax/internal/engine"
	"evax/internal/serve"
)

func main() {
	var (
		bundle    = flag.String("bundle", "", "detection bundle (detector + normalizer) from evaxtrain -bundle")
		addr      = flag.String("addr", "127.0.0.1:9317", "framing-protocol listen address")
		httpAddr  = flag.String("http", "", "HTTP fallback listen address (/metrics, /score, /healthz, /debug/pprof); empty disables")
		batch     = flag.Int("batch", 32, "max samples per scoring micro-batch")
		linger    = flag.Duration("linger", 2*time.Millisecond, "max wait for a batch to fill after its first sample")
		queue     = flag.Int("queue", 1024, "per-shard ingest queue bound; samples beyond it are rejected, not buffered")
		shards    = flag.Int("shards", 1, "scoring lanes (connections are pinned round-robin)")
		shardID   = flag.Int("shard-id", 0, "fleet shard ID stamped on metrics snapshots and per-conn stats frames (0 for standalone)")
		window    = flag.Uint64("window", 1_000_000, "post-flag secure window in committed instructions")
		statsPath = flag.String("stats", "", "write the final metrics snapshot here on drain (crash-safe)")
		replay    = flag.String("replay", "", "replay a recorded corpus (dataset corpus file) instead of serving")
		seed      = flag.Int64("seed", 1, "replay scoring-order seed; the verdict digest is identical for every seed")
		jobs      = flag.Int("jobs", 0, "replay worker count (0 = GOMAXPROCS)")
		backend   = flag.String("backend", serve.BackendFloat, "scoring kernel: \"float\" (bit-identical to offline scoring) or \"quantized\" (int8 fixed-point, fastest)")
		watch     = flag.String("watch", "", "rescan this directory for candidate bundles and hot-swap validated ones (live vaccination)")
		watchTick = flag.Duration("watch-every", 2*time.Second, "candidate rescan interval for -watch")
		stateDir  = flag.String("state", "", "generation state directory: crash-safe staging of the active/fallback bundle pair")
		canary    = flag.String("canary", "", "golden replay corpus candidates are canary-scored against before going live")
		agreement = flag.Float64("agreement", engine.DefaultAgreementGate, "minimum canary verdict agreement a candidate must reach against the active generation")

		idle       = flag.Duration("idle", serve.DefaultConfig().IdleTimeout, "idle read deadline per frame; a conn silent this long is reaped (0 disables)")
		sessWindow = flag.Int("session-window", serve.DefaultConfig().SessionWindow, "per-session dedup ring size: how many in-flight sequences reconnect replay can span")
		sessIdle   = flag.Duration("session-idle", serve.DefaultConfig().SessionIdle, "how long a detached session awaits resume before being reaped")
	)
	flag.Parse()

	// Validate the backend selector here, where a typo gets a usage message,
	// not a compile error from deep inside generation construction.
	if !engine.ValidBackend(*backend) {
		fatalf("evaxd: unknown -backend %q (want %q or %q)", *backend, serve.BackendFloat, serve.BackendQuantized)
	}
	if *bundle == "" && !engine.HasState(*stateDir) {
		fatalf("evaxd: -bundle is required (train one with: evaxtrain -quick -bundle patch.json)")
	}
	if *agreement <= 0 || *agreement > 1 {
		fatalf("evaxd: -agreement must be in (0, 1], got %g", *agreement)
	}

	mcfg := engine.ManagerConfig{
		Dir:           *stateDir,
		Backend:       *backend,
		AgreementGate: *agreement,
	}
	if *canary != "" {
		corpus, err := dataset.ReadCorpusFile(*canary)
		if err != nil {
			fatalf("evaxd: canary corpus: %v", err)
		}
		mcfg.Corpus = corpus
	}

	// Recovery order: a generation ledger under -state wins (it is what was
	// actually serving when the last process died — possibly a later
	// generation than -bundle); otherwise adopt -bundle as generation one.
	var mgr *engine.Manager
	if engine.HasState(*stateDir) {
		var err error
		mgr, err = engine.Open(mcfg)
		if err != nil {
			if *bundle == "" {
				fatalf("evaxd: recovering generation state: %v", err)
			}
			fmt.Fprintf(os.Stderr, "evaxd: generation state unrecoverable (%v); falling back to -bundle\n", err)
		}
	}
	if mgr == nil {
		gen, err := engine.Load(*bundle, *backend)
		if err != nil {
			fatalf("evaxd: %v", err)
		}
		mgr, err = engine.NewManager(gen, mcfg)
		if err != nil {
			fatalf("evaxd: %v", err)
		}
	}
	active := mgr.Active()
	fmt.Printf("evaxd: bundle %s hash=%s backend=%s rawDim=%d\n",
		displayPath(active.Path(), *bundle), active.HashHex(), active.Backend(), active.RawDim())

	if *replay != "" {
		samples, err := dataset.ReadCorpusFile(*replay)
		if err != nil {
			fatalf("evaxd: %v", err)
		}
		start := time.Now()
		res, err := serve.ReplayGeneration(active, samples, *seed, *jobs)
		if err != nil {
			fatalf("evaxd: %v", err)
		}
		if d := time.Since(start).Seconds(); d > 0 {
			res.MeanRate = float64(res.Rows) / d
		}
		fmt.Printf("replay: rows=%d flagged=%d seed=%d hash=%s (%.0f rows/sec)\n",
			res.Rows, res.Flagged, res.Seed, res.HashHex(), res.MeanRate)
		return
	}

	cfg := serve.DefaultConfig()
	cfg.Addr = *addr
	cfg.HTTPAddr = *httpAddr
	cfg.MaxBatch = *batch
	cfg.Linger = *linger
	cfg.QueueBound = *queue
	cfg.Shards = *shards
	cfg.ShardID = *shardID
	cfg.SecureWindow = *window
	cfg.StatsPath = *statsPath
	cfg.Backend = *backend
	cfg.IdleTimeout = *idle
	cfg.SessionWindow = *sessWindow
	cfg.SessionIdle = *sessIdle

	srv, err := serve.NewFromManager(mgr, cfg)
	if err != nil {
		fatalf("evaxd: %v", err)
	}
	if err := srv.Start(); err != nil {
		fatalf("evaxd: %v", err)
	}
	fmt.Printf("evaxd: serving %d-counter windows on %s", active.RawDim(), srv.Addr())
	if h := srv.HTTPAddr(); h != "" {
		fmt.Printf(" (http %s)", h)
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *watch != "" {
		fmt.Printf("evaxd: watching %s for candidate bundles (every %s, gate %.4f)\n",
			*watch, *watchTick, *agreement)
		watchLoop(ctx, mgr, *watch, *watchTick)
	} else {
		<-ctx.Done()
	}

	fmt.Println("evaxd: draining...")
	snap, err := srv.Drain()
	if err != nil {
		fatalf("evaxd: drain: %v", err)
	}
	out, jerr := json.MarshalIndent(snap, "", "  ")
	if jerr == nil {
		fmt.Printf("evaxd: drained: %s\n", out)
	}
}

// watchLoop rescans the candidate intake directory until the context ends,
// reporting every promotion decision. Deterministic: candidates are taken in
// sorted filename order and each content hash is decided exactly once.
func watchLoop(ctx context.Context, mgr *engine.Manager, dir string, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		reports, err := mgr.Rescan(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaxd: rescan: %v\n", err)
			continue
		}
		for _, rep := range reports {
			out, err := json.Marshal(rep)
			if err != nil {
				continue
			}
			fmt.Printf("evaxd: candidate: %s\n", out)
		}
	}
}

// displayPath prefers the generation's recorded source path, falling back to
// the -bundle flag (recovered generations keep their staged path).
func displayPath(genPath, flagPath string) string {
	if genPath != "" {
		return genPath
	}
	return flagPath
}

// fatalf reports a fatal error and exits nonzero.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
