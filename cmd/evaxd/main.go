// Command evaxd is the online detection daemon: it loads a deployed
// detection bundle (the vendor-distributed detector patch) and serves the
// streaming scoring protocol — micro-batched, backpressured, observable —
// answering each raw counter window with a verdict frame. A localhost HTTP
// listener exposes /metrics, /score, /healthz and /debug/pprof. SIGINT or
// SIGTERM drains gracefully: accept stops, every accepted sample still
// receives its verdict, and the final metrics snapshot is persisted
// crash-safely.
//
// Usage:
//
//	evaxtrain -quick -bundle patch.json     # train and export a bundle
//	evaxd -bundle patch.json -addr 127.0.0.1:9317 -http 127.0.0.1:9318
//	evaxd -bundle patch.json -replay corpus.bin -seed 7   # deterministic replay
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/serve"
	"evax/internal/sim"
)

func main() {
	var (
		bundle    = flag.String("bundle", "", "detection bundle (detector + normalizer) from evaxtrain -bundle")
		addr      = flag.String("addr", "127.0.0.1:9317", "framing-protocol listen address")
		httpAddr  = flag.String("http", "", "HTTP fallback listen address (/metrics, /score, /healthz, /debug/pprof); empty disables")
		batch     = flag.Int("batch", 32, "max samples per scoring micro-batch")
		linger    = flag.Duration("linger", 2*time.Millisecond, "max wait for a batch to fill after its first sample")
		queue     = flag.Int("queue", 1024, "per-shard ingest queue bound; samples beyond it are rejected, not buffered")
		shards    = flag.Int("shards", 1, "scoring lanes (connections are pinned round-robin)")
		window    = flag.Uint64("window", 1_000_000, "post-flag secure window in committed instructions")
		statsPath = flag.String("stats", "", "write the final metrics snapshot here on drain (crash-safe)")
		replay    = flag.String("replay", "", "replay a recorded corpus (dataset corpus file) instead of serving")
		seed      = flag.Int64("seed", 1, "replay scoring-order seed; the verdict digest is identical for every seed")
		jobs      = flag.Int("jobs", 0, "replay worker count (0 = GOMAXPROCS)")
		backend   = flag.String("backend", serve.BackendFloat, "scoring kernel: \"float\" (bit-identical to offline scoring) or \"quantized\" (int8 fixed-point, fastest)")
	)
	flag.Parse()

	if *bundle == "" {
		fatalf("evaxd: -bundle is required (train one with: evaxtrain -quick -bundle patch.json)")
	}
	fl, err := defense.LoadBundle(*bundle)
	if err != nil {
		fatalf("evaxd: %v", err)
	}
	rawDim := sim.CounterCatalog().Len()

	if *replay != "" {
		samples, err := dataset.ReadCorpusFile(*replay)
		if err != nil {
			fatalf("evaxd: %v", err)
		}
		start := time.Now()
		res, err := serve.Replay(fl.Det, fl.DS, samples, *seed, *jobs, *backend)
		if err != nil {
			fatalf("evaxd: %v", err)
		}
		if d := time.Since(start).Seconds(); d > 0 {
			res.MeanRate = float64(res.Rows) / d
		}
		fmt.Printf("replay: rows=%d flagged=%d seed=%d hash=%016x (%.0f rows/sec)\n",
			res.Rows, res.Flagged, res.Seed, res.Hash, res.MeanRate)
		return
	}

	cfg := serve.DefaultConfig()
	cfg.Addr = *addr
	cfg.HTTPAddr = *httpAddr
	cfg.MaxBatch = *batch
	cfg.Linger = *linger
	cfg.QueueBound = *queue
	cfg.Shards = *shards
	cfg.SecureWindow = *window
	cfg.StatsPath = *statsPath
	cfg.Backend = *backend

	srv, err := serve.New(fl.Det, fl.DS, rawDim, cfg)
	if err != nil {
		fatalf("evaxd: %v", err)
	}
	if err := srv.Start(); err != nil {
		fatalf("evaxd: %v", err)
	}
	fmt.Printf("evaxd: serving %d-counter windows on %s", rawDim, srv.Addr())
	if h := srv.HTTPAddr(); h != "" {
		fmt.Printf(" (http %s)", h)
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("evaxd: draining...")
	snap, err := srv.Drain()
	if err != nil {
		fatalf("evaxd: drain: %v", err)
	}
	out, jerr := json.MarshalIndent(snap, "", "  ")
	if jerr == nil {
		fmt.Printf("evaxd: drained: %s\n", out)
	}
}

// fatalf reports a fatal error and exits nonzero.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
