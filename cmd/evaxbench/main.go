// Command evaxbench regenerates the paper's evaluation: every table and
// figure has a driver in internal/experiments, and this command runs them
// and prints the corresponding rows and series. EXPERIMENTS.md records a
// reference run next to the paper's numbers.
//
// Usage:
//
//	evaxbench                # run everything at the default scale
//	evaxbench -exp fig16     # one experiment
//	evaxbench -quick         # reduced scale (the test configuration)
//	evaxbench -jobs 8        # fan simulation campaigns out over 8 workers
//	evaxbench -benchjson BENCH_runner.json   # runner speedup + equivalence report
//	evaxbench -resume ckpt/   # journal campaigns into ckpt/; rerun to resume a killed run
//	evaxbench -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"evax/internal/benchjson"
	"evax/internal/checkpoint"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/experiments"
	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/kernel"
	"evax/internal/runner"
)

var experimentIDs = []string{
	"table1", "table2", "fig6", "fig7", "fig9-11", "fig14", "fig15",
	"fig16", "fig17", "fig18", "fig19", "fig20", "zeroday",
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id or \"all\" (see -list)")
		quick     = flag.Bool("quick", false, "reduced scale (the test configuration)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		jobs      = flag.Int("jobs", 0, "worker count for simulation campaigns (0 = GOMAXPROCS, 1 = sequential)")
		benchJSON = flag.String("benchjson", "", "measure parallel corpus generation against -jobs 1, write a JSON report to this file, and exit")
		resumeDir = flag.String("resume", "", "directory for checkpoint journals; a killed run restarted with the same flags resumes its campaigns bit-identically")
	)
	flag.Parse()

	if *list {
		for _, id := range experimentIDs {
			fmt.Println(id)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *jobs, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.DefaultLabOptions()
	if *quick {
		opts = experiments.QuickLabOptions()
	}
	opts.Jobs = *jobs

	ids := experimentIDs
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	needLab := false
	for _, id := range ids {
		if id != "table2" {
			needLab = true
		}
	}

	if *resumeDir != "" {
		if err := os.MkdirAll(*resumeDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var lab *experiments.Lab
	if needLab {
		workers := opts.Jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("building lab (corpus + AM-GAN + detectors) with %d worker(s)...\n", workers)
		t0, s0 := time.Now(), runner.Snapshot()
		l, err := buildLab(opts, *resumeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lab = l
		reportThroughput("lab", time.Since(t0), runner.Snapshot().JobsRun-s0.JobsRun)
		fmt.Printf("lab ready: %s\n\n", lab.DS.Stats())
	}

	for _, id := range ids {
		t0, s0 := time.Now(), runner.Snapshot()
		out, err := run(id, lab, *resumeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		reportThroughput(id, time.Since(t0), runner.Snapshot().JobsRun-s0.JobsRun)
		fmt.Println()
	}
}

// buildLab constructs the lab, journaling the corpus campaign under
// resumeDir when set so a killed run resumes instead of restarting.
func buildLab(opts experiments.LabOptions, resumeDir string) (*experiments.Lab, error) {
	if resumeDir == "" {
		return experiments.NewLab(opts), nil
	}
	j, err := openJournal(resumeDir, "corpus", opts.Corpus.CampaignKey())
	if err != nil {
		return nil, err
	}
	//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
	defer j.Close()
	return experiments.NewLabCtx(context.Background(), opts, j)
}

// openJournal opens resumeDir/<name>.journal keyed to the campaign,
// reporting how much of the campaign is already banked.
func openJournal(resumeDir, name, key string) (*checkpoint.Journal, error) {
	path := filepath.Join(resumeDir, name+".journal")
	j, err := checkpoint.Open(path, key)
	if errors.Is(err, checkpoint.ErrCampaignMismatch) {
		return nil, fmt.Errorf("%w\n(the journal at %s was written by a run with different flags; rerun with matching flags or delete it)", err, path)
	}
	if err != nil {
		return nil, err
	}
	if j.Len() > 0 {
		fmt.Printf("resuming %s campaign from %s (%d jobs already journaled)\n", name, path, j.Len())
	}
	return j, nil
}

// reportThroughput prints one stage's wall-clock and per-job throughput.
func reportThroughput(stage string, wall time.Duration, jobs uint64) {
	if jobs == 0 {
		fmt.Printf("[%s completed in %v]\n", stage, wall.Round(time.Millisecond))
		return
	}
	fmt.Printf("[%s completed in %v: %d jobs, %.1f jobs/sec]\n",
		stage, wall.Round(time.Millisecond), jobs, float64(jobs)/wall.Seconds())
}

// benchReport is the BENCH_runner.json schema: wall-clock and throughput of
// corpus generation sequentially and fanned out, plus the equivalence bit
// (parallel output must be byte-identical to -jobs 1) and the columnar
// feature-path comparison.
type benchReport struct {
	GOMAXPROCS    int               `json:"gomaxprocs"`
	Jobs          int               `json:"jobs"`
	CorpusSamples int               `json:"corpus_samples"`
	JobsRun       uint64            `json:"jobs_run"`
	SeqMillis     float64           `json:"seq_wall_ms"`
	ParMillis     float64           `json:"par_wall_ms"`
	SeqJobsPerSec float64           `json:"seq_jobs_per_sec"`
	ParJobsPerSec float64           `json:"par_jobs_per_sec"`
	Speedup       float64           `json:"speedup"`
	Identical     bool              `json:"identical"`
	FeaturePath   featurePathReport `json:"featurepath"`
	Kernel        kernelReport      `json:"kernel"`
}

// featurePathReport compares the per-window scoring path before and after
// the columnar refactor: "old" allocates the derived vector and the feature
// vector per sample (ExpandDerived + Vector), "new" runs the compiled
// Expander and the detector's gather scratch with zero steady-state
// allocations. Scores must agree bit-for-bit.
type featurePathReport struct {
	Samples           int     `json:"samples"`
	OldSamplesPerSec  float64 `json:"old_samples_per_sec"`
	NewSamplesPerSec  float64 `json:"new_samples_per_sec"`
	OldBytesPerSample float64 `json:"old_bytes_per_sample"`
	NewBytesPerSample float64 `json:"new_bytes_per_sample"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"identical"`
}

// kernelReport compares the three generations of the scoring path on a
// trained detector: "legacy" is the pre-kernel pipeline (full derived
// expansion, in-place normalization, feature gather, network forward),
// "fused" is the compiled float kernel (one pass over only the gathered
// slots, bit-identical to legacy), and "quantized" is the int8 fixed-point
// kernel (the paper's hardware arithmetic). All three run single-threaded,
// so samples/sec is per core. Agreement is the fraction of windows where the
// quantized verdict matches the fused one at their independently tuned
// thresholds.
type kernelReport struct {
	Samples             int     `json:"samples"`
	LegacyNsPerSample   float64 `json:"legacy_ns_per_sample"`
	FusedNsPerSample    float64 `json:"fused_ns_per_sample"`
	QuantNsPerSample    float64 `json:"quantized_ns_per_sample"`
	LegacySamplesPerSec float64 `json:"legacy_samples_per_sec_core"`
	FusedSamplesPerSec  float64 `json:"fused_samples_per_sec_core"`
	QuantSamplesPerSec  float64 `json:"quantized_samples_per_sec_core"`
	FusedSpeedup        float64 `json:"fused_speedup"`
	QuantSpeedup        float64 `json:"quantized_speedup"`
	FusedIdentical      bool    `json:"fused_identical"`
	AgreementRate       float64 `json:"quantized_agreement_rate"`
}

// benchKernel trains the EVAX detector on the corpus, compiles the fused
// kernels, and measures all three scoring paths over the raw windows.
func benchKernel(ds *dataset.Dataset) (kernelReport, error) {
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	det := detect.NewPerceptron(1, fs)
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	topts := detect.DefaultTrainOptions()
	topts.Epochs = 4
	det.Train(ds, idx, topts)
	var benignIdx []int
	for i := range ds.Samples {
		if !ds.Samples[i].Malicious {
			benignIdx = append(benignIdx, i)
		}
	}
	benign := make([]float64, len(benignIdx))
	det.ScoreBatch(ds, benignIdx, benign)
	det.TuneThresholdForFPR(benign, 0.05)

	kern, err := detect.CompileScorer(det, ds.Maxima())
	if err != nil {
		return kernelReport{}, fmt.Errorf("evaxbench: compiling fused kernel: %w", err)
	}
	q, err := kernel.Quantize(kern)
	if err != nil {
		return kernelReport{}, fmt.Errorf("evaxbench: quantizing kernel: %w", err)
	}
	// Re-tune the quantized operating point on its own benign scores: the
	// fixed-point score distribution shifts slightly against float.
	qBenign := make([]float64, len(benignIdx))
	for k, i := range benignIdx {
		s := &ds.Samples[i]
		qBenign[k] = q.ScoreRaw(s.Raw, s.Instructions, s.Cycles)
	}
	q.SetThreshold(detect.ThresholdForFPR(qBenign, 0.05))

	// Stage the corpus contiguously — the shard-flush shape.
	n := len(ds.Samples)
	d := len(ds.Samples[0].Raw)
	raw := make([]float64, n*d)
	instr := make([]uint64, n)
	cycles := make([]uint64, n)
	for i := range ds.Samples {
		s := &ds.Samples[i]
		copy(raw[i*d:(i+1)*d], s.Raw)
		instr[i] = s.Instructions
		cycles[i] = s.Cycles
	}
	rounds := 1 + 20_000/n

	time3 := func(score func()) (wall time.Duration) {
		runtime.GC()
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			score()
		}
		return time.Since(t0)
	}

	// Legacy: the pre-kernel per-window pipeline over the whole derived
	// space, through the detector's gather scratch and network forward.
	exp := hpc.NewExpander(d)
	derived := make([]float64, exp.Dim())
	vec := make([]float64, det.Plan.Dim())
	legacyScores := make([]float64, n)
	legacyWall := time3(func() {
		for i := 0; i < n; i++ {
			exp.ExpandInto(derived, hpc.Sample{Values: raw[i*d : (i+1)*d], Instructions: instr[i], Cycles: cycles[i]})
			ds.NormalizeInPlace(derived)
			det.Plan.GatherVector(vec, derived)
			legacyScores[i] = det.ScoreVector(vec)
		}
	})

	fusedScores := make([]float64, n)
	fusedWall := time3(func() { kern.ScoreRawRows(raw, instr, cycles, fusedScores) })

	quantScores := make([]float64, n)
	quantWall := time3(func() { q.ScoreRawRows(raw, instr, cycles, quantScores) })

	identical := true
	for i := range legacyScores {
		if math.Float64bits(legacyScores[i]) != math.Float64bits(fusedScores[i]) {
			identical = false
			break
		}
	}
	agree := 0
	for i := 0; i < n; i++ {
		fusedFlag := fusedScores[i] >= kern.Threshold()
		quantFlag := q.FlagRaw(raw[i*d:(i+1)*d], instr[i], cycles[i])
		if fusedFlag == quantFlag {
			agree++
		}
	}

	total := float64(rounds * n)
	r := kernelReport{
		Samples:             n,
		LegacyNsPerSample:   float64(legacyWall.Nanoseconds()) / total,
		FusedNsPerSample:    float64(fusedWall.Nanoseconds()) / total,
		QuantNsPerSample:    float64(quantWall.Nanoseconds()) / total,
		LegacySamplesPerSec: total / legacyWall.Seconds(),
		FusedSamplesPerSec:  total / fusedWall.Seconds(),
		QuantSamplesPerSec:  total / quantWall.Seconds(),
		FusedSpeedup:        legacyWall.Seconds() / fusedWall.Seconds(),
		QuantSpeedup:        legacyWall.Seconds() / quantWall.Seconds(),
		FusedIdentical:      identical,
		AgreementRate:       float64(agree) / float64(n),
	}
	if !identical {
		return r, fmt.Errorf("evaxbench: fused kernel diverged from the legacy scoring path")
	}
	if r.AgreementRate < 0.995 {
		return r, fmt.Errorf("evaxbench: quantized verdict agreement %.4f below the 99.5%% gate", r.AgreementRate)
	}
	return r, nil
}

// benchFeaturePath scores every corpus window through both per-window
// paths, measuring throughput and allocation per sample. The returned
// dataset (maxima + normalized samples) feeds benchKernel.
func benchFeaturePath(samples []dataset.Sample) (featurePathReport, *dataset.Dataset, error) {
	ds := dataset.New(samples)
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	det := detect.NewPerceptron(1, fs)

	// Rebuild the hpc windows the samples came from.
	windows := make([]hpc.Sample, len(ds.Samples))
	for i := range ds.Samples {
		windows[i] = hpc.Sample{
			Values:       ds.Samples[i].Raw,
			Instructions: ds.Samples[i].Instructions,
			Cycles:       ds.Samples[i].Cycles,
		}
	}
	// Iterate enough rounds for stable wall-clock on quick corpora.
	rounds := 1 + 20_000/len(windows)

	measure := func(score func(hpc.Sample) float64) (scores []float64, perSec, bytesPer float64) {
		scores = make([]float64, len(windows))
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			for i := range windows {
				scores[i] = score(windows[i])
			}
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		n := float64(rounds * len(windows))
		return scores, n / wall.Seconds(), float64(ms1.TotalAlloc-ms0.TotalAlloc) / n
	}

	derivedDim := hpc.DerivedSpaceSize(len(windows[0].Values))
	oldScores, oldPerSec, oldBytes := measure(func(s hpc.Sample) float64 {
		derived := hpc.ExpandDerived(s) // allocates per sample
		ds.NormalizeInPlace(derived)
		return det.ScoreVector(det.Plan.Vector(derived)) // allocates again
	})

	exp := hpc.NewExpander(len(windows[0].Values))
	scratch := make([]float64, derivedDim)
	newScores, newPerSec, newBytes := measure(func(s hpc.Sample) float64 {
		exp.ExpandInto(scratch, s)
		ds.NormalizeInPlace(scratch)
		return det.Score(scratch)
	})

	identical := true
	for i := range oldScores {
		if math.Float64bits(oldScores[i]) != math.Float64bits(newScores[i]) {
			identical = false
			break
		}
	}
	r := featurePathReport{
		Samples:           len(windows),
		OldSamplesPerSec:  oldPerSec,
		NewSamplesPerSec:  newPerSec,
		OldBytesPerSample: oldBytes,
		NewBytesPerSample: newBytes,
		Speedup:           newPerSec / oldPerSec,
		Identical:         identical,
	}
	if !identical {
		return r, ds, fmt.Errorf("evaxbench: columnar feature path diverged from the allocating reference")
	}
	return r, ds, nil
}

// writeBenchJSON times corpus generation at -jobs 1 versus the requested
// worker count, checks bit-for-bit equivalence, and writes the report.
func writeBenchJSON(path string, jobs int, quick bool) error {
	if jobs <= 1 {
		jobs = runtime.GOMAXPROCS(0)
		if jobs < 4 {
			jobs = 4 // measure real fan-out even on small hosts
		}
	}
	o := dataset.DefaultCorpusOptions()
	if quick {
		o.Seeds = 2
		o.MaxInstr = 40_000
	}

	o.Jobs = 1
	t0, s0 := time.Now(), runner.Snapshot()
	seq := dataset.CollectAll(o)
	seqWall := time.Since(t0)
	perRun := runner.Snapshot().JobsRun - s0.JobsRun

	o.Jobs = jobs
	t1 := time.Now()
	par := dataset.CollectAll(o)
	parWall := time.Since(t1)

	// Equivalence first: benchFeaturePath normalizes par in place.
	identical := reflect.DeepEqual(seq, par)
	fp, fpDS, fpErr := benchFeaturePath(par)
	kr, krErr := benchKernel(fpDS)

	r := benchReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Jobs:          jobs,
		CorpusSamples: len(seq),
		JobsRun:       perRun,
		SeqMillis:     float64(seqWall.Microseconds()) / 1000,
		ParMillis:     float64(parWall.Microseconds()) / 1000,
		SeqJobsPerSec: float64(perRun) / seqWall.Seconds(),
		ParJobsPerSec: float64(perRun) / parWall.Seconds(),
		Speedup:       seqWall.Seconds() / parWall.Seconds(),
		Identical:     identical,
		FeaturePath:   fp,
		Kernel:        kr,
	}
	// Merge rather than overwrite: other tools (evaxload's `serving`
	// section) contribute their own keys to the same report file.
	if err := benchjson.Merge(path, r); err != nil {
		return fmt.Errorf("writing bench report: %w", err)
	}
	fmt.Printf("runner bench: %d jobs  seq=%v  par(%d)=%v  speedup=%.2fx  identical=%v -> %s\n",
		r.JobsRun, seqWall.Round(time.Millisecond), jobs, parWall.Round(time.Millisecond), r.Speedup, r.Identical, path)
	fmt.Printf("feature path: %d windows  old=%.0f/s (%.0f B/sample)  new=%.0f/s (%.0f B/sample)  speedup=%.2fx  identical=%v\n",
		fp.Samples, fp.OldSamplesPerSec, fp.OldBytesPerSample, fp.NewSamplesPerSec, fp.NewBytesPerSample, fp.Speedup, fp.Identical)
	fmt.Printf("kernel: %d windows  legacy=%.0f/s (%.0f ns)  fused=%.0f/s (%.0f ns, %.2fx, identical=%v)  quantized=%.0f/s (%.0f ns, %.2fx, agreement=%.4f)\n",
		kr.Samples, kr.LegacySamplesPerSec, kr.LegacyNsPerSample,
		kr.FusedSamplesPerSec, kr.FusedNsPerSample, kr.FusedSpeedup, kr.FusedIdentical,
		kr.QuantSamplesPerSec, kr.QuantNsPerSample, kr.QuantSpeedup, kr.AgreementRate)
	if !r.Identical {
		return fmt.Errorf("evaxbench: parallel corpus diverged from sequential reference")
	}
	if fpErr != nil {
		return fpErr
	}
	return krErr
}

func run(id string, lab *experiments.Lab, resumeDir string) (fmt.Stringer, error) {
	switch id {
	case "table1":
		return experiments.TableI(lab), nil
	case "table2":
		return experiments.TableII(), nil
	case "fig6":
		return experiments.Figure6(lab), nil
	case "fig7":
		return experiments.Figure7(lab), nil
	case "fig9-11", "fig9", "fig10", "fig11":
		return experiments.Figure9to11(lab), nil
	case "fig14":
		return experiments.Figure14(lab), nil
	case "fig15":
		return experiments.Figure15(lab), nil
	case "fig16":
		return experiments.Figure16(lab), nil
	case "fig17":
		const seedsPerTool = 6
		if resumeDir == "" {
			return experiments.Figure17(lab, seedsPerTool), nil
		}
		j, err := openJournal(resumeDir, "fig17", lab.Figure17Key(seedsPerTool))
		if err != nil {
			return nil, err
		}
		//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
		defer j.Close()
		res, err := experiments.Figure17Ctx(context.Background(), lab, seedsPerTool, j)
		if err != nil {
			return nil, err
		}
		return res, nil
	case "fig18":
		return experiments.Figure18(lab), nil
	case "fig19":
		if resumeDir == "" {
			return experiments.Figure19(lab, nil), nil // all folds
		}
		j, err := openJournal(resumeDir, "fig19", lab.Figure19Key(nil))
		if err != nil {
			return nil, err
		}
		//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
		defer j.Close()
		res, err := experiments.Figure19Ctx(context.Background(), lab, nil, j)
		if err != nil {
			return nil, err
		}
		return res, nil
	case "fig20":
		return experiments.Figure20(lab, []int{1, 16, 32}), nil
	case "zeroday":
		return experiments.ZeroDayTPR(lab, []isa.Class{
			isa.ClassRDRANDCovert, isa.ClassFlushConflict,
			isa.ClassMedusaCacheIndex, isa.ClassDRAMA,
			isa.ClassMicroScope, isa.ClassLeakyBuddies,
			isa.ClassSMotherSpectre,
		}), nil
	}
	return nil, fmt.Errorf("evaxbench: unknown experiment %q (try -list)", id)
}
