// Command evaxbench regenerates the paper's evaluation: every table and
// figure has a driver in internal/experiments, and this command runs them
// and prints the corresponding rows and series. EXPERIMENTS.md records a
// reference run next to the paper's numbers.
//
// Usage:
//
//	evaxbench                # run everything at the default scale
//	evaxbench -exp fig16     # one experiment
//	evaxbench -quick         # reduced scale (the test configuration)
//	evaxbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"evax/internal/experiments"
	"evax/internal/isa"
)

var experimentIDs = []string{
	"table1", "table2", "fig6", "fig7", "fig9-11", "fig14", "fig15",
	"fig16", "fig17", "fig18", "fig19", "fig20", "zeroday",
}

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id or \"all\" (see -list)")
		quick = flag.Bool("quick", false, "reduced scale (the test configuration)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experimentIDs {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.DefaultLabOptions()
	if *quick {
		opts = experiments.QuickLabOptions()
	}

	ids := experimentIDs
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	needLab := false
	for _, id := range ids {
		if id != "table2" {
			needLab = true
		}
	}

	var lab *experiments.Lab
	if needLab {
		fmt.Println("building lab (corpus + AM-GAN + detectors)...")
		t0 := time.Now()
		lab = experiments.NewLab(opts)
		fmt.Printf("lab ready in %v: %s\n\n", time.Since(t0).Round(time.Millisecond), lab.DS.Stats())
	}

	for _, id := range ids {
		t0 := time.Now()
		out, err := run(id, lab)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

func run(id string, lab *experiments.Lab) (fmt.Stringer, error) {
	switch id {
	case "table1":
		return experiments.TableI(lab), nil
	case "table2":
		return experiments.TableII(), nil
	case "fig6":
		return experiments.Figure6(lab), nil
	case "fig7":
		return experiments.Figure7(lab), nil
	case "fig9-11", "fig9", "fig10", "fig11":
		return experiments.Figure9to11(lab), nil
	case "fig14":
		return experiments.Figure14(lab), nil
	case "fig15":
		return experiments.Figure15(lab), nil
	case "fig16":
		return experiments.Figure16(lab), nil
	case "fig17":
		return experiments.Figure17(lab, 6), nil
	case "fig18":
		return experiments.Figure18(lab), nil
	case "fig19":
		return experiments.Figure19(lab, nil), nil // all folds
	case "fig20":
		return experiments.Figure20(lab, []int{1, 16, 32}), nil
	case "zeroday":
		return experiments.ZeroDayTPR(lab, []isa.Class{
			isa.ClassRDRANDCovert, isa.ClassFlushConflict,
			isa.ClassMedusaCacheIndex, isa.ClassDRAMA,
			isa.ClassMicroScope, isa.ClassLeakyBuddies,
			isa.ClassSMotherSpectre,
		}), nil
	}
	return nil, fmt.Errorf("evaxbench: unknown experiment %q (try -list)", id)
}
