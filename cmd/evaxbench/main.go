// Command evaxbench regenerates the paper's evaluation: every table and
// figure has a driver in internal/experiments, and this command runs them
// and prints the corresponding rows and series. EXPERIMENTS.md records a
// reference run next to the paper's numbers.
//
// Usage:
//
//	evaxbench                # run everything at the default scale
//	evaxbench -exp fig16     # one experiment
//	evaxbench -quick         # reduced scale (the test configuration)
//	evaxbench -jobs 8        # fan simulation campaigns out over 8 workers
//	evaxbench -benchjson BENCH_runner.json   # runner speedup + equivalence report
//	evaxbench -resume ckpt/   # journal campaigns into ckpt/; rerun to resume a killed run
//	evaxbench -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"evax/internal/benchjson"
	"evax/internal/checkpoint"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/experiments"
	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/runner"
)

var experimentIDs = []string{
	"table1", "table2", "fig6", "fig7", "fig9-11", "fig14", "fig15",
	"fig16", "fig17", "fig18", "fig19", "fig20", "zeroday",
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id or \"all\" (see -list)")
		quick     = flag.Bool("quick", false, "reduced scale (the test configuration)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		jobs      = flag.Int("jobs", 0, "worker count for simulation campaigns (0 = GOMAXPROCS, 1 = sequential)")
		benchJSON = flag.String("benchjson", "", "measure parallel corpus generation against -jobs 1, write a JSON report to this file, and exit")
		resumeDir = flag.String("resume", "", "directory for checkpoint journals; a killed run restarted with the same flags resumes its campaigns bit-identically")
	)
	flag.Parse()

	if *list {
		for _, id := range experimentIDs {
			fmt.Println(id)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *jobs, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opts := experiments.DefaultLabOptions()
	if *quick {
		opts = experiments.QuickLabOptions()
	}
	opts.Jobs = *jobs

	ids := experimentIDs
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	needLab := false
	for _, id := range ids {
		if id != "table2" {
			needLab = true
		}
	}

	if *resumeDir != "" {
		if err := os.MkdirAll(*resumeDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var lab *experiments.Lab
	if needLab {
		workers := opts.Jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("building lab (corpus + AM-GAN + detectors) with %d worker(s)...\n", workers)
		t0, s0 := time.Now(), runner.Snapshot()
		l, err := buildLab(opts, *resumeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lab = l
		reportThroughput("lab", time.Since(t0), runner.Snapshot().JobsRun-s0.JobsRun)
		fmt.Printf("lab ready: %s\n\n", lab.DS.Stats())
	}

	for _, id := range ids {
		t0, s0 := time.Now(), runner.Snapshot()
		out, err := run(id, lab, *resumeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		reportThroughput(id, time.Since(t0), runner.Snapshot().JobsRun-s0.JobsRun)
		fmt.Println()
	}
}

// buildLab constructs the lab, journaling the corpus campaign under
// resumeDir when set so a killed run resumes instead of restarting.
func buildLab(opts experiments.LabOptions, resumeDir string) (*experiments.Lab, error) {
	if resumeDir == "" {
		return experiments.NewLab(opts), nil
	}
	j, err := openJournal(resumeDir, "corpus", opts.Corpus.CampaignKey())
	if err != nil {
		return nil, err
	}
	//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
	defer j.Close()
	return experiments.NewLabCtx(context.Background(), opts, j)
}

// openJournal opens resumeDir/<name>.journal keyed to the campaign,
// reporting how much of the campaign is already banked.
func openJournal(resumeDir, name, key string) (*checkpoint.Journal, error) {
	path := filepath.Join(resumeDir, name+".journal")
	j, err := checkpoint.Open(path, key)
	if errors.Is(err, checkpoint.ErrCampaignMismatch) {
		return nil, fmt.Errorf("%w\n(the journal at %s was written by a run with different flags; rerun with matching flags or delete it)", err, path)
	}
	if err != nil {
		return nil, err
	}
	if j.Len() > 0 {
		fmt.Printf("resuming %s campaign from %s (%d jobs already journaled)\n", name, path, j.Len())
	}
	return j, nil
}

// reportThroughput prints one stage's wall-clock and per-job throughput.
func reportThroughput(stage string, wall time.Duration, jobs uint64) {
	if jobs == 0 {
		fmt.Printf("[%s completed in %v]\n", stage, wall.Round(time.Millisecond))
		return
	}
	fmt.Printf("[%s completed in %v: %d jobs, %.1f jobs/sec]\n",
		stage, wall.Round(time.Millisecond), jobs, float64(jobs)/wall.Seconds())
}

// benchReport is the BENCH_runner.json schema: wall-clock and throughput of
// corpus generation sequentially and fanned out, plus the equivalence bit
// (parallel output must be byte-identical to -jobs 1) and the columnar
// feature-path comparison.
type benchReport struct {
	GOMAXPROCS    int               `json:"gomaxprocs"`
	Jobs          int               `json:"jobs"`
	CorpusSamples int               `json:"corpus_samples"`
	JobsRun       uint64            `json:"jobs_run"`
	SeqMillis     float64           `json:"seq_wall_ms"`
	ParMillis     float64           `json:"par_wall_ms"`
	SeqJobsPerSec float64           `json:"seq_jobs_per_sec"`
	ParJobsPerSec float64           `json:"par_jobs_per_sec"`
	Speedup       float64           `json:"speedup"`
	Identical     bool              `json:"identical"`
	FeaturePath   featurePathReport `json:"featurepath"`
}

// featurePathReport compares the per-window scoring path before and after
// the columnar refactor: "old" allocates the derived vector and the feature
// vector per sample (ExpandDerived + Vector), "new" runs the compiled
// Expander and the detector's gather scratch with zero steady-state
// allocations. Scores must agree bit-for-bit.
type featurePathReport struct {
	Samples           int     `json:"samples"`
	OldSamplesPerSec  float64 `json:"old_samples_per_sec"`
	NewSamplesPerSec  float64 `json:"new_samples_per_sec"`
	OldBytesPerSample float64 `json:"old_bytes_per_sample"`
	NewBytesPerSample float64 `json:"new_bytes_per_sample"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"identical"`
}

// benchFeaturePath scores every corpus window through both per-window
// paths, measuring throughput and allocation per sample.
func benchFeaturePath(samples []dataset.Sample) (featurePathReport, error) {
	ds := dataset.New(samples)
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	det := detect.NewPerceptron(1, fs)

	// Rebuild the hpc windows the samples came from.
	windows := make([]hpc.Sample, len(ds.Samples))
	for i := range ds.Samples {
		windows[i] = hpc.Sample{
			Values:       ds.Samples[i].Raw,
			Instructions: ds.Samples[i].Instructions,
			Cycles:       ds.Samples[i].Cycles,
		}
	}
	// Iterate enough rounds for stable wall-clock on quick corpora.
	rounds := 1 + 20_000/len(windows)

	measure := func(score func(hpc.Sample) float64) (scores []float64, perSec, bytesPer float64) {
		scores = make([]float64, len(windows))
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			for i := range windows {
				scores[i] = score(windows[i])
			}
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		n := float64(rounds * len(windows))
		return scores, n / wall.Seconds(), float64(ms1.TotalAlloc-ms0.TotalAlloc) / n
	}

	derivedDim := hpc.DerivedSpaceSize(len(windows[0].Values))
	oldScores, oldPerSec, oldBytes := measure(func(s hpc.Sample) float64 {
		derived := hpc.ExpandDerived(s) // allocates per sample
		ds.NormalizeInPlace(derived)
		return det.ScoreVector(det.Plan.Vector(derived)) // allocates again
	})

	exp := hpc.NewExpander(len(windows[0].Values))
	scratch := make([]float64, derivedDim)
	newScores, newPerSec, newBytes := measure(func(s hpc.Sample) float64 {
		exp.ExpandInto(scratch, s)
		ds.NormalizeInPlace(scratch)
		return det.Score(scratch)
	})

	identical := true
	for i := range oldScores {
		if math.Float64bits(oldScores[i]) != math.Float64bits(newScores[i]) {
			identical = false
			break
		}
	}
	r := featurePathReport{
		Samples:           len(windows),
		OldSamplesPerSec:  oldPerSec,
		NewSamplesPerSec:  newPerSec,
		OldBytesPerSample: oldBytes,
		NewBytesPerSample: newBytes,
		Speedup:           newPerSec / oldPerSec,
		Identical:         identical,
	}
	if !identical {
		return r, fmt.Errorf("evaxbench: columnar feature path diverged from the allocating reference")
	}
	return r, nil
}

// writeBenchJSON times corpus generation at -jobs 1 versus the requested
// worker count, checks bit-for-bit equivalence, and writes the report.
func writeBenchJSON(path string, jobs int, quick bool) error {
	if jobs <= 1 {
		jobs = runtime.GOMAXPROCS(0)
		if jobs < 4 {
			jobs = 4 // measure real fan-out even on small hosts
		}
	}
	o := dataset.DefaultCorpusOptions()
	if quick {
		o.Seeds = 2
		o.MaxInstr = 40_000
	}

	o.Jobs = 1
	t0, s0 := time.Now(), runner.Snapshot()
	seq := dataset.CollectAll(o)
	seqWall := time.Since(t0)
	perRun := runner.Snapshot().JobsRun - s0.JobsRun

	o.Jobs = jobs
	t1 := time.Now()
	par := dataset.CollectAll(o)
	parWall := time.Since(t1)

	// Equivalence first: benchFeaturePath normalizes par in place.
	identical := reflect.DeepEqual(seq, par)
	fp, fpErr := benchFeaturePath(par)

	r := benchReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Jobs:          jobs,
		CorpusSamples: len(seq),
		JobsRun:       perRun,
		SeqMillis:     float64(seqWall.Microseconds()) / 1000,
		ParMillis:     float64(parWall.Microseconds()) / 1000,
		SeqJobsPerSec: float64(perRun) / seqWall.Seconds(),
		ParJobsPerSec: float64(perRun) / parWall.Seconds(),
		Speedup:       seqWall.Seconds() / parWall.Seconds(),
		Identical:     identical,
		FeaturePath:   fp,
	}
	// Merge rather than overwrite: other tools (evaxload's `serving`
	// section) contribute their own keys to the same report file.
	if err := benchjson.Merge(path, r); err != nil {
		return fmt.Errorf("writing bench report: %w", err)
	}
	fmt.Printf("runner bench: %d jobs  seq=%v  par(%d)=%v  speedup=%.2fx  identical=%v -> %s\n",
		r.JobsRun, seqWall.Round(time.Millisecond), jobs, parWall.Round(time.Millisecond), r.Speedup, r.Identical, path)
	fmt.Printf("feature path: %d windows  old=%.0f/s (%.0f B/sample)  new=%.0f/s (%.0f B/sample)  speedup=%.2fx  identical=%v\n",
		fp.Samples, fp.OldSamplesPerSec, fp.OldBytesPerSample, fp.NewSamplesPerSec, fp.NewBytesPerSample, fp.Speedup, fp.Identical)
	if !r.Identical {
		return fmt.Errorf("evaxbench: parallel corpus diverged from sequential reference")
	}
	return fpErr
}

func run(id string, lab *experiments.Lab, resumeDir string) (fmt.Stringer, error) {
	switch id {
	case "table1":
		return experiments.TableI(lab), nil
	case "table2":
		return experiments.TableII(), nil
	case "fig6":
		return experiments.Figure6(lab), nil
	case "fig7":
		return experiments.Figure7(lab), nil
	case "fig9-11", "fig9", "fig10", "fig11":
		return experiments.Figure9to11(lab), nil
	case "fig14":
		return experiments.Figure14(lab), nil
	case "fig15":
		return experiments.Figure15(lab), nil
	case "fig16":
		return experiments.Figure16(lab), nil
	case "fig17":
		const seedsPerTool = 6
		if resumeDir == "" {
			return experiments.Figure17(lab, seedsPerTool), nil
		}
		j, err := openJournal(resumeDir, "fig17", lab.Figure17Key(seedsPerTool))
		if err != nil {
			return nil, err
		}
		//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
		defer j.Close()
		res, err := experiments.Figure17Ctx(context.Background(), lab, seedsPerTool, j)
		if err != nil {
			return nil, err
		}
		return res, nil
	case "fig18":
		return experiments.Figure18(lab), nil
	case "fig19":
		if resumeDir == "" {
			return experiments.Figure19(lab, nil), nil // all folds
		}
		j, err := openJournal(resumeDir, "fig19", lab.Figure19Key(nil))
		if err != nil {
			return nil, err
		}
		//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
		defer j.Close()
		res, err := experiments.Figure19Ctx(context.Background(), lab, nil, j)
		if err != nil {
			return nil, err
		}
		return res, nil
	case "fig20":
		return experiments.Figure20(lab, []int{1, 16, 32}), nil
	case "zeroday":
		return experiments.ZeroDayTPR(lab, []isa.Class{
			isa.ClassRDRANDCovert, isa.ClassFlushConflict,
			isa.ClassMedusaCacheIndex, isa.ClassDRAMA,
			isa.ClassMicroScope, isa.ClassLeakyBuddies,
			isa.ClassSMotherSpectre,
		}), nil
	}
	return nil, fmt.Errorf("evaxbench: unknown experiment %q (try -list)", id)
}
