// Command evaxfleet hosts a sharded detection fleet in one process: N
// evaxd-style shards (each a full serve instance behind its own listener),
// the deterministic hash ring that routes tenants onto them, and a
// coordinator that heartbeats every shard (hello + ping/pong + admin status)
// and drives fleet-wide generation swaps with all-or-rollback semantics.
// Control-plane traffic (config updates, verdict aggregates, shard stats
// frames) flows over the typed pub/sub bus; the data plane stays on the
// serve framing protocol.
//
// Usage:
//
//	evaxtrain -quick -bundle patch.json                  # train a bundle
//	evaxfleet -bundle patch.json -shards 4               # serve a 4-shard fleet
//	evaxfleet -bundle patch.json -shards 4 -replay corpus.bin
//	evaxfleet -bundle patch.json -shards 4 -swap cand.json -replay corpus.bin
//
// Replay mode prints the merged verdict digest — bit-identical at every
// shard count (the fleet determinism contract, DESIGN.md §16).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"evax/internal/dataset"
	"evax/internal/engine"
	"evax/internal/fleet"
	"evax/internal/serve"
)

func main() {
	var (
		bundle   = flag.String("bundle", "", "detection bundle (detector + normalizer) from evaxtrain -bundle")
		shards   = flag.Int("shards", 2, "detection shards to host (each its own listener)")
		replicas = flag.Int("replicas", 0, "virtual nodes per shard on the routing ring (0 = default)")
		backend  = flag.String("backend", serve.BackendFloat, "scoring kernel: \"float\" or \"quantized\"")
		stateDir = flag.String("state", "", "per-shard generation state root (shard i persists under <state>/shard-<i>)")
		canary   = flag.String("canary", "", "golden corpus shard managers canary-score candidates against")
		beat     = flag.Duration("beat", fleet.DefaultProbeInterval, "coordinator heartbeat interval")

		replay  = flag.String("replay", "", "replay a recorded corpus through the fleet instead of serving")
		tenants = flag.Int("tenants", fleet.DefaultTenants, "concurrent tenant streams in replay mode")
		seed    = flag.Int64("seed", 1, "tenant routing seed; the merged digest is identical for every seed")
		swap    = flag.String("swap", "", "fan this candidate bundle across all shards (mid-replay in replay mode)")
	)
	flag.Parse()

	if !engine.ValidBackend(*backend) {
		fatalf("evaxfleet: unknown -backend %q (want %q or %q)", *backend, serve.BackendFloat, serve.BackendQuantized)
	}
	if *bundle == "" {
		fatalf("evaxfleet: -bundle is required (train one with: evaxtrain -quick -bundle patch.json)")
	}
	data, err := os.ReadFile(*bundle)
	if err != nil {
		fatalf("evaxfleet: %v", err)
	}

	cfg := fleet.Config{
		Shards:   *shards,
		Replicas: *replicas,
		Serve:    serve.DefaultConfig(),
		StateDir: *stateDir,
	}
	cfg.Serve.Backend = *backend
	if *canary != "" {
		corpus, err := dataset.ReadCorpusFile(*canary)
		if err != nil {
			fatalf("evaxfleet: canary corpus: %v", err)
		}
		cfg.Corpus = corpus
	}

	fl, err := fleet.New(data, cfg)
	if err != nil {
		fatalf("evaxfleet: %v", err)
	}
	if err := fl.Start(); err != nil {
		fatalf("evaxfleet: %v", err)
	}
	active := fl.Managers()[0].Active()
	fmt.Printf("evaxfleet: %d shards, bundle hash=%s backend=%s rawDim=%d\n",
		fl.Shards(), active.HashHex(), active.Backend(), active.RawDim())
	for i, addr := range fl.Addrs() {
		fmt.Printf("evaxfleet: shard %d on %s\n", i, addr)
	}

	coord := fleet.NewCoordinator(fl.Members(), *beat, fl.Bus())

	if *replay != "" {
		//evaxlint:ignore goroutine runReplay's swap goroutine is joined on swapDone before it returns
		runReplay(fl, coord, *replay, *tenants, *seed, *swap)
		return
	}

	coord.Start()
	if *swap != "" {
		rep, err := coord.SwapAll(*swap)
		reportSwap(rep, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	fmt.Println("evaxfleet: draining...")
	coord.Stop()
	snaps, err := fl.Drain()
	if err != nil {
		fatalf("evaxfleet: drain: %v", err)
	}
	for _, snap := range snaps {
		out, jerr := json.Marshal(snap)
		if jerr == nil {
			fmt.Printf("evaxfleet: shard %d drained: %s\n", snap.Shard, out)
		}
	}
}

// runReplay streams a recorded corpus through the fleet and prints the
// merged digest. With -swap, the candidate is fanned fleet-wide after the
// first tenant's first hundred sends — a mid-replay swap that must drop
// nothing and land every shard on the same epoch.
func runReplay(fl *fleet.Fleet, coord *fleet.Coordinator, corpusPath string, tenants int, seed int64, swapPath string) {
	samples, err := dataset.ReadCorpusFile(corpusPath)
	if err != nil {
		fatalf("evaxfleet: %v", err)
	}
	opt := fleet.ReplayOptions{Tenants: tenants, Seed: seed}
	swapDone := make(chan struct{})
	if swapPath != "" {
		// Trigger once, from tenant 0's sender, halfway through its rows —
		// a genuinely mid-replay fleet-wide swap.
		rows0 := (len(samples) + tenants - 1) / tenants
		trigger := max(1, rows0/2)
		opt.AfterSend = func(tenant, sent int) {
			if tenant != 0 || sent != trigger {
				return
			}
			//evaxlint:ignore goroutine the swap must run off the sender goroutine (SwapAll drains canaries while tenants stream); joined via swapDone before the report prints
			go func() {
				defer close(swapDone)
				rep, err := coord.SwapAll(swapPath)
				reportSwap(rep, err)
			}()
		}
	} else {
		close(swapDone)
	}

	coord.Start()
	rep, err := fl.Replay(samples, opt)
	if err != nil {
		fatalf("evaxfleet: replay: %v", err)
	}
	<-swapDone
	coord.Stop()

	out, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr != nil {
		fatalf("evaxfleet: %v", jerr)
	}
	fmt.Printf("fleet replay: %s\n", out)
	fmt.Printf("fleet replay: rows=%d flagged=%d shards=%d digest=%s (%.0f rows/sec, skew %.3f)\n",
		rep.Rows, rep.Flagged, rep.Shards, rep.HashHex(), rep.MeanRate, rep.Skew)
	for _, h := range coord.ProbeAll() {
		out, jerr := json.Marshal(h)
		if jerr == nil {
			fmt.Printf("fleet health: %s\n", out)
		}
	}
	if _, err := fl.Drain(); err != nil {
		fatalf("evaxfleet: drain: %v", err)
	}
}

// reportSwap prints a fleet-wide swap outcome.
func reportSwap(rep engine.FleetSwapReport, err error) {
	out, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr == nil {
		fmt.Printf("evaxfleet: swap: %s\n", out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaxfleet: swap: %v\n", err)
	}
}

// fatalf reports a fatal error and exits nonzero.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
