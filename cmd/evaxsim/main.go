// Command evaxsim runs a single benign workload or attack program on the
// cycle-level simulator and reports performance and security statistics —
// the quickest way to watch an attack leak (or a defense stop it).
//
// Usage:
//
//	evaxsim -prog spectre-pht -policy none -max 200000
//	evaxsim -prog meltdown -policy fence-before-load
//	evaxsim -prog compress -seed 3 -scale 2 -counters 15
//	evaxsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"evax/internal/attacks"
	"evax/internal/defense"
	"evax/internal/engine"
	"evax/internal/isa"
	"evax/internal/sim"
	"evax/internal/workload"
)

func main() {
	var (
		progName = flag.String("prog", "spectre-pht", "program to run (see -list)")
		seed     = flag.Int64("seed", 11, "program seed (layout, secrets, data)")
		scale    = flag.Int("scale", 1, "program scale (loop trips / leak rounds)")
		policy   = flag.String("policy", "none", "defense policy: none | fence-after-branch | fence-before-load | invisispec-spectre | invisispec-futuristic")
		maxInstr = flag.Uint64("max", 2_000_000, "maximum committed instructions")
		topN     = flag.Int("counters", 10, "print the N highest counters (0 disables)")
		list     = flag.Bool("list", false, "list available programs and exit")
		bundleIn = flag.String("bundle", "", "run adaptively: gate -policy with the detection bundle written by evaxtrain -bundle")
		interval = flag.Uint64("interval", 2000, "adaptive mode: detector sampling cadence in instructions")
		window   = flag.Uint64("secure-window", 100_000, "adaptive mode: instructions in secure mode per flag")
		prefetch = flag.Bool("prefetch", false, "enable the stride prefetcher")
	)
	flag.Parse()

	if *list {
		fmt.Println("benign workloads:")
		for _, w := range workload.All() {
			fmt.Printf("  %s\n", w.Name)
		}
		fmt.Println("attacks:")
		for _, a := range attacks.All() {
			fmt.Printf("  %s\n", a.Name)
		}
		return
	}

	prog, err := buildProgram(*progName, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mcfg := sim.DefaultConfig()
	mcfg.Prefetcher.Enabled = *prefetch

	if *bundleIn != "" {
		runAdaptive(mcfg, prog, pol, *bundleIn, *interval, *window, *maxInstr)
		return
	}

	m := sim.New(mcfg, prog)
	m.SetPolicy(pol)
	m.Run(*maxInstr)

	fmt.Printf("program      %s (class %s, %d static instructions)\n", prog.Name, prog.Class, prog.Len())
	fmt.Printf("policy       %s\n", m.Policy())
	fmt.Printf("finished     %v\n", m.Done())
	fmt.Printf("instructions %d\n", m.Instructions())
	fmt.Printf("cycles       %d\n", m.Cycles())
	fmt.Printf("IPC          %.3f\n", m.IPC())
	fmt.Printf("mispredicts  %d\n", m.Ctr(sim.CtrIEWBranchMispredicts))
	fmt.Printf("squashed     %d micro-ops\n", m.Ctr(sim.CtrCommitSquashedInsts))
	fmt.Printf("faults       %d (commit-time)\n", m.Ctr(sim.CtrCommitFaults))
	fmt.Printf("transient cache leaks: %d squashed loads touched the cache\n", m.C.LeakedTransientLoads)
	if prog.Class.Malicious() {
		if m.C.LeakedTransientLoads > 0 {
			fmt.Println("security     LEAKAGE OCCURRED")
		} else {
			fmt.Println("security     no transient leakage observed")
		}
		if r := int64(m.ArchReg(isa.R30)); r >= 0 && m.ArchReg(isa.R30) != 0 {
			fmt.Printf("transmit     gadget recovered value %d\n", r)
		}
	}

	if *topN > 0 {
		cat := sim.CounterCatalog()
		vals := make([]uint64, cat.Len())
		m.ReadCounters(vals)
		type kv struct {
			name string
			v    uint64
		}
		var all []kv
		for i, v := range vals {
			if v > 0 {
				all = append(all, kv{cat.Name(i), v})
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
		if *topN > len(all) {
			*topN = len(all)
		}
		fmt.Printf("\ntop %d counters:\n", *topN)
		for _, e := range all[:*topN] {
			fmt.Printf("  %-36s %d\n", e.name, e.v)
		}
	}
}

// runAdaptive gates the chosen policy with a trained detection bundle.
func runAdaptive(mcfg sim.Config, prog *isa.Program, pol sim.Policy, bundlePath string, interval, window, maxInstr uint64) {
	fl, err := engine.LoadFlaggerOrSecure(bundlePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaxsim: %v\nevaxsim: falling back to always-secure mode (every window mitigated)\n", err)
	}
	dcfg := defense.DefaultConfig(pol)
	dcfg.SampleInterval = interval
	dcfg.SecureWindow = window
	res := defense.RunProgram(mcfg, prog, fl, dcfg, maxInstr)
	fmt.Printf("program      %s (class %s) under adaptive %s\n", prog.Name, prog.Class, pol)
	fmt.Printf("instructions %d\n", res.Instructions)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("IPC          %.3f\n", res.IPC)
	fmt.Printf("windows      %d sampled, %d flagged (%.1f%%)\n",
		res.Windows, res.Flags, 100*res.FlagRate())
	fmt.Printf("secure mode  %d instructions (%.1f%%)\n",
		res.SecureInstr, 100*float64(res.SecureInstr)/float64(res.Instructions+1))
	fmt.Printf("transient cache leaks: %d\n", res.LeakedTransient)
}

func buildProgram(name string, seed int64, scale int) (*isa.Program, error) {
	for _, w := range workload.All() {
		if w.Name == name {
			return w.Build(seed, scale), nil
		}
	}
	for _, a := range attacks.All() {
		if a.Name == name {
			return a.Build(seed, scale), nil
		}
	}
	return nil, fmt.Errorf("evaxsim: unknown program %q (try -list)", name)
}

func parsePolicy(s string) (sim.Policy, error) {
	switch s {
	case "none":
		return sim.PolicyNone, nil
	case "fence-after-branch":
		return sim.PolicyFenceAfterBranch, nil
	case "fence-before-load":
		return sim.PolicyFenceBeforeLoad, nil
	case "invisispec-spectre":
		return sim.PolicyInvisiSpecSpectre, nil
	case "invisispec-futuristic":
		return sim.PolicyInvisiSpecFuturistic, nil
	}
	return sim.PolicyNone, fmt.Errorf("evaxsim: unknown policy %q", s)
}
