package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"evax/internal/analysis"
)

// TestRepoIsLintClean lints the whole repository and requires zero
// findings — the same gate CI enforces with `go run ./cmd/evaxlint ./...`.
// It doubles as an end-to-end exercise of the loader, all five analyzers,
// and the //evaxlint:ignore suppressions present in production code.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.LintModule(root, []string{"./..."})
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}

// writeModule materializes a throwaway module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestRunExitContract pins the documented exit-code contract (0 clean /
// 1 findings / 2 load error) and the -json wire format, including the
// suppressed flag.
func TestRunExitContract(t *testing.T) {
	gomod := "module example.com/m\n\ngo 1.21\n"
	clean := map[string]string{
		"go.mod": gomod,
		"internal/lib/lib.go": `package lib

// Add is allocation- and violation-free.
func Add(a, b int) int { return a + b }
`,
	}
	// A direct finding (time.Now in a library package) plus a suppressed one.
	dirty := map[string]string{
		"go.mod": gomod,
		"internal/lib/lib.go": `package lib

import "time"

// Stamp reads the wall clock in a library package: one unsuppressed finding.
func Stamp() int64 { return time.Now().UnixNano() }

// Quiet carries a suppressed finding, visible only to -json.
func Quiet() int64 {
	//evaxlint:ignore wallclock test fixture
	return time.Now().UnixNano()
}
`,
	}
	broken := map[string]string{
		"go.mod":              gomod,
		"internal/lib/lib.go": "package lib\n\nfunc Broken() int { return undefined }\n",
	}

	cases := []struct {
		name  string
		files map[string]string
		args  []string
		want  int
	}{
		{"clean", clean, nil, 0},
		{"clean json", clean, []string{"-json"}, 0},
		{"findings", dirty, nil, 1},
		{"findings json", dirty, []string{"-json"}, 1},
		{"load error", broken, nil, 2},
		{"load error json", broken, []string{"-json"}, 2},
		{"bad pattern", clean, []string{"./no/such/pkg"}, 2},
		{"rules listing", clean, []string{"-rules"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root := writeModule(t, c.files)
			var stdout, stderr bytes.Buffer
			got := run(c.args, &stdout, &stderr, func() (string, error) { return root, nil })
			if got != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					c.args, got, c.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestRunJSONOutput decodes the -json stream and checks both the field
// shape and that suppressed findings are present but marked.
func TestRunJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.21\n",
		"internal/lib/lib.go": `package lib

import "time"

// Stamp is an unsuppressed wallclock finding.
func Stamp() int64 { return time.Now().UnixNano() }

// Quiet is a suppressed one.
func Quiet() int64 {
	//evaxlint:ignore wallclock test fixture
	return time.Now().UnixNano()
}
`,
	})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json"}, &stdout, &stderr, func() (string, error) { return root, nil }); got != 1 {
		t.Fatalf("run = %d, want 1; stderr:\n%s", got, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (one suppressed): %+v", len(diags), diags)
	}
	bySuppressed := map[bool]jsonDiag{}
	for _, d := range diags {
		bySuppressed[d.Suppressed] = d
	}
	open, ok := bySuppressed[false]
	if !ok {
		t.Fatal("no unsuppressed finding in -json output")
	}
	if _, ok := bySuppressed[true]; !ok {
		t.Fatal("suppressed finding missing from -json output")
	}
	if open.Rule != "wallclock" || open.File != filepath.Join("internal", "lib", "lib.go") || open.Line == 0 || open.Message == "" {
		t.Errorf("unexpected finding shape: %+v", open)
	}
}

// TestModuleRoot verifies go.mod discovery from the package directory.
func TestModuleRoot(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if root != want {
		t.Errorf("moduleRoot() = %q, want %q", root, want)
	}
}
