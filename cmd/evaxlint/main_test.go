package main

import (
	"path/filepath"
	"testing"

	"evax/internal/analysis"
)

// TestRepoIsLintClean lints the whole repository and requires zero
// findings — the same gate CI enforces with `go run ./cmd/evaxlint ./...`.
// It doubles as an end-to-end exercise of the loader, all five analyzers,
// and the //evaxlint:ignore suppressions present in production code.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.LintModule(root, []string{"./..."})
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
}

// TestModuleRoot verifies go.mod discovery from the package directory.
func TestModuleRoot(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if root != want {
		t.Errorf("moduleRoot() = %q, want %q", root, want)
	}
}
