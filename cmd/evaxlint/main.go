// Command evaxlint runs evax's project-specific static-analysis suite
// (internal/analysis) over the module: determinism, maporder, floateq,
// droppederr and ctrname. It exits nonzero when any unsuppressed
// diagnostic is found, so CI can gate on it.
//
// Usage:
//
//	evaxlint [packages]   # defaults to ./...
//
// Suppress a finding with a trailing or preceding comment:
//
//	//evaxlint:ignore <rule>[,<rule>...] <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"evax/internal/analysis"
)

func main() {
	list := flag.Bool("rules", false, "list the analyzer rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: evaxlint [-rules] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaxlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := analysis.LintModule(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaxlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "evaxlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
