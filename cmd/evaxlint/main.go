// Command evaxlint runs evax's project-specific static-analysis suite
// (internal/analysis) over the module: determinism, maporder, floateq,
// droppederr, ctrname, goroutine, rawwrite, wallclock and hotpath — the
// last four interprocedural over the whole-program call graph. It exits
// nonzero when any unsuppressed diagnostic is found, so CI can gate on it.
//
// Usage:
//
//	evaxlint [-rules] [-json] [packages]   # packages default to ./...
//
// Exit codes (the contract CI and tooling rely on):
//
//	0  the matched packages are clean (no unsuppressed findings)
//	1  at least one unsuppressed finding
//	2  the module failed to load (parse/type error, bad pattern, no go.mod)
//
// With -json, findings are written to stdout as a single JSON array of
// {file, line, col, rule, message, suppressed} objects — including findings
// covered by //evaxlint:ignore directives, marked "suppressed": true, so
// audit tooling can review every directive in force. Suppressed findings do
// not affect the exit code.
//
// Suppress a finding with a trailing or preceding comment:
//
//	//evaxlint:ignore <rule>[,<rule>...] <justification>
//
// For the interprocedural rules, an ignore on a call-site line prunes the
// call edge itself: transitive findings attributed through that edge are
// suppressed along with the direct one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"evax/internal/analysis"
)

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, moduleRoot))
}

// run is main with its dependencies injected, so the exit-code contract is
// table-testable. findRoot locates the module to lint.
func run(args []string, stdout, stderr io.Writer, findRoot func() (string, error)) int {
	fs := flag.NewFlagSet("evaxlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("rules", false, "list the analyzer rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON (including suppressed ones) instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: evaxlint [-rules] [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findRoot()
	if err != nil {
		fmt.Fprintf(stderr, "evaxlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		diags, err := analysis.LintModuleAll(root, patterns)
		if err != nil {
			fmt.Fprintf(stderr, "evaxlint: %v\n", err)
			return 2
		}
		out := make([]jsonDiag, 0, len(diags))
		unsuppressed := 0
		for _, d := range diags {
			if !d.Suppressed {
				unsuppressed++
			}
			out = append(out, jsonDiag{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Rule:       d.Rule,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "evaxlint: encoding findings: %v\n", err)
			return 2
		}
		if unsuppressed > 0 {
			fmt.Fprintf(stderr, "evaxlint: %d finding(s)\n", unsuppressed)
			return 1
		}
		return 0
	}

	diags, err := analysis.LintModule(root, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "evaxlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "evaxlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
