// Command evaxtrain runs the full EVAX training pipeline: it builds the
// sample corpus from simulator runs, trains the conditional AM-GAN, mines
// the engineered security HPCs from the generator, trains the vaccinated
// EVAX detector and the PerSpectron baseline, and reports training-set
// statistics. Detector weights can be exported as JSON for inspection or a
// microcode-style update.
//
// Usage:
//
//	evaxtrain -seeds 3 -interval 2000 -epochs 25
//	evaxtrain -quick -weights weights.json
//	evaxtrain -jobs 8    # fan the corpus simulations out over 8 workers
//	evaxtrain -resume corpus.journal   # checkpoint the corpus; rerun to resume a killed campaign
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"evax/internal/checkpoint"
	"evax/internal/defense"
	"evax/internal/experiments"
	"evax/internal/runner"
	"evax/internal/safeio"
)

// weightsFile is the exported detector description.
type weightsFile struct {
	FeatureNames []string         `json:"feature_names"`
	Engineered   []string         `json:"engineered"`
	Weights      []float64        `json:"weights"`
	Bias         float64          `json:"bias"`
	Threshold    float64          `json:"threshold"`
	StyleLoss    []float64        `json:"style_loss_per_epoch"`
	Corpus       map[string]int64 `json:"corpus"`
}

func main() {
	var (
		seeds    = flag.Int("seeds", 3, "seeded instances per program")
		interval = flag.Uint64("interval", 2000, "sampling cadence in instructions")
		maxInstr = flag.Uint64("max", 60_000, "instruction cap per program run")
		epochs   = flag.Int("epochs", 12, "AM-GAN training epochs")
		quick    = flag.Bool("quick", false, "use the reduced test-scale configuration")
		weights  = flag.String("weights", "", "write the trained EVAX detector to this JSON file")
		bundleTo = flag.String("bundle", "", "write a deployable detection bundle (detector + normalizer) usable by evaxsim -bundle")
		jobs     = flag.Int("jobs", 0, "worker count for corpus simulations (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		resume   = flag.String("resume", "", "checkpoint journal for the corpus campaign; a killed run restarted with the same flags resumes from here bit-identically")
	)
	flag.Parse()

	opts := experiments.DefaultLabOptions()
	if *quick {
		opts = experiments.QuickLabOptions()
	} else {
		opts.Corpus.Seeds = *seeds
		opts.Corpus.Interval = *interval
		opts.Corpus.MaxInstr = *maxInstr
		opts.GANEpochs = *epochs
	}
	opts.Jobs = *jobs

	fmt.Println("building corpus and training (this runs the simulator on every workload and attack)...")
	t0, s0 := time.Now(), runner.Snapshot()
	lab, err := buildLab(opts, *resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall, ran := time.Since(t0), runner.Snapshot().JobsRun-s0.JobsRun
	fmt.Printf("trained in %v (%d simulation jobs, %.1f jobs/sec)\n",
		wall.Round(time.Millisecond), ran, float64(ran)/wall.Seconds())
	fmt.Println(lab.DS.Stats())
	fmt.Println()
	fmt.Print(experiments.TableI(lab))
	fmt.Println()
	tr := experiments.Figure7(lab)
	fmt.Printf("AM-GAN style loss: %.5f (untrained) -> %.5f (final)\n",
		tr.InitialStyleLoss, tr.StyleLoss[len(tr.StyleLoss)-1])
	fmt.Printf("EVAX detector: %d features, threshold %.4f\n",
		lab.EVAX.Plan.Dim(), lab.EVAX.Threshold)
	fmt.Printf("PerSpectron baseline: %d features, threshold %.4f\n",
		lab.PerSpec.Plan.Dim(), lab.PerSpec.Threshold)

	if *weights != "" {
		if err := writeWeights(*weights, lab); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote detector weights to %s\n", *weights)
	}
	if *bundleTo != "" {
		if err := defense.SaveBundle(*bundleTo, lab.EVAX, lab.DS); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote deployable bundle to %s (run with: evaxsim -bundle %s -prog <attack>)\n", *bundleTo, *bundleTo)
	}
}

// buildLab constructs the lab, journaling the corpus campaign when a
// -resume path is given: each completed simulation job is checkpointed, so
// a killed run restarted with the same flags replays journaled slots from
// disk and re-runs only the remainder — the final corpus is bit-identical
// to an uninterrupted run.
func buildLab(opts experiments.LabOptions, resume string) (*experiments.Lab, error) {
	if resume == "" {
		return experiments.NewLab(opts), nil
	}
	j, err := checkpoint.Open(resume, opts.Corpus.CampaignKey())
	if err != nil {
		if errors.Is(err, checkpoint.ErrCampaignMismatch) {
			return nil, fmt.Errorf("%w\n(the journal at %s was written by a run with different corpus flags; rerun with matching flags or delete it)", err, resume)
		}
		return nil, err
	}
	//evaxlint:ignore droppederr every Append already fsynced; close failure after a finished campaign loses nothing
	defer j.Close()
	if j.Len() > 0 {
		fmt.Printf("resuming corpus campaign from %s (%d jobs already journaled)\n", resume, j.Len())
	}
	return experiments.NewLabCtx(context.Background(), opts, j)
}

func writeWeights(path string, lab *experiments.Lab) error {
	layer := lab.EVAX.Net.Layers[0]
	var engineered []string
	for _, f := range lab.EVAX.Plan.Engineered() {
		engineered = append(engineered, f.Name)
	}
	tr := experiments.Figure7(lab)
	wf := weightsFile{
		FeatureNames: lab.EVAX.Plan.Names(),
		Engineered:   engineered,
		Weights:      layer.W[0],
		Bias:         layer.B[0],
		Threshold:    lab.EVAX.Threshold,
		StyleLoss:    tr.StyleLoss,
		Corpus: map[string]int64{
			"samples":  int64(len(lab.DS.Samples)),
			"interval": int64(lab.Opts.Corpus.Interval),
			"seeds":    int64(lab.Opts.Corpus.Seeds),
		},
	}
	data, err := json.MarshalIndent(wf, "", "  ")
	if err != nil {
		return err
	}
	if err := safeio.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing model output: %w", err)
	}
	return nil
}
