package safeio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	data := []byte(`{"k":1}`)
	if err := WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", info.Mode().Perm())
	}
}

// TestWriteFileAtomicReplace: overwriting an existing file either succeeds
// completely or leaves the old contents untouched — for a fault injected at
// every step of the protocol.
func TestWriteFileAtomicReplace(t *testing.T) {
	old := []byte("old contents that must survive any fault")
	next := []byte("new contents after a clean replace")
	for _, op := range []Op{OpCreate, OpWrite, OpSync, OpRename} {
		t.Run(op.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bundle.json")
			if err := WriteFile(path, old, 0o644); err != nil {
				t.Fatal(err)
			}
			restore := SetHook(func(got Op, _ string) error {
				if got == op {
					return fmt.Errorf("injected fault at %s", got)
				}
				return nil
			})
			err := WriteFile(path, next, 0o644)
			restore()
			if err == nil {
				t.Fatalf("fault at %s not surfaced", op)
			}
			if !strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("err = %v, want the injected fault", err)
			}
			back, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if string(back) != string(old) {
				t.Fatalf("destination corrupted by fault at %s: %q", op, back)
			}
		})
	}
	// After the hook is restored the same write succeeds.
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := WriteFile(path, next, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFileTornWrite: an ErrTorn fault simulates a crash mid-write — a
// half-written temp file is left behind, the destination keeps its old
// bytes, and the error wraps ErrTorn so tests can assert on the fault kind.
func TestWriteFileTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.json")
	old := []byte("good weights v1 good weights v1!")
	if err := WriteFile(path, old, 0o600); err != nil {
		t.Fatal(err)
	}
	restore := SetHook(func(op Op, _ string) error {
		if op == OpWrite {
			return fmt.Errorf("disk yanked: %w", ErrTorn)
		}
		return nil
	})
	err := WriteFile(path, []byte("corrupted candidate payload!!!!!"), 0o600)
	restore()
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	back, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(back) != string(old) {
		t.Fatalf("torn write corrupted the destination: %q", back)
	}
	// The simulated crash leaves the torn temp file on disk, like a real one.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	torn := 0
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("%d torn temp files left behind, want 1", torn)
	}
}

// TestWriteFileCleanFaultLeavesNoTemp: non-torn faults clean up their temp
// file — repeated failed campaigns must not litter the artifact directory.
func TestWriteFileCleanFaultLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	restore := SetHook(func(op Op, _ string) error {
		if op == OpSync {
			return errors.New("enospc")
		}
		return nil
	})
	err := WriteFile(path, []byte("payload"), 0o644)
	restore()
	if err == nil {
		t.Fatal("sync fault not surfaced")
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("failed write left %d files behind", len(entries))
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x.json"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory must fail")
	}
	if !strings.Contains(err.Error(), "safeio:") {
		t.Fatalf("err = %v, want safeio-annotated error", err)
	}
}

func TestChecksumStable(t *testing.T) {
	// FNV-1a offset basis — pins the algorithm so journal records written by
	// one binary stay readable by the next.
	if got := Checksum(nil); got != 0xcbf29ce484222325 {
		t.Fatalf("Checksum(nil) = %#x, want the FNV-1a offset basis", got)
	}
	a, b := Checksum([]byte("abc")), Checksum([]byte("abd"))
	if a == b {
		t.Fatal("checksum does not distinguish near-identical payloads")
	}
	if Checksum(nil) != Checksum([]byte{}) {
		t.Fatal("nil and empty payloads must hash identically")
	}
}

func TestSetHookRestores(t *testing.T) {
	restore := SetHook(func(Op, string) error { return errors.New("always fail") })
	inner := SetHook(nil) // nested override: no faults
	path := filepath.Join(t.TempDir(), "nested.json")
	if err := WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatalf("nested nil hook still faulting: %v", err)
	}
	inner() // back to always-fail
	if err := WriteFile(path, []byte("ok"), 0o644); err == nil {
		t.Fatal("restore did not reinstate the outer hook")
	}
	restore()
	if err := WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatalf("hook not fully restored: %v", err)
	}
}
