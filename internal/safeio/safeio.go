// Package safeio provides crash-safe file persistence for every artifact
// the campaigns write: detector patches, deployable bundles, exported
// weights, and benchmark reports. WriteFile runs the full durability
// protocol — write to a temporary file in the destination directory, fsync
// it, atomically rename over the target, fsync the directory, then read the
// destination back and compare FNV-1a checksums — so a torn write (power
// loss, injected fault, full disk) can never corrupt a previously-good
// file: the destination either keeps its old bytes or holds the complete
// new ones.
//
// The evaxlint rule "rawwrite" forbids os.WriteFile/os.Create outside this
// package, so new persistence paths inherit the guarantee by construction.
// Fault-injection tests drive the protocol through SetHook (see
// internal/faultinject).
package safeio

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Op identifies one step of the write protocol, for fault-injection hooks.
type Op uint8

const (
	// OpCreate is the creation of the temporary file.
	OpCreate Op = iota
	// OpWrite is the payload write into the temporary file.
	OpWrite
	// OpSync is the fsync of the temporary file.
	OpSync
	// OpRename is the atomic rename over the destination.
	OpRename
	// OpRead is the checksummed read-back of the destination.
	OpRead
)

// String names the protocol step.
func (op Op) String() string {
	switch op {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRead:
		return "read-back"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ErrTorn is the sentinel for an injected torn write: the hook that returns
// an error wrapping it makes WriteFile leave a half-written temporary file
// behind, simulating a crash mid-write. The destination must stay intact.
var ErrTorn = errors.New("torn write injected")

// Hook intercepts protocol steps for deterministic fault injection. A
// non-nil return fails that step; wrapping ErrTorn at OpWrite additionally
// half-writes the payload first (the simulated crash).
type Hook func(op Op, path string) error

var (
	hookMu sync.Mutex
	hook   Hook
)

// SetHook installs h for fault-injection tests and returns a restore
// function. Production code never installs a hook.
func SetHook(h Hook) (restore func()) {
	hookMu.Lock()
	defer hookMu.Unlock()
	prev := hook
	hook = h
	return func() {
		hookMu.Lock()
		defer hookMu.Unlock()
		hook = prev
	}
}

// fire consults the installed hook, if any.
func fire(op Op, path string) error {
	hookMu.Lock()
	h := hook
	hookMu.Unlock()
	if h == nil {
		return nil
	}
	return h(op, path)
}

// Checksum returns the FNV-1a fingerprint WriteFile verifies on read-back.
func Checksum(data []byte) uint64 {
	h := fnv.New64a()
	//evaxlint:ignore droppederr hash.Hash.Write never returns an error
	h.Write(data)
	return h.Sum64()
}

// WriteFile persists data at path crash-safely: temp file, fsync, rename,
// directory fsync, checksummed read-back. On any error the destination is
// untouched (it either has its previous contents or the complete new
// ones — never a prefix).
func WriteFile(path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	if err := fire(OpCreate, path); err != nil {
		return fmt.Errorf("safeio: create temp for %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("safeio: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(step Op, err error) error {
		//evaxlint:ignore droppederr best-effort cleanup of the temp file on an already-failed write
		tmp.Close()
		//evaxlint:ignore droppederr best-effort cleanup of the temp file on an already-failed write
		os.Remove(tmpName)
		return fmt.Errorf("safeio: %s %s: %w", step, path, err)
	}

	if herr := fire(OpWrite, path); herr != nil {
		if errors.Is(herr, ErrTorn) {
			// Simulated crash: half the payload lands in the temp file,
			// which is deliberately left behind, and the destination is
			// never touched — exactly the on-disk state after power loss.
			//evaxlint:ignore droppederr simulated crash: the injected fault is the only error that matters
			tmp.Write(data[:len(data)/2])
			//evaxlint:ignore droppederr simulated crash leaves the torn temp file behind
			tmp.Close()
			return fmt.Errorf("safeio: write %s: %w", path, herr)
		}
		return fail(OpWrite, herr)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(OpWrite, err)
	}
	if herr := fire(OpSync, path); herr != nil {
		return fail(OpSync, herr)
	}
	if err := tmp.Sync(); err != nil {
		return fail(OpSync, err)
	}
	if err := tmp.Close(); err != nil {
		//evaxlint:ignore droppederr best-effort cleanup of the temp file on an already-failed write
		os.Remove(tmpName)
		return fmt.Errorf("safeio: close temp for %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		//evaxlint:ignore droppederr best-effort cleanup of the temp file on an already-failed write
		os.Remove(tmpName)
		return fmt.Errorf("safeio: chmod temp for %s: %w", path, err)
	}
	if herr := fire(OpRename, path); herr != nil {
		//evaxlint:ignore droppederr best-effort cleanup of the temp file on an already-failed write
		os.Remove(tmpName)
		return fmt.Errorf("safeio: rename %s: %w", path, herr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		//evaxlint:ignore droppederr best-effort cleanup of the temp file on an already-failed write
		os.Remove(tmpName)
		return fmt.Errorf("safeio: rename %s: %w", path, err)
	}
	syncDir(dir)

	if herr := fire(OpRead, path); herr != nil {
		return fmt.Errorf("safeio: %s %s: %w", OpRead, path, herr)
	}
	back, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("safeio: %s %s: %w", OpRead, path, err)
	}
	if Checksum(back) != Checksum(data) {
		return fmt.Errorf("safeio: %s %s: checksum mismatch (%d bytes on disk, %d written)",
			OpRead, path, len(back), len(data))
	}
	return nil
}

// syncDir makes the rename durable by fsyncing the directory. Best effort:
// some filesystems refuse directory fsync, and the rename itself already
// guarantees atomicity (only durability of the *new name* is at stake).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	//evaxlint:ignore droppederr directory fsync is best-effort durability, not correctness
	d.Sync()
	//evaxlint:ignore droppederr read-only directory handle
	d.Close()
}
