package serve

import (
	"fmt"
	"math/rand"
	"sync"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/engine"
	"evax/internal/runner"
)

// ReplayResult summarizes a deterministic corpus replay. Hash commits to
// every score bit and flag decision in corpus order, so two replays agree iff
// their verdicts are bit-identical.
type ReplayResult struct {
	Rows     int     `json:"rows"`
	Flagged  int     `json:"flagged"`
	Seed     int64   `json:"seed"`
	Hash     uint64  `json:"hash"`
	MeanRate float64 `json:"-"` // rows/sec, filled by callers that time the run
}

// HashHex renders the verdict digest the way reports carry it (raw uint64s
// lose precision through JSON number round-trips).
func (r ReplayResult) HashHex() string { return fmt.Sprintf("%016x", r.Hash) }

// Replay scores every sample of a recorded corpus through the online scoring
// path and returns a verdict digest. backend selects the scoring kernel
// exactly as Config.Backend does ("" means the float kernel). It is the
// in-memory form of ReplayGeneration.
func Replay(det *detect.Detector, ds *dataset.Dataset, samples []dataset.Sample, seed int64, jobs int, backend string) (ReplayResult, error) {
	if len(samples) == 0 {
		return ReplayResult{Seed: seed}, nil
	}
	g, err := engine.New(det, ds, backend)
	if err != nil {
		return ReplayResult{}, err
	}
	return ReplayGeneration(g, samples, seed, jobs)
}

// ReplayGeneration scores every sample of a recorded corpus through one
// engine generation. The seed shuffles the scoring order and jobs sets the
// parallel fan-out — yet the result is bit-identical for every (seed, jobs)
// pair, because each score depends only on its row and the digest is
// computed in corpus order. That invariant is the service's determinism
// contract: batching, shard assignment, and scheduling can never change a
// verdict. The digest is the same FNV-1a verdict fold the engine's canary
// gate computes, so a post-swap replay must reproduce the promoted
// candidate's canary digest exactly.
func ReplayGeneration(g *engine.Generation, samples []dataset.Sample, seed int64, jobs int) (ReplayResult, error) {
	if len(samples) == 0 {
		return ReplayResult{Seed: seed}, nil
	}
	rawDim := len(samples[0].Raw)
	if rawDim != g.RawDim() {
		return ReplayResult{}, fmt.Errorf("serve: replay corpus streams %d counters, generation scores %d",
			rawDim, g.RawDim())
	}
	for i, s := range samples {
		if len(s.Raw) != rawDim {
			return ReplayResult{}, fmt.Errorf("serve: replay row %d has %d counters, row 0 has %d", i, len(s.Raw), rawDim)
		}
	}

	// The seed permutes scoring order — deliberately decoupling "order the
	// engine works in" from "order the digest reads in".
	order := rand.New(rand.NewSource(seed)).Perm(len(samples))

	var pool sync.Pool
	pool.New = func() any { return g.NewScorer() }

	scores := make([]float64, len(samples))
	runner.Map(runner.Options{Jobs: jobs}, len(samples), func(i int) struct{} {
		s := &samples[order[i]]
		sc := pool.Get().(*engine.Scorer)
		scores[order[i]] = sc.Score(s.Raw, s.Instructions, s.Cycles)
		pool.Put(sc)
		return struct{}{}
	})

	res := ReplayResult{Rows: len(samples), Seed: seed}
	thr := g.Threshold()
	d := engine.NewDigest()
	for _, score := range scores {
		d.Add(score, score >= thr)
	}
	res.Flagged = d.Flagged()
	res.Hash = d.Sum()
	return res, nil
}
