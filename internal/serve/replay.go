package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/runner"
)

// ReplayResult summarizes a deterministic corpus replay. Hash commits to
// every score bit and flag decision in corpus order, so two replays agree iff
// their verdicts are bit-identical.
type ReplayResult struct {
	Rows     int     `json:"rows"`
	Flagged  int     `json:"flagged"`
	Seed     int64   `json:"seed"`
	Hash     uint64  `json:"hash"`
	MeanRate float64 `json:"-"` // rows/sec, filled by callers that time the run
}

// Replay scores every sample of a recorded corpus through the online scoring
// path and returns a verdict digest. The seed shuffles the scoring order and
// jobs sets the parallel fan-out — yet the result is bit-identical for every
// (seed, jobs) pair, because each score depends only on its row and the
// digest is computed in corpus order. That invariant is the service's
// determinism contract: batching, shard assignment, and scheduling can never
// change a verdict. backend selects the scoring kernel exactly as
// Config.Backend does ("" means the float kernel).
func Replay(det *detect.Detector, ds *dataset.Dataset, samples []dataset.Sample, seed int64, jobs int, backend string) (ReplayResult, error) {
	if len(samples) == 0 {
		return ReplayResult{Seed: seed}, nil
	}
	rawDim := len(samples[0].Raw)
	for i, s := range samples {
		if len(s.Raw) != rawDim {
			return ReplayResult{}, fmt.Errorf("serve: replay row %d has %d counters, row 0 has %d", i, len(s.Raw), rawDim)
		}
	}

	// The seed permutes scoring order — deliberately decoupling "order the
	// engine works in" from "order the digest reads in".
	order := rand.New(rand.NewSource(seed)).Perm(len(samples))

	var pool sync.Pool
	pool.New = func() any {
		sc, err := newScorer(det, ds, rawDim, backend)
		if err != nil {
			panic(err) // dimensions were validated below before any job ran
		}
		return sc
	}
	// Surface a dimension mismatch as an error, not a job panic.
	probe, err := newScorer(det, ds, rawDim, backend)
	if err != nil {
		return ReplayResult{}, err
	}
	pool.Put(probe)

	scores := make([]float64, len(samples))
	runner.Map(runner.Options{Jobs: jobs}, len(samples), func(i int) struct{} {
		s := &samples[order[i]]
		sc := pool.Get().(*scorer)
		scores[order[i]] = sc.score(s.Raw, s.Instructions, s.Cycles)
		pool.Put(sc)
		return struct{}{}
	})

	res := ReplayResult{Rows: len(samples), Seed: seed}
	thr := probe.threshold()
	h := fnvOffset
	for _, score := range scores {
		h = fnvU64(h, math.Float64bits(score))
		if score >= thr {
			res.Flagged++
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	res.Hash = h
	return res, nil
}

// FNV-1a over verdict bits: the replay digest.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

func fnvU64(h uint64, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = fnvByte(h, byte(v>>s))
	}
	return h
}
