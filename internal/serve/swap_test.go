package serve

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/engine"
	"evax/internal/testleak"
)

// startSwapServer boots a server whose manager is wired for live vaccination:
// crash-safe state directory (returned, so tests can inspect staging), golden
// canary corpus, default agreement gate.
func startSwapServer(t *testing.T, cfg Config, canary []dataset.Sample) (*Server, string) {
	t.Helper()
	det, ds, _ := lab(t)
	g, err := engine.New(det, ds, cfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()
	mgr, err := engine.NewManager(g, engine.ManagerConfig{
		Dir:     stateDir,
		Backend: cfg.Backend,
		Corpus:  canary,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromManager(mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if _, err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, stateDir
}

// writeShiftedCandidate saves a candidate bundle that is byte-distinct from
// the lab bundle (different threshold) but verdict-identical on every lab
// sample: the new threshold is placed strictly inside the score gap around the
// incumbent threshold, so no flag decision moves. Swapping it in must
// therefore never change a verdict — the strongest possible zero-downtime
// check — while hashes, epochs and digests still prove the swap happened.
func writeShiftedCandidate(t *testing.T, dir string) string {
	t.Helper()
	det, ds, samples := lab(t)
	sc := testScorer(t, det, ds, len(samples[0].Raw), "")
	thr := sc.Threshold()
	lo, hi := math.Inf(-1), math.Inf(1) // nearest scores below / at-or-above thr
	for i := range samples {
		s := &samples[i]
		score := sc.Score(s.Raw, s.Instructions, s.Cycles)
		if score < thr && score > lo {
			lo = score
		}
		if score >= thr && score < hi {
			hi = score
		}
	}
	// Any threshold in (lo, hi] preserves every flag decision; bundle
	// validation additionally demands it be non-negative.
	newThr := thr / 2
	if !math.IsInf(lo, -1) {
		newThr = lo + (thr-lo)/2
	}
	if newThr == thr || newThr < 0 {
		t.Fatalf("degenerate score gap: thr=%v lo=%v hi=%v", thr, lo, hi)
	}
	cand := *det
	cand.Threshold = newThr
	path := filepath.Join(dir, "candidate.json")
	if err := defense.SaveBundle(path, &cand, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeHostileCandidate saves a candidate whose threshold of zero flags every
// window (sigmoid scores are strictly positive), so its verdicts disagree
// with the incumbent on every benign row — the canary gate must refuse it.
func writeHostileCandidate(t *testing.T, dir string) string {
	t.Helper()
	det, ds, _ := lab(t)
	cand := *det
	cand.Threshold = 0
	path := filepath.Join(dir, "hostile.json")
	if err := defense.SaveBundle(path, &cand, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAdminCodecRoundTrip: the FrameAdmin wire codec survives a round trip,
// rejects empty payloads, bounds the operand path, and truncates oversized
// paths on encode rather than producing an undecodable frame.
func TestAdminCodecRoundTrip(t *testing.T) {
	for _, a := range []Admin{
		{Op: AdminStatus},
		{Op: AdminRollback},
		{Op: AdminSwap, Path: "/var/lib/evax/candidates/gen-00ff.json"},
	} {
		buf := AppendAdmin(nil, a)
		fr, rest, err := DecodeFrame(buf)
		if err != nil || len(rest) != 0 || fr.Type != FrameAdmin {
			t.Fatalf("frame round trip: %+v rest=%d err=%v", fr, len(rest), err)
		}
		got, err := DecodeAdmin(fr.Payload)
		if err != nil || got != a {
			t.Fatalf("admin round trip: got %+v want %+v err=%v", got, a, err)
		}
	}
	if _, err := DecodeAdmin(nil); err == nil {
		t.Fatal("empty admin payload decoded")
	}
	if _, err := DecodeAdmin(make([]byte, 2+maxAdminPath)); err == nil {
		t.Fatal("oversized admin path decoded")
	}
	// Encode-side truncation keeps the frame within the decode bound.
	long := Admin{Op: AdminSwap, Path: strings.Repeat("x", maxAdminPath+100)}
	fr, _, err := DecodeFrame(AppendAdmin(nil, long))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAdmin(fr.Payload)
	if err != nil || len(got.Path) != maxAdminPath {
		t.Fatalf("truncated path length %d, want %d (err=%v)", len(got.Path), maxAdminPath, err)
	}
}

// TestAdminStatusSwapRollback drives the admin protocol end to end over a
// live connection: status reports the generation pair, a swap promotes a
// gated candidate (canary numbers included), a rollback restores the
// incumbent, and malformed operations answer with errors, not hangs.
func TestAdminStatusSwapRollback(t *testing.T) {
	_, _, samples := lab(t)
	canary := samples[:200]
	srv, _ := startSwapServer(t, DefaultConfig(), canary)
	origHash := srv.Manager().Active().HashHex()

	cl, err := Dial(srv.Addr(), len(samples[0].Raw))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveHash != origHash || st.FallbackHash != "" || st.Epoch != 1 {
		t.Fatalf("fresh status: %+v, want active %s epoch 1", st, origHash)
	}
	if st.RawDim != len(samples[0].Raw) || st.Backend != BackendFloat {
		t.Fatalf("status provenance: %+v", st)
	}

	// Malformed operations: refused with an error result, connection stays up.
	if res, err := cl.Swap(""); err != nil || res.Ok || !strings.Contains(res.Error, "path") {
		t.Fatalf("empty-path swap: %+v err=%v", res, err)
	}
	if res, err := cl.Swap(filepath.Join(t.TempDir(), "missing.json")); err != nil || res.Ok {
		t.Fatalf("missing-candidate swap: %+v err=%v", res, err)
	} else if res.Status.ActiveHash != origHash || res.Status.Epoch != 1 {
		t.Fatalf("failed swap moved the generation: %+v", res.Status)
	}
	if res, err := cl.Rollback(); err != nil || res.Ok {
		t.Fatalf("rollback with no fallback: %+v err=%v", res, err)
	}
	if res, err := cl.Admin(Admin{Op: 99}); err != nil || res.Ok || !strings.Contains(res.Error, "unknown admin op") {
		t.Fatalf("unknown op: %+v err=%v", res, err)
	}

	// A real promotion: canary-gated, staged, swapped.
	candPath := writeShiftedCandidate(t, t.TempDir())
	res, err := cl.Swap(candPath)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok || res.Report == nil || !res.Report.Swapped {
		t.Fatalf("swap refused: %+v", res)
	}
	rep := res.Report
	if rep.CanaryRows != len(canary) || rep.Agreement != 1 || rep.Gate != engine.DefaultAgreementGate {
		t.Fatalf("canary numbers: rows=%d agreement=%v gate=%v", rep.CanaryRows, rep.Agreement, rep.Gate)
	}
	if rep.PrevHash != origHash || rep.ActiveHash == origHash || rep.CanaryDigest == "" {
		t.Fatalf("report lineage: %+v", rep)
	}
	if res.Status.ActiveHash != rep.ActiveHash || res.Status.FallbackHash != origHash || res.Status.Epoch != 2 {
		t.Fatalf("post-swap status: %+v", res.Status)
	}
	// The server-side snapshot carries the new provenance.
	snap := srv.snapshot()
	if snap.BundleHash != rep.ActiveHash || snap.Epoch != 2 {
		t.Fatalf("snapshot provenance: hash=%s epoch=%d", snap.BundleHash, snap.Epoch)
	}

	// Operator rollback: the incumbent returns, the candidate parks in the
	// fallback slot.
	rb, err := cl.Rollback()
	if err != nil || !rb.Ok {
		t.Fatalf("rollback: %+v err=%v", rb, err)
	}
	if rb.Status.ActiveHash != origHash || rb.Status.FallbackHash != rep.ActiveHash || rb.Status.Epoch != 3 {
		t.Fatalf("post-rollback status: %+v", rb.Status)
	}
}

// TestHotSwapZeroDroppedFrames is the live-vaccination acceptance test: four
// connections stream flat out while an operator connection promotes a
// candidate mid-stream. Every accepted frame must still receive its verdict,
// bit-identical to the offline pipeline (the candidate is verdict-preserving
// by construction), and the post-swap replay digest must reproduce the
// promotion report's canary digest. Run under -race.
func TestHotSwapZeroDroppedFrames(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	canary := samples[:300]
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.QueueBound = 4096
	srv, _ := startSwapServer(t, cfg, canary)
	origHash := srv.Manager().Active().HashHex()
	candPath := writeShiftedCandidate(t, t.TempDir())

	const conns = 4
	const perConn = 2000
	type result struct {
		stats    ConnStats
		verdicts []Verdict
		rejects  []Reject
		err      error
	}
	results := make([]result, conns)
	parts := make([][]dataset.Sample, conns)
	for ci := range parts {
		// Round-robin slices of the corpus, offset per connection.
		part := make([]dataset.Sample, perConn)
		for i := range part {
			part[i] = samples[(ci+i)%len(samples)]
		}
		parts[ci] = part
	}

	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			results[ci] = func() (r result) {
				cl, err := Dial(srv.Addr(), len(samples[0].Raw))
				if err != nil {
					r.err = err
					return r
				}
				defer cl.Close()
				var instrStart uint64
				for i := range parts[ci] {
					s := &parts[ci][i]
					if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
						r.err = err
						return r
					}
					instrStart += s.Instructions
				}
				if err := cl.Bye(); err != nil {
					r.err = err
					return r
				}
				r.stats, r.verdicts, r.rejects, r.err = cl.DrainStats()
				return r
			}()
		}(ci)
	}

	// The operator: wait until the stream is genuinely mid-flight, then
	// promote over a dedicated quiescent connection.
	var swapRes AdminResult
	swapErr := make(chan error, 1)
	go func() {
		for srv.Metrics().Snapshot().Accepted < conns*perConn/4 {
			time.Sleep(100 * time.Microsecond)
		}
		cl, err := Dial(srv.Addr(), len(samples[0].Raw))
		if err != nil {
			swapErr <- err
			return
		}
		defer cl.Close()
		swapRes, err = cl.Swap(candPath)
		swapErr <- err
	}()
	if err := <-swapErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if !swapRes.Ok || swapRes.Report == nil || !swapRes.Report.Swapped {
		t.Fatalf("mid-stream swap refused: %+v", swapRes)
	}
	if swapRes.Report.PrevHash != origHash || swapRes.Status.Epoch != 2 {
		t.Fatalf("swap lineage: %+v", swapRes)
	}

	// Zero dropped frames: every connection's accepted count equals its
	// scored count equals its delivered verdicts, with no rejects at all.
	for ci, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", ci, r.err)
		}
		if len(r.rejects) != 0 {
			t.Errorf("client %d: %d rejects during hot swap", ci, len(r.rejects))
		}
		if r.stats.Accepted != perConn || r.stats.Scored != perConn {
			t.Errorf("client %d: accepted=%d scored=%d, sent %d — frames dropped during swap",
				ci, r.stats.Accepted, r.stats.Scored, perConn)
		}
		if len(r.verdicts) != perConn {
			t.Errorf("client %d: %d verdicts for %d sent", ci, len(r.verdicts), perConn)
		}
	}

	// Bit-exactness across the swap: the candidate preserves every flag
	// decision and (same weights) every score bit, so each connection's full
	// verdict stream must equal the offline reference regardless of which
	// generation scored which batch.
	for ci, r := range results {
		want := offlineVerdicts(t, parts[ci], cfg.SecureWindow)
		for i := range want {
			got := r.verdicts[i]
			if got.Seq != want[i].Seq ||
				math.Float64bits(got.Score) != math.Float64bits(want[i].Score) ||
				got.Flags != want[i].Flags {
				t.Fatalf("client %d verdict %d diverged across the swap: got %+v want %+v",
					ci, i, got, want[i])
			}
		}
	}

	// The generation really changed: new provenance on the snapshot, and the
	// now-active generation's replay digest reproduces the canary digest the
	// gate approved — scoring continuity, proven end to end.
	snap := srv.snapshot()
	if snap.BundleHash != swapRes.Report.ActiveHash || snap.BundleHash == origHash || snap.Epoch != 2 {
		t.Fatalf("post-swap snapshot: hash=%s epoch=%d (orig %s)", snap.BundleHash, snap.Epoch, origHash)
	}
	replay, err := ReplayGeneration(srv.Manager().Active(), canary, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if replay.HashHex() != swapRes.Report.CanaryDigest {
		t.Fatalf("post-swap replay digest %s != canary digest %s", replay.HashHex(), swapRes.Report.CanaryDigest)
	}
}

// TestSwapGateRejectionKeepsServing: a candidate that disagrees with the
// incumbent beyond the gate is refused, and the old generation keeps serving
// bit-identical verdicts as if nothing happened.
func TestSwapGateRejectionKeepsServing(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	canary := samples[:300]
	srv, stateDir := startSwapServer(t, DefaultConfig(), canary)
	origHash := srv.Manager().Active().HashHex()
	hostile := writeHostileCandidate(t, t.TempDir())

	cl, err := Dial(srv.Addr(), len(samples[0].Raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Swap(hostile)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if res.Ok {
		t.Fatalf("hostile candidate went live: %+v", res)
	}
	if !strings.Contains(res.Error, "canary gate") {
		t.Fatalf("rejection reason: %q", res.Error)
	}
	rep := res.Report
	if rep == nil || rep.Swapped || rep.RolledBack || rep.Agreement >= rep.Gate {
		t.Fatalf("rejection report: %+v", rep)
	}
	if res.Status.ActiveHash != origHash || res.Status.Epoch != 1 || res.Status.FallbackHash != "" {
		t.Fatalf("rejected swap moved the generation: %+v", res.Status)
	}
	// The refused candidate was never staged into the state directory: only
	// the ledger and the incumbent's generation file live there.
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("state dir holds %v, want only the ledger and the incumbent", names)
	}

	// Still serving, still bit-identical to offline.
	part := samples[:64]
	stats, verdicts, rejects := streamAll(t, srv.Addr(), part)
	if len(rejects) != 0 || stats.Scored != uint64(len(part)) {
		t.Fatalf("post-rejection serving broken: %+v rejects=%d", stats, len(rejects))
	}
	want := offlineVerdicts(t, part, DefaultConfig().SecureWindow)
	for i := range want {
		if math.Float64bits(verdicts[i].Score) != math.Float64bits(want[i].Score) || verdicts[i].Flags != want[i].Flags {
			t.Fatalf("verdict %d diverged after rejected swap", i)
		}
	}
}

// TestRunLoadSwapMidRun: the load harness's swap-mid-run mode promotes a
// candidate once the configured fraction of samples is in flight, loses
// nothing, and fills the `swap` section evaxload merges into
// BENCH_runner.json.
func TestRunLoadSwapMidRun(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	canary := samples[:200]
	cfg := DefaultConfig()
	cfg.QueueBound = 4096
	srv, _ := startSwapServer(t, cfg, canary)
	candPath := writeShiftedCandidate(t, t.TempDir())

	opts := LoadOptions{
		Addr:       srv.Addr(),
		Clients:    3,
		PerClient:  400,
		Samples:    samples,
		SwapBundle: candPath,
		SwapAfter:  0.4,
	}
	rep, err := RunLoad(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	wantSent := uint64(opts.Clients * opts.PerClient)
	if rep.Sent != wantSent || rep.Accepted+rep.Rejected != rep.Sent {
		t.Fatalf("accounting: sent=%d accepted=%d rejected=%d want %d", rep.Sent, rep.Accepted, rep.Rejected, wantSent)
	}
	sw := rep.Swap
	if sw == nil {
		t.Fatal("swap-mid-run produced no swap section")
	}
	if sw.Bundle != candPath || !sw.Result.Ok || sw.Result.Report == nil || !sw.Result.Report.Swapped {
		t.Fatalf("swap result: %+v", sw.Result)
	}
	if min := uint64(0.4 * float64(wantSent)); sw.TriggeredAfterSent < min {
		t.Fatalf("swap triggered after %d sends, want >= %d", sw.TriggeredAfterSent, min)
	}
	if sw.LatencyMs <= 0 {
		t.Fatalf("swap latency %v ms", sw.LatencyMs)
	}
	if sw.DuringRows > 0 && sw.DuringP99Ms < sw.DuringP50Ms {
		t.Fatalf("during-swap percentiles out of order: p50=%v p99=%v", sw.DuringP50Ms, sw.DuringP99Ms)
	}
	if sw.Result.Status.Epoch != 2 || sw.Result.Status.ActiveHash != sw.Result.Report.ActiveHash {
		t.Fatalf("post-swap status: %+v", sw.Result.Status)
	}
	// The harness's zero-loss proof already ran per connection (scored ==
	// verdicts seen); the server-side totals must agree too.
	snap := srv.Metrics().Snapshot()
	if snap.Scored != rep.Accepted {
		t.Fatalf("server scored %d, harness accepted %d", snap.Scored, rep.Accepted)
	}
}
