package serve

import (
	"fmt"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/kernel"
)

// Backend selectors for Config.Backend: the fused float kernel (bit-identical
// to offline scoring) and the quantized int8 kernel (the paper's hardware
// arithmetic; fastest, gated by verdict agreement).
const (
	BackendFloat     = "float"
	BackendQuantized = "quantized"
)

// scorer executes the deployed detection pipeline for one raw counter window
// or one contiguous batch of windows. The production path is the fused
// kernel (internal/kernel): expansion, normalization, feature gather,
// engineered features and the dot product in a single pass over only the
// gathered slots, float or quantized per Config.Backend. Deep detectors —
// outside the kernel's single-layer model — fall back to the legacy
// three-pass pipeline. Either way the score path performs zero heap
// allocations after construction, and the float path is bit-identical to
// detect.Detector.Score over the same rows.
type scorer struct {
	be     kernel.Backend
	rawDim int

	// Legacy fallback (deep detectors): detector clone + expansion scratch.
	det     *detect.Detector
	ds      *dataset.Dataset
	exp     *hpc.Expander
	derived []float64
}

// newScorer compiles a scorer over det and the normalizer ds. rawDim is the
// base counter-space width clients must stream; backend selects the kernel
// ("" means float).
func newScorer(det *detect.Detector, ds *dataset.Dataset, rawDim int, backend string) (*scorer, error) {
	if ds.DerivedDim != hpc.DerivedSpaceSize(rawDim) {
		return nil, fmt.Errorf("serve: normalizer covers %d derived features, expansion of %d counters needs %d",
			ds.DerivedDim, rawDim, hpc.DerivedSpaceSize(rawDim))
	}
	sc := &scorer{rawDim: rawDim}
	k, err := detect.CompileScorer(det, ds.Maxima())
	switch backend {
	case BackendQuantized:
		if err != nil {
			return nil, fmt.Errorf("serve: quantized backend: %w", err)
		}
		q, qerr := kernel.Quantize(k)
		if qerr != nil {
			return nil, fmt.Errorf("serve: quantized backend: %w", qerr)
		}
		sc.be = q
	case BackendFloat, "":
		if err == nil {
			sc.be = k
		} else {
			// Deep detector: keep the legacy expand→normalize→score path.
			exp := hpc.NewExpander(rawDim)
			sc.det = det.Clone()
			sc.ds = ds
			sc.exp = exp
			sc.derived = make([]float64, exp.Dim())
		}
	default:
		return nil, fmt.Errorf("serve: unknown backend %q (want %q or %q)", backend, BackendFloat, BackendQuantized)
	}
	return sc, nil
}

// score runs the pipeline on one raw window. Zero allocations.
func (sc *scorer) score(raw []float64, instructions, cycles uint64) float64 {
	if sc.be != nil {
		return sc.be.ScoreRaw(raw, instructions, cycles)
	}
	sc.exp.ExpandInto(sc.derived, hpc.Sample{
		Values:       raw,
		Instructions: instructions,
		Cycles:       cycles,
	})
	sc.ds.NormalizeInPlace(sc.derived)
	return sc.det.Score(sc.derived)
}

// scoreBatch scores rows of contiguous raw windows (len(out) rows of rawDim
// values) — the shard flush form, one fused-kernel sweep over the whole
// batch. Zero allocations.
//
//evaxlint:hotpath
func (sc *scorer) scoreBatch(raw []float64, instr, cycles []uint64, out []float64) {
	if sc.be != nil {
		sc.be.ScoreRawRows(raw, instr, cycles, out)
		return
	}
	for i := range out {
		out[i] = sc.score(raw[i*sc.rawDim:(i+1)*sc.rawDim], instr[i], cycles[i])
	}
}

// threshold exposes the decision boundary of the compiled backend.
func (sc *scorer) threshold() float64 {
	if sc.be != nil {
		return sc.be.Threshold()
	}
	return sc.det.Threshold
}
