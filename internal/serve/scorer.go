package serve

import (
	"fmt"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
)

// scorer executes the deployed detection pipeline for one raw counter window:
// compiled derived-space expansion, normalization by the training corpus's
// maxima, and the detector's gather-and-forward pass. It owns a detector
// clone and an expansion scratch row, so after construction the score path
// performs zero heap allocations — and because every step is the exact
// float-op sequence of the offline path, online scores are bit-identical to
// detect.Detector.Score over the same rows.
type scorer struct {
	det     *detect.Detector
	ds      *dataset.Dataset
	exp     *hpc.Expander
	derived []float64
	rawDim  int
}

// newScorer compiles a scorer over det (cloned: forward-pass scratch is
// per-scorer) and the normalizer ds. rawDim is the base counter-space width
// clients must stream.
func newScorer(det *detect.Detector, ds *dataset.Dataset, rawDim int) (*scorer, error) {
	exp := hpc.NewExpander(rawDim)
	if ds.DerivedDim != exp.Dim() {
		return nil, fmt.Errorf("serve: normalizer covers %d derived features, expansion of %d counters needs %d",
			ds.DerivedDim, rawDim, exp.Dim())
	}
	return &scorer{
		det:     det.Clone(),
		ds:      ds,
		exp:     exp,
		derived: make([]float64, exp.Dim()),
		rawDim:  rawDim,
	}, nil
}

// score runs the pipeline on one raw window. Zero allocations.
func (sc *scorer) score(raw []float64, instructions, cycles uint64) float64 {
	sc.exp.ExpandInto(sc.derived, hpc.Sample{
		Values:       raw,
		Instructions: instructions,
		Cycles:       cycles,
	})
	sc.ds.NormalizeInPlace(sc.derived)
	return sc.det.Score(sc.derived)
}

// threshold exposes the detector's decision boundary.
func (sc *scorer) threshold() float64 { return sc.det.Threshold }
