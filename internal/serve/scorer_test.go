package serve

import (
	"math"
	"testing"
)

// The serving scorer is a thin dispatch over the kernel backends; these
// tests pin the dispatch itself — selector strings, batch/single agreement,
// and the quantized backend's verdict-agreement contract against float.

func TestScorerBackendSelection(t *testing.T) {
	det, ds, samples := lab(t)
	rawDim := len(samples[0].Raw)

	for _, backend := range []string{"", BackendFloat, BackendQuantized} {
		if _, err := newScorer(det, ds, rawDim, backend); err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
	}
	if _, err := newScorer(det, ds, rawDim, "int4"); err == nil {
		t.Fatal("unknown backend must be rejected")
	}
}

func TestScorerBatchMatchesSingle(t *testing.T) {
	det, ds, samples := lab(t)
	rawDim := len(samples[0].Raw)
	n := len(samples)
	raw := make([]float64, n*rawDim)
	instr := make([]uint64, n)
	cycles := make([]uint64, n)
	for i, s := range samples {
		copy(raw[i*rawDim:(i+1)*rawDim], s.Raw)
		instr[i] = s.Instructions
		cycles[i] = s.Cycles
	}

	for _, backend := range []string{BackendFloat, BackendQuantized} {
		sc, err := newScorer(det, ds, rawDim, backend)
		if err != nil {
			t.Fatalf("backend %q: %v", backend, err)
		}
		out := make([]float64, n)
		sc.scoreBatch(raw, instr, cycles, out)
		for i, s := range samples {
			single := sc.score(s.Raw, s.Instructions, s.Cycles)
			if math.Float64bits(single) != math.Float64bits(out[i]) {
				t.Fatalf("backend %q row %d: batch %v != single %v", backend, i, out[i], single)
			}
		}
	}
}

// The quantized backend serves the same verdicts as the float kernel on the
// lab corpus — the serving-side image of the evaxbench agreement gate.
func TestScorerBackendQuantizedAgreement(t *testing.T) {
	det, ds, samples := lab(t)
	rawDim := len(samples[0].Raw)
	fsc, err := newScorer(det, ds, rawDim, BackendFloat)
	if err != nil {
		t.Fatal(err)
	}
	qsc, err := newScorer(det, ds, rawDim, BackendQuantized)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, s := range samples {
		ff := fsc.score(s.Raw, s.Instructions, s.Cycles) >= fsc.threshold()
		qf := qsc.score(s.Raw, s.Instructions, s.Cycles) >= qsc.threshold()
		if ff == qf {
			agree++
		}
	}
	if rate := float64(agree) / float64(len(samples)); rate < 0.995 {
		t.Fatalf("quantized/float verdict agreement %.4f < 0.995 (%d/%d)", rate, agree, len(samples))
	}
}
