package serve

import (
	"encoding/json"
	"fmt"
)

// genStatus snapshots the swapper's generation pair for an AdminResult.
func (s *Server) genStatus() GenStatus {
	g := s.sw.Active()
	st := GenStatus{
		ActiveHash: g.HashHex(),
		Epoch:      s.sw.Epoch(),
		Backend:    g.Backend(),
		RawDim:     g.RawDim(),
	}
	if fb := s.sw.Fallback(); fb != nil {
		st.FallbackHash = fb.HashHex()
	}
	return st
}

// adminOp executes one live-vaccination operation against the manager. It
// runs on the requesting connection's reader goroutine: promotion
// (canary-scoring included) happens off the scoring lanes, which keep
// serving the old generation until the atomic swap lands.
func (s *Server) adminOp(a Admin) AdminResult {
	var res AdminResult
	switch a.Op {
	case AdminStatus:
		res.Ok = true
	case AdminSwap:
		if a.Path == "" {
			res.Error = "serve: admin swap needs a candidate bundle path"
			break
		}
		rep, err := s.mgr.PromoteFile(a.Path)
		res.Report = &rep
		if err != nil {
			res.Error = err.Error()
			break
		}
		res.Ok = rep.Swapped
		if !rep.Swapped {
			res.Error = rep.Reason
		}
	case AdminRollback:
		rep, err := s.mgr.Rollback()
		res.Report = &rep
		if err != nil {
			res.Error = err.Error()
			break
		}
		res.Ok = true
	default:
		res.Error = fmt.Sprintf("serve: unknown admin op %d", a.Op)
	}
	res.Status = s.genStatus()
	return res
}

// handleAdmin decodes one admin frame, runs the operation, and answers with
// the JSON AdminResult on the same connection.
func (c *conn) handleAdmin(payload []byte) {
	a, err := DecodeAdmin(payload)
	var res AdminResult
	if err != nil {
		res = AdminResult{Error: err.Error(), Status: c.srv.genStatus()}
	} else {
		res = c.srv.adminOp(a)
	}
	data, merr := json.Marshal(res)
	if merr != nil {
		// AdminResult is plain data; a marshal failure means a bug, and the
		// client still deserves a frame rather than a hang.
		data = []byte(fmt.Sprintf(`{"ok":false,"error":%q}`, merr.Error()))
	}
	c.deliver(AppendFrame(nil, FrameAdmin, data))
}

// Admin sends one live-vaccination operation and waits for its result. The
// connection must be quiescent (no samples in flight): the next inbound
// frame is consumed as the admin answer. evaxload's swap-mid-run mode and
// evaxd's -swap-now path dial a dedicated connection for this.
func (c *Client) Admin(a Admin) (AdminResult, error) {
	if err := c.writeFrame(AppendAdmin(c.buf[:0], a)); err != nil {
		return AdminResult{}, fmt.Errorf("serve: sending admin: %w", err)
	}
	fr, err := c.Recv()
	if err != nil {
		return AdminResult{}, fmt.Errorf("serve: reading admin result: %w", err)
	}
	if fr.Type != FrameAdmin {
		return AdminResult{}, fmt.Errorf("serve: expected admin result, got frame type 0x%02x", fr.Type)
	}
	var res AdminResult
	if err := json.Unmarshal(fr.Payload, &res); err != nil {
		return AdminResult{}, fmt.Errorf("serve: decoding admin result: %w", err)
	}
	return res, nil
}

// Swap promotes the bundle at path on the server and returns the promotion
// report.
func (c *Client) Swap(path string) (AdminResult, error) {
	return c.Admin(Admin{Op: AdminSwap, Path: path})
}

// Rollback re-activates the server's fallback generation.
func (c *Client) Rollback() (AdminResult, error) {
	return c.Admin(Admin{Op: AdminRollback})
}

// Status reports the server's generation pair.
func (c *Client) Status() (GenStatus, error) {
	res, err := c.Admin(Admin{Op: AdminStatus})
	return res.Status, err
}
