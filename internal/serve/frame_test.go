package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestConnStatsFrameRoundTrip(t *testing.T) {
	// The per-connection stats frame must carry fleet provenance — shard ID
	// plus generation hash and epoch — so merged stats keep saying which
	// shard-generation pair produced them.
	cs := ConnStats{
		Accepted:   120,
		Rejected:   3,
		Scored:     117,
		Flagged:    9,
		Shard:      5,
		BundleHash: "00dead00beef0042",
		Epoch:      7,
		Session:    11,
		Dupes:      2,
	}
	data, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	b := AppendFrame(nil, FrameStats, data)
	fr, err := ReadFrame(bytes.NewReader(b))
	if err != nil || fr.Type != FrameStats {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	var got ConnStats
	if err := json.Unmarshal(fr.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", got, cs)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello world")
	b := AppendFrame(nil, FrameStats, payload)
	fr, rest, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != FrameStats || !bytes.Equal(fr.Payload, payload) || len(rest) != 0 {
		t.Fatalf("round trip: %+v rest=%d", fr, len(rest))
	}
	// Streamed form must agree with the slice form.
	fr2, err := ReadFrame(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
		t.Fatal("ReadFrame disagrees with DecodeFrame")
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	b := AppendFrame(nil, FrameVerdict, []byte{1, 2, 3, 4})
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeFrame(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestDecodeFrameOversizedLength(t *testing.T) {
	var b []byte
	b = append(b, FrameSample)
	b = append(b, 0xFF, 0xFF, 0xFF, 0xFF) // 4 GiB payload claim
	if _, _, err := DecodeFrame(b); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized length accepted: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("ReadFrame accepted oversized length")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil, Hello{Version: 7, RawDim: 42})
	fr, _, err := DecodeFrame(b)
	if err != nil || fr.Type != FrameHello {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	h, err := DecodeHello(fr.Payload)
	if err != nil || h.Version != 7 || h.RawDim != 42 {
		t.Fatalf("hello: %v %+v", err, h)
	}
	if _, err := DecodeHello(fr.Payload[:5]); err == nil {
		t.Fatal("short hello accepted")
	}
}

func TestSampleRoundTrip(t *testing.T) {
	raw := []float64{1.5, -2.25, math.Inf(1), math.NaN()}
	b := AppendSample(nil, SampleHeader{Seq: 9, InstrStart: 1000}, 2000, 3000, raw)
	fr, rest, err := DecodeFrame(b)
	if err != nil || fr.Type != FrameSample || len(rest) != 0 {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	got := make([]float64, len(raw))
	h, instr, cycles, err := DecodeSampleInto(fr.Payload, got)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 9 || h.InstrStart != 1000 || instr != 2000 || cycles != 3000 {
		t.Fatalf("header: %+v instr=%d cycles=%d", h, instr, cycles)
	}
	for i := range raw {
		if math.Float64bits(got[i]) != math.Float64bits(raw[i]) {
			t.Fatalf("counter %d diverged", i)
		}
	}
	// Dimension mismatch is an error, not a panic.
	if _, _, _, err := DecodeSampleInto(fr.Payload, make([]float64, len(raw)+1)); err == nil {
		t.Fatal("wrong-width decode accepted")
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	v := Verdict{Seq: 77, Score: -0.125, Flags: VerdictFlagged | VerdictSecure}
	b := AppendVerdict(nil, v)
	fr, _, err := DecodeFrame(b)
	if err != nil || fr.Type != FrameVerdict {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	got, err := DecodeVerdict(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("verdict = %+v, want %+v", got, v)
	}
	if !got.Flagged() || !got.Secure() {
		t.Fatal("flag accessors disagree with bits")
	}
	if _, err := DecodeVerdict(fr.Payload[:16]); err == nil {
		t.Fatal("short verdict accepted")
	}
}

func TestRejectRoundTrip(t *testing.T) {
	r := Reject{Seq: 12, Code: RejectOverload, Msg: "queue full"}
	b := AppendReject(nil, r)
	fr, _, err := DecodeFrame(b)
	if err != nil || fr.Type != FrameReject {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	got, err := DecodeReject(fr.Payload)
	if err != nil || got != r {
		t.Fatalf("reject = %+v (%v), want %+v", got, err, r)
	}
	// Oversized messages are truncated, not rejected.
	long := AppendReject(nil, Reject{Seq: 1, Code: RejectMalformed, Msg: strings.Repeat("x", 2*maxRejectMsg)})
	fr, _, err = DecodeFrame(long)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeReject(fr.Payload)
	if err != nil || len(got.Msg) != maxRejectMsg {
		t.Fatalf("long reject: %v len=%d", err, len(got.Msg))
	}
}

func TestResumeRoundTrip(t *testing.T) {
	r := Resume{Version: ProtocolVersion, RawDim: 33, Session: 0xDEADBEEF01}
	b := AppendResume(nil, r)
	fr, rest, err := DecodeFrame(b)
	if err != nil || fr.Type != FrameResume || len(rest) != 0 {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	got, err := DecodeResume(fr.Payload)
	if err != nil || got != r {
		t.Fatalf("resume = %+v (%v), want %+v", got, err, r)
	}
	if _, err := DecodeResume(fr.Payload[:8]); err == nil {
		t.Fatal("short resume accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := Ack{Session: 42, Window: 1024, High: 1 << 40}
	b := AppendAck(nil, a)
	fr, _, err := DecodeFrame(b)
	if err != nil || fr.Type != FrameAck {
		t.Fatalf("decode: %v %+v", err, fr)
	}
	got, err := DecodeAck(fr.Payload)
	if err != nil || got != a {
		t.Fatalf("ack = %+v (%v), want %+v", got, err, a)
	}
	if _, err := DecodeAck(fr.Payload[:19]); err == nil {
		t.Fatal("short ack accepted")
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	const token = uint64(0x0123456789ABCDEF)
	for _, tc := range []struct {
		b    []byte
		typ  byte
		dec  func([]byte) (uint64, error)
		name string
	}{
		{AppendPing(nil, token), FramePing, DecodePing, "ping"},
		{AppendPong(nil, token), FramePong, DecodePong, "pong"},
	} {
		fr, _, err := DecodeFrame(tc.b)
		if err != nil || fr.Type != tc.typ {
			t.Fatalf("%s decode: %v %+v", tc.name, err, fr)
		}
		got, err := tc.dec(fr.Payload)
		if err != nil || got != token {
			t.Fatalf("%s token = %x (%v), want %x", tc.name, got, err, token)
		}
		if _, err := tc.dec(fr.Payload[:7]); err == nil {
			t.Fatalf("short %s accepted", tc.name)
		}
	}
}

func TestFrameChaining(t *testing.T) {
	// Several frames back-to-back decode in sequence — the wire stream shape.
	var b []byte
	b = AppendHello(b, Hello{Version: 1, RawDim: 3})
	b = AppendVerdict(b, Verdict{Seq: 1, Score: 0.5})
	b = AppendFrame(b, FrameBye, nil)
	types := []byte{FrameHello, FrameVerdict, FrameBye}
	for i, want := range types {
		fr, rest, err := DecodeFrame(b)
		if err != nil || fr.Type != want {
			t.Fatalf("frame %d: %v type=0x%02x want 0x%02x", i, err, fr.Type, want)
		}
		b = rest
	}
	if len(b) != 0 {
		t.Fatalf("%d bytes left after chain", len(b))
	}
}
