package serve

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives the frame decoder with arbitrary bytes. The
// contract under fuzzing is reject-or-accept, never panic: any input either
// decodes into a frame whose payload respects MaxPayload (and re-encodes to
// the exact consumed bytes), or returns an error. The payload-level decoders
// are fed every accepted frame, under the same never-panic rule.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed seeds: one of each frame type the protocol uses.
	f.Add(AppendHello(nil, Hello{Version: ProtocolVersion, RawDim: 4}))
	f.Add(AppendSample(nil, SampleHeader{Seq: 1, InstrStart: 100}, 200, 300, []float64{1, 2, 3, 4}))
	f.Add(AppendVerdict(nil, Verdict{Seq: 2, Score: 0.75, Flags: VerdictFlagged}))
	f.Add(AppendReject(nil, Reject{Seq: 3, Code: RejectOverload, Msg: "full"}))
	f.Add(AppendFrame(nil, FrameBye, nil))
	f.Add(AppendFrame(nil, FrameStats, []byte(`{"accepted":1}`)))
	f.Add(AppendPing(nil, 0x1122334455667788))
	f.Add(AppendPong(nil, 0x8877665544332211))
	f.Add(AppendResume(nil, Resume{Version: ProtocolVersion, RawDim: 4, Session: 99}))
	f.Add(AppendAck(nil, Ack{Session: 99, Window: 1024, High: 17}))
	// Malformed seeds: truncations, length lies, garbage.
	f.Add([]byte{})
	f.Add([]byte{FrameSample})
	f.Add([]byte{FrameSample, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x00})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := DecodeFrame(data)
		if err != nil {
			return // rejected: fine, as long as we got here without panicking
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes beyond MaxPayload", len(fr.Payload))
		}
		consumed := len(data) - len(rest)
		if reenc := AppendFrame(nil, fr.Type, fr.Payload); !bytes.Equal(reenc, data[:consumed]) {
			t.Fatalf("re-encoding diverges from consumed bytes")
		}
		// Payload decoders must also reject-or-accept without panicking.
		switch fr.Type {
		case FrameHello:
			_, _ = DecodeHello(fr.Payload)
		case FrameSample:
			raw := make([]float64, 4)
			_, _, _, _ = DecodeSampleInto(fr.Payload, raw)
		case FrameVerdict:
			_, _ = DecodeVerdict(fr.Payload)
		case FrameReject:
			_, _ = DecodeReject(fr.Payload)
		case FramePing:
			_, _ = DecodePing(fr.Payload)
		case FramePong:
			_, _ = DecodePong(fr.Payload)
		case FrameResume:
			_, _ = DecodeResume(fr.Payload)
		case FrameAck:
			_, _ = DecodeAck(fr.Payload)
		}
		// Streamed decoding must agree with slice decoding on accept.
		fr2, err2 := ReadFrame(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame rejected: %v", err2)
		}
		if fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame")
		}
	})
}
