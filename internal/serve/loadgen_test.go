package serve

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"evax/internal/benchjson"
	"evax/internal/testleak"
)

// TestRunLoadAgainstServer drives the load harness at an in-process server
// and checks the accounting: every sent sample is either accepted or
// rejected, every accepted one is scored, and latency percentiles are sane.
func TestRunLoadAgainstServer(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	cfg.Shards = 2
	srv := startServer(t, cfg)

	opts := LoadOptions{
		Addr:      srv.Addr(),
		Clients:   4,
		PerClient: 200,
		Rate:      0, // unpaced: as fast as the connection admits
		Samples:   samples,
	}
	rep, err := RunLoad(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	wantSent := uint64(opts.Clients * opts.PerClient)
	if rep.Sent != wantSent {
		t.Fatalf("sent %d, want %d", rep.Sent, wantSent)
	}
	if rep.Accepted+rep.Rejected != rep.Sent {
		t.Fatalf("accepted %d + rejected %d != sent %d", rep.Accepted, rep.Rejected, rep.Sent)
	}
	// An unloaded local server should accept essentially everything; a fully
	// rejected run means the harness or server is broken.
	if rep.Accepted == 0 {
		t.Fatal("no samples accepted")
	}
	if rep.DurationSec <= 0 || rep.VerdictsSec <= 0 {
		t.Fatalf("throughput accounting broken: %+v", rep)
	}
	if rep.LatencyP50Ms < 0 || rep.LatencyP95Ms < rep.LatencyP50Ms || rep.LatencyP99Ms < rep.LatencyP95Ms {
		t.Fatalf("latency percentiles out of order: p50=%v p95=%v p99=%v",
			rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Scored != uint64(rep.Accepted) {
		t.Fatalf("server scored %d, harness counted %d accepted", snap.Scored, rep.Accepted)
	}
}

// TestRunLoadPaced: with a target rate the run takes at least the paced
// duration and still answers everything.
func TestRunLoadPaced(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())
	opts := LoadOptions{
		Addr:      srv.Addr(),
		Clients:   2,
		PerClient: 50,
		Rate:      2000, // aggregate target: 100 samples ≈ 50ms minimum
		Samples:   samples[:128],
	}
	start := time.Now()
	rep, err := RunLoad(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != rep.Sent {
		t.Fatalf("paced run rejected %d of %d", rep.Rejected, rep.Sent)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("paced run finished in %v; pacing is not applied", elapsed)
	}
	if rep.TargetRate != 2000 {
		t.Fatalf("report target_rate = %v", rep.TargetRate)
	}
}

// TestRunLoadCancellation: a cancelled context stops the harness promptly
// with an error rather than hanging.
func TestRunLoadCancellation(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLoad(ctx, LoadOptions{
		Addr: srv.Addr(), Clients: 2, PerClient: 1000, Rate: 10, Samples: samples[:64],
	}); err == nil {
		t.Fatal("cancelled load run reported success")
	}
}

// TestServingSectionLandsInBenchReport: the report merges into
// BENCH_runner.json as a "serving" section without clobbering other tools'
// keys — the contract between evaxload and evaxbench.
func TestServingSectionLandsInBenchReport(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())
	rep, err := RunLoad(context.Background(), LoadOptions{
		Addr: srv.Addr(), Clients: 2, PerClient: 20, Samples: samples[:64],
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "BENCH_runner.json")
	// Another tool's keys are already present.
	if err := benchjson.Merge(path, map[string]any{"jobs": 8, "speedup": 3.0}); err != nil {
		t.Fatal(err)
	}
	if err := benchjson.Merge(path, map[string]any{"serving": rep}); err != nil {
		t.Fatal(err)
	}
	var got LoadReport
	if err := benchjson.Read(path, "serving", &got); err != nil {
		t.Fatal(err)
	}
	if got.Sent != rep.Sent || got.Clients != rep.Clients {
		t.Fatalf("serving section round-trip diverged: %+v vs %+v", got, rep)
	}
	var speedup float64
	if err := benchjson.Read(path, "speedup", &speedup); err != nil || speedup != 3.0 {
		t.Fatalf("merge clobbered the bench section: %v %v", speedup, err)
	}
	// The section is proper JSON with the documented keys.
	var rawSection map[string]json.RawMessage
	if err := benchjson.Read(path, "serving", &rawSection); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"clients", "sent", "accepted", "verdicts_per_sec", "latency_p95_ms"} {
		if _, ok := rawSection[key]; !ok {
			t.Fatalf("serving section missing %q: %v", key, rawSection)
		}
	}
}
