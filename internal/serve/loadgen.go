package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"evax/internal/dataset"
	"evax/internal/runner"
)

// atomicInt64 aliases the atomic so the sendAt slice reads naturally.
type atomicInt64 = atomic.Int64

// LoadOptions parameterizes the synthetic load harness.
type LoadOptions struct {
	// Addr is the server's framing-protocol address.
	Addr string
	// Clients is the number of concurrent connections.
	Clients int
	// PerClient is how many samples each client streams.
	PerClient int
	// Rate is the target aggregate send rate in samples/sec across all
	// clients; <= 0 streams at full speed.
	Rate float64
	// Samples is the corpus each client replays (round-robin by send index,
	// offset by client so connections don't stream identical sequences).
	Samples []dataset.Sample
}

// LoadReport is the harness result — the `serving` section evaxload merges
// into BENCH_runner.json.
type LoadReport struct {
	Clients      int     `json:"clients"`
	PerClient    int     `json:"per_client"`
	TargetRate   float64 `json:"target_rate,omitempty"`
	Sent         uint64  `json:"sent"`
	Accepted     uint64  `json:"accepted"`
	Rejected     uint64  `json:"rejected"`
	Flagged      uint64  `json:"flagged"`
	DurationSec  float64 `json:"duration_sec"`
	VerdictsSec  float64 `json:"verdicts_per_sec"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// clientResult is one connection's contribution to the report.
type clientResult struct {
	sent, accepted, rejected, flagged uint64
	hist                              [latencyBuckets]uint64
}

// RunLoad drives Clients concurrent connections replaying the corpus against
// a running server, measuring round-trip verdict latency (send→verdict) per
// sample. Connections fan out through the deterministic run engine; each
// one's receive side runs on its own goroutine so sends never stall behind
// verdict reads.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if opts.Clients <= 0 || opts.PerClient <= 0 {
		return LoadReport{}, fmt.Errorf("serve: load needs positive Clients and PerClient, got %d and %d",
			opts.Clients, opts.PerClient)
	}
	if len(opts.Samples) == 0 {
		return LoadReport{}, errors.New("serve: load needs a non-empty corpus")
	}
	rawDim := len(opts.Samples[0].Raw)

	start := time.Now()
	results, rep, err := runner.MapErrCtx(ctx, runner.Options{Jobs: opts.Clients}, opts.Clients,
		func(ctx context.Context, ci int) (clientResult, error) {
			return runClient(ctx, opts, ci, rawDim)
		})
	dur := time.Since(start).Seconds()
	if err != nil {
		return LoadReport{}, err
	}

	out := LoadReport{
		Clients:     opts.Clients,
		PerClient:   opts.PerClient,
		DurationSec: dur,
	}
	if opts.Rate > 0 {
		out.TargetRate = opts.Rate
	}
	var hist [latencyBuckets]uint64
	for i, r := range results {
		if !rep.Completed[i] {
			continue
		}
		out.Sent += r.sent
		out.Accepted += r.accepted
		out.Rejected += r.rejected
		out.Flagged += r.flagged
		for b, c := range r.hist {
			hist[b] += c
		}
	}
	if dur > 0 {
		out.VerdictsSec = float64(out.Accepted) / dur
	}
	out.LatencyP50Ms = percentileMs(hist, 0.50)
	out.LatencyP95Ms = percentileMs(hist, 0.95)
	out.LatencyP99Ms = percentileMs(hist, 0.99)
	return out, nil
}

// runClient is one synthetic client: stream PerClient samples at the paced
// rate, then bye and collect everything in flight.
func runClient(ctx context.Context, opts LoadOptions, ci, rawDim int) (clientResult, error) {
	cl, err := Dial(opts.Addr, rawDim)
	if err != nil {
		return clientResult{}, err
	}
	//evaxlint:ignore droppederr bye already flushed the stream; the deferred close is teardown only
	defer cl.Close()

	// sendAt[seq] timestamps each send (nanoseconds since base) so the
	// receiver can compute round-trip latency. Atomics, not a plain slice:
	// the socket round-trip orders the send before the verdict in real time,
	// but that ordering passes through the kernel, which the race detector
	// cannot see.
	base := time.Now()
	sendAt := make([]atomicInt64, opts.PerClient)
	var res clientResult

	type recvOut struct {
		res clientResult
		err error
	}
	recvDone := make(chan recvOut, 1)
	go func() {
		var r clientResult
		stats, verdicts, rejects, err := cl.DrainStats()
		for _, v := range verdicts {
			r.accepted++
			if v.Flagged() {
				r.flagged++
			}
			if v.Seq < uint64(len(sendAt)) {
				lat := time.Duration(time.Since(base).Nanoseconds() - sendAt[v.Seq].Load())
				r.hist[latencyBucket(lat)]++
			}
		}
		r.rejected += uint64(len(rejects))
		if err == nil {
			// Trust our own tallies but sanity-check against the server's.
			if stats.Scored != r.accepted {
				err = fmt.Errorf("serve: client %d: server scored %d, client saw %d verdicts",
					ci, stats.Scored, r.accepted)
			}
		}
		recvDone <- recvOut{res: r, err: err}
	}()

	var interval time.Duration
	if opts.Rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(opts.Clients) / opts.Rate)
	}
	instrStart := uint64(0)
	next := time.Now()
	for i := 0; i < opts.PerClient; i++ {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return clientResult{}, ctx.Err()
				}
			}
			next = next.Add(interval)
		} else if ctx.Err() != nil {
			return clientResult{}, ctx.Err()
		}
		s := &opts.Samples[(ci+i*opts.Clients)%len(opts.Samples)]
		sendAt[i].Store(time.Since(base).Nanoseconds())
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			return clientResult{}, fmt.Errorf("serve: client %d send %d: %w", ci, i, err)
		}
		res.sent++
		instrStart += s.Instructions
	}
	if err := cl.Bye(); err != nil {
		return clientResult{}, fmt.Errorf("serve: client %d bye: %w", ci, err)
	}
	out := <-recvDone
	if out.err != nil {
		return clientResult{}, out.err
	}
	res.accepted = out.res.accepted
	res.rejected = out.res.rejected
	res.flagged = out.res.flagged
	res.hist = out.res.hist
	return res, nil
}
