package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"evax/internal/dataset"
	"evax/internal/runner"
)

// atomicInt64 aliases the atomic so the sendAt slice reads naturally.
type atomicInt64 = atomic.Int64

// LoadOptions parameterizes the synthetic load harness.
type LoadOptions struct {
	// Addr is the server's framing-protocol address.
	Addr string
	// Clients is the number of concurrent connections.
	Clients int
	// PerClient is how many samples each client streams.
	PerClient int
	// Rate is the target aggregate send rate in samples/sec across all
	// clients; <= 0 streams at full speed.
	Rate float64
	// Samples is the corpus each client replays (round-robin by send index,
	// offset by client so connections don't stream identical sequences).
	Samples []dataset.Sample

	// SwapBundle, when non-empty, arms the swap-mid-run mode: once SwapAfter
	// of the total samples have been sent, a dedicated admin connection
	// promotes this server-local candidate bundle while the load keeps
	// streaming — measuring swap latency and during-swap verdict latency.
	SwapBundle string
	// SwapAfter is the fraction of total samples sent before the swap
	// triggers, in (0, 1); 0 means 0.5.
	SwapAfter float64
}

// SwapStats is the swap-mid-run measurement — the `swap` section evaxload
// merges into BENCH_runner.json.
type SwapStats struct {
	// Bundle is the candidate bundle the harness promoted.
	Bundle string `json:"bundle"`
	// TriggeredAfterSent is how many samples had been sent when the swap was
	// issued.
	TriggeredAfterSent uint64 `json:"triggered_after_sent"`
	// LatencyMs is the admin round-trip of the swap: candidate load, canary
	// scoring, staging, atomic swap and health probe, as observed by the
	// operator connection.
	LatencyMs float64 `json:"swap_latency_ms"`
	// DuringRows counts verdicts received inside the swap window.
	DuringRows uint64 `json:"during_rows"`
	// DuringP50Ms/DuringP99Ms are verdict round-trip percentiles over only
	// the verdicts received while the swap was in flight — the
	// zero-downtime claim, quantified.
	DuringP50Ms float64 `json:"during_p50_ms"`
	DuringP99Ms float64 `json:"during_p99_ms"`
	// Result is the server's full admin answer, promotion report included.
	Result AdminResult `json:"result"`
}

// LoadReport is the harness result — the `serving` section evaxload merges
// into BENCH_runner.json.
type LoadReport struct {
	Clients      int        `json:"clients"`
	PerClient    int        `json:"per_client"`
	TargetRate   float64    `json:"target_rate,omitempty"`
	Sent         uint64     `json:"sent"`
	Accepted     uint64     `json:"accepted"`
	Rejected     uint64     `json:"rejected"`
	Flagged      uint64     `json:"flagged"`
	DurationSec  float64    `json:"duration_sec"`
	VerdictsSec  float64    `json:"verdicts_per_sec"`
	LatencyP50Ms float64    `json:"latency_p50_ms"`
	LatencyP95Ms float64    `json:"latency_p95_ms"`
	LatencyP99Ms float64    `json:"latency_p99_ms"`
	Swap         *SwapStats `json:"swap,omitempty"`
}

// clientResult is one connection's contribution to the report.
type clientResult struct {
	sent, accepted, rejected, flagged uint64
	hist                              [latencyBuckets]uint64

	// swapHist/swapRows bucket only the verdicts received inside the swap
	// window (swap mode).
	swapHist [latencyBuckets]uint64
	swapRows uint64
}

// swapShared is the cross-client state of the swap-mid-run mode: the shared
// send counter that arms the trigger, and the swap window endpoints
// (nanoseconds since the run base) the receive loops classify verdicts by.
type swapShared struct {
	threshold uint64
	sent      atomic.Uint64
	once      sync.Once
	trigger   chan struct{}

	startNs atomic.Int64
	endNs   atomic.Int64
}

// noteSent counts one sent sample and arms the trigger at the threshold.
func (sh *swapShared) noteSent() {
	if sh == nil {
		return
	}
	if sh.sent.Add(1) >= sh.threshold {
		sh.once.Do(func() { close(sh.trigger) })
	}
}

// inWindow reports whether a verdict received at ns (since base) landed
// inside the swap window.
func (sh *swapShared) inWindow(ns int64) bool {
	if sh == nil {
		return false
	}
	start := sh.startNs.Load()
	if start == 0 || ns < start {
		return false
	}
	end := sh.endNs.Load()
	return end == 0 || ns <= end
}

// swapOutcome is what the trigger goroutine reports back.
type swapOutcome struct {
	res       AdminResult
	latency   time.Duration
	triggered uint64
	err       error
}

// RunLoad drives Clients concurrent connections replaying the corpus against
// a running server, measuring round-trip verdict latency (send→verdict) per
// sample. Connections fan out through the deterministic run engine; each
// one's receive side runs on its own goroutine so sends never stall behind
// verdict reads. With SwapBundle set, a generation hot-swap is injected
// mid-run and its latency and blast radius measured.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if opts.Clients <= 0 || opts.PerClient <= 0 {
		return LoadReport{}, fmt.Errorf("serve: load needs positive Clients and PerClient, got %d and %d",
			opts.Clients, opts.PerClient)
	}
	if len(opts.Samples) == 0 {
		return LoadReport{}, errors.New("serve: load needs a non-empty corpus")
	}
	rawDim := len(opts.Samples[0].Raw)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// base is the shared clock origin: send stamps, receive stamps and the
	// swap window all measure nanoseconds since it, so "during the swap" is
	// the same interval on every connection.
	base := time.Now()

	var shared *swapShared
	var swapDone chan swapOutcome
	if opts.SwapBundle != "" {
		frac := opts.SwapAfter
		if frac <= 0 {
			frac = 0.5
		}
		if frac >= 1 {
			return LoadReport{}, fmt.Errorf("serve: SwapAfter must be in (0, 1), got %g", opts.SwapAfter)
		}
		total := uint64(opts.Clients) * uint64(opts.PerClient)
		threshold := uint64(frac * float64(total))
		if threshold == 0 {
			threshold = 1
		}
		shared = &swapShared{threshold: threshold, trigger: make(chan struct{})}
		swapDone = make(chan swapOutcome, 1)
		go runSwapTrigger(ctx, opts, rawDim, base, shared, swapDone)
	}

	start := time.Now()
	results, rep, err := runner.MapErrCtx(ctx, runner.Options{Jobs: opts.Clients}, opts.Clients,
		func(ctx context.Context, ci int) (clientResult, error) {
			return runClient(ctx, opts, ci, rawDim, base, shared)
		})
	dur := time.Since(start).Seconds()
	if err != nil {
		return LoadReport{}, err
	}

	out := LoadReport{
		Clients:     opts.Clients,
		PerClient:   opts.PerClient,
		DurationSec: dur,
	}
	if opts.Rate > 0 {
		out.TargetRate = opts.Rate
	}
	var hist, swapHist [latencyBuckets]uint64
	var swapRows uint64
	for i, r := range results {
		if !rep.Completed[i] {
			continue
		}
		out.Sent += r.sent
		out.Accepted += r.accepted
		out.Rejected += r.rejected
		out.Flagged += r.flagged
		for b, c := range r.hist {
			hist[b] += c
		}
		for b, c := range r.swapHist {
			swapHist[b] += c
		}
		swapRows += r.swapRows
	}
	if dur > 0 {
		out.VerdictsSec = float64(out.Accepted) / dur
	}
	out.LatencyP50Ms = percentileMs(hist, 0.50)
	out.LatencyP95Ms = percentileMs(hist, 0.95)
	out.LatencyP99Ms = percentileMs(hist, 0.99)

	if shared != nil {
		// Every client finished sending, so the trigger fired; the admin
		// round-trip is bounded by the canary, not the load.
		oc := <-swapDone
		if oc.err != nil {
			return out, fmt.Errorf("serve: swap-mid-run: %w", oc.err)
		}
		out.Swap = &SwapStats{
			Bundle:             opts.SwapBundle,
			TriggeredAfterSent: oc.triggered,
			LatencyMs:          float64(oc.latency.Nanoseconds()) / 1e6,
			DuringRows:         swapRows,
			DuringP50Ms:        percentileMs(swapHist, 0.50),
			DuringP99Ms:        percentileMs(swapHist, 0.99),
			Result:             oc.res,
		}
		if !oc.res.Ok {
			return out, fmt.Errorf("serve: swap-mid-run: server refused candidate: %s", oc.res.Error)
		}
	}
	return out, nil
}

// runSwapTrigger waits for the send counter to cross the threshold, then
// promotes the candidate over a dedicated admin connection, recording the
// swap window for the receive loops.
func runSwapTrigger(ctx context.Context, opts LoadOptions, rawDim int, base time.Time, shared *swapShared, done chan<- swapOutcome) {
	select {
	case <-ctx.Done():
		done <- swapOutcome{err: ctx.Err()}
		return
	case <-shared.trigger:
	}
	triggered := shared.sent.Load()
	cl, err := Dial(opts.Addr, rawDim)
	if err != nil {
		done <- swapOutcome{triggered: triggered, err: err}
		return
	}
	//evaxlint:ignore droppederr admin round-trip already completed; the close is teardown only
	defer cl.Close()

	shared.startNs.Store(time.Since(base).Nanoseconds())
	t0 := time.Now()
	res, err := cl.Swap(opts.SwapBundle)
	lat := time.Since(t0)
	shared.endNs.Store(time.Since(base).Nanoseconds())
	done <- swapOutcome{res: res, latency: lat, triggered: triggered, err: err}
}

// runClient is one synthetic client: stream PerClient samples at the paced
// rate, then bye and collect everything in flight.
func runClient(ctx context.Context, opts LoadOptions, ci, rawDim int, base time.Time, shared *swapShared) (clientResult, error) {
	cl, err := Dial(opts.Addr, rawDim)
	if err != nil {
		return clientResult{}, err
	}
	//evaxlint:ignore droppederr bye already flushed the stream; the deferred close is teardown only
	defer cl.Close()

	// sendAt[seq] timestamps each send (nanoseconds since base) so the
	// receiver can compute round-trip latency. Atomics, not a plain slice:
	// the socket round-trip orders the send before the verdict in real time,
	// but that ordering passes through the kernel, which the race detector
	// cannot see.
	sendAt := make([]atomicInt64, opts.PerClient)
	var res clientResult

	type recvOut struct {
		res clientResult
		err error
	}
	recvDone := make(chan recvOut, 1)
	go func() {
		r, err := recvVerdicts(cl, ci, base, sendAt, shared)
		recvDone <- recvOut{res: r, err: err}
	}()

	var interval time.Duration
	if opts.Rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(opts.Clients) / opts.Rate)
	}
	instrStart := uint64(0)
	next := time.Now()
	for i := 0; i < opts.PerClient; i++ {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return clientResult{}, ctx.Err()
				}
			}
			next = next.Add(interval)
		} else if ctx.Err() != nil {
			return clientResult{}, ctx.Err()
		}
		s := &opts.Samples[(ci+i*opts.Clients)%len(opts.Samples)]
		sendAt[i].Store(time.Since(base).Nanoseconds())
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			return clientResult{}, fmt.Errorf("serve: client %d send %d: %w", ci, i, err)
		}
		res.sent++
		shared.noteSent()
		instrStart += s.Instructions
	}
	if err := cl.Bye(); err != nil {
		return clientResult{}, fmt.Errorf("serve: client %d bye: %w", ci, err)
	}
	out := <-recvDone
	if out.err != nil {
		return clientResult{}, out.err
	}
	res.accepted = out.res.accepted
	res.rejected = out.res.rejected
	res.flagged = out.res.flagged
	res.hist = out.res.hist
	res.swapHist = out.res.swapHist
	res.swapRows = out.res.swapRows
	return res, nil
}

// recvVerdicts is the client's receive loop: it timestamps each verdict as
// it arrives (so swap-window classification and latency use the true receive
// time, not drain time), tallies rejects, and stops at the stats frame —
// sanity-checking the server's scored count against the verdicts seen, which
// is the harness's zero-loss proof.
func recvVerdicts(cl *Client, ci int, base time.Time, sendAt []atomicInt64, shared *swapShared) (clientResult, error) {
	var r clientResult
	for {
		fr, err := cl.Recv()
		if err != nil {
			return r, err
		}
		now := time.Since(base).Nanoseconds()
		switch fr.Type {
		case FrameVerdict:
			v, err := DecodeVerdict(fr.Payload)
			if err != nil {
				return r, err
			}
			r.accepted++
			if v.Flagged() {
				r.flagged++
			}
			if v.Seq < uint64(len(sendAt)) {
				b := latencyBucket(time.Duration(now - sendAt[v.Seq].Load()))
				r.hist[b]++
				if shared.inWindow(now) {
					r.swapHist[b]++
					r.swapRows++
				}
			}
		case FrameReject:
			r.rejected++
		case FrameDrain:
			// Informational: the server is draining; stats still follow.
		case FrameStats:
			var st ConnStats
			if err := json.Unmarshal(fr.Payload, &st); err != nil {
				return r, err
			}
			// Trust our own tallies but sanity-check against the server's.
			if st.Scored != r.accepted {
				return r, fmt.Errorf("serve: client %d: server scored %d, client saw %d verdicts",
					ci, st.Scored, r.accepted)
			}
			return r, nil
		case FrameError:
			return r, fmt.Errorf("serve: server error: %s", fr.Payload)
		default:
			return r, fmt.Errorf("serve: unexpected frame type 0x%02x", fr.Type)
		}
	}
}
