package serve

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestSessionResumeExactlyOnce is the server half of the exactly-once
// contract: a client scores ten samples, loses its connection without a bye,
// resumes the session and replays everything plus five fresh samples. Every
// replay must be answered from the dedup ring — re-delivered, never
// re-scored — and the final verdict stream must be bit-identical to a
// fault-free offline run of all fifteen samples.
func TestSessionResumeExactlyOnce(t *testing.T) {
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	srv := startServer(t, cfg)
	dim := len(samples[0].Raw)

	cl, ack, err := DialResume(srv.Addr(), dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Session == 0 {
		t.Fatal("fresh resume returned session 0")
	}
	if ack.Window != uint32(cfg.SessionWindow) {
		t.Fatalf("ack window %d, want %d", ack.Window, cfg.SessionWindow)
	}

	// Phase 1: ten samples, wait for every verdict, then vanish without bye.
	var instrStart uint64
	starts := make([]uint64, 15)
	for i := 0; i < 10; i++ {
		s := &samples[i]
		starts[i] = instrStart
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		instrStart += s.Instructions
	}
	for got := 0; got < 10; {
		fr, err := cl.Recv()
		if err != nil {
			t.Fatalf("phase-1 recv: %v", err)
		}
		if fr.Type == FrameVerdict {
			got++
		}
	}
	cl.Close() // abrupt: no bye, the session is now orphaned

	// Phase 2: resume, replay 0..9, continue with 10..14.
	cl2, ack2, err := DialResume(srv.Addr(), dim, ack.Session)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if ack2.Session != ack.Session {
		t.Fatalf("resumed session %d, want %d", ack2.Session, ack.Session)
	}
	if ack2.High != 9 {
		t.Fatalf("resume ack high = %d, want 9", ack2.High)
	}
	for i := 0; i < 15; i++ {
		s := &samples[i]
		if i >= 10 {
			starts[i] = instrStart
			instrStart += s.Instructions
		}
		if err := cl2.Send(SampleHeader{Seq: uint64(i), InstrStart: starts[i]}, s.Instructions, s.Cycles, s.Raw); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
	if err := cl2.Bye(); err != nil {
		t.Fatal(err)
	}
	stats, verdicts, rejects, err := cl2.DrainStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rejects) != 0 {
		t.Fatalf("unexpected rejects: %+v", rejects)
	}

	// All fifteen seqs answered on the resumed conn: ten from the ring, five
	// scored fresh.
	bySeq := map[uint64]Verdict{}
	for _, v := range verdicts {
		bySeq[v.Seq] = v
	}
	want := offlineVerdicts(t, samples[:15], cfg.SecureWindow)
	if len(bySeq) != 15 {
		t.Fatalf("resumed conn answered %d distinct seqs, want 15", len(bySeq))
	}
	for _, w := range want {
		got, ok := bySeq[w.Seq]
		if !ok {
			t.Fatalf("seq %d never answered on the resumed conn", w.Seq)
		}
		if math.Float64bits(got.Score) != math.Float64bits(w.Score) || got.Flags != w.Flags {
			t.Fatalf("seq %d: verdict (%x, %02x) != offline (%x, %02x)",
				w.Seq, math.Float64bits(got.Score), got.Flags, math.Float64bits(w.Score), w.Flags)
		}
	}

	// Exactly-once on the server: 15 unique samples scored, 10 replays
	// absorbed by the ring and re-delivered without re-scoring.
	if stats.Session != ack.Session {
		t.Fatalf("stats session %d, want %d", stats.Session, ack.Session)
	}
	if stats.SessionAccepted != 15 || stats.SessionScored != 15 {
		t.Fatalf("session accepted=%d scored=%d, want 15/15", stats.SessionAccepted, stats.SessionScored)
	}
	if stats.Dupes != 10 || stats.Resent != 10 {
		t.Fatalf("dupes=%d resent=%d, want 10/10", stats.Dupes, stats.Resent)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Scored != 15 {
		t.Fatalf("server scored %d, want 15 (replays must not re-score)", snap.Scored)
	}
	if snap.Sessions != 1 || snap.Resumed != 1 {
		t.Fatalf("sessions=%d resumed=%d, want 1/1", snap.Sessions, snap.Resumed)
	}
}

// TestSessionStaleReplayRejected: a replay that fell out of the dedup window
// draws RejectStale, not a double score and not a crash.
func TestSessionStaleReplayRejected(t *testing.T) {
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	cfg.SessionWindow = 8
	srv := startServer(t, cfg)
	dim := len(samples[0].Raw)

	cl, _, err := DialResume(srv.Addr(), dim, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var instrStart uint64
	for i := 0; i < 16; i++ {
		s := &samples[i%len(samples)]
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			t.Fatal(err)
		}
		instrStart += s.Instructions
	}
	// Replay seq 0: high is 15, window 8, so 0 is ancient history.
	s := &samples[0]
	if err := cl.Send(SampleHeader{Seq: 0, InstrStart: 0}, s.Instructions, s.Cycles, s.Raw); err != nil {
		t.Fatal(err)
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	stats, verdicts, rejects, err := cl.DrainStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 16 {
		t.Fatalf("%d verdicts, want 16", len(verdicts))
	}
	if len(rejects) != 1 || rejects[0].Code != RejectStale || rejects[0].Seq != 0 {
		t.Fatalf("rejects = %+v, want one stale reject for seq 0", rejects)
	}
	if stats.SessionScored != 16 {
		t.Fatalf("session scored %d, want 16", stats.SessionScored)
	}
}

// TestResumeUnknownSessionRefused: resuming a session the server never issued
// (or already reaped) is a handshake error, not a silent fresh session.
func TestResumeUnknownSessionRefused(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())
	if _, _, err := DialResume(srv.Addr(), len(samples[0].Raw), 424242); err == nil ||
		!strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("unknown-session resume: %v", err)
	}
}

// TestIdleConnReaped is the satellite fix for the hello-only read deadline: a
// client that completes the handshake and then goes silent-dead must be
// reaped by the per-frame idle deadline — its teardown still delivers the
// stats frame on the intact write side — while a client that heartbeats
// stays connected arbitrarily longer than the idle timeout.
func TestIdleConnReaped(t *testing.T) {
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	cfg.IdleTimeout = 100 * time.Millisecond
	srv := startServer(t, cfg)
	dim := len(samples[0].Raw)

	// Silent client: reaped after ~IdleTimeout.
	cl, err := Dial(srv.Addr(), dim)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, _, err := cl.DrainStats(); err != nil {
		t.Fatalf("reaped conn should still deliver its stats frame, got: %v", err)
	}
	if got := srv.Metrics().Snapshot().IdleReaped; got != 1 {
		t.Fatalf("idle_reaped = %d, want 1", got)
	}

	// Heartbeating client: alive well past several idle windows.
	cl2, err := Dial(srv.Addr(), dim)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 8; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := cl2.Ping(uint64(i)); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		fr, err := cl2.Recv()
		if err != nil {
			t.Fatalf("pong %d: %v", i, err)
		}
		if fr.Type != FramePong {
			t.Fatalf("ping answered with frame type 0x%02x", fr.Type)
		}
		if tok, err := DecodePong(fr.Payload); err != nil || tok != uint64(i) {
			t.Fatalf("pong token %d (%v), want %d", tok, err, i)
		}
	}
	// Still serving after 400ms of ping-only traffic on a 100ms idle window.
	s := &samples[0]
	if err := cl2.Send(SampleHeader{Seq: 1, InstrStart: 0}, s.Instructions, s.Cycles, s.Raw); err != nil {
		t.Fatal(err)
	}
	fr, err := cl2.Recv()
	if err != nil || fr.Type != FrameVerdict {
		t.Fatalf("sample after heartbeats: frame 0x%02x, err %v", fr.Type, err)
	}
	if got := srv.Metrics().Snapshot().IdleReaped; got != 1 {
		t.Fatalf("heartbeating conn was idle-reaped (idle_reaped = %d)", got)
	}
}

// TestHalfCloseTolerated: a client that half-closes (FIN on the write side)
// after its last sample still receives every verdict and the stats frame on
// the intact read side.
func TestHalfCloseTolerated(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())
	dim := len(samples[0].Raw)

	cl, err := Dial(srv.Addr(), dim)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var instrStart uint64
	for i := 0; i < 5; i++ {
		s := &samples[i]
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			t.Fatal(err)
		}
		instrStart += s.Instructions
	}
	if err := cl.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	stats, verdicts, _, err := cl.DrainStats()
	if err != nil {
		t.Fatalf("drain after half-close: %v", err)
	}
	if len(verdicts) != 5 || stats.Scored != 5 {
		t.Fatalf("half-closed conn: %d verdicts, scored %d, want 5/5", len(verdicts), stats.Scored)
	}
}
