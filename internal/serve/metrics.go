package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two latency buckets: bucket i
// counts verdicts whose enqueue→scored latency fell in [2^i, 2^(i+1)) ns,
// spanning 1 ns to ~18 s.
const latencyBuckets = 35

// Metrics aggregates the server's observability counters. Counter fields are
// atomics updated from connection readers and shard batchers; the histograms
// are mutex-guarded (one short critical section per scored batch).
type Metrics struct {
	start time.Time

	connsTotal   atomic.Uint64
	connsActive  atomic.Int64
	accepted     atomic.Uint64
	rejected     atomic.Uint64
	rejectedLoad atomic.Uint64 // RejectOverload subset of rejected
	scored       atomic.Uint64
	flagged      atomic.Uint64
	batches      atomic.Uint64
	writeErrors  atomic.Uint64

	mu        sync.Mutex
	latency   [latencyBuckets]uint64
	occupancy []uint64 // index = batch size; [0] unused
}

// newMetrics sizes the occupancy histogram for batches up to maxBatch.
func newMetrics(maxBatch int) *Metrics {
	return &Metrics{start: time.Now(), occupancy: make([]uint64, maxBatch+1)}
}

// observeBatch records one flushed batch: its occupancy and the
// enqueue→scored latency of each sample in it.
func (m *Metrics) observeBatch(size int, lats []time.Duration) {
	m.batches.Add(1)
	m.mu.Lock()
	if size < len(m.occupancy) {
		m.occupancy[size]++
	} else {
		m.occupancy[len(m.occupancy)-1]++
	}
	for _, d := range lats {
		m.latency[latencyBucket(d)]++
	}
	m.mu.Unlock()
}

// latencyBucket maps a duration to its power-of-two bucket index.
func latencyBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	b := 0
	for ns > 1 && b < latencyBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// bucketUpperNs returns the exclusive upper bound of latency bucket i in
// nanoseconds — the value percentile estimation reports.
func bucketUpperNs(i int) float64 { return float64(uint64(1) << uint(i+1)) }

// Snapshot is the JSON shape of the /metrics endpoint and of the final drain
// report.
type Snapshot struct {
	UptimeSec    float64 `json:"uptime_sec"`
	Conns        uint64  `json:"conns_total"`
	ConnsActive  int64   `json:"conns_active"`
	Accepted     uint64  `json:"frames_accepted"`
	Rejected     uint64  `json:"frames_rejected"`
	RejectedLoad uint64  `json:"frames_rejected_overload"`
	Scored       uint64  `json:"frames_scored"`
	Flagged      uint64  `json:"frames_flagged"`
	Batches      uint64  `json:"batches"`
	WriteErrors  uint64  `json:"write_errors"`
	ScoresPerSec float64 `json:"scores_per_sec"`
	// BatchOccupancy[i] counts flushed batches of exactly i samples (the
	// last entry also absorbs any larger batches).
	BatchOccupancy []uint64 `json:"batch_occupancy"`
	LatencyP50Ms   float64  `json:"latency_p50_ms"`
	LatencyP95Ms   float64  `json:"latency_p95_ms"`
	LatencyP99Ms   float64  `json:"latency_p99_ms"`
}

// Snapshot captures the current metrics.
func (m *Metrics) Snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	s := Snapshot{
		UptimeSec:    up,
		Conns:        m.connsTotal.Load(),
		ConnsActive:  m.connsActive.Load(),
		Accepted:     m.accepted.Load(),
		Rejected:     m.rejected.Load(),
		RejectedLoad: m.rejectedLoad.Load(),
		Scored:       m.scored.Load(),
		Flagged:      m.flagged.Load(),
		Batches:      m.batches.Load(),
		WriteErrors:  m.writeErrors.Load(),
	}
	if up > 0 {
		s.ScoresPerSec = float64(s.Scored) / up
	}
	m.mu.Lock()
	s.BatchOccupancy = append([]uint64(nil), m.occupancy...)
	var hist [latencyBuckets]uint64
	copy(hist[:], m.latency[:])
	m.mu.Unlock()
	s.LatencyP50Ms = percentileMs(hist, 0.50)
	s.LatencyP95Ms = percentileMs(hist, 0.95)
	s.LatencyP99Ms = percentileMs(hist, 0.99)
	return s
}

// percentileMs estimates the p-quantile from the bucketed latency histogram,
// reporting each bucket at its upper bound (a conservative estimate).
func percentileMs(hist [latencyBuckets]uint64, p float64) float64 {
	var total uint64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range hist {
		seen += c
		if seen > rank {
			return bucketUpperNs(i) / 1e6
		}
	}
	return bucketUpperNs(latencyBuckets-1) / 1e6
}

// ConnStats is the per-connection summary carried by FrameStats at close.
type ConnStats struct {
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Scored   uint64 `json:"scored"`
	Flagged  uint64 `json:"flagged"`
}
