package serve

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// The latency histogram is log-linear (HDR-style): each power-of-two octave
// splits into 2^latencySubBits equal-width sub-buckets, bounding the relative
// quantization error at ~1/2^latencySubBits (≈6%) everywhere on the scale.
// Pure power-of-two buckets were too coarse in the serving band — every
// sub-16ms latency collapsed into a handful of buckets, so p50, p95 and p99
// all reported the same upper bound. With 16 sub-buckets per octave the
// resolution at ~8 ms is ~0.5 ms.
const (
	latencySubBits    = 4
	latencySubBuckets = 1 << latencySubBits

	// latencyBuckets spans 1 ns to 2^35 ns (~34 s): buckets 0..15 count
	// single nanoseconds, then 31 octave groups of 16 sub-buckets each.
	latencyBuckets = 512
)

// Metrics aggregates the server's observability counters. Counter fields are
// atomics updated from connection readers and shard batchers; the histograms
// are mutex-guarded (one short critical section per scored batch).
type Metrics struct {
	start time.Time

	connsTotal   atomic.Uint64
	connsActive  atomic.Int64
	accepted     atomic.Uint64
	rejected     atomic.Uint64
	rejectedLoad atomic.Uint64 // RejectOverload subset of rejected
	scored       atomic.Uint64
	flagged      atomic.Uint64
	batches      atomic.Uint64
	writeErrors  atomic.Uint64

	// Resilience counters: session lifecycle, dedup-window hits, and the
	// slow-client / silent-client reaping paths.
	sessions       atomic.Uint64 // sessions created
	resumed        atomic.Uint64 // successful re-attaches to an existing session
	sessionsReaped atomic.Uint64 // orphaned sessions removed after SessionIdle
	dupes          atomic.Uint64 // replayed samples absorbed by the dedup window
	resent         atomic.Uint64 // stored verdicts re-delivered for replays
	shed           atomic.Uint64 // verdict frames dropped on a full outbound queue
	idleReaped     atomic.Uint64 // conns torn down by the idle read deadline

	mu        sync.Mutex
	latency   [latencyBuckets]uint64
	occupancy []uint64 // index = batch size; [0] unused
}

// newMetrics sizes the occupancy histogram for batches up to maxBatch.
func newMetrics(maxBatch int) *Metrics {
	return &Metrics{start: time.Now(), occupancy: make([]uint64, maxBatch+1)}
}

// observeBatch records one flushed batch: its occupancy and the
// enqueue→scored latency of each sample in it.
func (m *Metrics) observeBatch(size int, lats []time.Duration) {
	m.batches.Add(1)
	m.mu.Lock()
	if size < len(m.occupancy) {
		m.occupancy[size]++
	} else {
		m.occupancy[len(m.occupancy)-1]++
	}
	for _, d := range lats {
		m.latency[latencyBucket(d)]++
	}
	m.mu.Unlock()
}

// latencyBucket maps a duration to its log-linear bucket index: values below
// 2^latencySubBits land in exact single-nanosecond buckets, larger values in
// bucket group (exp - latencySubBits + 1) sub-bucket (top latencySubBits bits
// below the leading bit).
func latencyBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < latencySubBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading bit, ≥ latencySubBits
	sub := int(v>>(uint(exp)-latencySubBits)) - latencySubBuckets
	b := (exp-latencySubBits+1)*latencySubBuckets + sub
	if b >= latencyBuckets {
		return latencyBuckets - 1
	}
	return b
}

// bucketUpperNs returns the exclusive upper bound of latency bucket i in
// nanoseconds — the value percentile estimation reports.
func bucketUpperNs(i int) float64 {
	if i < latencySubBuckets {
		return float64(i + 1)
	}
	group := i / latencySubBuckets // ≥ 1
	sub := i % latencySubBuckets
	return float64(uint64(latencySubBuckets+sub+1) << uint(group-1))
}

// Snapshot is the JSON shape of the /metrics endpoint and of the final drain
// report.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	// Shard is the fleet shard ID this snapshot came from (Config.ShardID;
	// 0 for standalone servers).
	Shard int `json:"shard"`
	// BundleHash, Epoch and Backend are generation provenance, stamped by
	// the server: the content hash of the bundle currently scoring (hex —
	// uint64s lose precision through JSON number round-trips), its
	// activation sequence number, and its compiled kernel.
	BundleHash   string  `json:"bundle_hash,omitempty"`
	Epoch        uint64  `json:"generation_epoch,omitempty"`
	Backend      string  `json:"backend,omitempty"`
	Conns        uint64  `json:"conns_total"`
	ConnsActive  int64   `json:"conns_active"`
	Accepted     uint64  `json:"frames_accepted"`
	Rejected     uint64  `json:"frames_rejected"`
	RejectedLoad uint64  `json:"frames_rejected_overload"`
	Scored       uint64  `json:"frames_scored"`
	Flagged      uint64  `json:"frames_flagged"`
	Batches      uint64  `json:"batches"`
	WriteErrors  uint64  `json:"write_errors"`
	Sessions     uint64  `json:"sessions"`
	Resumed      uint64  `json:"sessions_resumed"`
	SessReaped   uint64  `json:"sessions_reaped"`
	Dupes        uint64  `json:"frames_deduped"`
	Resent       uint64  `json:"verdicts_resent"`
	Shed         uint64  `json:"verdicts_shed"`
	IdleReaped   uint64  `json:"conns_idle_reaped"`
	ScoresPerSec float64 `json:"scores_per_sec"`
	// BatchOccupancy[i] counts flushed batches of exactly i samples (the
	// last entry also absorbs any larger batches).
	BatchOccupancy []uint64 `json:"batch_occupancy"`
	LatencyP50Ms   float64  `json:"latency_p50_ms"`
	LatencyP95Ms   float64  `json:"latency_p95_ms"`
	LatencyP99Ms   float64  `json:"latency_p99_ms"`
}

// Snapshot captures the current metrics.
func (m *Metrics) Snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	s := Snapshot{
		UptimeSec:    up,
		Conns:        m.connsTotal.Load(),
		ConnsActive:  m.connsActive.Load(),
		Accepted:     m.accepted.Load(),
		Rejected:     m.rejected.Load(),
		RejectedLoad: m.rejectedLoad.Load(),
		Scored:       m.scored.Load(),
		Flagged:      m.flagged.Load(),
		Batches:      m.batches.Load(),
		WriteErrors:  m.writeErrors.Load(),
		Sessions:     m.sessions.Load(),
		Resumed:      m.resumed.Load(),
		SessReaped:   m.sessionsReaped.Load(),
		Dupes:        m.dupes.Load(),
		Resent:       m.resent.Load(),
		Shed:         m.shed.Load(),
		IdleReaped:   m.idleReaped.Load(),
	}
	if up > 0 {
		s.ScoresPerSec = float64(s.Scored) / up
	}
	m.mu.Lock()
	s.BatchOccupancy = append([]uint64(nil), m.occupancy...)
	var hist [latencyBuckets]uint64
	copy(hist[:], m.latency[:])
	m.mu.Unlock()
	s.LatencyP50Ms = percentileMs(hist, 0.50)
	s.LatencyP95Ms = percentileMs(hist, 0.95)
	s.LatencyP99Ms = percentileMs(hist, 0.99)
	return s
}

// percentileMs estimates the p-quantile from the bucketed latency histogram,
// reporting each bucket at its upper bound (a conservative estimate).
func percentileMs(hist [latencyBuckets]uint64, p float64) float64 {
	var total uint64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range hist {
		seen += c
		if seen > rank {
			return bucketUpperNs(i) / 1e6
		}
	}
	return bucketUpperNs(latencyBuckets-1) / 1e6
}

// ConnStats is the per-connection summary carried by FrameStats at close.
type ConnStats struct {
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Scored   uint64 `json:"scored"`
	Flagged  uint64 `json:"flagged"`
	// Shard, BundleHash and Epoch are fleet provenance: which shard served
	// this connection, and the content hash (hex) plus activation epoch of
	// the generation active when it closed — so a coordinator merging stats
	// frames from many shards can tell which shard-generation pair produced
	// the last verdicts instead of seeing anonymous per-process totals.
	Shard      int    `json:"shard"`
	BundleHash string `json:"bundle_hash,omitempty"`
	Epoch      uint64 `json:"generation_epoch,omitempty"`
	// Session fields are present only for session-backed connections: the
	// session id and its lifetime totals across every conn that carried it,
	// plus the dedup/resend/shed traffic the resilience layer absorbed.
	Session         uint64 `json:"session,omitempty"`
	SessionAccepted uint64 `json:"session_accepted,omitempty"`
	SessionScored   uint64 `json:"session_scored,omitempty"`
	SessionFlagged  uint64 `json:"session_flagged,omitempty"`
	Dupes           uint64 `json:"dupes,omitempty"`
	Resent          uint64 `json:"resent,omitempty"`
	Shed            uint64 `json:"shed,omitempty"`
}
