package serve

import (
	"testing"

	"evax/internal/dataset"
)

// TestReplayDeterministic: the replay digest is a function of the corpus and
// bundle only — scoring order (seed) and worker count (jobs) must not move a
// single bit.
func TestReplayDeterministic(t *testing.T) {
	det, ds, samples := lab(t)
	corpus := samples[:min(400, len(samples))]

	ref, err := Replay(det, ds, corpus, 1, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows != len(corpus) {
		t.Fatalf("replayed %d rows, want %d", ref.Rows, len(corpus))
	}
	if ref.Flagged == 0 || ref.Flagged == ref.Rows {
		t.Fatalf("degenerate replay: %d/%d flagged", ref.Flagged, ref.Rows)
	}
	for _, seed := range []int64{1, 42, 9999} {
		for _, jobs := range []int{1, 4, 8} {
			got, err := Replay(det, ds, corpus, seed, jobs, "")
			if err != nil {
				t.Fatal(err)
			}
			if got.Hash != ref.Hash {
				t.Errorf("seed=%d jobs=%d: hash %016x != reference %016x", seed, jobs, got.Hash, ref.Hash)
			}
			if got.Flagged != ref.Flagged || got.Rows != ref.Rows {
				t.Errorf("seed=%d jobs=%d: rows=%d flagged=%d, reference rows=%d flagged=%d",
					seed, jobs, got.Rows, got.Flagged, ref.Rows, ref.Flagged)
			}
		}
	}

	// And the digest is sensitive to the corpus: dropping a row changes it.
	short, err := Replay(det, ds, corpus[:len(corpus)-1], 1, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if short.Hash == ref.Hash {
		t.Fatal("digest ignored a dropped row")
	}
}

// TestReplayMatchesOnlineScores: replay and the serving path agree bit-for-bit
// on the raw scores (replay has no flag-window state; it scores rows
// independently, so only the score and threshold comparison are shared).
func TestReplayMatchesOnlineScores(t *testing.T) {
	det, ds, samples := lab(t)
	corpus := samples[:64]
	rep, err := Replay(det, ds, corpus, 7, 4, "")
	if err != nil {
		t.Fatal(err)
	}

	sc := testScorer(t, det, ds, len(corpus[0].Raw), "")
	flagged := 0
	for i := range corpus {
		s := &corpus[i]
		if sc.Score(s.Raw, s.Instructions, s.Cycles) >= sc.Threshold() {
			flagged++
		}
	}
	if rep.Flagged != flagged {
		t.Fatalf("replay flagged %d, offline pipeline flagged %d", rep.Flagged, flagged)
	}
}

func TestReplayRejectsRaggedCorpus(t *testing.T) {
	det, ds, samples := lab(t)
	ragged := append([]dataset.Sample{}, samples[:8]...)
	ragged[5].Raw = ragged[5].Raw[:len(ragged[5].Raw)-1]
	if _, err := Replay(det, ds, ragged, 1, 2, ""); err == nil {
		t.Fatal("ragged corpus accepted")
	}
	empty, err := Replay(det, ds, nil, 1, 2, "")
	if err != nil || empty.Rows != 0 || empty.Flagged != 0 {
		t.Fatalf("empty corpus: %+v (%v)", empty, err)
	}
}
