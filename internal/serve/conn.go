package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// conn is one client connection. The reader goroutine owns the inbound
// framing and admission control; the writer goroutine owns every byte
// written back (verdicts from the shard, rejects and errors from the reader)
// so the socket never sees interleaved writes. Teardown is serialized in the
// reader: flush the shard (barrier), emit the stats frame, close the
// outbound queue — the writer drains it and closes the socket.
type conn struct {
	id    uint64
	srv   *Server
	nc    net.Conn
	shard *shard

	// sess is non-nil for connections that opened with a resume frame: the
	// session carries the dedup window, secure-window state and lifetime
	// counters across reconnects. Set once during the handshake (before any
	// sample), read by the reader and — through request.sess — the shard.
	sess *session

	// out carries encoded frames to the writer; closed by the reader at
	// teardown, after the shard flush barrier, so the shard never delivers
	// to a closed channel.
	out chan []byte

	// accepted/rejected are owned by the reader; scored/flagged and
	// secureUntil by the shard batcher. The flush barrier orders the
	// batcher's final writes before the reader composes the stats frame.
	accepted, rejected uint64
	scored, flagged    uint64
	secureUntil        uint64
}

// deliver hands an encoded frame to the writer. It blocks only when the
// outbound queue is full, and the writer always drains the queue (write
// failures switch it to discard mode), so delivery always completes.
func (c *conn) deliver(frame []byte) { c.out <- frame }

// deliverShed is deliver for session connections: a full outbound queue sheds
// the frame instead of blocking the shard on a slow client, reporting false.
// Shedding is safe only because every session verdict is also stored in the
// dedup ring — the client's request timeout triggers a replay and the stored
// verdict is re-delivered. The policy is deterministic: a frame is shed if
// and only if the queue is full at delivery.
func (c *conn) deliverShed(frame []byte) bool {
	select {
	case c.out <- frame:
		return true
	default:
		c.srv.putFrame(frame)
		c.srv.met.shed.Add(1)
		return false
	}
}

// reject answers seq with a reject frame and counts it.
func (c *conn) reject(seq uint64, code uint8, msg string) {
	c.rejected++
	c.srv.met.rejected.Add(1)
	if code == RejectOverload {
		c.srv.met.rejectedLoad.Add(1)
	}
	c.deliver(AppendReject(nil, Reject{Seq: seq, Code: code, Msg: msg}))
}

// readLoop is the connection's reader goroutine (it also runs teardown).
func (c *conn) readLoop() {
	defer c.srv.readerWg.Done()
	defer c.teardown()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	if err := c.handshake(br); err != nil {
		c.deliver(AppendError(nil, err.Error()))
		return
	}
	idle := c.srv.cfg.IdleTimeout
	for {
		if idle > 0 {
			// Every frame re-arms the idle deadline: a client that goes
			// silent-dead mid-stream is reaped instead of pinning this
			// reader (and its shard pin) until process exit. Live-but-idle
			// clients stay connected by sending pings.
			//evaxlint:ignore droppederr a failed deadline set surfaces as the subsequent read error
			c.nc.SetReadDeadline(time.Now().Add(idle))
			// Checked AFTER arming: Drain flips draining before kicking
			// deadlines, so either we observe draining here and leave, or
			// our re-arm strictly preceded Drain's kick and cannot erase
			// it. Without this order a re-arm could overwrite the kick and
			// pin Drain for a full idle period.
			if c.srv.isDraining() {
				return
			}
		}
		fr, err := ReadFrame(br)
		if err != nil {
			// EOF, client reset, the drain deadline, or the idle deadline:
			// either way the connection stops reading and tears down
			// gracefully (teardown's flush barrier still answers every
			// already-accepted sample).
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !c.srv.isDraining() {
				c.srv.met.idleReaped.Add(1)
			}
			return
		}
		switch fr.Type {
		case FrameSample:
			c.handleSample(fr.Payload)
		case FramePing:
			token, err := DecodePing(fr.Payload)
			if err != nil {
				c.deliver(AppendError(nil, err.Error()))
				return
			}
			c.deliver(AppendPong(nil, token))
		case FrameAdmin:
			c.handleAdmin(fr.Payload)
		case FrameBye:
			return
		default:
			c.deliver(AppendError(nil, fmt.Sprintf("serve: unexpected frame type 0x%02x", fr.Type)))
			return
		}
	}
}

// handshake enforces the opening exchange: version and counter-space
// agreement before any sample is admitted. Two openings exist: a hello
// (sessionless, answered with an echoed hello) and a resume (session-backed,
// answered with an ack naming the session and its dedup window).
func (c *conn) handshake(br *bufio.Reader) error {
	//evaxlint:ignore droppederr a failed deadline set surfaces as the subsequent read error
	c.nc.SetReadDeadline(time.Now().Add(helloTimeout))
	fr, err := ReadFrame(br)
	if err != nil {
		return fmt.Errorf("serve: reading hello: %w", err)
	}
	//evaxlint:ignore droppederr a failed deadline clear surfaces as a read error on the next frame
	c.nc.SetReadDeadline(time.Time{})
	if c.srv.isDraining() {
		// A conn registered in the drain race window: refuse politely.
		return errors.New("serve: server is draining")
	}
	var version, rawDim uint32
	var session uint64
	resume := false
	switch fr.Type {
	case FrameHello:
		h, err := DecodeHello(fr.Payload)
		if err != nil {
			return err
		}
		version, rawDim = h.Version, h.RawDim
	case FrameResume:
		r, err := DecodeResume(fr.Payload)
		if err != nil {
			return err
		}
		version, rawDim, session, resume = r.Version, r.RawDim, r.Session, true
	default:
		return fmt.Errorf("serve: first frame must be hello or resume, got type 0x%02x", fr.Type)
	}
	if version != ProtocolVersion {
		return fmt.Errorf("serve: protocol version %d not supported (want %d)", version, ProtocolVersion)
	}
	if int(rawDim) != c.srv.rawDim {
		return fmt.Errorf("serve: client streams %d counters, server catalog has %d", rawDim, c.srv.rawDim)
	}
	if resume {
		ack, err := c.srv.attachSession(c, session)
		if err != nil {
			return err
		}
		c.deliver(AppendAck(nil, ack))
		return nil
	}
	// Echo the hello so the client knows the dimensionality was agreed.
	c.deliver(AppendHello(nil, Hello{Version: ProtocolVersion, RawDim: uint32(c.srv.rawDim)}))
	return nil
}

// handleSample decodes and admits one sample frame: non-blocking enqueue to
// the pinned shard's bounded queue, reject on overflow or drain. Admission
// control never buffers beyond the queue bound. Session connections run the
// dedup protocol first, so a replayed sample is never scored twice.
func (c *conn) handleSample(payload []byte) {
	if c.srv.isDraining() {
		c.reject(bestEffortSeq(payload), RejectDraining, "server draining")
		return
	}
	row := c.srv.getRow()
	h, instructions, cycles, err := DecodeSampleInto(payload, row)
	if err != nil {
		c.srv.putRow(row)
		c.reject(bestEffortSeq(payload), RejectMalformed, err.Error())
		return
	}
	req := request{
		c:            c,
		sess:         c.sess,
		seq:          h.Seq,
		instrStart:   h.InstrStart,
		instructions: instructions,
		cycles:       cycles,
		raw:          row,
		enq:          time.Now(),
	}
	if sess := c.sess; sess != nil {
		sess.mu.Lock()
		verdict, stored := sess.admit(h.Seq)
		switch verdict {
		case admitDup:
			sess.dupes++
			sess.mu.Unlock()
			c.srv.met.dupes.Add(1)
			c.srv.putRow(row)
			return // verdict is in flight; its flush will (re)deliver
		case admitReplay:
			sess.dupes++
			sess.resent++
			sess.mu.Unlock()
			c.srv.met.dupes.Add(1)
			c.srv.met.resent.Add(1)
			c.srv.putRow(row)
			c.deliver(AppendVerdict(c.srv.getFrame(), stored))
			return
		case admitStale:
			sess.rejected++
			sess.mu.Unlock()
			c.srv.putRow(row)
			c.reject(h.Seq, RejectStale,
				fmt.Sprintf("seq outside dedup window (%d)", c.srv.cfg.SessionWindow))
			return
		}
		// admitFresh: the slot is marked inflight; enqueue while still
		// holding the lock so an overload reject can roll the slot back
		// before any replay of the same seq can observe it.
		select {
		case c.shard.ch <- req:
			sess.accepted++
			sess.mu.Unlock()
			c.accepted++
			c.srv.met.accepted.Add(1)
		default:
			sess.ring[h.Seq%sess.window] = sessEntry{}
			sess.rejected++
			sess.mu.Unlock()
			c.srv.putRow(row)
			c.reject(h.Seq, RejectOverload,
				fmt.Sprintf("shard queue full (%d)", c.srv.cfg.QueueBound))
		}
		return
	}
	select {
	case c.shard.ch <- req:
		c.accepted++
		c.srv.met.accepted.Add(1)
	default:
		c.srv.putRow(row)
		c.reject(h.Seq, RejectOverload,
			fmt.Sprintf("shard queue full (%d)", c.srv.cfg.QueueBound))
	}
}

// bestEffortSeq extracts the sequence number from a possibly-malformed sample
// payload so the reject can still be correlated.
func bestEffortSeq(payload []byte) uint64 {
	if len(payload) >= 8 {
		return binary.LittleEndian.Uint64(payload)
	}
	return 0
}

// teardown is the graceful close, shared by every exit path (bye, client
// error, drain): flush the shard so every accepted sample's verdict is
// already in the outbound queue, announce drain if one is in progress, emit
// the connection stats frame, and close the queue.
func (c *conn) teardown() {
	ack := make(chan struct{})
	c.shard.ch <- request{flush: ack}
	<-ack
	// The barrier ordered every batcher write (scored/flagged) before this
	// point; stats are now consistent. For session conns it also means no
	// shard flush still holds this conn as a delivery target, so detaching
	// and closing the queue below cannot race a verdict delivery.
	c.srv.detachSession(c)
	if c.srv.isDraining() {
		c.deliver(AppendFrame(nil, FrameDrain, nil))
	}
	cs := ConnStats{
		Accepted:   c.accepted,
		Rejected:   c.rejected,
		Scored:     c.scored,
		Flagged:    c.flagged,
		Shard:      c.srv.cfg.ShardID,
		BundleHash: c.srv.sw.Active().HashHex(),
		Epoch:      c.srv.sw.Epoch(),
	}
	if sess := c.sess; sess != nil {
		sess.mu.Lock()
		cs.Session = sess.id
		cs.SessionAccepted = sess.accepted
		cs.SessionScored = sess.scored
		cs.SessionFlagged = sess.flagged
		cs.Dupes = sess.dupes
		cs.Resent = sess.resent
		cs.Shed = sess.shed
		sess.mu.Unlock()
	}
	stats, err := json.Marshal(cs)
	if err == nil {
		c.deliver(AppendFrame(nil, FrameStats, stats))
	}
	close(c.out)
	c.srv.unregister(c)
}

// writeLoop is the connection's writer goroutine: the single owner of the
// socket's write side. On a write error it stops writing but keeps draining
// the queue, so shard deliveries never block on a dead client.
func (c *conn) writeLoop() {
	defer c.srv.connWg.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	dead := false
	for frame := range c.out {
		if dead {
			// Still recycle: a discarded frame's buffer is as reusable as a
			// written one.
			c.srv.putFrame(frame)
			continue
		}
		//evaxlint:ignore droppederr a failed deadline set surfaces as the subsequent write error
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		_, err := bw.Write(frame)
		// bufio copied the frame (or failed); either way the buffer is free
		// to recycle into the verdict freelist.
		c.srv.putFrame(frame)
		if err != nil {
			dead = true
			c.srv.met.writeErrors.Add(1)
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
				c.srv.met.writeErrors.Add(1)
			}
		}
	}
	if !dead {
		//evaxlint:ignore droppederr the connection is closing; a final flush failure has no receiver to report to
		if err := bw.Flush(); err == nil {
			c.lingerClose()
		}
	}
	//evaxlint:ignore droppederr close failure on an already-drained connection loses nothing
	c.nc.Close()
}

// lingerClose protects the final frames from a TCP reset. Closing a socket
// whose kernel receive buffer still holds unread bytes — routine when drain
// kicks the reader off a connection the client is still streaming into —
// sends RST instead of FIN, and the reset discards the stats frame out of
// the client's receive path. So: half-close the write side (FIN after the
// flushed tail), then consume the client's in-flight bytes until its FIN or
// a bounded deadline, and only then fully close. Runs on the writer
// goroutine after the reader has exited, so it is the socket's sole reader.
func (c *conn) lingerClose() {
	cw, ok := c.nc.(interface{ CloseWrite() error })
	if !ok {
		return
	}
	if err := cw.CloseWrite(); err != nil {
		return
	}
	//evaxlint:ignore droppederr a failed deadline set surfaces as the discard read erroring out
	c.nc.SetReadDeadline(time.Now().Add(lingerTimeout))
	//evaxlint:ignore droppederr discarding the client's in-flight tail; any error ends the linger
	io.Copy(io.Discard, c.nc)
}
