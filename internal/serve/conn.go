package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// conn is one client connection. The reader goroutine owns the inbound
// framing and admission control; the writer goroutine owns every byte
// written back (verdicts from the shard, rejects and errors from the reader)
// so the socket never sees interleaved writes. Teardown is serialized in the
// reader: flush the shard (barrier), emit the stats frame, close the
// outbound queue — the writer drains it and closes the socket.
type conn struct {
	id    uint64
	srv   *Server
	nc    net.Conn
	shard *shard

	// out carries encoded frames to the writer; closed by the reader at
	// teardown, after the shard flush barrier, so the shard never delivers
	// to a closed channel.
	out chan []byte

	// accepted/rejected are owned by the reader; scored/flagged and
	// secureUntil by the shard batcher. The flush barrier orders the
	// batcher's final writes before the reader composes the stats frame.
	accepted, rejected uint64
	scored, flagged    uint64
	secureUntil        uint64
}

// deliver hands an encoded frame to the writer. It blocks only when the
// outbound queue is full, and the writer always drains the queue (write
// failures switch it to discard mode), so delivery always completes.
func (c *conn) deliver(frame []byte) { c.out <- frame }

// reject answers seq with a reject frame and counts it.
func (c *conn) reject(seq uint64, code uint8, msg string) {
	c.rejected++
	c.srv.met.rejected.Add(1)
	if code == RejectOverload {
		c.srv.met.rejectedLoad.Add(1)
	}
	c.deliver(AppendReject(nil, Reject{Seq: seq, Code: code, Msg: msg}))
}

// readLoop is the connection's reader goroutine (it also runs teardown).
func (c *conn) readLoop() {
	defer c.srv.readerWg.Done()
	defer c.teardown()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	if err := c.handshake(br); err != nil {
		c.deliver(AppendError(nil, err.Error()))
		return
	}
	for {
		fr, err := ReadFrame(br)
		if err != nil {
			// EOF, client reset, or the drain deadline: either way the
			// connection stops reading and tears down gracefully.
			return
		}
		switch fr.Type {
		case FrameSample:
			c.handleSample(fr.Payload)
		case FrameAdmin:
			c.handleAdmin(fr.Payload)
		case FrameBye:
			return
		default:
			c.deliver(AppendError(nil, fmt.Sprintf("serve: unexpected frame type 0x%02x", fr.Type)))
			return
		}
	}
}

// handshake enforces the hello exchange: version and counter-space agreement
// before any sample is admitted.
func (c *conn) handshake(br *bufio.Reader) error {
	//evaxlint:ignore droppederr a failed deadline set surfaces as the subsequent read error
	c.nc.SetReadDeadline(time.Now().Add(helloTimeout))
	fr, err := ReadFrame(br)
	if err != nil {
		return fmt.Errorf("serve: reading hello: %w", err)
	}
	//evaxlint:ignore droppederr a failed deadline clear surfaces as a read error on the next frame
	c.nc.SetReadDeadline(time.Time{})
	if c.srv.isDraining() {
		// A conn registered in the drain race window: refuse politely.
		return errors.New("serve: server is draining")
	}
	if fr.Type != FrameHello {
		return fmt.Errorf("serve: first frame must be hello, got type 0x%02x", fr.Type)
	}
	h, err := DecodeHello(fr.Payload)
	if err != nil {
		return err
	}
	if h.Version != ProtocolVersion {
		return fmt.Errorf("serve: protocol version %d not supported (want %d)", h.Version, ProtocolVersion)
	}
	if int(h.RawDim) != c.srv.rawDim {
		return fmt.Errorf("serve: client streams %d counters, server catalog has %d", h.RawDim, c.srv.rawDim)
	}
	// Echo the hello so the client knows the dimensionality was agreed.
	c.deliver(AppendHello(nil, Hello{Version: ProtocolVersion, RawDim: uint32(c.srv.rawDim)}))
	return nil
}

// handleSample decodes and admits one sample frame: non-blocking enqueue to
// the pinned shard's bounded queue, reject on overflow or drain. Admission
// control never buffers beyond the queue bound.
func (c *conn) handleSample(payload []byte) {
	if c.srv.isDraining() {
		c.reject(bestEffortSeq(payload), RejectDraining, "server draining")
		return
	}
	row := c.srv.getRow()
	h, instructions, cycles, err := DecodeSampleInto(payload, row)
	if err != nil {
		c.srv.putRow(row)
		c.reject(bestEffortSeq(payload), RejectMalformed, err.Error())
		return
	}
	select {
	case c.shard.ch <- request{
		c:            c,
		seq:          h.Seq,
		instrStart:   h.InstrStart,
		instructions: instructions,
		cycles:       cycles,
		raw:          row,
		enq:          time.Now(),
	}:
		c.accepted++
		c.srv.met.accepted.Add(1)
	default:
		c.srv.putRow(row)
		c.reject(h.Seq, RejectOverload,
			fmt.Sprintf("shard queue full (%d)", c.srv.cfg.QueueBound))
	}
}

// bestEffortSeq extracts the sequence number from a possibly-malformed sample
// payload so the reject can still be correlated.
func bestEffortSeq(payload []byte) uint64 {
	if len(payload) >= 8 {
		return binary.LittleEndian.Uint64(payload)
	}
	return 0
}

// teardown is the graceful close, shared by every exit path (bye, client
// error, drain): flush the shard so every accepted sample's verdict is
// already in the outbound queue, announce drain if one is in progress, emit
// the connection stats frame, and close the queue.
func (c *conn) teardown() {
	ack := make(chan struct{})
	c.shard.ch <- request{flush: ack}
	<-ack
	// The barrier ordered every batcher write (scored/flagged) before this
	// point; stats are now consistent.
	if c.srv.isDraining() {
		c.deliver(AppendFrame(nil, FrameDrain, nil))
	}
	stats, err := json.Marshal(ConnStats{
		Accepted:   c.accepted,
		Rejected:   c.rejected,
		Scored:     c.scored,
		Flagged:    c.flagged,
		BundleHash: c.srv.sw.Active().HashHex(),
	})
	if err == nil {
		c.deliver(AppendFrame(nil, FrameStats, stats))
	}
	close(c.out)
	c.srv.unregister(c)
}

// writeLoop is the connection's writer goroutine: the single owner of the
// socket's write side. On a write error it stops writing but keeps draining
// the queue, so shard deliveries never block on a dead client.
func (c *conn) writeLoop() {
	defer c.srv.connWg.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	dead := false
	for frame := range c.out {
		if dead {
			// Still recycle: a discarded frame's buffer is as reusable as a
			// written one.
			c.srv.putFrame(frame)
			continue
		}
		//evaxlint:ignore droppederr a failed deadline set surfaces as the subsequent write error
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		_, err := bw.Write(frame)
		// bufio copied the frame (or failed); either way the buffer is free
		// to recycle into the verdict freelist.
		c.srv.putFrame(frame)
		if err != nil {
			dead = true
			c.srv.met.writeErrors.Add(1)
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
				c.srv.met.writeErrors.Add(1)
			}
		}
	}
	if !dead {
		//evaxlint:ignore droppederr the connection is closing; a final flush failure has no receiver to report to
		bw.Flush()
	}
	//evaxlint:ignore droppederr close failure on an already-drained connection loses nothing
	c.nc.Close()
}
