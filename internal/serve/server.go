package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/engine"
	"evax/internal/safeio"
)

// Backend selectors for Config.Backend, re-exported from the engine (which
// owns backend compilation since the generation refactor).
const (
	BackendFloat     = engine.BackendFloat
	BackendQuantized = engine.BackendQuantized
)

// helloTimeout bounds how long a fresh connection may sit silent before its
// hello: a port scanner or wedged client can't pin a reader goroutine forever.
const helloTimeout = 5 * time.Second

// lingerTimeout bounds the post-FIN discard read that protects a closing
// connection's final frames (stats, drain notice) from an RST clobbering
// them: the writer half-closes, then consumes the client's in-flight tail
// until its FIN or this deadline. A vanished client costs one timeout, not
// a hang.
const lingerTimeout = time.Second

// outQueueDepth is the per-connection outbound frame queue. The writer drains
// it continuously (discarding after a write error), so the depth only smooths
// bursts; it never becomes unbounded buffering.
const outQueueDepth = 256

// Config parameterizes a Server. The zero value is unusable; DefaultConfig
// supplies the serving defaults.
type Config struct {
	// Addr is the TCP listen address for the binary framing protocol.
	Addr string
	// HTTPAddr, when non-empty, serves the localhost HTTP/JSON fallback:
	// /metrics, /score, /healthz and /debug/pprof.
	HTTPAddr string
	// MaxBatch caps a scoring micro-batch.
	MaxBatch int
	// Linger is how long a shard waits after the first queued sample for the
	// batch to fill before flushing anyway. <= 0 flushes whatever is queued
	// without waiting.
	Linger time.Duration
	// QueueBound caps each shard's ingest queue — the admission-control
	// bound. Samples arriving with the queue full are rejected with
	// RejectOverload, never buffered.
	QueueBound int
	// Shards is the number of scoring lanes. Connections are pinned to
	// shards round-robin, so per-connection sample order is preserved.
	Shards int
	// SecureWindow is the post-flag mitigation window in committed
	// instructions, mirroring defense.Controller.
	SecureWindow uint64
	// WriteTimeout bounds each frame write to a client.
	WriteTimeout time.Duration
	// IdleTimeout bounds the silence between any two frames from a client
	// (not just before the hello): a silent-dead client is reaped instead of
	// pinning a reader goroutine and shard slot forever. Clients that want
	// long-lived idle connections keep them alive with ping frames. <= 0
	// disables the idle deadline (the hello deadline always applies).
	IdleTimeout time.Duration
	// SessionWindow is the per-session dedup ring size in sequence numbers:
	// how far behind the highest admitted seq a replayed sample can be and
	// still be deduplicated / re-answered. Replays older than the window are
	// rejected with RejectStale.
	SessionWindow int
	// SessionIdle is how long an orphaned session (no attached conn) is kept
	// resumable before being reaped. <= 0 keeps orphans forever.
	SessionIdle time.Duration
	// StatsPath, when non-empty, receives the final metrics snapshot
	// (crash-safe JSON) when the server drains.
	StatsPath string
	// Backend selects the scoring kernel: BackendFloat (default,
	// bit-identical to offline scoring) or BackendQuantized (int8 hardware
	// arithmetic, fastest, verdict-agreement gated).
	Backend string
	// ShardID identifies this server within a fleet. It is stamped on every
	// metrics snapshot and per-connection stats frame so aggregated stats
	// keep their provenance (which shard, which generation) instead of
	// collapsing into per-process anonymity. Standalone servers leave it 0.
	ShardID int

	// flushPause, when non-nil, runs at the top of every shard flush. Test
	// hook: lets a test hold the batcher still while it floods the ingest
	// queue to observe admission control deterministically.
	flushPause func()
}

// DefaultConfig returns the serving defaults: loopback listener on an
// ephemeral port, 32-sample batches with a 2ms linger, and a 1024-deep
// admission queue per shard.
func DefaultConfig() Config {
	return Config{
		Addr:          "127.0.0.1:0",
		MaxBatch:      32,
		Linger:        2 * time.Millisecond,
		QueueBound:    1024,
		Shards:        1,
		SecureWindow:  1_000_000,
		WriteTimeout:  10 * time.Second,
		IdleTimeout:   2 * time.Minute,
		SessionWindow: 1024,
		SessionIdle:   5 * time.Minute,
	}
}

// Server is the online detection service. Construct with New, start with
// Start, stop with Drain (which flushes every accepted sample before
// returning).
type Server struct {
	cfg    Config
	rawDim int
	met    *Metrics

	// mgr drives the live-vaccination loop (canary gate, staging, rollback);
	// sw is its swapper, the atomic active/fallback generation pair every
	// scoring consumer resolves from per batch.
	mgr *engine.Manager
	sw  *engine.Swapper

	shards []*shard
	// rowFree and frameFree are typed freelists (bounded channels) for
	// counter rows and verdict frame buffers. sync.Pool would box every
	// []float64/[]byte into an interface on Put — one heap allocation per
	// scored sample — so the hot path recycles through channels instead:
	// non-blocking get-else-make, put-else-drop.
	rowFree   chan []float64
	frameFree chan []byte

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	// httpSc serializes the stateless HTTP /score fallback; like the shards
	// it re-resolves from the swapper when a new generation goes live.
	httpMu  sync.Mutex
	httpGen *engine.Generation
	httpSc  *engine.Scorer

	mu       sync.Mutex
	conns    map[uint64]*conn
	nextConn uint64
	sessions map[uint64]*session
	nextSess uint64 // session ids start at 1; 0 in a resume frame means "create"
	draining bool
	drained  chan struct{} // closed when Drain completes

	// readerWg counts the accept loop plus every connection reader; the
	// accept loop's own count keeps it nonzero while new readers register,
	// so Drain's Wait cannot race an Add.
	readerWg sync.WaitGroup
	connWg   sync.WaitGroup // connection writers
	shardWg  sync.WaitGroup // shard batchers
}

// New builds a Server scoring with det, normalizing with ds, over rawDim raw
// counters: the in-memory form, wrapping the pair into a single generation
// behind an ungated, persistence-less manager. Servers that hot-swap
// construct the manager themselves and use NewFromManager.
func New(det *detect.Detector, ds *dataset.Dataset, rawDim int, cfg Config) (*Server, error) {
	g, err := engine.New(det, ds, cfg.Backend)
	if err != nil {
		return nil, err
	}
	if g.RawDim() != rawDim {
		return nil, fmt.Errorf("serve: generation scores %d raw counters, server configured for %d",
			g.RawDim(), rawDim)
	}
	mgr, err := engine.NewManager(g, engine.ManagerConfig{Backend: cfg.Backend})
	if err != nil {
		return nil, err
	}
	return NewFromManager(mgr, cfg)
}

// NewFromManager builds a Server serving the manager's active generation,
// with the manager wired to the admin swap/rollback frames. Each shard and
// the HTTP fallback resolve a private scorer from the swapper per batch, so
// a promoted generation takes effect on the very next flush.
func NewFromManager(mgr *engine.Manager, cfg Config) (*Server, error) {
	if cfg.MaxBatch <= 0 {
		return nil, fmt.Errorf("serve: MaxBatch must be positive, got %d", cfg.MaxBatch)
	}
	if cfg.QueueBound <= 0 {
		return nil, fmt.Errorf("serve: QueueBound must be positive, got %d", cfg.QueueBound)
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("serve: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.SessionWindow <= 0 {
		// Configs predating sessions leave this zero; give them the default
		// rather than failing, since the field only matters to resume users.
		cfg.SessionWindow = DefaultConfig().SessionWindow
	}
	rawDim := mgr.Active().RawDim()
	if rawDim <= 0 {
		return nil, fmt.Errorf("serve: rawDim must be positive, got %d", rawDim)
	}
	srv := &Server{
		cfg:      cfg,
		rawDim:   rawDim,
		met:      newMetrics(cfg.MaxBatch),
		mgr:      mgr,
		sw:       mgr.Swapper(),
		conns:    make(map[uint64]*conn),
		sessions: make(map[uint64]*session),
		nextSess: 1,
		drained:  make(chan struct{}),
	}
	// Capacity covers every row that can be in flight at once (each shard's
	// queue plus its draining batch); beyond that, puts drop to the GC.
	srv.rowFree = make(chan []float64, cfg.Shards*(cfg.QueueBound+cfg.MaxBatch))
	srv.frameFree = make(chan []byte, frameFreeDepth)
	for i := 0; i < cfg.Shards; i++ {
		srv.shards = append(srv.shards, &shard{
			srv:      srv,
			ch:       make(chan request, cfg.QueueBound),
			rawBuf:   make([]float64, cfg.MaxBatch*rawDim),
			instrBuf: make([]uint64, cfg.MaxBatch),
			cycBuf:   make([]uint64, cfg.MaxBatch),
			scoreBuf: make([]float64, cfg.MaxBatch),
		})
	}
	return srv, nil
}

// Manager exposes the live-vaccination manager driving this server.
func (s *Server) Manager() *engine.Manager { return s.mgr }

// getRow leases a rawDim-wide row from the freelist. Rows are fully
// overwritten before use, so reuse order never reaches a score.
func (s *Server) getRow() []float64 {
	select {
	case row := <-s.rowFree:
		return row
	default:
		return make([]float64, s.rawDim)
	}
}

// putRow returns a leased row. Called from the shard batcher after scoring;
// a full freelist drops the row to the GC, so the send never blocks.
func (s *Server) putRow(row []float64) {
	if row == nil {
		return
	}
	select {
	case s.rowFree <- row:
	default:
	}
}

// getFrame leases a verdict-sized frame buffer (length 0). The batcher
// encodes into it and the connection writer recycles it after the socket
// write, so steady-state verdict delivery allocates nothing.
func (s *Server) getFrame() []byte {
	select {
	case b := <-s.frameFree:
		return b[:0]
	default:
		//evaxlint:ignore hotpath cold-start frame buffer; steady state recycles through the freelist
		return make([]byte, 0, verdictFrameLen)
	}
}

// putFrame recycles a written frame buffer. Undersized buffers (none today)
// and overflow beyond the freelist bound drop to the GC.
func (s *Server) putFrame(b []byte) {
	if cap(b) < verdictFrameLen {
		return
	}
	select {
	case s.frameFree <- b:
	default:
	}
}

// Start begins listening and serving. It returns once the listeners are
// bound; serving continues until Drain.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			//evaxlint:ignore droppederr the frame listener is being abandoned; the bind error is the failure reported
			ln.Close()
			return fmt.Errorf("serve: listen http %s: %w", s.cfg.HTTPAddr, err)
		}
		s.httpLn = httpLn
		s.httpSrv = &http.Server{Handler: s.httpMux()}
		go func() {
			//evaxlint:ignore droppederr http.ErrServerClosed is the normal shutdown result
			s.httpSrv.Serve(httpLn)
		}()
	}
	for _, sh := range s.shards {
		s.shardWg.Add(1)
		go sh.run()
	}
	s.readerWg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound framing-protocol address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the bound HTTP fallback address ("" if disabled).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Metrics exposes the server's live counters.
func (s *Server) Metrics() *Metrics { return s.met }

// Snapshot captures the current metrics with shard and generation provenance
// stamped — the same shape /metrics serves and Drain returns. Fleet
// coordinators poll it to publish per-shard stats frames.
func (s *Server) Snapshot() Snapshot { return s.snapshot() }

// snapshot captures the metrics and stamps generation provenance on top:
// which bundle (content hash) is serving, under which activation epoch and
// backend — so /metrics and the drain report always say what scored.
func (s *Server) snapshot() Snapshot {
	snap := s.met.Snapshot()
	g := s.sw.Active()
	snap.Shard = s.cfg.ShardID
	snap.BundleHash = g.HashHex()
	snap.Epoch = s.sw.Epoch()
	snap.Backend = g.Backend()
	return snap
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.readerWg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.register(nc) {
			//evaxlint:ignore droppederr refusing a connection during drain; nothing to report
			nc.Close()
		}
	}
}

// register wires a new connection: pin to a shard, spawn reader and writer.
// Returns false (and spawns nothing) when the server is draining.
func (s *Server) register(nc net.Conn) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	id := s.nextConn
	s.nextConn++
	c := &conn{
		id:    id,
		srv:   s,
		nc:    nc,
		shard: s.shards[id%uint64(len(s.shards))],
		out:   make(chan []byte, outQueueDepth),
	}
	s.conns[id] = c
	s.readerWg.Add(1)
	s.connWg.Add(1)
	s.mu.Unlock()
	s.met.connsTotal.Add(1)
	s.met.connsActive.Add(1)
	go c.readLoop()
	go c.writeLoop()
	return true
}

// unregister drops a connection from the live set.
func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c.id)
	s.mu.Unlock()
	s.met.connsActive.Add(-1)
}

// isDraining reports whether Drain has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: stop accepting, force every connection
// reader off its socket, flush all in-flight batches so every accepted sample
// has its verdict delivered, then persist the final metrics snapshot. Every
// sample accepted before Drain is answered; none are lost. Safe to call once;
// later calls wait for the first and return the same snapshot.
func (s *Server) Drain() (Snapshot, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.drained
		return s.snapshot(), nil
	}
	s.draining = true
	//evaxlint:ignore droppederr closing the accept listener during drain; accept exits either way
	s.ln.Close()
	past := time.Now().Add(-time.Second)
	for _, c := range s.conns {
		// Kick readers off blocking reads; their next ReadFrame errors and
		// the connection tears down through the normal flush barrier.
		//evaxlint:ignore droppederr a failed deadline set only delays this conn's teardown until its next read returns
		c.nc.SetReadDeadline(past)
	}
	s.mu.Unlock()

	// Readers finish (each one's teardown flushes its shard, so every
	// accepted sample's verdict is already queued outbound), then shards,
	// then writers.
	s.readerWg.Wait()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.shardWg.Wait()
	s.connWg.Wait()

	if s.httpSrv != nil {
		//evaxlint:ignore droppederr drain is complete; an http close error has nothing left to affect
		s.httpSrv.Close()
	}

	snap := s.snapshot()
	var err error
	if s.cfg.StatsPath != "" {
		var data []byte
		data, err = json.MarshalIndent(snap, "", "  ")
		if err == nil {
			data = append(data, '\n')
			err = safeio.WriteFile(s.cfg.StatsPath, data, 0o644)
		}
	}
	close(s.drained)
	return snap, err
}

// Run serves until ctx is cancelled, then drains. It is the programmatic form
// of evaxd's SIGTERM handling.
func (s *Server) Run(ctx context.Context) (Snapshot, error) {
	if err := s.Start(); err != nil {
		return Snapshot{}, err
	}
	<-ctx.Done()
	snap, err := s.Drain()
	if err != nil {
		return snap, err
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return snap, cause
	}
	return snap, nil
}

// httpMux builds the localhost HTTP/JSON fallback: observability endpoints
// plus a stateless single-sample scoring route.
func (s *Server) httpMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//evaxlint:ignore droppederr an interrupted metrics response has no server-side effect
		enc.Encode(s.snapshot())
	})
	mux.HandleFunc("/score", s.handleScore)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// scoreRequest is the /score request body.
type scoreRequest struct {
	Raw          []float64 `json:"raw"`
	Instructions uint64    `json:"instructions"`
	Cycles       uint64    `json:"cycles"`
}

// scoreResponse is the /score response body.
type scoreResponse struct {
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Flagged   bool    `json:"flagged"`
}

// handleScore scores one sample over HTTP/JSON: the stateless fallback for
// clients that can't speak the framing protocol. No flag-window state is
// kept; use the binary protocol for windowed serving.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req scoreRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxPayload)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Raw) != s.rawDim {
		http.Error(w, fmt.Sprintf("raw has %d counters, server catalog has %d", len(req.Raw), s.rawDim),
			http.StatusBadRequest)
		return
	}
	s.httpMu.Lock()
	if g := s.sw.Active(); g != s.httpGen {
		s.httpSc = g.NewScorer()
		s.httpGen = g
	}
	score := s.httpSc.Score(req.Raw, req.Instructions, req.Cycles)
	thr := s.httpSc.Threshold()
	s.httpMu.Unlock()
	s.met.scored.Add(1)
	w.Header().Set("Content-Type", "application/json")
	//evaxlint:ignore droppederr an interrupted score response has no server-side effect
	json.NewEncoder(w).Encode(scoreResponse{Score: score, Threshold: thr, Flagged: score >= thr})
}
