package client

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"evax/internal/attacks"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/netfault"
	"evax/internal/serve"
	"evax/internal/sim"
	"evax/internal/testleak"
	"evax/internal/workload"
)

// The chaos lab: one trained detector + corpus shared by every test in this
// package (training dominates wall-clock, so it runs once).
var (
	labOnce    sync.Once
	labDet     *detect.Detector
	labDS      *dataset.Dataset
	labSamples []dataset.Sample
)

func lab(t *testing.T) (*detect.Detector, *dataset.Dataset, []dataset.Sample) {
	t.Helper()
	labOnce.Do(func() {
		var samples []dataset.Sample
		cfg := sim.DefaultConfig()
		for _, w := range workload.All()[:4] {
			samples = append(samples, dataset.Collect(cfg, w.Build(1, 8), 2000, 150_000)...)
		}
		for _, a := range attacks.All()[:6] {
			samples = append(samples, dataset.Collect(cfg, a.Build(11, 60), 2000, 150_000)...)
		}
		ds := dataset.New(samples)
		fs := detect.EVAXBase()
		fs.SetEngineered(detect.DefaultEngineered(fs))
		d := detect.NewPerceptron(1, fs)
		idx := make([]int, len(ds.Samples))
		for i := range idx {
			idx[i] = i
		}
		d.Train(ds, idx, detect.DefaultTrainOptions())
		var benign []float64
		for i := range ds.Samples {
			if !ds.Samples[i].Malicious {
				benign = append(benign, d.Score(ds.Samples[i].Derived))
			}
		}
		d.TuneThresholdForFPR(benign, 0.02)
		labDet, labDS, labSamples = d, ds, ds.Samples
	})
	if len(labSamples) < 200 {
		t.Fatalf("lab corpus too small for the chaos tests: %d samples", len(labSamples))
	}
	return labDet, labDS, labSamples
}

// startServer boots an in-process server and registers its drain as cleanup.
func startServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	det, ds, samples := lab(t)
	srv, err := serve.New(det, ds, len(samples[0].Raw), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if _, err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv
}

// chaosServerConfig keeps the admission queue far above the offered load:
// an overload reject reorders scoring relative to the fault-free run, which
// would void the digest comparison (and the tests assert none happened).
func chaosServerConfig() serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Shards = 2
	cfg.MaxBatch = 8
	cfg.Linger = time.Millisecond
	cfg.QueueBound = 4096
	return cfg
}

// chaosClientOptions paces recovery for an in-process server: backoff in the
// low milliseconds, a small in-flight window so verdict reads interleave
// with submissions (forcing read-side faults to fire mid-stream).
func chaosClientOptions() Options {
	return Options{
		DialTimeout:     2 * time.Second,
		RequestTimeout:  2 * time.Second,
		Heartbeat:       250 * time.Millisecond,
		BackoffBase:     time.Millisecond,
		BackoffMax:      8 * time.Millisecond,
		BreakerCooldown: 10 * time.Millisecond,
		Window:          8,
	}
}

// carve deals the corpus into per-client workloads: client i streams
// samples[i*per : (i+1)*per], identically in every run that shares the
// fleet shape.
func carve(t *testing.T, samples []dataset.Sample, clients, per int) [][]Sample {
	t.Helper()
	if clients*per > len(samples) {
		t.Fatalf("corpus has %d samples, need %d", len(samples), clients*per)
	}
	work := make([][]Sample, clients)
	for i := range work {
		part := samples[i*per : (i+1)*per]
		rows := make([]Sample, len(part))
		for j := range part {
			rows[j] = Sample{
				Instructions: part[j].Instructions,
				Cycles:       part[j].Cycles,
				Raw:          part[j].Raw,
			}
		}
		work[i] = rows
	}
	return work
}

// TestChaosExactlyOnce is the flagship acceptance test: four resilient
// clients stream through 24 injected faults (kills, tears, truncations,
// stalls, read kills), and afterwards
//
//   - every accepted sample was scored exactly once (server scored count ==
//     unique samples, replays absorbed as dupes, zero overload rejects),
//   - the merged verdict digest is bit-identical to a fault-free run,
//   - no goroutine leaked.
func TestChaosExactlyOnce(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	const (
		clients = 4
		perConn = 48
		faults  = 6
	)
	work := carve(t, samples, clients, perConn)

	// Fault-free baseline on its own server: the reference digest.
	baseSrv := startServer(t, chaosServerConfig())
	base, err := RunChaos(ChaosConfig{
		Addr: baseSrv.Addr(), RawDim: len(samples[0].Raw),
		Name: "chaos-e2e", FaultsPerClient: 0,
		Options: chaosClientOptions(),
	}, work)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Events) != 0 {
		t.Fatalf("baseline fired %d faults", len(base.Events))
	}
	if base.Rows != clients*perConn {
		t.Fatalf("baseline folded %d verdicts, want %d", base.Rows, clients*perConn)
	}
	// The corpus must exercise both flag outcomes or the digest is vacuous.
	if base.Flagged == 0 || base.Flagged == base.Rows {
		t.Fatalf("degenerate corpus: %d/%d flagged", base.Flagged, base.Rows)
	}

	// The chaos run proper, on a fresh server so its metrics are clean.
	srv := startServer(t, chaosServerConfig())
	rep, err := RunChaos(ChaosConfig{
		Addr: srv.Addr(), RawDim: len(samples[0].Raw),
		Name: "chaos-e2e", FaultsPerClient: faults,
		Stall:   50 * time.Millisecond,
		Options: chaosClientOptions(),
	}, work)
	if err != nil {
		t.Fatal(err)
	}

	// Every planned fault fired.
	planned := netfault.Plan("chaos-e2e", clients, faults, 50*time.Millisecond).Total()
	if planned < 20 {
		t.Fatalf("plan holds %d faults, the acceptance bar is 20", planned)
	}
	if len(rep.Events) != planned {
		t.Fatalf("%d faults fired, planned %d:\n%v", len(rep.Events), planned, rep.Events)
	}

	// Digest bit-identical to the fault-free run.
	if rep.Rows != base.Rows || rep.Digest != base.Digest || rep.Flagged != base.Flagged {
		t.Fatalf("chaos digest %016x (%d rows, %d flagged) != baseline %016x (%d rows, %d flagged)",
			rep.Digest, rep.Rows, rep.Flagged, base.Digest, base.Rows, base.Flagged)
	}

	// Per-client: one verdict per sample, in sequence order.
	for i, r := range rep.Reports {
		if len(r.Verdicts) != perConn {
			t.Fatalf("client %d: %d verdicts, want %d", i, len(r.Verdicts), perConn)
		}
		for j, v := range r.Verdicts {
			if v.Seq != uint64(j) {
				t.Fatalf("client %d verdict %d has seq %d", i, j, v.Seq)
			}
		}
		if r.Stats.Reconnects < uint64(faults) {
			t.Errorf("client %d reconnected %d times through %d faults", i, r.Stats.Reconnects, faults)
		}
	}

	// Exactly-once on the server: unique samples scored once each, the
	// replay traffic absorbed by the dedup ring, and no overload rejects
	// (which would have reordered scoring and voided the comparison).
	snap := srv.Metrics().Snapshot()
	if snap.Scored != uint64(clients*perConn) {
		t.Fatalf("server scored %d, want exactly %d", snap.Scored, clients*perConn)
	}
	if snap.RejectedLoad != 0 {
		t.Fatalf("%d overload rejects: raise QueueBound, the run is not comparable", snap.RejectedLoad)
	}
	if snap.Dupes == 0 {
		t.Fatal("no replays were deduped — the chaos run never exercised the ring")
	}
	if snap.Sessions != clients {
		t.Fatalf("%d sessions for %d clients", snap.Sessions, clients)
	}
	if snap.Resumed < uint64(planned-clients) {
		t.Fatalf("only %d resumes for %d faults", snap.Resumed, planned)
	}
}

// TestChaosDeterministicReplay: the same schedule name against two fresh
// servers produces the identical fault event sequence and the identical
// merged digest — chaos runs are bit-reproducible.
func TestChaosDeterministicReplay(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	const (
		clients = 2
		perConn = 32
		faults  = 4
	)
	work := carve(t, samples, clients, perConn)

	run := func() *ChaosReport {
		srv := startServer(t, chaosServerConfig())
		rep, err := RunChaos(ChaosConfig{
			Addr: srv.Addr(), RawDim: len(samples[0].Raw),
			Name: "chaos-replay", FaultsPerClient: faults,
			Stall:   20 * time.Millisecond,
			Options: chaosClientOptions(),
		}, work)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1 := run()
	r2 := run()
	if r1.Digest != r2.Digest || r1.Rows != r2.Rows {
		t.Fatalf("digests diverge across identical runs: %016x (%d rows) vs %016x (%d rows)",
			r1.Digest, r1.Rows, r2.Digest, r2.Rows)
	}
	if len(r1.Events) != clients*faults {
		t.Fatalf("run 1 fired %d faults, planned %d", len(r1.Events), clients*faults)
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatalf("fault sequences diverge:\nrun1: %v\nrun2: %v", r1.Events, r2.Events)
	}
}

// TestClientBreakerAndGiveUp: with no server listening, the client walks
// dial failures through the breaker (open + half-open probes) and gives up
// at MaxFailures with the underlying cause preserved.
func TestClientBreakerAndGiveUp(t *testing.T) {
	testleak.Check(t)
	cl := New(Options{
		Addr: "127.0.0.1:1", RawDim: 4, Name: "breaker",
		DialTimeout:      100 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
		MaxFailures:      5,
	})
	err := cl.Submit(100, 200, []float64{1, 2, 3, 4})
	if err == nil {
		t.Fatal("Submit succeeded against a dead address")
	}
	st := cl.Stats()
	if st.DialFailures != 5 {
		t.Fatalf("%d dial failures, want 5 (MaxFailures)", st.DialFailures)
	}
	if st.BreakerOpens != 1 {
		t.Fatalf("breaker opened %d times, want 1", st.BreakerOpens)
	}
	if st.Dials != 0 || st.Verdicts != 0 {
		t.Fatalf("phantom progress: %+v", st)
	}
}

// TestClientHeartbeatKeepsIdleConnAlive: a client waiting on a slow verdict
// pings through the server's idle window instead of being reaped; the
// verdict still arrives on the original connection.
func TestClientHeartbeatKeepsIdleConnAlive(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	cfg := chaosServerConfig()
	cfg.IdleTimeout = 200 * time.Millisecond
	// A long linger holds the verdict back so the client sits idle-waiting
	// well past the server's idle window and must heartbeat to survive.
	cfg.Linger = 600 * time.Millisecond
	cfg.MaxBatch = 64
	srv := startServer(t, cfg)

	o := chaosClientOptions()
	o.Addr = srv.Addr()
	o.RawDim = len(samples[0].Raw)
	o.Name = "heartbeat"
	o.Heartbeat = 50 * time.Millisecond
	o.RequestTimeout = 5 * time.Second
	cl := New(o)
	s := &samples[0]
	if err := cl.Submit(s.Instructions, s.Cycles, s.Raw); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != 1 {
		t.Fatalf("%d verdicts, want 1", len(rep.Verdicts))
	}
	if rep.Stats.Pings == 0 {
		t.Fatal("client never heartbeated through the linger wait")
	}
	if rep.Stats.Reconnects != 0 {
		t.Fatalf("%d reconnects: the heartbeat failed to keep the conn alive", rep.Stats.Reconnects)
	}
	if got := srv.Metrics().Snapshot().IdleReaped; got != 0 {
		t.Fatalf("idle reaper fired %d times on a heartbeating client", got)
	}
}
