// Package client is the resilient serving client: the production dial loop
// extracted from evaxload's prototype and hardened for lossy networks. It
// layers four mechanisms over the bare serve.Client:
//
//   - per-request deadlines: every network wait is bounded, so a dead peer
//     costs at most RequestTimeout before recovery begins;
//   - deterministic retry with exponential backoff: reconnect pacing is
//     derived from runner.DeriveSeed(Name, ID, attempt), never from entropy,
//     so two runs of the same schedule reconnect on the same cadence;
//   - a circuit breaker: after BreakerThreshold consecutive connection
//     failures the client stops hammering the server, sleeps
//     BreakerCooldown, and sends a single half-open probe per cooldown;
//   - reconnect-with-resume: samples are sequence-numbered and retained
//     until their verdict arrives; after a reconnect the client re-attaches
//     to its server-side session and replays the unanswered tail in
//     sequence order. The server's dedup window absorbs replays — already
//     scored sequences are re-delivered from the verdict ring, in-flight
//     ones are marked for resend — so every accepted sample is scored
//     exactly once no matter how many times the connection dies.
//
// Heartbeats (ping/pong) keep an idle-but-healthy connection alive across
// the server's idle read deadline and double as a liveness probe: a
// connection that answers nothing for RequestTimeout is declared dead and
// replaced.
//
// The exactly-once contract requires the in-flight window (Options.Window)
// to stay at or below the session dedup window the server advertises in its
// FrameAck; the default is far below DefaultConfig().SessionWindow.
package client

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"evax/internal/runner"
	"evax/internal/serve"
)

// Options configures one resilient client.
type Options struct {
	// Addr is the server's host:port.
	Addr string
	// RawDim is the per-sample raw counter dimensionality.
	RawDim int
	// Name seeds deterministic backoff jitter (with ID and the attempt
	// number) via runner.DeriveSeed.
	Name string
	// ID distinguishes clients of one fleet in the seed derivation.
	ID int
	// DialTimeout bounds each TCP connect. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout is how long the oldest unanswered sample may wait
	// before the connection is declared dead and replaced. Default 2s.
	RequestTimeout time.Duration
	// Heartbeat is the idle interval after which a ping is sent while
	// waiting for verdicts. Must be below both RequestTimeout and the
	// server's idle read deadline. Default 500ms.
	Heartbeat time.Duration
	// BackoffBase and BackoffMax bound the exponential reconnect backoff.
	// Defaults 2ms and 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive connection-failure count that
	// opens the circuit breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is the sleep between half-open probes while the
	// breaker is open. Default 200ms.
	BreakerCooldown time.Duration
	// MaxFailures caps consecutive connection failures before the client
	// gives up; successful handshakes reset the count. Default 32.
	MaxFailures int
	// Window bounds the in-flight (unanswered) sample count; Submit blocks
	// on verdicts once it is reached. Must not exceed the server's session
	// dedup window or old replays draw RejectStale. Default 128.
	Window int
	// Interpose, when non-nil, wraps every freshly dialed conn before the
	// handshake — the hook netfault injectors plug into.
	Interpose func(net.Conn) net.Conn
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.Heartbeat > o.RequestTimeout {
		o.Heartbeat = o.RequestTimeout
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 200 * time.Millisecond
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 32
	}
	if o.Window <= 0 {
		o.Window = 128
	}
	return o
}

// Stats counts the resilience machinery's work over the client's lifetime.
type Stats struct {
	Submitted    uint64 // samples accepted by Submit
	Verdicts     uint64 // distinct sequences answered
	Dials        uint64 // successful connections (first + reconnects)
	Reconnects   uint64 // successful connections after the first
	DialFailures uint64 // failed dial/handshake attempts
	Retries      uint64 // sample frames re-sent (replays + overload resends)
	BreakerOpens uint64 // breaker open transitions
	Pings        uint64 // heartbeats sent
	Timeouts     uint64 // request-timeout expiries that forced a reconnect
	Overloads    uint64 // RejectOverload answers absorbed and retried
}

// Report is the final accounting Finish returns.
type Report struct {
	// Session is the server-side session id this client's samples flowed
	// through.
	Session uint64
	Stats   Stats
	// Conn is the server's closing per-connection stats frame; its
	// Session* fields are lifetime totals across every conn that carried
	// the session.
	Conn serve.ConnStats
	// Verdicts holds one verdict per submitted sample, in sequence order.
	Verdicts []serve.Verdict
	// Latencies holds each sample's submit-to-verdict round trip, sorted
	// ascending — under faults this includes every reconnect and replay a
	// sample survived, so its tail is the recovery latency.
	Latencies []time.Duration
}

// Percentile reads the p-quantile (0..1) from the sorted latency list.
func (r *Report) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	i := int(p * float64(len(r.Latencies)))
	if i >= len(r.Latencies) {
		i = len(r.Latencies) - 1
	}
	return r.Latencies[i]
}

// pending is a submitted sample retained until its verdict arrives.
type pending struct {
	h            serve.SampleHeader
	instructions uint64
	cycles       uint64
	raw          []float64
	at           time.Time // submit time, for end-to-end latency accounting
}

// Client streams samples to one server with exactly-once verdict
// accounting. Not safe for concurrent use: one goroutine owns the whole
// submit/finish lifecycle.
type Client struct {
	o       Options
	cl      *serve.Client // nil while disconnected
	session uint64
	seq     uint64
	instr   uint64
	pend    map[uint64]pending
	got     map[uint64]serve.Verdict
	lats    []time.Duration
	stats   Stats

	attempt     int // lifetime connection attempts, the jitter index
	fails       int // consecutive connection failures
	breakerOpen bool
	idle        time.Duration // accumulated silent heartbeat windows
	pingTok     uint64
	lastErr     error
	finished    bool
}

// New builds a client; no network activity happens until the first Submit.
func New(o Options) *Client {
	return &Client{
		o:    o.withDefaults(),
		pend: make(map[uint64]pending),
		got:  make(map[uint64]serve.Verdict),
	}
}

// Session returns the server-side session id, 0 before the first connect.
func (c *Client) Session() uint64 { return c.session }

// Stats returns a snapshot of the resilience counters.
func (c *Client) Stats() Stats { return c.stats }

var errFinished = errors.New("client: Finish already called")

// Submit streams one sample. The sequence number and instruction-timeline
// position are assigned internally (cumulative, in submission order). It
// blocks while the in-flight window is full, consuming verdicts; the raw
// slice is copied and may be reused by the caller.
func (c *Client) Submit(instructions, cycles uint64, raw []float64) error {
	if c.finished {
		return errFinished
	}
	p := pending{
		h:            serve.SampleHeader{Seq: c.seq, InstrStart: c.instr},
		instructions: instructions,
		cycles:       cycles,
		raw:          append([]float64(nil), raw...),
		at:           time.Now(),
	}
	c.pend[p.h.Seq] = p
	c.seq++
	c.instr += instructions
	c.stats.Submitted++
	for {
		fresh, err := c.ensureConn()
		if err != nil {
			return err
		}
		if fresh {
			break // the reconnect replay already sent p
		}
		if err := c.cl.Send(p.h, p.instructions, p.cycles, p.raw); err != nil {
			c.lastErr = err
			c.drop()
			continue
		}
		break
	}
	for len(c.pend) >= c.o.Window {
		if err := c.pump(); err != nil {
			return err
		}
	}
	return nil
}

// Finish waits for every outstanding verdict, closes the stream with the
// bye handshake and returns the final accounting. The client is unusable
// afterwards.
func (c *Client) Finish() (Report, error) {
	if c.finished {
		return Report{}, errFinished
	}
	for len(c.pend) > 0 {
		if err := c.pump(); err != nil {
			return Report{}, err
		}
	}
	var st serve.ConnStats
	for {
		if _, err := c.ensureConn(); err != nil {
			return Report{}, err
		}
		if err := c.cl.Bye(); err != nil {
			c.lastErr = err
			c.drop()
			continue
		}
		if err := c.cl.SetReadDeadline(time.Now().Add(c.o.RequestTimeout)); err != nil {
			c.lastErr = err
			c.drop()
			continue
		}
		s, _, _, err := c.cl.DrainStats()
		if err != nil {
			c.lastErr = err
			c.drop()
			continue
		}
		st = s
		break
	}
	c.cl.Close() //evaxlint:ignore droppederr the server already closed its side after the stats frame
	c.cl = nil
	c.finished = true
	verdicts := make([]serve.Verdict, 0, len(c.got))
	for _, v := range c.got {
		verdicts = append(verdicts, v)
	}
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].Seq < verdicts[j].Seq })
	sort.Slice(c.lats, func(i, j int) bool { return c.lats[i] < c.lats[j] })
	return Report{Session: c.session, Stats: c.stats, Conn: st, Verdicts: verdicts, Latencies: c.lats}, nil
}

// drop discards the current connection; the next ensureConn reconnects and
// replays.
func (c *Client) drop() {
	if c.cl == nil {
		return
	}
	c.cl.Close() //evaxlint:ignore droppederr the conn is already being abandoned as failed
	c.cl = nil
}

// ensureConn returns with a live, fully-replayed connection (fresh reports
// whether it had to reconnect) or the permanent error that made it give up.
func (c *Client) ensureConn() (fresh bool, err error) {
	for {
		if c.cl != nil {
			return fresh, nil
		}
		if c.fails >= c.o.MaxFailures {
			return false, fmt.Errorf("client %d: giving up after %d consecutive connection failures (last: %w)",
				c.o.ID, c.fails, c.lastErr)
		}
		switch {
		case c.fails >= c.o.BreakerThreshold:
			// Breaker open: one half-open probe per cooldown.
			if !c.breakerOpen {
				c.breakerOpen = true
				c.stats.BreakerOpens++
			}
			time.Sleep(c.o.BreakerCooldown)
		case c.attempt > 0:
			time.Sleep(c.backoff())
		}
		c.attempt++
		if err := c.connect(); err != nil {
			if permanent(err) {
				return false, err
			}
			c.lastErr = err
			c.fails++
			c.stats.DialFailures++
			continue
		}
		c.fails = 0
		c.breakerOpen = false
		c.stats.Dials++
		if c.stats.Dials > 1 {
			c.stats.Reconnects++
		}
		fresh = true
		if err := c.replay(); err != nil {
			c.lastErr = err
			c.drop()
			continue
		}
		return fresh, nil
	}
}

// backoff is the deterministic reconnect delay: exponential in the
// consecutive-failure count, jittered into [d/2, d) by a seed derived from
// (Name, ID, attempt) — no entropy, so a replayed schedule reconnects on an
// identical cadence.
func (c *Client) backoff() time.Duration {
	d := c.o.BackoffBase
	for i := 0; i < c.fails && d < c.o.BackoffMax; i++ {
		d *= 2
	}
	if d > c.o.BackoffMax {
		d = c.o.BackoffMax
	}
	seed := runner.DeriveSeed(c.o.Name, c.o.ID, int64(c.attempt))
	jit := time.Duration(uint64(seed) % uint64(d))
	return (d + jit) / 2
}

// connect dials, interposes, and runs the session handshake: session 0
// creates the server-side session, later attempts re-attach to it.
func (c *Client) connect() error {
	nc, err := net.DialTimeout("tcp", c.o.Addr, c.o.DialTimeout)
	if err != nil {
		return err
	}
	if c.o.Interpose != nil {
		nc = c.o.Interpose(nc)
	}
	cl := serve.WrapConn(nc)
	ack, err := cl.Resume(c.o.RawDim, c.session)
	if err != nil {
		cl.Close() //evaxlint:ignore droppederr the handshake already failed; the close error would mask it
		return err
	}
	c.session = ack.Session
	c.cl = cl
	return nil
}

// permanent reports whether the handshake was refused by the server (bad
// version, bad dim, unknown session) — retrying cannot heal these. The
// match is on serve.Client's refusal wrapping, not the bare "refused", so
// TCP's "connection refused" stays retryable.
func permanent(err error) bool {
	return err != nil && strings.Contains(err.Error(), "server refused")
}

// replay re-sends every unanswered sample in sequence order on the fresh
// connection. The server's dedup window makes this idempotent: scored
// sequences are answered from the verdict ring without re-scoring.
func (c *Client) replay() error {
	if len(c.pend) == 0 {
		return nil
	}
	seqs := make([]uint64, 0, len(c.pend))
	for s := range c.pend {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		p := c.pend[s]
		if err := c.cl.Send(p.h, p.instructions, p.cycles, p.raw); err != nil {
			return err
		}
		c.stats.Retries++
	}
	return nil
}

// pump consumes server frames until one outstanding verdict is recorded,
// reconnecting (and replaying) through any failure on the way. Heartbeat
// pings go out after each silent Heartbeat window; RequestTimeout of total
// silence declares the connection dead.
func (c *Client) pump() error {
	for {
		if _, err := c.ensureConn(); err != nil {
			return err
		}
		if err := c.cl.SetReadDeadline(time.Now().Add(c.o.Heartbeat)); err != nil {
			c.lastErr = err
			c.drop()
			continue
		}
		fr, err := c.cl.Recv()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// An idle window elapsed. A timeout mid-frame would leave
				// the reader desynced, but server frames are written as
				// whole flushes, so silence means a frame boundary; if a
				// tear does slip through, the decode checks below reject
				// the garbage and the reconnect replay recovers.
				c.idle += c.o.Heartbeat
				if c.idle >= c.o.RequestTimeout {
					c.idle = 0
					c.stats.Timeouts++
					c.lastErr = fmt.Errorf("client: no answer within %v", c.o.RequestTimeout)
					c.drop()
					continue
				}
				c.pingTok++
				if perr := c.cl.Ping(c.pingTok); perr != nil {
					c.lastErr = perr
					c.drop()
					continue
				}
				c.stats.Pings++
				continue
			}
			c.lastErr = err
			c.drop()
			continue
		}
		c.idle = 0
		switch fr.Type {
		case serve.FrameVerdict:
			v, derr := serve.DecodeVerdict(fr.Payload)
			if derr != nil {
				c.lastErr = derr
				c.drop()
				continue
			}
			p, ok := c.pend[v.Seq]
			if !ok {
				continue // duplicate re-delivery of an already-recorded verdict
			}
			delete(c.pend, v.Seq)
			c.got[v.Seq] = v
			c.lats = append(c.lats, time.Since(p.at))
			c.stats.Verdicts++
			return nil
		case serve.FramePong:
			continue // liveness confirmed
		case serve.FrameReject:
			r, derr := serve.DecodeReject(fr.Payload)
			if derr != nil {
				c.lastErr = derr
				c.drop()
				continue
			}
			if r.Code == serve.RejectOverload {
				// Admission control bounced it; the server rolled the
				// dedup slot back, so a paced resend is admitted fresh.
				c.stats.Overloads++
				p, ok := c.pend[r.Seq]
				if !ok {
					continue
				}
				time.Sleep(c.o.BackoffBase)
				if serr := c.cl.Send(p.h, p.instructions, p.cycles, p.raw); serr != nil {
					c.lastErr = serr
					c.drop()
					continue
				}
				c.stats.Retries++
				continue
			}
			return fmt.Errorf("client: server rejected seq %d (code %d): %s", r.Seq, r.Code, r.Msg)
		case serve.FrameDrain:
			continue // drain notice: in-flight verdicts still arrive
		case serve.FrameStats:
			// The server finished this conn (drain complete); anything
			// still pending moves to a fresh conn via resume.
			c.drop()
			continue
		case serve.FrameError:
			return fmt.Errorf("client: server error: %s", fr.Payload)
		default:
			// Unknown frame: treat as stream desync and resynchronize
			// through a reconnect.
			c.lastErr = fmt.Errorf("client: unexpected frame type 0x%02x", fr.Type)
			c.drop()
			continue
		}
	}
}
