package client

import (
	"fmt"
	"sort"
	"time"

	"evax/internal/engine"
	"evax/internal/netfault"
	"evax/internal/runner"
)

// Sample is one workload row a chaos client streams: the raw counter vector
// plus the instruction/cycle telemetry positioning it on the timeline.
type Sample struct {
	Instructions uint64
	Cycles       uint64
	Raw          []float64
}

// ChaosConfig drives one chaos run: a fleet of resilient clients streaming
// their workloads through deterministically fault-injected connections.
type ChaosConfig struct {
	// Addr is the server under test.
	Addr string
	// RawDim is the raw counter dimensionality of every sample.
	RawDim int
	// Name seeds the fault plan and the clients' backoff jitter; the same
	// name (with the same fleet shape) reproduces the same fault sequence
	// bit-for-bit.
	Name string
	// FaultsPerClient is how many consecutive connection attempts of each
	// client suffer an injected fault before the plan exhausts and
	// connections run clean. Zero runs the fleet fault-free — the baseline
	// a chaos digest is compared against.
	FaultsPerClient int
	// Stall is the pause OpStallWrite faults hold before severing.
	Stall time.Duration
	// Options is the per-client template; Addr, RawDim, Name, ID and
	// Interpose are overridden per client.
	Options Options
}

// ChaosReport aggregates a chaos run: per-client reports, the canonical
// merged digest, and the faults that actually fired.
type ChaosReport struct {
	// Reports holds each client's final accounting, indexed by client id.
	Reports []Report
	// Digest folds every verdict in canonical (client, seq) order — the
	// invariant: equal to the fault-free run's digest bit-for-bit.
	Digest uint64
	// Rows and Flagged are the folded verdict count and flag count.
	Rows    int
	Flagged int
	// Events are the injected faults in canonical (client, attempt) order.
	Events []netfault.Event
	// LatencyP50Ms / LatencyP99Ms are fleet-wide submit-to-verdict round
	// trips; under faults the p99 is the recovery latency — reconnect,
	// resume, replay, re-deliver.
	LatencyP50Ms float64
	LatencyP99Ms float64
}

// Totals sums a stat across the fleet via the supplied accessor.
func (r *ChaosReport) Totals(f func(Stats) uint64) uint64 {
	var n uint64
	for i := range r.Reports {
		n += f(r.Reports[i].Stats)
	}
	return n
}

// RunChaos streams work[i] through resilient client i — each wrapped by the
// fault plan derived from cfg.Name — and merges the fleet's verdicts into
// the canonical digest. Every client must finish with exactly one verdict
// per submitted sample or the run errors.
func RunChaos(cfg ChaosConfig, work [][]Sample) (*ChaosReport, error) {
	clients := len(work)
	if clients == 0 {
		return nil, fmt.Errorf("client: chaos run with no work")
	}
	sched := netfault.Plan(cfg.Name, clients, cfg.FaultsPerClient, cfg.Stall)
	reports, err := runner.MapErr(runner.Options{Jobs: clients}, clients, func(i int) (Report, error) {
		o := cfg.Options
		o.Addr = cfg.Addr
		o.RawDim = cfg.RawDim
		o.Name = cfg.Name
		o.ID = i
		o.Interpose = sched.Client(i).Wrap
		cl := New(o)
		for _, s := range work[i] {
			if err := cl.Submit(s.Instructions, s.Cycles, s.Raw); err != nil {
				return Report{}, fmt.Errorf("chaos client %d: %w", i, err)
			}
		}
		rep, err := cl.Finish()
		if err != nil {
			return Report{}, fmt.Errorf("chaos client %d: %w", i, err)
		}
		if len(rep.Verdicts) != len(work[i]) {
			return Report{}, fmt.Errorf("chaos client %d: %d verdicts for %d samples",
				i, len(rep.Verdicts), len(work[i]))
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	d := engine.NewDigest()
	var lats []time.Duration
	for i := range reports {
		for _, v := range reports[i].Verdicts {
			d.Add(v.Score, v.Flagged())
		}
		lats = append(lats, reports[i].Latencies...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep := &ChaosReport{
		Reports: reports,
		Digest:  d.Sum(),
		Rows:    d.Rows(),
		Flagged: d.Flagged(),
		Events:  sched.Events.Sorted(),
	}
	if len(lats) > 0 {
		rep.LatencyP50Ms = float64(lats[int(0.50*float64(len(lats)))]) / 1e6
		i99 := int(0.99 * float64(len(lats)))
		if i99 >= len(lats) {
			i99 = len(lats) - 1
		}
		rep.LatencyP99Ms = float64(lats[i99]) / 1e6
	}
	return rep, nil
}
