package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"evax/internal/attacks"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/engine"
	"evax/internal/sim"
	"evax/internal/testleak"
	"evax/internal/workload"
)

// testScorer resolves a private scoring handle the way the serving path does
// since the generation refactor: through an engine generation.
func testScorer(t *testing.T, det *detect.Detector, ds *dataset.Dataset, rawDim int, backend string) *engine.Scorer {
	t.Helper()
	g, err := engine.New(det, ds, backend)
	if err != nil {
		t.Fatal(err)
	}
	if g.RawDim() != rawDim {
		t.Fatalf("generation scores %d raw counters, corpus streams %d", g.RawDim(), rawDim)
	}
	return g.NewScorer()
}

// The test lab: one trained detector + normalizer + corpus, built once and
// shared by every serving test (training dominates test wall-clock).
var (
	labOnce    sync.Once
	labDet     *detect.Detector
	labDS      *dataset.Dataset
	labSamples []dataset.Sample
)

func lab(t *testing.T) (*detect.Detector, *dataset.Dataset, []dataset.Sample) {
	t.Helper()
	labOnce.Do(func() {
		var samples []dataset.Sample
		cfg := sim.DefaultConfig()
		for _, w := range workload.All()[:4] {
			samples = append(samples, dataset.Collect(cfg, w.Build(1, 8), 2000, 150_000)...)
		}
		for _, a := range attacks.All()[:6] {
			samples = append(samples, dataset.Collect(cfg, a.Build(11, 60), 2000, 150_000)...)
		}
		ds := dataset.New(samples)
		fs := detect.EVAXBase()
		fs.SetEngineered(detect.DefaultEngineered(fs))
		d := detect.NewPerceptron(1, fs)
		idx := make([]int, len(ds.Samples))
		for i := range idx {
			idx[i] = i
		}
		d.Train(ds, idx, detect.DefaultTrainOptions())
		var benign []float64
		for i := range ds.Samples {
			if !ds.Samples[i].Malicious {
				benign = append(benign, d.Score(ds.Samples[i].Derived))
			}
		}
		d.TuneThresholdForFPR(benign, 0.02)
		labDet, labDS, labSamples = d, ds, ds.Samples
	})
	if len(labSamples) < 200 {
		t.Fatalf("lab corpus too small for the serving tests: %d samples", len(labSamples))
	}
	return labDet, labDS, labSamples
}

// startServer boots an in-process server and registers its drain as cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	det, ds, samples := lab(t)
	srv, err := New(det, ds, len(samples[0].Raw), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if _, err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv
}

// offlineVerdicts computes the reference verdicts for one connection's
// stream: scores through the offline pipeline and flag-window state applied
// sequentially, exactly the contract the server must reproduce.
func offlineVerdicts(t *testing.T, samples []dataset.Sample, secureWindow uint64) []Verdict {
	t.Helper()
	det, ds, _ := lab(t)
	sc := testScorer(t, det, ds, len(samples[0].Raw), "")
	out := make([]Verdict, len(samples))
	var instrStart, secureUntil uint64
	for i := range samples {
		s := &samples[i]
		score := sc.Score(s.Raw, s.Instructions, s.Cycles)
		windowEnd := instrStart + s.Instructions
		var flags uint8
		if score >= sc.Threshold() {
			flags |= VerdictFlagged
			secureUntil = windowEnd + secureWindow
		}
		if flags&VerdictFlagged != 0 || windowEnd < secureUntil {
			flags |= VerdictSecure
		}
		out[i] = Verdict{Seq: uint64(i), Score: score, Flags: flags}
		instrStart = windowEnd
	}
	return out
}

// streamAll sends samples over one connection (accumulating the instruction
// timeline), says bye, and returns everything the server answered.
func streamAll(t *testing.T, addr string, samples []dataset.Sample) (ConnStats, []Verdict, []Reject) {
	t.Helper()
	cl, err := Dial(addr, len(samples[0].Raw))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var instrStart uint64
	for i := range samples {
		s := &samples[i]
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		instrStart += s.Instructions
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	stats, verdicts, rejects, err := cl.DrainStats()
	if err != nil {
		t.Fatal(err)
	}
	return stats, verdicts, rejects
}

// TestServeBitIdenticalToOffline is acceptance criterion (a): four concurrent
// connections stream distinct slices of the corpus, and every verdict —
// score bits, flag bit, secure bit — must equal the offline pipeline's.
func TestServeBitIdenticalToOffline(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.MaxBatch = 8
	cfg.Linger = time.Millisecond
	srv := startServer(t, cfg)

	const conns = 4
	chunk := len(samples) / conns
	if chunk == 0 {
		t.Fatalf("corpus too small: %d samples", len(samples))
	}
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			part := samples[ci*chunk : (ci+1)*chunk]
			stats, verdicts, rejects, err := func() (st ConnStats, vs []Verdict, rj []Reject, err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("panic: %v", r)
					}
				}()
				cl, err := Dial(srv.Addr(), len(part[0].Raw))
				if err != nil {
					return st, nil, nil, err
				}
				defer cl.Close()
				var instrStart uint64
				for i := range part {
					s := &part[i]
					if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
						return st, nil, nil, fmt.Errorf("send %d: %w", i, err)
					}
					instrStart += s.Instructions
				}
				if err := cl.Bye(); err != nil {
					return st, nil, nil, err
				}
				st, vs, rj, err = cl.DrainStats()
				return st, vs, rj, err
			}()
			if err != nil {
				errs[ci] = err
				return
			}
			if len(rejects) != 0 {
				errs[ci] = fmt.Errorf("conn %d: %d rejects on an unloaded server", ci, len(rejects))
				return
			}
			if stats.Accepted != uint64(len(part)) || stats.Scored != uint64(len(part)) {
				errs[ci] = fmt.Errorf("conn %d: accepted=%d scored=%d, sent %d", ci, stats.Accepted, stats.Scored, len(part))
				return
			}
			want := offlineVerdicts(t, part, cfg.SecureWindow)
			if len(verdicts) != len(want) {
				errs[ci] = fmt.Errorf("conn %d: %d verdicts, want %d", ci, len(verdicts), len(want))
				return
			}
			for i := range want {
				got := verdicts[i]
				if got.Seq != want[i].Seq {
					errs[ci] = fmt.Errorf("conn %d verdict %d: seq %d, want %d (ordering broken)", ci, i, got.Seq, want[i].Seq)
					return
				}
				if math.Float64bits(got.Score) != math.Float64bits(want[i].Score) {
					errs[ci] = fmt.Errorf("conn %d seq %d: online score %x != offline %x",
						ci, got.Seq, math.Float64bits(got.Score), math.Float64bits(want[i].Score))
					return
				}
				if got.Flags != want[i].Flags {
					errs[ci] = fmt.Errorf("conn %d seq %d: flags %02x, want %02x", ci, got.Seq, got.Flags, want[i].Flags)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", ci, err)
		}
	}
	// Sanity: the corpus must exercise both flag outcomes or the test is vacuous.
	want := offlineVerdicts(t, samples[:conns*chunk], cfg.SecureWindow)
	flagged := 0
	for _, v := range want {
		if v.Flagged() {
			flagged++
		}
	}
	if flagged == 0 || flagged == len(want) {
		t.Fatalf("degenerate corpus: %d/%d flagged", flagged, len(want))
	}
}

// TestAdmissionControlRejects is acceptance criterion (c): with the batcher
// deliberately stalled, offered load beyond the queue bound is rejected with
// overload frames — never buffered — and every accepted sample still gets
// its verdict once the batcher resumes.
func TestAdmissionControlRejects(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	gate := make(chan struct{})
	cfg := DefaultConfig()
	cfg.MaxBatch = 4
	cfg.QueueBound = 4
	cfg.Linger = 5 * time.Millisecond
	cfg.flushPause = func() { <-gate }
	srv := startServer(t, cfg)

	const total = 100
	cl, err := Dial(srv.Addr(), len(samples[0].Raw))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type recvOut struct {
		stats    ConnStats
		verdicts []Verdict
		rejects  []Reject
		err      error
	}
	done := make(chan recvOut, 1)
	go func() {
		st, vs, rj, err := cl.DrainStats()
		done <- recvOut{st, vs, rj, err}
	}()

	var instrStart uint64
	for i := 0; i < total; i++ {
		s := &samples[i%len(samples)]
		if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		instrStart += s.Instructions
	}
	close(gate) // release the batcher; everything accepted now flushes
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}

	// The queue bound caps what could possibly be in flight while the
	// batcher was stalled: one full batch being flushed plus a full queue.
	bound := uint64(cfg.QueueBound + cfg.MaxBatch)
	if out.stats.Accepted > bound {
		t.Fatalf("accepted %d samples with a stalled batcher; bound is %d — queue is not bounded",
			out.stats.Accepted, bound)
	}
	if out.stats.Rejected == 0 || len(out.rejects) == 0 {
		t.Fatal("no rejects: admission control never engaged")
	}
	if got := out.stats.Accepted + out.stats.Rejected; got != total {
		t.Fatalf("accepted %d + rejected %d != sent %d", out.stats.Accepted, out.stats.Rejected, total)
	}
	for _, r := range out.rejects {
		if r.Code != RejectOverload {
			t.Fatalf("reject seq %d carries code %d, want overload (%d)", r.Seq, r.Code, RejectOverload)
		}
	}
	// Zero loss among the accepted: every one has its verdict.
	if uint64(len(out.verdicts)) != out.stats.Accepted || out.stats.Scored != out.stats.Accepted {
		t.Fatalf("accepted %d but delivered %d verdicts (scored %d)",
			out.stats.Accepted, len(out.verdicts), out.stats.Scored)
	}
	snap := srv.Metrics().Snapshot()
	if snap.RejectedLoad == 0 {
		t.Fatal("metrics did not count overload rejects")
	}
}

// TestKillAndDrainLosesNothing is acceptance criterion (b): Drain fires while
// four connections are mid-stream, and every sample the server accepted must
// still receive its verdict before the connection closes.
func TestKillAndDrainLosesNothing(t *testing.T) {
	testleak.Check(t)
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	cfg.Shards = 2
	srv := startServer(t, cfg)

	const conns = 4
	type result struct {
		stats    ConnStats
		verdicts []Verdict
		err      error
	}
	results := make([]result, conns)
	dialed := make(chan struct{}, conns)
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr(), len(samples[0].Raw))
			dialed <- struct{}{}
			if err != nil {
				results[ci].err = err
				return
			}
			defer cl.Close()
			done := make(chan struct{})
			go func() {
				defer close(done)
				st, vs, _, err := cl.DrainStats()
				results[ci].stats, results[ci].verdicts = st, vs
				if err != nil {
					results[ci].err = err
				}
			}()
			// Stream until the drain kills the connection; send errors are
			// the expected end.
			var instrStart uint64
			for i := 0; ; i++ {
				s := &samples[(ci+i)%len(samples)]
				if err := cl.Send(SampleHeader{Seq: uint64(i), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
					break
				}
				instrStart += s.Instructions
			}
			<-done
		}(ci)
	}

	// Every handshake must complete before the plug is pulled: a fast pair
	// of connections can push Accepted past the gate while a slower dial is
	// still mid-hello, and draining then refuses that handshake.
	for i := 0; i < conns; i++ {
		<-dialed
	}
	// Let real load accumulate, then pull the plug mid-stream.
	for srv.Metrics().Snapshot().Accepted < 500 {
		time.Sleep(time.Millisecond)
	}
	snap, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var clientVerdicts uint64
	for ci := range results {
		r := results[ci]
		if r.err != nil {
			t.Fatalf("client %d: %v (after %d verdicts)", ci, r.err, len(r.verdicts))
		}
		// The drain contract, per connection: everything accepted was
		// scored and its verdict delivered before the stats frame.
		if r.stats.Scored != r.stats.Accepted {
			t.Errorf("client %d: accepted %d but scored %d", ci, r.stats.Accepted, r.stats.Scored)
		}
		if uint64(len(r.verdicts)) != r.stats.Accepted {
			t.Errorf("client %d: accepted %d but received %d verdicts — %d accepted frames lost",
				ci, r.stats.Accepted, len(r.verdicts), int64(r.stats.Accepted)-int64(len(r.verdicts)))
		}
	}
	for _, r := range results {
		clientVerdicts += uint64(len(r.verdicts))
	}
	if snap.Scored != snap.Accepted {
		t.Errorf("server accepted %d but scored %d", snap.Accepted, snap.Scored)
	}
	if clientVerdicts != snap.Accepted {
		t.Errorf("server accepted %d, clients received %d verdicts", snap.Accepted, clientVerdicts)
	}
	if snap.Accepted < 500 {
		t.Errorf("drain fired with only %d accepted samples; load generator underran", snap.Accepted)
	}

	// After drain: new connections are refused at the handshake.
	if _, err := Dial(srv.Addr(), len(samples[0].Raw)); err == nil {
		t.Error("dial succeeded after drain")
	}
	// Drain is idempotent.
	again, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if again.Accepted != snap.Accepted {
		t.Errorf("second drain snapshot diverges: %d vs %d", again.Accepted, snap.Accepted)
	}
}

// TestHelloValidation: bad handshakes are refused with an error frame.
func TestHelloValidation(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())

	// Wrong dimensionality.
	if _, err := Dial(srv.Addr(), len(samples[0].Raw)+3); err == nil || !strings.Contains(err.Error(), "counters") {
		t.Fatalf("wrong-width hello: %v", err)
	}
	// Good handshake still works afterwards.
	cl, err := Dial(srv.Addr(), len(samples[0].Raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.DrainStats(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
}

// TestMalformedSampleRejected: a corrupt sample payload draws a reject
// frame, not a dropped connection and not a panic.
func TestMalformedSampleRejected(t *testing.T) {
	_, _, samples := lab(t)
	srv := startServer(t, DefaultConfig())
	cl, err := Dial(srv.Addr(), len(samples[0].Raw))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A sample frame with a short payload: seq readable, row truncated.
	bad := AppendFrame(nil, FrameSample, []byte{9, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})
	if err := cl.writeFrame(bad); err != nil {
		t.Fatal(err)
	}
	// A good sample after the bad one must still score.
	s := &samples[0]
	if err := cl.Send(SampleHeader{Seq: 10, InstrStart: 0}, s.Instructions, s.Cycles, s.Raw); err != nil {
		t.Fatal(err)
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
	stats, verdicts, rejects, err := cl.DrainStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rejects) != 1 || rejects[0].Code != RejectMalformed || rejects[0].Seq != 9 {
		t.Fatalf("rejects = %+v, want one malformed reject for seq 9", rejects)
	}
	if len(verdicts) != 1 || verdicts[0].Seq != 10 {
		t.Fatalf("verdicts = %+v, want one verdict for seq 10", verdicts)
	}
	if stats.Accepted != 1 || stats.Rejected != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestHTTPEndpoints covers the localhost JSON fallback: /healthz, /metrics,
// and /score agreeing bit-for-bit with the offline pipeline.
func TestHTTPEndpoints(t *testing.T) {
	det, ds, samples := lab(t)
	cfg := DefaultConfig()
	cfg.HTTPAddr = "127.0.0.1:0"
	srv := startServer(t, cfg)
	base := "http://" + srv.HTTPAddr()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Score one sample over HTTP and compare to the offline path.
	sc := testScorer(t, det, ds, len(samples[0].Raw), "")
	s := &samples[7]
	body, _ := json.Marshal(map[string]any{
		"raw": s.Raw, "instructions": s.Instructions, "cycles": s.Cycles,
	})
	resp, err = http.Post(base+"/score", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Score     float64 `json:"score"`
		Threshold float64 `json:"threshold"`
		Flagged   bool    `json:"flagged"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := sc.Score(s.Raw, s.Instructions, s.Cycles)
	if math.Float64bits(got.Score) != math.Float64bits(want) {
		t.Fatalf("http score %x != offline %x", math.Float64bits(got.Score), math.Float64bits(want))
	}
	if got.Flagged != (want >= sc.Threshold()) {
		t.Fatal("http flag disagrees with threshold")
	}

	// Metrics snapshot reflects the scored sample.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Scored == 0 {
		t.Fatal("metrics report zero scored after a /score call")
	}

	// Bad requests are 4xx, not panics.
	resp, err = http.Post(base+"/score", "application/json", strings.NewReader(`{"raw":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-width /score: %d", resp.StatusCode)
	}
	// pprof is wired.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof: %d", resp.StatusCode)
	}
}

// TestStatsPathWrittenOnDrain: the final snapshot lands crash-safely at
// Config.StatsPath.
func TestStatsPathWrittenOnDrain(t *testing.T) {
	_, _, samples := lab(t)
	cfg := DefaultConfig()
	cfg.StatsPath = t.TempDir() + "/final.json"
	srv := startServer(t, cfg)

	stats, _, _ := streamAll(t, srv.Addr(), samples[:25])
	if stats.Scored != 25 {
		t.Fatalf("scored %d, want 25", stats.Scored)
	}
	snap, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scored != 25 {
		t.Fatalf("snapshot scored %d, want 25", snap.Scored)
	}
	var onDisk Snapshot
	data, err := os.ReadFile(cfg.StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Scored != snap.Scored || onDisk.Accepted != snap.Accepted {
		t.Fatalf("on-disk snapshot %+v diverges from drain result %+v", onDisk, snap)
	}
	if len(onDisk.BatchOccupancy) != cfg.MaxBatch+1 {
		t.Fatalf("occupancy histogram sized %d, want %d", len(onDisk.BatchOccupancy), cfg.MaxBatch+1)
	}
}
