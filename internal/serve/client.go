package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client speaks the framing protocol from the client side. It is used by the
// evaxload harness and the integration tests; it is not safe for concurrent
// use of the same side (one goroutine may send while another receives).
type Client struct {
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
}

// Dial connects to a server and completes the hello exchange for a
// rawDim-counter stream.
func Dial(addr string, rawDim int) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	if err := c.writeFrame(AppendHello(c.buf[:0], Hello{Version: ProtocolVersion, RawDim: uint32(rawDim)})); err != nil {
		//evaxlint:ignore droppederr the dial already failed; the close error would mask the handshake error
		nc.Close()
		return nil, fmt.Errorf("serve: sending hello: %w", err)
	}
	fr, err := c.Recv()
	if err != nil {
		//evaxlint:ignore droppederr the dial already failed; the close error would mask the handshake error
		nc.Close()
		return nil, fmt.Errorf("serve: reading hello echo: %w", err)
	}
	if fr.Type == FrameError {
		//evaxlint:ignore droppederr the server refused the handshake; its error frame is the failure to report
		nc.Close()
		return nil, fmt.Errorf("serve: server refused hello: %s", fr.Payload)
	}
	if fr.Type != FrameHello {
		//evaxlint:ignore droppederr the handshake already failed; the close error would mask the protocol error
		nc.Close()
		return nil, fmt.Errorf("serve: expected hello echo, got frame type 0x%02x", fr.Type)
	}
	return c, nil
}

// WrapConn builds a Client over an already-dialed conn without any handshake
// — the hook chaos harnesses use to interpose a fault-injecting conn between
// dial and handshake. The caller runs Hello or Resume itself.
func WrapConn(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Resume runs the session handshake on a fresh conn: session 0 creates a new
// session, a prior ack's session id re-attaches to it. Returns the server's
// ack (session id, dedup window, highest admitted seq).
func (c *Client) Resume(rawDim int, session uint64) (Ack, error) {
	r := Resume{Version: ProtocolVersion, RawDim: uint32(rawDim), Session: session}
	if err := c.writeFrame(AppendResume(c.buf[:0], r)); err != nil {
		return Ack{}, fmt.Errorf("serve: sending resume: %w", err)
	}
	fr, err := c.Recv()
	if err != nil {
		return Ack{}, fmt.Errorf("serve: reading resume ack: %w", err)
	}
	switch fr.Type {
	case FrameAck:
		return DecodeAck(fr.Payload)
	case FrameError:
		return Ack{}, fmt.Errorf("serve: server refused resume: %s", fr.Payload)
	default:
		return Ack{}, fmt.Errorf("serve: expected ack, got frame type 0x%02x", fr.Type)
	}
}

// DialResume connects and opens (session == 0) or resumes a session-backed
// stream.
func DialResume(addr string, rawDim int, session uint64) (*Client, Ack, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, Ack{}, err
	}
	c := WrapConn(nc)
	ack, err := c.Resume(rawDim, session)
	if err != nil {
		//evaxlint:ignore droppederr the handshake already failed; the close error would mask it
		nc.Close()
		return nil, Ack{}, err
	}
	return c, ack, nil
}

// Ping sends a liveness probe; the server answers with a pong carrying the
// same token and resets its idle deadline for this conn.
func (c *Client) Ping(token uint64) error {
	return c.writeFrame(AppendPing(c.buf[:0], token))
}

// CloseWrite half-closes the connection (TCP FIN on the write side) while
// keeping the read side open: the server sees EOF, flushes everything in
// flight, and its verdicts/stats still flow back. Falls back to a full close
// when the transport cannot half-close.
func (c *Client) CloseWrite() error {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.nc.(closeWriter); ok {
		return cw.CloseWrite()
	}
	return c.nc.Close()
}

// SetReadDeadline bounds the next Recv, for callers implementing their own
// liveness detection.
func (c *Client) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// writeFrame writes one pre-encoded frame and flushes, keeping the buffer for
// reuse.
func (c *Client) writeFrame(frame []byte) error {
	c.buf = frame[:0]
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Send streams one sample frame.
func (c *Client) Send(h SampleHeader, instructions, cycles uint64, raw []float64) error {
	return c.writeFrame(AppendSample(c.buf[:0], h, instructions, cycles, raw))
}

// Bye announces the client is done sending; the server will flush, answer
// everything in flight, send stats and close.
func (c *Client) Bye() error {
	return c.writeFrame(AppendFrame(c.buf[:0], FrameBye, nil))
}

// Recv reads the next server frame.
func (c *Client) Recv() (Frame, error) {
	return ReadFrame(c.br)
}

// DrainStats receives frames until the connection's FrameStats arrives,
// returning it along with every verdict and reject seen on the way.
func (c *Client) DrainStats() (ConnStats, []Verdict, []Reject, error) {
	var (
		verdicts []Verdict
		rejects  []Reject
	)
	for {
		fr, err := c.Recv()
		if err != nil {
			return ConnStats{}, verdicts, rejects, err
		}
		switch fr.Type {
		case FrameVerdict:
			v, err := DecodeVerdict(fr.Payload)
			if err != nil {
				return ConnStats{}, verdicts, rejects, err
			}
			verdicts = append(verdicts, v)
		case FrameReject:
			r, err := DecodeReject(fr.Payload)
			if err != nil {
				return ConnStats{}, verdicts, rejects, err
			}
			rejects = append(rejects, r)
		case FrameStats:
			var st ConnStats
			if err := json.Unmarshal(fr.Payload, &st); err != nil {
				return ConnStats{}, verdicts, rejects, err
			}
			return st, verdicts, rejects, nil
		case FrameDrain:
			// Informational: the server is draining; stats still follow.
		case FramePong:
			// A late heartbeat answer; irrelevant once draining.
		case FrameError:
			return ConnStats{}, verdicts, rejects, fmt.Errorf("serve: server error: %s", fr.Payload)
		default:
			return ConnStats{}, verdicts, rejects, fmt.Errorf("serve: unexpected frame type 0x%02x", fr.Type)
		}
	}
}

// Close tears the connection down without the bye handshake.
func (c *Client) Close() error { return c.nc.Close() }
