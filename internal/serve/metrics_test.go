package serve

import (
	"testing"
	"time"
)

// Every nanosecond value must land in exactly one bucket whose bounds
// contain it, and bucket indices must be monotone in the value.
func TestLatencyBucketInvariants(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 999,
		1_000, 8_191, 8_192, 1_000_000, 8_390_000, 8_500_000, 9_000_000,
		1_000_000_000, 30_000_000_000, 1 << 40} {
		b := latencyBucket(time.Duration(ns))
		if b < 0 || b >= latencyBuckets {
			t.Fatalf("%d ns: bucket %d out of range", ns, b)
		}
		if b < prev {
			t.Fatalf("%d ns: bucket %d below previous %d — not monotone", ns, b, prev)
		}
		prev = b
		if up := bucketUpperNs(b); b < latencyBuckets-1 && float64(ns) >= up {
			t.Fatalf("%d ns: above its bucket %d upper bound %v", ns, b, up)
		}
		if b > 0 {
			if low := bucketUpperNs(b - 1); float64(ns) < low && b < latencyBuckets-1 {
				t.Fatalf("%d ns: below bucket %d lower bound %v", ns, b, low)
			}
		}
	}
	// Upper bounds must be strictly increasing — percentile estimation
	// walks them in order.
	for i := 1; i < latencyBuckets; i++ {
		if bucketUpperNs(i) <= bucketUpperNs(i-1) {
			t.Fatalf("bucket %d upper %v <= bucket %d upper %v",
				i, bucketUpperNs(i), i-1, bucketUpperNs(i-1))
		}
	}
}

// The log-linear buckets bound relative quantization error at one sub-bucket
// width (~6%): values near 8.4 ms must not report an upper bound a power of
// two away.
func TestLatencyBucketResolution(t *testing.T) {
	for _, ns := range []int64{100_000, 1_000_000, 8_390_000, 100_000_000} {
		up := bucketUpperNs(latencyBucket(time.Duration(ns)))
		if rel := (up - float64(ns)) / float64(ns); rel > 0.07 {
			t.Errorf("%d ns reports %v ns — %.1f%% over, want ≤ 7%%", ns, up, rel*100)
		}
	}
}

// A latency population spread within one power-of-two octave must yield
// distinct p50/p95 — the regression the log-linear histogram fixes (the old
// power-of-two buckets reported p50 == p95 == p99 for any sub-16ms service).
func TestPercentilesSeparateWithinOctave(t *testing.T) {
	var hist [latencyBuckets]uint64
	// 95 samples at ~8.1 ms, 5 at ~15.8 ms: same 2^23 octave.
	for i := 0; i < 95; i++ {
		hist[latencyBucket(8_100_000*time.Nanosecond)]++
	}
	for i := 0; i < 5; i++ {
		hist[latencyBucket(15_800_000*time.Nanosecond)]++
	}
	p50 := percentileMs(hist, 0.50)
	p99 := percentileMs(hist, 0.99)
	if p50 >= p99 {
		t.Fatalf("p50 %v >= p99 %v: octave-internal spread collapsed", p50, p99)
	}
	if p50 > 9 || p50 < 8 {
		t.Errorf("p50 = %v ms, want ≈ 8.1 ms at sub-ms resolution", p50)
	}
	if p99 > 17 || p99 < 15 {
		t.Errorf("p99 = %v ms, want ≈ 15.8 ms at sub-ms resolution", p99)
	}
}
