package serve

import (
	"time"

	"evax/internal/engine"
)

// request is one unit of shard work: an accepted sample awaiting scoring, or
// (when flush is non-nil) a control message asking the shard to flush its
// current batch and then close the channel — the barrier connection teardown
// and server drain use to guarantee every previously accepted sample has its
// verdict delivered.
type request struct {
	c            *conn
	sess         *session // non-nil for session-backed conns
	seq          uint64
	instrStart   uint64
	instructions uint64
	cycles       uint64
	raw          []float64
	enq          time.Time

	flush chan struct{}
}

// shard is one scoring lane. A connection is pinned to exactly one shard for
// its lifetime, so per-connection ordering and flag-window state never need
// cross-shard coordination: the shard's batcher goroutine is the only writer
// of every pinned connection's secureUntil.
//
// The ingest channel is the bounded queue of the admission-control contract:
// readers enqueue with a non-blocking send and reject on overflow, so memory
// per shard is bounded by QueueBound + MaxBatch rows no matter the offered
// load.
type shard struct {
	srv *Server
	ch  chan request

	// gen/sc cache the shard's resolution of the swapper's active
	// generation. Each flush compares gen against Swapper.Active (one atomic
	// load) and rebuilds sc only when a swap landed — so a batch always
	// scores entirely on the generation it started on, and the steady state
	// allocates nothing.
	gen *engine.Generation
	sc  *engine.Scorer

	// Batch staging scratch, sized to MaxBatch at construction: flush copies
	// the batch's freelist rows into the contiguous rawBuf and scores the
	// whole batch in one fused-kernel sweep.
	rawBuf   []float64
	instrBuf []uint64
	cycBuf   []uint64
	scoreBuf []float64
}

// run is the batcher loop: collect up to MaxBatch requests or until Linger
// expires after the first, then flush the batch through the zero-alloc score
// path. Control messages flush immediately.
func (sh *shard) run() {
	defer sh.srv.shardWg.Done()
	cfg := sh.srv.cfg
	batch := make([]request, 0, cfg.MaxBatch)
	lats := make([]time.Duration, 0, cfg.MaxBatch)
	for {
		r, ok := <-sh.ch
		if !ok {
			sh.flush(&batch, &lats)
			return
		}
		if r.flush != nil {
			sh.flush(&batch, &lats)
			close(r.flush)
			continue
		}
		batch = append(batch, r)
		if !sh.collect(&batch, &lats) {
			sh.flush(&batch, &lats)
			return
		}
		sh.flush(&batch, &lats)
	}
}

// collect tops the batch up to MaxBatch, waiting at most Linger after the
// first sample. Returns false when the ingest channel closed.
func (sh *shard) collect(batch *[]request, lats *[]time.Duration) bool {
	cfg := sh.srv.cfg
	if cfg.Linger <= 0 {
		// No linger: absorb whatever is already queued, never wait.
		for len(*batch) < cfg.MaxBatch {
			select {
			case r, ok := <-sh.ch:
				if !ok {
					return false
				}
				if r.flush != nil {
					sh.flush(batch, lats)
					close(r.flush)
					continue
				}
				*batch = append(*batch, r)
			default:
				return true
			}
		}
		return true
	}
	timer := time.NewTimer(cfg.Linger)
	defer timer.Stop()
	for len(*batch) < cfg.MaxBatch {
		select {
		case r, ok := <-sh.ch:
			if !ok {
				return false
			}
			if r.flush != nil {
				sh.flush(batch, lats)
				close(r.flush)
				continue
			}
			*batch = append(*batch, r)
		case <-timer.C:
			return true
		}
	}
	return true
}

// flush scores every request in the batch, applies per-connection flag-window
// state, and delivers verdict frames to the connections' writers. The score
// of a row depends only on the row (the scorer's scratch is fully overwritten
// per sample), so batching and shard assignment never change a verdict.
//
// This is the serve hot path: rows and verdict frames recycle through the
// server freelists and latencies are written into the preallocated lats
// slice, so steady-state flushing performs zero heap allocations per sample.
//
//evaxlint:hotpath
func (sh *shard) flush(batch *[]request, lats *[]time.Duration) {
	if len(*batch) == 0 {
		return
	}
	if hook := sh.srv.cfg.flushPause; hook != nil {
		hook()
	}
	// Resolve the generation for this whole batch: a swap landing mid-flush
	// waits for the next batch, so no sample scores on a mix of generations.
	if g := sh.srv.sw.Active(); g != sh.gen {
		sh.sc = g.NewScorer() //evaxlint:ignore hotpath per-swap scorer rebuild; steady state reuses the cached scorer
		sh.gen = g
	}
	// run sized lats with cap MaxBatch and the batch never exceeds MaxBatch,
	// so this reslice stays within capacity.
	n := len(*batch)
	ls := (*lats)[:n]
	// Stage the batch contiguously and score it in one kernel sweep: the
	// fused backends process several rows per pass over the compiled
	// per-feature constants.
	d := sh.srv.rawDim
	raw := sh.rawBuf[: n*d : n*d]
	instr := sh.instrBuf[:n]
	cycles := sh.cycBuf[:n]
	scores := sh.scoreBuf[:n]
	for i := range *batch {
		r := &(*batch)[i]
		copy(raw[i*d:(i+1)*d], r.raw)
		instr[i] = r.instructions
		cycles[i] = r.cycles
	}
	sh.sc.ScoreBatch(raw, instr, cycles, scores)
	thr := sh.sc.Threshold()
	for i := range *batch {
		r := &(*batch)[i]
		score := scores[i]
		windowEnd := r.instrStart + r.instructions
		var flags uint8
		flagged := score >= thr
		if flagged {
			flags |= VerdictFlagged
		}
		if sess := r.sess; sess != nil {
			// Session conns keep the mitigation window on the session, so a
			// reconnect cannot reset an engaged window, and store the verdict
			// in the dedup ring so replays are re-answered, never re-scored.
			// The delivery target is whichever conn is attached NOW — the
			// original may be gone — and a full queue sheds (the ring keeps
			// the verdict recoverable).
			sess.mu.Lock()
			if flagged {
				sess.secureUntil = windowEnd + sh.srv.cfg.SecureWindow
			}
			if flagged || windowEnd < sess.secureUntil {
				flags |= VerdictSecure
			}
			v := Verdict{Seq: r.seq, Score: score, Flags: flags}
			resend := sess.store(v)
			if resend {
				sess.resent++
			}
			sess.scored++
			if flagged {
				sess.flagged++
			}
			target := sess.attached
			sess.mu.Unlock()
			if resend {
				sh.srv.met.resent.Add(1)
			}
			if flagged {
				sh.srv.met.flagged.Add(1)
			}
			sh.srv.met.scored.Add(1)
			if target != nil {
				target.deliverShed(AppendVerdict(sh.srv.getFrame(), v))
			}
			ls[i] = time.Since(r.enq)
			sh.srv.putRow(r.raw)
			r.raw = nil
			continue
		}
		if flagged {
			// Engage (or extend) the mitigation window, exactly the
			// defense controller's gating rule.
			r.c.secureUntil = windowEnd + sh.srv.cfg.SecureWindow
		}
		if flagged || windowEnd < r.c.secureUntil {
			flags |= VerdictSecure
		}
		r.c.scored++
		if flagged {
			r.c.flagged++
			sh.srv.met.flagged.Add(1)
		}
		sh.srv.met.scored.Add(1)
		r.c.deliver(AppendVerdict(sh.srv.getFrame(), Verdict{Seq: r.seq, Score: score, Flags: flags}))
		ls[i] = time.Since(r.enq)
		sh.srv.putRow(r.raw)
		r.raw = nil
	}
	sh.srv.met.observeBatch(len(*batch), ls)
	*batch = (*batch)[:0]
	*lats = (*lats)[:0]
}
