package serve

import (
	"fmt"
	"sync"
	"time"
)

// seqState tracks one sequence number through the exactly-once pipeline.
type seqState uint8

const (
	seqUnseen   seqState = iota // slot empty or recycled
	seqInflight                 // admitted to the shard, verdict pending
	seqScored                   // verdict computed and stored in the slot
)

// sessEntry is one dedup-window slot: the state of sequence number seq plus,
// once scored, the stored verdict so reconnecting clients can be re-answered
// without re-scoring.
type sessEntry struct {
	seq    uint64
	state  seqState
	resend bool // a duplicate arrived while inflight: re-deliver at flush
	score  float64
	flags  uint8
}

// session is the server half of the exactly-once contract. It outlives any
// single connection: a client that loses its conn resumes the session on a
// fresh one and replays unacknowledged samples; the dedup ring guarantees
// each sequence number is scored at most once no matter how many times it is
// retransmitted, and stored verdicts answer replays of already-scored
// samples.
//
// A session is pinned to one shard forever (conns attaching to it are
// re-pinned), so its secure-window state keeps the single-writer discipline
// the per-conn field had, and per-session scoring order is the admission
// order regardless of reconnects.
//
// The mutex guards everything below it: the attached conn's reader admits
// and dedups while the shard batcher stores verdicts, and a takeover can
// swap attached from a third goroutine.
type session struct {
	id    uint64
	shard *shard

	mu       sync.Mutex
	attached *conn // nil while orphaned
	ring     []sessEntry
	window   uint64
	high     uint64 // highest admitted seq (0 before the first)
	admitted bool   // distinguishes "no samples yet" from high==0

	// secureUntil is the mitigation-window horizon, session-scoped so a
	// reconnect cannot reset an engaged window.
	secureUntil uint64

	// Lifetime totals across every attachment, reported in the final conn
	// stats frame of whichever conn is attached when asked.
	accepted, rejected, scored, flagged uint64
	dupes, resent, shed                 uint64

	// lastDetach is when the session last lost its conn; orphans older than
	// Config.SessionIdle are reaped lazily.
	lastDetach time.Time
}

// admitVerdict classifies one incoming sequence number against the dedup
// window. Exactly one of the results is returned:
//
//	admitFresh  — never seen: caller admits it to the shard
//	admitDup    — inflight duplicate: dropped, verdict will be (re)delivered
//	admitReplay — scored duplicate: caller re-delivers the stored verdict
//	admitStale  — fell out of the dedup window: caller rejects RejectStale
type admitVerdict uint8

const (
	admitFresh admitVerdict = iota
	admitDup
	admitReplay
	admitStale
)

// admit runs the dedup protocol for seq. On admitReplay the stored verdict is
// returned. Caller must hold s.mu.
func (s *session) admit(seq uint64) (admitVerdict, Verdict) {
	if s.admitted && s.high >= s.window && seq <= s.high-s.window {
		return admitStale, Verdict{}
	}
	slot := &s.ring[seq%s.window]
	if slot.state != seqUnseen && slot.seq == seq {
		if slot.state == seqInflight {
			slot.resend = true
			return admitDup, Verdict{}
		}
		return admitReplay, Verdict{Seq: seq, Score: slot.score, Flags: slot.flags}
	}
	// Fresh (or overwriting a slot whose tenant aged out of the window).
	*slot = sessEntry{seq: seq, state: seqInflight}
	if !s.admitted || seq > s.high {
		s.high = seq
		s.admitted = true
	}
	return admitFresh, Verdict{}
}

// store records a computed verdict in the dedup ring (if the slot still
// belongs to seq) and reports whether a duplicate asked for re-delivery.
// Caller must hold s.mu.
func (s *session) store(v Verdict) (resend bool) {
	slot := &s.ring[v.Seq%s.window]
	if slot.state == seqUnseen || slot.seq != v.Seq {
		return false // tenant aged out mid-flight; nothing to store
	}
	resend = slot.resend
	slot.state = seqScored
	slot.resend = false
	slot.score = v.Score
	slot.flags = v.Flags
	return resend
}

// attachSession resolves a resume frame to a session: id 0 creates a fresh
// session pinned to a shard round-robin; a non-zero id re-attaches (taking
// over from a half-dead conn if one is still attached). The caller's conn is
// re-pinned to the session's shard. Returns the ack to send.
func (s *Server) attachSession(c *conn, id uint64) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapSessionsLocked()
	var sess *session
	if id == 0 {
		sid := s.nextSess
		s.nextSess++
		sess = &session{
			id:     sid,
			shard:  s.shards[sid%uint64(len(s.shards))],
			ring:   make([]sessEntry, s.cfg.SessionWindow),
			window: uint64(s.cfg.SessionWindow),
		}
		s.sessions[sid] = sess
		s.met.sessions.Add(1)
	} else {
		sess = s.sessions[id]
		if sess == nil {
			return Ack{}, fmt.Errorf("serve: unknown session %d (expired or never created)", id)
		}
		s.met.resumed.Add(1)
	}
	sess.mu.Lock()
	sess.attached = c
	high := sess.high
	sess.mu.Unlock()
	c.sess = sess
	c.shard = sess.shard
	return Ack{Session: sess.id, Window: uint32(sess.window), High: high}, nil
}

// detachSession drops c from its session (if still the attached conn) and
// starts the orphan idle clock.
func (s *Server) detachSession(c *conn) {
	sess := c.sess
	if sess == nil {
		return
	}
	sess.mu.Lock()
	if sess.attached == c {
		sess.attached = nil
		sess.lastDetach = time.Now()
	}
	sess.mu.Unlock()
}

// reapSessionsLocked removes orphaned sessions idle past SessionIdle. Called
// with s.mu held, on the session attach path — sessions cost nothing while no
// one churns them, so lazy reaping is enough to bound the table.
func (s *Server) reapSessionsLocked() {
	if s.cfg.SessionIdle <= 0 {
		return
	}
	cutoff := time.Now().Add(-s.cfg.SessionIdle)
	for id, sess := range s.sessions {
		sess.mu.Lock()
		orphanedLongEnough := sess.attached == nil && sess.lastDetach.Before(cutoff) && !sess.lastDetach.IsZero()
		sess.mu.Unlock()
		if orphanedLongEnough {
			delete(s.sessions, id)
			s.met.sessionsReaped.Add(1)
		}
	}
}
