// Package serve is the online detection service: it exposes the columnar
// detect.FeaturePlan scoring path as a long-running, observable, backpressured
// server. Clients stream raw counter-sample frames over a length-prefixed
// binary protocol; the server micro-batches them into the zero-alloc
// expand/normalize/score path, tracks per-connection flag-window state (the
// defense controller's secure-window gating), and streams verdict frames
// back. Ingest queues are bounded with explicit admission control — overload
// is rejected with an error frame, never buffered without bound — and SIGTERM
// drains gracefully: accept stops, in-flight batches flush, every accepted
// frame still receives its verdict, and a final stats report is persisted
// crash-safely. See DESIGN.md §12 for the protocol and backpressure contract.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"evax/internal/dataset"
	"evax/internal/engine"
)

// Frame types. Every frame on the wire is TYPE(1) LEN(4, little-endian)
// PAYLOAD(LEN). Unknown types are a protocol error.
const (
	// FrameHello opens a connection (client→server): protocol version and
	// the client's raw counter dimensionality, which must match the
	// server's catalog.
	FrameHello byte = 0x01
	// FrameSample streams one counter window (client→server): sequence
	// number, window start instruction, then a dataset.AppendRow row.
	FrameSample byte = 0x02
	// FrameVerdict answers one accepted sample (server→client): sequence
	// number, score bits, and flag bits.
	FrameVerdict byte = 0x03
	// FrameReject answers one refused sample (server→client): sequence
	// number, reject code, message. A rejected sample was never queued.
	FrameReject byte = 0x04
	// FrameBye announces the client is done sending (client→server); the
	// server flushes the connection's in-flight samples, answers every one,
	// sends FrameStats and closes.
	FrameBye byte = 0x05
	// FrameStats carries the connection's JSON stats summary
	// (server→client), sent exactly once before close.
	FrameStats byte = 0x06
	// FrameDrain announces the server is draining (server→client): samples
	// sent after it are rejected with RejectDraining.
	FrameDrain byte = 0x07
	// FrameError reports a fatal protocol error (server→client) before the
	// connection closes.
	FrameError byte = 0x08
	// FrameAdmin carries a live-vaccination operation (client→server: op
	// byte plus operand path) and its JSON AdminResult (server→client). See
	// DESIGN.md §14.
	FrameAdmin byte = 0x09
	// FramePing is a liveness probe (client→server): an opaque token the
	// server echoes back in a FramePong. Pings also reset the server's idle
	// read deadline, so a quiet-but-alive client is never reaped.
	FramePing byte = 0x0A
	// FramePong answers a ping (server→client) with the same token.
	FramePong byte = 0x0B
	// FrameResume opens a session-backed connection (client→server), sent
	// instead of FrameHello as the first frame: protocol version, raw
	// counter dimensionality, and a session ID (0 asks the server to create
	// a fresh session; nonzero re-attaches to a live one after a connection
	// loss, so the client can replay unacked samples through the session's
	// dedup window). See DESIGN.md §15.
	FrameResume byte = 0x0C
	// FrameAck answers a FrameResume (server→client): the session ID, the
	// server's dedup-window capacity (the client must keep at most this
	// many samples unacknowledged), and the session's high watermark (the
	// next sequence number the server has never seen).
	FrameAck byte = 0x0D
)

// Reject codes carried by FrameReject.
const (
	// RejectOverload: the shard's ingest queue was full (admission control).
	RejectOverload uint8 = 1
	// RejectDraining: the server is shutting down and no longer accepts.
	RejectDraining uint8 = 2
	// RejectMalformed: the sample payload failed to decode.
	RejectMalformed uint8 = 3
	// RejectStale: the sample's sequence number fell outside the session's
	// dedup window — either it was evicted (the client held more samples in
	// flight than the window the FrameAck advertised) or an older sequence
	// still occupies its window slot. A well-behaved client bounding its
	// in-flight set to the advertised window never sees this code.
	RejectStale uint8 = 4
)

// ProtocolVersion is the framing version exchanged in FrameHello.
const ProtocolVersion uint32 = 1

// MaxPayload bounds a frame payload: a corrupt or hostile length prefix can
// never demand an unbounded allocation. 4 MiB fits a ~500k-counter row, far
// beyond any catalog this machine models.
const MaxPayload = 4 << 20

// headerSize is the fixed frame header: type byte plus payload length.
const headerSize = 5

// verdictFrameLen is the full wire size of a FrameVerdict: header plus the
// 17-byte payload. Frame buffers recycled through the server freelist are
// allocated at this capacity, so verdict encoding never grows them.
const verdictFrameLen = headerSize + 17

// frameFreeDepth bounds the verdict frame-buffer freelist.
const frameFreeDepth = 4 * outQueueDepth

// Frame is one decoded wire frame: a type and its raw payload.
type Frame struct {
	Type    byte
	Payload []byte
}

// AppendFrame appends the wire form of a frame to dst. It only appends:
// when dst already has headerSize+len(payload) spare capacity (the verdict
// freelist path), no allocation happens.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)                                            //evaxlint:ignore hotpath appends into caller-presized dst; freelist buffers never grow
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload))) //evaxlint:ignore hotpath appends into caller-presized dst
	return append(dst, payload...)                                    //evaxlint:ignore hotpath appends into caller-presized dst
}

// DecodeFrame parses one frame from the front of b, returning the frame and
// the unconsumed tail. It is the pure-slice form of ReadFrame, shared with
// the fuzz harness: malformed input returns an error, never a panic, and the
// returned payload aliases b.
func DecodeFrame(b []byte) (Frame, []byte, error) {
	if len(b) < headerSize {
		return Frame{}, nil, fmt.Errorf("serve: frame header truncated (%d bytes)", len(b))
	}
	typ := b[0]
	n := binary.LittleEndian.Uint32(b[1:])
	if n > MaxPayload {
		return Frame{}, nil, fmt.Errorf("serve: frame payload length %d exceeds limit %d", n, MaxPayload)
	}
	if len(b) < headerSize+int(n) {
		return Frame{}, nil, fmt.Errorf("serve: frame payload truncated: %d of %d bytes", len(b)-headerSize, n)
	}
	return Frame{Type: typ, Payload: b[headerSize : headerSize+int(n)]}, b[headerSize+int(n):], nil
}

// ReadFrame reads one frame from r. The payload is freshly allocated.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("serve: frame payload length %d exceeds limit %d", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("serve: frame payload truncated: %w", err)
	}
	return Frame{Type: hdr[0], Payload: payload}, nil
}

// Hello is the decoded FrameHello payload.
type Hello struct {
	Version uint32
	RawDim  uint32
}

// AppendHello appends an encoded FrameHello to dst.
func AppendHello(dst []byte, h Hello) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint32(p[0:], h.Version)
	binary.LittleEndian.PutUint32(p[4:], h.RawDim)
	return AppendFrame(dst, FrameHello, p[:])
}

// DecodeHello parses a FrameHello payload.
func DecodeHello(payload []byte) (Hello, error) {
	if len(payload) != 8 {
		return Hello{}, fmt.Errorf("serve: hello payload is %d bytes, want 8", len(payload))
	}
	return Hello{
		Version: binary.LittleEndian.Uint32(payload[0:]),
		RawDim:  binary.LittleEndian.Uint32(payload[4:]),
	}, nil
}

// Resume is the decoded FrameResume payload: the session-backed form of the
// hello exchange. Session 0 requests a fresh session; a nonzero Session
// re-attaches to one created earlier on this server.
type Resume struct {
	Version uint32
	RawDim  uint32
	Session uint64
}

// AppendResume appends an encoded FrameResume to dst.
func AppendResume(dst []byte, r Resume) []byte {
	var p [16]byte
	binary.LittleEndian.PutUint32(p[0:], r.Version)
	binary.LittleEndian.PutUint32(p[4:], r.RawDim)
	binary.LittleEndian.PutUint64(p[8:], r.Session)
	return AppendFrame(dst, FrameResume, p[:])
}

// DecodeResume parses a FrameResume payload.
func DecodeResume(payload []byte) (Resume, error) {
	if len(payload) != 16 {
		return Resume{}, fmt.Errorf("serve: resume payload is %d bytes, want 16", len(payload))
	}
	return Resume{
		Version: binary.LittleEndian.Uint32(payload[0:]),
		RawDim:  binary.LittleEndian.Uint32(payload[4:]),
		Session: binary.LittleEndian.Uint64(payload[8:]),
	}, nil
}

// Ack is the decoded FrameAck payload: the server's answer to a resume.
// Window is the session's dedup-window capacity — the client must bound its
// unacknowledged in-flight samples to it, or risk RejectStale. High is the
// next sequence number the server has never accepted: everything below it is
// either scored (replays draw a stored verdict, not a second score) or still
// in flight.
type Ack struct {
	Session uint64
	Window  uint32
	High    uint64
}

// AppendAck appends an encoded FrameAck to dst.
func AppendAck(dst []byte, a Ack) []byte {
	var p [20]byte
	binary.LittleEndian.PutUint64(p[0:], a.Session)
	binary.LittleEndian.PutUint32(p[8:], a.Window)
	binary.LittleEndian.PutUint64(p[12:], a.High)
	return AppendFrame(dst, FrameAck, p[:])
}

// DecodeAck parses a FrameAck payload.
func DecodeAck(payload []byte) (Ack, error) {
	if len(payload) != 20 {
		return Ack{}, fmt.Errorf("serve: ack payload is %d bytes, want 20", len(payload))
	}
	return Ack{
		Session: binary.LittleEndian.Uint64(payload[0:]),
		Window:  binary.LittleEndian.Uint32(payload[8:]),
		High:    binary.LittleEndian.Uint64(payload[12:]),
	}, nil
}

// AppendPing appends an encoded FramePing carrying token to dst.
func AppendPing(dst []byte, token uint64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], token)
	return AppendFrame(dst, FramePing, p[:])
}

// AppendPong appends an encoded FramePong echoing token to dst.
func AppendPong(dst []byte, token uint64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], token)
	return AppendFrame(dst, FramePong, p[:])
}

// DecodePing parses a FramePing payload into its token.
func DecodePing(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("serve: ping payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// DecodePong parses a FramePong payload into its token.
func DecodePong(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("serve: pong payload is %d bytes, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// SampleHeader is the fixed prefix of a FrameSample payload; the counter row
// (dataset.AppendRow) follows it.
type SampleHeader struct {
	// Seq is the client-assigned sequence number echoed in the verdict or
	// reject answering this sample.
	Seq uint64
	// InstrStart is the committed-instruction count at window start, which
	// positions the window on the connection's instruction timeline for
	// flag-window (secure mode) accounting.
	InstrStart uint64
}

// sampleHeaderSize is Seq + InstrStart.
const sampleHeaderSize = 16

// SampleWireSize returns the FrameSample payload size for a rawDim-counter row.
func SampleWireSize(rawDim int) int { return sampleHeaderSize + dataset.RowWireSize(rawDim) }

// AppendSample appends an encoded FrameSample to dst.
func AppendSample(dst []byte, h SampleHeader, instructions, cycles uint64, raw []float64) []byte {
	dst = append(dst, FrameSample)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(SampleWireSize(len(raw))))
	dst = binary.LittleEndian.AppendUint64(dst, h.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, h.InstrStart)
	return dataset.AppendRow(dst, instructions, cycles, raw)
}

// DecodeSampleInto parses a FrameSample payload, writing the counter row into
// raw (len == the connection's rawDim). Zero allocations.
func DecodeSampleInto(payload []byte, raw []float64) (h SampleHeader, instructions, cycles uint64, err error) {
	if len(payload) != SampleWireSize(len(raw)) {
		return SampleHeader{}, 0, 0, fmt.Errorf("serve: sample payload is %d bytes, want %d for a %d-counter row",
			len(payload), SampleWireSize(len(raw)), len(raw))
	}
	h.Seq = binary.LittleEndian.Uint64(payload[0:])
	h.InstrStart = binary.LittleEndian.Uint64(payload[8:])
	instructions, cycles, _, err = dataset.DecodeRowInto(payload[sampleHeaderSize:], raw)
	return h, instructions, cycles, err
}

// Verdict flag bits.
const (
	// VerdictFlagged: the detector scored the window at or above threshold.
	VerdictFlagged uint8 = 1 << 0
	// VerdictSecure: the connection's flag window keeps mitigation engaged
	// after this sample (flagged now, or within SecureWindow instructions
	// of an earlier flag).
	VerdictSecure uint8 = 1 << 1
)

// Verdict is the decoded FrameVerdict payload.
type Verdict struct {
	Seq   uint64
	Score float64
	Flags uint8
}

// Flagged reports whether the detector flagged the window.
func (v Verdict) Flagged() bool { return v.Flags&VerdictFlagged != 0 }

// Secure reports whether mitigation stays engaged after this window.
func (v Verdict) Secure() bool { return v.Flags&VerdictSecure != 0 }

// AppendVerdict appends an encoded FrameVerdict to dst.
func AppendVerdict(dst []byte, v Verdict) []byte {
	var p [17]byte
	binary.LittleEndian.PutUint64(p[0:], v.Seq)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(v.Score))
	p[16] = v.Flags
	return AppendFrame(dst, FrameVerdict, p[:])
}

// DecodeVerdict parses a FrameVerdict payload.
func DecodeVerdict(payload []byte) (Verdict, error) {
	if len(payload) != 17 {
		return Verdict{}, fmt.Errorf("serve: verdict payload is %d bytes, want 17", len(payload))
	}
	return Verdict{
		Seq:   binary.LittleEndian.Uint64(payload[0:]),
		Score: math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		Flags: payload[16],
	}, nil
}

// Reject is the decoded FrameReject payload.
type Reject struct {
	Seq  uint64
	Code uint8
	Msg  string
}

// maxRejectMsg bounds the reject message so a frame stays small.
const maxRejectMsg = 512

// AppendReject appends an encoded FrameReject to dst.
func AppendReject(dst []byte, r Reject) []byte {
	msg := r.Msg
	if len(msg) > maxRejectMsg {
		msg = msg[:maxRejectMsg]
	}
	dst = append(dst, FrameReject)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(9+len(msg)))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, r.Code)
	return append(dst, msg...)
}

// DecodeReject parses a FrameReject payload.
func DecodeReject(payload []byte) (Reject, error) {
	if len(payload) < 9 {
		return Reject{}, fmt.Errorf("serve: reject payload is %d bytes, want >= 9", len(payload))
	}
	return Reject{
		Seq:  binary.LittleEndian.Uint64(payload[0:]),
		Code: payload[8],
		Msg:  string(payload[9:]),
	}, nil
}

// Admin operations carried by FrameAdmin.
const (
	// AdminSwap promotes the bundle at Path through the full
	// live-vaccination sequence (canary gate, staging, swap, health probe).
	AdminSwap uint8 = 1
	// AdminRollback re-activates the fallback generation.
	AdminRollback uint8 = 2
	// AdminStatus reports the active/fallback generation pair.
	AdminStatus uint8 = 3
)

// Admin is the decoded client→server FrameAdmin payload.
type Admin struct {
	// Op selects the operation (AdminSwap, AdminRollback, AdminStatus).
	Op uint8
	// Path is the server-local candidate bundle for AdminSwap ("" otherwise).
	Path string
}

// maxAdminPath bounds the operand so an admin frame stays small.
const maxAdminPath = 4096

// AppendAdmin appends an encoded client→server FrameAdmin to dst.
func AppendAdmin(dst []byte, a Admin) []byte {
	path := a.Path
	if len(path) > maxAdminPath {
		path = path[:maxAdminPath]
	}
	dst = append(dst, FrameAdmin)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(path)))
	dst = append(dst, a.Op)
	return append(dst, path...)
}

// DecodeAdmin parses a client→server FrameAdmin payload.
func DecodeAdmin(payload []byte) (Admin, error) {
	if len(payload) < 1 {
		return Admin{}, fmt.Errorf("serve: admin payload is empty, want >= 1 byte")
	}
	if len(payload) > 1+maxAdminPath {
		return Admin{}, fmt.Errorf("serve: admin path is %d bytes, limit %d", len(payload)-1, maxAdminPath)
	}
	return Admin{Op: payload[0], Path: string(payload[1:])}, nil
}

// GenStatus describes the swapper's generation pair inside an AdminResult.
type GenStatus struct {
	// ActiveHash is the serving generation's bundle content hash (hex).
	ActiveHash string `json:"active_hash"`
	// FallbackHash is the rollback target's content hash ("" before the
	// first swap).
	FallbackHash string `json:"fallback_hash,omitempty"`
	// Epoch is the activation sequence number.
	Epoch uint64 `json:"epoch"`
	// Backend is the serving generation's compiled kernel selector.
	Backend string `json:"backend"`
	// RawDim is the counter dimensionality clients stream.
	RawDim int `json:"raw_dim"`
}

// AdminResult is the JSON server→client FrameAdmin payload.
type AdminResult struct {
	// Ok reports whether the operation succeeded (for AdminSwap: the
	// candidate is live and healthy).
	Ok bool `json:"ok"`
	// Error explains a failed operation.
	Error string `json:"error,omitempty"`
	// Report carries the full promotion/rollback report for swap and
	// rollback operations.
	Report *engine.SwapReport `json:"report,omitempty"`
	// Status is the generation pair after the operation.
	Status GenStatus `json:"status"`
}

// AppendError appends an encoded FrameError (fatal protocol error) to dst.
func AppendError(dst []byte, msg string) []byte {
	if len(msg) > maxRejectMsg {
		msg = msg[:maxRejectMsg]
	}
	return AppendFrame(dst, FrameError, []byte(msg))
}
