// Package hpc implements the hardware-performance-counter fabric: a named,
// ordered catalog of microarchitectural event counters, a sampler that
// snapshots deltas every N instructions, per-counter max-normalization (the
// paper normalizes statistics over the maximum seen value), and a derived
// statistic expansion (total / rate / per-cycle / distribution views) that
// grows the base event space toward the ~1160-counter space the paper
// collects from gem5.
package hpc

import (
	"fmt"
	"sort"

	"evax/internal/fmath"
)

// Catalog is an immutable ordered list of counter names. Counter vectors are
// aligned with it by index.
type Catalog struct {
	names []string
	index map[string]int
}

// NewCatalog builds a catalog from names, which must be unique.
func NewCatalog(names []string) (*Catalog, error) {
	c := &Catalog{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := c.index[n]; dup {
			return nil, fmt.Errorf("duplicate counter name %q", n)
		}
		c.index[n] = i
	}
	return c, nil
}

// MustCatalog is NewCatalog panicking on error (for static catalogs).
func MustCatalog(names []string) *Catalog {
	c, err := NewCatalog(names)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of counters.
func (c *Catalog) Len() int { return len(c.names) }

// Name returns the name at index i.
func (c *Catalog) Name(i int) string { return c.names[i] }

// Names returns a copy of all names in order.
func (c *Catalog) Names() []string { return append([]string(nil), c.names...) }

// Index returns the index of name, or -1 if absent.
func (c *Catalog) Index(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex returns the index of name, panicking if absent. Feature lists
// for the detectors are static; a missing name is a programming error.
func (c *Catalog) MustIndex(name string) int {
	i := c.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("hpc: unknown counter %q", name))
	}
	return i
}

// Source provides live counter values aligned with a catalog.
type Source interface {
	// ReadCounters fills out (len == catalog.Len()) with cumulative values.
	ReadCounters(out []uint64)
	// Instructions returns committed instructions so far.
	Instructions() uint64
	// Cycles returns elapsed cycles so far.
	Cycles() uint64
}

// Sample is one sampling-window delta of every counter.
type Sample struct {
	// Values holds per-counter deltas over the window, aligned with the
	// catalog.
	Values []float64
	// Instructions and Cycles are the window lengths.
	Instructions uint64
	Cycles       uint64
	// InstrStart is the committed-instruction count at window start.
	InstrStart uint64
}

// Sampler snapshots counter deltas from a Source at a fixed instruction
// cadence (the paper samples every 100 / 1k / 10k / 100k instructions).
type Sampler struct {
	cat      *Catalog
	src      Source
	interval uint64

	prev      []uint64
	cur       []uint64
	prevInstr uint64
	prevCycle uint64
	started   bool
}

// NewSampler creates a sampler reading src every interval instructions.
func NewSampler(cat *Catalog, src Source, interval uint64) *Sampler {
	if interval == 0 {
		interval = 10_000
	}
	return &Sampler{
		cat:      cat,
		src:      src,
		interval: interval,
		prev:     make([]uint64, cat.Len()),
		cur:      make([]uint64, cat.Len()),
	}
}

// Interval returns the sampling cadence in instructions.
func (s *Sampler) Interval() uint64 { return s.interval }

// Due reports whether a full window has elapsed since the last sample.
func (s *Sampler) Due() bool {
	if !s.started {
		return true
	}
	return s.src.Instructions() >= s.prevInstr+s.interval
}

// Take snapshots the current window. The first call establishes the
// baseline and returns (Sample{}, false).
func (s *Sampler) Take() (Sample, bool) {
	return s.TakeInto(nil)
}

// TakeInto is Take writing the window deltas into vals (len == cat.Len())
// instead of allocating; the returned Sample.Values aliases vals. A nil
// vals allocates a fresh row. This is the steady-state online path: with a
// caller-owned row it performs zero heap allocations per sample.
//
//evaxlint:hotpath
func (s *Sampler) TakeInto(vals []float64) (Sample, bool) {
	instr := s.src.Instructions()
	cycles := s.src.Cycles()
	s.src.ReadCounters(s.cur)
	if !s.started {
		s.started = true
		copy(s.prev, s.cur)
		s.prevInstr, s.prevCycle = instr, cycles
		return Sample{}, false
	}
	if vals == nil {
		vals = make([]float64, s.cat.Len()) //evaxlint:ignore hotpath nil-vals convenience path; online callers pass an owned row
	}
	for i := range vals {
		vals[i] = float64(s.cur[i] - s.prev[i])
	}
	sm := Sample{
		Values:       vals,
		Instructions: instr - s.prevInstr,
		Cycles:       cycles - s.prevCycle,
		InstrStart:   s.prevInstr,
	}
	copy(s.prev, s.cur)
	s.prevInstr, s.prevCycle = instr, cycles
	return sm, true
}

// Normalizer tracks the running maximum of each counter and scales samples
// into [0,1] ("statistics are normalized over the maximum value of the
// counter").
type Normalizer struct {
	max []float64
}

// NewNormalizer creates a normalizer for n counters.
func NewNormalizer(n int) *Normalizer { return &Normalizer{max: make([]float64, n)} }

// Observe updates running maxima from a raw sample.
func (n *Normalizer) Observe(values []float64) {
	for i, v := range values {
		if v > n.max[i] {
			n.max[i] = v
		}
	}
}

// Normalize scales values in place to [0,1] by the running maxima. Counters
// never observed nonzero stay zero.
func (n *Normalizer) Normalize(values []float64) {
	for i, v := range values {
		if n.max[i] > 0 {
			x := v / n.max[i]
			if x > 1 {
				x = 1
			}
			values[i] = x
		} else {
			values[i] = 0
		}
	}
}

// Denormalize is the inverse of Normalize: it scales values in place back
// to raw deltas by the running maxima. Exact recovery holds for deltas that
// were inside the observed range (Normalize clamps above the maximum and
// zeroes never-observed counters).
func (n *Normalizer) Denormalize(values []float64) {
	for i, v := range values {
		values[i] = v * n.max[i]
	}
}

// Max returns the running maximum for counter i.
func (n *Normalizer) Max(i int) float64 { return n.max[i] }

// FitAll observes every sample, then normalizes each in place — the offline
// training flow where the full trace is available.
func (n *Normalizer) FitAll(samples []Sample) {
	for i := range samples {
		n.Observe(samples[i].Values)
	}
	for i := range samples {
		n.Normalize(samples[i].Values)
	}
}

// DerivedKind names one derived view of a base counter.
type DerivedKind int

const (
	// DerivedTotal is the raw window delta.
	DerivedTotal DerivedKind = iota
	// DerivedRate is the delta per 1k instructions.
	DerivedRate
	// DerivedPerCycle is the delta per cycle.
	DerivedPerCycle
	// DerivedBurst is delta² / window (spikiness proxy for distribution).
	DerivedBurst
	// DerivedPresence is 1 if the event fired at all in the window.
	DerivedPresence
	// DerivedLog is log2(1+delta), compressing heavy-tailed counters.
	DerivedLog
	// DerivedShare is this counter's share of the window's total events.
	DerivedShare
	// NumDerivedKinds is the number of derived views per base counter.
	NumDerivedKinds
)

var derivedNames = [NumDerivedKinds]string{
	"total", "rate", "percycle", "burst", "presence", "log", "share",
}

// DerivedSpaceSize returns the dimensionality of the expanded counter space
// for a catalog of n base events. With the machine's ~115 base events and 7
// views this yields an ~800-dimensional derived space, standing in for the
// ~1160-counter space the paper samples from gem5.
func DerivedSpaceSize(n int) int { return n * int(NumDerivedKinds) }

// DerivedName names derived feature j of an expanded space over cat.
func DerivedName(cat *Catalog, j int) string {
	base := j / int(NumDerivedKinds)
	kind := j % int(NumDerivedKinds)
	return cat.Name(base) + "." + derivedNames[kind]
}

// ExpandDerived computes the derived feature vector for a sample. The
// result has DerivedSpaceSize(len(s.Values)) entries. It allocates a fresh
// row per call and serves as the reference implementation the compiled
// Expander must match bit-for-bit; hot paths use Expander.ExpandInto.
func ExpandDerived(s Sample) []float64 {
	out := make([]float64, DerivedSpaceSize(len(s.Values)))
	NewExpander(len(s.Values)).ExpandInto(out, s)
	return out
}

// Expander is the derived-view expansion compiled into an executable plan:
// one (source index, op) pair per output slot, fixed at construction. Apply
// is a single slot loop into a caller-provided row — no name lookups, no
// per-sample allocation. The float formulas are identical to the historical
// per-counter expansion, so outputs are bit-identical to ExpandDerived.
type Expander struct {
	n   int
	src []int32       // per output slot: base counter index
	op  []DerivedKind // per output slot: derived view to compute
}

// NewExpander compiles the expansion plan for a base space of n counters.
func NewExpander(n int) *Expander {
	e := &Expander{
		n:   n,
		src: make([]int32, DerivedSpaceSize(n)),
		op:  make([]DerivedKind, DerivedSpaceSize(n)),
	}
	for j := range e.src {
		e.src[j] = int32(j / int(NumDerivedKinds))
		e.op[j] = DerivedKind(j % int(NumDerivedKinds))
	}
	return e
}

// Dim returns the expanded dimensionality of the plan.
func (e *Expander) Dim() int { return len(e.src) }

// ExpandInto applies the compiled plan to s, writing the derived row into
// dst (len == Dim()). Every slot is written, so dst may be dirty. Zero heap
// allocations (the dimension-mismatch panic may format, but the crash path
// is exempt from the contract).
//
//evaxlint:hotpath
func (e *Expander) ExpandInto(dst []float64, s Sample) {
	if len(s.Values) != e.n || len(dst) != len(e.src) {
		panic(fmt.Sprintf("hpc: ExpandInto dims: sample %d (plan %d), dst %d (plan %d)",
			len(s.Values), e.n, len(dst), len(e.src)))
	}
	total, instrK, cyc := WindowTerms(s.Values, s.Instructions, s.Cycles)
	for j, si := range e.src {
		dst[j] = EvalDerived(e.op[j], s.Values[si], total, instrK, cyc)
	}
}

// WindowTerms computes the per-window denominators every derived view
// shares: the summed event count (DerivedShare), instructions in thousands
// and elapsed cycles, both guarded to 1 for empty windows. Factored out of
// ExpandInto so the fused scoring kernel (internal/kernel) evaluates exactly
// the float-op sequence of the reference expansion — bit-identity between
// the two paths holds by construction, not by parallel maintenance.
func WindowTerms(values []float64, instructions, cycles uint64) (total, instrK, cyc float64) {
	for _, v := range values {
		total += v
	}
	instrK = float64(instructions) / 1000
	if fmath.Zero(instrK) {
		instrK = 1
	}
	cyc = float64(cycles)
	if fmath.Zero(cyc) {
		cyc = 1
	}
	return total, instrK, cyc
}

// EvalDerived computes one derived view of raw counter delta v given the
// window terms from WindowTerms. This is the single source of truth for the
// derived-statistic formulas: the Expander and the fused kernel both call
// it, so their outputs are bit-identical per slot.
func EvalDerived(op DerivedKind, v, total, instrK, cyc float64) float64 {
	switch op {
	case DerivedTotal:
		return v
	case DerivedRate:
		return v / instrK
	case DerivedPerCycle:
		return v / cyc
	case DerivedBurst:
		return v * v / cyc
	case DerivedPresence:
		if v > 0 {
			return 1
		}
		return 0
	case DerivedLog:
		return Log2p1(v)
	default: // DerivedShare
		if total > 0 {
			return v / total
		}
		return 0
	}
}

// Log2p1 is a cheap log2(1+v) via frexp-free iteration; v is a counter
// delta so precision demands are low: linear interpolation of log2 on
// [1,2) after halving down (log2(x) ~ x-1).
func Log2p1(v float64) float64 {
	if v <= 0 {
		return 0
	}
	n := 0.0
	x := 1 + v
	for x >= 2 {
		x /= 2
		n++
	}
	return n + (x - 1)
}

// TopK returns the indices of the k largest values (used by interpretability
// tooling and the feature-engineering search). Ties break toward lower index.
func TopK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
