package hpc

import (
	"math"
	"testing"
	"testing/quick"

	"evax/internal/fmath"
)

type fakeSource struct {
	counters []uint64
	instr    uint64
	cycles   uint64
}

func (f *fakeSource) ReadCounters(out []uint64) { copy(out, f.counters) }
func (f *fakeSource) Instructions() uint64      { return f.instr }
func (f *fakeSource) Cycles() uint64            { return f.cycles }

func TestCatalogBasics(t *testing.T) {
	c := MustCatalog([]string{"a", "b", "c"})
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Index("b") != 1 || c.Index("zzz") != -1 {
		t.Fatal("index lookup wrong")
	}
	if c.MustIndex("c") != 2 {
		t.Fatal("MustIndex wrong")
	}
	if c.Name(0) != "a" {
		t.Fatal("Name wrong")
	}
	names := c.Names()
	names[0] = "mutated"
	if c.Name(0) != "a" {
		t.Fatal("Names() aliases internal storage")
	}
}

func TestCatalogRejectsDuplicates(t *testing.T) {
	if _, err := NewCatalog([]string{"x", "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown counter")
		}
	}()
	MustCatalog([]string{"a"}).MustIndex("nope")
}

func TestSamplerDeltas(t *testing.T) {
	cat := MustCatalog([]string{"x", "y"})
	src := &fakeSource{counters: []uint64{10, 20}, instr: 0, cycles: 0}
	s := NewSampler(cat, src, 100)
	if _, ok := s.Take(); ok {
		t.Fatal("first Take should only establish baseline")
	}
	src.counters = []uint64{15, 50}
	src.instr, src.cycles = 100, 250
	sm, ok := s.Take()
	if !ok {
		t.Fatal("second Take produced nothing")
	}
	if sm.Values[0] != 5 || sm.Values[1] != 30 {
		t.Fatalf("deltas = %v, want [5 30]", sm.Values)
	}
	if sm.Instructions != 100 || sm.Cycles != 250 || sm.InstrStart != 0 {
		t.Fatalf("window = %+v", sm)
	}
}

func TestSamplerDue(t *testing.T) {
	cat := MustCatalog([]string{"x"})
	src := &fakeSource{counters: []uint64{0}}
	s := NewSampler(cat, src, 100)
	if !s.Due() {
		t.Fatal("fresh sampler not due for baseline")
	}
	s.Take()
	src.instr = 50
	if s.Due() {
		t.Fatal("due at half window")
	}
	src.instr = 100
	if !s.Due() {
		t.Fatal("not due at full window")
	}
}

func TestSamplerZeroIntervalDefaults(t *testing.T) {
	cat := MustCatalog([]string{"x"})
	s := NewSampler(cat, &fakeSource{counters: []uint64{0}}, 0)
	if s.Interval() == 0 {
		t.Fatal("zero interval not defaulted")
	}
}

func TestNormalizerScalesToUnit(t *testing.T) {
	n := NewNormalizer(2)
	n.Observe([]float64{10, 0})
	n.Observe([]float64{40, 0})
	v := []float64{20, 5}
	n.Normalize(v)
	if v[0] != 0.5 {
		t.Fatalf("v[0] = %v, want 0.5", v[0])
	}
	if v[1] != 0 {
		t.Fatalf("never-observed counter normalized to %v, want 0", v[1])
	}
	// Values above the running max clamp to 1.
	v = []float64{80, 0}
	n.Normalize(v)
	if v[0] != 1 {
		t.Fatalf("clamp failed: %v", v[0])
	}
}

func TestNormalizerFitAll(t *testing.T) {
	n := NewNormalizer(1)
	samples := []Sample{
		{Values: []float64{2}},
		{Values: []float64{8}},
		{Values: []float64{4}},
	}
	n.FitAll(samples)
	want := []float64{0.25, 1, 0.5}
	for i, w := range want {
		if samples[i].Values[0] != w {
			t.Fatalf("sample %d = %v, want %v", i, samples[i].Values[0], w)
		}
	}
	if n.Max(0) != 8 {
		t.Fatalf("max = %v", n.Max(0))
	}
}

func TestNormalizeBounds(t *testing.T) {
	// Property: after Observe+Normalize every value is within [0,1].
	f := func(obs, vals []float64) bool {
		size := len(obs)
		if len(vals) < size {
			size = len(vals)
		}
		if size == 0 {
			return true
		}
		n := NewNormalizer(size)
		abs := func(xs []float64) []float64 {
			out := make([]float64, size)
			for i := 0; i < size; i++ {
				out[i] = math.Abs(xs[i])
				if math.IsNaN(out[i]) || math.IsInf(out[i], 0) {
					out[i] = 0
				}
			}
			return out
		}
		n.Observe(abs(obs))
		v := abs(vals)
		n.Normalize(v)
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExpandDerived(t *testing.T) {
	s := Sample{
		Values:       []float64{100, 0},
		Instructions: 1000,
		Cycles:       500,
	}
	out := ExpandDerived(s)
	if len(out) != DerivedSpaceSize(2) {
		t.Fatalf("len = %d, want %d", len(out), DerivedSpaceSize(2))
	}
	get := func(base int, k DerivedKind) float64 { return out[base*int(NumDerivedKinds)+int(k)] }
	if get(0, DerivedTotal) != 100 {
		t.Fatalf("total = %v", get(0, DerivedTotal))
	}
	if get(0, DerivedRate) != 100 {
		t.Fatalf("rate per kinstr = %v, want 100", get(0, DerivedRate))
	}
	if get(0, DerivedPerCycle) != 0.2 {
		t.Fatalf("percycle = %v, want 0.2", get(0, DerivedPerCycle))
	}
	if get(0, DerivedPresence) != 1 || get(1, DerivedPresence) != 0 {
		t.Fatal("presence flags wrong")
	}
	if get(0, DerivedShare) != 1 || get(1, DerivedShare) != 0 {
		t.Fatal("share wrong")
	}
	if got := get(0, DerivedLog); math.Abs(got-math.Log2(101)) > 0.2 {
		t.Fatalf("log approx = %v, want ~%v", got, math.Log2(101))
	}
}

func TestDerivedNames(t *testing.T) {
	cat := MustCatalog([]string{"dcache.misses", "lsq.forwLoads"})
	seen := map[string]bool{}
	for j := 0; j < DerivedSpaceSize(cat.Len()); j++ {
		n := DerivedName(cat, j)
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate derived name %q at %d", n, j)
		}
		seen[n] = true
	}
	if !seen["lsq.forwLoads.rate"] {
		t.Fatal("expected derived name lsq.forwLoads.rate")
	}
}

func TestTopK(t *testing.T) {
	v := []float64{1, 9, 3, 9, 5}
	top := TopK(v, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != 1 || top[1] != 3 { // ties break toward lower index
		t.Fatalf("top = %v", top)
	}
	if top[2] != 4 {
		t.Fatalf("third = %d, want 4", top[2])
	}
	if got := TopK(v, 10); len(got) != 5 {
		t.Fatalf("overlong k returned %d", len(got))
	}
}

func TestLog2p1Monotonic(t *testing.T) {
	prev := -1.0
	for v := 0.0; v < 1e6; v = v*1.7 + 1 {
		got := Log2p1(v)
		if got < prev {
			t.Fatalf("Log2p1 not monotonic at %v", v)
		}
		prev = got
	}
}

// randomSample builds a deterministic pseudo-random sample via an xorshift
// walk (no math/rand: seeds must be explicit everywhere).
func randomSample(n int, seed uint64) Sample {
	vals := make([]float64, n)
	x := seed | 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = float64(x % 10_000)
		if x%7 == 0 {
			vals[i] = 0 // exercise presence/share zero branches
		}
	}
	return Sample{Values: vals, Instructions: 1000 + seed%5000, Cycles: 2000 + seed%9000}
}

func TestExpanderMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 7, 115} {
		e := NewExpander(n)
		if e.Dim() != DerivedSpaceSize(n) {
			t.Fatalf("n=%d: Dim = %d, want %d", n, e.Dim(), DerivedSpaceSize(n))
		}
		for seed := uint64(1); seed <= 5; seed++ {
			s := randomSample(n, seed*2654435761)
			want := ExpandDerived(s)
			got := make([]float64, e.Dim())
			for i := range got {
				got[i] = math.NaN() // dirty row: every slot must be written
			}
			e.ExpandInto(got, s)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d seed=%d slot %d: plan %v != reference %v (bitwise)",
						n, seed, i, got[i], want[i])
				}
			}
		}
	}
}

func TestExpanderDimensionality(t *testing.T) {
	// Every base counter must contribute exactly NumDerivedKinds slots, and
	// slot j's name must resolve back to base j/NumDerivedKinds.
	const n = 9
	e := NewExpander(n)
	if e.Dim() != n*int(NumDerivedKinds) {
		t.Fatalf("Dim = %d, want %d", e.Dim(), n*int(NumDerivedKinds))
	}
	s := randomSample(n, 42)
	out := make([]float64, e.Dim())
	e.ExpandInto(out, s)
	for base := 0; base < n; base++ {
		if got := out[base*int(NumDerivedKinds)+int(DerivedTotal)]; got != s.Values[base] {
			t.Fatalf("base %d total slot = %v, want %v", base, got, s.Values[base])
		}
	}
}

func TestExpanderRejectsWrongDims(t *testing.T) {
	e := NewExpander(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched dims")
		}
	}()
	e.ExpandInto(make([]float64, e.Dim()), randomSample(4, 1))
}

func TestTakeIntoZeroAlloc(t *testing.T) {
	cat := MustCatalog([]string{"x", "y", "z"})
	src := &fakeSource{counters: []uint64{1, 2, 3}}
	s := NewSampler(cat, src, 100)
	s.Take()
	row := make([]float64, cat.Len())
	allocs := testing.AllocsPerRun(100, func() {
		src.instr += 100
		src.cycles += 250
		src.counters[0] += 7
		if _, ok := s.TakeInto(row); !ok {
			t.Fatal("TakeInto produced nothing after baseline")
		}
	})
	if allocs != 0 {
		t.Fatalf("TakeInto allocates %v per sample, want 0", allocs)
	}
}

func TestExpandIntoZeroAlloc(t *testing.T) {
	const n = 115
	e := NewExpander(n)
	s := randomSample(n, 7)
	dst := make([]float64, e.Dim())
	allocs := testing.AllocsPerRun(100, func() { e.ExpandInto(dst, s) })
	if allocs != 0 {
		t.Fatalf("ExpandInto allocates %v per sample, want 0", allocs)
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	// expand -> normalize -> denormalize must recover the raw derived
	// deltas within fmath.Eps for every value inside the observed range.
	const n = 23
	e := NewExpander(n)
	var rows [][]float64
	norm := NewNormalizer(e.Dim())
	for seed := uint64(1); seed <= 8; seed++ {
		row := make([]float64, e.Dim())
		e.ExpandInto(row, randomSample(n, seed*888888877))
		norm.Observe(row)
		rows = append(rows, row)
	}
	for ri, row := range rows {
		raw := append([]float64(nil), row...)
		norm.Normalize(row)
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("row %d: normalized value %v outside [0,1]", ri, v)
			}
		}
		norm.Denormalize(row)
		for i := range row {
			if !fmath.Eq(row[i], raw[i]) {
				t.Fatalf("row %d slot %d: round-trip %v != raw %v", ri, i, row[i], raw[i])
			}
		}
	}
}
