package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardShapes(t *testing.T) {
	n := New(1, []int{4, 8, 3}, ReLU, Sigmoid)
	if n.InputSize() != 4 || n.OutputSize() != 3 {
		t.Fatalf("sizes = %d/%d", n.InputSize(), n.OutputSize())
	}
	out := n.Forward([]float64{1, 2, 3, 4})
	if len(out) != 3 {
		t.Fatalf("output len = %d", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output %v out of range", v)
		}
	}
	if n.NumParams() != 4*8+8+8*3+3 {
		t.Fatalf("params = %d", n.NumParams())
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := New(7, []int{3, 5, 1}, Tanh, Sigmoid)
	b := New(7, []int{3, 5, 1}, Tanh, Sigmoid)
	x := []float64{0.1, -0.5, 2}
	oa, ob := a.Forward(x), b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed, different networks")
		}
	}
	c := New(8, []int{3, 5, 1}, Tanh, Sigmoid)
	oc := c.Forward(x)
	if oc[0] == oa[0] {
		t.Fatal("different seeds produced identical output")
	}
}

// TestGradientCheck verifies backprop against finite differences — the
// strongest possible correctness test for the ML substrate.
func TestGradientCheck(t *testing.T) {
	n := New(3, []int{4, 6, 5, 2}, Tanh, Sigmoid)
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	target := []float64{1, 0}

	loss := func() float64 {
		pred := n.Forward(x)
		g := make([]float64, len(pred))
		return BCE(pred, target, g)
	}

	// Analytic gradients.
	pred := n.Forward(x)
	grad := make([]float64, len(pred))
	BCE(pred, target, grad)
	n.Backward(grad)

	const eps = 1e-5
	checked := 0
	for _, l := range n.Layers {
		for o := 0; o < l.Out; o += 2 {
			for i := 0; i < l.In; i += 2 {
				orig := l.W[o][i]
				l.W[o][i] = orig + eps
				up := loss()
				l.W[o][i] = orig - eps
				down := loss()
				l.W[o][i] = orig
				numeric := (up - down) / (2 * eps)
				analytic := l.gradW[o][i]
				if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Errorf("gradW[%d][%d]: analytic %v, numeric %v", o, i, analytic, numeric)
				}
				checked++
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestInputGradientCheck(t *testing.T) {
	// The GAN depends on dL/dInput flowing through the discriminator.
	n := New(5, []int{3, 7, 1}, LeakyReLU, Sigmoid)
	x := []float64{0.3, -0.2, 0.9}
	target := []float64{1}
	pred := n.Forward(x)
	grad := make([]float64, 1)
	BCE(pred, target, grad)
	gin := n.Backward(grad)
	if len(gin) != 3 {
		t.Fatalf("input gradient len = %d", len(gin))
	}
	const eps = 1e-5
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		p := n.Forward(x)
		g := make([]float64, 1)
		up := BCE(p, target, g)
		x[i] = orig - eps
		p = n.Forward(x)
		down := BCE(p, target, g)
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-gin[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("dL/dx[%d]: analytic %v, numeric %v", i, gin[i], numeric)
		}
	}
}

func TestLearnsXOR(t *testing.T) {
	n := New(11, []int{2, 8, 1}, Tanh, Sigmoid)
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 4000; epoch++ {
		for i, x := range data {
			n.TrainSample(x, []float64{labels[i]})
		}
		n.Step(0.5, 0.9, len(data))
	}
	for i, x := range data {
		p := n.Forward(x)[0]
		if (p > 0.5) != (labels[i] > 0.5) {
			t.Fatalf("XOR not learned: f(%v) = %v, want %v", x, p, labels[i])
		}
	}
}

func TestLearnsLinearSeparation(t *testing.T) {
	// A single-layer (perceptron-like) net must learn a linear boundary.
	n := New(3, []int{4, 1}, Linear, Sigmoid)
	rng := rand.New(rand.NewSource(4))
	sample := func() ([]float64, float64) {
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		label := 0.0
		if 2*x[0]-x[1]+0.5*x[2] > 0 {
			label = 1
		}
		return x, label
	}
	for epoch := 0; epoch < 300; epoch++ {
		for b := 0; b < 32; b++ {
			x, y := sample()
			n.TrainSample(x, []float64{y})
		}
		n.Step(0.3, 0.5, 32)
	}
	correct := 0
	for i := 0; i < 500; i++ {
		x, y := sample()
		if (n.Forward(x)[0] > 0.5) == (y > 0.5) {
			correct++
		}
	}
	if correct < 475 {
		t.Fatalf("linear separation accuracy %d/500, want >= 475", correct)
	}
}

func TestCloneIndependent(t *testing.T) {
	n := New(2, []int{2, 3, 1}, ReLU, Sigmoid)
	c := n.Clone()
	x := []float64{1, -1}
	if n.Forward(x)[0] != c.Forward(x)[0] {
		t.Fatal("clone differs from original")
	}
	n.TrainSample(x, []float64{1})
	n.Step(0.5, 0, 1)
	if n.Forward(x)[0] == c.Forward(x)[0] {
		t.Fatal("training the original changed the clone")
	}
}

func TestBCEGradientDirection(t *testing.T) {
	pred := []float64{0.9}
	grad := make([]float64, 1)
	BCE(pred, []float64{1}, grad)
	if grad[0] >= 0 {
		t.Fatal("BCE gradient should push prediction up toward target 1")
	}
	BCE(pred, []float64{0}, grad)
	if grad[0] <= 0 {
		t.Fatal("BCE gradient should push prediction down toward target 0")
	}
}

func TestMSEZeroAtTarget(t *testing.T) {
	pred := []float64{0.25, 0.5}
	grad := make([]float64, 2)
	if loss := MSE(pred, []float64{0.25, 0.5}, grad); loss != 0 {
		t.Fatalf("MSE at target = %v", loss)
	}
	if grad[0] != 0 || grad[1] != 0 {
		t.Fatal("gradient nonzero at minimum")
	}
}

func TestActivationRanges(t *testing.T) {
	for _, x := range []float64{-5, -0.5, 0, 0.5, 5} {
		if y := Sigmoid.apply(x); y <= 0 || y >= 1 {
			t.Errorf("sigmoid(%v) = %v", x, y)
		}
		if y := Tanh.apply(x); y <= -1 || y >= 1 {
			t.Errorf("tanh(%v) = %v", x, y)
		}
		if y := ReLU.apply(x); y < 0 {
			t.Errorf("relu(%v) = %v", x, y)
		}
		if x < 0 && LeakyReLU.apply(x) >= 0 {
			t.Errorf("leakyrelu(%v) = %v", x, LeakyReLU.apply(x))
		}
	}
}

func TestStepZeroBatchSafe(t *testing.T) {
	n := New(1, []int{2, 1}, Linear, Sigmoid)
	n.Step(0.1, 0.9, 0) // must not divide by zero
}

func TestProjectNonNegative(t *testing.T) {
	n := New(5, []int{3, 4, 1}, ReLU, Sigmoid)
	n.ProjectNonNegative()
	for _, l := range n.Layers {
		for o := range l.W {
			for i := range l.W[o] {
				if l.W[o][i] < 0 {
					t.Fatalf("negative weight %v after projection", l.W[o][i])
				}
			}
		}
	}
	// Forward still works and output stays in range.
	out := n.Forward([]float64{1, 0.5, 0.2})
	if out[0] < 0 || out[0] > 1 {
		t.Fatalf("output %v out of range", out[0])
	}
}

func TestMonotoneScoreProperty(t *testing.T) {
	// Property: with non-negative weights, raising any input never
	// lowers the sigmoid output of a single-layer net.
	n := New(6, []int{4, 1}, Linear, Sigmoid)
	n.ProjectNonNegative()
	f := func(a, b, c, d float64, bump float64) bool {
		abs := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(math.Abs(x), 1)
		}
		x := []float64{abs(a), abs(b), abs(c), abs(d)}
		base := n.Forward(x)[0]
		x[0] += math.Abs(math.Mod(bump, 1))
		raised := n.Forward(x)[0]
		return raised >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClearGradsKeepsWeights(t *testing.T) {
	n := New(2, []int{2, 1}, Linear, Sigmoid)
	x := []float64{1, -1}
	before := n.Forward(x)[0]
	n.TrainSample(x, []float64{1})
	n.ClearGrads()
	n.Step(1.0, 0, 1) // cleared gradients: weights must not move
	if after := n.Forward(x)[0]; after != before {
		t.Fatalf("ClearGrads did not discard gradients: %v -> %v", before, after)
	}
}
