// Package ml is a small, dependency-free neural-network library: dense
// layers of arbitrary depth, sigmoid/tanh/ReLU activations, backpropagation
// and SGD with momentum. It plays the role Keras and FANN play in the paper:
// the AM-GAN generator and discriminator, the EVAX/PerSpectron detectors and
// the deep detectors of Figure 20 are all built on it.
//
// Everything is deterministic given the construction seed.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer nonlinearity.
type Activation int

const (
	// Linear is the identity.
	Linear Activation = iota
	// ReLU is max(0, x).
	ReLU
	// LeakyReLU is x for x>0, 0.01x otherwise (GAN-friendly).
	LeakyReLU
	// Sigmoid is 1/(1+e^-x).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case LeakyReLU:
		if x < 0 {
			return 0.01 * x
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	}
	return x
}

// deriv computes the activation derivative given the *output* value y.
func (a Activation) deriv(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case LeakyReLU:
		if y > 0 {
			return 1
		}
		return 0.01
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	}
	return 1
}

// Layer is one dense layer.
type Layer struct {
	In, Out int
	Act     Activation
	// W[o][i] is the weight from input i to output o; B[o] the bias.
	W [][]float64
	B []float64

	// Caches for backprop (single sample at a time).
	x     []float64 // last input
	y     []float64 // last output (post-activation)
	delta []float64 // dL/dz for the last sample

	// Accumulated gradients and momentum.
	gradW [][]float64
	gradB []float64
	velW  [][]float64
	velB  []float64
}

// Network is a feed-forward stack of dense layers.
type Network struct {
	Layers []*Layer
}

// New creates a network with the given layer sizes, e.g. sizes =
// [145, 64, 1] builds 145→64→1. hidden and out select activations. Weights
// use scaled (He/Xavier-style) initialization from the seeded RNG.
func New(seed int64, sizes []int, hidden, out Activation) *Network {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("ml: need at least 2 sizes, got %v", sizes))
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{}
	for l := 0; l+1 < len(sizes); l++ {
		act := hidden
		if l == len(sizes)-2 {
			act = out
		}
		n.Layers = append(n.Layers, newLayer(rng, sizes[l], sizes[l+1], act))
	}
	return n
}

func newLayer(rng *rand.Rand, in, out int, act Activation) *Layer {
	l := &Layer{In: in, Out: out, Act: act}
	scale := math.Sqrt(2 / float64(in))
	if act == Sigmoid || act == Tanh || act == Linear {
		scale = math.Sqrt(1 / float64(in))
	}
	l.W = make([][]float64, out)
	l.gradW = make([][]float64, out)
	l.velW = make([][]float64, out)
	for o := 0; o < out; o++ {
		l.W[o] = make([]float64, in)
		l.gradW[o] = make([]float64, in)
		l.velW[o] = make([]float64, in)
		for i := 0; i < in; i++ {
			l.W[o][i] = rng.NormFloat64() * scale
		}
	}
	l.B = make([]float64, out)
	l.gradB = make([]float64, out)
	l.velB = make([]float64, out)
	l.x = make([]float64, in)
	l.y = make([]float64, out)
	l.delta = make([]float64, out)
	return l
}

// InputSize returns the network's input dimensionality.
func (n *Network) InputSize() int { return n.Layers[0].In }

// OutputSize returns the network's output dimensionality.
func (n *Network) OutputSize() int { return n.Layers[len(n.Layers)-1].Out }

// Forward runs one sample through the network, returning the output slice
// (owned by the network; copy if retaining).
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		copy(l.x, x)
		for o := 0; o < l.Out; o++ {
			z := l.B[o]
			w := l.W[o]
			for i, xi := range x {
				z += w[i] * xi
			}
			l.y[o] = l.Act.apply(z)
		}
		x = l.y
	}
	return x
}

// Backward backpropagates dL/dOutput for the most recent Forward sample,
// accumulating parameter gradients. It returns dL/dInput (the gradient the
// GAN feeds from discriminator into generator).
func (n *Network) Backward(gradOut []float64) []float64 {
	grad := gradOut
	for li := len(n.Layers) - 1; li >= 0; li-- {
		l := n.Layers[li]
		for o := 0; o < l.Out; o++ {
			l.delta[o] = grad[o] * l.Act.deriv(l.y[o])
		}
		for o := 0; o < l.Out; o++ {
			d := l.delta[o]
			gw := l.gradW[o]
			for i, xi := range l.x {
				gw[i] += d * xi
			}
			l.gradB[o] += d
		}
		next := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			d := l.delta[o]
			w := l.W[o]
			for i := range next {
				next[i] += d * w[i]
			}
		}
		grad = next
	}
	return grad
}

// Step applies accumulated gradients with SGD + momentum and clears them.
// batch is the number of samples accumulated since the last Step.
func (n *Network) Step(lr, momentum float64, batch int) {
	if batch < 1 {
		batch = 1
	}
	inv := 1 / float64(batch)
	for _, l := range n.Layers {
		for o := 0; o < l.Out; o++ {
			for i := 0; i < l.In; i++ {
				v := momentum*l.velW[o][i] - lr*l.gradW[o][i]*inv
				l.velW[o][i] = v
				l.W[o][i] += v
				l.gradW[o][i] = 0
			}
			v := momentum*l.velB[o] - lr*l.gradB[o]*inv
			l.velB[o] = v
			l.B[o] += v
			l.gradB[o] = 0
		}
	}
}

// ProjectNonNegative clamps every weight to be >= 0 (biases unconstrained).
// Projected after each optimizer step, this trains a monotone classifier:
// for detectors over activity counters it guarantees that *more* anomalous
// activity never lowers the suspicion score — closing the
// negative-weight evasion channel adversarial perturbations exploit.
func (n *Network) ProjectNonNegative() {
	for _, l := range n.Layers {
		for o := 0; o < l.Out; o++ {
			for i := 0; i < l.In; i++ {
				if l.W[o][i] < 0 {
					l.W[o][i] = 0
				}
			}
		}
	}
}

// ClearGrads discards accumulated gradients without touching weights or
// momentum (used when a backward pass was only needed for its input
// gradient, as in GAN generator training).
func (n *Network) ClearGrads() {
	for _, l := range n.Layers {
		for o := 0; o < l.Out; o++ {
			for i := 0; i < l.In; i++ {
				l.gradW[o][i] = 0
			}
			l.gradB[o] = 0
		}
	}
}

// Clone deep-copies the network parameters (caches and momentum excluded).
func (n *Network) Clone() *Network {
	c := &Network{}
	for _, l := range n.Layers {
		nl := newLayer(rand.New(rand.NewSource(0)), l.In, l.Out, l.Act)
		for o := range l.W {
			copy(nl.W[o], l.W[o])
		}
		copy(nl.B, l.B)
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// NumParams counts trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.In*l.Out + l.Out
	}
	return total
}

// MSE returns the mean squared error and writes dL/dPred into grad.
func MSE(pred, target, grad []float64) float64 {
	var loss float64
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / float64(len(pred))
	}
	return loss / float64(len(pred))
}

// BCE returns binary cross-entropy loss and writes dL/dPred into grad.
// Predictions are clamped away from {0,1} for numerical stability.
func BCE(pred, target, grad []float64) float64 {
	const eps = 1e-7
	var loss float64
	for i := range pred {
		p := math.Min(math.Max(pred[i], eps), 1-eps)
		t := target[i]
		loss += -(t*math.Log(p) + (1-t)*math.Log(1-p))
		grad[i] = (p - t) / (p * (1 - p)) / float64(len(pred))
	}
	return loss / float64(len(pred))
}

// TrainSample is one forward/backward/no-step pass with BCE loss; callers
// batch several and then Step.
func (n *Network) TrainSample(x, target []float64) float64 {
	pred := n.Forward(x)
	grad := make([]float64, len(pred))
	loss := BCE(pred, target, grad)
	n.Backward(grad)
	return loss
}
