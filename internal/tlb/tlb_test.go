package tlb

import (
	"testing"

	"evax/internal/isa"
)

func TestMissThenHit(t *testing.T) {
	tb := New(DefaultDTLB())
	r1 := tb.Translate(0x1000, false)
	if !r1.Miss || r1.Latency != 31 {
		t.Fatalf("first access = %+v, want miss with walk", r1)
	}
	r2 := tb.Translate(0x1FF8, false) // same page
	if r2.Miss || r2.Latency != 1 {
		t.Fatalf("same-page access = %+v, want hit", r2)
	}
	if tb.Stats.RdMisses != 1 || tb.Stats.RdHits != 1 || tb.Stats.Walks != 1 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestWriteCounters(t *testing.T) {
	tb := New(DefaultDTLB())
	tb.Translate(0x2000, true)
	tb.Translate(0x2008, true)
	if tb.Stats.WrMisses != 1 || tb.Stats.WrHits != 1 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	tb := New(Config{Entries: 2, WalkLatency: 10})
	tb.Translate(0*PageSize, false)
	tb.Translate(1*PageSize, false)
	tb.Translate(0*PageSize, false) // page 1 is now LRU
	tb.Translate(2*PageSize, false) // evicts page 1
	r := tb.Translate(0*PageSize, false)
	if r.Miss {
		t.Fatal("MRU page evicted")
	}
	r = tb.Translate(1*PageSize, false)
	if !r.Miss {
		t.Fatal("LRU page not evicted")
	}
}

func TestKernelPermFault(t *testing.T) {
	tb := New(DefaultDTLB())
	r := tb.Translate(isa.KernelBase+0x40, false)
	if !r.Fault {
		t.Fatal("kernel access did not fault")
	}
	if tb.Stats.PermFault != 1 {
		t.Fatalf("perm faults = %d", tb.Stats.PermFault)
	}
	// Translation still completes (transient window).
	if r.Latency == 0 {
		t.Fatal("faulting translation had zero latency")
	}
}

func TestFlush(t *testing.T) {
	tb := New(DefaultDTLB())
	tb.Translate(0x1000, false)
	tb.Translate(0x5000, false)
	if tb.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", tb.Occupancy())
	}
	tb.Flush()
	if tb.Occupancy() != 0 {
		t.Fatal("entries survived flush")
	}
	if r := tb.Translate(0x1000, false); !r.Miss {
		t.Fatal("hit after flush")
	}
	if tb.Stats.Flushes != 1 {
		t.Fatalf("flushes = %d", tb.Stats.Flushes)
	}
}
