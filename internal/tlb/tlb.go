// Package tlb models the instruction and data translation lookaside buffers.
// Translations are identity-mapped (the simulator runs one address space);
// what matters for detection is the event stream: rdMisses/wrMisses, page
// walks, and kernel-permission faults — `dtlb.rdMisses` is one of the HPCs
// the paper's engineered security counters combine (Table I, row 3).
package tlb

import "evax/internal/isa"

// PageSize is the translation granule.
const PageSize = 4096

// Config sizes a TLB.
type Config struct {
	Entries     int
	WalkLatency uint64 // page-table walk cost on a miss, in cycles
}

// DefaultDTLB returns a 64-entry data TLB with a 30-cycle walk.
func DefaultDTLB() Config { return Config{Entries: 64, WalkLatency: 30} }

// DefaultITLB returns a 48-entry instruction TLB with a 30-cycle walk.
func DefaultITLB() Config { return Config{Entries: 48, WalkLatency: 30} }

// Stats counts TLB events.
type Stats struct {
	RdHits    uint64
	RdMisses  uint64
	WrHits    uint64
	WrMisses  uint64
	Walks     uint64
	PermFault uint64 // user access to a kernel page
	Flushes   uint64
}

type entry struct {
	page  uint64
	valid bool
	lru   uint64
}

// TLB is a fully-associative LRU translation buffer.
type TLB struct {
	cfg     Config
	entries []entry
	clock   uint64

	Stats Stats
}

// New creates a TLB.
func New(cfg Config) *TLB {
	return &TLB{cfg: cfg, entries: make([]entry, cfg.Entries)}
}

// Result describes one translation.
type Result struct {
	Latency uint64
	Miss    bool
	// Fault is set for user-mode access to kernel pages. The translation
	// still completes (the transient window exists because permission
	// checks resolve late).
	Fault bool
}

// Translate looks up the page containing addr. write selects the rd/wr
// counter set.
func (t *TLB) Translate(addr uint64, write bool) Result {
	t.clock++
	page := addr / PageSize
	res := Result{Fault: addr >= isa.KernelBase}
	if res.Fault {
		t.Stats.PermFault++
	}
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.entries[i].lru = t.clock
			if write {
				t.Stats.WrHits++
			} else {
				t.Stats.RdHits++
			}
			res.Latency = 1
			return res
		}
	}
	// Miss: walk and install over the LRU entry.
	if write {
		t.Stats.WrMisses++
	} else {
		t.Stats.RdMisses++
	}
	t.Stats.Walks++
	v := &t.entries[0]
	for i := 1; i < len(t.entries); i++ {
		if !t.entries[i].valid {
			v = &t.entries[i]
			break
		}
		if t.entries[i].lru < v.lru {
			v = &t.entries[i]
		}
	}
	v.page = page
	v.valid = true
	v.lru = t.clock
	res.Miss = true
	res.Latency = 1 + t.cfg.WalkLatency
	return res
}

// Flush invalidates every entry (context switch / syscall return).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.Stats.Flushes++
}

// Occupancy reports how many entries are valid.
func (t *TLB) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
