// Package testleak asserts that a test leaves no project goroutines
// behind. The serving stack owns long-lived goroutines (connection
// readers, shard batchers, swap coordinators); every teardown path —
// drain, idle reaping, injected faults, canary rollback — must join all
// of them, or leaked readers accumulate across a process lifetime and
// hold connections, buffers and file descriptors forever.
package testleak

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check arms a goroutine-leak assertion for the current test: at cleanup
// time, no goroutine other than the test's own may still be running
// project code. Register it BEFORE starting servers or clients — cleanups
// run last-in-first-out, so checks registered first observe the world
// after every later-registered teardown has finished.
//
// Teardown is allowed a grace period: goroutines unwinding from a just
// closed listener are retried, not reported.
func Check(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		var leaked []string
		for i := 0; i < 100; i++ {
			leaked = projectGoroutines()
			if len(leaked) == 0 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("testleak: %d goroutine(s) still running project code after teardown:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// projectGoroutines returns the stack of every goroutine — except the
// caller's own — with a project function ("evax/...") anywhere in it.
// Runtime, testing-harness and stdlib service goroutines never match, so
// no fragile ignore-list is needed.
func projectGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	records := strings.Split(string(buf[:n]), "\n\n")
	var out []string
	for i, rec := range records {
		if i == 0 {
			continue // the calling goroutine: the test/cleanup itself
		}
		if strings.Contains(rec, "evax/") {
			out = append(out, rec)
		}
	}
	return out
}
