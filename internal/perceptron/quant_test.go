package perceptron

import (
	"math"
	"testing"
)

// Table-driven edge cases for the binarized hardware quantizer (Quantize):
// degenerate weight vectors must still produce a usable hardware config.
func TestQuantizeEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		w     []float64
		bias  float64
		wantW []int8
		wantB int8
	}{
		{
			// All-zero model: scale falls back to 2/1, every weight maps
			// to 0, and prediction degenerates to the bias sign.
			name:  "all zero weights",
			w:     []float64{0, 0, 0, 0},
			bias:  0,
			wantW: []int8{0, 0, 0, 0},
			wantB: 0,
		},
		{
			// One dominant weight: it pins the scale, so it maps exactly
			// to the clamp edge and the small weights vanish to 0.
			name:  "dominant weight clamps",
			w:     []float64{100, 0.01, -0.01},
			bias:  0.02,
			wantW: []int8{1, 0, 0},
			wantB: 0,
		},
		{
			// Dominant negative weight maps to the -2 edge of the paper's
			// [-2, 1] range.
			name:  "dominant negative weight",
			w:     []float64{-100, 0.01},
			bias:  0,
			wantW: []int8{-2, 0},
			wantB: 0,
		},
		{
			// Bias larger than every weight sets the scale.
			name:  "bias dominates",
			w:     []float64{0.5, -0.5},
			bias:  -4,
			wantW: []int8{0, 0},
			wantB: -2,
		},
		{
			// Uniform magnitudes: everything lands on the clamp edges.
			name:  "uniform magnitudes",
			w:     []float64{1, -1, 1},
			bias:  1,
			wantW: []int8{1, -2, 1},
			wantB: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(len(tc.w))
			copy(p.W, tc.w)
			p.Bias = tc.bias
			q := p.Quantize()
			for i, w := range q.W {
				if w < -2 || w > 1 {
					t.Fatalf("weight %d = %d outside the paper's [-2, 1] range", i, w)
				}
				if w != tc.wantW[i] {
					t.Errorf("W[%d] = %d, want %d", i, w, tc.wantW[i])
				}
			}
			if q.Bias != tc.wantB {
				t.Errorf("Bias = %d, want %d", q.Bias, tc.wantB)
			}
			if q.Scale <= 0 || math.IsInf(q.Scale, 0) || math.IsNaN(q.Scale) {
				t.Errorf("Scale = %v, want finite positive", q.Scale)
			}
		})
	}
}

// AccumulatorBits must cover the worst-case accumulator span for any weight
// count: with weights in [-2, 1] over n features the range is [-2n, n].
func TestQuantizeAccumulatorBitsBounds(t *testing.T) {
	for _, n := range []int{1, 2, 9, 145, 805} {
		p := New(n)
		for i := range p.W {
			if i%2 == 0 {
				p.W[i] = 1
			} else {
				p.W[i] = -1
			}
		}
		q := p.Quantize()
		bits := q.AccumulatorBits()
		span := 3*n + 1 // -2n .. +n inclusive
		if 1<<bits < span {
			t.Errorf("n=%d: %d bits hold %d values, span is %d", n, bits, 1<<bits, span)
		}
		if bits > 1 && 1<<(bits-1) >= span {
			t.Errorf("n=%d: %d bits is not minimal for span %d", n, bits, span)
		}
	}
	// The paper's 145-feature configuration needs exactly 9 bits.
	q := &Quantized{W: make([]int8, 145)}
	if got := q.AccumulatorBits(); got != 9 {
		t.Errorf("145 features: AccumulatorBits = %d, want 9", got)
	}
}

// Table-driven edge cases for the real-feature quantizer (QuantizeLinear):
// the scale ladder, the int8 clamp, and the accumulator width.
func TestQuantizeLinearEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		w         []float64
		bias      float64
		wantShift uint
		check     func(t *testing.T, q *QuantizedLinear)
	}{
		{
			// All-zero model: the ladder climbs to its cap instead of
			// dividing by zero, weights and bias stay zero.
			name:      "all zero weights",
			w:         []float64{0, 0, 0},
			bias:      0,
			wantShift: maxWeightShift,
			check: func(t *testing.T, q *QuantizedLinear) {
				for i, w := range q.W {
					if w != 0 {
						t.Errorf("W[%d] = %d, want 0", i, w)
					}
				}
				if q.Bias != 0 {
					t.Errorf("Bias = %d, want 0", q.Bias)
				}
			},
		},
		{
			// A weight too large for even scale 1 saturates at the int8
			// clamp rather than failing.
			name:      "dominant weight clamps to int8",
			w:         []float64{1000, -1000, 0.5},
			bias:      0,
			wantShift: 0,
			check: func(t *testing.T, q *QuantizedLinear) {
				if q.W[0] != 127 || q.W[1] != -128 {
					t.Errorf("W = %v, want clamp edges 127/-128", q.W[:2])
				}
			},
		},
		{
			// Weights near 1 take scale 64: round(1.0 * 128) = 128 > 127
			// stops the ladder one rung below.
			name:      "unit weights take scale 64",
			w:         []float64{1, -1},
			bias:      0,
			wantShift: 6,
			check: func(t *testing.T, q *QuantizedLinear) {
				if q.W[0] != 64 || q.W[1] != -64 {
					t.Errorf("W = %v, want ±64", q.W)
				}
			},
		},
		{
			// Tiny weights stop at the ladder cap instead of blowing tiny
			// float noise up to full int8 range.
			name:      "tiny weights capped at ladder top",
			w:         []float64{1e-9, -1e-9},
			bias:      0,
			wantShift: maxWeightShift,
			check:     func(t *testing.T, q *QuantizedLinear) {},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := QuantizeLinear(tc.w, tc.bias)
			if q.Shift != tc.wantShift {
				t.Errorf("Shift = %d, want %d", q.Shift, tc.wantShift)
			}
			if q.AccBits < 1 || q.AccBits > 31 {
				t.Errorf("AccBits = %d outside [1, 31]", q.AccBits)
			}
			tc.check(t, q)
		})
	}
}

// The dequantization scale must round-trip representable weights: for a
// weight grid exactly on the chosen scale, Dequant(Accumulate(one-hot XOne))
// recovers w + bias exactly.
func TestQuantizeLinearScaleRoundTrip(t *testing.T) {
	w := []float64{0.25, -0.5, 0.75, -1.0, 0.125}
	bias := 0.5
	q := QuantizeLinear(w, bias)
	scale := q.Scale()
	if want := float64(int64(1)<<q.Shift) * XOne; scale != want { //evaxlint:ignore floateq exact power-of-two identity
		t.Fatalf("Scale = %v, want %v", scale, want)
	}
	for i, wi := range w {
		qx := make([]int32, len(w))
		qx[i] = XOne
		got := q.Dequant(q.Accumulate(qx))
		if got != wi+bias { //evaxlint:ignore floateq grid weights are exact in fixed point
			t.Errorf("w[%d]: round-trip %v, want %v", i, got, wi+bias)
		}
	}
}

// AccBits must cover the true worst-case span so that plain int32 adds can
// never overflow before the final clamp, and a span beyond int32 pins to 31.
func TestQuantizeLinearAccBitsBounds(t *testing.T) {
	// Worst-case accumulation at the computed width never exceeds the
	// signed range: drive every input to XOne with all-positive weights.
	q := QuantizeLinear([]float64{1, 1, 1, 1}, 1)
	qx := []int32{XOne, XOne, XOne, XOne}
	acc := q.Accumulate(qx)
	if hi := int32(1)<<(q.AccBits-1) - 1; acc > hi {
		t.Errorf("acc %d exceeds %d-bit range %d", acc, q.AccBits, hi)
	}
	want := int64(q.Bias)
	for _, wi := range q.W {
		want += int64(wi) * XOne
	}
	if int64(acc) != want && acc != int32(1)<<(q.AccBits-1)-1 {
		t.Errorf("acc = %d, want exact sum %d or saturation", acc, want)
	}

	// A model whose span exceeds int32 pins AccBits to 31 — the kernel
	// refuses those (plain-add equivalence needs headroom), but the width
	// itself must stay a valid int32 clamp.
	big := make([]float64, 1<<16)
	for i := range big {
		big[i] = 1000
	}
	qb := QuantizeLinear(big, 0)
	if qb.AccBits != 31 {
		t.Errorf("oversized span: AccBits = %d, want 31", qb.AccBits)
	}
	// Saturating adds at the 31-bit width clamp to ±2^30 instead of
	// wrapping.
	hi, lo := int32(1)<<30-1, -(int32(1) << 30)
	if got := qb.SatAdd(hi-1, 100); got != hi {
		t.Errorf("SatAdd(%d, 100) = %d, want clamp at %d", hi-1, got, hi)
	}
	if got := qb.SatAdd(lo+1, -100); got != lo {
		t.Errorf("SatAdd(%d, -100) = %d, want clamp at %d", lo+1, got, lo)
	}
}
