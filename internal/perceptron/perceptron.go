// Package perceptron models the paper's hardware detector: a single-layer
// perceptron over binarized HPC features with 9-bit quantized weights in
// [-2, 1], evaluated by a serial single-adder dot product (a few hundred
// cycles worst case, ~4000 transistors — Section VI-B of the paper).
//
// The float-weight perceptron here is the training-time model; Quantize
// produces the deployable hardware configuration and the cost model.
package perceptron

import (
	"math"

	"evax/internal/fmath"
)

// Binarizer thresholds normalized feature values into the 0/1 inputs the
// hardware consumes ("since 0 and 1 are the only possible input values,
// multiplication is unnecessary").
type Binarizer struct {
	Thresholds []float64
}

// FitBinarizer sets each feature's threshold to its mean over the training
// samples (features are max-normalized upstream, so the mean splits typical
// from elevated activity).
func FitBinarizer(samples [][]float64) *Binarizer {
	if len(samples) == 0 {
		return &Binarizer{}
	}
	n := len(samples[0])
	th := make([]float64, n)
	for _, s := range samples {
		for i, v := range s {
			th[i] += v
		}
	}
	for i := range th {
		th[i] /= float64(len(samples))
		if th[i] <= 0 {
			th[i] = 0.5 // never-firing feature: require real activity
		}
	}
	return &Binarizer{Thresholds: th}
}

// Binarize writes the bit vector for x into out.
func (b *Binarizer) Binarize(x, out []float64) {
	for i, v := range x {
		if v > b.Thresholds[i] {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
}

// Perceptron is the float-weight training model.
type Perceptron struct {
	W    []float64
	Bias float64
}

// New creates a zero-weight perceptron for n features.
func New(n int) *Perceptron { return &Perceptron{W: make([]float64, n)} }

// Score returns the weighted sum for bit vector x.
func (p *Perceptron) Score(x []float64) float64 {
	s := p.Bias
	for i, v := range x {
		if v != 0 { //evaxlint:ignore floateq binarized inputs are exactly 0 or 1
			s += p.W[i] * v
		}
	}
	return s
}

// Predict reports malicious (score >= 0).
func (p *Perceptron) Predict(x []float64) bool { return p.Score(x) >= 0 }

// TrainEpoch runs one pass of margin-perceptron updates. labels are
// true=malicious. Returns the number of updates made (0 means converged).
func (p *Perceptron) TrainEpoch(samples [][]float64, labels []bool, lr, margin float64) int {
	updates := 0
	for k, x := range samples {
		score := p.Score(x)
		want := -1.0
		if labels[k] {
			want = 1
		}
		if score*want < margin {
			updates++
			for i, v := range x {
				if v != 0 { //evaxlint:ignore floateq binarized inputs are exactly 0 or 1
					p.W[i] += lr * want * v
				}
			}
			p.Bias += lr * want
		}
	}
	return updates
}

// Train runs up to epochs training passes, stopping early on convergence.
func (p *Perceptron) Train(samples [][]float64, labels []bool, epochs int, lr, margin float64) {
	for e := 0; e < epochs; e++ {
		if p.TrainEpoch(samples, labels, lr, margin) == 0 {
			return
		}
	}
}

// Quantized is the hardware configuration: weights clamped to the paper's
// [-2, 1] range after scaling. With 145 weights the accumulator range is
// [-290, +145]: 435 distinct values, 9 bits.
type Quantized struct {
	W     []int8
	Bias  int8
	Scale float64
}

// Quantize scales the float weights so the largest magnitude maps within
// [-2, 1] and rounds.
func (p *Perceptron) Quantize() *Quantized {
	var maxAbs float64
	for _, w := range p.W {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	if a := math.Abs(p.Bias); a > maxAbs {
		maxAbs = a
	}
	if fmath.Zero(maxAbs) {
		maxAbs = 1
	}
	scale := 2 / maxAbs
	q := &Quantized{W: make([]int8, len(p.W)), Scale: scale}
	clamp := func(v float64) int8 {
		r := math.Round(v * scale)
		if r < -2 {
			r = -2
		}
		if r > 1 {
			r = 1
		}
		return int8(r)
	}
	for i, w := range p.W {
		q.W[i] = clamp(w)
	}
	q.Bias = clamp(p.Bias)
	return q
}

// Score computes the integer accumulator value for bit vector x.
func (q *Quantized) Score(x []float64) int {
	s := int(q.Bias)
	for i, v := range x {
		if v != 0 { //evaxlint:ignore floateq binarized inputs are exactly 0 or 1
			s += int(q.W[i])
		}
	}
	return s
}

// Predict reports malicious.
func (q *Quantized) Predict(x []float64) bool { return q.Score(x) >= 0 }

// AccumulatorBits returns the bits needed by the serial accumulator:
// weights in [-2,1] over n features span [-2n, n].
func (q *Quantized) AccumulatorBits() int {
	n := len(q.W)
	span := 3*n + 1 // -2n .. +n inclusive
	bits := 0
	for v := 1; v < span; v <<= 1 {
		bits++
	}
	return bits
}

// LatencyCycles is the serial single-adder evaluation time: one add per
// set input bit plus drain — "a result in a few hundred cycles in the worst
// case".
func (q *Quantized) LatencyCycles() int { return len(q.W) + 8 }

// TransistorEstimate roughly costs the dot-product logic: a 9-bit adder
// (~28 transistors/bit full adder) plus accumulator and control — the
// paper estimates no more than 4,000.
func (q *Quantized) TransistorEstimate() int {
	bits := q.AccumulatorBits()
	return bits*28 /*adder*/ + bits*12 /*accumulator*/ + 2*len(q.W) /*input mux*/ + 500
}
