package perceptron_test

import (
	"fmt"

	"evax/internal/perceptron"
)

// Example shows the hardware cost model of the paper's 145-feature
// detector: 9-bit accumulator, serial single-adder evaluation, well under
// the 4000-transistor estimate.
func Example() {
	p := perceptron.New(145)
	q := p.Quantize()
	fmt.Println("accumulator bits:", q.AccumulatorBits())
	fmt.Println("under 4000 transistors:", q.TransistorEstimate() <= 4000)
	fmt.Println("latency is a few hundred cycles:", q.LatencyCycles() < 400)
	// Output:
	// accumulator bits: 9
	// under 4000 transistors: true
	// latency is a few hundred cycles: true
}
