package perceptron

import "math"

// This file extends the paper's binarized hardware perceptron (Quantized)
// to the real feature space the software detectors score: instead of 0/1
// inputs, features are max-normalized reals in [0,1], fixed-point encoded
// at Q(XShift) precision, and multiplied against int8 weights on a
// power-of-two scale ladder into a saturating integer accumulator. This is
// the arithmetic model behind the fused kernel's quantized backend
// (internal/kernel): quantized inference is fidelity to the paper's
// HW-style detector *and* the fastest serving path.

// XShift is the input fixed-point precision: a normalized feature x in
// [0,1] encodes as qx = round(x * 2^XShift), so qx spans [0, XOne]. One
// sign-free byte plus one bit — inputs fit int16 lanes with headroom for
// the engineered-feature product shift.
const XShift = 8

// XOne is the fixed-point encoding of feature value 1.0.
const XOne = 1 << XShift

// maxWeightShift caps the weight scale ladder: tiny-weight models stop
// climbing here instead of amplifying float noise into full int8 range.
const maxWeightShift = 12

// QuantizedLinear is a quantized single-layer model over real-valued
// features: int8 weights at scale 2^Shift, bias pre-scaled into accumulator
// units, and a saturating accumulator of AccBits bits. The dequantized
// pre-activation is acc / (2^Shift * 2^XShift).
type QuantizedLinear struct {
	W []int8
	// Bias is the model bias in accumulator units (weight scale × input
	// scale), so Accumulate seeds with it directly.
	Bias int32
	// Shift is the weight scale exponent chosen from the power-of-two
	// ladder: wq = round(w * 2^Shift), clamped to the int8 range.
	Shift uint
	// AccBits is the saturating accumulator width: the smallest signed
	// width holding the worst-case span Σ|W|·XOne + |Bias|. Partial sums
	// are monotone in that span (inputs are non-negative), so clamping at
	// AccBits is exactly the hardware's per-add saturation.
	AccBits int
}

// QuantizeLinear builds the quantized model for float weights and bias.
// The scale ladder picks the largest power-of-two weight scale whose
// largest scaled magnitude still fits int8; an all-zero model takes the
// ladder top. A single weight too large for even scale 1 saturates to the
// int8 clamp — the same behavior as the binarized model's [-2,1] clamp,
// just at 8-bit resolution.
func QuantizeLinear(w []float64, bias float64) *QuantizedLinear {
	maxAbs := math.Abs(bias)
	for _, wi := range w {
		if a := math.Abs(wi); a > maxAbs {
			maxAbs = a
		}
	}
	shift := uint(0)
	for shift < maxWeightShift {
		if math.Round(maxAbs*float64(int64(1)<<(shift+1))) > 127 {
			break
		}
		shift++
	}
	scale := float64(int64(1) << shift)
	q := &QuantizedLinear{W: make([]int8, len(w)), Shift: shift}
	for i, wi := range w {
		q.W[i] = clampInt8(math.Round(wi * scale))
	}
	q.Bias = int32(clampToBits(int64(math.Round(bias*scale*XOne)), 31))
	span := int64(q.Bias)
	if span < 0 {
		span = -span
	}
	for _, wi := range q.W {
		a := int64(wi)
		if a < 0 {
			a = -a
		}
		span += a * XOne
	}
	bits := 1 // sign bit
	for v := int64(1); v <= span; v <<= 1 {
		bits++
	}
	if bits > 31 {
		bits = 31
	}
	q.AccBits = bits
	return q
}

// Scale returns the combined dequantization divisor: weight scale × input
// scale. Dequant(acc) = acc / Scale() recovers the float pre-activation.
func (q *QuantizedLinear) Scale() float64 {
	return float64(int64(1)<<q.Shift) * XOne
}

// Dequant maps an accumulator value back to the float pre-activation.
func (q *QuantizedLinear) Dequant(acc int32) float64 {
	return float64(acc) / q.Scale()
}

// QuantizeInput fixed-point encodes one normalized feature value, clamping
// to [0, XOne] (the max-normalization clamp in integer form).
func QuantizeInput(x float64) int32 {
	if x <= 0 {
		return 0
	}
	v := int32(x*XOne + 0.5)
	if v > XOne {
		return XOne
	}
	return v
}

// SatAdd adds delta into acc saturating at the model's accumulator width —
// the serial adder's overflow behavior.
func (q *QuantizedLinear) SatAdd(acc, delta int32) int32 {
	return int32(clampToBits(int64(acc)+int64(delta), q.AccBits))
}

// Accumulate runs the quantized dot product over fixed-point inputs
// (len == len(W)), seeding with the bias and saturating every add.
func (q *QuantizedLinear) Accumulate(qx []int32) int32 {
	acc := q.Bias
	for i, v := range qx {
		acc = q.SatAdd(acc, int32(q.W[i])*v)
	}
	return acc
}

// clampInt8 rounds-and-clamps a scaled weight into int8.
func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// clampToBits clamps v to the signed range of the given bit width.
func clampToBits(v int64, bits int) int64 {
	hi := int64(1)<<(bits-1) - 1
	lo := -(int64(1) << (bits - 1))
	if v > hi {
		return hi
	}
	if v < lo {
		return lo
	}
	return v
}
