package perceptron

import (
	"math/rand"
	"testing"
)

func TestBinarizer(t *testing.T) {
	samples := [][]float64{
		{0.2, 0.0},
		{0.8, 0.0},
	}
	b := FitBinarizer(samples)
	if b.Thresholds[0] != 0.5 {
		t.Fatalf("threshold[0] = %v, want 0.5", b.Thresholds[0])
	}
	// Never-firing feature defaults to 0.5 so noise stays 0.
	if b.Thresholds[1] != 0.5 {
		t.Fatalf("threshold[1] = %v, want 0.5 default", b.Thresholds[1])
	}
	out := make([]float64, 2)
	b.Binarize([]float64{0.6, 0.1}, out)
	if out[0] != 1 || out[1] != 0 {
		t.Fatalf("binarized = %v", out)
	}
}

func TestFitBinarizerEmpty(t *testing.T) {
	b := FitBinarizer(nil)
	if len(b.Thresholds) != 0 {
		t.Fatal("empty fit produced thresholds")
	}
}

func makeLinearly(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	samples := make([][]float64, n)
	labels := make([]bool, n)
	for k := range samples {
		x := make([]float64, 8)
		for i := range x {
			if rng.Float64() < 0.5 {
				x[i] = 1
			}
		}
		samples[k] = x
		// Malicious iff bits 0 and 2 set and bit 5 clear (an AND-style
		// signature like the engineered security HPCs).
		labels[k] = x[0] == 1 && x[2] == 1 && x[5] == 0
	}
	return samples, labels
}

func TestTrainConverges(t *testing.T) {
	samples, labels := makeLinearly(400, 3)
	p := New(8)
	p.Train(samples, labels, 200, 0.5, 0.1)
	wrong := 0
	for k, x := range samples {
		if p.Predict(x) != labels[k] {
			wrong++
		}
	}
	if wrong > 8 {
		t.Fatalf("training errors = %d/400", wrong)
	}
}

func TestTrainEpochConvergedReturnsZero(t *testing.T) {
	samples := [][]float64{{1, 0}, {0, 1}}
	labels := []bool{true, false}
	p := New(2)
	p.Train(samples, labels, 100, 1, 0.5)
	if u := p.TrainEpoch(samples, labels, 1, 0); u != 0 {
		t.Fatalf("updates after convergence = %d", u)
	}
}

func TestQuantizePreservesDecisions(t *testing.T) {
	samples, labels := makeLinearly(400, 5)
	p := New(8)
	p.Train(samples, labels, 300, 0.5, 0.2)
	q := p.Quantize()
	agree := 0
	for _, x := range samples {
		if p.Predict(x) == q.Predict(x) {
			agree++
		}
	}
	if agree < 360 {
		t.Fatalf("quantized agreement %d/400", agree)
	}
	for _, w := range q.W {
		if w < -2 || w > 1 {
			t.Fatalf("weight %d outside [-2,1]", w)
		}
	}
}

func TestQuantizeZeroWeights(t *testing.T) {
	p := New(4)
	q := p.Quantize() // must not divide by zero
	for _, w := range q.W {
		if w != 0 {
			t.Fatal("zero perceptron quantized nonzero")
		}
	}
}

func TestHardwareCostModel(t *testing.T) {
	// The paper's configuration: 145 features, weights in [-2,1] ->
	// 9-bit accumulator, <=4000 transistors, a few hundred cycles.
	p := New(145)
	q := p.Quantize()
	if bits := q.AccumulatorBits(); bits != 9 {
		t.Fatalf("accumulator bits = %d, want 9", bits)
	}
	if lat := q.LatencyCycles(); lat < 145 || lat > 400 {
		t.Fatalf("latency = %d cycles, want a few hundred", lat)
	}
	if tr := q.TransistorEstimate(); tr > 4000 {
		t.Fatalf("transistor estimate = %d, paper bound 4000", tr)
	}
}

func TestScoreSparse(t *testing.T) {
	p := New(3)
	p.W = []float64{1, 2, 3}
	p.Bias = -1
	if s := p.Score([]float64{1, 0, 1}); s != 3 {
		t.Fatalf("score = %v, want 3", s)
	}
}
