package gram_test

import (
	"fmt"

	"evax/internal/gram"
)

// ExampleSeriesStyleLoss demonstrates the paper's attack-style metric: two
// windows with the same feature co-activation structure score near zero,
// while structurally different windows score high.
func ExampleSeriesStyleLoss() {
	// Features 0 and 1 fire together in both windows of "type A".
	typeA1 := [][]float64{{0.8, 0.8, 0}, {0.6, 0.6, 0}}
	typeA2 := [][]float64{{0.7, 0.7, 0}, {0.9, 0.9, 0}}
	// "Type B" co-activates features 1 and 2 instead.
	typeB := [][]float64{{0, 0.8, 0.8}, {0, 0.6, 0.6}}

	same := gram.SeriesStyleLoss(typeA1, typeA2, 1)
	cross := gram.SeriesStyleLoss(typeA1, typeB, 1)
	fmt.Println("same type is closer:", same < cross)
	// Output: same type is closer: true
}
