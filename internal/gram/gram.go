// Package gram implements the paper's interpretability and sample-quality
// metric: the Gram matrix of feature co-activation over a time window, and
// the attack style loss
//
//	L_GM(B, G) = 1/(4αN²) · Σᵢⱼ (GM(B)ᵢⱼ − GM(G)ᵢⱼ)²
//
// Two samples of the same attack *type* share leakage-phase correlation
// structure even when their raw feature values differ, so same-type pairs
// score near zero and cross-type pairs score high (paper Figures 6 and 7).
package gram

import "evax/internal/fmath"

// Matrix computes the Gram matrix of a feature time series: series[t][f] is
// feature f at time step t; the result G[i][j] = Σ_t series[t][i]·series[t][j],
// normalized by the number of time steps.
func Matrix(series [][]float64) [][]float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	g := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range g {
		g[i] = backing[i*n : (i+1)*n]
	}
	for _, row := range series {
		for i := 0; i < n; i++ {
			vi := row[i]
			if fmath.Zero(vi) {
				continue
			}
			gi := g[i]
			for j := 0; j < n; j++ {
				gi[j] += vi * row[j]
			}
		}
	}
	inv := 1 / float64(len(series))
	for i := range backing {
		backing[i] *= inv
	}
	return g
}

// VectorMatrix computes the Gram matrix of a single feature vector (outer
// product with itself) — the one-sample degenerate case used when a window
// has a single sample.
func VectorMatrix(v []float64) [][]float64 { return Matrix([][]float64{v}) }

// StyleLoss computes L_GM between two Gram matrices of equal dimension.
// alpha is the paper's constant (we use 1).
func StyleLoss(a, b [][]float64, alpha float64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	n := float64(len(a))
	var sum float64
	for i := range a {
		ai, bi := a[i], b[i]
		for j := range ai {
			d := ai[j] - bi[j]
			sum += d * d
		}
	}
	return sum / (4 * alpha * n * n)
}

// SeriesStyleLoss is StyleLoss over two raw feature time series.
func SeriesStyleLoss(base, generated [][]float64, alpha float64) float64 {
	return StyleLoss(Matrix(base), Matrix(generated), alpha)
}

// SubMatrix extracts the Gram matrix restricted to the given feature
// indices (the paper visualizes 3-feature sub-matrices in Figure 6).
func SubMatrix(g [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for a, i := range idx {
		out[a] = make([]float64, len(idx))
		for b, j := range idx {
			out[a][b] = g[i][j]
		}
	}
	return out
}

// TopPairs returns the k most strongly co-activated distinct feature pairs
// (i < j) in the Gram matrix — the interpretability view that surfaces
// pairs like (Conflicts in IQ, SquashedLoads) firing together in Meltdown.
func TopPairs(g [][]float64, k int) [][2]int {
	type pair struct {
		i, j int
		v    float64
	}
	var pairs []pair
	for i := range g {
		for j := i + 1; j < len(g); j++ {
			if !fmath.Zero(g[i][j]) {
				pairs = append(pairs, pair{i, j, g[i][j]})
			}
		}
	}
	// Selection sort for the top k (k is small).
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([][2]int, 0, k)
	for n := 0; n < k; n++ {
		best := n
		for m := n + 1; m < len(pairs); m++ {
			if pairs[m].v > pairs[best].v {
				best = m
			}
		}
		pairs[n], pairs[best] = pairs[best], pairs[n]
		out = append(out, [2]int{pairs[n].i, pairs[n].j})
	}
	return out
}
