package gram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasic(t *testing.T) {
	series := [][]float64{
		{1, 2},
		{3, 4},
	}
	g := Matrix(series)
	// G[0][0] = (1+9)/2 = 5, G[0][1] = (2+12)/2 = 7, G[1][1] = (4+16)/2 = 10
	want := [][]float64{{5, 7}, {7, 10}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(g[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("G[%d][%d] = %v, want %v", i, j, g[i][j], want[i][j])
			}
		}
	}
}

func TestMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([][]float64, 16)
	for i := range series {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.Float64()
		}
		series[i] = row
	}
	g := Matrix(series)
	for i := range g {
		for j := range g {
			if g[i][j] != g[j][i] {
				t.Fatalf("asymmetric at %d,%d", i, j)
			}
		}
		if g[i][i] < 0 {
			t.Fatalf("negative diagonal at %d", i)
		}
	}
}

func TestMatrixEmpty(t *testing.T) {
	if Matrix(nil) != nil {
		t.Fatal("empty series should give nil matrix")
	}
}

func TestStyleLossZeroForIdentical(t *testing.T) {
	series := [][]float64{{1, 0, 2}, {0, 1, 1}}
	if l := SeriesStyleLoss(series, series, 1); l != 0 {
		t.Fatalf("self style loss = %v", l)
	}
}

// TestStyleLossSeparatesTypes is the core property behind Figure 6: two
// windows with the same correlation structure but different magnitudes are
// closer in style than windows with different structure.
func TestStyleLossSeparatesTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(corr bool, scale float64) [][]float64 {
		series := make([][]float64, 32)
		for i := range series {
			a := rng.Float64() * scale
			b := rng.Float64() * scale
			if corr {
				// Features 0 and 1 fire together; feature 2 independent.
				series[i] = []float64{a, a * 0.9, b}
			} else {
				// Features 1 and 2 fire together instead.
				series[i] = []float64{a, b, b * 0.9}
			}
		}
		return series
	}
	base := mk(true, 1)
	sameType := mk(true, 1) // different random values, same structure
	diffType := mk(false, 1)
	same := SeriesStyleLoss(base, sameType, 1)
	diff := SeriesStyleLoss(base, diffType, 1)
	if same >= diff {
		t.Fatalf("same-type style loss (%v) not below cross-type (%v)", same, diff)
	}
}

func TestStyleLossScaleByAlphaAndN(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := [][]float64{{0, 0}, {0, 0}}
	l1 := StyleLoss(a, b, 1)
	l2 := StyleLoss(a, b, 2)
	if math.Abs(l1-2*l2) > 1e-12 {
		t.Fatalf("alpha scaling wrong: %v vs %v", l1, l2)
	}
	// sum of squares = 2, n = 2 -> 2/(4*1*4) = 0.125
	if math.Abs(l1-0.125) > 1e-12 {
		t.Fatalf("l1 = %v, want 0.125", l1)
	}
}

func TestStyleLossMismatchedDims(t *testing.T) {
	a := [][]float64{{1}}
	b := [][]float64{{1, 0}, {0, 1}}
	if l := StyleLoss(a, b, 1); l != 0 {
		t.Fatalf("mismatched dims should return 0, got %v", l)
	}
}

func TestVectorMatrix(t *testing.T) {
	g := VectorMatrix([]float64{2, 3})
	if g[0][0] != 4 || g[0][1] != 6 || g[1][1] != 9 {
		t.Fatalf("outer product wrong: %v", g)
	}
}

func TestSubMatrix(t *testing.T) {
	g := Matrix([][]float64{{1, 2, 3}, {4, 5, 6}})
	sub := SubMatrix(g, []int{0, 2})
	if sub[0][0] != g[0][0] || sub[0][1] != g[0][2] || sub[1][1] != g[2][2] {
		t.Fatalf("submatrix wrong: %v", sub)
	}
}

func TestTopPairs(t *testing.T) {
	// Features 0 and 1 strongly co-fire; 2 is independent noise.
	series := make([][]float64, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range series {
		a := rng.Float64()
		series[i] = []float64{a, a, rng.Float64() * 0.1}
	}
	g := Matrix(series)
	top := TopPairs(g, 1)
	if len(top) != 1 || top[0] != [2]int{0, 1} {
		t.Fatalf("top pair = %v, want [0 1]", top)
	}
	if got := TopPairs(g, 100); len(got) != 3 {
		t.Fatalf("k clamp failed: %d pairs", len(got))
	}
}

func TestGramPositiveSemidefiniteProperty(t *testing.T) {
	// Property: a Gram matrix is positive semidefinite — xᵀGx >= 0 for
	// every x (testing/quick over random series and probe vectors).
	f := func(seed int64, probe [4]float64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := make([][]float64, 8)
		for i := range series {
			row := make([]float64, 4)
			for j := range row {
				row[j] = rng.Float64() * 2
			}
			series[i] = row
		}
		g := Matrix(series)
		var quad float64
		for i := 0; i < 4; i++ {
			pi := math.Mod(probe[i], 10)
			if math.IsNaN(pi) || math.IsInf(pi, 0) {
				pi = 1
			}
			for j := 0; j < 4; j++ {
				pj := math.Mod(probe[j], 10)
				if math.IsNaN(pj) || math.IsInf(pj, 0) {
					pj = 1
				}
				quad += pi * g[i][j] * pj
			}
		}
		return quad >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStyleLossNonNegativeProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		mk := func(seed int64) [][]float64 {
			rng := rand.New(rand.NewSource(seed))
			s := make([][]float64, 6)
			for i := range s {
				row := make([]float64, 3)
				for j := range row {
					row[j] = rng.Float64()
				}
				s[i] = row
			}
			return s
		}
		return SeriesStyleLoss(mk(seedA), mk(seedB), 1) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
