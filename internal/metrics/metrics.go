// Package metrics provides the evaluation statistics used throughout the
// experiments: confusion counts, FP/FN rates per window, ROC curves with
// AUC, and accuracy summaries.
package metrics

import "sort"

// Confusion accumulates binary classification outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction against ground truth.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded outcomes.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is (TP+TN)/total.
func (c *Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// TPR is the true-positive rate (recall / sensitivity).
func (c *Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR is the false-positive rate.
func (c *Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// FNR is the false-negative rate.
func (c *Confusion) FNR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.TP+c.FN)
}

// Precision is TP/(TP+FP).
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// GeneralizationError is the misclassification rate (1 - accuracy).
func (c *Confusion) GeneralizationError() float64 { return 1 - c.Accuracy() }

// ROCPoint is one operating point of a detector.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC computes the full ROC curve from scores (higher = more malicious) and
// labels. Points are ordered from FPR 0 to 1.
func ROC(scores []float64, labels []bool) []ROCPoint {
	type sl struct {
		s float64
		l bool
	}
	data := make([]sl, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		data[i] = sl{scores[i], labels[i]}
		if labels[i] {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].s > data[j].s })
	points := []ROCPoint{{Threshold: 1e18}}
	tp, fp := 0, 0
	for i := 0; i < len(data); {
		s := data[i].s
		//evaxlint:ignore floateq grouping identical scores at one ROC threshold requires exact equality
		for i < len(data) && data[i].s == s {
			if data[i].l {
				tp++
			} else {
				fp++
			}
			i++
		}
		pt := ROCPoint{Threshold: s}
		if pos > 0 {
			pt.TPR = float64(tp) / float64(pos)
		}
		if neg > 0 {
			pt.FPR = float64(fp) / float64(neg)
		}
		points = append(points, pt)
	}
	return points
}

// AUC computes the area under the ROC curve by trapezoidal integration.
func AUC(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// AUCFromScores is ROC + AUC in one call.
func AUCFromScores(scores []float64, labels []bool) float64 {
	return AUC(ROC(scores, labels))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}
