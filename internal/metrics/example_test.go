package metrics_test

import (
	"fmt"

	"evax/internal/metrics"
)

// ExampleAUCFromScores computes a detector's ROC area.
func ExampleAUCFromScores() {
	scores := []float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	labels := []bool{true, true, false, true, false, false}
	fmt.Printf("AUC = %.2f\n", metrics.AUCFromScores(scores, labels))
	// Output: AUC = 0.89
}
