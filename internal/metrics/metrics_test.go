package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, false) // TN
	c.Add(false, true)  // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 || c.Accuracy() != 0.5 {
		t.Fatalf("total/acc = %d/%v", c.Total(), c.Accuracy())
	}
	if c.TPR() != 0.5 || c.FPR() != 0.5 || c.FNR() != 0.5 || c.Precision() != 0.5 {
		t.Fatalf("rates: tpr=%v fpr=%v fnr=%v prec=%v", c.TPR(), c.FPR(), c.FNR(), c.Precision())
	}
	if c.GeneralizationError() != 0.5 {
		t.Fatal("generalization error wrong")
	}
}

func TestConfusionEmptySafe(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.TPR() != 0 || c.FPR() != 0 || c.Precision() != 0 {
		t.Fatal("empty confusion not zero")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if auc := AUCFromScores(scores, labels); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if auc := AUCFromScores(scores, labels); auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
}

func TestROCRandomClassifierNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var scores []float64
	var labels []bool
	for i := 0; i < 4000; i++ {
		scores = append(scores, rng.Float64())
		labels = append(labels, rng.Intn(2) == 0)
	}
	if auc := AUCFromScores(scores, labels); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCEndpointsAndMonotonicity(t *testing.T) {
	scores := []float64{0.9, 0.7, 0.7, 0.3, 0.2}
	labels := []bool{true, false, true, false, true}
	pts := ROC(scores, labels)
	first, last := pts[0], pts[len(pts)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Fatalf("ROC does not start at origin: %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR < pts[i-1].TPR || pts[i].FPR < pts[i-1].FPR {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestROCTiedScoresGrouped(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5}
	labels := []bool{true, false, true}
	pts := ROC(scores, labels)
	// Origin plus one grouped point.
	if len(pts) != 2 {
		t.Fatalf("tied scores produced %d points", len(pts))
	}
}

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Fatal("mean")
	}
	if Median(xs) != 2 {
		t.Fatal("median odd")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("median even")
	}
	min, max := MinMax(xs)
	if min != 1 || max != 3 {
		t.Fatal("minmax")
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty stats not zero")
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty minmax")
	}
	// Median must not mutate its input.
	if xs[0] != 3 {
		t.Fatal("median sorted the caller's slice")
	}
}

func TestBetterDetectorHigherAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var strong, weak []float64
	var labels []bool
	for i := 0; i < 2000; i++ {
		mal := i%2 == 0
		labels = append(labels, mal)
		base := 0.0
		if mal {
			base = 1
		}
		strong = append(strong, base+rng.NormFloat64()*0.3)
		weak = append(weak, base+rng.NormFloat64()*2.0)
	}
	if AUCFromScores(strong, labels) <= AUCFromScores(weak, labels) {
		t.Fatal("sharper separation did not raise AUC")
	}
}
