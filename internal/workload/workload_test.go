package workload

import (
	"testing"

	"evax/internal/isa"
	"evax/internal/sim"
)

func TestAllBuildAndValidate(t *testing.T) {
	for _, spec := range All() {
		p := spec.Build(1, 1)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if p.Class != isa.ClassBenign {
			t.Errorf("%s: class %v, want benign", spec.Name, p.Class)
		}
		if p.Len() < 5 {
			t.Errorf("%s: suspiciously short (%d instructions)", spec.Name, p.Len())
		}
	}
}

func TestAllRunToCompletion(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(7, 1)
			m := sim.New(sim.DefaultConfig(), p)
			m.Run(3_000_000)
			if !m.Done() {
				t.Fatalf("did not finish within budget (committed %d)", m.Instructions())
			}
			if m.Instructions() < 2000 {
				t.Fatalf("only %d instructions committed; workloads must be substantial", m.Instructions())
			}
			if ipc := m.IPC(); ipc <= 0.05 || ipc > 8 {
				t.Fatalf("implausible IPC %.3f", ipc)
			}
		})
	}
}

func TestMatchInterpreter(t *testing.T) {
	// Every benign workload must commit the same architectural state as
	// the golden interpreter (they use no timing-dependent ops).
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(3, 1)
			m := sim.New(sim.DefaultConfig(), p)
			m.Run(3_000_000)
			if !m.Done() {
				t.Fatal("did not finish")
			}
			it := isa.NewInterp(p)
			if _, err := it.Run(p, 10_000_000); err != nil {
				t.Fatal(err)
			}
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				if m.ArchReg(r) != it.Regs[r] {
					t.Fatalf("r%d: machine %#x, interp %#x", r, m.ArchReg(r), it.Regs[r])
				}
			}
		})
	}
}

func TestSeedsVaryBehaviour(t *testing.T) {
	a := Compress(1, 1)
	b := Compress(2, 1)
	diff := false
	for addr, v := range a.InitMem {
		if b.InitMem[addr] != v {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestScaleExtendsRun(t *testing.T) {
	run := func(scale int) uint64 {
		p := Stream(1, scale)
		m := sim.New(sim.DefaultConfig(), p)
		m.Run(20_000_000)
		if !m.Done() {
			t.Fatal("did not finish")
		}
		return m.Instructions()
	}
	if n1, n3 := run(1), run(3); n3 < 2*n1 {
		t.Fatalf("scale 3 ran %d instructions vs %d at scale 1", n3, n1)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("astar"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestWorkloadsAreMicroarchitecturallyDiverse(t *testing.T) {
	// The benign mix must cover distinct behaviours: at least one
	// workload each that is branch-mispredict-heavy, DRAM-bound, and
	// syscall-bearing.
	type profile struct {
		name       string
		mispredict float64
		dramReads  uint64
		syscalls   uint64
	}
	var profs []profile
	for _, spec := range All() {
		p := spec.Build(1, 1)
		m := sim.New(sim.DefaultConfig(), p)
		m.Run(2_000_000)
		profs = append(profs, profile{
			name:       spec.Name,
			mispredict: float64(m.Ctr(sim.CtrIEWBranchMispredicts)) / float64(m.Instructions()+1),
			dramReads:  m.DRAM().Stats.Reads,
			syscalls:   m.Ctr(sim.CtrKernelSyscalls),
		})
	}
	var anyBranchy, anyDRAM, anySyscall bool
	for _, pr := range profs {
		if pr.mispredict > 0.01 {
			anyBranchy = true
		}
		if pr.dramReads > 500 {
			anyDRAM = true
		}
		if pr.syscalls > 0 {
			anySyscall = true
		}
	}
	if !anyBranchy || !anyDRAM || !anySyscall {
		t.Fatalf("diversity missing: branchy=%v dram=%v syscall=%v (%+v)",
			anyBranchy, anyDRAM, anySyscall, profs)
	}
}
