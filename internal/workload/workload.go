// Package workload generates the benign programs of the evaluation: ten
// synthetic kernels mirroring the paper's SPEC CPU 2006 workload mix —
// compression doing most work in memory, optimization scheduling, an
// Ethernet network simulator, game-tree AI, discrete-event simulation,
// gene-sequence analysis, the A* algorithm, plus streaming, dense linear
// algebra and pointer-chasing kernels. Each emits a real micro-op program
// through the same pipeline the attacks run on, so the detector's benign
// class covers a diverse mix of microarchitectural behaviour.
package workload

import (
	"fmt"
	"math/rand"

	"evax/internal/isa"
)

// Spec describes one benign workload generator.
type Spec struct {
	Name string
	// Build creates the program; seed varies data and layout, scale the
	// iteration count (1 is the default used by the experiments).
	Build func(seed int64, scale int) *isa.Program
}

// All returns the benign workload registry in a stable order.
func All() []Spec {
	return []Spec{
		{"compress", Compress},
		{"scheduler", Scheduler},
		{"netsim", NetSim},
		{"gametree", GameTree},
		{"devents", DiscreteEvents},
		{"geneseq", GeneSeq},
		{"astar", AStar},
		{"stream", Stream},
		{"matmul", MatMul},
		{"mcf", PointerChase},
	}
}

// ByName returns the named workload spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	return scale
}

// seedMem fills words addressed base..base+n*8 with pseudo-random data.
func seedMem(b *isa.Builder, rng *rand.Rand, base uint64, n int) {
	for i := 0; i < n; i++ {
		b.InitMem(base+uint64(i)*8, uint64(rng.Int63()))
	}
}

// Compress models an LZ-style compressor working in memory: a rolling hash
// over the input selects hash-chain heads, candidate matches are compared
// with data-dependent branches, and literals/copies write to an output
// buffer. Branchy, load-heavy, moderate locality.
func Compress(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("compress", isa.ClassBenign)
	const (
		inBase   = 0x10_0000
		hashBase = 0x20_0000
		outBase  = 0x30_0000
		inWords  = 512
	)
	seedMem(b, rng, inBase, inWords)
	b.InitReg(isa.R1, inBase)
	b.InitReg(isa.R2, hashBase)
	b.InitReg(isa.R3, outBase)
	b.Li(isa.R4, 0)                             // i
	b.Li(isa.R5, int64(inWords-4)*int64(scale)) // bound (wraps via mask)
	b.Li(isa.R12, int64(inWords-1))             // index mask
	b.Label("loop")
	b.And(isa.R13, isa.R4, isa.R12) // i mod inWords
	b.Load(isa.R6, isa.R1, isa.R13, 8, 0)
	// Rolling hash: h = (x*2654435761) >> 52 (12-bit table).
	b.Li(isa.R7, 2654435761)
	b.Mul(isa.R8, isa.R6, isa.R7)
	b.Shri(isa.R8, isa.R8, 52)
	// Chain head lookup and update.
	b.Load(isa.R9, isa.R2, isa.R8, 8, 0)
	b.Store(isa.R13, isa.R2, isa.R8, 8, 0)
	// Candidate compare: match if head word equals current word.
	b.And(isa.R14, isa.R9, isa.R12)
	b.Load(isa.R10, isa.R1, isa.R14, 8, 0)
	b.Br(isa.CondNE, isa.R10, isa.R6, "literal")
	// Emit a copy token.
	b.Store(isa.R9, isa.R3, isa.R13, 8, 0)
	b.Jmp("next")
	b.Label("literal")
	b.Store(isa.R6, isa.R3, isa.R13, 8, 0)
	b.Label("next")
	b.Addi(isa.R4, isa.R4, 1)
	b.Br(isa.CondNE, isa.R4, isa.R5, "loop")
	return b.MustBuild()
}

// Scheduler models list-scheduling of an instruction DAG: repeatedly pull
// the min-priority ready node from a binary heap in memory, relax its
// dependents, push them back. Heap swaps make it store-heavy with irregular
// branches.
func Scheduler(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("scheduler", isa.ClassBenign)
	const (
		heapBase = 0x14_0000
		heapLen  = 256
	)
	seedMem(b, rng, heapBase, heapLen)
	b.InitReg(isa.R1, heapBase)
	b.Li(isa.R2, 0) // round
	b.Li(isa.R3, int64(600*scale))
	b.Li(isa.R12, heapLen-1)
	b.Label("round")
	// "Pop": take slot (round mod len), sift-down two levels.
	b.And(isa.R4, isa.R2, isa.R12)
	b.Load(isa.R5, isa.R1, isa.R4, 8, 0)
	b.Shli(isa.R6, isa.R4, 1)
	b.Addi(isa.R6, isa.R6, 1)
	b.And(isa.R6, isa.R6, isa.R12)
	b.Load(isa.R7, isa.R1, isa.R6, 8, 0)
	b.Br(isa.CondULT, isa.R5, isa.R7, "noswap")
	b.Store(isa.R5, isa.R1, isa.R6, 8, 0)
	b.Store(isa.R7, isa.R1, isa.R4, 8, 0)
	b.Label("noswap")
	// Relax dependent priority.
	b.Addi(isa.R8, isa.R5, 17)
	b.Shri(isa.R8, isa.R8, 1)
	b.And(isa.R9, isa.R8, isa.R12)
	b.Store(isa.R8, isa.R1, isa.R9, 8, 0)
	b.Addi(isa.R2, isa.R2, 1)
	b.Br(isa.CondNE, isa.R2, isa.R3, "round")
	return b.MustBuild()
}

// NetSim models an Ethernet network simulator: packets hash into routing
// tables, queue occupancies update, and occasional control-plane syscalls
// occur (the kernel-noise component of the benign mix).
func NetSim(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("netsim", isa.ClassBenign)
	const (
		tableBase = 0x18_0000
		queueBase = 0x28_0000
		tableLen  = 1024
	)
	seedMem(b, rng, tableBase, tableLen)
	b.InitReg(isa.R1, tableBase)
	b.InitReg(isa.R2, queueBase)
	b.InitReg(isa.R10, uint64(rng.Int63())|1) // packet id stream
	b.Li(isa.R3, 0)
	b.Li(isa.R4, int64(500*scale))
	b.Li(isa.R12, tableLen-1)
	b.Label("pkt")
	// Next packet id (LCG) and route lookup.
	b.Li(isa.R5, 6364136223846793005)
	b.Mul(isa.R10, isa.R10, isa.R5)
	b.Addi(isa.R10, isa.R10, 1442695040888963407)
	b.Shri(isa.R6, isa.R10, 33)
	b.And(isa.R6, isa.R6, isa.R12)
	b.Load(isa.R7, isa.R1, isa.R6, 8, 0) // route entry
	// Queue update on the output port (entry low bits).
	b.Li(isa.R13, 15)
	b.And(isa.R8, isa.R7, isa.R13)
	b.Load(isa.R9, isa.R2, isa.R8, 8, 0)
	b.Addi(isa.R9, isa.R9, 1)
	b.Store(isa.R9, isa.R2, isa.R8, 8, 0)
	// Control-plane interrupt every 128 packets.
	b.Li(isa.R13, 127)
	b.And(isa.R11, isa.R3, isa.R13)
	b.Br(isa.CondNE, isa.R11, isa.R0, "nopoll")
	b.Syscall()
	b.Label("nopoll")
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "pkt")
	return b.MustBuild()
}

// GameTree models game-playing AI: a depth-bounded recursive negamax over a
// branchy evaluation function — deep call/return chains exercising the RAS,
// hard-to-predict branches.
func GameTree(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("gametree", isa.ClassBenign)
	const boardBase = 0x1C_0000
	seedMem(b, rng, boardBase, 256)
	b.InitReg(isa.R1, boardBase)
	b.Li(isa.R2, 0) // game counter
	b.Li(isa.R3, int64(40*scale))
	b.Label("games")
	b.Li(isa.R4, 5) // depth
	b.Li(isa.R5, 0) // accumulated score
	b.Call("search")
	b.Addi(isa.R2, isa.R2, 1)
	b.Br(isa.CondNE, isa.R2, isa.R3, "games")
	b.Jmp("end")

	// search(R4=depth): explores two children per node.
	b.Label("search")
	b.Br(isa.CondEQ, isa.R4, isa.R0, "leaf")
	b.Addi(isa.R4, isa.R4, -1)
	b.Call("search")
	// Evaluate a board cell between children (data-dependent branch).
	b.Li(isa.R13, 255)
	b.Add(isa.R6, isa.R5, isa.R2)
	b.And(isa.R6, isa.R6, isa.R13)
	b.Load(isa.R7, isa.R1, isa.R6, 8, 0)
	b.Li(isa.R13, 1)
	b.And(isa.R8, isa.R7, isa.R13)
	b.Br(isa.CondEQ, isa.R8, isa.R0, "skipchild")
	b.Call("search")
	b.Label("skipchild")
	b.Addi(isa.R4, isa.R4, 1)
	b.Ret()
	b.Label("leaf")
	b.Addi(isa.R5, isa.R5, 3)
	b.Ret()
	b.Label("end")
	b.Nop()
	return b.MustBuild()
}

// DiscreteEvents models a discrete-event simulator: an event wheel of
// linked lists; each event schedules a successor at a pseudo-random future
// slot. Pointer-chasing with frequent short dependent chains.
func DiscreteEvents(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("devents", isa.ClassBenign)
	const (
		wheelBase = 0x24_0000
		wheelLen  = 512
	)
	// Wheel slots hold "next slot" indices.
	for i := 0; i < wheelLen; i++ {
		b.InitMem(wheelBase+uint64(i)*8, uint64(rng.Intn(wheelLen)))
	}
	b.InitReg(isa.R1, wheelBase)
	b.Li(isa.R2, 0) // current slot
	b.Li(isa.R3, 0)
	b.Li(isa.R4, int64(1500*scale))
	b.Li(isa.R12, wheelLen-1)
	b.Label("tick")
	b.Load(isa.R5, isa.R1, isa.R2, 8, 0) // next event slot
	// Reschedule: new successor = (cur*31 + next) mod len.
	b.Li(isa.R6, 31)
	b.Mul(isa.R7, isa.R2, isa.R6)
	b.Add(isa.R7, isa.R7, isa.R5)
	b.And(isa.R7, isa.R7, isa.R12)
	b.Store(isa.R7, isa.R1, isa.R2, 8, 0)
	b.And(isa.R2, isa.R5, isa.R12) // jump to the event's slot
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "tick")
	return b.MustBuild()
}

// GeneSeq models profile-HMM sequence scoring (hmmer-like): a dynamic
// programming recurrence over a score matrix — dense regular loads/stores
// with ALU-dominated inner loops.
func GeneSeq(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("geneseq", isa.ClassBenign)
	const (
		seqBase = 0x2C_0000
		dpBase  = 0x34_0000
		cols    = 128
	)
	seedMem(b, rng, seqBase, cols)
	b.InitReg(isa.R1, seqBase)
	b.InitReg(isa.R2, dpBase)
	b.Li(isa.R3, 0) // row
	b.Li(isa.R4, int64(12*scale))
	b.Label("row")
	b.Li(isa.R5, 1) // col
	b.Li(isa.R6, cols)
	b.Label("col")
	b.Load(isa.R7, isa.R2, isa.R5, 8, -8) // dp[col-1]
	b.Load(isa.R8, isa.R2, isa.R5, 8, 0)  // dp[col]
	b.Load(isa.R9, isa.R1, isa.R5, 8, 0)  // emission
	b.Li(isa.R13, 255)
	b.And(isa.R9, isa.R9, isa.R13)
	b.Add(isa.R10, isa.R7, isa.R9)
	// dp[col] = max(dp[col], dp[col-1]+emit)
	b.Br(isa.CondUGE, isa.R8, isa.R10, "keep")
	b.Store(isa.R10, isa.R2, isa.R5, 8, 0)
	b.Label("keep")
	b.Addi(isa.R5, isa.R5, 1)
	b.Br(isa.CondNE, isa.R5, isa.R6, "col")
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "row")
	return b.MustBuild()
}

// AStar models grid pathfinding: pop the best frontier cell, expand four
// neighbours with bounds checks, update g-scores. Irregular access over a
// grid plus a small frontier heap.
func AStar(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("astar", isa.ClassBenign)
	const (
		gridBase = 0x38_0000
		openBase = 0x3C_0000
		gridLen  = 1024 // 32x32
	)
	seedMem(b, rng, gridBase, gridLen)
	b.InitReg(isa.R1, gridBase)
	b.InitReg(isa.R2, openBase)
	b.InitReg(isa.R10, uint64(rng.Intn(gridLen)))
	b.Li(isa.R3, 0)
	b.Li(isa.R4, int64(400*scale))
	b.Li(isa.R12, gridLen-1)
	b.Label("expand")
	// Current cell cost.
	b.Load(isa.R5, isa.R1, isa.R10, 8, 0)
	// Four neighbours: +1, -1, +32, -32.
	for di, d := range []int64{1, -1, 32, -32} {
		lbl := fmt.Sprintf("n%d", di)
		b.Addi(isa.R6, isa.R10, d)
		b.And(isa.R6, isa.R6, isa.R12)
		b.Load(isa.R7, isa.R1, isa.R6, 8, 0)
		b.Addi(isa.R8, isa.R5, 10)
		b.Br(isa.CondULT, isa.R7, isa.R8, lbl)
		b.Store(isa.R8, isa.R1, isa.R6, 8, 0)
		b.Store(isa.R6, isa.R2, isa.R3, 8, 0) // push to frontier log
		b.Label(lbl)
	}
	// Next frontier cell: reload from the log (mod window).
	b.Li(isa.R13, 63)
	b.And(isa.R9, isa.R3, isa.R13)
	b.Load(isa.R10, isa.R2, isa.R9, 8, 0)
	b.And(isa.R10, isa.R10, isa.R12)
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "expand")
	return b.MustBuild()
}

// Stream models bandwidth-bound streaming (libquantum/lbm-like): long
// unit-stride read-modify-write sweeps over a working set larger than L1.
func Stream(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	b := isa.NewBuilder("stream", isa.ClassBenign)
	const (
		srcBase = 0x40_0000
		dstBase = 0x50_0000
		words   = 4096 // 32KB each way
	)
	b.InitReg(isa.R1, srcBase)
	b.InitReg(isa.R2, dstBase)
	b.InitReg(isa.R9, uint64(seed)|1)
	b.Li(isa.R3, 0)
	b.Li(isa.R4, int64(2*scale)) // sweeps
	b.Label("sweep")
	b.Li(isa.R5, 0)
	b.Li(isa.R6, words)
	b.Label("inner")
	b.Load(isa.R7, isa.R1, isa.R5, 8, 0)
	b.Add(isa.R7, isa.R7, isa.R9)
	b.Store(isa.R7, isa.R2, isa.R5, 8, 0)
	b.Addi(isa.R5, isa.R5, 1)
	b.Br(isa.CondNE, isa.R5, isa.R6, "inner")
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "sweep")
	return b.MustBuild()
}

// MatMul models dense linear algebra on the FP pipes: a blocked
// matrix-multiply inner kernel with high ILP and regular access.
func MatMul(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("matmul", isa.ClassBenign)
	const (
		aBase = 0x44_0000
		bBase = 0x48_0000
		cBase = 0x4C_0000
		n     = 24
	)
	seedMem(b, rng, aBase, n*n)
	seedMem(b, rng, bBase, n*n)
	b.InitReg(isa.R1, aBase)
	b.InitReg(isa.R2, bBase)
	b.InitReg(isa.R3, cBase)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, int64(n*scale)) // i (row, repeated by scale)
	b.Label("i")
	b.Li(isa.R6, 0) // j
	b.Li(isa.R7, n)
	b.Label("j")
	b.Li(isa.R8, 0) // k
	b.Li(isa.R9, 0) // acc
	b.Label("k")
	b.Li(isa.R13, int64(n*n-1))
	b.Li(isa.R14, n)
	b.Mul(isa.R10, isa.R4, isa.R14)
	b.Add(isa.R10, isa.R10, isa.R8)
	b.And(isa.R10, isa.R10, isa.R13)
	b.Load(isa.R11, isa.R1, isa.R10, 8, 0)
	b.Mul(isa.R10, isa.R8, isa.R14)
	b.Add(isa.R10, isa.R10, isa.R6)
	b.And(isa.R10, isa.R10, isa.R13)
	b.Load(isa.R12, isa.R2, isa.R10, 8, 0)
	b.FAdd(isa.R15, isa.R11, isa.R12)
	b.Add(isa.R9, isa.R9, isa.R15)
	b.Addi(isa.R8, isa.R8, 1)
	b.Br(isa.CondNE, isa.R8, isa.R7, "k")
	b.Mul(isa.R10, isa.R4, isa.R14)
	b.Add(isa.R10, isa.R10, isa.R6)
	b.And(isa.R10, isa.R10, isa.R13)
	b.Store(isa.R9, isa.R3, isa.R10, 8, 0)
	b.Addi(isa.R6, isa.R6, 1)
	b.Br(isa.CondNE, isa.R6, isa.R7, "j")
	b.Addi(isa.R4, isa.R4, 1)
	b.Br(isa.CondNE, isa.R4, isa.R5, "i")
	return b.MustBuild()
}

// PointerChase models sparse-graph optimization (mcf-like): a long random
// cycle walked serially — a DRAM-latency-bound dependent-load chain.
func PointerChase(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("mcf", isa.ClassBenign)
	const (
		base  = 0x60_0000
		nodes = 2048 // 16 KB of node words, strided onto separate lines
	)
	// Random permutation cycle so the chain never short-circuits.
	perm := rng.Perm(nodes)
	for i := 0; i < nodes; i++ {
		b.InitMem(base+uint64(perm[i])*64, uint64(perm[(i+1)%nodes]))
	}
	b.InitReg(isa.R1, base)
	b.InitReg(isa.R2, uint64(perm[0]))
	b.Li(isa.R3, 0)
	b.Li(isa.R4, int64(1200*scale))
	b.Label("walk")
	b.Load(isa.R2, isa.R1, isa.R2, 64, 0)
	// Arc-cost bookkeeping overlapping the next miss.
	b.Add(isa.R5, isa.R5, isa.R2)
	b.Shri(isa.R6, isa.R5, 3)
	b.Xor(isa.R7, isa.R6, isa.R2)
	b.Add(isa.R8, isa.R8, isa.R7)
	b.Mul(isa.R9, isa.R7, isa.R6)
	b.Addi(isa.R3, isa.R3, 1)
	b.Br(isa.CondNE, isa.R3, isa.R4, "walk")
	return b.MustBuild()
}
