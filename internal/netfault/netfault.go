// Package netfault injects deterministic network faults into the serving
// stack's length-prefixed frame streams. A Schedule — derived from a name via
// runner.DeriveSeed, never from entropy — assigns each logical client a fixed
// sequence of faulty connection attempts; wrapping a dialed net.Conn with the
// client's Injector applies exactly the fault planned for that attempt.
//
// Faults are anchored at frame boundaries, not byte counts or timers: the
// wrapped conn parses the TYPE|LEN32 frame headers flowing through it and
// fires when the target frame index is reached. Because the serving protocol
// guarantees every attempt writes a handshake (frame 0) followed by at least
// one sample frame, and reads an ack (frame 0) followed by at least one
// verdict, a fault targeting frame 1 fires on every attempt regardless of
// scheduler timing — chaos runs are bit-reproducible: same schedule, same
// fault event sequence, run after run.
package netfault

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"evax/internal/runner"
)

// ErrInjected is returned by every Read/Write on a wrapped conn after its
// planned fault has fired. Clients treat it like any other peer failure.
var ErrInjected = errors.New("netfault: injected fault")

// Op identifies a fault class.
type Op uint8

const (
	// OpKillWrite severs the connection just before the first byte of the
	// target outbound frame: the peer sees a clean close mid-stream.
	OpKillWrite Op = iota + 1
	// OpTornWrite delivers the header plus half the payload of the target
	// outbound frame, then severs: the peer sees a torn partial frame.
	OpTornWrite
	// OpTruncWrite delivers the target outbound frame minus its final
	// byte, then severs: a one-byte truncation, the hardest tear to spot.
	OpTruncWrite
	// OpStallWrite pauses for the schedule's stall duration just before
	// the target outbound frame, then severs: exercises peer read
	// deadlines and client liveness detection.
	OpStallWrite
	// OpKillRead delivers inbound frames up to and including the target,
	// then fails the next read: the client loses in-flight verdicts.
	OpKillRead
)

func (o Op) String() string {
	switch o {
	case OpKillWrite:
		return "kill-write"
	case OpTornWrite:
		return "torn-write"
	case OpTruncWrite:
		return "trunc-write"
	case OpStallWrite:
		return "stall-write"
	case OpKillRead:
		return "kill-read"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ops is the pool Plan draws from, in a fixed order the seed indexes into.
var ops = []Op{OpKillWrite, OpTornWrite, OpTruncWrite, OpStallWrite, OpKillRead}

// Fault is one planned injection: on connection attempt Attempt (1-based),
// fire Op at frame index Frame of the relevant direction.
type Fault struct {
	Attempt int
	Frame   int
	Op      Op
	Stall   time.Duration // OpStallWrite only
}

// Event records a fault that actually fired.
type Event struct {
	Client  int
	Attempt int
	Frame   int
	Op      Op
}

func (e Event) String() string {
	return fmt.Sprintf("client=%d attempt=%d frame=%d op=%s", e.Client, e.Attempt, e.Frame, e.Op)
}

// Log collects fired fault events across all clients of a schedule.
type Log struct {
	mu     sync.Mutex
	events []Event
}

func (l *Log) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Sorted returns the fired events in (client, attempt) order — the canonical
// form for comparing two runs, independent of goroutine interleaving.
func (l *Log) Sorted() []Event {
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Attempt < out[j].Attempt
	})
	return out
}

// Schedule is a deterministic fault plan for a fleet of clients plus the log
// of faults that actually fired.
type Schedule struct {
	Name   string
	faults [][]Fault // per client, indexed by attempt-1
	Events Log
}

// Plan derives a schedule: each of clients suffers one fault per connection
// attempt for attempts 1..faultsPerClient, then connects cleanly forever
// after. The op for (client, attempt) is drawn from
// runner.DeriveSeed(name, client, attempt), so the full fault sequence is a
// pure function of the arguments. Every fault targets frame 1 — the first
// frame after the handshake/ack — which the protocol guarantees exists on
// every attempt, making the plan timing-independent.
func Plan(name string, clients, faultsPerClient int, stall time.Duration) *Schedule {
	s := &Schedule{Name: name, faults: make([][]Fault, clients)}
	for c := 0; c < clients; c++ {
		for a := 1; a <= faultsPerClient; a++ {
			seed := runner.DeriveSeed(name, c, int64(a))
			f := Fault{Attempt: a, Frame: 1, Op: ops[int(seed%int64(len(ops)))]}
			if f.Op == OpStallWrite {
				f.Stall = stall
			}
			s.faults[c] = append(s.faults[c], f)
		}
	}
	return s
}

// Faults returns the planned fault list for client c, in attempt order.
func (s *Schedule) Faults(c int) []Fault {
	if c < 0 || c >= len(s.faults) {
		return nil
	}
	return append([]Fault(nil), s.faults[c]...)
}

// Total returns the number of planned faults across all clients.
func (s *Schedule) Total() int {
	n := 0
	for _, fs := range s.faults {
		n += len(fs)
	}
	return n
}

// Client returns the injector for logical client c. Each call to the
// injector's Wrap counts one connection attempt.
func (s *Schedule) Client(c int) *Injector {
	return &Injector{sched: s, client: c}
}

// Injector wraps successive connection attempts of one logical client with
// that client's planned faults. Not safe for concurrent Wrap calls — each
// logical client owns its injector.
type Injector struct {
	sched   *Schedule
	client  int
	attempt int
}

// Attempts reports how many connections this injector has wrapped.
func (in *Injector) Attempts() int { return in.attempt }

// Wrap registers one connection attempt and returns nc wrapped with the
// fault planned for it, or nc untouched once the plan is exhausted.
func (in *Injector) Wrap(nc net.Conn) net.Conn {
	in.attempt++
	var fs []Fault
	if in.client < len(in.sched.faults) {
		fs = in.sched.faults[in.client]
	}
	if in.attempt > len(fs) {
		return nc
	}
	f := fs[in.attempt-1]
	return &faultConn{Conn: nc, sched: in.sched, client: in.client, fault: f, cut: -1}
}

// Listener wraps accepted conns with faults in accept order: the i-th
// accepted conn gets the fault planned for client i%clients, attempt
// i/clients+1. Useful for server-side chaos; client-side tests should prefer
// per-client Injectors, whose attempt numbering survives reconnect races.
type Listener struct {
	net.Listener
	sched *Schedule

	mu       sync.Mutex
	accepted int
}

// WrapListener returns ln with every accepted conn passed through sched.
func WrapListener(ln net.Listener, sched *Schedule) *Listener {
	return &Listener{Listener: ln, sched: sched}
}

func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	n := len(l.sched.faults)
	if n == 0 {
		return nc, nil
	}
	client := i % n
	attempt := i/n + 1
	if attempt > len(l.sched.faults[client]) {
		return nc, nil
	}
	f := l.sched.faults[client][attempt-1]
	return &faultConn{Conn: nc, sched: l.sched, client: client, fault: f, cut: -1}, nil
}

// tracker walks a byte stream of TYPE|LEN32|PAYLOAD frames, maintaining the
// index of the frame being assembled and the absolute stream offset.
type tracker struct {
	idx    int   // index of the frame currently being assembled
	off    int64 // absolute stream offset consumed so far
	rem    int   // payload bytes remaining in the current frame
	hdrLen int   // header bytes consumed of the current frame
	hdr    [5]byte
}

// feed consumes bytes of stream and advances the frame state.
func (tr *tracker) feed(p []byte) {
	for len(p) > 0 {
		if tr.rem > 0 {
			n := tr.rem
			if n > len(p) {
				n = len(p)
			}
			tr.rem -= n
			tr.off += int64(n)
			p = p[n:]
			if tr.rem == 0 {
				tr.idx++
			}
			continue
		}
		n := copy(tr.hdr[tr.hdrLen:], p)
		tr.hdrLen += n
		tr.off += int64(n)
		p = p[n:]
		if tr.hdrLen == len(tr.hdr) {
			tr.hdrLen = 0
			tr.rem = int(binary.LittleEndian.Uint32(tr.hdr[1:]))
			if tr.rem == 0 {
				tr.idx++ // zero-payload frame completes with its header
			}
		}
	}
}

// faultConn applies one planned fault to a net.Conn, then fails every
// subsequent operation with ErrInjected. Each direction is driven by at most
// one goroutine (the serving client has a single writer and a single reader),
// so the trackers and cut point need no lock; only the fired flag is shared
// across directions.
type faultConn struct {
	net.Conn
	sched  *Schedule
	client int
	fault  Fault

	wr    tracker
	rd    tracker
	cut   int64 // absolute offset of the cut point, -1 until computable
	fired atomic.Bool
}

// plan decides, for the tracker's current position, how many more bytes may
// safely pass (safe >= 1) or that the cut point has been reached (fire).
// Called only from the goroutine driving the fault's direction.
func (fc *faultConn) plan(tr *tracker) (safe int, fire bool) {
	f := fc.fault
	if fc.cut >= 0 {
		if tr.off >= fc.cut {
			return 0, true
		}
		return int(fc.cut - tr.off), false
	}
	if tr.idx > f.Frame {
		return 0, true // target frame slipped past (e.g. zero payload): fire now
	}
	if tr.idx < f.Frame {
		if tr.rem > 0 {
			return tr.rem, false // rest of an earlier frame's payload
		}
		return len(tr.hdr) - tr.hdrLen, false // rest of an earlier frame's header
	}
	// At or inside the target frame.
	switch f.Op {
	case OpKillWrite, OpStallWrite:
		return 0, true // cut sits at the target frame's first byte
	default: // OpTornWrite, OpTruncWrite, OpKillRead: cut inside/after payload
		if tr.rem == 0 {
			return len(tr.hdr) - tr.hdrLen, false // target header may pass
		}
		switch f.Op {
		case OpTornWrite:
			fc.cut = tr.off + int64(tr.rem/2)
		case OpTruncWrite:
			fc.cut = tr.off + int64(tr.rem) - 1
		default: // OpKillRead: the whole target frame is delivered first
			fc.cut = tr.off + int64(tr.rem)
		}
		if tr.off >= fc.cut {
			return 0, true
		}
		return int(fc.cut - tr.off), false
	}
}

// fire records the event and severs the underlying conn.
func (fc *faultConn) fire() {
	fc.fired.Store(true)
	fc.sched.Events.add(Event{Client: fc.client, Attempt: fc.fault.Attempt, Frame: fc.fault.Frame, Op: fc.fault.Op})
	fc.Conn.Close() //evaxlint:ignore droppederr severing the conn IS the fault; nothing to report
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if fc.fired.Load() {
		return 0, ErrInjected
	}
	if fc.fault.Op == OpKillRead {
		return fc.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		safe, fire := fc.plan(&fc.wr)
		if fire {
			if fc.fault.Op == OpStallWrite && fc.fault.Stall > 0 {
				time.Sleep(fc.fault.Stall)
			}
			fc.fire()
			return written, ErrInjected
		}
		limit := len(p) - written
		if safe < limit {
			limit = safe
		}
		n, err := fc.Conn.Write(p[written : written+limit])
		fc.wr.feed(p[written : written+n])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if fc.fired.Load() {
		return 0, ErrInjected
	}
	if fc.fault.Op != OpKillRead {
		return fc.Conn.Read(p)
	}
	safe, fire := fc.plan(&fc.rd)
	if fire {
		fc.fire()
		return 0, ErrInjected
	}
	limit := len(p)
	if safe < limit {
		limit = safe
	}
	n, err := fc.Conn.Read(p[:limit])
	fc.rd.feed(p[:n])
	return n, err
}
