package netfault

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// frame builds a TYPE|LEN32|PAYLOAD frame with n payload bytes.
func frame(typ byte, n int) []byte {
	b := make([]byte, 5+n)
	b[0] = typ
	binary.LittleEndian.PutUint32(b[1:5], uint32(n))
	for i := 5; i < len(b); i++ {
		b[i] = 0xAB
	}
	return b
}

// memConn is a net.Conn stub: reads serve from a fixed buffer, writes are
// captured. Close flips every later op to io.ErrClosedPipe.
type memConn struct {
	rd     *bytes.Reader
	wr     bytes.Buffer
	closed bool
}

func (c *memConn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, io.ErrClosedPipe
	}
	if c.rd == nil {
		return 0, io.EOF
	}
	return c.rd.Read(p)
}

func (c *memConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, io.ErrClosedPipe
	}
	return c.wr.Write(p)
}

func (c *memConn) Close() error                       { c.closed = true; return nil }
func (c *memConn) LocalAddr() net.Addr                { return nil }
func (c *memConn) RemoteAddr() net.Addr               { return nil }
func (c *memConn) SetDeadline(t time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(t time.Time) error { return nil }

func wrapOne(nc net.Conn, f Fault) net.Conn {
	s := &Schedule{Name: "test", faults: [][]Fault{{f}}}
	return s.Client(0).Wrap(nc)
}

func TestPlanDeterministic(t *testing.T) {
	a := Plan("chaos", 4, 6, 5*time.Millisecond)
	b := Plan("chaos", 4, 6, 5*time.Millisecond)
	if a.Total() != 24 || b.Total() != 24 {
		t.Fatalf("total = %d/%d, want 24", a.Total(), b.Total())
	}
	for c := 0; c < 4; c++ {
		if !reflect.DeepEqual(a.Faults(c), b.Faults(c)) {
			t.Fatalf("client %d plans diverge: %v vs %v", c, a.Faults(c), b.Faults(c))
		}
	}
	// A different name draws a different op sequence somewhere.
	other := Plan("other", 4, 6, 5*time.Millisecond)
	same := true
	for c := 0; c < 4 && same; c++ {
		same = reflect.DeepEqual(a.Faults(c), other.Faults(c))
	}
	if same {
		t.Fatal("plans for different names are identical")
	}
}

func TestKillWriteAtFrameBoundary(t *testing.T) {
	mc := &memConn{}
	fc := wrapOne(mc, Fault{Attempt: 1, Frame: 1, Op: OpKillWrite})
	f0, f1 := frame(0x01, 16), frame(0x02, 64)
	n, err := fc.Write(append(append([]byte{}, f0...), f1...))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != len(f0) {
		t.Fatalf("wrote %d bytes, want %d (frame 0 only)", n, len(f0))
	}
	if !bytes.Equal(mc.wr.Bytes(), f0) {
		t.Fatal("delivered bytes are not exactly frame 0")
	}
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault write err = %v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault read err = %v, want ErrInjected", err)
	}
}

func TestTornWriteCutsMidPayload(t *testing.T) {
	f0, f1 := frame(0x01, 16), frame(0x02, 64)
	want := len(f0) + 5 + 64/2 // frame 0, frame 1 header, half its payload
	// The cut must land at the same absolute offset no matter how the
	// stream is chunked into Write calls.
	for _, chunk := range []int{1, 3, len(f0) + len(f1)} {
		mc := &memConn{}
		fc := wrapOne(mc, Fault{Attempt: 1, Frame: 1, Op: OpTornWrite})
		stream := append(append([]byte{}, f0...), f1...)
		total, err := 0, error(nil)
		for off := 0; off < len(stream) && err == nil; off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			var n int
			n, err = fc.Write(stream[off:end])
			total += n
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("chunk=%d: err = %v, want ErrInjected", chunk, err)
		}
		if total != want || mc.wr.Len() != want {
			t.Fatalf("chunk=%d: delivered %d/%d bytes, want %d", chunk, total, mc.wr.Len(), want)
		}
	}
}

func TestTruncWriteDropsFinalByte(t *testing.T) {
	mc := &memConn{}
	fc := wrapOne(mc, Fault{Attempt: 1, Frame: 1, Op: OpTruncWrite})
	f0, f1 := frame(0x01, 8), frame(0x02, 32)
	n, err := fc.Write(append(append([]byte{}, f0...), f1...))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	want := len(f0) + len(f1) - 1
	if n != want {
		t.Fatalf("wrote %d bytes, want %d (all but final byte)", n, want)
	}
}

func TestStallWritePausesThenKills(t *testing.T) {
	mc := &memConn{}
	const stall = 30 * time.Millisecond
	fc := wrapOne(mc, Fault{Attempt: 1, Frame: 1, Op: OpStallWrite, Stall: stall})
	f0, f1 := frame(0x01, 8), frame(0x02, 8)
	start := time.Now()
	_, err := fc.Write(append(append([]byte{}, f0...), f1...))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("stall lasted %v, want >= %v", d, stall)
	}
}

func TestKillReadAfterTargetFrame(t *testing.T) {
	f0, f1, f2 := frame(0x01, 16), frame(0x02, 32), frame(0x03, 8)
	stream := append(append(append([]byte{}, f0...), f1...), f2...)
	mc := &memConn{rd: bytes.NewReader(stream)}
	fc := wrapOne(mc, Fault{Attempt: 1, Frame: 1, Op: OpKillRead})
	got, err := io.ReadAll(io.Reader(fc))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if want := append(append([]byte{}, f0...), f1...); !bytes.Equal(got, want) {
		t.Fatalf("read %d bytes, want exactly frames 0-1 (%d bytes)", len(got), len(want))
	}
	// Writes pass through untouched until the read-side fault fires.
	mc2 := &memConn{rd: bytes.NewReader(stream)}
	fc2 := wrapOne(mc2, Fault{Attempt: 1, Frame: 1, Op: OpKillRead})
	if _, err := fc2.Write(f0); err != nil {
		t.Fatalf("pre-fault write failed: %v", err)
	}
}

func TestInjectorExhaustsPlan(t *testing.T) {
	s := &Schedule{Name: "test", faults: [][]Fault{{{Attempt: 1, Frame: 1, Op: OpKillWrite}}}}
	in := s.Client(0)
	mc := &memConn{}
	if _, ok := in.Wrap(mc).(*faultConn); !ok {
		t.Fatal("attempt 1 not wrapped")
	}
	if _, ok := in.Wrap(mc).(*faultConn); ok {
		t.Fatal("attempt 2 wrapped after plan exhausted")
	}
	if in.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", in.Attempts())
	}
}

func TestEventLogCanonicalOrder(t *testing.T) {
	run := func() []Event {
		s := Plan("log-order", 2, 2, 0)
		// Fire client 1's faults before client 0's: Sorted must not care.
		for _, c := range []int{1, 0} {
			in := s.Client(c)
			for range s.Faults(c) {
				stream := append(append([]byte{}, frame(0x01, 16)...), frame(0x02, 16)...)
				// Give both directions two full frames so read- and
				// write-side faults alike reach their frame-1 target.
				fc := in.Wrap(&memConn{rd: bytes.NewReader(stream)})
				_, _ = fc.Write(stream)
				buf := make([]byte, 256)
				for {
					if _, err := fc.Read(buf); err != nil {
						break
					}
				}
			}
		}
		return s.Events.Sorted()
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("fired %d events, want 4: %v", len(a), a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs produced different logs:\n%v\n%v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Client > a[i].Client {
			t.Fatalf("log not in canonical order: %v", a)
		}
	}
}
