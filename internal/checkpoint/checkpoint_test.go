package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"evax/internal/runner"
)

type result struct {
	Values []float64
	Label  string
}

func jobFn(_ context.Context, i int) (result, error) {
	return result{
		Values: []float64{float64(i) * 1.25, 1.0 / float64(i+3)},
		Label:  fmt.Sprintf("job-%d", i),
	}, nil
}

func TestJournalAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, "campaign-A")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, err := Encode(result{Values: []float64{float64(i)}, Label: "x"})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(i*2, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, "campaign-A")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 5 {
		t.Fatalf("reopened journal holds %d slots, want 5", j2.Len())
	}
	payload, ok := j2.Slot(6)
	if !ok {
		t.Fatal("slot 6 lost on reopen")
	}
	var r result
	if err := Decode(payload, &r); err != nil {
		t.Fatal(err)
	}
	if r.Values[0] != 3 {
		t.Fatalf("slot 6 decoded to %v", r)
	}
}

func TestJournalCampaignMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, "campaign-A")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, []byte("p")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, "campaign-B"); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("err = %v, want ErrCampaignMismatch", err)
	}
}

// TestJournalTornTail: a crash mid-append leaves a torn final record; Open
// recovers the valid prefix and the journal keeps working.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(i, []byte{byte(i), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 12; cut++ { // tear off up to a full record
		torn := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := Open(torn, "k")
		if err != nil {
			t.Fatalf("cut=%d: torn tail rejected: %v", cut, err)
		}
		if n := jt.Len(); n != 2 && n != 3 {
			t.Fatalf("cut=%d: %d slots recovered, want 2 or 3", cut, n)
		}
		// The journal is append-ready after truncation.
		if err := jt.Append(9, []byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		jt.Close()
		jr, err := Open(torn, "k")
		if err != nil {
			t.Fatalf("cut=%d: reopen after recovery: %v", cut, err)
		}
		if _, ok := jr.Slot(9); !ok {
			t.Fatalf("cut=%d: post-recovery append lost", cut)
		}
		jr.Close()
	}
}

// TestJournalBitFlipRejected: corruption inside a complete record is a hard
// error — resume must not trust silently corrupted state.
func TestJournalBitFlipRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(i, []byte("payload payload payload")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flip := append([]byte(nil), data...)
	flip[len(magic)+len("k")+12] ^= 0x40 // inside the first slot record
	bad := filepath.Join(t.TempDir(), "bad.journal")
	if err := os.WriteFile(bad, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, "k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestParseJournalStrict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := Open(path, "strict-key")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(4, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	key, slots, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if key != "strict-key" || string(slots[4]) != "abc" {
		t.Fatalf("parsed key=%q slots=%v", key, slots)
	}
	if _, _, err := ParseJournal(data[:len(data)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated journal: err = %v, want ErrCorrupt", err)
	}
	if _, _, err := ParseJournal([]byte("NOTAJOURNAL")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

// TestRunResumeBitIdentical is the package-level kill-and-resume property:
// a run cancelled mid-campaign, resumed from its journal, merges to exactly
// the bytes of an uninterrupted run — for multiple worker counts.
func TestRunResumeBitIdentical(t *testing.T) {
	const n = 40
	ref, _, err := runner.MapErrCtx(context.Background(), runner.Options{Jobs: 1}, n, jobFn)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "c.journal")
		j, err := Open(path, "resume-test")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		o := runner.Options{Jobs: jobs}
		o.OnJobDone = func(done int) {
			if done >= 7 {
				cancel() // the injected kill
			}
		}
		_, rep, err := Run(ctx, j, o, n, jobFn)
		cancel()
		j.Close()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: interrupted run: err = %v", jobs, err)
		}
		if rep.CompletedCount() == 0 || rep.CompletedCount() >= n {
			t.Fatalf("jobs=%d: %d completed, want a partial run", jobs, rep.CompletedCount())
		}

		j2, err := Open(path, "resume-test")
		if err != nil {
			t.Fatal(err)
		}
		journaled := j2.Len()
		if journaled != rep.CompletedCount() {
			t.Fatalf("jobs=%d: journal holds %d slots, report says %d",
				jobs, journaled, rep.CompletedCount())
		}
		var fresh atomic.Int32
		resumed, rep2, err := Run(context.Background(), j2, runner.Options{Jobs: jobs}, n,
			func(ctx context.Context, i int) (result, error) {
				fresh.Add(1)
				return jobFn(ctx, i)
			})
		j2.Close()
		if err != nil {
			t.Fatalf("jobs=%d: resume: %v", jobs, err)
		}
		if rep2.CompletedCount() != n {
			t.Fatalf("jobs=%d: resume completed %d of %d", jobs, rep2.CompletedCount(), n)
		}
		if int(fresh.Load()) != n-journaled {
			t.Fatalf("jobs=%d: resume re-ran %d jobs, want %d", jobs, fresh.Load(), n-journaled)
		}
		if !reflect.DeepEqual(ref, resumed) {
			t.Fatalf("jobs=%d: resumed output diverged from uninterrupted run", jobs)
		}
	}
}

func TestRunNilJournalPassthrough(t *testing.T) {
	out, rep, err := Run(context.Background(), nil, runner.Options{Jobs: 2}, 10, jobFn)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || rep.CompletedCount() != 10 {
		t.Fatalf("passthrough run: %d results, %d completed", len(out), rep.CompletedCount())
	}
}

func TestEncodeDecodeFloatBits(t *testing.T) {
	neg0 := math.Copysign(0, -1)
	in := result{Values: []float64{0.1 + 0.2, 1e-308, neg0, math.Nextafter(1, 2)}, Label: "bits"}
	p, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out result
	if err := Decode(p, &out); err != nil {
		t.Fatal(err)
	}
	if in.Label != out.Label || len(in.Values) != len(out.Values) {
		t.Fatalf("gob round trip changed the shape: %v vs %v", in, out)
	}
	for i := range in.Values {
		if math.Float64bits(in.Values[i]) != math.Float64bits(out.Values[i]) {
			t.Fatalf("value %d changed bits: %x vs %x",
				i, math.Float64bits(in.Values[i]), math.Float64bits(out.Values[i]))
		}
	}
}
