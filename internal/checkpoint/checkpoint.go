// Package checkpoint makes campaigns resumable: an append-only journal on
// disk records each completed job slot (gob payload + FNV-1a checksum), so
// a campaign killed mid-run — crash, OOM, operator Ctrl-C — restarts from
// where it stopped instead of from zero. Resume preserves the repository's
// determinism contract: gob round-trips float64 bit patterns exactly, so a
// resumed campaign's merged output is bit-identical to an uninterrupted
// run (the dataset golden-hash tests pin this).
//
// Crash tolerance is asymmetric by design. A torn tail — the final record
// cut short because the process died mid-append — is the expected crash
// signature: Open accepts the valid prefix and truncates the tail. A
// checksum mismatch on a *complete* record means silent corruption (bit
// rot, a concurrent writer) and is a hard error: resuming from corrupt
// state would poison the campaign. The strict ParseJournal rejects both,
// and a fuzz test holds it to "error, never panic" on arbitrary input.
package checkpoint

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"

	"evax/internal/runner"
)

// magic identifies a journal file and its format version.
var magic = []byte("EVAXCKPT1\n")

// ErrCampaignMismatch means the journal on disk belongs to a different
// campaign (different options, corpus shape, or fold set) than the one
// resuming — resuming from it would merge slots computed under other
// parameters.
var ErrCampaignMismatch = errors.New("checkpoint: journal belongs to a different campaign")

// ErrCorrupt means a complete journal record failed its checksum or could
// not be parsed — the journal cannot be trusted for resume.
var ErrCorrupt = errors.New("checkpoint: journal corrupt")

// Journal is an append-only, checksummed record of completed job slots.
// Appends are safe for concurrent use by runner workers.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	key   string
	slots map[int][]byte
}

// Open opens (or creates) the journal at path for the campaign identified
// by key. An existing journal must carry the same key (ErrCampaignMismatch
// otherwise); a torn final record — the normal crash signature — is
// discarded by truncation, while corruption of complete records is a hard
// error wrapping ErrCorrupt.
func Open(path, key string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		//evaxlint:ignore droppederr best-effort close on an already-failed open
		f.Close()
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	gotKey, slots, validLen, err := recoverRecords(data)
	if err != nil {
		//evaxlint:ignore droppederr best-effort close on an already-failed open
		f.Close()
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	j := &Journal{f: f, key: key, slots: slots}
	if validLen == 0 {
		// New (or unusable torn-header) journal: start fresh.
		if err := j.reset(); err != nil {
			//evaxlint:ignore droppederr best-effort close on an already-failed open
			f.Close()
			return nil, fmt.Errorf("checkpoint: init %s: %w", path, err)
		}
		return j, nil
	}
	if gotKey != key {
		//evaxlint:ignore droppederr best-effort close on an already-failed open
		f.Close()
		return nil, fmt.Errorf("checkpoint: %s holds key %q, campaign has %q: %w",
			path, gotKey, key, ErrCampaignMismatch)
	}
	if validLen < len(data) {
		// Torn tail from a crash mid-append: drop it.
		if err := f.Truncate(int64(validLen)); err != nil {
			//evaxlint:ignore droppederr best-effort close on an already-failed open
			f.Close()
			return nil, fmt.Errorf("checkpoint: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		//evaxlint:ignore droppederr best-effort close on an already-failed open
		f.Close()
		return nil, fmt.Errorf("checkpoint: seek %s: %w", path, err)
	}
	return j, nil
}

// reset rewrites the journal as empty: magic plus the header record.
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	buf := append([]byte{}, magic...)
	buf = appendRecord(buf, []byte(j.key))
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.slots = map[int][]byte{}
	return j.f.Sync()
}

// Slot returns the journaled payload for job i, if present.
func (j *Journal) Slot(i int) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.slots[i]
	return p, ok
}

// Len returns how many slots the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.slots)
}

// Append durably records payload as the result of job slot i: the record is
// written and fsynced before Append returns, so a crash immediately after a
// job completes never loses it. Safe for concurrent use.
func (j *Journal) Append(i int, payload []byte) error {
	if i < 0 {
		return fmt.Errorf("checkpoint: negative slot %d", i)
	}
	body := binary.AppendUvarint(nil, uint64(i))
	body = append(body, payload...)
	rec := appendRecord(nil, body)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.slots[i]; ok {
		return nil // already journaled (resume re-ran a cached slot)
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("checkpoint: append slot %d: %w", i, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync slot %d: %w", i, err)
	}
	j.slots[i] = append([]byte(nil), payload...)
	return nil
}

// Close releases the journal file. The journal itself stays on disk; the
// caller removes it once the campaign output is fully persisted.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// appendRecord frames body as uvarint(len) | body | fnv64a(body).
func appendRecord(buf, body []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	h := fnv.New64a()
	//evaxlint:ignore droppederr hash.Hash.Write never returns an error
	h.Write(body)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// recoverRecords parses data leniently: complete records must be intact
// (checksum + shape) or the journal is ErrCorrupt, but an incomplete final
// record — a torn append — merely bounds validLen, the length of the good
// prefix. A journal torn before its header record yields validLen 0.
func recoverRecords(data []byte) (key string, slots map[int][]byte, validLen int, err error) {
	slots = map[int][]byte{}
	if len(data) < len(magic) {
		if bytes.HasPrefix(magic, data) {
			return "", slots, 0, nil // torn before the magic completed
		}
		return "", nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return "", nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(magic)
	header, n, err := readRecord(data[off:])
	if err != nil {
		return "", nil, 0, err
	}
	if n == 0 {
		return "", slots, 0, nil // torn header: journal never got started
	}
	key = string(header)
	off += n
	for off < len(data) {
		body, n, err := readRecord(data[off:])
		if err != nil {
			return "", nil, 0, err
		}
		if n == 0 {
			return key, slots, off, nil // torn tail
		}
		slot, m := binary.Uvarint(body)
		if m <= 0 || slot > 1<<31 {
			return "", nil, 0, fmt.Errorf("%w: record at offset %d has no slot index", ErrCorrupt, off)
		}
		slots[int(slot)] = append([]byte(nil), body[m:]...)
		off += n
	}
	return key, slots, off, nil
}

// readRecord parses one framed record from the front of data. It returns
// (nil, 0, nil) when data holds only an incomplete record (torn tail), and
// an ErrCorrupt error when a complete record fails its checksum.
func readRecord(data []byte) (body []byte, consumed int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	blen, m := binary.Uvarint(data)
	if m == 0 {
		return nil, 0, nil // length prefix itself torn
	}
	if m < 0 || blen > 1<<30 {
		return nil, 0, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, blen)
	}
	total := m + int(blen) + 8
	if len(data) < total {
		return nil, 0, nil // body or checksum torn
	}
	body = data[m : m+int(blen)]
	h := fnv.New64a()
	//evaxlint:ignore droppederr hash.Hash.Write never returns an error
	h.Write(body)
	if got := binary.LittleEndian.Uint64(data[m+int(blen) : total]); got != h.Sum64() {
		return nil, 0, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	return body, total, nil
}

// ParseJournal is the strict parser: it accepts only a complete,
// uncorrupted journal — torn tails, bad magic, and checksum mismatches all
// error (and arbitrary input never panics; a fuzz test pins this). Open
// uses the lenient recovery path instead; this entry point serves
// validation and the fuzz harness.
func ParseJournal(data []byte) (key string, slots map[int][]byte, err error) {
	key, slots, validLen, err := recoverRecords(data)
	if err != nil {
		return "", nil, err
	}
	if validLen != len(data) {
		return "", nil, fmt.Errorf("%w: truncated journal (%d of %d bytes valid)",
			ErrCorrupt, validLen, len(data))
	}
	return key, slots, nil
}

// Encode gob-encodes a job result for journaling. Gob preserves float64
// bit patterns exactly, which is what makes resumed campaigns bit-identical.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode reverses Encode.
func Decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decode: %w", err)
	}
	return nil
}

// Run executes a resumable fan-out: jobs whose slots the journal already
// holds are decoded instead of re-executed, fresh completions are journaled
// (durably, before the campaign proceeds), and the merged result is
// bit-identical to an uninterrupted runner.MapErrCtx for any worker count.
// A nil journal degrades to plain MapErrCtx with no persistence.
func Run[T any](ctx context.Context, j *Journal, o runner.Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, *runner.Report, error) {
	if j == nil {
		return runner.MapErrCtx(ctx, o, n, fn)
	}
	return runner.MapErrCtx(ctx, o, n, func(ctx context.Context, i int) (T, error) {
		if payload, ok := j.Slot(i); ok {
			var v T
			if err := Decode(payload, &v); err != nil {
				return v, fmt.Errorf("slot %d: %w", i, err)
			}
			return v, nil
		}
		v, err := fn(ctx, i)
		if err != nil {
			return v, err
		}
		payload, err := Encode(v)
		if err != nil {
			return v, fmt.Errorf("slot %d: %w", i, err)
		}
		if err := j.Append(i, payload); err != nil {
			return v, err
		}
		return v, nil
	})
}
