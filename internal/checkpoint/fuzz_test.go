package checkpoint

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// buildJournal assembles a well-formed journal in memory for seeding.
func buildJournal(key string, slots map[int][]byte) []byte {
	buf := append([]byte{}, magic...)
	buf = appendRecord(buf, []byte(key))
	idx := make([]int, 0, len(slots))
	for i := range slots {
		idx = append(idx, i)
	}
	sort.Ints(idx) // deterministic record order
	for _, i := range idx {
		body := binary.AppendUvarint(nil, uint64(i))
		body = append(body, slots[i]...)
		buf = appendRecord(buf, body)
	}
	return buf
}

// FuzzParseJournal holds the strict journal reader to its contract on
// arbitrary bytes: it may reject, but it must never panic, and anything it
// accepts must survive the lenient recovery path and re-validate after a
// rebuild.
func FuzzParseJournal(f *testing.F) {
	good := buildJournal("corpus/v1|jobs=8", map[int][]byte{0: []byte("alpha"), 3: []byte("beta")})
	f.Add(good)
	f.Add(good[:len(good)-3])             // torn tail
	f.Add(good[:len(magic)])              // magic only
	f.Add([]byte{})                       // empty file
	f.Add([]byte("EVAXCKPT1\n"))          // header record missing
	f.Add([]byte("WRONGMAGIC"))           // complete but not a journal
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // uvarint overflow territory
	flip := append([]byte(nil), good...)
	flip[len(good)-4] ^= 0x10
	f.Add(flip) // bit-flipped checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		key, slots, err := ParseJournal(data) // must not panic
		if err != nil {
			return
		}
		// Accepted journals must round-trip through a rebuild.
		rebuilt := buildJournal(key, slots)
		k2, s2, err := ParseJournal(rebuilt)
		if err != nil {
			t.Fatalf("accepted journal failed to re-validate after rebuild: %v", err)
		}
		if k2 != key || len(s2) != len(slots) {
			t.Fatalf("rebuild changed the journal: key %q->%q, %d->%d slots",
				key, k2, len(slots), len(s2))
		}
		// And the lenient path must agree with the strict one.
		gotKey, gotSlots, validLen, rerr := recoverRecords(data)
		if rerr != nil || gotKey != key || len(gotSlots) != len(slots) || validLen != len(data) {
			t.Fatalf("recovery path disagrees with strict parse: key %q, %d slots, %d/%d valid, err %v",
				gotKey, len(gotSlots), validLen, len(data), rerr)
		}
	})
}

// FuzzOpenNeverPanics drives the full Open path (file-backed recovery,
// truncation, header rewrite) with arbitrary on-disk bytes.
func FuzzOpenNeverPanics(f *testing.F) {
	f.Add(buildJournal("k", map[int][]byte{1: []byte("x")}))
	f.Add([]byte("EVAXCKPT1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path, "k")
		if err != nil {
			return
		}
		// An opened journal must accept appends and survive reopen.
		if err := j.Append(7, []byte("post")); err != nil {
			t.Fatalf("append on recovered journal: %v", err)
		}
		j.Close()
		j2, err := Open(path, "k")
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		if _, ok := j2.Slot(7); !ok {
			t.Fatal("append lost across reopen")
		}
		j2.Close()
	})
}
