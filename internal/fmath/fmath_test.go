package fmath

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{1e12, 1e12 * (1 + 1e-12), true}, // relative tolerance at scale
		{1e12, 1e12 * (1 + 1e-6), false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) || !Zero(-1e-12) {
		t.Error("Zero should accept tiny values")
	}
	if Zero(1e-6) || Zero(-1) {
		t.Error("Zero should reject non-tiny values")
	}
}

func TestNear(t *testing.T) {
	if !Near(1.0, 1.05, 0.1) {
		t.Error("Near(1, 1.05, 0.1) should hold")
	}
	if Near(1.0, 1.2, 0.1) {
		t.Error("Near(1, 1.2, 0.1) should not hold")
	}
}
