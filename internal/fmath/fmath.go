// Package fmath holds the approved floating-point comparison idioms
// enforced by evaxlint's floateq rule. Exact ==/!= between floats is
// banned outside this package: results differ across FMA contraction,
// accumulation order and compiler versions, which breaks the bit-for-bit
// reproducibility the detector/GAN training pipeline depends on.
package fmath

import "math"

// Eps is the default comparison tolerance. Counter features are
// max-normalized into [0,1] and network weights stay O(1), so a single
// absolute/relative hybrid tolerance serves the whole pipeline.
const Eps = 1e-9

// Eq reports a ≈ b under a hybrid absolute/relative tolerance: absolute
// Eps near zero, relative Eps for large magnitudes.
func Eq(a, b float64) bool {
	if a == b { // fast path; also handles ±Inf
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= Eps*scale
}

// Zero reports |x| <= Eps.
func Zero(x float64) bool {
	return math.Abs(x) <= Eps
}

// Near reports |a-b| <= eps under an explicit absolute tolerance.
func Near(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
