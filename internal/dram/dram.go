// Package dram models main memory at the granularity microarchitectural
// memory attacks require: banks with open-row buffers (the DRAMA timing
// channel), per-row activation counting inside refresh windows with
// bit-flip thresholds (Rowhammer), a Target Row Refresh mitigation that
// many-sided hammering can overwhelm (TRRespass), and a small write queue
// that services reads (the `bytesReadWrQ` HPC the paper highlights).
//
// The model plays the role of Ramulator plus the memory-corruption module
// the paper added to gem5.
package dram

// Config sizes the DRAM model.
type Config struct {
	Banks        int
	RowBytes     int    // bytes per row (row-buffer size)
	TRCD         uint64 // activate-to-access, cycles
	TCAS         uint64 // column access, cycles
	TRP          uint64 // precharge, cycles
	RefreshEvery uint64 // refresh window length, cycles
	// FlipThreshold is the activation count within one refresh window
	// beyond which a neighbouring row suffers bit flips.
	FlipThreshold uint64
	// TRRTrackers is the number of aggressor rows the Target Row Refresh
	// logic can track per bank (0 disables TRR). Hammering more distinct
	// rows than this defeats the mitigation (the TRRespass observation).
	TRRTrackers int
	// WriteQueue is the number of recent store lines a read can be
	// serviced from without a bank access.
	WriteQueue int
}

// DefaultConfig returns a DDR-like configuration: 8 banks, 8KB rows, and
// classical timings scaled to the core's 2GHz clock.
func DefaultConfig() Config {
	return Config{
		Banks:         8,
		RowBytes:      8 << 10,
		TRCD:          24,
		TCAS:          24,
		TRP:           24,
		RefreshEvery:  2_000_000, // ~1ms at 2GHz, scaled down for simulation
		FlipThreshold: 50_000,
		TRRTrackers:   4,
		WriteQueue:    8,
	}
}

// Stats counts DRAM events.
type Stats struct {
	Reads            uint64
	Writes           uint64
	Activates        uint64
	RowHits          uint64 // row-buffer hits
	RowConflicts     uint64 // row-buffer conflicts (precharge + activate)
	Refreshes        uint64 // refresh windows elapsed
	TRRRefreshes     uint64 // neighbour refreshes issued by TRR
	BitFlips         uint64 // total victim-row bit flips
	BytesRead        uint64
	BytesWritten     uint64
	BytesReadWrQ     uint64 // read bytes serviced by the write queue
	SelfRefreshTicks uint64 // idle self-refresh energy proxy
}

type bank struct {
	openRow   int64 // -1 when precharged
	actCounts map[int64]uint64
	trrRows   []int64 // aggressors TRR is tracking
}

// Flip records one Rowhammer bit flip.
type Flip struct {
	Row  int64
	Bank int
	Bit  uint // bit index within the row flipped
}

// DRAM is the memory model. It satisfies cache.Backend.
type DRAM struct {
	cfg       Config
	banks     []bank
	lastEpoch uint64
	lastNow   uint64
	writeQ    []uint64 // recent store line addresses, newest last
	flips     []Flip
	flipped   map[uint64]struct{} // row keys already flipped this window

	Stats Stats
}

// New creates a DRAM model.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks), flipped: make(map[uint64]struct{})}
	for i := range d.banks {
		d.banks[i].openRow = -1
		d.banks[i].actCounts = make(map[int64]uint64)
	}
	return d
}

// mapAddr splits an address into bank and row.
func (d *DRAM) mapAddr(addr uint64) (bankIdx int, row int64) {
	line := addr / 64
	bankIdx = int(line) % d.cfg.Banks
	row = int64(addr / uint64(d.cfg.RowBytes) / uint64(d.cfg.Banks))
	return
}

// BankRow exposes the address mapping (attack generators build row-conflict
// pairs and hammer patterns from it).
func (d *DRAM) BankRow(addr uint64) (bank int, row int64) { return d.mapAddr(addr) }

// RowBytes returns the row-buffer size.
func (d *DRAM) RowBytes() int { return d.cfg.RowBytes }

// Banks returns the bank count.
func (d *DRAM) Banks() int { return d.cfg.Banks }

// refreshTick advances refresh windows based on the current cycle.
func (d *DRAM) refreshTick(now uint64) {
	if now > d.lastNow {
		// Idle gaps accumulate self-refresh "energy".
		d.Stats.SelfRefreshTicks += (now - d.lastNow) / 1024
		d.lastNow = now
	}
	epoch := now / d.cfg.RefreshEvery
	if epoch != d.lastEpoch {
		d.Stats.Refreshes += epoch - d.lastEpoch
		d.lastEpoch = epoch
		for i := range d.banks {
			clear(d.banks[i].actCounts)
			d.banks[i].trrRows = d.banks[i].trrRows[:0]
		}
		clear(d.flipped)
	}
}

// Access reads or writes the line containing addr at cycle now, returning
// the latency. It satisfies cache.Backend.
func (d *DRAM) Access(now uint64, addr uint64, write bool) uint64 {
	d.refreshTick(now)
	if write {
		d.Stats.Writes++
		d.Stats.BytesWritten += 64
		d.pushWriteQ(addr &^ 63)
	} else {
		d.Stats.Reads++
		d.Stats.BytesRead += 64
		if d.inWriteQ(addr &^ 63) {
			// Read serviced by the write queue: fast path, no bank access.
			d.Stats.BytesReadWrQ += 64
			return d.cfg.TCAS / 2
		}
	}

	bankIdx, row := d.mapAddr(addr)
	b := &d.banks[bankIdx]
	switch {
	case b.openRow == row:
		d.Stats.RowHits++
		return d.cfg.TCAS
	case b.openRow == -1:
		d.activate(b, bankIdx, row)
		return d.cfg.TRCD + d.cfg.TCAS
	default:
		d.Stats.RowConflicts++
		d.activate(b, bankIdx, row)
		return d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	}
}

func (d *DRAM) activate(b *bank, bankIdx int, row int64) {
	b.openRow = row
	b.actCounts[row]++
	d.Stats.Activates++
	d.maybeTRR(b, row)
	d.maybeFlip(b, bankIdx, row)
}

// maybeTRR models Target Row Refresh: track the most frequently activated
// rows; when a tracked row's count crosses half the flip threshold, refresh
// its neighbours (zeroing their disturbance). With more concurrent
// aggressors than trackers, untracked rows escape mitigation.
func (d *DRAM) maybeTRR(b *bank, row int64) {
	if d.cfg.TRRTrackers == 0 {
		return
	}
	tracked := false
	for _, r := range b.trrRows {
		if r == row {
			tracked = true
			break
		}
	}
	if !tracked {
		if len(b.trrRows) < d.cfg.TRRTrackers {
			b.trrRows = append(b.trrRows, row)
			tracked = true
		}
	}
	if tracked && b.actCounts[row] >= d.cfg.FlipThreshold/2 && b.actCounts[row]%(d.cfg.FlipThreshold/2) == 0 {
		// Refresh neighbours: their accumulated disturbance is cleared.
		delete(b.actCounts, row-1)
		delete(b.actCounts, row+1)
		d.Stats.TRRRefreshes++
		// Neighbour refresh also resets the *disturbance seen by*
		// neighbours from this aggressor; model by halving its count.
		b.actCounts[row] /= 2
	}
}

// maybeFlip checks whether row's activation count has crossed the flip
// threshold and, if so, flips a bit in each physical neighbour.
func (d *DRAM) maybeFlip(b *bank, bankIdx int, row int64) {
	if b.actCounts[row] < d.cfg.FlipThreshold {
		return
	}
	for _, victim := range []int64{row - 1, row + 1} {
		if victim < 0 {
			continue
		}
		key := uint64(bankIdx)<<40 | uint64(victim)
		if _, done := d.flipped[key]; done {
			continue
		}
		d.flipped[key] = struct{}{}
		// Deterministic bit position derived from the victim row.
		bit := uint(uint64(victim*2654435761) % uint64(d.cfg.RowBytes*8))
		d.flips = append(d.flips, Flip{Row: victim, Bank: bankIdx, Bit: bit})
		d.Stats.BitFlips++
	}
}

func (d *DRAM) pushWriteQ(lineAddr uint64) {
	for i, a := range d.writeQ {
		if a == lineAddr {
			// Refresh position to newest.
			d.writeQ = append(append(d.writeQ[:i], d.writeQ[i+1:]...), lineAddr)
			return
		}
	}
	if len(d.writeQ) >= d.cfg.WriteQueue {
		d.writeQ = d.writeQ[1:]
	}
	d.writeQ = append(d.writeQ, lineAddr)
}

func (d *DRAM) inWriteQ(lineAddr uint64) bool {
	for _, a := range d.writeQ {
		if a == lineAddr {
			return true
		}
	}
	return false
}

// Flips returns the bit flips induced so far.
func (d *DRAM) Flips() []Flip { return d.flips }

// ActivationCount reports activations of the row containing addr in the
// current refresh window.
func (d *DRAM) ActivationCount(addr uint64) uint64 {
	bankIdx, row := d.mapAddr(addr)
	return d.banks[bankIdx].actCounts[row]
}

// BytesPerActivate returns the paper's `bytesPerActivate` HPC: mean bytes
// moved per row activation (low values indicate hammering).
func (d *DRAM) BytesPerActivate() float64 {
	if d.Stats.Activates == 0 {
		return 0
	}
	return float64(d.Stats.BytesRead+d.Stats.BytesWritten) / float64(d.Stats.Activates)
}
