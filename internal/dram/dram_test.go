package dram

import "testing"

// testConfig shrinks thresholds so tests run fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.FlipThreshold = 100
	cfg.RefreshEvery = 1_000_000
	return cfg
}

func TestRowBufferTiming(t *testing.T) {
	d := New(testConfig())
	// First access: empty bank -> activate.
	lat1 := d.Access(0, 0x10000, false)
	// Same bank (stride = banks*lineSize) and same row -> row hit, fastest.
	sameBankSameRow := uint64(0x10000) + uint64(testConfig().Banks*64)
	lat2 := d.Access(100, sameBankSameRow, false)
	if lat2 >= lat1 {
		t.Fatalf("row hit (%d) not faster than activate (%d)", lat2, lat1)
	}
	// Different row, same bank -> conflict, slowest.
	cfg := testConfig()
	conflictAddr := uint64(0x10000) + uint64(cfg.RowBytes*cfg.Banks)
	bank1, row1 := d.BankRow(0x10000)
	bank2, row2 := d.BankRow(conflictAddr)
	if bank1 != bank2 || row1 == row2 {
		t.Fatalf("address mapping: (%d,%d) vs (%d,%d), want same bank different row", bank1, row1, bank2, row2)
	}
	lat3 := d.Access(200, conflictAddr, false)
	if lat3 <= lat1 {
		t.Fatalf("row conflict (%d) not slower than activate (%d)", lat3, lat1)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowConflicts != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestWriteQueueServicesReads(t *testing.T) {
	d := New(testConfig())
	d.Access(0, 0x2000, true)
	lat := d.Access(10, 0x2000, false)
	if d.Stats.BytesReadWrQ != 64 {
		t.Fatalf("bytesReadWrQ = %d, want 64", d.Stats.BytesReadWrQ)
	}
	if lat >= d.cfg.TCAS {
		t.Fatalf("write-queue read latency %d not faster than CAS %d", lat, d.cfg.TCAS)
	}
}

func TestWriteQueueCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.WriteQueue = 2
	d := New(cfg)
	d.Access(0, 0x1000, true)
	d.Access(1, 0x2000, true)
	d.Access(2, 0x3000, true) // evicts 0x1000
	d.Access(3, 0x1000, false)
	if d.Stats.BytesReadWrQ != 0 {
		t.Fatal("evicted write-queue entry serviced a read")
	}
}

func TestRowhammerFlipsWithoutTRR(t *testing.T) {
	cfg := testConfig()
	cfg.TRRTrackers = 0
	d := New(cfg)
	// Hammer two rows in the same bank alternately (classic double-sided
	// pattern forces an activate each access).
	a := uint64(0x10000)
	b := a + uint64(cfg.RowBytes*cfg.Banks)
	now := uint64(0)
	for i := uint64(0); i < 2*cfg.FlipThreshold+10; i++ {
		now += d.Access(now, a, false)
		now += d.Access(now, b, false)
	}
	if d.Stats.BitFlips == 0 {
		t.Fatal("no bit flips despite hammering past threshold")
	}
	if len(d.Flips()) != int(d.Stats.BitFlips) {
		t.Fatalf("flip log %d != counter %d", len(d.Flips()), d.Stats.BitFlips)
	}
}

func TestTRRMitigatesDoubleSided(t *testing.T) {
	cfg := testConfig()
	cfg.TRRTrackers = 4
	d := New(cfg)
	a := uint64(0x10000)
	b := a + uint64(cfg.RowBytes*cfg.Banks)
	now := uint64(0)
	for i := uint64(0); i < 4*cfg.FlipThreshold; i++ {
		now += d.Access(now, a, false)
		now += d.Access(now, b, false)
	}
	if d.Stats.BitFlips != 0 {
		t.Fatalf("TRR failed to stop 2-sided hammering: %d flips", d.Stats.BitFlips)
	}
	if d.Stats.TRRRefreshes == 0 {
		t.Fatal("TRR never fired")
	}
}

func TestManySidedDefeatsTRR(t *testing.T) {
	// TRRespass: hammering more rows than TRR can track slips through.
	cfg := testConfig()
	cfg.TRRTrackers = 2
	d := New(cfg)
	stride := uint64(cfg.RowBytes * cfg.Banks)
	rows := make([]uint64, 10)
	for i := range rows {
		rows[i] = 0x10000 + uint64(i)*stride
	}
	now := uint64(0)
	for i := uint64(0); i < 3*cfg.FlipThreshold; i++ {
		for _, r := range rows {
			now += d.Access(now, r, false)
		}
	}
	if d.Stats.BitFlips == 0 {
		t.Fatal("many-sided hammering failed to flip bits under small TRR")
	}
}

func TestRefreshClearsActivationCounts(t *testing.T) {
	cfg := testConfig()
	cfg.TRRTrackers = 0
	d := New(cfg)
	a := uint64(0x10000)
	b := a + uint64(cfg.RowBytes*cfg.Banks)
	// Hammer to just below threshold, then jump past a refresh boundary.
	now := uint64(0)
	for i := uint64(0); i < cfg.FlipThreshold/2; i++ {
		now += d.Access(now, a, false)
		now += d.Access(now, b, false)
	}
	pre := d.ActivationCount(a)
	if pre == 0 {
		t.Fatal("no activations recorded")
	}
	d.Access(now+cfg.RefreshEvery, a, false)
	if got := d.ActivationCount(a); got > 1 {
		t.Fatalf("activation count %d after refresh, want <=1", got)
	}
	if d.Stats.Refreshes == 0 {
		t.Fatal("refresh not counted")
	}
}

func TestBytesPerActivate(t *testing.T) {
	d := New(testConfig())
	if d.BytesPerActivate() != 0 {
		t.Fatal("bytesPerActivate nonzero before any access")
	}
	// Streaming within one row: many bytes per activation.
	now := uint64(0)
	for i := uint64(0); i < 32; i++ {
		now += d.Access(now, 0x10000+i*64*uint64(d.Banks()), false)
	}
	streamBPA := d.BytesPerActivate()
	// Hammering: one line per activation.
	d2 := New(testConfig())
	a := uint64(0x10000)
	b := a + uint64(d2.cfg.RowBytes*d2.cfg.Banks)
	now = 0
	for i := uint64(0); i < 32; i++ {
		now += d2.Access(now, a, false)
		now += d2.Access(now, b, false)
	}
	hammerBPA := d2.BytesPerActivate()
	if hammerBPA >= streamBPA {
		t.Fatalf("hammer BPA (%v) not below streaming BPA (%v)", hammerBPA, streamBPA)
	}
}

func TestSelfRefreshAccumulatesWhenIdle(t *testing.T) {
	d := New(testConfig())
	d.Access(0, 0x1000, false)
	d.Access(500_000, 0x1000, false) // long idle gap
	if d.Stats.SelfRefreshTicks == 0 {
		t.Fatal("no self-refresh energy accumulated over idle gap")
	}
}

func TestDeterministicFlipPositions(t *testing.T) {
	run := func() []Flip {
		cfg := testConfig()
		cfg.TRRTrackers = 0
		d := New(cfg)
		a := uint64(0x10000)
		b := a + uint64(cfg.RowBytes*cfg.Banks)
		now := uint64(0)
		for i := uint64(0); i < 2*cfg.FlipThreshold; i++ {
			now += d.Access(now, a, false)
			now += d.Access(now, b, false)
		}
		return d.Flips()
	}
	f1, f2 := run(), run()
	if len(f1) == 0 || len(f1) != len(f2) {
		t.Fatalf("flip counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("flip %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
}
