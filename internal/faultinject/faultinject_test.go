package faultinject

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"evax/internal/checkpoint"
	"evax/internal/runner"
	"evax/internal/safeio"
)

func job(_ context.Context, i int) (float64, error) {
	return float64(i)*1.5 + 0.25, nil
}

func TestPlanDeterministic(t *testing.T) {
	p := Plan{Domain: "det", Seed: 7, Rate: 0.3}
	q := Plan{Domain: "det", Seed: 7, Rate: 0.3}
	for i := 0; i < 500; i++ {
		if p.Faulty(i) != q.Faulty(i) {
			t.Fatalf("schedule not a pure function at job %d", i)
		}
	}
	n := p.FaultCount(500)
	if n == 0 || n == 500 {
		t.Fatalf("rate 0.3 faulted %d of 500 jobs", n)
	}
	if (Plan{Rate: 0}).FaultCount(100) != 0 {
		t.Fatal("zero rate must fault nothing")
	}
	if (Plan{Rate: 1}).FaultCount(100) != 100 {
		t.Fatal("rate 1 must fault everything")
	}
	other := Plan{Domain: "det", Seed: 8, Rate: 0.3}
	same := true
	for i := 0; i < 500 && same; i++ {
		same = p.Faulty(i) == other.Faulty(i)
	}
	if same {
		t.Fatal("different seeds produced the same schedule")
	}
}

// TestTransientErrorsAbsorbedByRetry: injected transient errors plus retry
// budget produce output bit-identical to a fault-free run, for several
// worker counts.
func TestTransientErrorsAbsorbedByRetry(t *testing.T) {
	const n = 64
	ref, _, err := runner.MapErrCtx(context.Background(), runner.Options{Jobs: 1}, n, job)
	if err != nil {
		t.Fatal(err)
	}
	p := Plan{Domain: "transient", Seed: 3, Rate: 0.4, Fails: 2}
	for _, jobs := range []int{1, 4} {
		o := runner.Options{Jobs: jobs, Retry: runner.Retry{Attempts: 3, Backoff: time.Microsecond}}
		got, rep, err := runner.MapErrCtx(context.Background(), o, n, WithErrors(p, n, job))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("jobs=%d: faulted campaign diverged from fault-free run", jobs)
		}
		for i := 0; i < n; i++ {
			want := 1
			if p.Faulty(i) {
				want = 3 // two injected failures, then success
			}
			if rep.Attempts[i] != want {
				t.Fatalf("jobs=%d: job %d took %d attempts, want %d", jobs, i, rep.Attempts[i], want)
			}
		}
	}
}

// TestPermanentFaultSurfaces: a fault outlasting the retry budget fails the
// campaign with lowest-index attribution, and the report still identifies
// every slot that completed.
func TestPermanentFaultSurfaces(t *testing.T) {
	const n = 32
	p := Plan{Domain: "permanent", Seed: 5, Rate: 0.2, Fails: 99}
	o := runner.Options{Jobs: 4, Retry: runner.Retry{Attempts: 2, Backoff: time.Microsecond}}
	_, rep, err := runner.MapErrCtx(context.Background(), o, n, WithErrors(p, n, job))
	if err == nil {
		t.Fatal("permanent faults did not surface")
	}
	lowest := -1
	for i := 0; i < n; i++ {
		if p.Faulty(i) {
			lowest = i
			break
		}
	}
	if lowest < 0 {
		t.Fatal("schedule faulted no jobs; pick another seed")
	}
	if !strings.Contains(err.Error(), "job "+strconv.Itoa(lowest)+":") {
		t.Fatalf("err = %v, want attribution to job %d", err, lowest)
	}
	if rep.CompletedCount() != n-p.FaultCount(n) {
		t.Fatalf("%d slots completed, want %d", rep.CompletedCount(), n-p.FaultCount(n))
	}
	for i := 0; i < n; i++ {
		if rep.Completed[i] == p.Faulty(i) {
			t.Fatalf("slot %d completion %v contradicts the schedule", i, rep.Completed[i])
		}
	}
}

// TestInjectedPanicsAttributed: panics on the schedule surface as *JobPanic
// at the lowest faulted index.
func TestInjectedPanicsAttributed(t *testing.T) {
	const n = 24
	p := Plan{Domain: "panic", Seed: 11, Rate: 0.25, Fails: 99}
	if p.FaultCount(n) == 0 {
		t.Fatal("schedule faulted no jobs; pick another seed")
	}
	o := runner.Options{Jobs: 4, CapturePanics: true}
	_, _, err := runner.MapErrCtx(context.Background(), o, n, WithPanics(p, n, job))
	var jp *runner.JobPanic
	if !errors.As(err, &jp) {
		t.Fatalf("err = %v, want *JobPanic", err)
	}
	for i := 0; i < n; i++ {
		if p.Faulty(i) {
			if jp.Index != i {
				t.Fatalf("panic attributed to job %d, lowest faulted is %d", jp.Index, i)
			}
			break
		}
	}
}

// TestSlowJobsCutByDeadline: scheduled stalls exceed the per-job deadline
// and surface as deadline errors; clean jobs complete.
func TestSlowJobsCutByDeadline(t *testing.T) {
	const n = 16
	p := Plan{Domain: "slow", Seed: 2, Rate: 0.3, Fails: 99}
	if p.FaultCount(n) == 0 {
		t.Fatal("schedule faulted no jobs; pick another seed")
	}
	o := runner.Options{Jobs: 4, JobTimeout: 2 * time.Millisecond}
	_, rep, err := runner.MapErrCtx(context.Background(), o, n,
		WithSlowdown(p, n, time.Second, job))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if rep.CompletedCount() != n-p.FaultCount(n) {
		t.Fatalf("%d slots completed, want %d", rep.CompletedCount(), n-p.FaultCount(n))
	}
}

// TestCrashResumeUnderFaults is the end-to-end graceful-degradation story:
// a checkpointed campaign is killed mid-run by injected cancellation, the
// journal survives, and the resumed run — still under transient faults —
// produces output bit-identical to a fault-free uninterrupted campaign.
func TestCrashResumeUnderFaults(t *testing.T) {
	const n = 48
	ref, _, err := runner.MapErrCtx(context.Background(), runner.Options{Jobs: 1}, n, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4} {
		path := filepath.Join(t.TempDir(), "campaign.journal")
		j, err := checkpoint.Open(path, "faulted-campaign")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		p := Plan{Domain: "crash", Seed: int64(jobs), Rate: 0.3, Fails: 1}
		o := runner.Options{Jobs: jobs, Retry: runner.Retry{Attempts: 2, Backoff: time.Microsecond}}
		o.OnJobDone = func(done int) {
			if done >= 9 {
				cancel() // the injected kill
			}
		}
		_, _, err = checkpoint.Run(ctx, j, o, n, WithErrors(p, n, job))
		cancel()
		j.Close()
		// The kill surfaces either as context.Canceled or as a transient
		// job error whose retry the cancellation cut short — both are an
		// interrupted campaign.
		if err == nil {
			t.Fatalf("jobs=%d: interrupted run reported success", jobs)
		}

		j2, err := checkpoint.Open(path, "faulted-campaign")
		if err != nil {
			t.Fatal(err)
		}
		if j2.Len() == 0 || j2.Len() >= n {
			t.Fatalf("jobs=%d: journal holds %d slots, want a partial campaign", jobs, j2.Len())
		}
		p2 := Plan{Domain: "crash-resume", Seed: int64(jobs), Rate: 0.3, Fails: 1}
		resumed, rep, err := checkpoint.Run(context.Background(), j2, o, n, WithErrors(p2, n, job))
		j2.Close()
		if err != nil {
			t.Fatalf("jobs=%d: resume: %v", jobs, err)
		}
		if rep.CompletedCount() != n {
			t.Fatalf("jobs=%d: resume completed %d of %d", jobs, rep.CompletedCount(), n)
		}
		if !reflect.DeepEqual(ref, resumed) {
			t.Fatalf("jobs=%d: resumed output diverged from fault-free run", jobs)
		}
	}
}

// TestTornWriteHookDeterministic: the k-th write tears, earlier and later
// ones land — and the destination of the torn write keeps its old bytes.
func TestTornWriteHookDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := safeio.WriteFile(b, []byte("b-v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	restore := safeio.SetHook(TornWriteHook(1)) // second write tears
	errA := safeio.WriteFile(a, []byte("a-v2"), 0o644)
	errB := safeio.WriteFile(b, []byte("b-v2"), 0o644)
	restore()
	if errA != nil {
		t.Fatalf("first write should land: %v", errA)
	}
	if !errors.Is(errB, safeio.ErrTorn) {
		t.Fatalf("second write should tear: %v", errB)
	}
	assertFile(t, a, "a-v2")
	assertFile(t, b, "b-v1") // old bytes survive the torn update
}

func TestFailOpHookSkips(t *testing.T) {
	hook := FailOpHook(safeio.OpSync, 1)
	if err := hook(safeio.OpSync, "x"); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := hook(safeio.OpSync, "x"); err == nil {
		t.Fatal("second sync should fail")
	}
	if err := hook(safeio.OpRename, "x"); err != nil {
		t.Fatalf("other ops unaffected: %v", err)
	}
}

func assertFile(t *testing.T, path, want string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("%s holds %q, want %q", path, got, want)
	}
}
