// Package faultinject is the deterministic fault-injection harness for the
// campaign stack. A Plan derives its fault schedule from a seed via the
// same FNV hash the runner uses for job seeds, so "which jobs fault, on
// which attempts" is a pure function of (domain, seed, job index, attempt)
// — every run of a test injects exactly the same faults, under any worker
// count, with no RNG state shared between jobs.
//
// The harness covers both fault surfaces the engine defends:
//
//   - compute faults: WithErrors / WithPanics / WithSlowdown wrap a
//     runner.MapErrCtx job function to fail, panic, or stall on scheduled
//     attempts — exercising retry, panic attribution, and deadlines;
//   - I/O faults: TornWriteHook / FailOpHook build safeio.Hook values that
//     tear or fail specific steps of the persistence protocol —
//     exercising crash-safe writes and checkpoint-journal recovery.
//
// Production code never imports this package; it exists for tests and the
// `make faults` CI job.
package faultinject

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"evax/internal/runner"
	"evax/internal/safeio"
)

// Plan is a deterministic fault schedule over job indices.
type Plan struct {
	// Domain namespaces the schedule so independent planes of faults
	// (errors vs panics vs slowdowns) in one test draw different jobs.
	Domain string
	// Seed selects one schedule out of the family; tests vary it to cover
	// different fault placements without losing reproducibility.
	Seed int64
	// Rate is the fraction of jobs faulted, in [0, 1]. 0 disables the
	// plan; 1 faults every job.
	Rate float64
	// Fails is how many leading attempts of a faulted job misbehave before
	// it succeeds; 0 means 1. A value at or above the retry budget makes
	// the fault permanent.
	Fails int
}

func (p Plan) fails() int {
	if p.Fails <= 0 {
		return 1
	}
	return p.Fails
}

// Faulty reports whether job i is on the schedule — a pure function of the
// plan and i.
func (p Plan) Faulty(i int) bool {
	if p.Rate <= 0 {
		return false
	}
	if p.Rate >= 1 {
		return true
	}
	h := uint64(runner.DeriveSeed("faultinject/"+p.Domain, i, p.Seed))
	return float64(h>>11)/float64(1<<53) < p.Rate
}

// ShouldFault reports whether attempt k (1-based) of job i misbehaves:
// faulted jobs fail their first Fails attempts and then run clean, which is
// exactly the transient-fault shape the retry loop must absorb.
func (p Plan) ShouldFault(i, k int) bool {
	return p.Faulty(i) && k <= p.fails()
}

// FaultCount returns how many of the first n jobs the plan faults.
func (p Plan) FaultCount(n int) int {
	c := 0
	for i := 0; i < n; i++ {
		if p.Faulty(i) {
			c++
		}
	}
	return c
}

// JobFn mirrors the runner.MapErrCtx job signature.
type JobFn[T any] func(ctx context.Context, i int) (T, error)

// attemptTracker counts executions per job so wrappers know which attempt
// is running; runner.Report counts the same thing, but the wrapper cannot
// see it.
type attemptTracker []atomic.Int32

func newTracker(n int) attemptTracker { return make(attemptTracker, n) }

func (t attemptTracker) next(i int) int { return int(t[i].Add(1)) }

// WithErrors wraps fn for an n-job campaign: scheduled attempts fail with a
// retryable error instead of running the job.
func WithErrors[T any](p Plan, n int, fn JobFn[T]) JobFn[T] {
	tr := newTracker(n)
	return func(ctx context.Context, i int) (T, error) {
		if k := tr.next(i); p.ShouldFault(i, k) {
			var zero T
			return zero, runner.Retryable(fmt.Errorf("faultinject: injected error on job %d attempt %d", i, k))
		}
		return fn(ctx, i)
	}
}

// WithPanics wraps fn: scheduled attempts panic, exercising the engine's
// capture and lowest-index attribution.
func WithPanics[T any](p Plan, n int, fn JobFn[T]) JobFn[T] {
	tr := newTracker(n)
	return func(ctx context.Context, i int) (T, error) {
		if k := tr.next(i); p.ShouldFault(i, k) {
			panic(fmt.Sprintf("faultinject: injected panic on job %d attempt %d", i, k))
		}
		return fn(ctx, i)
	}
}

// WithSlowdown wraps fn: scheduled attempts stall for delay before running
// (honoring ctx), exercising per-job deadlines and cancellation latency.
func WithSlowdown[T any](p Plan, n int, delay time.Duration, fn JobFn[T]) JobFn[T] {
	tr := newTracker(n)
	return func(ctx context.Context, i int) (T, error) {
		if k := tr.next(i); p.ShouldFault(i, k) {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				var zero T
				return zero, ctx.Err()
			case <-t.C:
			}
		}
		return fn(ctx, i)
	}
}

// TornWriteHook builds a safeio.Hook that tears the k-th write (0-based)
// passing through safeio — the simulated power cut. Subsequent writes
// proceed normally, so a test can fail one artifact and watch the campaign
// degrade gracefully.
func TornWriteHook(k int) safeio.Hook {
	var writes atomic.Int32
	return func(op safeio.Op, _ string) error {
		if op != safeio.OpWrite {
			return nil
		}
		if int(writes.Add(1))-1 == k {
			return fmt.Errorf("faultinject: %w", safeio.ErrTorn)
		}
		return nil
	}
}

// TornPathHook builds a safeio.Hook that tears the k-th write (0-based)
// whose destination path contains substr, leaving every other write intact.
// Multi-file protocols (e.g. the engine's generation staging: candidate
// file, then ledger) use it to crash exactly one named step and assert the
// others recover.
func TornPathHook(substr string, k int) safeio.Hook {
	var writes atomic.Int32
	return func(op safeio.Op, path string) error {
		if op != safeio.OpWrite || !strings.Contains(path, substr) {
			return nil
		}
		if int(writes.Add(1))-1 == k {
			return fmt.Errorf("faultinject: %w", safeio.ErrTorn)
		}
		return nil
	}
}

// FailOpHook builds a safeio.Hook that fails every occurrence of op after
// skipping the first skip occurrences — e.g. "the second fsync returns
// ENOSPC, and every one after it".
func FailOpHook(op safeio.Op, skip int) safeio.Hook {
	var seen atomic.Int32
	return func(got safeio.Op, path string) error {
		if got != op {
			return nil
		}
		if int(seen.Add(1)) <= skip {
			return nil
		}
		return fmt.Errorf("faultinject: injected %s failure on %s", op, path)
	}
}
