package cache

// SpecBuffer implements the InvisiSpec speculative buffer: speculative loads
// deposit their lines here instead of in the cache; at the visibility point
// the line is exposed (re-fetched into the cache), and on a squash the entry
// is discarded leaving no cache footprint.
//
// The paper attaches a SpecBuffer to each L1 and one to the LLC; this model
// uses one buffer in front of the L1D, with exposure walking the hierarchy,
// which preserves the two first-order costs: the extra exposure access and
// the loss of cross-load reuse while speculative.
type SpecBuffer struct {
	cache   *Cache
	entries map[uint64]uint64 // line address -> fill cycle
	cap     int

	// FullStalls counts speculative loads delayed by a full buffer.
	FullStalls uint64
}

// NewSpecBuffer creates a buffer of capacity entries in front of c.
func NewSpecBuffer(c *Cache, capacity int) *SpecBuffer {
	return &SpecBuffer{cache: c, entries: make(map[uint64]uint64, capacity), cap: capacity}
}

// Load performs an invisible speculative load: the latency is what the
// hierarchy would charge, but no cache state changes; the line is recorded
// in the buffer for later exposure.
func (s *SpecBuffer) Load(now uint64, addr uint64) uint64 {
	lineAddr := s.cache.LineAddr(addr)
	if _, ok := s.entries[lineAddr]; ok {
		s.cache.Stats.SpecBufHits++
		return s.cache.cfg.TagLatency + s.cache.cfg.DataLatency
	}
	lat := s.cache.ReadNoAllocate(now, addr)
	if len(s.entries) >= s.cap {
		// Buffer full: the load must wait for an exposure slot; charge a
		// drain penalty and evict the oldest entry.
		s.FullStalls++
		lat += s.cache.cfg.RespLatency
		var oldest uint64
		var oldestAt uint64 = ^uint64(0)
		for a, at := range s.entries {
			if at < oldestAt {
				oldest, oldestAt = a, at
			}
		}
		delete(s.entries, oldest)
	}
	s.entries[lineAddr] = now
	s.cache.Stats.SpecFills++
	return lat
}

// Expose makes the buffered line architecturally visible: the cache performs
// the real fill. Returns the exposure latency (charged off the critical path
// of the exposing instruction's commit in the pipeline model, but consuming
// cache bandwidth).
func (s *SpecBuffer) Expose(now uint64, addr uint64) uint64 {
	lineAddr := s.cache.LineAddr(addr)
	if _, ok := s.entries[lineAddr]; !ok {
		return 0
	}
	delete(s.entries, lineAddr)
	s.cache.Stats.SpecExposes++
	return s.cache.Access(now, addr, false)
}

// Squash discards the buffered line without exposing it (misspeculation).
func (s *SpecBuffer) Squash(addr uint64) {
	lineAddr := s.cache.LineAddr(addr)
	if _, ok := s.entries[lineAddr]; ok {
		delete(s.entries, lineAddr)
		s.cache.Stats.SpecSquashed++
	}
}

// SquashAll discards every buffered line (pipeline flush).
func (s *SpecBuffer) SquashAll() {
	n := uint64(len(s.entries))
	s.cache.Stats.SpecSquashed += n
	clear(s.entries)
}

// Len reports the current occupancy.
func (s *SpecBuffer) Len() int { return len(s.entries) }
