// Package cache models the core's cache hierarchy: set-associative
// write-back caches with LRU replacement, MSHR-based miss tracking, write
// buffers, CLFLUSH support, and the InvisiSpec speculative buffer used by
// the gated defense.
//
// Timing is cycle-approximate: Access takes the current cycle and returns
// the latency of the request. Outstanding misses are tracked per line with a
// completion cycle, so a second access to an in-flight line coalesces onto
// the MSHR ("mshr hit") and sees only the residual latency — the
// memory-level-parallelism behaviour cache attacks and InvisiSpec both
// depend on.
package cache

// Backend is a lower level of the memory hierarchy: the next cache or DRAM.
type Backend interface {
	// Access performs a read or write-back of the line containing addr at
	// cycle now and returns the access latency in cycles.
	Access(now uint64, addr uint64, write bool) uint64
}

// FixedLatency is a Backend with a constant access time (used for tests and
// as an L2 backstop when DRAM detail is not needed).
type FixedLatency uint64

// Access returns the fixed latency.
func (f FixedLatency) Access(uint64, uint64, bool) uint64 { return uint64(f) }

// Config sizes one cache level.
type Config struct {
	Name        string
	Size        int    // bytes
	LineSize    int    // bytes
	Assoc       int    // ways
	TagLatency  uint64 // cycles to check tags
	DataLatency uint64 // cycles to deliver data on a hit
	RespLatency uint64 // added to miss fills
	MSHRs       int    // outstanding line misses
	WriteBufs   int    // write-back buffers
}

// L1D/L1I/L2 defaults per the paper's Table II.

// L1DConfig returns the 64KB, 8-way, 64B-line L1 data cache configuration.
func L1DConfig() Config {
	return Config{Name: "dcache", Size: 64 << 10, LineSize: 64, Assoc: 8,
		TagLatency: 1, DataLatency: 2, RespLatency: 2, MSHRs: 4, WriteBufs: 8}
}

// L1IConfig returns the 32KB, 4-way L1 instruction cache configuration.
func L1IConfig() Config {
	return Config{Name: "icache", Size: 32 << 10, LineSize: 64, Assoc: 4,
		TagLatency: 1, DataLatency: 1, RespLatency: 2, MSHRs: 4, WriteBufs: 4}
}

// L2Config returns the 2MB, 8-way shared L2 configuration
// (tagLatency=20, dataLatency=20, responseLatency=20, mshrs=20, writeBuffers=8).
func L2Config() Config {
	return Config{Name: "l2", Size: 2 << 20, LineSize: 64, Assoc: 8,
		TagLatency: 20, DataLatency: 20, RespLatency: 20, MSHRs: 20, WriteBufs: 8}
}

// Stats counts cache events for the HPC fabric.
type Stats struct {
	ReadHits         uint64
	ReadMisses       uint64
	WriteHits        uint64
	WriteMisses      uint64
	MSHRHits         uint64 // accesses coalesced onto an in-flight miss
	MSHRFullStalls   uint64 // accesses delayed because all MSHRs were busy
	MSHRMissLatency  uint64 // accumulated read-miss latency (cycles)
	CleanEvicts      uint64
	DirtyEvicts      uint64 // writebacks due to replacement
	Flushes          uint64 // lines invalidated by CLFLUSH
	FlushMisses      uint64 // CLFLUSH of a line not present
	Prefetches       uint64
	PrefetchFills    uint64 // prefetches that actually brought a line in
	WriteBufFull     uint64 // writebacks stalled on a full write buffer
	SpecFills        uint64 // InvisiSpec: lines placed in the spec buffer
	SpecExposes      uint64 // InvisiSpec: spec-buffer lines made visible
	SpecSquashed     uint64 // InvisiSpec: spec-buffer lines discarded on squash
	SpecBufHits      uint64 // speculative loads served from the spec buffer
	ReadSharedReqs   uint64 // bus transactions (membus.trans_dist::ReadSharedReq)
	WritebackReqs    uint64
	InvalidatesRecvd uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

type mshr struct {
	addr  uint64 // line address
	ready uint64 // cycle at which the fill completes
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     [][]line
	numSets  int
	lineMask uint64
	next     Backend
	mshrs    []mshr
	wbReady  []uint64 // write-buffer drain completion times
	lruClock uint64

	Stats Stats
}

// New creates a cache level backed by next.
func New(cfg Config, next Backend) *Cache {
	numSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		numSets:  numSets,
		lineMask: ^uint64(cfg.LineSize - 1),
		next:     next,
		mshrs:    make([]mshr, 0, cfg.MSHRs),
		wbReady:  make([]uint64, 0, cfg.WriteBufs),
	}
}

// LineAddr returns the line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr & c.lineMask }

func (c *Cache) setIdx(lineAddr uint64) int {
	return int(lineAddr/uint64(c.cfg.LineSize)) % c.numSets
}

func (c *Cache) find(lineAddr uint64) *line {
	set := c.sets[c.setIdx(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// Present reports whether the line containing addr is cached (no state
// change; used by CLFLUSH timing and by tests).
func (c *Cache) Present(addr uint64) bool { return c.find(c.LineAddr(addr)) != nil }

// reapMSHRs drops completed entries.
func (c *Cache) reapMSHRs(now uint64) {
	kept := c.mshrs[:0]
	for _, m := range c.mshrs {
		if m.ready > now {
			kept = append(kept, m)
		}
	}
	c.mshrs = kept
}

func (c *Cache) reapWriteBufs(now uint64) {
	kept := c.wbReady[:0]
	for _, r := range c.wbReady {
		if r > now {
			kept = append(kept, r)
		}
	}
	c.wbReady = kept
}

// victim selects the LRU way in the set containing lineAddr, evicting it if
// valid and returning any write-back latency added to the fill.
func (c *Cache) victim(now uint64, lineAddr uint64) (*line, uint64) {
	set := c.sets[c.setIdx(lineAddr)]
	v := &set[0]
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	var extra uint64
	if v.valid {
		if v.dirty {
			c.Stats.DirtyEvicts++
			c.Stats.WritebackReqs++
			extra += c.writeback(now, v.tag)
		} else {
			c.Stats.CleanEvicts++
		}
	}
	return v, extra
}

// writeback sends a dirty line down, possibly stalling on the write buffer.
func (c *Cache) writeback(now uint64, lineAddr uint64) uint64 {
	c.reapWriteBufs(now)
	var stall uint64
	if len(c.wbReady) >= c.cfg.WriteBufs {
		// Stall until the oldest buffer drains.
		oldest := c.wbReady[0]
		for _, r := range c.wbReady {
			if r < oldest {
				oldest = r
			}
		}
		if oldest > now {
			stall = oldest - now
		}
		c.Stats.WriteBufFull++
	}
	lat := c.next.Access(now+stall, lineAddr, true)
	c.wbReady = append(c.wbReady, now+stall+lat)
	// The requester does not wait for the writeback beyond the stall.
	return stall
}

// Access performs a demand read (write=false) or write (write=true) of the
// word at addr, returning the latency in cycles.
func (c *Cache) Access(now uint64, addr uint64, write bool) uint64 {
	lineAddr := c.LineAddr(addr)
	c.lruClock++
	c.reapMSHRs(now)

	if l := c.find(lineAddr); l != nil {
		l.lru = c.lruClock
		if write {
			l.dirty = true
		}
		// A line whose fill is still in flight coalesces onto the MSHR
		// and waits out the residual latency.
		for _, m := range c.mshrs {
			if m.addr == lineAddr {
				c.Stats.MSHRHits++
				return c.cfg.TagLatency + (m.ready - now)
			}
		}
		if write {
			c.Stats.WriteHits++
		} else {
			c.Stats.ReadHits++
		}
		return c.cfg.TagLatency + c.cfg.DataLatency
	}

	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}

	var stall uint64
	if len(c.mshrs) >= c.cfg.MSHRs {
		// All MSHRs busy: wait for the earliest completion.
		earliest := c.mshrs[0].ready
		for _, m := range c.mshrs {
			if m.ready < earliest {
				earliest = m.ready
			}
		}
		if earliest > now {
			stall = earliest - now
		}
		c.Stats.MSHRFullStalls++
		c.reapMSHRs(now + stall)
	}

	c.Stats.ReadSharedReqs++
	missLat := c.next.Access(now+stall+c.cfg.TagLatency, lineAddr, false)
	total := stall + c.cfg.TagLatency + missLat + c.cfg.RespLatency
	if !write {
		c.Stats.MSHRMissLatency += total
	}
	c.mshrs = append(c.mshrs, mshr{addr: lineAddr, ready: now + total})

	_, extra := c.fillVictim(now, lineAddr, write)
	return total + extra
}

func (c *Cache) fillVictim(now uint64, lineAddr uint64, write bool) (*line, uint64) {
	v, extra := c.victim(now, lineAddr)
	v.tag = lineAddr
	v.valid = true
	v.dirty = write
	v.lru = c.lruClock
	return v, extra
}

// ReadNoAllocate performs a read that does not change cache *contents* (the
// InvisiSpec "invisible load" path): no line is filled and LRU is untouched,
// but the miss still occupies an MSHR — invisible loads share the same miss
// infrastructure and memory-level-parallelism limits as ordinary ones.
func (c *Cache) ReadNoAllocate(now uint64, addr uint64) uint64 {
	lineAddr := c.LineAddr(addr)
	c.reapMSHRs(now)
	if c.find(lineAddr) != nil {
		for _, m := range c.mshrs {
			if m.addr == lineAddr {
				return c.cfg.TagLatency + (m.ready - now)
			}
		}
		return c.cfg.TagLatency + c.cfg.DataLatency
	}
	// Coalesce onto an in-flight miss.
	for _, m := range c.mshrs {
		if m.addr == lineAddr {
			c.Stats.MSHRHits++
			lat := c.cfg.TagLatency
			if m.ready > now {
				lat += m.ready - now
			}
			return lat
		}
	}
	var stall uint64
	if len(c.mshrs) >= c.cfg.MSHRs {
		earliest := c.mshrs[0].ready
		for _, m := range c.mshrs {
			if m.ready < earliest {
				earliest = m.ready
			}
		}
		if earliest > now {
			stall = earliest - now
		}
		c.Stats.MSHRFullStalls++
		c.reapMSHRs(now + stall)
	}
	var lower uint64
	switch n := c.next.(type) {
	case *Cache:
		lower = n.ReadNoAllocate(now+stall+c.cfg.TagLatency, addr)
	default:
		lower = c.next.Access(now+stall+c.cfg.TagLatency, addr, false)
	}
	total := stall + c.cfg.TagLatency + lower + c.cfg.RespLatency
	c.mshrs = append(c.mshrs, mshr{addr: lineAddr, ready: now + total})
	return total
}

// Flush invalidates the line containing addr at this level and below,
// writing back dirty data. It returns the flush latency: flushing a present
// line is slower than flushing an absent one — the timing difference
// Flush+Flush measures.
func (c *Cache) Flush(now uint64, addr uint64) uint64 {
	lineAddr := c.LineAddr(addr)
	lat := c.cfg.TagLatency
	if l := c.find(lineAddr); l != nil {
		c.Stats.Flushes++
		if l.dirty {
			lat += c.writeback(now, lineAddr) + c.cfg.DataLatency
			c.Stats.WritebackReqs++
		}
		l.valid = false
		lat += c.cfg.DataLatency // invalidation handshake
	} else {
		c.Stats.FlushMisses++
	}
	if n, ok := c.next.(*Cache); ok {
		lat += n.Flush(now, addr)
	}
	return lat
}

// Invalidate drops the line (coherence invalidation; no writeback latency
// charged to the requester).
func (c *Cache) Invalidate(addr uint64) {
	if l := c.find(c.LineAddr(addr)); l != nil {
		l.valid = false
		c.Stats.InvalidatesRecvd++
	}
}

// Prefetch warms the line containing addr; returns the latency charged to
// the prefetch unit (the requesting instruction does not block on it).
func (c *Cache) Prefetch(now uint64, addr uint64) uint64 {
	c.Stats.Prefetches++
	lineAddr := c.LineAddr(addr)
	if c.find(lineAddr) != nil {
		return c.cfg.TagLatency
	}
	c.Stats.PrefetchFills++
	return c.Access(now, addr, false)
}

// OccupiedWays returns how many ways of the set holding addr are valid
// (Prime+Probe observability in tests).
func (c *Cache) OccupiedWays(addr uint64) int {
	set := c.sets[c.setIdx(c.LineAddr(addr))]
	n := 0
	for i := range set {
		if set[i].valid {
			n++
		}
	}
	return n
}

// NumSets exposes the set count (used by attack generators to build
// eviction sets).
func (c *Cache) NumSets() int { return c.numSets }

// LineSize exposes the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Assoc exposes the associativity.
func (c *Cache) Assoc() int { return c.cfg.Assoc }

// MSHRsInFlight reports the number of outstanding misses (HPC sampling).
func (c *Cache) MSHRsInFlight(now uint64) int {
	c.reapMSHRs(now)
	return len(c.mshrs)
}
