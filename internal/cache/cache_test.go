package cache

import (
	"testing"
	"testing/quick"
)

func newL1(backLat uint64) *Cache { return New(L1DConfig(), FixedLatency(backLat)) }

func TestHitAfterMiss(t *testing.T) {
	c := newL1(100)
	missLat := c.Access(0, 0x1000, false)
	hitLat := c.Access(missLat, 0x1000, false)
	if missLat <= hitLat {
		t.Fatalf("miss (%d) not slower than hit (%d)", missLat, hitLat)
	}
	if c.Stats.ReadMisses != 1 || c.Stats.ReadHits != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	c := newL1(100)
	c.Access(0, 0x1000, false)
	lat := c.Access(200, 0x1038, false) // same 64B line
	if lat != 3 {                       // tag 1 + data 2
		t.Fatalf("same-line access latency = %d, want 3", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := Config{Name: "tiny", Size: 256, LineSize: 64, Assoc: 2,
		TagLatency: 1, DataLatency: 1, RespLatency: 1, MSHRs: 4, WriteBufs: 2}
	c := New(cfg, FixedLatency(50))
	// 2 sets, 2 ways. Set 0 holds lines at stride 128.
	now := uint64(0)
	now += c.Access(now, 0, false)   // way 0
	now += c.Access(now, 128, false) // way 1
	now += c.Access(now, 0, false)   // touch line 0 -> line 128 is LRU
	now += c.Access(now, 256, false) // evicts 128
	if !c.Present(0) {
		t.Fatal("MRU line 0 evicted")
	}
	if c.Present(128) {
		t.Fatal("LRU line 128 not evicted")
	}
	if c.Stats.CleanEvicts != 1 {
		t.Fatalf("clean evicts = %d, want 1", c.Stats.CleanEvicts)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := Config{Name: "tiny", Size: 128, LineSize: 64, Assoc: 1,
		TagLatency: 1, DataLatency: 1, RespLatency: 1, MSHRs: 4, WriteBufs: 2}
	c := New(cfg, FixedLatency(50))
	c.Access(0, 0, true)      // dirty line in set 0
	c.Access(100, 128, false) // conflicts, evicts dirty line
	if c.Stats.DirtyEvicts != 1 {
		t.Fatalf("dirty evicts = %d, want 1", c.Stats.DirtyEvicts)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	c := newL1(200)
	lat1 := c.Access(0, 0x2000, false)
	// Second access to the same line 10 cycles later coalesces and waits
	// only the residual time.
	lat2 := c.Access(10, 0x2008, false)
	if c.Stats.MSHRHits != 1 {
		t.Fatalf("mshr hits = %d, want 1", c.Stats.MSHRHits)
	}
	if lat2 >= lat1 {
		t.Fatalf("coalesced access (%d) not faster than original miss (%d)", lat2, lat1)
	}
}

func TestMSHRFullStalls(t *testing.T) {
	cfg := L1DConfig()
	cfg.MSHRs = 2
	c := New(cfg, FixedLatency(500))
	c.Access(0, 0x0000, false)
	c.Access(0, 0x1000, false)
	c.Access(0, 0x2000, false) // third concurrent miss: MSHRs full
	if c.Stats.MSHRFullStalls != 1 {
		t.Fatalf("mshr full stalls = %d, want 1", c.Stats.MSHRFullStalls)
	}
}

func TestFlushTimingLeaksPresence(t *testing.T) {
	// Flush+Flush primitive: flushing a cached line takes longer than
	// flushing an uncached one.
	c := newL1(100)
	c.Access(0, 0x3000, false)
	latPresent := c.Flush(200, 0x3000)
	latAbsent := c.Flush(400, 0x3000)
	if latPresent <= latAbsent {
		t.Fatalf("flush(present)=%d not slower than flush(absent)=%d", latPresent, latAbsent)
	}
	if c.Present(0x3000) {
		t.Fatal("line still present after flush")
	}
	if c.Stats.Flushes != 1 || c.Stats.FlushMisses != 1 {
		t.Fatalf("flush stats = %+v", c.Stats)
	}
}

func TestFlushPropagatesToL2(t *testing.T) {
	l2 := New(L2Config(), FixedLatency(200))
	l1 := New(L1DConfig(), l2)
	l1.Access(0, 0x4000, false)
	if !l2.Present(0x4000) {
		t.Fatal("L2 not filled on L1 miss")
	}
	l1.Flush(100, 0x4000)
	if l2.Present(0x4000) {
		t.Fatal("L2 line survived flush")
	}
}

func TestReadNoAllocateLeavesNoState(t *testing.T) {
	l2 := New(L2Config(), FixedLatency(200))
	l1 := New(L1DConfig(), l2)
	lat := l1.ReadNoAllocate(0, 0x5000)
	if l1.Present(0x5000) || l2.Present(0x5000) {
		t.Fatal("invisible read left cache state")
	}
	if lat == 0 {
		t.Fatal("invisible read had zero latency")
	}
	// And it should see real hierarchy latency: slower than an L1 hit.
	l1.Access(0, 0x6000, false)
	hit := l1.Access(500, 0x6000, false)
	if lat <= hit {
		t.Fatalf("invisible miss (%d) not slower than hit (%d)", lat, hit)
	}
}

func TestPrefetchWarmsLine(t *testing.T) {
	c := newL1(100)
	c.Prefetch(0, 0x7000)
	lat := c.Access(500, 0x7000, false)
	if lat != 3 {
		t.Fatalf("access after prefetch = %d, want hit latency 3", lat)
	}
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d, want 1", c.Stats.PrefetchFills)
	}
}

func TestInvalidate(t *testing.T) {
	c := newL1(100)
	c.Access(0, 0x8000, false)
	c.Invalidate(0x8000)
	if c.Present(0x8000) {
		t.Fatal("line present after invalidate")
	}
	if c.Stats.InvalidatesRecvd != 1 {
		t.Fatalf("invalidates = %d", c.Stats.InvalidatesRecvd)
	}
}

func TestWriteBufferStall(t *testing.T) {
	cfg := Config{Name: "tiny", Size: 128, LineSize: 64, Assoc: 1,
		TagLatency: 1, DataLatency: 1, RespLatency: 1, MSHRs: 8, WriteBufs: 1}
	c := New(cfg, FixedLatency(400))
	// Generate two dirty evictions from the same set in quick succession.
	c.Access(0, 0, true)
	c.Access(2, 128, true) // evicts dirty 0 (uses the only write buffer)
	c.Access(4, 256, true) // evicts dirty 128 -> buffer still draining
	if c.Stats.WriteBufFull == 0 {
		t.Fatal("expected a write-buffer-full stall")
	}
}

func TestOccupiedWays(t *testing.T) {
	cfg := Config{Name: "tiny", Size: 512, LineSize: 64, Assoc: 4,
		TagLatency: 1, DataLatency: 1, RespLatency: 1, MSHRs: 8, WriteBufs: 2}
	c := New(cfg, FixedLatency(10))
	// 2 sets; fill 3 ways of set 0 (stride = 128 bytes).
	for i := 0; i < 3; i++ {
		c.Access(uint64(i*100), uint64(i*128), false)
	}
	if got := c.OccupiedWays(0); got != 3 {
		t.Fatalf("occupied ways = %d, want 3", got)
	}
}

func TestGeometryAccessors(t *testing.T) {
	c := New(L2Config(), FixedLatency(1))
	if c.NumSets() != (2<<20)/(64*8) {
		t.Fatalf("L2 sets = %d", c.NumSets())
	}
	if c.LineSize() != 64 || c.Assoc() != 8 {
		t.Fatalf("geometry = %d/%d", c.LineSize(), c.Assoc())
	}
}

func TestPropertyHitNeverSlowerThanMiss(t *testing.T) {
	// Property: for any address sequence, a re-access immediately after a
	// fill is at most the miss latency.
	f := func(addrs []uint16) bool {
		c := newL1(80)
		now := uint64(0)
		for _, a16 := range addrs {
			a := uint64(a16) << 3
			miss := c.Access(now, a, false)
			now += miss
			hit := c.Access(now, a, false)
			now += hit
			if hit > miss {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpecBufferInvisibleUntilExposed(t *testing.T) {
	l2 := New(L2Config(), FixedLatency(200))
	l1 := New(L1DConfig(), l2)
	sb := NewSpecBuffer(l1, 16)
	lat := sb.Load(0, 0x9000)
	if lat == 0 {
		t.Fatal("spec load free")
	}
	if l1.Present(0x9000) || l2.Present(0x9000) {
		t.Fatal("speculative load left cache state before exposure")
	}
	sb.Expose(500, 0x9000)
	if !l1.Present(0x9000) {
		t.Fatal("exposed line not in L1")
	}
	if l1.Stats.SpecFills != 1 || l1.Stats.SpecExposes != 1 {
		t.Fatalf("spec stats = %+v", l1.Stats)
	}
}

func TestSpecBufferSquashLeavesNoTrace(t *testing.T) {
	l1 := newL1(100)
	sb := NewSpecBuffer(l1, 16)
	sb.Load(0, 0xA000)
	sb.Squash(0xA000)
	if l1.Present(0xA000) {
		t.Fatal("squashed speculative line visible")
	}
	if sb.Len() != 0 {
		t.Fatal("buffer not empty after squash")
	}
	if l1.Stats.SpecSquashed != 1 {
		t.Fatalf("squashes = %d", l1.Stats.SpecSquashed)
	}
	// Exposing a squashed line is a no-op.
	if lat := sb.Expose(100, 0xA000); lat != 0 {
		t.Fatalf("expose after squash charged %d cycles", lat)
	}
}

func TestSpecBufferHitFast(t *testing.T) {
	l1 := newL1(100)
	sb := NewSpecBuffer(l1, 16)
	first := sb.Load(0, 0xB000)
	second := sb.Load(200, 0xB000)
	if second >= first {
		t.Fatalf("buffered spec load (%d) not faster than first (%d)", second, first)
	}
	if l1.Stats.SpecBufHits != 1 {
		t.Fatalf("spec buf hits = %d", l1.Stats.SpecBufHits)
	}
}

func TestSpecBufferCapacity(t *testing.T) {
	l1 := newL1(100)
	sb := NewSpecBuffer(l1, 2)
	sb.Load(0, 0x0000)
	sb.Load(1, 0x1000)
	sb.Load(2, 0x2000) // evicts oldest
	if sb.Len() != 2 {
		t.Fatalf("len = %d, want 2", sb.Len())
	}
	if sb.FullStalls != 1 {
		t.Fatalf("full stalls = %d, want 1", sb.FullStalls)
	}
	sb.SquashAll()
	if sb.Len() != 0 {
		t.Fatal("SquashAll left entries")
	}
}
