package defense

import (
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
)

// DetectorFlagger bridges a trained detector into the controller: each
// sampling window is expanded into the derived feature space, normalized
// with the training corpus's maxima, and scored.
type DetectorFlagger struct {
	Det *detect.Detector
	DS  *dataset.Dataset
}

// NewDetectorFlagger wires det (trained on ds) into the controller.
func NewDetectorFlagger(det *detect.Detector, ds *dataset.Dataset) *DetectorFlagger {
	return &DetectorFlagger{Det: det, DS: ds}
}

// FlagWindow implements Flagger.
func (f *DetectorFlagger) FlagWindow(s hpc.Sample) bool {
	derived := hpc.ExpandDerived(s)
	f.DS.NormalizeInPlace(derived)
	return f.Det.Flag(derived)
}
