package defense

import (
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/kernel"
)

// DetectorFlagger bridges a trained detector into the controller: each
// sampling window is scored by the fused kernel — expansion, normalization
// and the dot product in a single pass over the raw counters — compiled
// lazily on the first window. Detectors outside the kernel's single-layer
// model fall back to the legacy expand→normalize→score pipeline. Either way
// the steady-state FlagWindow path performs no heap allocations.
type DetectorFlagger struct {
	Det *detect.Detector
	DS  *dataset.Dataset

	kern      *kernel.Scorer
	kernTried bool

	// Legacy fallback (deep detectors): expansion plan + derived-row scratch.
	exp     *hpc.Expander
	derived []float64
}

// NewDetectorFlagger wires det (trained on ds) into the controller.
func NewDetectorFlagger(det *detect.Detector, ds *dataset.Dataset) *DetectorFlagger {
	return &DetectorFlagger{Det: det, DS: ds}
}

// FlagWindow implements Flagger. Steady state allocates nothing; the fused
// kernel (or the fallback plan and scratch row) compiles lazily on the first
// window or on a counter-set change, which is the only allocating path.
//
//evaxlint:hotpath
func (f *DetectorFlagger) FlagWindow(s hpc.Sample) bool {
	if f.kern != nil && f.kern.RawDim() == len(s.Values) {
		return f.kern.ScoreRaw(s.Values, s.Instructions, s.Cycles) >= f.Det.Threshold
	}
	if !f.kernTried || (f.kern != nil && f.kern.RawDim() != len(s.Values)) {
		f.kernTried = true
		k, err := detect.CompileScorer(f.Det, f.DS.Maxima()) //evaxlint:ignore hotpath one-time lazy kernel compile on the first window
		if err == nil && k.RawDim() == len(s.Values) {
			f.kern = k
			return f.kern.ScoreRaw(s.Values, s.Instructions, s.Cycles) >= f.Det.Threshold
		}
		f.kern = nil
	}
	if f.exp == nil || f.exp.Dim() != hpc.DerivedSpaceSize(len(s.Values)) {
		f.exp = hpc.NewExpander(len(s.Values))   //evaxlint:ignore hotpath one-time lazy plan compile on the first window
		f.derived = make([]float64, f.exp.Dim()) //evaxlint:ignore hotpath scratch row allocated once with the plan
	}
	f.exp.ExpandInto(f.derived, s)
	f.DS.NormalizeInPlace(f.derived)
	return f.Det.Flag(f.derived)
}
