package defense

import (
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
)

// DetectorFlagger bridges a trained detector into the controller: each
// sampling window is expanded into the derived feature space, normalized
// with the training corpus's maxima, and scored. The expansion plan and the
// derived-row scratch are compiled lazily on the first window, so the
// steady-state FlagWindow path performs no heap allocations.
type DetectorFlagger struct {
	Det *detect.Detector
	DS  *dataset.Dataset

	exp     *hpc.Expander
	derived []float64
}

// NewDetectorFlagger wires det (trained on ds) into the controller.
func NewDetectorFlagger(det *detect.Detector, ds *dataset.Dataset) *DetectorFlagger {
	return &DetectorFlagger{Det: det, DS: ds}
}

// FlagWindow implements Flagger. Steady state allocates nothing; the
// expansion plan and scratch row compile lazily on the first window (or on
// a counter-set change), which is the only allocating path.
//
//evaxlint:hotpath
func (f *DetectorFlagger) FlagWindow(s hpc.Sample) bool {
	if f.exp == nil || f.exp.Dim() != hpc.DerivedSpaceSize(len(s.Values)) {
		f.exp = hpc.NewExpander(len(s.Values))   //evaxlint:ignore hotpath one-time lazy plan compile on the first window
		f.derived = make([]float64, f.exp.Dim()) //evaxlint:ignore hotpath scratch row allocated once with the plan
	}
	f.exp.ExpandInto(f.derived, s)
	f.DS.NormalizeInPlace(f.derived)
	return f.Det.Flag(f.derived)
}
