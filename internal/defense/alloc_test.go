package defense

import (
	"testing"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/sim"
)

// FlagWindow runs once per sampling window inside the defense controller;
// after the first window compiles the expansion plan it must not allocate.
func TestFlagWindowZeroAlloc(t *testing.T) {
	cat := sim.CounterCatalog()
	derivedDim := hpc.DerivedSpaceSize(cat.Len())
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	d := detect.NewPerceptron(1, fs)
	max := make([]float64, derivedDim)
	for i := range max {
		max[i] = float64(i%9) + 1
	}
	fl := NewDetectorFlagger(d, dataset.FromMaxima(max))
	s := hpc.Sample{Values: make([]float64, cat.Len()), Instructions: 2000, Cycles: 4000}
	for i := range s.Values {
		s.Values[i] = float64(i % 13)
	}
	fl.FlagWindow(s) // first window compiles the expander + scratch
	if n := testing.AllocsPerRun(100, func() { fl.FlagWindow(s) }); n != 0 {
		t.Errorf("FlagWindow allocates %v times per window, want 0", n)
	}
}
