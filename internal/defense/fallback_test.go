package defense

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"evax/internal/attacks"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/faultinject"
	"evax/internal/hpc"
	"evax/internal/safeio"
	"evax/internal/sim"
)

// syntheticBundle writes a structurally valid bundle without training: an
// untrained perceptron over the EVAX feature set plus unit maxima spanning
// the derived space. Validation tests only need shape, not accuracy.
func syntheticBundle(t *testing.T, path string) (*detect.Detector, *dataset.Dataset) {
	t.Helper()
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	d := detect.NewPerceptron(3, fs)
	maxima := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	for i := range maxima {
		maxima[i] = 1
	}
	ds := dataset.FromMaxima(maxima)
	if err := SaveBundle(path, d, ds); err != nil {
		t.Fatal(err)
	}
	return d, ds
}

// corruptBundle rewrites path with a mutated copy of the bundle it holds.
func corruptBundle(t *testing.T, path string, mutate func(b *bundle)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	mutate(&b)
	out, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := safeio.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadBundleRejectsMalformedBundles: each way a bundle can be broken is
// rejected with its own distinct error before any flagger is built — a
// maxima-length mismatch in particular would otherwise panic inside
// NormalizeInPlace on the first sampled window.
func TestLoadBundleRejectsMalformedBundles(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, b *bundle)
		want   string
	}{
		{
			name:   "maxima too short",
			mutate: func(t *testing.T, b *bundle) { b.Maxima = b.Maxima[:len(b.Maxima)-1] },
			want:   "maxima for a",
		},
		{
			name:   "maxima too long",
			mutate: func(t *testing.T, b *bundle) { b.Maxima = append(b.Maxima, 1) },
			want:   "maxima for a",
		},
		{
			name:   "negative maximum",
			mutate: func(t *testing.T, b *bundle) { b.Maxima[2] = -4 },
			want:   "is negative",
		},
		{
			name: "malformed detector patch",
			mutate: func(t *testing.T, b *bundle) {
				b.Detector = json.RawMessage(`{"layers":[]}`)
			},
			want: "holds no layers",
		},
		{
			name: "detector patch with hostile index",
			mutate: func(t *testing.T, b *bundle) {
				var sd map[string]any
				if err := json.Unmarshal(b.Detector, &sd); err != nil {
					t.Fatal(err)
				}
				sd["indices"].([]any)[0] = float64(1 << 30)
				out, err := json.Marshal(sd)
				if err != nil {
					t.Fatal(err)
				}
				b.Detector = out
			},
			want: "outside derived space",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bundle.json")
			syntheticBundle(t, path)
			corruptBundle(t, path, func(b *bundle) { tc.mutate(t, b) })
			_, err := LoadBundle(path)
			if err == nil {
				t.Fatal("malformed bundle accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want message containing %q", err, tc.want)
			}
		})
	}
}

// isAlwaysOn reports whether fl is the AlwaysOn flagger (func identity).
func isAlwaysOn(fl Flagger) bool {
	f, ok := fl.(FlaggerFunc)
	return ok && reflect.ValueOf(f).Pointer() == reflect.ValueOf(AlwaysOn).Pointer()
}

// TestLoadBundleOrSecureFallsBack: every failure mode — missing file,
// garbage bytes, malformed detector, broken maxima — degrades to the
// always-secure flagger instead of refusing to run, and the cause is
// reported so operators see why performance recovery is off.
func TestLoadBundleOrSecureFallsBack(t *testing.T) {
	dir := t.TempDir()

	corruptions := map[string]func(path string){
		"missing file": func(path string) {},
		"garbage bytes": func(path string) {
			if err := safeio.WriteFile(path, []byte("{oops"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"malformed detector": func(path string) {
			syntheticBundle(t, path)
			corruptBundle(t, path, func(b *bundle) { b.Detector = json.RawMessage(`null`) })
		},
		"truncated maxima": func(path string) {
			syntheticBundle(t, path)
			corruptBundle(t, path, func(b *bundle) { b.Maxima = b.Maxima[:3] })
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
			corrupt(path)
			fl, err := LoadBundleOrSecure(path)
			if err == nil {
				t.Fatal("broken bundle loaded without reporting a cause")
			}
			if !isAlwaysOn(fl) {
				t.Fatalf("fallback flagger is %T, want AlwaysOn", fl)
			}
		})
	}

	// A valid bundle loads normally: no error, a real detector flagger.
	path := filepath.Join(dir, "good.json")
	syntheticBundle(t, path)
	fl, err := LoadBundleOrSecure(path)
	if err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	if _, ok := fl.(*DetectorFlagger); !ok {
		t.Fatalf("valid bundle yielded %T, want *DetectorFlagger", fl)
	}
}

// TestTornBundleUpdateKeepsOldBundle: a torn write during a bundle update
// (injected deterministically) fails the save but leaves the previous valid
// bundle on disk — the defense keeps running on the old detector rather
// than falling back at all.
func TestTornBundleUpdateKeepsOldBundle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.json")
	det, ds := syntheticBundle(t, path)

	restore := safeio.SetHook(faultinject.TornWriteHook(0))
	err := SaveBundle(path, det, ds)
	restore()
	if !errors.Is(err, safeio.ErrTorn) {
		t.Fatalf("torn save err = %v, want ErrTorn", err)
	}

	fl, err := LoadBundleOrSecure(path)
	if err != nil {
		t.Fatalf("old bundle unreadable after torn update: %v", err)
	}
	if _, ok := fl.(*DetectorFlagger); !ok {
		t.Fatalf("flagger is %T, want the previous *DetectorFlagger", fl)
	}
}

// TestTornFirstSaveFallsBackSecure: when the very first bundle save tears
// (no previous bundle to keep), the adaptive controller comes up in
// always-secure mode and still mitigates every window of a live attack —
// graceful degradation end to end.
func TestTornFirstSaveFallsBackSecure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.json")
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	det := detect.NewPerceptron(3, fs)
	maxima := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	ds := dataset.FromMaxima(maxima)

	restore := safeio.SetHook(faultinject.TornWriteHook(0))
	err := SaveBundle(path, det, ds)
	restore()
	if !errors.Is(err, safeio.ErrTorn) {
		t.Fatalf("torn save err = %v, want ErrTorn", err)
	}

	fl, err := LoadBundleOrSecure(path)
	if err == nil || !isAlwaysOn(fl) {
		t.Fatalf("want AlwaysOn fallback with cause, got %T, err %v", fl, err)
	}

	dcfg := DefaultConfig(sim.PolicyInvisiSpecSpectre)
	dcfg.SampleInterval = 1000
	res := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(77, 10), fl, dcfg, 1_000_000)
	if res.Windows == 0 {
		t.Fatal("no windows sampled")
	}
	if res.Flags != res.Windows {
		t.Fatalf("always-secure fallback flagged %d of %d windows", res.Flags, res.Windows)
	}
	if res.SecureInstr == 0 {
		t.Fatal("mitigation never engaged under the fallback")
	}
}
