// Package defense implements the paper's adaptive architecture: the
// processor runs unprotected (performance mode) while the hardware detector
// watches the HPC stream; on a malicious flag it switches the configured
// mitigation on (secure mode) for a fixed instruction window, then falls
// back to performance mode. This gating is what cuts InvisiSpec's 27%
// always-on overhead to ~1.3% and Fencing's 74% to ~3.5% while keeping
// leakage at zero.
package defense

import (
	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/sim"
)

// Flagger is the detection interface the controller consults once per
// sampling window. Implementations wrap a detector plus the corpus
// normalizer (see NewDetectorFlagger in this package's adapter file).
type Flagger interface {
	// FlagWindow inspects one HPC sampling window and reports whether
	// mitigation should engage.
	FlagWindow(s hpc.Sample) bool
}

// FlaggerFunc adapts a function to Flagger.
type FlaggerFunc func(hpc.Sample) bool

// FlagWindow implements Flagger.
func (f FlaggerFunc) FlagWindow(s hpc.Sample) bool { return f(s) }

// AlwaysOn is the baseline policy: mitigation never disengages.
var AlwaysOn = FlaggerFunc(func(hpc.Sample) bool { return true })

// NeverOn runs fully unprotected (the insecure performance baseline).
var NeverOn = FlaggerFunc(func(hpc.Sample) bool { return false })

// Config parameterizes the adaptive controller.
type Config struct {
	// SecurePolicy engages on a flag.
	SecurePolicy sim.Policy
	// SecureWindow is how many instructions stay in secure mode after
	// each flag (paper evaluates 10k, 100k and 1M).
	SecureWindow uint64
	// SampleInterval is the detector's sampling cadence in instructions.
	SampleInterval uint64
	// Quantum is how many cycles to advance between controller checks.
	Quantum uint64
}

// DefaultConfig uses the paper's headline setting: 1M-instruction secure
// windows sampled every 10k instructions.
func DefaultConfig(policy sim.Policy) Config {
	return Config{
		SecurePolicy:   policy,
		SecureWindow:   1_000_000,
		SampleInterval: 10_000,
		Quantum:        512,
	}
}

// IPCPoint is one timeline sample of the run.
type IPCPoint struct {
	Instructions uint64
	IPC          float64 // IPC over the window ending here
	Secure       bool    // secure mode active during the window
	Flagged      bool    // detector flagged this window
}

// Result summarizes an adaptive run.
type Result struct {
	Timeline        []IPCPoint
	Instructions    uint64
	Cycles          uint64
	Flags           int    // windows flagged malicious
	Windows         int    // windows observed
	SecureInstr     uint64 // instructions executed in secure mode
	LeakedTransient uint64 // transient loads that touched the cache
	IPC             float64
}

// FlagRate returns flags per window.
func (r Result) FlagRate() float64 {
	if r.Windows == 0 {
		return 0
	}
	return float64(r.Flags) / float64(r.Windows)
}

// Controller drives one machine under adaptive protection.
type Controller struct {
	cfg Config
	m   *sim.Machine
	fl  Flagger

	sampler     *hpc.Sampler
	secureUntil uint64
}

// NewController wraps a machine with a detector and a mitigation policy.
func NewController(m *sim.Machine, fl Flagger, cfg Config) *Controller {
	return &Controller{cfg: cfg, m: m, fl: fl}
}

func (c *Controller) init() {
	if c.sampler == nil {
		c.sampler = hpc.NewSampler(sim.CounterCatalog(), c.m, c.cfg.SampleInterval)
		c.sampler.Take()
	}
}

// Run executes up to maxInstr instructions under adaptive protection and
// returns the run summary.
func (c *Controller) Run(maxInstr uint64) Result {
	c.init()
	var res Result
	quantum := c.cfg.Quantum
	if quantum == 0 {
		quantum = 512
	}
	lastInstr, lastCycle := c.m.Instructions(), c.m.Cycles()
	secureAtWindowStart := c.m.Policy() != sim.PolicyNone
	for !c.m.Done() && c.m.Instructions() < maxInstr {
		before := c.m.Instructions()
		secureQuantum := c.m.Policy() != sim.PolicyNone
		c.m.RunCycles(quantum)
		if secureQuantum {
			res.SecureInstr += c.m.Instructions() - before
		}
		if !c.sampler.Due() {
			continue
		}
		sample, ok := c.sampler.Take()
		if !ok {
			continue
		}
		res.Windows++
		flagged := c.fl.FlagWindow(sample)
		if flagged {
			res.Flags++
			c.m.SetPolicy(c.cfg.SecurePolicy)
			c.secureUntil = c.m.Instructions() + c.cfg.SecureWindow
		} else if c.m.Instructions() >= c.secureUntil {
			c.m.SetPolicy(sim.PolicyNone)
		}
		instr, cyc := c.m.Instructions(), c.m.Cycles()
		var ipc float64
		if cyc > lastCycle {
			ipc = float64(instr-lastInstr) / float64(cyc-lastCycle)
		}
		res.Timeline = append(res.Timeline, IPCPoint{
			Instructions: instr,
			IPC:          ipc,
			Secure:       secureAtWindowStart,
			Flagged:      flagged,
		})
		secureAtWindowStart = c.m.Policy() != sim.PolicyNone
		lastInstr, lastCycle = instr, cyc
	}
	res.Instructions = c.m.Instructions()
	res.Cycles = c.m.Cycles()
	res.LeakedTransient = c.m.C.LeakedTransientLoads
	res.IPC = c.m.IPC()
	return res
}

// RunProgram is a convenience: build a machine for prog, run it adaptively
// to completion (or maxInstr), return the result.
func RunProgram(cfg sim.Config, prog *isa.Program, fl Flagger, dcfg Config, maxInstr uint64) Result {
	m := sim.New(cfg, prog)
	return NewController(m, fl, dcfg).Run(maxInstr)
}

// Overhead computes relative slowdown in cycles versus a baseline run of
// the same committed instruction count: (cycles/instr) ratio - 1.
func Overhead(protected, baseline Result) float64 {
	if baseline.Cycles == 0 || protected.Instructions == 0 || baseline.Instructions == 0 {
		return 0
	}
	cpiP := float64(protected.Cycles) / float64(protected.Instructions)
	cpiB := float64(baseline.Cycles) / float64(baseline.Instructions)
	return cpiP/cpiB - 1
}
