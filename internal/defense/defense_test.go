package defense

import (
	"testing"

	"evax/internal/attacks"
	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/sim"
	"evax/internal/workload"
)

func benignProg() *isa.Program { return workload.Stream(1, 2) }

// flagEvery returns a Flagger firing on every n-th window.
func flagEvery(n int) Flagger {
	count := 0
	return FlaggerFunc(func(hpc.Sample) bool {
		count++
		return count%n == 0
	})
}

func TestNeverOnMatchesUnprotected(t *testing.T) {
	p := benignProg()
	res := RunProgram(sim.DefaultConfig(), p, NeverOn, DefaultConfig(sim.PolicyFenceAfterBranch), 10_000_000)
	m := sim.New(sim.DefaultConfig(), benignProg())
	m.Run(10_000_000)
	if res.Instructions != m.Instructions() {
		t.Fatalf("instruction counts differ: %d vs %d", res.Instructions, m.Instructions())
	}
	ratio := float64(res.Cycles) / float64(m.Cycles())
	if ratio > 1.02 || ratio < 0.98 {
		t.Fatalf("never-on controller cost ratio %.3f", ratio)
	}
	if res.SecureInstr != 0 || res.Flags != 0 {
		t.Fatalf("never-on spent %d secure instrs, %d flags", res.SecureInstr, res.Flags)
	}
}

func TestAlwaysOnCostsMore(t *testing.T) {
	dcfg := DefaultConfig(sim.PolicyFenceAfterBranch)
	base := RunProgram(sim.DefaultConfig(), benignProg(), NeverOn, dcfg, 10_000_000)
	prot := RunProgram(sim.DefaultConfig(), benignProg(), AlwaysOn, dcfg, 10_000_000)
	if ov := Overhead(prot, base); ov <= 0.05 {
		t.Fatalf("always-on fencing overhead %.3f, want substantial", ov)
	}
	if prot.SecureInstr == 0 {
		t.Fatal("always-on never entered secure mode")
	}
}

func TestAdaptiveGating(t *testing.T) {
	dcfg := DefaultConfig(sim.PolicyFenceAfterBranch)
	dcfg.SecureWindow = 20_000
	dcfg.SampleInterval = 5_000

	base := RunProgram(sim.DefaultConfig(), benignProg(), NeverOn, dcfg, 10_000_000)
	always := RunProgram(sim.DefaultConfig(), benignProg(), AlwaysOn, dcfg, 10_000_000)
	adaptive := RunProgram(sim.DefaultConfig(), benignProg(), flagEvery(10), dcfg, 10_000_000)

	ovAlways := Overhead(always, base)
	ovAdaptive := Overhead(adaptive, base)
	if ovAdaptive >= ovAlways {
		t.Fatalf("adaptive overhead %.3f not below always-on %.3f", ovAdaptive, ovAlways)
	}
	if adaptive.SecureInstr == 0 {
		t.Fatal("adaptive run never engaged the mitigation")
	}
	if adaptive.SecureInstr >= always.SecureInstr {
		t.Fatal("adaptive secure time not below always-on")
	}
}

func TestAdaptiveStopsAttackWhenFlagged(t *testing.T) {
	p := attacks.SpectrePHT(11, 4)
	dcfg := DefaultConfig(sim.PolicyInvisiSpecSpectre)
	dcfg.SampleInterval = 300 // engage within the first attack round
	unprot := RunProgram(sim.DefaultConfig(), p, NeverOn, dcfg, 5_000_000)
	if unprot.LeakedTransient == 0 {
		t.Fatal("unprotected attack did not leak")
	}
	prot := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(11, 4), AlwaysOn, dcfg, 5_000_000)
	if prot.LeakedTransient >= unprot.LeakedTransient/4 {
		t.Fatalf("protected run leaked %d vs unprotected %d", prot.LeakedTransient, unprot.LeakedTransient)
	}
}

func TestTimelineRecorded(t *testing.T) {
	dcfg := DefaultConfig(sim.PolicyFenceAfterBranch)
	dcfg.SampleInterval = 2_000
	res := RunProgram(sim.DefaultConfig(), benignProg(), NeverOn, dcfg, 10_000_000)
	if len(res.Timeline) < 5 {
		t.Fatalf("timeline has %d points", len(res.Timeline))
	}
	for _, pt := range res.Timeline {
		if pt.IPC < 0 || pt.IPC > 8 {
			t.Fatalf("implausible timeline IPC %v", pt.IPC)
		}
	}
	if res.Windows != len(res.Timeline) {
		t.Fatalf("windows %d != timeline %d", res.Windows, len(res.Timeline))
	}
}

func TestSecureWindowExpires(t *testing.T) {
	// One early flag, then quiet: secure mode must disengage and the tail
	// run at full speed.
	dcfg := DefaultConfig(sim.PolicyFenceBeforeLoad)
	dcfg.SecureWindow = 10_000
	dcfg.SampleInterval = 2_000
	first := true
	once := FlaggerFunc(func(hpc.Sample) bool {
		if first {
			first = false
			return true
		}
		return false
	})
	res := RunProgram(sim.DefaultConfig(), benignProg(), once, dcfg, 10_000_000)
	if res.Flags != 1 {
		t.Fatalf("flags = %d, want 1", res.Flags)
	}
	if res.SecureInstr == 0 {
		t.Fatal("secure mode never engaged")
	}
	if res.SecureInstr > res.Instructions/2 {
		t.Fatalf("secure window did not expire: %d of %d instructions secure",
			res.SecureInstr, res.Instructions)
	}
}

func TestFlagRate(t *testing.T) {
	r := Result{Flags: 3, Windows: 12}
	if r.FlagRate() != 0.25 {
		t.Fatalf("flag rate = %v", r.FlagRate())
	}
	if (Result{}).FlagRate() != 0 {
		t.Fatal("empty result flag rate")
	}
}
