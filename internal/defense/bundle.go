package defense

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/safeio"
	"evax/internal/sim"
)

// bundle is the deployable detection pipeline: the trained detector plus
// the normalization maxima its inputs were scaled with — the paper's
// vendor-distributed update unit (weights and feature set travel together,
// like a microcode patch).
type bundle struct {
	Detector json.RawMessage `json:"detector"`
	Maxima   []float64       `json:"maxima"`
}

// SaveBundle writes a detector and its training normalizer to one file.
func SaveBundle(path string, det *detect.Detector, ds *dataset.Dataset) error {
	dd, err := det.Marshal()
	if err != nil {
		return err
	}
	data, err := json.Marshal(bundle{Detector: dd, Maxima: ds.Maxima()})
	if err != nil {
		return fmt.Errorf("defense: encoding bundle: %w", err)
	}
	return safeio.WriteFile(path, data, 0o644)
}

// LoadBundle reads a bundle and returns a ready-to-run Flagger. The bundle
// is untrusted input: the detector patch runs through detect's validation,
// and the normalization maxima are checked against the derived feature space
// the flagger will expand windows into — a length mismatch would otherwise
// panic inside NormalizeInPlace on the first sampled window.
func LoadBundle(path string) (*DetectorFlagger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("defense: decoding %s: %w", path, err)
	}
	det, err := detect.Unmarshal(b.Detector)
	if err != nil {
		return nil, fmt.Errorf("defense: bundle %s: %w", path, err)
	}
	if len(b.Maxima) == 0 {
		return nil, fmt.Errorf("defense: bundle %s has no normalization maxima", path)
	}
	if space := hpc.DerivedSpaceSize(sim.CounterCatalog().Len()); len(b.Maxima) != space {
		return nil, fmt.Errorf("defense: bundle %s carries %d maxima for a %d-dim derived space",
			path, len(b.Maxima), space)
	}
	for i, m := range b.Maxima {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("defense: bundle %s maximum %d is non-finite", path, i)
		}
		if m < 0 {
			return nil, fmt.Errorf("defense: bundle %s maximum %d is negative (%g)", path, i, m)
		}
	}
	return NewDetectorFlagger(det, dataset.FromMaxima(b.Maxima)), nil
}

// LoadBundleOrSecure loads a detection bundle, degrading gracefully when the
// bundle is missing, torn, or fails validation: instead of refusing to run,
// it returns the AlwaysOn flagger — the paper's safe default, which keeps
// every window inside the secure policy (full protection, no performance
// recovery) until a valid detector update arrives. The validation error is
// returned alongside so callers can report why the fallback engaged; the
// returned Flagger is usable either way.
func LoadBundleOrSecure(path string) (Flagger, error) {
	fl, err := LoadBundle(path)
	if err != nil {
		return AlwaysOn, err
	}
	return fl, nil
}
