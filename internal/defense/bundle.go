package defense

import (
	"encoding/json"
	"fmt"
	"os"

	"evax/internal/dataset"
	"evax/internal/detect"
)

// bundle is the deployable detection pipeline: the trained detector plus
// the normalization maxima its inputs were scaled with — the paper's
// vendor-distributed update unit (weights and feature set travel together,
// like a microcode patch).
type bundle struct {
	Detector json.RawMessage `json:"detector"`
	Maxima   []float64       `json:"maxima"`
}

// SaveBundle writes a detector and its training normalizer to one file.
func SaveBundle(path string, det *detect.Detector, ds *dataset.Dataset) error {
	dd, err := det.Marshal()
	if err != nil {
		return err
	}
	data, err := json.Marshal(bundle{Detector: dd, Maxima: ds.Maxima()})
	if err != nil {
		return fmt.Errorf("defense: encoding bundle: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadBundle reads a bundle and returns a ready-to-run Flagger.
func LoadBundle(path string) (*DetectorFlagger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("defense: decoding %s: %w", path, err)
	}
	det, err := detect.Unmarshal(b.Detector)
	if err != nil {
		return nil, err
	}
	if len(b.Maxima) == 0 {
		return nil, fmt.Errorf("defense: bundle %s has no normalization maxima", path)
	}
	return NewDetectorFlagger(det, dataset.FromMaxima(b.Maxima)), nil
}
