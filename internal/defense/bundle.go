package defense

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/safeio"
	"evax/internal/sim"
)

// bundle is the deployable detection pipeline: the trained detector plus
// the normalization maxima its inputs were scaled with — the paper's
// vendor-distributed update unit (weights and feature set travel together,
// like a microcode patch).
type bundle struct {
	Detector json.RawMessage `json:"detector"`
	Maxima   []float64       `json:"maxima"`
}

// EncodeBundle serializes a detector and its training normalizer into the
// bundle wire form SaveBundle persists and DecodeBundle parses.
func EncodeBundle(det *detect.Detector, ds *dataset.Dataset) ([]byte, error) {
	dd, err := det.Marshal()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(bundle{Detector: dd, Maxima: ds.Maxima()})
	if err != nil {
		return nil, fmt.Errorf("defense: encoding bundle: %w", err)
	}
	return data, nil
}

// SaveBundle writes a detector and its training normalizer to one file.
func SaveBundle(path string, det *detect.Detector, ds *dataset.Dataset) error {
	data, err := EncodeBundle(det, ds)
	if err != nil {
		return err
	}
	return safeio.WriteFile(path, data, 0o644)
}

// DecodeBundle parses and validates bundle bytes. The bundle is untrusted
// input: the detector patch runs through detect's validation, and the
// normalization maxima are checked against the derived feature space windows
// will be expanded into — a length mismatch would otherwise panic inside
// NormalizeInPlace on the first sampled window. Taking bytes rather than a
// path keeps disk access confined: internal/engine owns bundle loading (the
// evaxlint bundleload rule), everything else consumes decoded generations.
func DecodeBundle(data []byte) (*detect.Detector, *dataset.Dataset, error) {
	var b bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, nil, fmt.Errorf("defense: decoding bundle: %w", err)
	}
	det, err := detect.Unmarshal(b.Detector)
	if err != nil {
		return nil, nil, fmt.Errorf("defense: bundle: %w", err)
	}
	if len(b.Maxima) == 0 {
		return nil, nil, fmt.Errorf("defense: bundle has no normalization maxima")
	}
	if space := hpc.DerivedSpaceSize(sim.CounterCatalog().Len()); len(b.Maxima) != space {
		return nil, nil, fmt.Errorf("defense: bundle carries %d maxima for a %d-dim derived space",
			len(b.Maxima), space)
	}
	for i, m := range b.Maxima {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, nil, fmt.Errorf("defense: bundle maximum %d is non-finite", i)
		}
		if m < 0 {
			return nil, nil, fmt.Errorf("defense: bundle maximum %d is negative (%g)", i, m)
		}
	}
	return det, dataset.FromMaxima(b.Maxima), nil
}

// LoadBundle reads a bundle and returns a ready-to-run Flagger. Outside
// internal/engine prefer engine.Load: it wraps the same validation in a
// versioned, hashed Generation that can be hot-swapped (the evaxlint
// bundleload rule confines this loader accordingly).
func LoadBundle(path string) (*DetectorFlagger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	det, ds, err := DecodeBundle(data)
	if err != nil {
		return nil, fmt.Errorf("defense: bundle %s: %w", path, err)
	}
	return NewDetectorFlagger(det, ds), nil
}

// LoadBundleOrSecure loads a detection bundle, degrading gracefully when the
// bundle is missing, torn, or fails validation: instead of refusing to run,
// it returns the AlwaysOn flagger — the paper's safe default, which keeps
// every window inside the secure policy (full protection, no performance
// recovery) until a valid detector update arrives. The validation error is
// returned alongside so callers can report why the fallback engaged; the
// returned Flagger is usable either way.
func LoadBundleOrSecure(path string) (Flagger, error) {
	fl, err := LoadBundle(path)
	if err != nil {
		return AlwaysOn, err
	}
	return fl, nil
}
