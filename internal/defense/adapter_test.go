package defense

import (
	"os"
	"testing"

	"evax/internal/attacks"
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/sim"
	"evax/internal/workload"
)

// trainFlagger builds a small corpus and detector for adapter tests.
func trainFlagger(t *testing.T) *DetectorFlagger {
	t.Helper()
	var samples []dataset.Sample
	cfg := sim.DefaultConfig()
	for _, w := range workload.All()[:5] {
		samples = append(samples, dataset.Collect(cfg, w.Build(1, 2), 2000, 30_000)...)
	}
	for _, a := range attacks.All()[:8] {
		samples = append(samples, dataset.Collect(cfg, a.Build(11, 20), 2000, 30_000)...)
	}
	ds := dataset.New(samples)
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	d := detect.NewPerceptron(1, fs)
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	d.Train(ds, idx, detect.DefaultTrainOptions())
	var benign []float64
	for i := range ds.Samples {
		if !ds.Samples[i].Malicious {
			benign = append(benign, d.Score(ds.Samples[i].Derived))
		}
	}
	d.TuneThresholdForFPR(benign, 0.02)
	return NewDetectorFlagger(d, ds)
}

func TestDetectorFlaggerEndToEnd(t *testing.T) {
	fl := trainFlagger(t)

	dcfg := DefaultConfig(sim.PolicyInvisiSpecSpectre)
	dcfg.SampleInterval = 1000

	// An attack run must be flagged frequently.
	atk := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(77, 20), fl, dcfg, 2_000_000)
	if atk.Windows == 0 {
		t.Fatal("no windows sampled")
	}
	if atk.FlagRate() < 0.5 {
		t.Fatalf("attack flagged in only %.0f%% of windows", 100*atk.FlagRate())
	}
	if atk.SecureInstr == 0 {
		t.Fatal("mitigation never engaged on the attack")
	}

	// A benign run must stay mostly unflagged.
	ben := RunProgram(sim.DefaultConfig(), workload.GeneSeq(77, 3), fl, dcfg, 2_000_000)
	if ben.Windows == 0 {
		t.Fatal("no benign windows sampled")
	}
	if ben.FlagRate() > 0.2 {
		t.Fatalf("benign program flagged in %.0f%% of windows", 100*ben.FlagRate())
	}
}

func TestDetectorFlaggerReducesLeakage(t *testing.T) {
	fl := trainFlagger(t)
	dcfg := DefaultConfig(sim.PolicyInvisiSpecSpectre)
	dcfg.SampleInterval = 500
	unprot := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(77, 20), NeverOn, dcfg, 2_000_000)
	prot := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(77, 20), fl, dcfg, 2_000_000)
	if unprot.LeakedTransient == 0 {
		t.Fatal("unprotected attack did not leak")
	}
	if prot.LeakedTransient >= unprot.LeakedTransient/2 {
		t.Fatalf("detector-gated run leaked %d of %d — gating ineffective",
			prot.LeakedTransient, unprot.LeakedTransient)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	fl := trainFlagger(t)
	path := t.TempDir() + "/bundle.json"
	if err := SaveBundle(path, fl.Det, fl.DS); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded flagger must agree with the original on live windows.
	dcfg := DefaultConfig(sim.PolicyInvisiSpecSpectre)
	dcfg.SampleInterval = 1000
	a := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(77, 10), fl, dcfg, 1_000_000)
	b := RunProgram(sim.DefaultConfig(), attacks.SpectrePHT(77, 10), got, dcfg, 1_000_000)
	if a.Flags != b.Flags || a.Windows != b.Windows {
		t.Fatalf("loaded bundle diverges: %d/%d vs %d/%d flags",
			a.Flags, a.Windows, b.Flags, b.Windows)
	}
}

func TestLoadBundleRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := writeTestFile(bad, "{oops"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bad); err == nil {
		t.Fatal("garbage bundle accepted")
	}
	empty := dir + "/empty.json"
	if err := writeTestFile(empty, `{"detector":null,"maxima":[]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(empty); err == nil {
		t.Fatal("empty bundle accepted")
	}
	if _, err := LoadBundle(dir + "/missing.json"); err == nil {
		t.Fatal("missing bundle accepted")
	}
}

func writeTestFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
