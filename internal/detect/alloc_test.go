package detect

import (
	"testing"

	"evax/internal/hpc"
	"evax/internal/sim"
)

// The steady-state scoring path — gather base features, extend with
// engineered features, forward through the network — must not allocate:
// the online defense controller calls it once per sampling window.
func TestScoreZeroAlloc(t *testing.T) {
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	d := NewPerceptron(1, fs)
	derived := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	for i := range derived {
		derived[i] = float64(i%7) / 7
	}
	d.Score(derived) // warm up the lazy scratch buffer
	if n := testing.AllocsPerRun(100, func() { d.Score(derived) }); n != 0 {
		t.Errorf("Score allocates %v times per call, want 0", n)
	}
	base := fs.Base(derived)
	d.ScoreBase(base)
	if n := testing.AllocsPerRun(100, func() { d.ScoreBase(base) }); n != 0 {
		t.Errorf("ScoreBase allocates %v times per call, want 0", n)
	}
}

// Clone must share the immutable plan and give the clone its own scratch,
// so concurrent clones score without allocating or racing.
func TestCloneSharesPlanScoresZeroAlloc(t *testing.T) {
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	d := NewPerceptron(2, fs)
	c := d.Clone()
	if c.Plan != d.Plan {
		t.Fatal("Clone copied the plan instead of sharing it")
	}
	derived := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	if c.Score(derived) != d.Score(derived) {
		t.Fatal("clone scores differ")
	}
	c.Score(derived)
	if n := testing.AllocsPerRun(100, func() { c.Score(derived) }); n != 0 {
		t.Errorf("clone Score allocates %v times per call, want 0", n)
	}
}

// DefaultEngineered resolves feature names through the plan's compiled
// index — regression guard for the per-call position-map rebuild it used
// to do, and for the name→index agreement itself.
func TestDefaultEngineeredResolvesViaPlanIndex(t *testing.T) {
	fs := EVAXBase()
	feats := DefaultEngineered(fs)
	if len(feats) != 12 {
		t.Fatalf("resolved %d engineered features, want 12", len(feats))
	}
	names := fs.Names()
	for _, f := range feats {
		// Indices must round-trip back to the two names in the feature.
		if fs.Index(names[f.A]) != f.A || fs.Index(names[f.B]) != f.B {
			t.Errorf("feature %q indexes (%d,%d) don't round-trip", f.Name, f.A, f.B)
		}
	}
	// The compiled index must agree with a linear scan (last duplicate
	// wins, matching the map-build order it replaced).
	for want, n := range names {
		got := fs.Index(n)
		last := want
		for j := want + 1; j < len(names); j++ {
			if names[j] == n {
				last = j
			}
		}
		if got != last {
			t.Errorf("Index(%q) = %d, want %d", n, got, last)
		}
	}
	if fs.Index("no.suchCounter") != -1 {
		t.Error("Index of unknown name should be -1")
	}
	// Index lookups are map hits, not scans that allocate.
	if n := testing.AllocsPerRun(100, func() { fs.Index("lsq.forwLoads") }); n != 0 {
		t.Errorf("Index allocates %v times per call, want 0", n)
	}
}
