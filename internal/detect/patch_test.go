package detect

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"evax/internal/hpc"
	"evax/internal/sim"
)

// goodPatch produces a valid savedDetector for mutation tests.
func goodPatch(t *testing.T) savedDetector {
	t.Helper()
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	d := NewPerceptron(3, fs)
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var sd savedDetector
	if err := json.Unmarshal(data, &sd); err != nil {
		t.Fatal(err)
	}
	return sd
}

// TestUnmarshalRejectsMalformedPatches drives every validation rule with a
// targeted mutation of an otherwise-valid patch; each must fail with its
// own distinct message, and a pristine patch must pass.
func TestUnmarshalRejectsMalformedPatches(t *testing.T) {
	space := hpc.DerivedSpaceSize(sim.CounterCatalog().Len())
	cases := []struct {
		name   string
		mutate func(sd *savedDetector)
		want   string // distinct error fragment
	}{
		{
			name:   "no layers",
			mutate: func(sd *savedDetector) { sd.Layers = nil },
			want:   "holds no layers",
		},
		{
			name:   "index/name count mismatch",
			mutate: func(sd *savedDetector) { sd.Names = sd.Names[:len(sd.Names)-1] },
			want:   "indices vs",
		},
		{
			name:   "feature index out of catalog range",
			mutate: func(sd *savedDetector) { sd.Indices[4] = space },
			want:   "outside derived space",
		},
		{
			name:   "negative feature index",
			mutate: func(sd *savedDetector) { sd.Indices[0] = -1 },
			want:   "outside derived space",
		},
		{
			name:   "engineered pair out of base range",
			mutate: func(sd *savedDetector) { sd.Engineered[0].B = len(sd.Indices) },
			want:   "outside [0,",
		},
		{
			name:   "layer input dim mismatch",
			mutate: func(sd *savedDetector) { sd.Layers[0].In++ },
			want:   "dimension mismatch between layers",
		},
		{
			name:   "weight row count mismatch",
			mutate: func(sd *savedDetector) { sd.Layers[0].Out = 2 },
			want:   "weight rows for",
		},
		{
			name:   "weight row width mismatch",
			mutate: func(sd *savedDetector) { sd.Layers[0].W[0] = sd.Layers[0].W[0][:3] },
			want:   "columns for",
		},
		{
			name:   "bias count mismatch",
			mutate: func(sd *savedDetector) { sd.Layers[0].B = append(sd.Layers[0].B, 0) },
			want:   "biases for",
		},
		{
			name:   "NaN weight",
			mutate: func(sd *savedDetector) { sd.Layers[0].W[0][7] = math.NaN() },
			want:   "non-finite weight",
		},
		{
			name:   "infinite weight",
			mutate: func(sd *savedDetector) { sd.Layers[0].W[0][2] = math.Inf(1) },
			want:   "non-finite weight",
		},
		{
			name:   "NaN bias",
			mutate: func(sd *savedDetector) { sd.Layers[0].B[0] = math.NaN() },
			want:   "non-finite bias",
		},
		{
			name:   "negative threshold",
			mutate: func(sd *savedDetector) { sd.Threshold = -0.25 },
			want:   "negative threshold",
		},
		{
			name:   "non-finite threshold",
			mutate: func(sd *savedDetector) { sd.Threshold = math.Inf(-1) },
			want:   "non-finite threshold",
		},
		{
			name:   "activation out of range",
			mutate: func(sd *savedDetector) { sd.Layers[0].Act = 99 },
			want:   "activation 99 outside",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sd := goodPatch(t)
			tc.mutate(&sd)
			if err := sd.validate(); err == nil {
				t.Fatal("malformed patch accepted")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want message containing %q", err, tc.want)
			}
		})
	}
	sd := goodPatch(t)
	if err := sd.validate(); err != nil {
		t.Fatalf("pristine patch rejected: %v", err)
	}
}

// TestUnmarshalRejectsViaJSON: the validation holds through the public
// entry point on real serialized bytes, not only on the in-memory struct.
// NaN/Inf cannot ride through JSON numbers, so the JSON-level cases are the
// structural ones.
func TestUnmarshalRejectsViaJSON(t *testing.T) {
	sd := goodPatch(t)
	sd.Indices[0] = 1 << 30
	data, err := json.Marshal(sd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data); err == nil || !strings.Contains(err.Error(), "outside derived space") {
		t.Fatalf("err = %v, want derived-space rejection", err)
	}
	if _, err := Unmarshal([]byte(`{"feature_set": 42}`)); err == nil {
		t.Fatal("type-mismatched JSON accepted")
	}
	if _, err := Unmarshal([]byte(`not json at all`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
