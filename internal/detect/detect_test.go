package detect

import (
	"math/rand"
	"testing"

	"evax/internal/dataset"
	"evax/internal/hpc"
	"evax/internal/isa"
	"evax/internal/sim"
)

func TestFeatureSetSizes(t *testing.T) {
	ps := PerSpectron()
	if ps.BaseDim() != 106 {
		t.Fatalf("PerSpectron dim = %d, want 106", ps.BaseDim())
	}
	ev := EVAXBase()
	if ev.BaseDim() != 133 {
		t.Fatalf("EVAX base dim = %d, want 133", ev.BaseDim())
	}
	ev.SetEngineered(DefaultEngineered(ev))
	if len(ev.Engineered()) != 12 {
		t.Fatalf("engineered features = %d, want 12", len(ev.Engineered()))
	}
	if ev.Dim() != 145 {
		t.Fatalf("EVAX dim = %d, want 145", ev.Dim())
	}
}

func TestPerSpectronExcludesDRAMAndSpecBuf(t *testing.T) {
	ps := PerSpectron()
	for _, n := range ps.Names() {
		if len(n) > 5 && n[:5] == "dram." {
			t.Fatalf("PerSpectron monitors %s", n)
		}
		if n == "dcache.SpecFills" {
			t.Fatal("PerSpectron monitors InvisiSpec counters")
		}
	}
}

func TestFeatureIndicesValid(t *testing.T) {
	derivedDim := hpc.DerivedSpaceSize(sim.CounterCatalog().Len())
	for _, fs := range []*FeaturePlan{PerSpectron(), EVAXBase()} {
		if len(fs.Indices()) != len(fs.Names()) {
			t.Fatalf("%s: indices/names mismatch", fs.Name())
		}
		seen := map[int]bool{}
		for _, idx := range fs.Indices() {
			if idx < 0 || idx >= derivedDim {
				t.Fatalf("%s: index %d out of derived space", fs.Name(), idx)
			}
			if seen[idx] {
				t.Fatalf("%s: duplicate index %d", fs.Name(), idx)
			}
			seen[idx] = true
		}
	}
}

func TestVectorSelection(t *testing.T) {
	fs := NewPlan("t", []int{2, 0}, []string{"a", "b"})
	derived := []float64{10, 20, 30}
	base := fs.Base(derived)
	if base[0] != 30 || base[1] != 10 {
		t.Fatalf("base = %v", base)
	}
	fs.SetEngineered(DefaultEngineered(fs)) // none resolve: names don't match
	if len(fs.Engineered()) != 0 {
		t.Fatal("engineered resolved against bogus names")
	}
	v := fs.Vector(derived)
	if len(v) != 2 {
		t.Fatalf("vector = %v", v)
	}
}

func TestFeatureOf(t *testing.T) {
	fs := EVAXBase()
	i, n := fs.FeatureOf(0)
	if i != 0 || n != fs.Names()[0] {
		t.Fatal("FeatureOf broken")
	}
	if i, _ := fs.FeatureOf(-1); i != -1 {
		t.Fatal("negative index accepted")
	}
	if i, _ := fs.FeatureOf(10_000); i != -1 {
		t.Fatal("overflow index accepted")
	}
}

// synthDataset fabricates a linearly separable corpus in the derived space:
// malicious samples elevate the squashed-loads and flush counters.
func synthDataset(n int) *dataset.Dataset {
	cat := sim.CounterCatalog()
	dim := hpc.DerivedSpaceSize(cat.Len())
	sqIdx := cat.MustIndex("lsq.squashedLoads") * int(hpc.NumDerivedKinds)
	flIdx := cat.MustIndex("dcache.Flushes") * int(hpc.NumDerivedKinds)
	rng := rand.New(rand.NewSource(2))
	var samples []dataset.Sample
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := 0; j < dim; j += 11 {
			v[j] = rng.Float64() * 10
		}
		mal := i%2 == 0
		if mal {
			v[sqIdx] = 50 + rng.Float64()*50
			v[flIdx] = 30 + rng.Float64()*30
		} else {
			v[sqIdx] = rng.Float64() * 5
			v[flIdx] = rng.Float64() * 3
		}
		class := isa.ClassBenign
		if mal {
			class = isa.ClassMeltdown
		}
		samples = append(samples, dataset.Sample{
			Derived:   v,
			Class:     class,
			Malicious: mal,
			Phases:    1 << uint(isa.PhaseLeak),
		})
	}
	return dataset.New(samples)
}

func TestPerceptronLearnsSyntheticCorpus(t *testing.T) {
	ds := synthDataset(300)
	split := ds.RandomSplit(1, 0.7)
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	d := NewPerceptron(1, fs)
	d.Train(ds, split.Train, DefaultTrainOptions())
	c := d.Evaluate(ds, split.Test)
	if c.Accuracy() < 0.95 {
		t.Fatalf("accuracy %.3f on separable corpus", c.Accuracy())
	}
}

func TestDeepDetectorShape(t *testing.T) {
	fs := PerSpectron()
	d := NewDeep(1, fs, 16, 32)
	if got := len(d.Net.Layers); got != 17 {
		t.Fatalf("layers = %d, want 17", got)
	}
	if d.Net.InputSize() != fs.Dim() {
		t.Fatal("input size mismatch")
	}
}

func TestThresholdTuning(t *testing.T) {
	d := &Detector{Threshold: 0.5}
	benign := []float64{0.1, 0.2, 0.3, 0.4, 0.9}
	d.TuneThresholdForFPR(benign, 0.2) // allow 1 of 5 false positives
	fp := 0
	for _, s := range benign {
		if s >= d.Threshold {
			fp++
		}
	}
	if fp > 1 {
		t.Fatalf("fp = %d at tuned threshold %v", fp, d.Threshold)
	}
	// Zero target: threshold above every benign score.
	d.TuneThresholdForFPR(benign, 0)
	if 0.9 >= d.Threshold {
		t.Fatalf("threshold %v not above max benign", d.Threshold)
	}
	d.TuneThresholdForFPR(nil, 0) // must not panic
}

func TestTrainVectorsBalancesClasses(t *testing.T) {
	// 10:1 imbalance: an unweighted model would collapse to the majority
	// class; the balanced trainer must still catch positives.
	fs := NewPlan("tiny", []int{0, 1}, []string{"a", "b"})
	rng := rand.New(rand.NewSource(3))
	var base [][]float64
	var labels []bool
	for i := 0; i < 440; i++ {
		mal := i%11 == 0
		x := []float64{rng.Float64() * 0.3, rng.Float64() * 0.3}
		if mal {
			x[0] = 0.7 + rng.Float64()*0.3
		}
		base = append(base, x)
		labels = append(labels, mal)
	}
	d := NewPerceptron(2, fs)
	d.TrainVectors(base, labels, DefaultTrainOptions())
	caught, totalMal := 0, 0
	for i, x := range base {
		if labels[i] {
			totalMal++
			if d.FlagBase(x) {
				caught++
			}
		}
	}
	if caught < totalMal*8/10 {
		t.Fatalf("caught %d/%d positives under imbalance", caught, totalMal)
	}
}

func TestScoresAlignment(t *testing.T) {
	ds := synthDataset(40)
	fs := EVAXBase()
	d := NewPerceptron(1, fs)
	idx := []int{0, 1, 2}
	scores, labels := d.Scores(ds, idx)
	if len(scores) != 3 || len(labels) != 3 {
		t.Fatal("scores misaligned")
	}
	for k, i := range idx {
		if labels[k] != ds.Samples[i].Malicious {
			t.Fatal("label misaligned")
		}
	}
}

func TestTrainEmptySafe(t *testing.T) {
	d := NewPerceptron(1, PerSpectron())
	d.TrainVectors(nil, nil, DefaultTrainOptions())
}

func TestMonotoneTraining(t *testing.T) {
	fs := NewPlan("m", []int{0, 1, 2}, []string{"a", "b", "c"})
	rng := rand.New(rand.NewSource(6))
	var base [][]float64
	var labels []bool
	for i := 0; i < 200; i++ {
		mal := i%2 == 0
		x := []float64{rng.Float64() * 0.2, rng.Float64(), rng.Float64()}
		if mal {
			x[0] = 0.7 + rng.Float64()*0.3
		}
		base = append(base, x)
		labels = append(labels, mal)
	}
	opts := DefaultTrainOptions()
	opts.Monotone = true
	d := NewPerceptron(3, fs)
	d.TrainVectors(base, labels, opts)
	for _, l := range d.Net.Layers {
		for o := range l.W {
			for i := range l.W[o] {
				if l.W[o][i] < 0 {
					t.Fatalf("monotone training left negative weight %v", l.W[o][i])
				}
			}
		}
	}
	// Still accurate on the separable dimension.
	correct := 0
	for i, x := range base {
		if d.FlagBase(x) == labels[i] {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("monotone detector accuracy %d/200", correct)
	}
}

func TestScoreBaseAndVectorAgree(t *testing.T) {
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	d := NewPerceptron(9, fs)
	rng := rand.New(rand.NewSource(8))
	derived := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	for i := range derived {
		derived[i] = rng.Float64()
	}
	if d.Score(derived) != d.ScoreBase(fs.Base(derived)) {
		t.Fatal("Score and ScoreBase disagree")
	}
	if d.ScoreVector(fs.Vector(derived)) != d.Score(derived) {
		t.Fatal("ScoreVector and Score disagree")
	}
}
