// Package detect assembles the hardware malware detectors evaluated in the
// paper: PerSpectron (the prior state of the art — a single-layer model
// over 106 performance counters) and EVAX (the same architecture over 145
// features: 133 selected counters plus 12 engineered security HPCs), as
// well as the deeper networks of Figure 20. Detectors are trained either
// conventionally (on real samples) or with EVAX vaccination (real samples
// augmented by AM-GAN-generated adversarial samples).
package detect

import (
	"fmt"
	"math/rand"
	"sort"

	"evax/internal/dataset"
	"evax/internal/featureng"
	"evax/internal/hpc"
	"evax/internal/kernel"
	"evax/internal/metrics"
	"evax/internal/ml"
	"evax/internal/sim"
)

// FeaturePlan is the compiled feature selection a detector executes: base
// features resolved from names to derived-space indices once at assembly,
// a name→position index compiled alongside them, and the engineered
// AND-features appended to the base gather. The plan is immutable after
// detector assembly and shared across detector clones — only per-detector
// scratch is cloned.
type FeaturePlan struct {
	name       string
	indices    []int    // indices into the derived counter space
	names      []string // aligned with indices
	index      map[string]int
	engineered []featureng.ANDFeature
}

// NewPlan compiles a feature plan from aligned index/name lists. The
// name→position index is built here, once — nothing downstream ever
// rebuilds a name map per call.
func NewPlan(name string, indices []int, names []string) *FeaturePlan {
	if len(indices) != len(names) {
		panic(fmt.Sprintf("detect: plan %q: %d indices vs %d names", name, len(indices), len(names)))
	}
	p := &FeaturePlan{
		name:    name,
		indices: append([]int(nil), indices...),
		names:   append([]string(nil), names...),
		index:   make(map[string]int, len(names)),
	}
	for i, n := range p.names {
		p.index[n] = i
	}
	return p
}

// Name returns the plan's name.
func (p *FeaturePlan) Name() string { return p.name }

// BaseDim is the number of selected base features.
func (p *FeaturePlan) BaseDim() int { return len(p.indices) }

// Dim is the full detector input dimensionality (base + engineered).
func (p *FeaturePlan) Dim() int { return len(p.indices) + len(p.engineered) }

// Indices returns a copy of the derived-space indices. Hot callers iterating
// per sample should use IndexAt, which does not allocate.
func (p *FeaturePlan) Indices() []int { return append([]int(nil), p.indices...) }

// Names returns a copy of the base feature names. Hot callers iterating per
// sample should use NameAt, which does not allocate.
func (p *FeaturePlan) Names() []string { return append([]string(nil), p.names...) }

// IndexAt returns the derived-space index of base feature i without copying
// the index table.
func (p *FeaturePlan) IndexAt(i int) int { return p.indices[i] }

// NameAt returns the name of base feature i without copying the name table.
func (p *FeaturePlan) NameAt(i int) string { return p.names[i] }

// Engineered returns the engineered features. The slice is owned by the
// plan; callers must not modify it.
func (p *FeaturePlan) Engineered() []featureng.ANDFeature { return p.engineered }

// SetEngineered attaches engineered features (validated against the base
// dimensionality). Call before building detectors on the plan: detectors
// size their networks and scratch from Dim().
func (p *FeaturePlan) SetEngineered(feats []featureng.ANDFeature) {
	for _, f := range feats {
		if f.A < 0 || f.A >= p.BaseDim() || f.B < 0 || f.B >= p.BaseDim() {
			panic(fmt.Sprintf("detect: plan %q: engineered feature %q out of base space [0,%d)",
				p.name, f.Name, p.BaseDim()))
		}
	}
	p.engineered = append([]featureng.ANDFeature(nil), feats...)
}

// Index returns the base-feature position of name, or -1 if the plan does
// not select it. This is the compiled lookup that replaced the per-call
// map rebuilds.
func (p *FeaturePlan) Index(name string) int {
	if i, ok := p.index[name]; ok {
		return i
	}
	return -1
}

// Gather writes the selected base features of a derived vector into dst
// (len == BaseDim). Zero allocations.
func (p *FeaturePlan) Gather(dst, derived []float64) {
	for i, idx := range p.indices {
		dst[i] = derived[idx]
	}
}

// Base extracts the selected base features from a derived vector into a
// fresh slice (allocating convenience form of Gather).
func (p *FeaturePlan) Base(derived []float64) []float64 {
	out := make([]float64, len(p.indices))
	p.Gather(out, derived)
	return out
}

// ExtendInto evaluates the engineered features over dst's base prefix and
// writes them into dst's tail; dst has length Dim() with the first
// BaseDim() entries already holding base features. Zero allocations.
func (p *FeaturePlan) ExtendInto(dst []float64) {
	base := dst[:len(p.indices)]
	for i, f := range p.engineered {
		dst[len(p.indices)+i] = f.Eval(base)
	}
}

// Extend appends engineered feature values to a base vector.
func (p *FeaturePlan) Extend(base []float64) []float64 {
	return featureng.Append(base, p.engineered)
}

// GatherVector executes the whole plan into dst (len == Dim()): base
// gather followed by engineered evaluation. Zero allocations.
func (p *FeaturePlan) GatherVector(dst, derived []float64) {
	p.Gather(dst[:len(p.indices)], derived)
	p.ExtendInto(dst)
}

// Vector is Base followed by Extend.
func (p *FeaturePlan) Vector(derived []float64) []float64 {
	out := make([]float64, p.Dim())
	p.GatherVector(out, derived)
	return out
}

// GatherBatch gathers base features for every listed sample into one
// contiguous block, returning row views (the batch form detector training
// and the GAN corpus builders use). The output block is the only
// allocation: two makes per batch, amortized over len(idx) samples, and
// nothing per-row.
//
//evaxlint:hotpath
func (p *FeaturePlan) GatherBatch(ds *dataset.Dataset, idx []int) [][]float64 {
	dim := p.BaseDim()
	//evaxlint:ignore hotpath the returned batch block is the output itself, one allocation per batch
	backing := make([]float64, len(idx)*dim)
	//evaxlint:ignore hotpath row-view header slice, one allocation per batch
	rows := make([][]float64, len(idx))
	for k, i := range idx {
		row := backing[k*dim : (k+1)*dim : (k+1)*dim]
		p.Gather(row, ds.Samples[i].Derived)
		rows[k] = row
	}
	return rows
}

// FeatureOf maps a base-feature index to itself with its name — the adapter
// featureng.Mine uses when mining over this plan's space.
func (p *FeaturePlan) FeatureOf(i int) (int, string) {
	if i < 0 || i >= len(p.names) {
		return -1, ""
	}
	return i, p.names[i]
}

// validate checks the plan against the catalog it was assembled from:
// every index inside the derived space, every name resolvable.
func (p *FeaturePlan) validate(cat *hpc.Catalog) *FeaturePlan {
	space := hpc.DerivedSpaceSize(cat.Len())
	for i, idx := range p.indices {
		if idx < 0 || idx >= space {
			panic(fmt.Sprintf("detect: plan %q: feature %q index %d outside derived space [0,%d)",
				p.name, p.names[i], idx, space))
		}
	}
	return p
}

// derivedIndex resolves "counter.view" to a derived-space index.
func derivedIndex(cat *hpc.Catalog, counter string, view hpc.DerivedKind) int {
	base := cat.MustIndex(counter)
	return base*int(hpc.NumDerivedKinds) + int(view)
}

// perSpectronExclusions lists counters outside PerSpectron's 2020-era view:
// DRAM internals and the InvisiSpec speculative-buffer counters.
var perSpectronExclusions = map[string]bool{
	"dcache.SpecFills": true, "dcache.SpecExposes": true,
	"dcache.SpecSquashed": true, "dcache.SpecBufHits": true,
}

// keyRateCounters get a second, rate view in the PerSpectron set.
var keyRateCounters = []string{
	"lsq.squashedLoads", "iq.SquashedInstsExamined", "iew.BranchMispredicts",
	"dcache.ReadReq_misses", "dcache.Flushes", "commit.Faults",
}

// PerSpectron builds the 106-feature baseline plan (no engineered features).
func PerSpectron() *FeaturePlan {
	cat := sim.CounterCatalog()
	var indices []int
	var names []string
	for i := 0; i < cat.Len(); i++ {
		name := cat.Name(i)
		if perSpectronExclusions[name] || len(name) > 5 && name[:5] == "dram." {
			continue
		}
		indices = append(indices, i*int(hpc.NumDerivedKinds)+int(hpc.DerivedTotal))
		names = append(names, name)
	}
	for _, c := range keyRateCounters {
		indices = append(indices, derivedIndex(cat, c, hpc.DerivedRate))
		names = append(names, c+".rate")
	}
	return NewPlan("perspectron-106", indices, names).validate(cat)
}

// evaxExtraRates get rate views in the EVAX base set beyond PerSpectron's.
var evaxExtraRates = []string{
	"lsq.ignoredResponses", "lsq.forwLoads", "iew.MemOrderViolation",
	"rng.ContentionCycles", "dram.Activates", "dram.RowConflicts",
	"dram.bytesReadWrQ", "dram.bytesRead", "fetch.SquashCycles",
	"spec.LoadsExecuted", "dtlb.rdMisses", "branchPred.RASUnderflows",
}

// EVAXBase builds the 133-counter EVAX base plan: everything PerSpectron
// monitors plus the DRAM and speculation counters and additional rate
// views. Engineered features are attached separately (DefaultEngineered or
// featureng.Mine output).
func EVAXBase() *FeaturePlan {
	cat := sim.CounterCatalog()
	var indices []int
	var names []string
	for i := 0; i < cat.Len(); i++ {
		indices = append(indices, i*int(hpc.NumDerivedKinds)+int(hpc.DerivedTotal))
		names = append(names, cat.Name(i))
	}
	for _, c := range append(append([]string(nil), keyRateCounters...), evaxExtraRates...) {
		indices = append(indices, derivedIndex(cat, c, hpc.DerivedRate))
		names = append(names, c+".rate")
	}
	return NewPlan("evax-133", indices, names).validate(cat)
}

// defaultEngineeredPairs names the 12 security HPCs of the paper's Table I
// (those expressible in this machine's counter space), as
// (counterA, counterB) pairs ANDed together.
var defaultEngineeredPairs = [12][2]string{
	{"dram.bytesReadWrQ", "lsq.squashedLoads"},                   // SquashedBytesReadFromWRQu
	{"rename.CommittedMaps", "rename.Undone"},                    // Table I row 2
	{"iew.MemOrderViolation", "dtlb.rdMisses"},                   // Table I row 3
	{"lsq.squashedStores", "lsq.forwLoads"},                      // Table I row 4
	{"membus.trans_dist::ReadSharedReq", "lsq.ignoredResponses"}, // row 5
	{"iq.SquashedNonSpecLD", "dcache.ReadReq_mshr_miss_latency"}, // row 6
	{"rename.serializingInsts", "iew.ExecSquashedInsts"},         // row 7
	{"commit.Faults", "dcache.Flushes"},
	{"dram.Activates", "dcache.FlushMisses"},
	{"rng.ContentionCycles", "rng.Reads"},
	{"branchPred.RASUnderflows", "lsq.squashedLoads"},
	{"iew.BranchMispredicts", "dcache.ReadReq_misses"},
}

// DefaultEngineered returns the paper's Table I feature list resolved
// against p (the static fallback; the Table I experiment regenerates the
// list by mining a trained AM-GAN generator). Resolution goes through the
// plan's compiled name index — no per-call map rebuild.
func DefaultEngineered(p *FeaturePlan) []featureng.ANDFeature {
	var out []featureng.ANDFeature
	for _, pair := range defaultEngineeredPairs {
		a := p.Index(pair[0])
		b := p.Index(pair[1])
		if a < 0 || b < 0 {
			continue
		}
		if a > b {
			a, b = b, a
		}
		out = append(out, featureng.ANDFeature{A: a, B: b, Name: pair[0] + " AND " + pair[1]})
	}
	return out
}

// Detector is a trained classifier over a feature plan. Threshold is the
// malicious decision boundary on the model's sigmoid output (the paper
// tunes it for sensitivity/ROC operating points).
type Detector struct {
	Plan      *FeaturePlan
	Net       *ml.Network
	Threshold float64

	// scratch holds the gathered input vector for scoring — reused across
	// calls so the steady-state score path allocates nothing.
	scratch []float64

	// kern caches the fused derived-space kernel (kernel.Scorer) compiled
	// from the plan and weights on first score; deep detectors leave it nil
	// and keep the network path. The kernel snapshots weights, so
	// TrainVectors invalidates it. Clones share it: the derived-space
	// kernel entry points are stateless.
	kern      *kernel.Scorer
	kernTried bool
}

// buf returns the detector's input scratch, sized to the plan.
func (d *Detector) buf() []float64 {
	if len(d.scratch) != d.Plan.Dim() {
		//evaxlint:ignore hotpath one-time lazy sizing; steady-state calls reuse the scratch
		d.scratch = make([]float64, d.Plan.Dim())
	}
	return d.scratch
}

// Clone returns a detector with the same weights and threshold but its own
// forward-pass scratch. Network.Forward writes per-layer activations in
// place, so a detector must never be scored from two runner jobs at once —
// parallel campaigns clone the shared detector per job instead. The plan is
// shared (immutable after assembly); only scratch is per-clone.
func (d *Detector) Clone() *Detector {
	return &Detector{Plan: d.Plan, Net: d.Net.Clone(), Threshold: d.Threshold,
		kern: d.kern, kernTried: d.kernTried}
}

// NewPerceptron builds the HW-friendly single-layer detector (the
// PerSpectron/EVAX architecture).
func NewPerceptron(seed int64, p *FeaturePlan) *Detector {
	return &Detector{
		Plan:      p,
		Net:       ml.New(seed, []int{p.Dim(), 1}, ml.Linear, ml.Sigmoid),
		Threshold: 0.5,
	}
}

// NewDeep builds an N-hidden-layer detector of the given width (Figure 20's
// 16- and 32-layer networks).
func NewDeep(seed int64, p *FeaturePlan, hiddenLayers, width int) *Detector {
	sizes := []int{p.Dim()}
	for i := 0; i < hiddenLayers; i++ {
		sizes = append(sizes, width)
	}
	sizes = append(sizes, 1)
	return &Detector{
		Plan:      p,
		Net:       ml.New(seed, sizes, ml.LeakyReLU, ml.Sigmoid),
		Threshold: 0.5,
	}
}

// ScoreVector scores a full detector-space vector (base + engineered).
func (d *Detector) ScoreVector(x []float64) float64 { return d.Net.Forward(x)[0] }

// ScoreBase scores a base-feature vector (engineered features computed).
// Zero allocations in steady state. Single-layer detectors score through
// the fused kernel (bit-identical to the gather+forward path); deep ones
// through the network.
func (d *Detector) ScoreBase(base []float64) float64 {
	if k := d.derivedKernel(); k != nil {
		return k.ScoreBase(base)
	}
	x := d.buf()
	copy(x, base)
	d.Plan.ExtendInto(x)
	return d.ScoreVector(x)
}

// Score scores a derived-space sample vector through the fused kernel
// (gather + engineered features + dot product in one loop, bit-identical to
// the historical plan-execution + forward pass), falling back to the
// network for deep detectors. Zero allocations in steady state —
// statically enforced by the hotpath analyzer.
//
//evaxlint:hotpath
func (d *Detector) Score(derived []float64) float64 {
	if k := d.derivedKernel(); k != nil {
		return k.ScoreDerived(derived)
	}
	x := d.buf()
	d.Plan.GatherVector(x, derived)
	return d.ScoreVector(x)
}

// Flag reports malicious for a derived-space vector.
func (d *Detector) Flag(derived []float64) bool { return d.Score(derived) >= d.Threshold }

// FlagBase reports malicious for a base-space vector.
func (d *Detector) FlagBase(base []float64) bool { return d.ScoreBase(base) >= d.Threshold }

// TrainOptions controls detector training.
type TrainOptions struct {
	Epochs   int
	LR       float64
	Momentum float64
	Batch    int
	Seed     int64
	// Monotone projects weights to be non-negative after each step,
	// training a monotone detector: anomalous activity can only raise
	// the suspicion score. This closes the negative-weight channel
	// adversarial-ML evasion exploits (used by the hardened EVAX arm).
	Monotone bool
}

// DefaultTrainOptions returns settings adequate for the corpus sizes the
// experiments build.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, LR: 0.15, Momentum: 0.7, Batch: 16, Seed: 1}
}

// TrainVectors trains on detector-BASE-space vectors with boolean labels;
// engineered features are computed on the fly (into the detector's scratch
// — the epoch loop performs no per-example allocation). Classes are
// balanced by inverse-frequency example weighting.
func (d *Detector) TrainVectors(base [][]float64, labels []bool, o TrainOptions) {
	if len(base) == 0 {
		return
	}
	// Training mutates the network; the cached kernel snapshot is stale.
	d.invalidateKernel()
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	wPos, wNeg := 1.0, 1.0
	if pos > 0 && neg > 0 {
		if pos > neg {
			wNeg = float64(pos) / float64(neg)
		} else {
			wPos = float64(neg) / float64(pos)
		}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	grad := make([]float64, 1)
	target := make([]float64, 1)
	x := d.buf()
	for e := 0; e < o.Epochs; e++ {
		perm := rng.Perm(len(base))
		inBatch := 0
		for _, i := range perm {
			copy(x, base[i])
			d.Plan.ExtendInto(x)
			target[0] = 0
			w := wNeg
			if labels[i] {
				target[0], w = 1.0, wPos
			}
			pred := d.Net.Forward(x)
			ml.BCE(pred, target, grad)
			grad[0] *= w
			d.Net.Backward(grad)
			inBatch++
			if inBatch == o.Batch {
				d.Net.Step(o.LR, o.Momentum, o.Batch)
				if o.Monotone {
					d.Net.ProjectNonNegative()
				}
				inBatch = 0
			}
		}
		if inBatch > 0 {
			d.Net.Step(o.LR, o.Momentum, inBatch)
			if o.Monotone {
				d.Net.ProjectNonNegative()
			}
		}
	}
}

// Train trains on dataset samples selected by idx (base vectors gathered
// into one contiguous batch block).
func (d *Detector) Train(ds *dataset.Dataset, idx []int, o TrainOptions) {
	base := d.Plan.GatherBatch(ds, idx)
	labels := make([]bool, len(idx))
	for k, i := range idx {
		labels[k] = ds.Samples[i].Malicious
	}
	d.TrainVectors(base, labels, o)
}

// Evaluate scores the dataset samples at idx through the fused batch path
// and returns the confusion matrix at the current threshold.
func (d *Detector) Evaluate(ds *dataset.Dataset, idx []int) metrics.Confusion {
	scores := make([]float64, len(idx))
	d.ScoreBatch(ds, idx, scores)
	var c metrics.Confusion
	for k, i := range idx {
		c.Add(scores[k] >= d.Threshold, ds.Samples[i].Malicious)
	}
	return c
}

// Scores returns raw scores and labels over idx (ROC input), scored through
// the fused batch path.
func (d *Detector) Scores(ds *dataset.Dataset, idx []int) (scores []float64, labels []bool) {
	scores = make([]float64, len(idx))
	d.ScoreBatch(ds, idx, scores)
	labels = make([]bool, len(idx))
	for k, i := range idx {
		labels[k] = ds.Samples[i].Malicious
	}
	return
}

// TuneThresholdForFPR sets the threshold to the smallest value whose
// false-positive rate on the given benign scores does not exceed target
// ("EVAX is tuned to have very high sensitivity" — the operating point is
// chosen on benign traffic).
func (d *Detector) TuneThresholdForFPR(benignScores []float64, target float64) {
	if len(benignScores) == 0 {
		return
	}
	d.Threshold = ThresholdForFPR(benignScores, target)
}

// ThresholdForFPR computes the smallest threshold whose false-positive rate
// on the given benign scores does not exceed target — the package-level form
// so the quantized backend can re-tune its operating point on quantized
// benign scores without a Detector in hand.
func ThresholdForFPR(benignScores []float64, target float64) float64 {
	s := append([]float64(nil), benignScores...)
	sort.Float64s(s)
	// Allow at most target fraction of benign scores >= threshold.
	k := int(float64(len(s)) * (1 - target))
	if k >= len(s) {
		k = len(s) - 1
	}
	if k < 0 {
		k = 0
	}
	return s[k] + 1e-9
}
