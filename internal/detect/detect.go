// Package detect assembles the hardware malware detectors evaluated in the
// paper: PerSpectron (the prior state of the art — a single-layer model
// over 106 performance counters) and EVAX (the same architecture over 145
// features: 133 selected counters plus 12 engineered security HPCs), as
// well as the deeper networks of Figure 20. Detectors are trained either
// conventionally (on real samples) or with EVAX vaccination (real samples
// augmented by AM-GAN-generated adversarial samples).
package detect

import (
	"math/rand"
	"sort"

	"evax/internal/dataset"
	"evax/internal/featureng"
	"evax/internal/hpc"
	"evax/internal/metrics"
	"evax/internal/ml"
	"evax/internal/sim"
)

// FeatureSet selects base features from the derived counter space and
// carries the engineered AND-features appended to them.
type FeatureSet struct {
	Name       string
	Indices    []int    // indices into the derived counter space
	Names      []string // aligned with Indices
	Engineered []featureng.ANDFeature
}

// BaseDim is the number of selected base features.
func (fs *FeatureSet) BaseDim() int { return len(fs.Indices) }

// Dim is the full detector input dimensionality (base + engineered).
func (fs *FeatureSet) Dim() int { return len(fs.Indices) + len(fs.Engineered) }

// Base extracts the selected base features from a derived vector.
func (fs *FeatureSet) Base(derived []float64) []float64 {
	out := make([]float64, len(fs.Indices))
	for i, idx := range fs.Indices {
		out[i] = derived[idx]
	}
	return out
}

// Extend appends engineered feature values to a base vector.
func (fs *FeatureSet) Extend(base []float64) []float64 {
	return featureng.Append(base, fs.Engineered)
}

// Vector is Base followed by Extend.
func (fs *FeatureSet) Vector(derived []float64) []float64 {
	return fs.Extend(fs.Base(derived))
}

// FeatureOf maps a base-feature index to itself with its name — the adapter
// featureng.Mine uses when mining over this feature set's space.
func (fs *FeatureSet) FeatureOf(i int) (int, string) {
	if i < 0 || i >= len(fs.Names) {
		return -1, ""
	}
	return i, fs.Names[i]
}

// derivedIndex resolves "counter.view" to a derived-space index.
func derivedIndex(cat *hpc.Catalog, counter string, view hpc.DerivedKind) int {
	base := cat.MustIndex(counter)
	return base*int(hpc.NumDerivedKinds) + int(view)
}

// perSpectronExclusions lists counters outside PerSpectron's 2020-era view:
// DRAM internals and the InvisiSpec speculative-buffer counters.
var perSpectronExclusions = map[string]bool{
	"dcache.SpecFills": true, "dcache.SpecExposes": true,
	"dcache.SpecSquashed": true, "dcache.SpecBufHits": true,
}

// keyRateCounters get a second, rate view in the PerSpectron set.
var keyRateCounters = []string{
	"lsq.squashedLoads", "iq.SquashedInstsExamined", "iew.BranchMispredicts",
	"dcache.ReadReq_misses", "dcache.Flushes", "commit.Faults",
}

// PerSpectron builds the 106-feature baseline set (no engineered features).
func PerSpectron() *FeatureSet {
	cat := sim.CounterCatalog()
	fs := &FeatureSet{Name: "perspectron-106"}
	for i := 0; i < cat.Len(); i++ {
		name := cat.Name(i)
		if perSpectronExclusions[name] || len(name) > 5 && name[:5] == "dram." {
			continue
		}
		fs.Indices = append(fs.Indices, i*int(hpc.NumDerivedKinds)+int(hpc.DerivedTotal))
		fs.Names = append(fs.Names, name)
	}
	for _, c := range keyRateCounters {
		fs.Indices = append(fs.Indices, derivedIndex(cat, c, hpc.DerivedRate))
		fs.Names = append(fs.Names, c+".rate")
	}
	return fs
}

// evaxExtraRates get rate views in the EVAX base set beyond PerSpectron's.
var evaxExtraRates = []string{
	"lsq.ignoredResponses", "lsq.forwLoads", "iew.MemOrderViolation",
	"rng.ContentionCycles", "dram.Activates", "dram.RowConflicts",
	"dram.bytesReadWrQ", "dram.bytesRead", "fetch.SquashCycles",
	"spec.LoadsExecuted", "dtlb.rdMisses", "branchPred.RASUnderflows",
}

// EVAXBase builds the 133-counter EVAX base set: everything PerSpectron
// monitors plus the DRAM and speculation counters and additional rate
// views. Engineered features are attached separately (DefaultEngineered or
// featureng.Mine output).
func EVAXBase() *FeatureSet {
	cat := sim.CounterCatalog()
	fs := &FeatureSet{Name: "evax-133"}
	for i := 0; i < cat.Len(); i++ {
		fs.Indices = append(fs.Indices, i*int(hpc.NumDerivedKinds)+int(hpc.DerivedTotal))
		fs.Names = append(fs.Names, cat.Name(i))
	}
	for _, c := range append(append([]string(nil), keyRateCounters...), evaxExtraRates...) {
		fs.Indices = append(fs.Indices, derivedIndex(cat, c, hpc.DerivedRate))
		fs.Names = append(fs.Names, c+".rate")
	}
	return fs
}

// defaultEngineeredPairs names the 12 security HPCs of the paper's Table I
// (those expressible in this machine's counter space), as
// (counterA, counterB) pairs ANDed together.
var defaultEngineeredPairs = [12][2]string{
	{"dram.bytesReadWrQ", "lsq.squashedLoads"},                   // SquashedBytesReadFromWRQu
	{"rename.CommittedMaps", "rename.Undone"},                    // Table I row 2
	{"iew.MemOrderViolation", "dtlb.rdMisses"},                   // Table I row 3
	{"lsq.squashedStores", "lsq.forwLoads"},                      // Table I row 4
	{"membus.trans_dist::ReadSharedReq", "lsq.ignoredResponses"}, // row 5
	{"iq.SquashedNonSpecLD", "dcache.ReadReq_mshr_miss_latency"}, // row 6
	{"rename.serializingInsts", "iew.ExecSquashedInsts"},         // row 7
	{"commit.Faults", "dcache.Flushes"},
	{"dram.Activates", "dcache.FlushMisses"},
	{"rng.ContentionCycles", "rng.Reads"},
	{"branchPred.RASUnderflows", "lsq.squashedLoads"},
	{"iew.BranchMispredicts", "dcache.ReadReq_misses"},
}

// DefaultEngineered returns the paper's Table I feature list resolved
// against fs (the static fallback; the Table I experiment regenerates the
// list by mining a trained AM-GAN generator).
func DefaultEngineered(fs *FeatureSet) []featureng.ANDFeature {
	pos := map[string]int{}
	for i, n := range fs.Names {
		pos[n] = i
	}
	var out []featureng.ANDFeature
	for _, pair := range defaultEngineeredPairs {
		a, okA := pos[pair[0]]
		b, okB := pos[pair[1]]
		if !okA || !okB {
			continue
		}
		if a > b {
			a, b = b, a
		}
		out = append(out, featureng.ANDFeature{A: a, B: b, Name: pair[0] + " AND " + pair[1]})
	}
	return out
}

// Detector is a trained classifier over a feature set. Threshold is the
// malicious decision boundary on the model's sigmoid output (the paper
// tunes it for sensitivity/ROC operating points).
type Detector struct {
	FS        *FeatureSet
	Net       *ml.Network
	Threshold float64
}

// Clone returns a detector with the same weights and threshold but its own
// forward-pass scratch. Network.Forward writes per-layer activations in
// place, so a detector must never be scored from two runner jobs at once —
// parallel campaigns clone the shared detector per job instead. FS is
// shared (read-only after construction).
func (d *Detector) Clone() *Detector {
	return &Detector{FS: d.FS, Net: d.Net.Clone(), Threshold: d.Threshold}
}

// NewPerceptron builds the HW-friendly single-layer detector (the
// PerSpectron/EVAX architecture).
func NewPerceptron(seed int64, fs *FeatureSet) *Detector {
	return &Detector{
		FS:        fs,
		Net:       ml.New(seed, []int{fs.Dim(), 1}, ml.Linear, ml.Sigmoid),
		Threshold: 0.5,
	}
}

// NewDeep builds an N-hidden-layer detector of the given width (Figure 20's
// 16- and 32-layer networks).
func NewDeep(seed int64, fs *FeatureSet, hiddenLayers, width int) *Detector {
	sizes := []int{fs.Dim()}
	for i := 0; i < hiddenLayers; i++ {
		sizes = append(sizes, width)
	}
	sizes = append(sizes, 1)
	return &Detector{
		FS:        fs,
		Net:       ml.New(seed, sizes, ml.LeakyReLU, ml.Sigmoid),
		Threshold: 0.5,
	}
}

// ScoreVector scores a full detector-space vector (base + engineered).
func (d *Detector) ScoreVector(x []float64) float64 { return d.Net.Forward(x)[0] }

// ScoreBase scores a base-feature vector (engineered features computed).
func (d *Detector) ScoreBase(base []float64) float64 {
	return d.ScoreVector(d.FS.Extend(base))
}

// Score scores a derived-space sample vector.
func (d *Detector) Score(derived []float64) float64 {
	return d.ScoreVector(d.FS.Vector(derived))
}

// Flag reports malicious for a derived-space vector.
func (d *Detector) Flag(derived []float64) bool { return d.Score(derived) >= d.Threshold }

// FlagBase reports malicious for a base-space vector.
func (d *Detector) FlagBase(base []float64) bool { return d.ScoreBase(base) >= d.Threshold }

// TrainOptions controls detector training.
type TrainOptions struct {
	Epochs   int
	LR       float64
	Momentum float64
	Batch    int
	Seed     int64
	// Monotone projects weights to be non-negative after each step,
	// training a monotone detector: anomalous activity can only raise
	// the suspicion score. This closes the negative-weight channel
	// adversarial-ML evasion exploits (used by the hardened EVAX arm).
	Monotone bool
}

// DefaultTrainOptions returns settings adequate for the corpus sizes the
// experiments build.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, LR: 0.15, Momentum: 0.7, Batch: 16, Seed: 1}
}

// TrainVectors trains on detector-BASE-space vectors with boolean labels;
// engineered features are computed on the fly. Classes are balanced by
// inverse-frequency example weighting.
func (d *Detector) TrainVectors(base [][]float64, labels []bool, o TrainOptions) {
	if len(base) == 0 {
		return
	}
	pos, neg := 0, 0
	for _, l := range labels {
		if l {
			pos++
		} else {
			neg++
		}
	}
	wPos, wNeg := 1.0, 1.0
	if pos > 0 && neg > 0 {
		if pos > neg {
			wNeg = float64(pos) / float64(neg)
		} else {
			wPos = float64(neg) / float64(pos)
		}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	grad := make([]float64, 1)
	for e := 0; e < o.Epochs; e++ {
		perm := rng.Perm(len(base))
		inBatch := 0
		for _, i := range perm {
			x := d.FS.Extend(base[i])
			target, w := 0.0, wNeg
			if labels[i] {
				target, w = 1.0, wPos
			}
			pred := d.Net.Forward(x)
			ml.BCE(pred, []float64{target}, grad)
			grad[0] *= w
			d.Net.Backward(grad)
			inBatch++
			if inBatch == o.Batch {
				d.Net.Step(o.LR, o.Momentum, o.Batch)
				if o.Monotone {
					d.Net.ProjectNonNegative()
				}
				inBatch = 0
			}
		}
		if inBatch > 0 {
			d.Net.Step(o.LR, o.Momentum, inBatch)
			if o.Monotone {
				d.Net.ProjectNonNegative()
			}
		}
	}
}

// Train trains on dataset samples selected by idx.
func (d *Detector) Train(ds *dataset.Dataset, idx []int, o TrainOptions) {
	base := make([][]float64, len(idx))
	labels := make([]bool, len(idx))
	for k, i := range idx {
		base[k] = d.FS.Base(ds.Samples[i].Derived)
		labels[k] = ds.Samples[i].Malicious
	}
	d.TrainVectors(base, labels, o)
}

// Evaluate scores the dataset samples at idx and returns the confusion
// matrix at the current threshold.
func (d *Detector) Evaluate(ds *dataset.Dataset, idx []int) metrics.Confusion {
	var c metrics.Confusion
	for _, i := range idx {
		c.Add(d.Flag(ds.Samples[i].Derived), ds.Samples[i].Malicious)
	}
	return c
}

// Scores returns raw scores and labels over idx (ROC input).
func (d *Detector) Scores(ds *dataset.Dataset, idx []int) (scores []float64, labels []bool) {
	for _, i := range idx {
		scores = append(scores, d.Score(ds.Samples[i].Derived))
		labels = append(labels, ds.Samples[i].Malicious)
	}
	return
}

// TuneThresholdForFPR sets the threshold to the smallest value whose
// false-positive rate on the given benign scores does not exceed target
// ("EVAX is tuned to have very high sensitivity" — the operating point is
// chosen on benign traffic).
func (d *Detector) TuneThresholdForFPR(benignScores []float64, target float64) {
	if len(benignScores) == 0 {
		return
	}
	s := append([]float64(nil), benignScores...)
	sort.Float64s(s)
	// Allow at most target fraction of benign scores >= threshold.
	k := int(float64(len(s)) * (1 - target))
	if k >= len(s) {
		k = len(s) - 1
	}
	if k < 0 {
		k = 0
	}
	d.Threshold = s[k] + 1e-9
}
