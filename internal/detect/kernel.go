// Fused-kernel integration: detect compiles its FeaturePlan + model into a
// kernel.Scorer (the package boundary runs this direction — kernel must not
// import detect), caches a derived-space kernel per detector, and exposes
// the batch scoring entry points the experiment drivers use.
package detect

import (
	"fmt"

	"evax/internal/dataset"
	"evax/internal/hpc"
	"evax/internal/kernel"
	"evax/internal/ml"
)

// CompileScorer compiles the detector into a fused float kernel. maxima is
// the full derived-space normalization vector (dataset.Maxima()) for a
// raw-capable scorer, or nil for a derived-only scorer. Only the
// single-layer sigmoid architecture (the PerSpectron/EVAX hardware model)
// compiles; deep detectors score through ml.Network.
func CompileScorer(d *Detector, maxima []float64) (*kernel.Scorer, error) {
	if len(d.Net.Layers) != 1 {
		return nil, fmt.Errorf("detect: kernel needs a single-layer detector, have %d layers", len(d.Net.Layers))
	}
	l := d.Net.Layers[0]
	if l.Out != 1 || l.Act != ml.Sigmoid {
		return nil, fmt.Errorf("detect: kernel needs a 1-output sigmoid layer")
	}
	p := d.Plan
	if l.In != p.Dim() {
		return nil, fmt.Errorf("detect: layer input %d vs plan dimension %d", l.In, p.Dim())
	}
	cfg := kernel.Config{
		Indices:   p.indices,
		EngA:      make([]int, len(p.engineered)),
		EngB:      make([]int, len(p.engineered)),
		W:         l.W[0],
		Bias:      l.B[0],
		Threshold: d.Threshold,
	}
	for j, f := range p.engineered {
		cfg.EngA[j] = f.A
		cfg.EngB[j] = f.B
	}
	// The raw dimension is implied by the derived space the plan indexes
	// into; with maxima present the dataset's derived dimension pins it,
	// otherwise size the space to cover the plan's largest index.
	if maxima != nil {
		if len(maxima)%int(hpc.NumDerivedKinds) != 0 {
			return nil, fmt.Errorf("detect: maxima length %d is not a whole derived space", len(maxima))
		}
		cfg.RawDim = len(maxima) / int(hpc.NumDerivedKinds)
		cfg.Norm = make([]float64, len(p.indices))
		for i, ix := range p.indices {
			if ix >= len(maxima) {
				return nil, fmt.Errorf("detect: feature %q slot %d outside maxima space %d", p.names[i], ix, len(maxima))
			}
			cfg.Norm[i] = maxima[ix]
		}
	} else {
		maxIdx := 0
		for _, ix := range p.indices {
			if ix > maxIdx {
				maxIdx = ix
			}
		}
		cfg.RawDim = maxIdx/int(hpc.NumDerivedKinds) + 1
	}
	return kernel.Compile(cfg)
}

// derivedKernel returns the detector's cached derived-space kernel, compiling
// it on first use. Deep detectors return nil and score through ml.Network.
// TrainVectors invalidates the cache (the kernel snapshots weights).
func (d *Detector) derivedKernel() *kernel.Scorer {
	if d.kernTried {
		return d.kern
	}
	d.kernTried = true
	if s, err := CompileScorer(d, nil); err == nil { //evaxlint:ignore hotpath one-time lazy compile; steady-state scoring reuses the kernel
		d.kern = s
	}
	return d.kern
}

// invalidateKernel drops the cached kernel after a weight mutation.
func (d *Detector) invalidateKernel() {
	d.kern = nil
	d.kernTried = false
}

// ScoreBatch scores the dataset samples at idx into out (len(out) ==
// len(idx)) through the fused kernel, falling back to the network for deep
// detectors. Zero allocations in steady state for kernel-capable detectors.
//
//evaxlint:hotpath
func (d *Detector) ScoreBatch(ds *dataset.Dataset, idx []int, out []float64) {
	if len(out) != len(idx) {
		panic(fmt.Sprintf("detect: ScoreBatch out %d vs idx %d", len(out), len(idx)))
	}
	if k := d.derivedKernel(); k != nil {
		for j, i := range idx {
			out[j] = k.ScoreDerived(ds.Samples[i].Derived)
		}
		return
	}
	for j, i := range idx {
		out[j] = d.Score(ds.Samples[i].Derived)
	}
}
