package detect

import (
	"encoding/json"
	"fmt"
	"os"

	"evax/internal/featureng"
	"evax/internal/ml"
)

// savedDetector is the on-disk form of a trained detector — the
// "vendor-distributed patch" the paper envisions for weight and feature
// updates (§VI-B).
type savedDetector struct {
	FeatureSetName string            `json:"feature_set"`
	Indices        []int             `json:"indices"`
	Names          []string          `json:"names"`
	Engineered     []savedANDFeature `json:"engineered"`
	Layers         []savedLayer      `json:"layers"`
	Threshold      float64           `json:"threshold"`
}

type savedANDFeature struct {
	A    int    `json:"a"`
	B    int    `json:"b"`
	Name string `json:"name"`
}

type savedLayer struct {
	In  int         `json:"in"`
	Out int         `json:"out"`
	Act int         `json:"act"`
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
}

// Marshal encodes the detector as JSON.
func (d *Detector) Marshal() ([]byte, error) {
	sd := savedDetector{
		FeatureSetName: d.Plan.Name(),
		Indices:        d.Plan.Indices(),
		Names:          d.Plan.Names(),
		Threshold:      d.Threshold,
	}
	for _, f := range d.Plan.Engineered() {
		sd.Engineered = append(sd.Engineered, savedANDFeature{A: f.A, B: f.B, Name: f.Name})
	}
	for _, l := range d.Net.Layers {
		sd.Layers = append(sd.Layers, savedLayer{In: l.In, Out: l.Out, Act: int(l.Act), W: l.W, B: l.B})
	}
	data, err := json.MarshalIndent(sd, "", " ")
	if err != nil {
		return nil, fmt.Errorf("detect: encoding detector: %w", err)
	}
	return data, nil
}

// Save writes the detector (feature set, engineered features, weights and
// threshold) as JSON.
func (d *Detector) Save(path string) error {
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Unmarshal decodes a detector encoded by Marshal.
func Unmarshal(data []byte) (*Detector, error) {
	var sd savedDetector
	if err := json.Unmarshal(data, &sd); err != nil {
		return nil, fmt.Errorf("detect: decoding detector: %w", err)
	}
	if len(sd.Layers) == 0 {
		return nil, fmt.Errorf("detect: detector holds no layers")
	}
	plan := NewPlan(sd.FeatureSetName, sd.Indices, sd.Names)
	var eng []featureng.ANDFeature
	for _, f := range sd.Engineered {
		eng = append(eng, featureng.ANDFeature{A: f.A, B: f.B, Name: f.Name})
	}
	plan.SetEngineered(eng)
	sizes := []int{sd.Layers[0].In}
	for _, l := range sd.Layers {
		sizes = append(sizes, l.Out)
	}
	hidden := ml.Linear
	if len(sd.Layers) > 1 {
		hidden = ml.Activation(sd.Layers[0].Act)
	}
	out := ml.Activation(sd.Layers[len(sd.Layers)-1].Act)
	net := ml.New(0, sizes, hidden, out)
	for li, l := range sd.Layers {
		nl := net.Layers[li]
		if nl.In != l.In || nl.Out != l.Out {
			return nil, fmt.Errorf("detect: layer %d shape mismatch", li)
		}
		nl.Act = ml.Activation(l.Act)
		for o := range l.W {
			copy(nl.W[o], l.W[o])
		}
		copy(nl.B, l.B)
	}
	return &Detector{Plan: plan, Net: net, Threshold: sd.Threshold}, nil
}

// Load reads a detector saved by Save.
func Load(path string) (*Detector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
