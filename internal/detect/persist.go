package detect

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"evax/internal/featureng"
	"evax/internal/hpc"
	"evax/internal/ml"
	"evax/internal/safeio"
	"evax/internal/sim"
)

// savedDetector is the on-disk form of a trained detector — the
// "vendor-distributed patch" the paper envisions for weight and feature
// updates (§VI-B).
type savedDetector struct {
	FeatureSetName string            `json:"feature_set"`
	Indices        []int             `json:"indices"`
	Names          []string          `json:"names"`
	Engineered     []savedANDFeature `json:"engineered"`
	Layers         []savedLayer      `json:"layers"`
	Threshold      float64           `json:"threshold"`
}

type savedANDFeature struct {
	A    int    `json:"a"`
	B    int    `json:"b"`
	Name string `json:"name"`
}

type savedLayer struct {
	In  int         `json:"in"`
	Out int         `json:"out"`
	Act int         `json:"act"`
	W   [][]float64 `json:"w"`
	B   []float64   `json:"b"`
}

// Marshal encodes the detector as JSON.
func (d *Detector) Marshal() ([]byte, error) {
	sd := savedDetector{
		FeatureSetName: d.Plan.Name(),
		Indices:        d.Plan.Indices(),
		Names:          d.Plan.Names(),
		Threshold:      d.Threshold,
	}
	for _, f := range d.Plan.Engineered() {
		sd.Engineered = append(sd.Engineered, savedANDFeature{A: f.A, B: f.B, Name: f.Name})
	}
	for _, l := range d.Net.Layers {
		sd.Layers = append(sd.Layers, savedLayer{In: l.In, Out: l.Out, Act: int(l.Act), W: l.W, B: l.B})
	}
	data, err := json.MarshalIndent(sd, "", " ")
	if err != nil {
		return nil, fmt.Errorf("detect: encoding detector: %w", err)
	}
	return data, nil
}

// Save writes the detector (feature set, engineered features, weights and
// threshold) as JSON, crash-safely: a failed or interrupted save leaves any
// previous patch at path intact.
func (d *Detector) Save(path string) error {
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return safeio.WriteFile(path, data, 0o644)
}

// validate rejects malformed patches before any plan or network is
// constructed — a vendor-distributed detector update is untrusted input
// (§VI-B), so every structural invariant is checked with a distinct error
// rather than trusted to downstream panics.
func (sd *savedDetector) validate() error {
	if len(sd.Layers) == 0 {
		return fmt.Errorf("detect: invalid patch: detector holds no layers")
	}
	if len(sd.Indices) != len(sd.Names) {
		return fmt.Errorf("detect: invalid patch: %d feature indices vs %d names",
			len(sd.Indices), len(sd.Names))
	}
	space := hpc.DerivedSpaceSize(sim.CounterCatalog().Len())
	for i, idx := range sd.Indices {
		if idx < 0 || idx >= space {
			return fmt.Errorf("detect: invalid patch: feature %d (%q) index %d outside derived space [0,%d)",
				i, sd.Names[i], idx, space)
		}
	}
	baseDim := len(sd.Indices)
	for i, f := range sd.Engineered {
		if f.A < 0 || f.A >= baseDim || f.B < 0 || f.B >= baseDim {
			return fmt.Errorf("detect: invalid patch: engineered feature %d (%q) refers to base pair (%d,%d) outside [0,%d)",
				i, f.Name, f.A, f.B, baseDim)
		}
	}
	wantIn := baseDim + len(sd.Engineered)
	for li, l := range sd.Layers {
		if l.In != wantIn {
			return fmt.Errorf("detect: invalid patch: layer %d input dim %d does not match %d (dimension mismatch between layers)",
				li, l.In, wantIn)
		}
		if l.Out <= 0 {
			return fmt.Errorf("detect: invalid patch: layer %d output dim %d", li, l.Out)
		}
		if l.Act < 0 || l.Act > int(ml.Tanh) {
			return fmt.Errorf("detect: invalid patch: layer %d activation %d outside [0,%d]",
				li, l.Act, int(ml.Tanh))
		}
		if len(l.W) != l.Out {
			return fmt.Errorf("detect: invalid patch: layer %d has %d weight rows for %d outputs",
				li, len(l.W), l.Out)
		}
		for o, row := range l.W {
			if len(row) != l.In {
				return fmt.Errorf("detect: invalid patch: layer %d weight row %d has %d columns for %d inputs",
					li, o, len(row), l.In)
			}
			for _, w := range row {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("detect: invalid patch: layer %d holds a non-finite weight", li)
				}
			}
		}
		if len(l.B) != l.Out {
			return fmt.Errorf("detect: invalid patch: layer %d has %d biases for %d outputs",
				li, len(l.B), l.Out)
		}
		for _, b := range l.B {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				return fmt.Errorf("detect: invalid patch: layer %d holds a non-finite bias", li)
			}
		}
		wantIn = l.Out
	}
	if math.IsNaN(sd.Threshold) || math.IsInf(sd.Threshold, 0) {
		return fmt.Errorf("detect: invalid patch: non-finite threshold")
	}
	if sd.Threshold < 0 {
		return fmt.Errorf("detect: invalid patch: negative threshold %g (detector would flag every window)",
			sd.Threshold)
	}
	return nil
}

// Unmarshal decodes a detector encoded by Marshal, rejecting malformed
// patches (see validate) before constructing anything.
func Unmarshal(data []byte) (*Detector, error) {
	var sd savedDetector
	if err := json.Unmarshal(data, &sd); err != nil {
		return nil, fmt.Errorf("detect: decoding detector: %w", err)
	}
	if err := sd.validate(); err != nil {
		return nil, err
	}
	plan := NewPlan(sd.FeatureSetName, sd.Indices, sd.Names)
	var eng []featureng.ANDFeature
	for _, f := range sd.Engineered {
		eng = append(eng, featureng.ANDFeature{A: f.A, B: f.B, Name: f.Name})
	}
	plan.SetEngineered(eng)
	sizes := []int{sd.Layers[0].In}
	for _, l := range sd.Layers {
		sizes = append(sizes, l.Out)
	}
	hidden := ml.Linear
	if len(sd.Layers) > 1 {
		hidden = ml.Activation(sd.Layers[0].Act)
	}
	out := ml.Activation(sd.Layers[len(sd.Layers)-1].Act)
	net := ml.New(0, sizes, hidden, out)
	for li, l := range sd.Layers {
		nl := net.Layers[li]
		nl.Act = ml.Activation(l.Act)
		for o := range l.W {
			copy(nl.W[o], l.W[o])
		}
		copy(nl.B, l.B)
	}
	return &Detector{Plan: plan, Net: net, Threshold: sd.Threshold}, nil
}

// Load reads a detector saved by Save, with the same patch validation as
// Unmarshal.
func Load(path string) (*Detector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("detect: loading %s: %w", path, err)
	}
	return d, nil
}
