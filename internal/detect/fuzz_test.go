package detect

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshal holds the patch decoder to its contract on arbitrary
// bytes: reject or accept, never panic — a hostile vendor patch must not
// crash the defense. Anything accepted must survive a Marshal round trip.
func FuzzUnmarshal(f *testing.F) {
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	if good, err := NewPerceptron(9, fs).Marshal(); err == nil {
		f.Add(good)
		f.Add(good[:len(good)/2]) // truncated patch
		flip := append([]byte(nil), good...)
		flip[len(flip)/3] ^= 0x20
		f.Add(flip) // bit-flipped patch
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"layers":[{"in":1,"out":1,"w":[[0.5]],"b":[0]}]}`))
	f.Add([]byte(`{"indices":[0],"names":["x"],"layers":[]}`))
	f.Add([]byte(`{"indices":[-1]}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(data) // must not panic
		if err != nil {
			return
		}
		re, err := d.Marshal()
		if err != nil {
			t.Fatalf("accepted patch failed to re-marshal: %v", err)
		}
		d2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("round-tripped patch rejected: %v", err)
		}
		if d2.Plan.Dim() != d.Plan.Dim() || d2.Threshold != d.Threshold {
			t.Fatal("round trip changed the detector")
		}
	})
}

// FuzzUnmarshalStructured drives the validator through structurally valid
// JSON with fuzzed numeric content, reaching the deep checks (dims,
// finiteness, ranges) more often than raw-byte fuzzing does.
func FuzzUnmarshalStructured(f *testing.F) {
	f.Add(5, 3, 0.5, 1.0)
	f.Add(0, 0, -1.0, 0.0)
	f.Add(1, 99, 0.0, -0.5)
	f.Fuzz(func(t *testing.T, in, act int, w, thr float64) {
		if in < 0 || in > 512 { // bound allocation, not validation coverage
			in = 7
		}
		sd := savedDetector{
			FeatureSetName: "fuzz",
			Threshold:      thr,
			Layers: []savedLayer{{
				In: in, Out: 1, Act: act,
				W: [][]float64{make([]float64, in)},
				B: []float64{w},
			}},
		}
		for i := range sd.Layers[0].W[0] {
			sd.Layers[0].W[0][i] = w
			sd.Indices = append(sd.Indices, i)
			sd.Names = append(sd.Names, "f")
		}
		data, err := json.Marshal(sd)
		if err != nil {
			return // NaN/Inf inputs are unencodable; validate() is covered directly elsewhere
		}
		_, _ = Unmarshal(data) // must not panic
	})
}
