package detect

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := EVAXBase()
	fs.SetEngineered(DefaultEngineered(fs))
	d := NewPerceptron(4, fs)
	// Give it distinctive weights and threshold.
	rng := rand.New(rand.NewSource(5))
	for o := range d.Net.Layers[0].W {
		for i := range d.Net.Layers[0].W[o] {
			d.Net.Layers[0].W[o][i] = rng.NormFloat64()
		}
	}
	d.Threshold = 0.371

	path := filepath.Join(t.TempDir(), "det.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != d.Threshold {
		t.Fatalf("threshold %v != %v", got.Threshold, d.Threshold)
	}
	if got.Plan.Dim() != d.Plan.Dim() || len(got.Plan.Engineered()) != len(d.Plan.Engineered()) {
		t.Fatal("feature set not preserved")
	}
	// Scores must agree exactly on random inputs.
	for trial := 0; trial < 20; trial++ {
		base := make([]float64, fs.BaseDim())
		for i := range base {
			base[i] = rng.Float64()
		}
		if got.ScoreBase(base) != d.ScoreBase(base) {
			t.Fatal("loaded detector scores differ")
		}
	}
}

func TestSaveLoadDeepDetector(t *testing.T) {
	fs := PerSpectron()
	d := NewDeep(7, fs, 3, 8)
	path := filepath.Join(t.TempDir(), "deep.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Net.Layers) != len(d.Net.Layers) {
		t.Fatalf("layers %d != %d", len(got.Net.Layers), len(d.Net.Layers))
	}
	x := make([]float64, fs.Dim())
	for i := range x {
		x[i] = float64(i%3) / 3
	}
	if got.ScoreVector(x) != d.ScoreVector(x) {
		t.Fatal("deep round-trip scores differ")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := writeFile(path, "{}"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("empty detector accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
