package attacks

import (
	"testing"

	"evax/internal/isa"
	"evax/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	specs := All()
	if len(specs) != 21 {
		t.Fatalf("registry has %d attacks, want 21", len(specs))
	}
	seen := map[isa.Class]bool{}
	for _, s := range specs {
		if s.Class == isa.ClassBenign {
			t.Errorf("%s registered as benign", s.Name)
		}
		if seen[s.Class] {
			t.Errorf("duplicate class %v", s.Class)
		}
		seen[s.Class] = true
	}
	// Every attack class in the ISA has a generator.
	for c := isa.ClassBenign + 1; c < isa.NumClasses; c++ {
		if _, err := ByClass(c); err != nil {
			t.Errorf("no generator for %v", c)
		}
	}
}

func TestAllBuildValidateAndRun(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(11, 1)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.Class != spec.Class {
				t.Fatalf("class %v, want %v", p.Class, spec.Class)
			}
			m := sim.New(sim.DefaultConfig(), p)
			m.Run(5_000_000)
			if !m.Done() {
				t.Fatalf("did not finish (committed %d)", m.Instructions())
			}
			if m.Instructions() < 500 {
				t.Fatalf("only %d instructions committed", m.Instructions())
			}
			ph := m.PhaseDispatched()
			if ph[isa.PhaseLeak] == 0 {
				t.Fatal("no micro-ops attributed to the leak phase")
			}
		})
	}
}

// TestTransientAttacksActuallyLeak verifies the speculative attacks deposit
// squashed-load cache footprints (the leakage ground truth).
func TestTransientAttacksActuallyLeak(t *testing.T) {
	transient := map[string]bool{
		"spectre-pht": true, "spectre-btb": true, "spectre-rsb": true,
		"spectre-stl": true, "meltdown": true, "lvi": true,
		"medusa-cache-index": true, "medusa-unaligned": true,
		"medusa-shadow-rep": true, "fallout": true, "microscope": true,
	}
	for _, spec := range All() {
		if !transient[spec.Name] {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(11, 1)
			m := sim.New(sim.DefaultConfig(), p)
			m.Run(5_000_000)
			if m.C.LeakedTransientLoads == 0 {
				t.Fatal("no transient load ever touched the cache: attack is inert")
			}
		})
	}
}

// TestRecoveredSecrets checks end-to-end recovery for the attacks whose
// transmit gadget decodes the secret into R30.
func TestRecoveredSecrets(t *testing.T) {
	for _, name := range []string{"spectre-pht", "meltdown", "flush-reload"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var spec Spec
			for _, s := range All() {
				if s.Name == name {
					spec = s
				}
			}
			p := spec.Build(11, 2)
			m := sim.New(sim.DefaultConfig(), p)
			m.Run(5_000_000)
			if !m.Done() {
				t.Fatal("did not finish")
			}
			got := int64(m.ArchReg(isa.R30))
			if got <= 0 {
				t.Fatalf("transmit gadget recovered %d; attack failed end to end", got)
			}
		})
	}
}

func TestSpectrePHTRecoversExactSecret(t *testing.T) {
	p := SpectrePHT(11, 2)
	m := sim.New(sim.DefaultConfig(), p)
	m.Run(5_000_000)
	want := newLayout(11).secret
	if got := int64(m.ArchReg(isa.R30)); got != want {
		t.Fatalf("recovered %d, want secret %d", got, want)
	}
}

func TestDefenseBlocksRecovery(t *testing.T) {
	// Under fence-after-branch the wrong path never touches the cache,
	// so the reload finds nothing.
	p := SpectrePHT(11, 2)
	m := sim.New(sim.DefaultConfig(), p)
	m.SetPolicy(sim.PolicyFenceAfterBranch)
	m.Run(5_000_000)
	want := newLayout(11).secret
	if got := int64(m.ArchReg(isa.R30)); got == want {
		t.Fatalf("secret %d recovered despite fencing", got)
	}
}

func TestRowhammerFlipsUnderWeakDRAM(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.DRAM.FlipThreshold = 200
	cfg.DRAM.TRRTrackers = 0
	p := Rowhammer(3, 1)
	m := sim.New(cfg, p)
	m.Run(5_000_000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if m.DRAM().Stats.BitFlips == 0 {
		t.Fatal("hammering produced no flips at threshold 200")
	}
	if m.C.MemCorruptions == 0 {
		t.Fatal("flips not propagated into memory")
	}
	// The integrity check register (before XOR after) must be nonzero
	// if the victim word itself flipped; at minimum corruption occurred.
}

func TestAttacksSeededVariation(t *testing.T) {
	a := Meltdown(1, 1)
	b := Meltdown(2, 1)
	if a.InitRegs[isa.R1] == b.InitRegs[isa.R1] {
		t.Fatal("different seeds produced identical kernel target")
	}
}

func TestAttackCounterSignaturesDiffer(t *testing.T) {
	// Sanity for detectability: a meltdown run must show commit faults; a
	// rowhammer run must show DRAM activates far above meltdown's;
	// flush-flush must flush far more than benign meltdown rounds.
	run := func(build func(int64, int) *isa.Program) *sim.Machine {
		m := sim.New(sim.DefaultConfig(), build(5, 1))
		m.Run(3_000_000)
		return m
	}
	melt := run(Meltdown)
	ham := run(Rowhammer)
	ff := run(FlushFlush)
	if melt.Ctr(sim.CtrCommitFaults) == 0 {
		t.Error("meltdown: no commit faults")
	}
	if ham.DRAM().Stats.Activates < 4*melt.DRAM().Stats.Activates {
		t.Errorf("rowhammer activates (%d) not dominating meltdown (%d)",
			ham.DRAM().Stats.Activates, melt.DRAM().Stats.Activates)
	}
	if ff.L1D().Stats.Flushes+ff.L1D().Stats.FlushMisses < 100 {
		t.Errorf("flush-flush produced too few flushes (%d)", ff.L1D().Stats.Flushes)
	}
}

func TestRDRANDContentionSignature(t *testing.T) {
	p := RDRANDCovert(5, 1)
	m := sim.New(sim.DefaultConfig(), p)
	m.Run(3_000_000)
	if m.Ctr(sim.CtrRNGReads) < 40 {
		t.Fatalf("rdrand reads = %d", m.Ctr(sim.CtrRNGReads))
	}
	if m.Ctr(sim.CtrRNGContentionCycles) == 0 {
		t.Fatal("no RNG contention recorded")
	}
}

func TestBranchScopeAliasing(t *testing.T) {
	p := BranchScope(5, 1)
	m := sim.New(sim.DefaultConfig(), p)
	m.Run(3_000_000)
	if m.Predictor().Stats.MistrainAliasing == 0 {
		t.Fatal("branchscope produced no PHT aliasing events")
	}
}

func TestMicroScopeReplayStorm(t *testing.T) {
	p := MicroScope(5, 1)
	m := sim.New(sim.DefaultConfig(), p)
	m.Run(3_000_000)
	if m.Ctr(sim.CtrLSQIgnoredResponses) < 50 {
		t.Fatalf("replay count = %d, want a storm", m.Ctr(sim.CtrLSQIgnoredResponses))
	}
}
