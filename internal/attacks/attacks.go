// Package attacks implements complete, runnable micro-op programs for every
// attack category in the paper's evaluation: the Spectre family
// (PHT/BTB/RSB/STL), fault-based transients (Meltdown, LVI, three Medusa
// variants, Fallout), memory attacks (Rowhammer, DRAMA), contention channels
// (SMotherSpectre, Leaky Buddies, RDRAND), predictor attacks (BranchScope),
// replay attacks (MicroScope), KASLR bypass (FlushConflict) and the classic
// cache attacks (Flush+Flush, Flush+Reload, Prime+Probe).
//
// Each program embeds both the attacker and the victim (the paper likewise
// simulates full attacks in gem5) and tags instructions with attack phases
// so datasets can checkpoint setup / mistrain / leak / transmit windows.
// `seed` varies addresses and secrets; `scale` the number of leak rounds.
package attacks

import (
	"fmt"
	"math/rand"

	"evax/internal/isa"
)

// Spec describes one attack generator.
type Spec struct {
	Name  string
	Class isa.Class
	// Build constructs the program. Secrets and layout vary with seed;
	// the number of leak iterations scales with scale (min 1).
	Build func(seed int64, scale int) *isa.Program
}

// All returns the attack registry in a stable order (21 categories).
func All() []Spec {
	return []Spec{
		{"spectre-pht", isa.ClassSpectrePHT, SpectrePHT},
		{"spectre-btb", isa.ClassSpectreBTB, SpectreBTB},
		{"spectre-rsb", isa.ClassSpectreRSB, SpectreRSB},
		{"spectre-stl", isa.ClassSpectreSTL, SpectreSTL},
		{"meltdown", isa.ClassMeltdown, Meltdown},
		{"lvi", isa.ClassLVI, LVI},
		{"medusa-cache-index", isa.ClassMedusaCacheIndex, MedusaCacheIndex},
		{"medusa-unaligned", isa.ClassMedusaUnaligned, MedusaUnaligned},
		{"medusa-shadow-rep", isa.ClassMedusaShadowREP, MedusaShadowREP},
		{"fallout", isa.ClassFallout, Fallout},
		{"rowhammer", isa.ClassRowhammer, Rowhammer},
		{"drama", isa.ClassDRAMA, DRAMA},
		{"smotherspectre", isa.ClassSMotherSpectre, SMotherSpectre},
		{"branchscope", isa.ClassBranchScope, BranchScope},
		{"microscope", isa.ClassMicroScope, MicroScope},
		{"leaky-buddies", isa.ClassLeakyBuddies, LeakyBuddies},
		{"rdrand-covert", isa.ClassRDRANDCovert, RDRANDCovert},
		{"flushconflict", isa.ClassFlushConflict, FlushConflict},
		{"flush-flush", isa.ClassFlushFlush, FlushFlush},
		{"flush-reload", isa.ClassFlushReload, FlushReload},
		{"prime-probe", isa.ClassPrimeProbe, PrimeProbe},
	}
}

// ByClass returns the spec for an attack class.
func ByClass(c isa.Class) (Spec, error) {
	for _, s := range All() {
		if s.Class == c {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("attacks: no generator for class %v", c)
}

// Shared layout. Seeded offsets perturb concrete addresses per build so no
// two instances share an exact footprint.
const (
	probeBase   = 0x80_0000
	probeStride = 4096
	victimBase  = 0x10_0000
	boundAddr   = 0x20_0000
	slowAddr    = 0x24_0000
	scratchBase = 0x30_0000
	numGuesses  = 8
)

func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	return scale
}

// layout derives seeded addresses and the secret value.
type layout struct {
	probe, victim, bound, slow, scratch uint64
	kernel                              uint64
	secret                              int64
	rng                                 *rand.Rand
}

// ReloadLog returns the address where the transmit gadget logs its per-guess
// timing deltas (the most recent round's measurements).
func (l layout) ReloadLog() uint64 { return l.probe + numGuesses*probeStride + 0x8000 }

// Layout exposes the seeded layout for a given seed (tests and experiment
// drivers use it to locate secrets, probe arrays and logs).
func Layout(seed int64) struct {
	Probe, Victim, Kernel, ReloadLog uint64
	Secret                           int64
} {
	l := newLayout(seed)
	return struct {
		Probe, Victim, Kernel, ReloadLog uint64
		Secret                           int64
	}{l.probe, l.victim, l.kernel, l.ReloadLog(), l.secret}
}

func newLayout(seed int64) layout {
	rng := rand.New(rand.NewSource(seed))
	off := func() uint64 { return uint64(rng.Intn(64)) * 64 }
	return layout{
		probe:   probeBase + off(),
		victim:  victimBase + off(),
		bound:   boundAddr + off(),
		slow:    slowAddr + off(),
		scratch: scratchBase + off(),
		kernel:  isa.KernelBase + 0x1000 + off(),
		secret:  int64(1 + rng.Intn(numGuesses-1)),
		rng:     rng,
	}
}

// emitReload appends the transmit gadget: time a reload of every probe slot
// and record the "fast" guess. guessReg receives the recovered value.
func emitReload(b *isa.Builder, l layout, guessReg isa.Reg) {
	b.SetPhase(isa.PhaseTransmit)
	b.InitReg(isa.R25, l.probe)
	b.Li(isa.R16, 0) // guess
	b.Li(isa.R17, numGuesses)
	b.Li(guessReg, -1)
	b.Label("reload")
	b.LFence()
	b.RdTSC(isa.R18)
	b.Load(isa.R19, isa.R25, isa.R16, probeStride, 0)
	b.LFence() // order the timing read after the probe load
	b.RdTSC(isa.R20)
	b.Sub(isa.R21, isa.R20, isa.R18)
	b.InitReg(isa.R24, l.ReloadLog())
	b.Store(isa.R21, isa.R24, isa.R16, 8, 0) // log the measurement
	b.Li(isa.R22, 40)                        // hit threshold in cycles
	b.Br(isa.CondUGE, isa.R21, isa.R22, "slowGuess")
	b.Mov(guessReg, isa.R16)
	b.Label("slowGuess")
	b.Addi(isa.R16, isa.R16, 1)
	b.Br(isa.CondNE, isa.R16, isa.R17, "reload")
	b.SetPhase(isa.PhaseNone)
}

// emitFlushProbe appends a flush of the whole probe array (setup/recover).
func emitFlushProbe(b *isa.Builder, l layout, phase isa.Phase, tag string) {
	b.SetPhase(phase)
	b.InitReg(isa.R26, l.probe)
	b.Li(isa.R14, 0)
	b.Li(isa.R15, numGuesses)
	b.Label("flushp" + tag)
	b.CLFlush(isa.R26, isa.R14, probeStride, 0)
	b.Addi(isa.R14, isa.R14, 1)
	b.Br(isa.CondNE, isa.R14, isa.R15, "flushp"+tag)
	b.SetPhase(isa.PhaseNone)
}

// SpectrePHT is the canonical bounds-check-bypass: mistrain a conditional
// branch in-bounds, flush the bound so it resolves late, then supply an
// out-of-bounds index whose wrong-path loads encode the secret in the cache.
func SpectrePHT(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("spectre-pht", isa.ClassSpectrePHT)
	secretOff := int64(100)
	const trainIters = 13
	rounds := 6 * scale
	idxTable := l.scratch
	b.InitMem(l.bound, 16)
	b.InitMem(l.victim+uint64(secretOff)*8, uint64(l.secret))
	// Per-round index tables: the out-of-bounds iteration lands at a
	// seeded position each round so the predictor cannot lock onto a
	// periodic pattern (real exploits randomize for the same reason).
	for r := 0; r < rounds; r++ {
		oobPos := 7 + l.rng.Intn(trainIters-7)
		for i := 0; i < trainIters; i++ {
			v := uint64(0)
			if i == oobPos {
				v = uint64(secretOff)
			}
			b.InitMem(idxTable+uint64(r*trainIters+i)*8, v)
		}
	}
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.bound)
	b.InitReg(isa.R3, l.probe)
	b.InitReg(isa.R23, idxTable)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(rounds))
	b.Li(isa.R27, 0) // running table offset (round * trainIters)
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	// Warm the secret line so the wrong-path chain outruns resolution.
	b.SetPhase(isa.PhaseSetup)
	b.Prefetch(isa.R1, isa.R0, 0, secretOff*8)

	// Mistrain and attack share the same loop, so branch history is
	// identical along both and only the out-of-bounds iteration
	// mispredicts — the classic bounds-check-bypass structure.
	b.SetPhase(isa.PhaseMistrain)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, trainIters)
	b.Label("spec")
	b.Add(isa.R13, isa.R27, isa.R4)
	b.Load(isa.R12, isa.R23, isa.R13, 8, 0) // index for this iteration
	b.CLFlush(isa.R2, isa.R0, 0, 0)         // bound resolves late
	b.Load(isa.R6, isa.R2, isa.R0, 0, 0)    // bound
	b.Br(isa.CondUGE, isa.R12, isa.R6, "oob")
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R7, isa.R1, isa.R12, 8, 0)          // (transient) read
	b.Load(isa.R8, isa.R3, isa.R7, probeStride, 0) // cache encode
	b.SetPhase(isa.PhaseMistrain)
	b.Label("oob")
	b.Addi(isa.R4, isa.R4, 1)
	b.Br(isa.CondNE, isa.R4, isa.R5, "spec")

	emitReload(b, l, isa.R30)
	b.Addi(isa.R27, isa.R27, trainIters)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// SpectreBTB poisons the branch target buffer: an indirect jump is trained
// to a leak gadget, then redirected transiently when its real target
// arrives late from a flushed pointer load.
func SpectreBTB(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("spectre-btb", isa.ClassSpectreBTB)
	ptrAddr := l.scratch
	b.InitMem(l.victim, uint64(l.secret))
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)
	b.InitReg(isa.R3, ptrAddr)

	b.Jmp("main")
	// The leak gadget (architecturally unreachable in the attack round).
	b.Label("gadget")
	gadget := b.Here()
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R7, isa.R1, isa.R0, 0, 0)           // secret
	b.Load(isa.R8, isa.R2, isa.R7, probeStride, 0) // encode
	b.SetPhase(isa.PhaseNone)
	b.Jmp("back")
	b.Label("legit")
	legit := b.Here()
	b.Nop()
	b.Jmp("back")

	b.Label("main")
	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(6*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	// Train the BTB: indirect jump to the gadget repeatedly. R9 flags
	// the attack iteration so "back" knows when to move to transmit.
	b.SetPhase(isa.PhaseMistrain)
	b.Li(isa.R9, 0)
	b.Li(isa.R4, 6)
	b.Label("train")
	b.Li(isa.R5, int64(gadget))
	b.Store(isa.R5, isa.R3, isa.R0, 0, 0)
	b.Load(isa.R6, isa.R3, isa.R0, 0, 0)
	b.Label("ijmp_site")
	b.IJmp(isa.R6) // same static jump both in training and attack
	b.Label("back")
	b.Br(isa.CondNE, isa.R9, isa.R0, "xmit") // attack round completed
	b.Addi(isa.R4, isa.R4, -1)
	b.Br(isa.CondNE, isa.R4, isa.R0, "train")

	// Attack: real target is legit, but it arrives from a flushed load,
	// so the BTB serves the gadget transiently.
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R9, 1)
	b.Li(isa.R5, int64(legit))
	b.Store(isa.R5, isa.R3, isa.R0, 0, 0)
	b.Serialize() // drain the store to memory
	b.CLFlush(isa.R3, isa.R0, 0, 0)
	b.Load(isa.R6, isa.R3, isa.R0, 0, 0) // slow pointer load
	b.Jmp("ijmp_site")

	b.Label("xmit")
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// SpectreRSB overflows the 16-entry return address stack with deep
// recursion; the outermost returns then mispredict to the instruction after
// the RET, where the leak gadget sits.
func SpectreRSB(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("spectre-rsb", isa.ClassSpectreRSB)
	b.InitMem(l.victim, uint64(l.secret))
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(6*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	b.SetPhase(isa.PhaseMistrain)
	b.Li(isa.R4, 22) // depth > RAS entries: overflow wraps the stack
	b.Call("recurse")
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	b.Jmp("end")

	b.Label("recurse")
	b.Addi(isa.R4, isa.R4, -1)
	b.Br(isa.CondEQ, isa.R4, isa.R0, "unwind")
	b.Call("recurse")
	b.Label("unwind")
	b.Ret()
	// Transient continuation for underflowed RET predictions.
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R7, isa.R1, isa.R0, 0, 0)
	b.Load(isa.R8, isa.R2, isa.R7, probeStride, 0)
	b.SetPhase(isa.PhaseNone)
	b.Label("end")
	b.Nop()
	return b.MustBuild()
}

// SpectreSTL exploits speculative store bypass: a store whose address
// resolves late is invisible to a younger load, which reads the stale
// secret and leaks it before the violation replay.
func SpectreSTL(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("spectre-stl", isa.ClassSpectreSTL)
	b.InitMem(l.victim, uint64(l.secret)) // stale secret
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)
	b.InitReg(isa.R5, 48) // 48/7/7 = 0: the store offset resolves to 0
	b.InitReg(isa.R6, 7)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(8*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	b.SetPhase(isa.PhaseLeak)
	// Overwrite the secret with zero through a slow address.
	b.Div(isa.R7, isa.R5, isa.R6)
	b.Div(isa.R7, isa.R7, isa.R6)
	b.Store(isa.R0, isa.R1, isa.R7, 8, 0) // address unresolved
	b.Load(isa.R8, isa.R1, isa.R0, 0, 0)  // bypasses: stale secret
	b.Load(isa.R9, isa.R2, isa.R8, probeStride, 0)
	emitReload(b, l, isa.R30)
	// Restore the secret for the next round.
	b.Li(isa.R12, l.secret)
	b.Store(isa.R12, isa.R1, isa.R0, 0, 0)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// Meltdown reads kernel memory: retirement of the faulting load is delayed
// behind a flushed load, giving the dependent encode time to run.
func Meltdown(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("meltdown", isa.ClassMeltdown)
	b.InitMem(l.kernel, uint64(l.secret))
	b.InitReg(isa.R1, l.kernel)
	b.InitReg(isa.R2, l.probe)
	b.InitReg(isa.R3, l.slow)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(6*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	b.SetPhase(isa.PhaseSetup)
	b.Syscall()                      // kernel activity loads the target line region
	b.Prefetch(isa.R1, isa.R0, 0, 0) // target kernel line cached
	b.CLFlush(isa.R3, isa.R0, 0, 0)  // retirement delay
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R9, isa.R3, isa.R0, 0, 0)           // slow older load
	b.LoadK(isa.R4, isa.R1, isa.R0, 0, 0)          // faulting kernel read
	b.Load(isa.R5, isa.R2, isa.R4, probeStride, 0) // transient encode
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// LVI injects attacker data into a victim load through the microcode-assist
// forwarding path: the victim transiently dereferences the poisoned value.
func LVI(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("lvi", isa.ClassLVI)
	victimPtr := l.victim + 8
	alias := victimPtr + 0x3000 // same page offset, different page
	b.InitMem(victimPtr, 0)     // victim's real pointer value (benign)
	b.InitReg(isa.R1, victimPtr)
	b.InitReg(isa.R2, alias)
	b.InitReg(isa.R3, l.probe)
	b.InitReg(isa.R4, l.slow)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(8*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	b.SetPhase(isa.PhaseSetup)
	b.CLFlush(isa.R4, isa.R0, 0, 0)
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R5, l.secret)
	b.Store(isa.R5, isa.R2, isa.R0, 0, 0)          // attacker poison at alias
	b.Load(isa.R9, isa.R4, isa.R0, 0, 0)           // delay retirement
	b.LoadAssist(isa.R6, isa.R1, isa.R0, 0, 0)     // victim load: injected
	b.Load(isa.R7, isa.R3, isa.R6, probeStride, 0) // victim computes on poison
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// medusaCommon builds a Medusa-style MDS attack (Meltdown variant through
// microarchitectural buffers) with a configurable gadget mix.
func medusaCommon(name string, class isa.Class, seed int64, scale int,
	gadget func(b *isa.Builder, l layout)) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder(name, class)
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)
	b.InitReg(isa.R3, l.scratch)
	b.InitReg(isa.R4, l.slow)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(8*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	b.SetPhase(isa.PhaseSetup)
	b.CLFlush(isa.R4, isa.R0, 0, 0)
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R5, l.secret)
	gadget(b, l)
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// MedusaCacheIndex is the Medusa variant leaking through cache-indexing
// assists: line-splitting accesses force the assist path.
func MedusaCacheIndex(seed int64, scale int) *isa.Program {
	return medusaCommon("medusa-cache-index", isa.ClassMedusaCacheIndex, seed, scale,
		func(b *isa.Builder, l layout) {
			// Store the secret, then split-line assist loads around it.
			b.Store(isa.R5, isa.R3, isa.R0, 0, 0x38)
			b.Load(isa.R9, isa.R4, isa.R0, 0, 0)            // delay
			b.LoadAssist(isa.R6, isa.R3, isa.R0, 0, 0x1038) // 4K-alias split access
			b.Load(isa.R7, isa.R2, isa.R6, probeStride, 0)
		})
}

// MedusaUnaligned is the variant exploiting unaligned store-to-load
// forwarding.
func MedusaUnaligned(seed int64, scale int) *isa.Program {
	return medusaCommon("medusa-unaligned", isa.ClassMedusaUnaligned, seed, scale,
		func(b *isa.Builder, l layout) {
			b.Store(isa.R5, isa.R3, isa.R0, 0, 4) // unaligned-style store
			b.Load(isa.R9, isa.R4, isa.R0, 0, 0)
			b.LoadAssist(isa.R6, isa.R3, isa.R0, 0, 0x1004)
			b.Load(isa.R7, isa.R2, isa.R6, probeStride, 0)
		})
}

// MedusaShadowREP is the variant leaking from shadow REP MOV block copies.
func MedusaShadowREP(seed int64, scale int) *isa.Program {
	return medusaCommon("medusa-shadow-rep", isa.ClassMedusaShadowREP, seed, scale,
		func(b *isa.Builder, l layout) {
			// A short copy loop whose loads take the assist path.
			b.Li(isa.R12, 0)
			b.Li(isa.R13, 4)
			b.Store(isa.R5, isa.R3, isa.R0, 0, 0)
			b.Label("rep")
			b.Load(isa.R9, isa.R4, isa.R0, 0, 0)
			b.LoadAssist(isa.R6, isa.R3, isa.R12, 8, 0x1000)
			b.Store(isa.R6, isa.R3, isa.R12, 8, 0x2000)
			b.Load(isa.R7, isa.R2, isa.R6, probeStride, 0)
			b.Addi(isa.R12, isa.R12, 1)
			b.Br(isa.CondNE, isa.R12, isa.R13, "rep")
		})
}

// Fallout leaks recent stores through the store buffer: the attacker's
// assist load at a 4K-aliased address receives the victim's in-flight
// store data.
func Fallout(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("fallout", isa.ClassFallout)
	victimAddr := l.victim
	attackerAddr := victimAddr + 0x5000 // same low 12 bits
	b.InitReg(isa.R1, victimAddr)
	b.InitReg(isa.R2, attackerAddr)
	b.InitReg(isa.R3, l.probe)
	b.InitReg(isa.R4, l.slow)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(8*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	b.SetPhase(isa.PhaseSetup)
	b.CLFlush(isa.R4, isa.R0, 0, 0)
	b.SetPhase(isa.PhaseLeak)
	// Victim stores a secret.
	b.Li(isa.R5, l.secret)
	b.Store(isa.R5, isa.R1, isa.R0, 0, 0)
	// Attacker reads its own aliased address via the assist path and
	// transiently receives the victim's store-buffer data.
	b.Load(isa.R9, isa.R4, isa.R0, 0, 0)
	b.LoadAssist(isa.R6, isa.R2, isa.R0, 0, 0)
	b.Load(isa.R7, isa.R3, isa.R6, probeStride, 0)
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// SMotherSpectre leaks through execution-port contention: the victim's
// secret steers wrong-path division spam, and the attacker times its own
// divisions to observe the contention.
func SMotherSpectre(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("smotherspectre", isa.ClassSMotherSpectre)
	b.InitMem(l.victim, uint64(l.secret&1)) // secret bit
	b.InitMem(l.bound, 1)
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.bound)
	b.InitReg(isa.R13, 97)
	b.InitReg(isa.R14, 3)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(40*scale))
	b.Label("round")
	// Mistrain: the gate branch is always taken in training.
	b.SetPhase(isa.PhaseMistrain)
	b.Li(isa.R4, 8)
	b.Label("train")
	b.Load(isa.R5, isa.R2, isa.R0, 0, 0)
	b.Br(isa.CondEQ, isa.R5, isa.R0, "spam") // never taken in training
	b.Addi(isa.R4, isa.R4, -1)
	b.Br(isa.CondNE, isa.R4, isa.R0, "train")
	// Attack: flush the gate value; the wrong path runs the div spam
	// only when the secret bit is set.
	b.SetPhase(isa.PhaseLeak)
	b.CLFlush(isa.R2, isa.R0, 0, 0)
	b.Load(isa.R5, isa.R2, isa.R0, 0, 0)     // slow gate
	b.Load(isa.R6, isa.R1, isa.R0, 0, 0)     // secret bit (cached)
	b.Br(isa.CondEQ, isa.R5, isa.R6, "spam") // mispredicted when bit==1
	b.Jmp("probeport")
	b.Label("spam")
	for i := 0; i < 6; i++ {
		b.Div(isa.R15, isa.R13, isa.R14)
	}
	b.Label("probeport")
	// Attacker times its own division (port contention visible).
	b.SetPhase(isa.PhaseTransmit)
	b.RdTSC(isa.R20)
	b.Div(isa.R16, isa.R13, isa.R14)
	b.Div(isa.R16, isa.R16, isa.R14)
	b.RdTSC(isa.R21)
	b.Sub(isa.R22, isa.R21, isa.R20)
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// MicroScope replays a victim instruction thousands of times via repeated
// assist/replay squashes, denoising another side channel.
func MicroScope(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("microscope", isa.ClassMicroScope)
	b.InitMem(l.victim, uint64(l.secret))
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)
	b.InitReg(isa.R3, l.scratch)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(120*scale)) // replay storm
	b.Label("round")
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R5, 1)
	b.Store(isa.R5, isa.R3, isa.R0, 0, 0x1000)
	b.LoadAssist(isa.R6, isa.R3, isa.R0, 0, 0) // replayed "victim" op
	b.Load(isa.R7, isa.R1, isa.R0, 0, 0)       // victim work under replay
	b.Load(isa.R8, isa.R2, isa.R7, probeStride, 0)
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}
