package attacks

import "evax/internal/isa"

// Rowhammer hammers two rows in the same DRAM bank with flush+load pairs,
// driving activation counts past the disturbance threshold to flip bits in
// the victim row between them (integrity, not confidentiality).
//
// Aggressor addresses are one full row apart within a bank:
// stride = rowBytes * banks (see internal/dram address mapping).
func Rowhammer(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("rowhammer", isa.ClassRowhammer)
	const rowStride = 8192 * 8 // DefaultConfig: 8KB rows, 8 banks
	aggA := l.victim &^ 63
	aggB := aggA + rowStride
	victimRow := aggA + rowStride/2 // conceptually between the rows
	b.InitMem(victimRow, 0xAAAA)
	b.InitReg(isa.R1, aggA)
	b.InitReg(isa.R2, aggB)
	b.InitReg(isa.R3, victimRow)

	b.SetPhase(isa.PhaseSetup)
	b.Load(isa.R4, isa.R3, isa.R0, 0, 0) // victim value before

	b.SetPhase(isa.PhaseLeak) // the hammering is the "attack body"
	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(600*scale))
	b.Label("hammer")
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	b.Load(isa.R5, isa.R1, isa.R0, 0, 0)
	b.CLFlush(isa.R2, isa.R0, 0, 0)
	b.Load(isa.R6, isa.R2, isa.R0, 0, 0)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "hammer")

	b.SetPhase(isa.PhaseRecover)
	b.CLFlush(isa.R3, isa.R0, 0, 0)
	b.Load(isa.R7, isa.R3, isa.R0, 0, 0) // victim value after (flip check)
	b.Xor(isa.R8, isa.R7, isa.R4)        // nonzero iff bits flipped
	b.SetPhase(isa.PhaseNone)
	return b.MustBuild()
}

// DRAMA is the DRAM row-buffer covert channel: the sender opens (or not) a
// row; the receiver times an access to a different row in the same bank —
// a row conflict is measurably slower than a row hit.
func DRAMA(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("drama", isa.ClassDRAMA)
	const rowStride = 8192 * 8
	senderRow := l.victim &^ 63
	recvRow := senderRow + rowStride
	b.InitReg(isa.R1, senderRow)
	b.InitReg(isa.R2, recvRow)
	b.InitReg(isa.R6, uint64(l.secret)) // bits to transmit

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(60*scale))
	b.Label("bit")
	// Sender: open the row iff the current bit is 1.
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R13, 1)
	b.And(isa.R4, isa.R6, isa.R13)
	b.Br(isa.CondEQ, isa.R4, isa.R0, "silent")
	b.CLFlush(isa.R1, isa.R0, 0, 0)
	b.Load(isa.R5, isa.R1, isa.R0, 0, 0) // opens the sender row
	b.Label("silent")
	// Receiver: time an access to its own row in the same bank.
	b.SetPhase(isa.PhaseTransmit)
	b.CLFlush(isa.R2, isa.R0, 0, 0)
	b.LFence()
	b.RdTSC(isa.R7)
	b.Load(isa.R8, isa.R2, isa.R0, 0, 0)
	b.LFence()
	b.RdTSC(isa.R9)
	b.Sub(isa.R12, isa.R9, isa.R7) // conflict vs hit timing
	// Rotate the secret for the next bit.
	b.Shri(isa.R6, isa.R6, 1)
	b.Br(isa.CondNE, isa.R6, isa.R0, "keep")
	b.Li(isa.R6, l.secret)
	b.Label("keep")
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "bit")
	return b.MustBuild()
}

// BranchScope reads a victim branch's direction out of the shared pattern
// history table: an attacker branch aliased onto the same PHT entry
// mispredicts (slow) or not (fast) depending on the secret direction.
//
// With a 2048-entry local table and 4-byte instructions, branches 512
// instruction slots apart alias to the same entry.
func BranchScope(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("branchscope", isa.ClassBranchScope)
	b.InitMem(l.victim, uint64(l.secret&1))
	b.InitReg(isa.R1, l.victim)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(25*scale))
	b.Label("round")
	// Victim branch: direction = secret bit.
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R2, isa.R1, isa.R0, 0, 0)
	victimBr := b.Here()
	b.Br(isa.CondNE, isa.R2, isa.R0, "vtaken")
	b.Nop()
	b.Label("vtaken")
	// Pad so the attacker branch (one slot after the timing read)
	// aliases the victim's PHT entry: local-table index repeats every
	// 512 instruction slots.
	b.SetPhase(isa.PhaseTransmit)
	pad := (512 - (b.Here()+1-victimBr)%512) % 512
	for i := 0; i < pad; i++ {
		b.Nop()
	}
	b.RdTSC(isa.R5)
	b.Br(isa.CondEQ, isa.R0, isa.R0, "ataken") // always taken
	b.Nop()
	b.Label("ataken")
	b.LFence()
	b.RdTSC(isa.R6)
	b.Sub(isa.R7, isa.R6, isa.R5)
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// LeakyBuddies models the CPU side of the integrated CPU-GPU contention
// channel: the sender thrashes the shared L2 (or idles); the receiver times
// sweeps through its own L2-resident buffer.
func LeakyBuddies(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("leaky-buddies", isa.ClassLeakyBuddies)
	thrashBase := uint64(0xA0_0000)
	recvBase := uint64(0xC0_0000)
	b.InitReg(isa.R1, thrashBase)
	b.InitReg(isa.R2, recvBase)
	b.InitReg(isa.R6, uint64(l.secret))

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(12*scale))
	b.Label("bit")
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R13, 1)
	b.And(isa.R4, isa.R6, isa.R13)
	b.Br(isa.CondEQ, isa.R4, isa.R0, "idle")
	// Thrash: stream 256 distinct lines through L2.
	b.Li(isa.R5, 0)
	b.Li(isa.R7, 256)
	b.Label("thrash")
	b.Load(isa.R8, isa.R1, isa.R5, 64, 0)
	b.Addi(isa.R5, isa.R5, 1)
	b.Br(isa.CondNE, isa.R5, isa.R7, "thrash")
	b.Label("idle")
	// Receiver: timed sweep over 32 lines.
	b.SetPhase(isa.PhaseTransmit)
	b.Li(isa.R5, 0)
	b.Li(isa.R7, 32)
	b.RdTSC(isa.R14)
	b.Label("sweep")
	b.Load(isa.R9, isa.R2, isa.R5, 64, 0)
	b.Addi(isa.R5, isa.R5, 1)
	b.Br(isa.CondNE, isa.R5, isa.R7, "sweep")
	b.RdTSC(isa.R15)
	b.Sub(isa.R16, isa.R15, isa.R14)
	b.Shri(isa.R6, isa.R6, 1)
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "bit")
	return b.MustBuild()
}

// RDRANDCovert transmits bits through contention on the shared hardware
// random number generator: the sender issues RDRAND bursts (or idles); the
// receiver times its own RDRAND.
func RDRANDCovert(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("rdrand-covert", isa.ClassRDRANDCovert)
	b.InitReg(isa.R6, uint64(l.secret)|0x10) // bit stream

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(80*scale))
	b.Label("bit")
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R13, 1)
	b.And(isa.R4, isa.R6, isa.R13)
	b.Br(isa.CondEQ, isa.R4, isa.R0, "idle")
	// Sender burst occupies the RNG.
	b.RdRand(isa.R5)
	b.RdRand(isa.R5)
	b.RdRand(isa.R5)
	b.Label("idle")
	// Receiver: timed RDRAND observes the contention.
	b.SetPhase(isa.PhaseTransmit)
	b.LFence()
	b.RdTSC(isa.R7)
	b.RdRand(isa.R8)
	b.LFence()
	b.RdTSC(isa.R9)
	b.Sub(isa.R12, isa.R9, isa.R7)
	b.Shri(isa.R6, isa.R6, 1)
	b.Br(isa.CondNE, isa.R6, isa.R0, "next")
	b.Li(isa.R6, l.secret|0x10)
	b.Label("next")
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "bit")
	return b.MustBuild()
}

// FlushConflict is the KASLR bypass that defeats current hardware fixes:
// CLFLUSH executes measurably faster or slower depending on whether the
// target kernel address is cached, revealing which kernel pages are mapped
// and resident — without any architectural access.
func FlushConflict(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("flushconflict", isa.ClassFlushConflict)
	b.InitReg(isa.R1, l.kernel)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(20*scale))
	b.Label("round")
	b.SetPhase(isa.PhaseSetup)
	b.Syscall() // kernel activity caches some kernel lines
	b.SetPhase(isa.PhaseLeak)
	// Probe 8 candidate kernel addresses by flush timing.
	b.Li(isa.R4, 0)
	b.Li(isa.R5, 8)
	b.Label("cand")
	b.LFence()
	b.RdTSC(isa.R6)
	b.CLFlush(isa.R1, isa.R4, 0x1000, 0)
	b.LFence()
	b.RdTSC(isa.R7)
	b.Sub(isa.R8, isa.R7, isa.R6) // slow flush => line was cached => mapped
	b.Addi(isa.R4, isa.R4, 1)
	b.Br(isa.CondNE, isa.R4, isa.R5, "cand")
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// FlushFlush is the stealthy cache attack that never loads the probe lines
// itself: it measures CLFLUSH timing, which depends on line presence, so
// the attacker causes no cache misses of its own.
func FlushFlush(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("flush-flush", isa.ClassFlushFlush)
	b.InitMem(l.victim, uint64(l.secret))
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(25*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	// Victim: accesses the probe line indexed by its secret.
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R4, isa.R1, isa.R0, 0, 0)
	b.Load(isa.R5, isa.R2, isa.R4, probeStride, 0)
	// Attacker: flush-timing sweep (no loads!).
	b.SetPhase(isa.PhaseTransmit)
	b.Li(isa.R6, 0)
	b.Li(isa.R7, numGuesses)
	b.Label("probe")
	b.LFence()
	b.RdTSC(isa.R8)
	b.CLFlush(isa.R2, isa.R6, probeStride, 0)
	b.LFence()
	b.RdTSC(isa.R9)
	b.Sub(isa.R12, isa.R9, isa.R8)
	b.Addi(isa.R6, isa.R6, 1)
	b.Br(isa.CondNE, isa.R6, isa.R7, "probe")
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// FlushReload is the classic shared-memory cache attack: flush the probe
// lines, let the victim run, reload with timing.
func FlushReload(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("flush-reload", isa.ClassFlushReload)
	b.InitMem(l.victim, uint64(l.secret))
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, l.probe)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(25*scale))
	b.Label("round")
	emitFlushProbe(b, l, isa.PhaseSetup, "r")
	// Victim: secret-indexed access.
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R4, isa.R1, isa.R0, 0, 0)
	b.Load(isa.R5, isa.R2, isa.R4, probeStride, 0)
	emitReload(b, l, isa.R30)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// PrimeProbe fills a cache set with the attacker's eviction set, lets the
// victim access its secret-dependent line, then times a re-walk of the
// eviction set: a slow way reveals the victim's set.
func PrimeProbe(seed int64, scale int) *isa.Program {
	scale = clampScale(scale)
	l := newLayout(seed)
	b := isa.NewBuilder("prime-probe", isa.ClassPrimeProbe)
	// L1D: 64KB, 8-way, 64B lines -> 128 sets; same-set stride is 8KB.
	const setStride = 128 * 64
	evBase := uint64(0xE0_0000) // eviction set base, set 0
	b.InitMem(l.victim, uint64(l.secret))
	b.InitReg(isa.R1, l.victim)
	b.InitReg(isa.R2, evBase)
	b.InitReg(isa.R3, probeBase) // victim's target region (set-aliased)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(15*scale))
	b.Label("round")
	// Prime: fill all 8 ways of the target set.
	b.SetPhase(isa.PhaseSetup)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, 8)
	b.Label("prime")
	b.Load(isa.R6, isa.R2, isa.R4, setStride, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.Br(isa.CondNE, isa.R4, isa.R5, "prime")
	// Victim: secret-dependent access lands in some set.
	b.SetPhase(isa.PhaseLeak)
	b.Load(isa.R7, isa.R1, isa.R0, 0, 0)
	b.Load(isa.R8, isa.R3, isa.R7, setStride, 0)
	// Probe: timed re-walk of the eviction set.
	b.SetPhase(isa.PhaseTransmit)
	b.Li(isa.R4, 0)
	b.RdTSC(isa.R12)
	b.Label("probe")
	b.Load(isa.R6, isa.R2, isa.R4, setStride, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.Br(isa.CondNE, isa.R4, isa.R5, "probe")
	b.RdTSC(isa.R13)
	b.Sub(isa.R14, isa.R13, isa.R12)
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}
