package kernel_test

import (
	"math"
	"testing"

	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/evasion"
	"evax/internal/hpc"
	"evax/internal/kernel"
	"evax/internal/sim"
)

// fixture is a small real corpus with a trained EVAX perceptron: the shared
// substrate of the kernel contract tests. Built once — corpus generation
// runs the simulator.
type fixture struct {
	ds   *dataset.Dataset
	plan *detect.FeaturePlan
	det  *detect.Detector
	kern *kernel.Scorer
}

var fixtureCache *fixture

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	o := dataset.DefaultCorpusOptions()
	o.Seeds = 1
	o.MaxInstr = 40_000
	o.Scale = 2
	o.AttackScale = 20
	ds := dataset.New(dataset.CollectAll(o))
	if ds.Block() == nil || ds.Block().Len() == 0 {
		t.Fatal("empty fixture corpus")
	}
	plan := detect.EVAXBase()
	plan.SetEngineered(detect.DefaultEngineered(plan))
	det := detect.NewPerceptron(1, plan)
	idx := make([]int, len(ds.Samples))
	for i := range idx {
		idx[i] = i
	}
	det.Train(ds, idx, detect.TrainOptions{Epochs: 4, LR: 0.15, Momentum: 0.7, Batch: 16, Seed: 1})
	det.TuneThresholdForFPR(benignScores(det, ds), 0.05)
	kern, err := detect.CompileScorer(det, ds.Maxima())
	if err != nil {
		t.Fatalf("CompileScorer: %v", err)
	}
	fixtureCache = &fixture{ds: ds, plan: plan, det: det, kern: kern}
	return fixtureCache
}

func benignScores(det *detect.Detector, ds *dataset.Dataset) []float64 {
	var out []float64
	for i := range ds.Samples {
		if !ds.Samples[i].Malicious {
			out = append(out, det.Score(ds.Samples[i].Derived))
		}
	}
	return out
}

// referenceScore is the historical three-pass scoring path, bypassing the
// detector's kernel cache: full plan execution into a fresh vector, then the
// network forward pass.
func referenceScore(det *detect.Detector, derived []float64) float64 {
	return det.ScoreVector(det.Plan.Vector(derived))
}

// The fused raw entry point must be bit-identical to the legacy pipeline:
// ExpandInto the full derived row, NormalizeInPlace, gather + forward.
func TestScoreRawBitIdentical(t *testing.T) {
	f := buildFixture(t)
	rawDim := f.ds.Block().RawDim()
	exp := hpc.NewExpander(rawDim)
	tmp := make([]float64, f.ds.DerivedDim)
	for i := range f.ds.Samples {
		s := &f.ds.Samples[i]
		exp.ExpandInto(tmp, hpc.Sample{Values: s.Raw, Instructions: s.Instructions, Cycles: s.Cycles})
		f.ds.NormalizeInPlace(tmp)
		want := referenceScore(f.det, tmp)
		got := f.kern.ScoreRaw(s.Raw, s.Instructions, s.Cycles)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("sample %d: ScoreRaw %v != legacy %v", i, got, want)
		}
	}
}

// The derived entry points (single row and block) must be bit-identical to
// plan execution + forward over the stored corpus rows, and to each other.
func TestScoreDerivedBitIdentical(t *testing.T) {
	f := buildFixture(t)
	blk := f.ds.Block()
	out := make([]float64, blk.Len())
	f.kern.ScoreDerivedRows(blk.DerivedData(), blk.DerivedDim(), out)
	for i := range f.ds.Samples {
		d := f.ds.Samples[i].Derived
		want := referenceScore(f.det, d)
		if got := f.kern.ScoreDerived(d); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("sample %d: ScoreDerived %v != legacy %v", i, got, want)
		}
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("sample %d: ScoreDerivedRows %v != legacy %v", i, out[i], want)
		}
		// Detector.Score itself now routes through the kernel — same bits.
		if got := f.det.Score(d); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("sample %d: Detector.Score %v != legacy %v", i, got, want)
		}
	}
}

// The unrolled block body and the single-row path must agree bit for bit,
// including the scalar tail (row count not divisible by the unroll factor).
func TestScoreRawRowsMatchesSingle(t *testing.T) {
	f := buildFixture(t)
	blk := f.ds.Block()
	rows := blk.Len()
	if rows%4 == 0 {
		rows-- // force a scalar tail
	}
	instr := make([]uint64, rows)
	cycles := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		instr[i] = f.ds.Samples[i].Instructions
		cycles[i] = f.ds.Samples[i].Cycles
	}
	raw := blk.RawData()[: rows*blk.RawDim() : rows*blk.RawDim()]
	out := make([]float64, rows)
	f.kern.ScoreRawRows(raw, instr, cycles, out)
	for i := 0; i < rows; i++ {
		want := f.kern.ScoreRaw(blk.RawRow(i), instr[i], cycles[i])
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: block %v != single %v", i, out[i], want)
		}
	}

	q := quantized(t, f)
	qout := make([]float64, rows)
	q.ScoreRawRows(raw, instr, cycles, qout)
	for i := 0; i < rows; i++ {
		want := q.ScoreRaw(blk.RawRow(i), instr[i], cycles[i])
		if math.Float64bits(qout[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: quant block %v != single %v", i, qout[i], want)
		}
	}
}

// Clones share compiled state and score identically with private scratch.
func TestCloneScoresIdentically(t *testing.T) {
	f := buildFixture(t)
	c := f.kern.Clone()
	s := &f.ds.Samples[0]
	if a, b := c.ScoreRaw(s.Raw, s.Instructions, s.Cycles), f.kern.ScoreRaw(s.Raw, s.Instructions, s.Cycles); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("clone %v != original %v", a, b)
	}
	var bk kernel.Backend = f.kern
	if _, ok := bk.CloneBackend().(*kernel.Scorer); !ok {
		t.Fatal("float CloneBackend type")
	}
	bk = quantized(t, f)
	if _, ok := bk.CloneBackend().(*kernel.QuantScorer); !ok {
		t.Fatal("quant CloneBackend type")
	}
}

// Every steady-state kernel entry point must be allocation-free.
func TestKernelZeroAlloc(t *testing.T) {
	f := buildFixture(t)
	s := &f.ds.Samples[0]
	blk := f.ds.Block()
	rows := 8
	instr := make([]uint64, rows)
	cycles := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		instr[i] = f.ds.Samples[i].Instructions
		cycles[i] = f.ds.Samples[i].Cycles
	}
	raw := blk.RawData()[: rows*blk.RawDim() : rows*blk.RawDim()]
	out := make([]float64, rows)
	dout := make([]float64, blk.Len())
	q := quantized(t, f)
	checks := []struct {
		name string
		fn   func()
	}{
		{"ScoreRaw", func() { f.kern.ScoreRaw(s.Raw, s.Instructions, s.Cycles) }},
		{"ScoreRawRows", func() { f.kern.ScoreRawRows(raw, instr, cycles, out) }},
		{"ScoreDerived", func() { f.kern.ScoreDerived(s.Derived) }},
		{"ScoreDerivedRows", func() { f.kern.ScoreDerivedRows(blk.DerivedData(), blk.DerivedDim(), dout) }},
		{"ScoreBase", func() { f.kern.ScoreBase(s.Derived[:f.kern.BaseDim()]) }},
		{"quant.ScoreRaw", func() { q.ScoreRaw(s.Raw, s.Instructions, s.Cycles) }},
		{"quant.FlagRaw", func() { q.FlagRaw(s.Raw, s.Instructions, s.Cycles) }},
		{"quant.ScoreRawRows", func() { q.ScoreRawRows(raw, instr, cycles, out) }},
		{"quant.ScoreDerived", func() { q.ScoreDerived(s.Derived) }},
	}
	for _, c := range checks {
		c.fn() // warm up
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", c.name, n)
		}
	}
}

// agreementTarget is the quantized-vs-float verdict agreement gate.
const agreementTarget = 0.995

func quantized(t *testing.T, f *fixture) *kernel.QuantScorer {
	t.Helper()
	q, err := kernel.Quantize(f.kern)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	// Re-tune the operating point on quantized benign scores, as the
	// deployment flow does.
	var benign []float64
	for i := range f.ds.Samples {
		if !f.ds.Samples[i].Malicious {
			benign = append(benign, q.ScoreDerived(f.ds.Samples[i].Derived))
		}
	}
	q.SetThreshold(detect.ThresholdForFPR(benign, 0.05))
	return q
}

// The quantized backend must agree with the float backend on at least
// agreementTarget of verdicts over the full corpus (benign + every attack
// class), on both the raw and derived entry points.
func TestQuantizedVerdictAgreementCorpus(t *testing.T) {
	f := buildFixture(t)
	q := quantized(t, f)
	agree, total := 0, 0
	for i := range f.ds.Samples {
		s := &f.ds.Samples[i]
		fFlag := f.kern.ScoreRaw(s.Raw, s.Instructions, s.Cycles) >= f.kern.Threshold()
		qFlag := q.FlagRaw(s.Raw, s.Instructions, s.Cycles)
		if fFlag == qFlag {
			agree++
		}
		total++
		dF := f.kern.ScoreDerived(s.Derived) >= f.kern.Threshold()
		dQ := q.ScoreDerived(s.Derived) >= q.Threshold()
		if dF == dQ {
			agree++
		}
		total++
	}
	if rate := float64(agree) / float64(total); rate < agreementTarget {
		t.Fatalf("corpus verdict agreement %.4f < %.4f (%d/%d)", rate, agreementTarget, agree, total)
	}
}

// The agreement gate must also hold on evasion-shaped inputs: program
// variants (the fuzzed suite) and AML gradient-descent perturbations.
func TestQuantizedVerdictAgreementEvasion(t *testing.T) {
	f := buildFixture(t)
	q := quantized(t, f)
	agree, total := 0, 0

	// Fuzzed variant suite: evasion program generators at several seeds,
	// scored on the raw path.
	o := dataset.DefaultCorpusOptions()
	for seed := int64(1); seed <= 3; seed++ {
		for _, samples := range [][]dataset.Sample{
			dataset.Collect(sim.DefaultConfig(), evasion.Transynther(seed, 8), o.Interval, 40_000),
			dataset.Collect(sim.DefaultConfig(), evasion.TRRespass(seed, 8), o.Interval, 40_000),
			dataset.Collect(sim.DefaultConfig(), evasion.Osiris(seed, 8), o.Interval, 40_000),
		} {
			for i := range samples {
				s := &samples[i]
				fFlag := f.kern.ScoreRaw(s.Raw, s.Instructions, s.Cycles) >= f.kern.Threshold()
				qFlag := q.FlagRaw(s.Raw, s.Instructions, s.Cycles)
				if fFlag == qFlag {
					agree++
				}
				total++
			}
		}
	}

	// AML suite: gradient perturbations of attack base vectors against the
	// float detector, scored on the base-vector path.
	aml := evasion.NewAML(nil)
	for i := range f.ds.Samples {
		s := &f.ds.Samples[i]
		if !s.Malicious {
			continue
		}
		res := aml.Descend(f.det, f.plan.Base(s.Derived))
		fFlag := f.kern.ScoreBase(res.Adv) >= f.kern.Threshold()
		qFlag := q.ScoreBase(res.Adv) >= q.Threshold()
		if fFlag == qFlag {
			agree++
		}
		total++
	}

	if total == 0 {
		t.Fatal("empty evasion suite")
	}
	if rate := float64(agree) / float64(total); rate < agreementTarget {
		t.Fatalf("evasion verdict agreement %.4f < %.4f (%d/%d)", rate, agreementTarget, agree, total)
	}
}

// Quantized scoring must beat a trivial detector: it should still separate
// the corpus (sanity that quantization preserved signal, not just verdicts).
func TestQuantizedSeparatesCorpus(t *testing.T) {
	f := buildFixture(t)
	q := quantized(t, f)
	var mal, ben, nMal, nBen float64
	for i := range f.ds.Samples {
		s := &f.ds.Samples[i]
		sc := q.ScoreDerived(s.Derived)
		if s.Malicious {
			mal += sc
			nMal++
		} else {
			ben += sc
			nBen++
		}
	}
	if nMal == 0 || nBen == 0 {
		t.Fatal("corpus missing a class")
	}
	if mal/nMal <= ben/nBen {
		t.Fatalf("quantized mean attack score %.4f <= benign %.4f", mal/nMal, ben/nBen)
	}
}

// Compile must reject malformed configs rather than mis-score.
func TestCompileValidation(t *testing.T) {
	good := kernel.Config{
		RawDim:  2,
		Indices: []int{0, 7},
		Norm:    []float64{1, 1},
		EngA:    []int{0},
		EngB:    []int{1},
		W:       []float64{0.5, -0.25, 0.125},
		Bias:    0.1,
	}
	if _, err := kernel.Compile(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []func(c *kernel.Config){
		func(c *kernel.Config) { c.RawDim = 0 },
		func(c *kernel.Config) { c.Indices = nil },
		func(c *kernel.Config) { c.Indices = []int{0, 99} },
		func(c *kernel.Config) { c.Norm = []float64{1} },
		func(c *kernel.Config) { c.Norm = []float64{1, math.NaN()} },
		func(c *kernel.Config) { c.EngA = []int{0, 1} },
		func(c *kernel.Config) { c.EngB = []int{9} },
		func(c *kernel.Config) { c.W = []float64{1} },
		func(c *kernel.Config) { c.W = []float64{1, math.Inf(1), 0} },
		func(c *kernel.Config) { c.Bias = math.NaN() },
	}
	for i, mutate := range bad {
		c := good
		c.Indices = append([]int(nil), good.Indices...)
		c.Norm = append([]float64(nil), good.Norm...)
		c.EngA = append([]int(nil), good.EngA...)
		c.EngB = append([]int(nil), good.EngB...)
		c.W = append([]float64(nil), good.W...)
		mutate(&c)
		if _, err := kernel.Compile(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// A derived-only scorer (no maxima) must refuse the raw path and refuse to
// quantize, but score derived rows.
func TestDerivedOnlyScorer(t *testing.T) {
	f := buildFixture(t)
	k, err := detect.CompileScorer(f.det, nil)
	if err != nil {
		t.Fatalf("derived-only CompileScorer: %v", err)
	}
	if k.HasRaw() {
		t.Fatal("derived-only scorer claims raw support")
	}
	d := f.ds.Samples[0].Derived
	if a, b := k.ScoreDerived(d), f.kern.ScoreDerived(d); math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("derived-only %v != raw-capable %v", a, b)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScoreRaw on derived-only scorer did not panic")
			}
		}()
		s := &f.ds.Samples[0]
		k.ScoreRaw(s.Raw, s.Instructions, s.Cycles)
	}()
	if _, err := kernel.Quantize(k); err == nil {
		t.Error("Quantize accepted a derived-only scorer")
	}
}
