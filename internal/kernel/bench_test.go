package kernel

import (
	"math/rand"
	"testing"
)

// benchRows builds a realistic-shape scorer (EVAX: 115 counters, 133 base +
// 12 engineered) and a block of raw rows.
func benchRows(b *testing.B) (*Scorer, *QuantScorer, []float64, []uint64, []uint64, []float64) {
	b.Helper()
	s, err := randomScorerFrom(rand.New(rand.NewSource(1)), 115, 133, 12)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	q, err := Quantize(s)
	if err != nil {
		b.Fatalf("Quantize: %v", err)
	}
	const rows = 64
	rng := rand.New(rand.NewSource(2))
	raw := make([]float64, rows*s.rawDim)
	for i := range raw {
		raw[i] = float64(rng.Intn(300))
	}
	instr := make([]uint64, rows)
	cycles := make([]uint64, rows)
	for i := range instr {
		instr[i] = uint64(2000 + rng.Intn(2000))
		cycles[i] = uint64(3000 + rng.Intn(4000))
	}
	out := make([]float64, rows)
	return s, q, raw, instr, cycles, out
}

func BenchmarkScoreRawRowsFloat(b *testing.B) {
	s, _, raw, instr, cycles, out := benchRows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreRawRows(raw, instr, cycles, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(out)), "ns/sample")
}

func BenchmarkScoreRawRowsQuant(b *testing.B) {
	_, q, raw, instr, cycles, out := benchRows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScoreRawRows(raw, instr, cycles, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(out)), "ns/sample")
}
