// Quantized backend of the fused kernel: int8 weights on a power-of-two
// scale ladder, Q8 fixed-point inputs, integer accumulation — the paper's
// hardware perceptron arithmetic (perceptron.QuantizedLinear) executed over
// the real feature space. The speed win over the float backend is divide
// elimination: where the float path must keep the per-feature divides (v/max
// normalization, per-instruction and per-cycle views) for bit-identity, the
// quantized path folds normalize+quantize into one multiply, qx = round(v *
// XOne/max), and replaces the window-term divides with per-row reciprocals —
// its accuracy contract is the verdict-agreement gate, not bit-identity.
package kernel

import (
	"fmt"
	"math"

	"evax/internal/hpc"
	"evax/internal/perceptron"
)

// QuantScorer is the compiled quantized backend. Compiled state is immutable;
// qx/qx4 are scratch, so concurrent consumers Clone.
type QuantScorer struct {
	rawDim  int
	baseDim int

	src []int32
	idx []int32

	engA []int32
	engB []int32

	// qscale folds normalization and fixed-point encoding per base feature:
	// XOne/max, or 0 for never-observed slots (feature pinned to 0).
	qscale []float64
	// qpres is the precomputed fixed-point image of a fired presence view
	// (quantFold(1, qscale)): presence features reduce to a compare and a
	// constant in the hot loop.
	qpres []int32

	// ord lists feature positions grouped by derived view, with grpEnd[g]
	// the end offset of group g (op grpOp[g]) in ord. The raw hot loops walk
	// groups so each body is branch-free and fully inlined; regrouping the
	// integer accumulation is exact because AccBits bounds every partial sum
	// (no saturation before the final clamp), so the sum is
	// order-independent.
	ord    []int32
	grpOp  []hpc.DerivedKind
	grpEnd []int32

	lin *perceptron.QuantizedLinear
	// threshold is the float decision boundary; accThresh is its image in
	// accumulator units (acc >= accThresh ⟺ sigmoid(Dequant(acc)) >=
	// threshold, by monotonicity of sigmoid∘Dequant).
	threshold float64
	accThresh int32

	qx  []int32 // raw-path scratch: fixed-point base features
	qx4 []int32 // block-path scratch
}

// Quantize compiles the quantized backend from a float scorer, quantizing
// its weights through the perceptron scale ladder. The scorer must have been
// compiled with normalization maxima (the quantized backend exists for the
// raw serving path). The decision threshold carries over; retune it against
// quantized benign scores (TuneThresholdForFPR upstream) for a calibrated
// operating point.
func Quantize(s *Scorer) (*QuantScorer, error) {
	if s.norm == nil {
		return nil, fmt.Errorf("kernel: quantized backend needs normalization maxima")
	}
	lin := perceptron.QuantizeLinear(s.w, s.bias)
	// The hot loop accumulates in plain int32 and saturates once at the
	// end. That is exactly the hardware's per-add saturation as long as
	// every partial sum fits the accumulator: inputs are bounded by XOne,
	// so every partial sum is bounded by the worst-case span AccBits was
	// sized for. A model whose span hits the int32 cap would break the
	// equivalence, so refuse it.
	if lin.AccBits >= 31 {
		return nil, fmt.Errorf("kernel: quantized span needs %d accumulator bits", lin.AccBits)
	}
	q := &QuantScorer{
		rawDim:  s.rawDim,
		baseDim: s.baseDim,
		src:     s.src,
		idx:     s.idx,
		engA:    s.engA,
		engB:    s.engB,
		qscale:  make([]float64, s.baseDim),
		qpres:   make([]int32, s.baseDim),
		lin:     lin,
		qx:      make([]int32, s.baseDim),
		qx4:     make([]int32, blockRows*s.baseDim),
	}
	for i, m := range s.norm {
		if m > 0 {
			q.qscale[i] = perceptron.XOne / m
		}
		q.qpres[i] = quantFold(1, q.qscale[i])
	}
	for kind := hpc.DerivedKind(0); kind < hpc.NumDerivedKinds; kind++ {
		before := len(q.ord)
		for i, op := range s.op {
			if op == kind {
				q.ord = append(q.ord, int32(i))
			}
		}
		if len(q.ord) > before {
			q.grpOp = append(q.grpOp, kind)
			q.grpEnd = append(q.grpEnd, int32(len(q.ord)))
		}
	}
	q.SetThreshold(s.threshold)
	return q, nil
}

// Clone returns a quantized scorer sharing compiled state with private
// scratch.
func (q *QuantScorer) Clone() *QuantScorer {
	c := *q
	c.qx = make([]int32, q.baseDim)
	c.qx4 = make([]int32, blockRows*q.baseDim)
	return &c
}

// CloneBackend implements Backend.
func (q *QuantScorer) CloneBackend() Backend { return q.Clone() }

// RawDim returns the base counter space size.
func (q *QuantScorer) RawDim() int { return q.rawDim }

// Lin exposes the quantized model (weights, scale, accumulator width).
func (q *QuantScorer) Lin() *perceptron.QuantizedLinear { return q.lin }

// Threshold returns the float decision boundary.
func (q *QuantScorer) Threshold() float64 { return q.threshold }

// SetThreshold installs a (typically re-tuned) float decision boundary and
// maps it into accumulator units: accThresh is the smallest accumulator
// value whose dequantized sigmoid clears t, via the logit inverse
// acc >= Scale()·ln(t/(1-t)).
func (q *QuantScorer) SetThreshold(t float64) {
	q.threshold = t
	switch {
	case t <= 0:
		q.accThresh = math.MinInt32
	case t >= 1:
		q.accThresh = math.MaxInt32
	default:
		q.accThresh = int32(math.Ceil(q.lin.Scale() * math.Log(t/(1-t))))
	}
}

// quantFold applies the folded normalize+quantize: round(v·qscale) clamped
// to [0, XOne]. Derived values are non-negative (counter deltas and their
// views), so the low clamp only guards the qscale==0 pinned-feature case.
func quantFold(v, qscale float64) int32 {
	f := v * qscale
	if f <= 0 {
		return 0
	}
	if f >= perceptron.XOne {
		return perceptron.XOne
	}
	return int32(f + 0.5)
}

// rowInverses precomputes the reciprocals of one row's window terms so the
// per-feature loop is multiply-only: the quantized path's latitude over the
// float kernel, which must keep every divide for bit-identity. x·(1/y)
// differs from x/y by at most one ulp — inside the ±1 quantization step the
// agreement gate already absorbs.
func rowInverses(values []float64, instructions, cycles uint64) (invTotal, invInstrK, invCyc float64) {
	total, instrK, cyc := hpc.WindowTerms(values, instructions, cycles)
	if total > 0 {
		invTotal = 1 / total
	}
	return invTotal, 1 / instrK, 1 / cyc
}

// quantRow fills qx with the fixed-point image of one raw row, walking the
// compiled per-view groups so every group body is a branch-free multiply
// loop with quantFold inlined. The view formulas match hpc.EvalDerived with
// divides replaced by the reciprocals (one ulp of latitude the agreement
// gate absorbs).
func (q *QuantScorer) quantRow(qx []int32, row []float64, invTotal, invInstrK, invCyc float64) {
	pos := int32(0)
	for g, end := range q.grpEnd {
		seg := q.ord[pos:end]
		switch q.grpOp[g] {
		case hpc.DerivedTotal:
			for _, i := range seg {
				qx[i] = quantFold(row[q.src[i]], q.qscale[i])
			}
		case hpc.DerivedRate:
			for _, i := range seg {
				qx[i] = quantFold(row[q.src[i]]*invInstrK, q.qscale[i])
			}
		case hpc.DerivedPerCycle:
			for _, i := range seg {
				qx[i] = quantFold(row[q.src[i]]*invCyc, q.qscale[i])
			}
		case hpc.DerivedBurst:
			for _, i := range seg {
				v := row[q.src[i]]
				qx[i] = quantFold(v*v*invCyc, q.qscale[i])
			}
		case hpc.DerivedPresence:
			for _, i := range seg {
				if row[q.src[i]] > 0 {
					qx[i] = q.qpres[i]
				} else {
					qx[i] = 0
				}
			}
		case hpc.DerivedLog:
			for _, i := range seg {
				qx[i] = quantFold(hpc.Log2p1(row[q.src[i]]), q.qscale[i])
			}
		default: // DerivedShare
			for _, i := range seg {
				qx[i] = quantFold(row[q.src[i]]*invTotal, q.qscale[i])
			}
		}
		pos = end
	}
}

// accumulate runs the integer dot product over fixed-point base features:
// bias seed, int8×Q8 multiply-adds for base then engineered features
// ((qa·qb)>>XShift keeps products in Q8), one saturation at the end —
// equivalent to per-add saturation because AccBits covers the span (checked
// at Quantize time).
func (q *QuantScorer) accumulate(qx []int32) int32 {
	acc := q.lin.Bias
	w := q.lin.W
	for i, v := range qx {
		acc += int32(w[i]) * v
	}
	wEng := w[q.baseDim:]
	for j, a := range q.engA {
		e := (qx[a] * qx[q.engB[j]]) >> perceptron.XShift
		acc += int32(wEng[j]) * e
	}
	return q.lin.SatAdd(acc, 0)
}

// score maps an accumulator value to the sigmoid score domain.
func (q *QuantScorer) score(acc int32) float64 { return sigmoid(q.lin.Dequant(acc)) }

// AccRaw computes the saturating accumulator value for one raw window — the
// integer the hardware comparator sees. Zero heap allocations.
//
//evaxlint:hotpath
func (q *QuantScorer) AccRaw(values []float64, instructions, cycles uint64) int32 {
	if len(values) != q.rawDim {
		panic(fmt.Sprintf("kernel: AccRaw row has %d counters, plan has %d", len(values), q.rawDim))
	}
	invT, invK, invC := rowInverses(values, instructions, cycles)
	q.quantRow(q.qx, values, invT, invK, invC)
	return q.accumulate(q.qx)
}

// ScoreRaw scores one raw window on the quantized path, mapping the
// accumulator back to the sigmoid score domain. Zero heap allocations.
//
//evaxlint:hotpath
func (q *QuantScorer) ScoreRaw(values []float64, instructions, cycles uint64) float64 {
	return q.score(q.AccRaw(values, instructions, cycles))
}

// FlagRaw reports malicious for one raw window with a pure integer compare
// against the threshold's accumulator image — the hardware decision.
//
//evaxlint:hotpath
func (q *QuantScorer) FlagRaw(values []float64, instructions, cycles uint64) bool {
	return q.AccRaw(values, instructions, cycles) >= q.accThresh
}

// ScoreRawRows scores rows of contiguous raw counter data, blockRows rows
// per sweep over the compiled constants. Zero heap allocations.
//
//evaxlint:hotpath
func (q *QuantScorer) ScoreRawRows(raw []float64, instr, cycles []uint64, out []float64) {
	rows := len(out)
	if len(raw) != rows*q.rawDim || len(instr) != rows || len(cycles) != rows {
		panic(fmt.Sprintf("kernel: ScoreRawRows dims: raw %d (want %d), instr %d, cycles %d, out %d",
			len(raw), rows*q.rawDim, len(instr), len(cycles), rows))
	}
	r := 0
	for ; r+blockRows <= rows; r += blockRows {
		q.quantScore4(raw[r*q.rawDim:(r+blockRows)*q.rawDim], instr[r:], cycles[r:], out[r:r+blockRows])
	}
	for ; r < rows; r++ {
		out[r] = q.ScoreRaw(raw[r*q.rawDim:(r+1)*q.rawDim], instr[r], cycles[r])
	}
}

// quantScore4 is the unrolled quantized block body: four rows expanded
// through the grouped per-view loops, then one four-lane integer dot product
// over the fixed-point scratch; arithmetic per row is identical to AccRaw up
// to accumulation order, which AccBits makes exact.
func (q *QuantScorer) quantScore4(raw []float64, instr, cycles []uint64, out []float64) {
	d := q.rawDim
	r0 := raw[0*d : 1*d]
	r1 := raw[1*d : 2*d]
	r2 := raw[2*d : 3*d]
	r3 := raw[3*d : 4*d]
	t0, k0, c0 := rowInverses(r0, instr[0], cycles[0])
	t1, k1, c1 := rowInverses(r1, instr[1], cycles[1])
	t2, k2, c2 := rowInverses(r2, instr[2], cycles[2])
	t3, k3, c3 := rowInverses(r3, instr[3], cycles[3])
	b := q.baseDim
	q0 := q.qx4[0*b : 1*b]
	q1 := q.qx4[1*b : 2*b]
	q2 := q.qx4[2*b : 3*b]
	q3 := q.qx4[3*b : 4*b]
	q.quantRow(q0, r0, t0, k0, c0)
	q.quantRow(q1, r1, t1, k1, c1)
	q.quantRow(q2, r2, t2, k2, c2)
	q.quantRow(q3, r3, t3, k3, c3)
	a0, a1, a2, a3 := q.lin.Bias, q.lin.Bias, q.lin.Bias, q.lin.Bias
	w := q.lin.W
	for i := 0; i < b; i++ {
		wi := int32(w[i])
		a0 += wi * q0[i]
		a1 += wi * q1[i]
		a2 += wi * q2[i]
		a3 += wi * q3[i]
	}
	wEng := w[b:]
	for j, a := range q.engA {
		bb := q.engB[j]
		wj := int32(wEng[j])
		a0 += wj * ((q0[a] * q0[bb]) >> perceptron.XShift)
		a1 += wj * ((q1[a] * q1[bb]) >> perceptron.XShift)
		a2 += wj * ((q2[a] * q2[bb]) >> perceptron.XShift)
		a3 += wj * ((q3[a] * q3[bb]) >> perceptron.XShift)
	}
	out[0] = q.score(q.lin.SatAdd(a0, 0))
	out[1] = q.score(q.lin.SatAdd(a1, 0))
	out[2] = q.score(q.lin.SatAdd(a2, 0))
	out[3] = q.score(q.lin.SatAdd(a3, 0))
}

// ScoreDerived scores an already normalized derived-space row on the
// quantized path. Inputs are fixed-point encoded from the normalized values
// directly (perceptron.QuantizeInput); no scratch, safe to share.
//
//evaxlint:hotpath
func (q *QuantScorer) ScoreDerived(derived []float64) float64 {
	acc := q.lin.Bias
	w := q.lin.W
	for i, ix := range q.idx {
		acc += int32(w[i]) * perceptron.QuantizeInput(derived[ix])
	}
	wEng := w[q.baseDim:]
	for j, a := range q.engA {
		qa := perceptron.QuantizeInput(derived[q.idx[a]])
		qb := perceptron.QuantizeInput(derived[q.idx[q.engB[j]]])
		acc += int32(wEng[j]) * ((qa * qb) >> perceptron.XShift)
	}
	return q.score(q.lin.SatAdd(acc, 0))
}

// ScoreBase scores a gathered normalized base-feature vector on the
// quantized path (the evasion tooling's vector form). Stateless.
//
//evaxlint:hotpath
func (q *QuantScorer) ScoreBase(base []float64) float64 {
	acc := q.lin.Bias
	w := q.lin.W
	for i := 0; i < q.baseDim; i++ {
		acc += int32(w[i]) * perceptron.QuantizeInput(base[i])
	}
	wEng := w[q.baseDim:]
	for j, a := range q.engA {
		qa := perceptron.QuantizeInput(base[a])
		qb := perceptron.QuantizeInput(base[q.engB[j]])
		acc += int32(wEng[j]) * ((qa * qb) >> perceptron.XShift)
	}
	return q.score(q.lin.SatAdd(acc, 0))
}

// ScoreDerivedRows scores rows of contiguous derived-space data on the
// quantized path. Zero heap allocations.
//
//evaxlint:hotpath
func (q *QuantScorer) ScoreDerivedRows(data []float64, stride int, out []float64) {
	rows := len(out)
	if len(data) != rows*stride {
		panic(fmt.Sprintf("kernel: ScoreDerivedRows dims: data %d, want %d rows of %d", len(data), rows, stride))
	}
	for r := 0; r < rows; r++ {
		out[r] = q.ScoreDerived(data[r*stride : (r+1)*stride])
	}
}
