// Package kernel implements the fused scoring kernel: a compiled scorer
// that walks a window's raw counters exactly once, computing derived-view
// expansion, max-normalization, feature gather, engineered AND-features and
// the perceptron dot product in a single loop. The legacy path materializes
// the full ~800-slot derived row (hpc.Expander.ExpandInto), normalizes every
// slot (dataset.NormalizeInPlace) and only then gathers the ~145 features a
// detector actually reads; the fused kernel computes *only* the gathered
// slots, with normalization folded into per-feature constants at compile
// time.
//
// Two backends share one shape:
//
//   - Scorer (float64) is bit-identical to the legacy path. It reuses
//     hpc.WindowTerms/hpc.EvalDerived for the per-slot formulas, applies
//     the exact normalize ops of dataset.NormalizeInPlace, and accumulates
//     the dot product in the exact order of ml.Network.Forward (bias first,
//     then ascending feature index), so the golden corpus FNV hashes and the
//     online/offline bit-equivalence tests pin it.
//
//   - QuantScorer (int8 weights / fixed-point inputs) extends the paper's
//     quantized hardware perceptron to the real feature space via
//     perceptron.QuantizedLinear. Quantization and normalization fold into
//     one multiply per feature (qx = round(v * XOne/max)), replacing the
//     float backend's divide — quantized inference is both fidelity to the
//     paper's HW detector and the fastest serving path. Accuracy is pinned
//     by a verdict-agreement gate against the float backend.
//
// The package deliberately depends only on hpc and perceptron: detect
// compiles plans into kernel.Config, so kernel must not import detect.
package kernel

import (
	"fmt"
	"math"

	"evax/internal/hpc"
)

// blockRows is the unroll factor of the batch entry points: rows scored per
// iteration over the contiguous backing, sized so the per-feature constants
// (source index, op, normalizer, weight) are loaded once per blockRows rows.
const blockRows = 4

// Config describes a fused scorer: the feature plan resolved to derived-space
// indices, the normalization maxima for those slots, the engineered
// AND-features over the gathered base space, and the linear model. Compile
// validates and freezes it.
type Config struct {
	// RawDim is the base counter space size (len of a raw sample row).
	RawDim int
	// Indices maps each base feature to its derived-space slot
	// (counter*NumDerivedKinds + view), exactly as a detect.FeaturePlan
	// resolves names.
	Indices []int
	// Norm holds the per-feature normalization maximum (the dataset maxima
	// at the feature's derived slot). Nil compiles a derived-only scorer:
	// ScoreDerived/ScoreBase work, the raw entry points panic.
	Norm []float64
	// EngA/EngB are the engineered AND-feature inputs as positions in the
	// gathered base space (featureng.ANDFeature.A/B).
	EngA, EngB []int
	// W and Bias are the single-layer model: len(W) == len(Indices) +
	// len(EngA), base weights first, engineered weights after — the exact
	// layout of the detector's input vector.
	W    []float64
	Bias float64
	// Threshold is the malicious decision boundary on the sigmoid output.
	Threshold float64
}

// Scorer is the compiled float64 backend. All compiled state is immutable
// after Compile; only the scratch rows mutate, so a Scorer must not be used
// from two goroutines at once — concurrent consumers Clone (compiled state
// is shared, scratch is per-clone).
type Scorer struct {
	rawDim  int
	baseDim int

	src  []int32           // per base feature: raw counter index
	op   []hpc.DerivedKind // per base feature: derived view
	norm []float64         // per base feature: normalization maximum (nil: derived-only)
	idx  []int32           // per base feature: derived-space slot

	engA []int32 // per engineered feature: base-space input positions
	engB []int32

	w         []float64 // base weights, then engineered weights
	bias      float64
	threshold float64

	x  []float64 // raw-path scratch: gathered normalized base features
	x4 []float64 // block-path scratch: blockRows rows of base features
}

// Compile validates a Config and builds the fused float scorer.
func Compile(cfg Config) (*Scorer, error) {
	if cfg.RawDim <= 0 {
		return nil, fmt.Errorf("kernel: raw dimension %d", cfg.RawDim)
	}
	baseDim := len(cfg.Indices)
	if baseDim == 0 {
		return nil, fmt.Errorf("kernel: empty feature plan")
	}
	if cfg.Norm != nil && len(cfg.Norm) != baseDim {
		return nil, fmt.Errorf("kernel: %d norm entries for %d features", len(cfg.Norm), baseDim)
	}
	if len(cfg.EngA) != len(cfg.EngB) {
		return nil, fmt.Errorf("kernel: %d engineered A inputs vs %d B inputs", len(cfg.EngA), len(cfg.EngB))
	}
	if want := baseDim + len(cfg.EngA); len(cfg.W) != want {
		return nil, fmt.Errorf("kernel: %d weights for %d features", len(cfg.W), want)
	}
	space := hpc.DerivedSpaceSize(cfg.RawDim)
	s := &Scorer{
		rawDim:    cfg.RawDim,
		baseDim:   baseDim,
		src:       make([]int32, baseDim),
		op:        make([]hpc.DerivedKind, baseDim),
		idx:       make([]int32, baseDim),
		engA:      make([]int32, len(cfg.EngA)),
		engB:      make([]int32, len(cfg.EngB)),
		w:         append([]float64(nil), cfg.W...),
		bias:      cfg.Bias,
		threshold: cfg.Threshold,
		x:         make([]float64, baseDim),
		x4:        make([]float64, blockRows*baseDim),
	}
	for i, ix := range cfg.Indices {
		if ix < 0 || ix >= space {
			return nil, fmt.Errorf("kernel: feature %d slot %d outside derived space [0,%d)", i, ix, space)
		}
		s.idx[i] = int32(ix)
		s.src[i] = int32(ix / int(hpc.NumDerivedKinds))
		s.op[i] = hpc.DerivedKind(ix % int(hpc.NumDerivedKinds))
	}
	for j := range cfg.EngA {
		a, b := cfg.EngA[j], cfg.EngB[j]
		if a < 0 || a >= baseDim || b < 0 || b >= baseDim {
			return nil, fmt.Errorf("kernel: engineered feature %d inputs (%d,%d) outside base space [0,%d)", j, a, b, baseDim)
		}
		s.engA[j] = int32(a)
		s.engB[j] = int32(b)
	}
	for i, w := range cfg.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("kernel: weight %d is %v", i, w)
		}
	}
	if math.IsNaN(cfg.Bias) || math.IsInf(cfg.Bias, 0) {
		return nil, fmt.Errorf("kernel: bias is %v", cfg.Bias)
	}
	if cfg.Norm != nil {
		s.norm = make([]float64, baseDim)
		for i, m := range cfg.Norm {
			if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
				return nil, fmt.Errorf("kernel: feature %d maximum %v", i, m)
			}
			s.norm[i] = m
		}
	}
	return s, nil
}

// MustCompile is Compile panicking on error — for configs assembled from
// already-validated plans.
func MustCompile(cfg Config) *Scorer {
	s, err := Compile(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Clone returns a scorer sharing all compiled state with its own scratch —
// the per-goroutine handle for concurrent scoring.
func (s *Scorer) Clone() *Scorer {
	c := *s
	c.x = make([]float64, s.baseDim)
	c.x4 = make([]float64, blockRows*s.baseDim)
	return &c
}

// RawDim returns the base counter space size.
func (s *Scorer) RawDim() int { return s.rawDim }

// BaseDim returns the number of gathered base features.
func (s *Scorer) BaseDim() int { return s.baseDim }

// Dim returns the full model input dimensionality (base + engineered).
func (s *Scorer) Dim() int { return len(s.w) }

// Threshold returns the malicious decision boundary.
func (s *Scorer) Threshold() float64 { return s.threshold }

// HasRaw reports whether the scorer was compiled with normalization maxima
// (required by the raw-counter entry points).
func (s *Scorer) HasRaw() bool { return s.norm != nil }

// sigmoid matches ml.Activation Sigmoid bit for bit.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// normClamp applies the exact normalize ops of dataset.NormalizeInPlace /
// hpc.Normalizer.Normalize to one value: divide by the maximum, clamp to 1,
// zero for never-observed slots.
func normClamp(v, max float64) float64 {
	if max > 0 {
		x := v / max
		if x > 1 {
			x = 1
		}
		return x
	}
	return 0
}

// ScoreRaw scores one window of raw counter deltas: derived-view expansion,
// normalization, gather, engineered features and the dot product fused into
// one pass over the gathered slots only. Bit-identical to
// ExpandInto→NormalizeInPlace→Detector.Score. Zero heap allocations.
//
//evaxlint:hotpath
func (s *Scorer) ScoreRaw(values []float64, instructions, cycles uint64) float64 {
	if len(values) != s.rawDim {
		panic(fmt.Sprintf("kernel: ScoreRaw row has %d counters, plan has %d", len(values), s.rawDim))
	}
	if s.norm == nil {
		panic("kernel: scorer compiled without normalization maxima")
	}
	total, instrK, cyc := hpc.WindowTerms(values, instructions, cycles)
	x := s.x
	z := s.bias
	for i, si := range s.src {
		xv := normClamp(hpc.EvalDerived(s.op[i], values[si], total, instrK, cyc), s.norm[i])
		x[i] = xv
		z += s.w[i] * xv
	}
	wEng := s.w[s.baseDim:]
	for j, a := range s.engA {
		e := x[a] * x[s.engB[j]]
		z += wEng[j] * e
	}
	return sigmoid(z)
}

// ScoreRawRows scores rows of contiguous raw counter data (len(out) rows of
// rawDim values each), processing blockRows rows per iteration so the
// per-feature constants are loaded once per block. instr and cycles are the
// per-row window lengths. Zero heap allocations.
//
//evaxlint:hotpath
func (s *Scorer) ScoreRawRows(raw []float64, instr, cycles []uint64, out []float64) {
	rows := len(out)
	if len(raw) != rows*s.rawDim || len(instr) != rows || len(cycles) != rows {
		panic(fmt.Sprintf("kernel: ScoreRawRows dims: raw %d (want %d), instr %d, cycles %d, out %d",
			len(raw), rows*s.rawDim, len(instr), len(cycles), rows))
	}
	r := 0
	for ; r+blockRows <= rows; r += blockRows {
		s.score4(raw[r*s.rawDim:(r+blockRows)*s.rawDim], instr[r:], cycles[r:], out[r:r+blockRows])
	}
	for ; r < rows; r++ {
		out[r] = s.ScoreRaw(raw[r*s.rawDim:(r+1)*s.rawDim], instr[r], cycles[r])
	}
}

// score4 is the unrolled block body: four rows share one sweep over the
// compiled per-feature constants. Each row's float op sequence is identical
// to ScoreRaw, so blocked and single-row scoring agree bit for bit.
func (s *Scorer) score4(raw []float64, instr, cycles []uint64, out []float64) {
	d := s.rawDim
	r0 := raw[0*d : 1*d]
	r1 := raw[1*d : 2*d]
	r2 := raw[2*d : 3*d]
	r3 := raw[3*d : 4*d]
	t0, k0, c0 := hpc.WindowTerms(r0, instr[0], cycles[0])
	t1, k1, c1 := hpc.WindowTerms(r1, instr[1], cycles[1])
	t2, k2, c2 := hpc.WindowTerms(r2, instr[2], cycles[2])
	t3, k3, c3 := hpc.WindowTerms(r3, instr[3], cycles[3])
	b := s.baseDim
	x0 := s.x4[0*b : 1*b]
	x1 := s.x4[1*b : 2*b]
	x2 := s.x4[2*b : 3*b]
	x3 := s.x4[3*b : 4*b]
	z0, z1, z2, z3 := s.bias, s.bias, s.bias, s.bias
	for i, si := range s.src {
		op, nm, wi := s.op[i], s.norm[i], s.w[i]
		v0 := normClamp(hpc.EvalDerived(op, r0[si], t0, k0, c0), nm)
		v1 := normClamp(hpc.EvalDerived(op, r1[si], t1, k1, c1), nm)
		v2 := normClamp(hpc.EvalDerived(op, r2[si], t2, k2, c2), nm)
		v3 := normClamp(hpc.EvalDerived(op, r3[si], t3, k3, c3), nm)
		x0[i], x1[i], x2[i], x3[i] = v0, v1, v2, v3
		z0 += wi * v0
		z1 += wi * v1
		z2 += wi * v2
		z3 += wi * v3
	}
	wEng := s.w[b:]
	for j, a := range s.engA {
		bb := s.engB[j]
		wj := wEng[j]
		e0 := x0[a] * x0[bb]
		e1 := x1[a] * x1[bb]
		e2 := x2[a] * x2[bb]
		e3 := x3[a] * x3[bb]
		z0 += wj * e0
		z1 += wj * e1
		z2 += wj * e2
		z3 += wj * e3
	}
	out[0], out[1], out[2], out[3] = sigmoid(z0), sigmoid(z1), sigmoid(z2), sigmoid(z3)
}

// ScoreDerived scores an already expanded and normalized derived-space row
// (the offline corpus form): gather and dot product fused, no scratch — the
// method is stateless and safe to share across goroutines. Bit-identical to
// FeaturePlan.GatherVector + Network.Forward.
//
//evaxlint:hotpath
func (s *Scorer) ScoreDerived(derived []float64) float64 {
	z := s.bias
	for i, ix := range s.idx {
		z += s.w[i] * derived[ix]
	}
	wEng := s.w[s.baseDim:]
	for j, a := range s.engA {
		e := derived[s.idx[a]] * derived[s.idx[s.engB[j]]]
		z += wEng[j] * e
	}
	return sigmoid(z)
}

// ScoreDerivedRows scores rows of contiguous derived-space data (stride
// floats per row, len(out) rows) — the SampleBlock batch form. Zero heap
// allocations.
//
//evaxlint:hotpath
func (s *Scorer) ScoreDerivedRows(data []float64, stride int, out []float64) {
	rows := len(out)
	if len(data) != rows*stride {
		panic(fmt.Sprintf("kernel: ScoreDerivedRows dims: data %d, want %d rows of %d", len(data), rows, stride))
	}
	for r := 0; r < rows; r++ {
		out[r] = s.ScoreDerived(data[r*stride : (r+1)*stride])
	}
}

// ScoreBase scores a gathered base-feature vector (len BaseDim), computing
// engineered features on the fly. Stateless. Bit-identical to
// Detector.ScoreBase.
//
//evaxlint:hotpath
func (s *Scorer) ScoreBase(base []float64) float64 {
	z := s.bias
	for i := 0; i < s.baseDim; i++ {
		z += s.w[i] * base[i]
	}
	wEng := s.w[s.baseDim:]
	for j, a := range s.engA {
		e := base[a] * base[s.engB[j]]
		z += wEng[j] * e
	}
	return sigmoid(z)
}

// Backend is the scoring interface the serving path binds to: one raw
// window, a contiguous raw block, and the decision boundary. Both the float
// and the quantized scorer implement it.
type Backend interface {
	ScoreRaw(values []float64, instructions, cycles uint64) float64
	ScoreRawRows(raw []float64, instr, cycles []uint64, out []float64)
	Threshold() float64
	// CloneBackend returns a backend sharing compiled state with private
	// scratch — the per-shard handle.
	CloneBackend() Backend
}

// CloneBackend implements Backend.
func (s *Scorer) CloneBackend() Backend { return s.Clone() }
