package kernel

import (
	"math"
	"math/rand"
	"testing"

	"evax/internal/hpc"
	"evax/internal/perceptron"
)

// randomScorer compiles a raw-capable scorer over a synthetic plan: nFeat
// features drawn across all derived views, nEng engineered pairs, random
// weights and maxima (a fraction of slots never observed → max 0).
func randomScorer(t *testing.T, seed int64, rawDim, nFeat, nEng int) *Scorer {
	t.Helper()
	s, err := randomScorerFrom(rand.New(rand.NewSource(seed)), rawDim, nFeat, nEng)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return s
}

func randomScorerFrom(rng *rand.Rand, rawDim, nFeat, nEng int) (*Scorer, error) {
	space := hpc.DerivedSpaceSize(rawDim)
	perm := rng.Perm(space)
	cfg := Config{
		RawDim:  rawDim,
		Indices: perm[:nFeat],
		Norm:    make([]float64, nFeat),
		W:       make([]float64, nFeat+nEng),
		Bias:    rng.NormFloat64(),
	}
	for i := range cfg.Norm {
		if rng.Intn(8) != 0 {
			cfg.Norm[i] = rng.Float64()*100 + 0.5
		}
	}
	for j := 0; j < nEng; j++ {
		cfg.EngA = append(cfg.EngA, rng.Intn(nFeat))
		cfg.EngB = append(cfg.EngB, rng.Intn(nFeat))
	}
	for i := range cfg.W {
		cfg.W[i] = rng.NormFloat64() * 0.4
	}
	return Compile(cfg)
}

// The kernel's fused integer accumulation (plain adds, one final clamp)
// must equal the perceptron reference model's per-add saturating Accumulate
// over the same fixed-point inputs — the hardware-equivalence contract.
func TestQuantAccumulateMatchesPerceptron(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := randomScorer(t, seed, 24, 40, 6)
		q, err := Quantize(s)
		if err != nil {
			t.Fatalf("Quantize: %v", err)
		}
		rng := rand.New(rand.NewSource(seed * 97))
		values := make([]float64, s.rawDim)
		for trial := 0; trial < 50; trial++ {
			for i := range values {
				values[i] = math.Floor(rng.Float64() * 200)
			}
			instr := uint64(rng.Intn(10_000))
			cycles := uint64(rng.Intn(20_000))
			acc := q.AccRaw(values, instr, cycles)
			// After AccRaw the scratch holds the fixed-point base
			// features; extend with the engineered Q8 products to form
			// the reference model's full input vector.
			qfull := append([]int32(nil), q.qx...)
			for j, a := range q.engA {
				qfull = append(qfull, (q.qx[a]*q.qx[q.engB[j]])>>perceptron.XShift)
			}
			if want := q.lin.Accumulate(qfull); acc != want {
				t.Fatalf("seed %d trial %d: fused acc %d != perceptron reference %d", seed, trial, acc, want)
			}
			// Score/Flag must be consistent views of the same accumulator.
			score := q.ScoreRaw(values, instr, cycles)
			if math.Float64bits(score) != math.Float64bits(sigmoid(q.lin.Dequant(acc))) {
				t.Fatalf("ScoreRaw inconsistent with AccRaw")
			}
		}
	}
}

// quantFold must agree with the unfused reference — normalize (divide +
// clamp) then fixed-point encode — within one quantization step, and agree
// exactly on the clamp boundaries.
func TestQuantFoldMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		max := rng.Float64()*50 + 0.01
		v := rng.Float64() * max * 1.5 // past the clamp some of the time
		folded := quantFold(v, perceptron.XOne/max)
		unfused := perceptron.QuantizeInput(normClamp(v, max))
		if d := folded - unfused; d < -1 || d > 1 {
			t.Fatalf("v=%v max=%v: folded %d vs unfused %d", v, max, folded, unfused)
		}
		if v >= max && folded != perceptron.XOne {
			t.Fatalf("v=%v max=%v: clamp missed, folded %d", v, max, folded)
		}
	}
	if quantFold(5, 0) != 0 {
		t.Fatal("never-observed slot must quantize to 0")
	}
	if quantFold(-1, 100) != 0 {
		t.Fatal("negative value must clamp to 0")
	}
}

// The threshold's accumulator image must implement the same decision as the
// sigmoid-domain comparison: acc >= accThresh ⟺ sigmoid(Dequant(acc)) >= t.
func TestAccThresholdMatchesSigmoidDecision(t *testing.T) {
	s := randomScorer(t, 3, 24, 40, 6)
	q, err := Quantize(s)
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	for _, thr := range []float64{0.2, 0.5, 0.6, 0.9} {
		q.SetThreshold(thr)
		for acc := int32(-40_000); acc <= 40_000; acc += 7 {
			intFlag := acc >= q.accThresh
			floatFlag := sigmoid(q.lin.Dequant(acc)) >= thr
			if intFlag != floatFlag {
				t.Fatalf("t=%v acc=%d: integer decision %v, sigmoid decision %v", thr, acc, intFlag, floatFlag)
			}
		}
	}
	q.SetThreshold(0)
	if !q.FlagRaw(make([]float64, s.rawDim), 1, 1) {
		t.Fatal("threshold 0 must flag everything")
	}
	q.SetThreshold(1)
	if q.FlagRaw(make([]float64, s.rawDim), 1, 1) {
		t.Fatal("threshold 1 must flag nothing")
	}
}
