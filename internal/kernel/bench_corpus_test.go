package kernel_test

import (
	"math/rand"
	"testing"

	"evax/internal/kernel"
)

// corpusRows stages the fixture corpus contiguously — the shard-flush shape
// both backends serve.
func corpusRows(b *testing.B) (*kernel.Scorer, *kernel.QuantScorer, []float64, []uint64, []uint64, []float64) {
	b.Helper()
	t := &testing.T{}
	f := buildFixture(t)
	if t.Failed() {
		b.Fatal("fixture build failed")
	}
	q, err := kernel.Quantize(f.kern)
	if err != nil {
		b.Fatalf("Quantize: %v", err)
	}
	n := len(f.ds.Samples)
	d := len(f.ds.Samples[0].Raw)
	raw := make([]float64, n*d)
	instr := make([]uint64, n)
	cycles := make([]uint64, n)
	for i := range f.ds.Samples {
		s := &f.ds.Samples[i]
		copy(raw[i*d:(i+1)*d], s.Raw)
		instr[i] = s.Instructions
		cycles[i] = s.Cycles
	}
	// Shuffle rows deterministically so branch predictors see serving-like
	// arrival order rather than campaign order.
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(n, func(i, j int) {
		copy(raw[i*d:(i+1)*d], raw[j*d:(j+1)*d])
		instr[i], instr[j] = instr[j], instr[i]
		cycles[i], cycles[j] = cycles[j], cycles[i]
	})
	return f.kern, q, raw, instr, cycles, make([]float64, n)
}

func BenchmarkCorpusRowsFloat(b *testing.B) {
	k, _, raw, instr, cycles, out := corpusRows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScoreRawRows(raw, instr, cycles, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(out)), "ns/sample")
}

func BenchmarkCorpusRowsQuant(b *testing.B) {
	_, q, raw, instr, cycles, out := corpusRows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScoreRawRows(raw, instr, cycles, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(out)), "ns/sample")
}
