package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"evax/internal/hpc"
)

// TestSwapperLifecycle: swap promotes the candidate and demotes the
// incumbent to the fallback slot; rollback exchanges them; every activation
// bumps the epoch; rolling back with no fallback is an error.
func TestSwapperLifecycle(t *testing.T) {
	a := testGen(t, 1, 0.5, "")
	b := testGen(t, 2, 0.5, "")

	sw := NewSwapper(a)
	if sw.Active() != a || sw.Fallback() != nil || sw.Epoch() != 1 {
		t.Fatalf("fresh swapper: active=%p fallback=%p epoch=%d", sw.Active(), sw.Fallback(), sw.Epoch())
	}
	if _, err := sw.Rollback(); !errors.Is(err, ErrNoFallback) {
		t.Fatalf("rollback with no fallback: %v", err)
	}

	if old := sw.Swap(b); old != a {
		t.Fatalf("swap demoted %p, want %p", old, a)
	}
	if sw.Active() != b || sw.Fallback() != a || sw.Epoch() != 2 {
		t.Fatalf("after swap: active=%p fallback=%p epoch=%d", sw.Active(), sw.Fallback(), sw.Epoch())
	}

	restored, err := sw.Rollback()
	if err != nil || restored != a {
		t.Fatalf("rollback: restored=%p err=%v, want %p", restored, err, a)
	}
	// The failed generation stays reachable in the fallback slot for
	// post-mortems (and for a deliberate roll-forward).
	if sw.Active() != a || sw.Fallback() != b || sw.Epoch() != 3 {
		t.Fatalf("after rollback: active=%p fallback=%p epoch=%d", sw.Active(), sw.Fallback(), sw.Epoch())
	}
}

// TestSwapperConcurrentActive races scorers resolving the active generation
// against a storm of swaps and rollbacks (run under -race): every resolution
// must observe a fully-built generation from the known set, and scoring
// through it must not tear.
func TestSwapperConcurrentActive(t *testing.T) {
	gens := []*Generation{
		testGen(t, 1, 0.5, ""),
		testGen(t, 2, 0.5, ""),
		testGen(t, 3, 0.5, ""),
	}
	known := map[*Generation]bool{gens[0]: true, gens[1]: true, gens[2]: true}
	sw := NewSwapper(gens[0])
	corpus := testCorpus(4, gens[0].RawDim())

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := sw.Active()
				if !known[g] {
					t.Errorf("resolved unknown generation %p", g)
					return
				}
				sc := g.NewScorer()
				s := &corpus[0]
				sc.Score(s.Raw, s.Instructions, s.Cycles)
			}
		}()
	}
	for i := 0; i < 300; i++ {
		sw.Swap(gens[i%len(gens)])
		if i%7 == 0 {
			if _, err := sw.Rollback(); err != nil {
				t.Errorf("rollback: %v", err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if sw.Epoch() < 300 {
		t.Fatalf("epoch %d after 300+ activations", sw.Epoch())
	}
}

// TestSwapFlagger: the swapper-backed flagger re-resolves per window — after
// a hot swap the very next window is judged by the new generation.
func TestSwapFlagger(t *testing.T) {
	// Sigmoid scores live in (0, 1): threshold 2 never flags, 0 always does.
	never := testGen(t, 4, 2, "")
	always := testGen(t, 4, 0, "")
	sw := NewSwapper(never)
	fl := sw.Flagger()

	corpus := testCorpus(1, never.RawDim())
	win := hpc.Sample{
		Values:       corpus[0].Raw,
		Instructions: corpus[0].Instructions,
		Cycles:       corpus[0].Cycles,
	}
	if fl.FlagWindow(win) {
		t.Fatal("threshold-2 generation flagged a window")
	}
	sw.Swap(always)
	if !fl.FlagWindow(win) {
		t.Fatal("swap did not reach the flagger: threshold -1 generation passed a window")
	}
	if _, err := sw.Rollback(); err != nil {
		t.Fatal(err)
	}
	if fl.FlagWindow(win) {
		t.Fatal("rollback did not reach the flagger")
	}
}
