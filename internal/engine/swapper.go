package engine

import (
	"errors"
	"sync"
	"sync/atomic"

	"evax/internal/defense"
	"evax/internal/hpc"
)

// ErrNoFallback is returned by Rollback when no fallback generation exists
// (the initial generation has nothing to roll back to).
var ErrNoFallback = errors.New("engine: no fallback generation to roll back to")

// Swapper holds the active/fallback generation slots — the EVE-style A/B
// partition pair. The active slot is an atomic pointer: the serving hot
// path resolves the current generation with a single load and zero
// allocations, while swaps and rollbacks serialize on a mutex. In-flight
// work keeps whatever generation it resolved, so a swap never invalidates a
// batch mid-score; the next resolution simply observes the new generation.
type Swapper struct {
	active atomic.Pointer[Generation]

	mu       sync.Mutex
	fallback *Generation

	// epoch counts activations (initial adoption, swaps, rollbacks) — the
	// generation sequence number reported next to the content hash.
	epoch atomic.Uint64
}

// NewSwapper adopts initial as the active generation (epoch 1) with no
// fallback.
func NewSwapper(initial *Generation) *Swapper {
	s := &Swapper{}
	s.active.Store(initial)
	s.epoch.Store(1)
	return s
}

// Active returns the current generation: one atomic load, safe from any
// goroutine, zero allocations.
func (s *Swapper) Active() *Generation { return s.active.Load() }

// Fallback returns the fallback generation (nil before the first swap).
func (s *Swapper) Fallback() *Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fallback
}

// Epoch returns the activation sequence number: it increments on every
// swap and rollback, so (epoch, hash) identifies which generation answered.
func (s *Swapper) Epoch() uint64 { return s.epoch.Load() }

// Swap atomically promotes cand to active and demotes the previous active
// to the fallback slot, returning the demoted generation. In-flight batches
// that already resolved the old generation finish on it.
func (s *Swapper) Swap(cand *Generation) *Generation {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.active.Load()
	s.active.Store(cand)
	s.fallback = old
	s.epoch.Add(1)
	return old
}

// Rollback atomically re-activates the fallback generation, demoting the
// failed active into the fallback slot (so a post-mortem can still reach
// it). It is the recovery edge of the generation state machine: a failed
// post-swap health probe lands here.
func (s *Swapper) Rollback() (*Generation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fallback == nil {
		return nil, ErrNoFallback
	}
	failed := s.active.Load()
	s.active.Store(s.fallback)
	s.fallback = failed
	s.epoch.Add(1)
	return s.active.Load(), nil
}

// Flagger returns a defense controller flagger that resolves the active
// generation per window: after a hot swap the very next sampled window
// scores on the new generation, with the per-generation pipeline cached so
// the steady state allocates nothing.
func (s *Swapper) Flagger() defense.Flagger {
	return &swapFlagger{sw: s}
}

// swapFlagger adapts the swapper to defense.Flagger. Single-goroutine, like
// every controller flagger.
type swapFlagger struct {
	sw  *Swapper
	gen *Generation
	fl  *defense.DetectorFlagger
}

// FlagWindow implements defense.Flagger, re-resolving the pipeline only
// when the active generation changed.
//
//evaxlint:hotpath
func (f *swapFlagger) FlagWindow(s hpc.Sample) bool {
	g := f.sw.Active()
	if g != f.gen {
		f.fl = defense.NewDetectorFlagger(g.det, g.ds) //evaxlint:ignore hotpath per-swap flagger rebuild; steady state reuses the cached pipeline
		f.gen = g
	}
	return f.fl.FlagWindow(s)
}
