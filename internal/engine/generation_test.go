package engine

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/sim"
)

// testParts builds an untrained (but seeded, so non-trivially weighted)
// perceptron over the EVAX feature set plus unit maxima: structurally valid,
// deterministic, and cheap — lifecycle tests need shape, not accuracy.
func testParts(t *testing.T, seed int64) (*detect.Detector, *dataset.Dataset) {
	t.Helper()
	fs := detect.EVAXBase()
	fs.SetEngineered(detect.DefaultEngineered(fs))
	d := detect.NewPerceptron(seed, fs)
	maxima := make([]float64, hpc.DerivedSpaceSize(sim.CounterCatalog().Len()))
	for i := range maxima {
		maxima[i] = 1
	}
	return d, dataset.FromMaxima(maxima)
}

// testGen builds an in-memory generation with the given seed and detector
// threshold. Distinct (seed, threshold) pairs yield distinct bundle bytes,
// hence distinct content hashes.
func testGen(t *testing.T, seed int64, threshold float64, backend string) *Generation {
	t.Helper()
	det, ds := testParts(t, seed)
	det.Threshold = threshold
	g, err := New(det, ds, backend)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testCorpus fabricates n deterministic raw counter windows of the
// generation's dimensionality.
func testCorpus(n, rawDim int) []dataset.Sample {
	out := make([]dataset.Sample, n)
	for i := range out {
		raw := make([]float64, rawDim)
		for j := range raw {
			raw[j] = float64((i*31 + j*7) % 97)
		}
		out[i] = dataset.Sample{Raw: raw, Instructions: 2000, Cycles: 3100}
	}
	return out
}

func TestValidBackend(t *testing.T) {
	for s, want := range map[string]bool{
		"":               true,
		BackendFloat:     true,
		BackendQuantized: true,
		"int8":           false,
		"Float":          false,
		"quantised":      false,
	} {
		if got := ValidBackend(s); got != want {
			t.Errorf("ValidBackend(%q) = %v, want %v", s, got, want)
		}
	}
	det, ds := testParts(t, 1)
	g, err := New(det, ds, "fpga")
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend: g=%v err=%v", g, err)
	}
}

// TestGenerationHashLineage: the same bundle yields the same content hash
// whether built in memory, saved and re-loaded, or decoded from bytes — the
// provenance operators see in logs and /metrics is a function of the bundle
// alone.
func TestGenerationHashLineage(t *testing.T) {
	det, ds := testParts(t, 5)
	mem, err := New(det, ds, "")
	if err != nil {
		t.Fatal(err)
	}
	if mem.Hash() == 0 || mem.HashHex() != strings.ToLower(mem.HashHex()) || len(mem.HashHex()) != 16 {
		t.Fatalf("hash rendering: %d %q", mem.Hash(), mem.HashHex())
	}
	if mem.Path() != "" {
		t.Fatalf("in-memory generation has path %q", mem.Path())
	}

	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := defense.SaveBundle(path, det, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, BackendFloat)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash() != mem.Hash() {
		t.Fatalf("loaded hash %s != in-memory hash %s", loaded.HashHex(), mem.HashHex())
	}
	if loaded.Path() != path {
		t.Fatalf("loaded path %q, want %q", loaded.Path(), path)
	}
	if loaded.RawDim() != sim.CounterCatalog().Len() {
		t.Fatalf("rawDim %d, want catalog %d", loaded.RawDim(), sim.CounterCatalog().Len())
	}

	// A different detector seed is a different bundle, hence a different hash.
	other := testGen(t, 6, det.Threshold, "")
	if other.Hash() == mem.Hash() {
		t.Fatal("distinct bundles collided on content hash")
	}
}

func TestFromBytesRejectsGarbage(t *testing.T) {
	if _, err := FromBytes([]byte("{oops"), "x.json", ""); err == nil {
		t.Fatal("garbage bytes built a generation")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json"), ""); err == nil {
		t.Fatal("missing file built a generation")
	}
}

// TestBackends: the float backend is selected by default (empty string), the
// quantized backend compiles for the perceptron, and both report coherent
// thresholds.
func TestBackends(t *testing.T) {
	g := testGen(t, 7, 0.5, "")
	if g.Backend() != BackendFloat {
		t.Fatalf("default backend %q, want %q", g.Backend(), BackendFloat)
	}
	q := testGen(t, 7, 0.5, BackendQuantized)
	if q.Backend() != BackendQuantized {
		t.Fatalf("backend %q, want %q", q.Backend(), BackendQuantized)
	}
	if g.Threshold() != q.Threshold() {
		t.Fatalf("float threshold %v != quantized threshold %v", g.Threshold(), q.Threshold())
	}
}

// TestScorerDeterminism: two scorers resolved from the same generation agree
// bit-for-bit, and the batch path reproduces the single-row path.
func TestScorerDeterminism(t *testing.T) {
	g := testGen(t, 9, 0.5, "")
	corpus := testCorpus(32, g.RawDim())

	a, b := g.NewScorer(), g.NewScorer()
	if a.Generation() != g || a.Threshold() != g.Threshold() {
		t.Fatal("scorer does not mirror its generation")
	}
	raw := make([]float64, 0, len(corpus)*g.RawDim())
	instr := make([]uint64, len(corpus))
	cycles := make([]uint64, len(corpus))
	single := make([]float64, len(corpus))
	for i := range corpus {
		s := &corpus[i]
		raw = append(raw, s.Raw...)
		instr[i], cycles[i] = s.Instructions, s.Cycles
		single[i] = a.Score(s.Raw, s.Instructions, s.Cycles)
		if got := b.Score(s.Raw, s.Instructions, s.Cycles); got != single[i] {
			t.Fatalf("row %d: scorer B %v != scorer A %v", i, got, single[i])
		}
	}
	batch := make([]float64, len(corpus))
	a.ScoreBatch(raw, instr, cycles, batch)
	if !reflect.DeepEqual(batch, single) {
		t.Fatal("batch scores diverge from single-row scores")
	}
}

// TestScoreBatchZeroAlloc: the shard flush path must not allocate in steady
// state — the zero-downtime swap design hinges on per-batch resolution being
// free.
func TestScoreBatchZeroAlloc(t *testing.T) {
	g := testGen(t, 9, 0.5, "")
	corpus := testCorpus(16, g.RawDim())
	sc := g.NewScorer()
	raw := make([]float64, 0, len(corpus)*g.RawDim())
	instr := make([]uint64, len(corpus))
	cycles := make([]uint64, len(corpus))
	out := make([]float64, len(corpus))
	for i := range corpus {
		raw = append(raw, corpus[i].Raw...)
		instr[i], cycles[i] = corpus[i].Instructions, corpus[i].Cycles
	}
	if n := testing.AllocsPerRun(50, func() {
		sc.ScoreBatch(raw, instr, cycles, out)
	}); n != 0 {
		t.Fatalf("ScoreBatch allocates %.1f times per batch, want 0", n)
	}
}

// isAlwaysOn reports whether fl is the AlwaysOn flagger (func identity).
func isAlwaysOn(fl defense.Flagger) bool {
	f, ok := fl.(defense.FlaggerFunc)
	return ok && reflect.ValueOf(f).Pointer() == reflect.ValueOf(defense.AlwaysOn).Pointer()
}

// TestLoadFlaggerOrSecure: a broken or missing bundle degrades to the
// always-secure flagger with the cause reported; a valid bundle yields the
// generation's detector flagger.
func TestLoadFlaggerOrSecure(t *testing.T) {
	fl, err := LoadFlaggerOrSecure(filepath.Join(t.TempDir(), "missing.json"))
	if err == nil || !isAlwaysOn(fl) {
		t.Fatalf("missing bundle: flagger %T, err %v", fl, err)
	}

	det, ds := testParts(t, 3)
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := defense.SaveBundle(path, det, ds); err != nil {
		t.Fatal(err)
	}
	fl, err = LoadFlaggerOrSecure(path)
	if err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	if _, ok := fl.(*defense.DetectorFlagger); !ok {
		t.Fatalf("valid bundle yielded %T, want *defense.DetectorFlagger", fl)
	}
}
