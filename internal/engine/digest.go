package engine

import "math"

// The verdict digest commits to every score bit and flag decision in corpus
// order: two scoring runs agree iff their verdicts are bit-identical. It is
// the determinism contract shared by serve's replay, the canary gate, and
// the post-swap health probe — "post-swap replay digest equals the
// candidate's canary digest" is an equality of these sums.
const (
	digestOffset uint64 = 14695981039346656037
	digestPrime  uint64 = 1099511628211
)

// Digest accumulates an FNV-1a verdict digest.
type Digest struct {
	h       uint64
	rows    int
	flagged int
}

// NewDigest starts an empty digest.
func NewDigest() Digest { return Digest{h: digestOffset} }

// Add folds one verdict in: the raw score bits, then the flag decision.
func (d *Digest) Add(score float64, flagged bool) {
	v := math.Float64bits(score)
	for s := 0; s < 64; s += 8 {
		d.h ^= uint64(byte(v >> s))
		d.h *= digestPrime
	}
	var fb uint64
	if flagged {
		fb = 1
		d.flagged++
	}
	d.h ^= fb
	d.h *= digestPrime
	d.rows++
}

// Sum returns the digest over everything added so far.
func (d *Digest) Sum() uint64 { return d.h }

// Rows returns how many verdicts were folded in.
func (d *Digest) Rows() int { return d.rows }

// Flagged returns how many folded verdicts were flagged.
func (d *Digest) Flagged() int { return d.flagged }
