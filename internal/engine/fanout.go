package engine

import (
	"errors"
	"fmt"
)

// ErrFleetPartial means a fleet-wide promotion failed on some shard and the
// shards that had already swapped were rolled back to the incumbent pair.
var ErrFleetPartial = errors.New("engine: fleet promotion failed, swapped shards rolled back")

// FleetSwapReport records one fleet-wide promotion attempt: the per-shard
// reports in shard order, plus whether every shard ended the attempt on the
// same active hash and epoch — the alignment invariant a coordinator-driven
// swap must restore before it counts as done.
type FleetSwapReport struct {
	// Shards holds each manager's SwapReport, indexed by shard.
	Shards []SwapReport `json:"shards"`
	// Swapped reports whether any shard performed a live swap. False on a
	// fleet-wide no-op: the candidate already matched every incumbent, so
	// the fleet is on the target generation without an epoch bump.
	Swapped bool `json:"swapped"`
	// RolledBack reports whether a partial failure forced rollbacks.
	RolledBack bool `json:"rolled_back"`
	// Aligned reports whether all shards finished on the same active hash.
	Aligned bool `json:"aligned"`
	// EpochAligned reports whether all shards finished on the same epoch.
	EpochAligned bool `json:"epoch_aligned"`
	// ActiveHash is the common active hash when Aligned, else "".
	ActiveHash string `json:"active_hash,omitempty"`
	// Epoch is the common epoch when EpochAligned, else 0.
	Epoch uint64 `json:"epoch,omitempty"`
}

// alignment fills the Aligned/EpochAligned summary from the per-shard
// reports.
func (r *FleetSwapReport) alignment(mgrs []*Manager) {
	r.Aligned = true
	r.EpochAligned = true
	for i, m := range mgrs {
		hash := m.Active().HashHex()
		epoch := m.Swapper().Epoch()
		if i == 0 {
			r.ActiveHash = hash
			r.Epoch = epoch
			continue
		}
		if hash != r.ActiveHash {
			r.Aligned = false
		}
		if epoch != r.Epoch {
			r.EpochAligned = false
		}
	}
	if !r.Aligned {
		r.ActiveHash = ""
	}
	if !r.EpochAligned {
		r.Epoch = 0
	}
}

// PromoteAllFile fans one candidate bundle across every shard manager with
// all-or-rollback semantics: shards are promoted sequentially in shard order
// (each runs its own canary gate and post-swap probe), and the first failure
// rolls back every shard that had already swapped, so the fleet never stays
// split across two generations. A per-shard no-op promotion (candidate
// identical to that shard's incumbent) counts as success — it leaves the
// shard on the target generation already.
//
// Shards are expected to start epoch-aligned (same swap history); the report
// says whether they ended that way.
func PromoteAllFile(mgrs []*Manager, path string) (FleetSwapReport, error) {
	rep := FleetSwapReport{Shards: make([]SwapReport, 0, len(mgrs))}
	if len(mgrs) == 0 {
		return rep, errors.New("engine: fleet promotion over zero shards")
	}

	var failed error
	for i, m := range mgrs {
		sr, err := m.PromoteFile(path)
		rep.Shards = append(rep.Shards, sr)
		if err != nil {
			failed = fmt.Errorf("engine: shard %d: %w", i, err)
			break
		}
	}

	if failed == nil {
		for _, sr := range rep.Shards {
			if sr.Swapped {
				rep.Swapped = true
			}
		}
		rep.alignment(mgrs)
		return rep, nil
	}

	// Unwind: roll back every shard whose attempt actually swapped. Shards
	// that no-opped (identical candidate) or failed never left the incumbent,
	// so rolling them back would push them BEHIND the fleet.
	var unwind []error
	for i := len(rep.Shards) - 1; i >= 0; i-- {
		if !rep.Shards[i].Swapped || rep.Shards[i].RolledBack {
			continue
		}
		rb, err := mgrs[i].Rollback()
		rep.Shards[i] = rb
		rep.RolledBack = true
		if err != nil {
			unwind = append(unwind, fmt.Errorf("engine: shard %d rollback: %w", i, err))
		}
	}
	rep.alignment(mgrs)
	err := fmt.Errorf("%w: %w", ErrFleetPartial, failed)
	if len(unwind) > 0 {
		err = errors.Join(err, errors.Join(unwind...))
	}
	return rep, err
}
