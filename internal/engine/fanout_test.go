package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// fleetFixture builds n managers all serving the same initial generation
// with the same canary corpus — the epoch-aligned starting state a fleet
// coordinator assumes.
func fleetFixture(t *testing.T, n int) []*Manager {
	t.Helper()
	mgrs := make([]*Manager, n)
	for i := range mgrs {
		active := testGen(t, 1, 2, "")
		corpus := testCorpus(24, active.RawDim())
		mgr, err := NewManager(active, ManagerConfig{Corpus: corpus})
		if err != nil {
			t.Fatal(err)
		}
		mgrs[i] = mgr
	}
	return mgrs
}

// TestPromoteAllFileHappyPath: the candidate lands on every shard, the fleet
// ends aligned on its hash at epoch 2, and each per-shard report is a real
// gated promotion.
func TestPromoteAllFileHappyPath(t *testing.T) {
	mgrs := fleetFixture(t, 3)
	incumbent := mgrs[0].Active().HashHex()
	cand := filepath.Join(t.TempDir(), "cand.json")
	writeCandidate(t, cand, 2, 3) // same verdicts (none flagged), different bytes

	rep, err := PromoteAllFile(mgrs, cand)
	if err != nil {
		t.Fatalf("promote all: %v (report %+v)", err, rep)
	}
	if !rep.Swapped || rep.RolledBack || !rep.Aligned || !rep.EpochAligned {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Epoch != 2 || rep.ActiveHash == incumbent || rep.ActiveHash == "" {
		t.Fatalf("fleet lineage: %+v", rep)
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("per-shard reports: %d, want 3", len(rep.Shards))
	}
	for i, sr := range rep.Shards {
		if !sr.Swapped || sr.ActiveHash != rep.ActiveHash || sr.Epoch != 2 || sr.CanaryRows == 0 {
			t.Fatalf("shard %d report: %+v", i, sr)
		}
	}
	for i, m := range mgrs {
		if m.Active().HashHex() != rep.ActiveHash {
			t.Fatalf("shard %d active %s, want %s", i, m.Active().HashHex(), rep.ActiveHash)
		}
	}
}

// TestPromoteAllFileAllOrRollback: a failing shard (its health probe
// rejects) forces every already-swapped shard back to the incumbent — the
// fleet never stays split across two generations.
func TestPromoteAllFileAllOrRollback(t *testing.T) {
	mgrs := fleetFixture(t, 3)
	incumbent := mgrs[0].Active().HashHex()
	// Shard 2's probe always fails: its own Promote swaps then rolls back,
	// and the fan-out must unwind shards 0 and 1.
	active := testGen(t, 1, 2, "")
	failing, err := NewManager(active, ManagerConfig{
		Corpus: testCorpus(24, active.RawDim()),
		Probe:  func(*Generation) error { return fmt.Errorf("injected probe failure") },
	})
	if err != nil {
		t.Fatal(err)
	}
	mgrs[2] = failing

	cand := filepath.Join(t.TempDir(), "cand.json")
	writeCandidate(t, cand, 2, 3)
	rep, err := PromoteAllFile(mgrs, cand)
	if !errors.Is(err, ErrFleetPartial) {
		t.Fatalf("err = %v, want ErrFleetPartial", err)
	}
	if rep.Swapped || !rep.RolledBack {
		t.Fatalf("report: %+v", rep)
	}
	if !rep.Aligned || rep.ActiveHash != incumbent {
		t.Fatalf("fleet not restored to the incumbent: %+v", rep)
	}
	// Every shard walked swap (epoch 2) then rollback (epoch 3), so the
	// fleet is epoch-aligned even after the unwind.
	if !rep.EpochAligned || rep.Epoch != 3 {
		t.Fatalf("epochs diverged after unwind: %+v", rep)
	}
	for i, m := range mgrs {
		if m.Active().HashHex() != incumbent {
			t.Fatalf("shard %d left on %s, want incumbent %s", i, m.Active().HashHex(), incumbent)
		}
	}
}

// TestPromoteAllFileIdenticalNoOp: promoting the bundle the fleet already
// serves is a fleet-wide no-op — no swap, no epoch movement, still aligned.
func TestPromoteAllFileIdenticalNoOp(t *testing.T) {
	mgrs := fleetFixture(t, 2)
	incumbent := mgrs[0].Active()
	same := filepath.Join(t.TempDir(), "same.json")
	writeCandidate(t, same, 1, 2) // identical parts: same bundle bytes, same hash

	rep, err := PromoteAllFile(mgrs, same)
	if err != nil {
		t.Fatalf("no-op promote errored: %v", err)
	}
	if rep.Swapped {
		t.Fatalf("fleet report claims a live swap for an identical candidate: %+v", rep)
	}
	for i, sr := range rep.Shards {
		if sr.Swapped {
			t.Fatalf("shard %d swapped an identical candidate: %+v", i, sr)
		}
	}
	if !rep.Aligned || !rep.EpochAligned || rep.Epoch != 1 || rep.ActiveHash != incumbent.HashHex() {
		t.Fatalf("no-op moved the fleet: %+v", rep)
	}
}
