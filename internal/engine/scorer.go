package engine

import (
	"evax/internal/dataset"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/kernel"
)

// Scorer is one consumer's handle on a generation's scoring pipeline: the
// compiled kernel shared with the generation plus private scratch (a kernel
// clone, or for deep detectors a detector clone and expansion row). A
// scorer is single-goroutine; each serve shard, replay worker, and flagger
// holds its own. After construction the score path performs zero heap
// allocations, and the float path is bit-identical to
// detect.Detector.Score over the same rows.
type Scorer struct {
	gen    *Generation
	be     kernel.Backend
	rawDim int

	// Legacy fallback (deep detectors): detector clone + expansion scratch.
	det     *detect.Detector
	ds      *dataset.Dataset
	exp     *hpc.Expander
	derived []float64
}

// NewScorer builds a private scoring handle on the generation. All fallible
// work (decode, validation, kernel compile) happened when the generation
// was built, so handle construction cannot fail — which is what lets the
// serve hot path rebuild its handle inline when a swap lands.
func (g *Generation) NewScorer() *Scorer {
	sc := &Scorer{gen: g, rawDim: g.rawDim}
	if g.be != nil {
		sc.be = g.be.CloneBackend()
		return sc
	}
	exp := hpc.NewExpander(g.rawDim)
	sc.det = g.det.Clone()
	sc.ds = g.ds
	sc.exp = exp
	sc.derived = make([]float64, exp.Dim())
	return sc
}

// Generation returns the generation this scorer was resolved from —
// consumers compare it against Swapper.Active to decide when to re-resolve.
func (sc *Scorer) Generation() *Generation { return sc.gen }

// Score runs the pipeline on one raw window. Zero allocations.
func (sc *Scorer) Score(raw []float64, instructions, cycles uint64) float64 {
	if sc.be != nil {
		return sc.be.ScoreRaw(raw, instructions, cycles)
	}
	sc.exp.ExpandInto(sc.derived, hpc.Sample{
		Values:       raw,
		Instructions: instructions,
		Cycles:       cycles,
	})
	sc.ds.NormalizeInPlace(sc.derived)
	return sc.det.Score(sc.derived)
}

// ScoreBatch scores rows of contiguous raw windows (len(out) rows of rawDim
// values) — the shard flush form, one fused-kernel sweep over the whole
// batch. Zero allocations.
//
//evaxlint:hotpath
func (sc *Scorer) ScoreBatch(raw []float64, instr, cycles []uint64, out []float64) {
	if sc.be != nil {
		sc.be.ScoreRawRows(raw, instr, cycles, out)
		return
	}
	for i := range out {
		out[i] = sc.Score(raw[i*sc.rawDim:(i+1)*sc.rawDim], instr[i], cycles[i])
	}
}

// Threshold exposes the decision boundary of the compiled backend.
func (sc *Scorer) Threshold() float64 {
	if sc.be != nil {
		return sc.be.Threshold()
	}
	return sc.det.Threshold
}
