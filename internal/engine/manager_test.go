package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/faultinject"
	"evax/internal/safeio"
)

// writeCandidate saves a bundle file with the given seed and threshold —
// the unit the watch directory and admin swap frame deal in.
func writeCandidate(t *testing.T, path string, seed int64, threshold float64) {
	t.Helper()
	det, ds := testParts(t, seed)
	det.Threshold = threshold
	if err := defense.SaveBundle(path, det, ds); err != nil {
		t.Fatal(err)
	}
}

// managerFixture builds a persisted manager whose active generation flags
// no corpus row (sigmoid scores sit in (0,1), threshold 2), so verdict
// agreement against candidates is exact and deterministic: threshold 3
// agrees on every row, threshold 0 disagrees on every row.
func managerFixture(t *testing.T, dir string) (*Manager, *Generation, []dataset.Sample) {
	t.Helper()
	active := testGen(t, 1, 2, "")
	corpus := testCorpus(24, active.RawDim())
	mgr, err := NewManager(active, ManagerConfig{Dir: dir, Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	return mgr, active, corpus
}

// TestManagerPromoteAndRecover: the full happy path — canary passes, the
// candidate is durably staged, the swap lands, the default digest probe
// passes — and a fresh Open of the state directory recovers the exact
// active/fallback pair at the same epoch (the kill-after-swap crash shape).
func TestManagerPromoteAndRecover(t *testing.T) {
	dir := t.TempDir()
	mgr, active, corpus := managerFixture(t, dir)
	if !HasState(dir) {
		t.Fatal("NewManager with a Dir left no recoverable state")
	}

	cand := testGen(t, 2, 3, "") // same verdicts (none flagged), different bytes
	rep, err := mgr.Promote(cand)
	if err != nil {
		t.Fatalf("promote: %v (report %+v)", err, rep)
	}
	if !rep.Swapped || rep.RolledBack {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Agreement != 1 || rep.CanaryRows != len(corpus) || rep.CanaryDigest == "" {
		t.Fatalf("canary numbers: %+v", rep)
	}
	if rep.PrevHash != active.HashHex() || rep.ActiveHash != cand.HashHex() || rep.Epoch != 2 {
		t.Fatalf("lineage: %+v", rep)
	}
	if mgr.Active() != cand || mgr.Swapper().Fallback() != active {
		t.Fatal("in-memory slots do not match the report")
	}

	reopened, err := Open(ManagerConfig{Dir: dir, Corpus: corpus})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := reopened.Active(); got.Hash() != cand.Hash() {
		t.Fatalf("recovered active %s, want %s", got.HashHex(), cand.HashHex())
	}
	if fb := reopened.Swapper().Fallback(); fb == nil || fb.Hash() != active.Hash() {
		t.Fatal("recovered manager lost the fallback generation")
	}
	if reopened.Swapper().Epoch() != 2 {
		t.Fatalf("recovered epoch %d, want 2", reopened.Swapper().Epoch())
	}
}

// TestManagerCanaryGateRejects: a candidate that flips every verdict never
// goes live — the active generation, epoch, and on-disk ledger are all
// untouched, and the report carries the agreement numbers.
func TestManagerCanaryGateRejects(t *testing.T) {
	dir := t.TempDir()
	mgr, active, corpus := managerFixture(t, dir)

	hostile := testGen(t, 3, 0, "") // flags everything: agreement 0
	rep, err := mgr.Promote(hostile)
	if !errors.Is(err, ErrCanaryRejected) {
		t.Fatalf("err = %v, want ErrCanaryRejected", err)
	}
	if rep.Swapped || rep.RolledBack || rep.Agreement != 0 || rep.CanaryRows != len(corpus) {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ActiveHash != active.HashHex() || mgr.Active() != active || mgr.Swapper().Epoch() != 1 {
		t.Fatal("rejected candidate moved the active generation")
	}

	reopened, err := Open(ManagerConfig{Dir: dir})
	if err != nil || reopened.Active().Hash() != active.Hash() {
		t.Fatalf("ledger moved for a rejected candidate: %v", err)
	}
	// The staged files never include the rejected candidate.
	if _, err := os.Stat(filepath.Join(dir, genFileName(hostile))); !os.IsNotExist(err) {
		t.Fatalf("rejected candidate was staged: %v", err)
	}
}

// TestManagerProbeFailureRollsBack: the candidate passes the gate and goes
// live, but the post-swap health probe fails — the manager rolls back to the
// incumbent and persists the restored pair, so a crash right after also
// recovers the incumbent.
func TestManagerProbeFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	active := testGen(t, 1, 2, "")
	corpus := testCorpus(24, active.RawDim())
	probeErr := errors.New("latency regression")
	probed := 0
	mgr, err := NewManager(active, ManagerConfig{
		Dir:    dir,
		Corpus: corpus,
		Probe: func(g *Generation) error {
			probed++
			return fmt.Errorf("probe: %w", probeErr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	cand := testGen(t, 2, 3, "")
	rep, perr := mgr.Promote(cand)
	if !errors.Is(perr, ErrProbeFailed) || !errors.Is(perr, probeErr) {
		t.Fatalf("err = %v, want ErrProbeFailed wrapping the probe cause", perr)
	}
	if probed != 1 {
		t.Fatalf("probe ran %d times, want 1", probed)
	}
	if rep.Swapped || !rep.RolledBack {
		t.Fatalf("report: %+v", rep)
	}
	if mgr.Active() != active || rep.ActiveHash != active.HashHex() {
		t.Fatal("rollback did not restore the incumbent")
	}

	reopened, err := Open(ManagerConfig{Dir: dir})
	if err != nil || reopened.Active().Hash() != active.Hash() {
		t.Fatalf("crash after rollback does not recover the incumbent: %v", err)
	}
}

// TestManagerIdenticalCandidate: re-promoting the active bundle is a no-op,
// not an error — the watch loop sees the same file every scan.
func TestManagerIdenticalCandidate(t *testing.T) {
	mgr, active, _ := managerFixture(t, "")
	same, err := New(active.Detector(), active.Dataset(), "")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.Promote(same)
	if err != nil || rep.Swapped || rep.Reason == "" {
		t.Fatalf("identical candidate: rep=%+v err=%v", rep, err)
	}
	if mgr.Swapper().Epoch() != 1 {
		t.Fatal("identical candidate bumped the epoch")
	}
}

// TestManagerRejectsRaggedCanaryRow: a malformed golden corpus fails closed
// before any swap.
func TestManagerRejectsRaggedCanaryRow(t *testing.T) {
	active := testGen(t, 1, 2, "")
	corpus := testCorpus(8, active.RawDim())
	corpus[5].Raw = corpus[5].Raw[:3]
	mgr, err := NewManager(active, ManagerConfig{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Promote(testGen(t, 2, 3, "")); err == nil {
		t.Fatal("ragged canary row accepted")
	}
	if mgr.Active() != active {
		t.Fatal("ragged canary moved the active generation")
	}
}

// TestManagerTornCandidateStaging: the simulated power cut lands on the
// candidate's staging write — the promotion fails before the swap, the
// incumbent keeps serving, and the state directory still recovers it.
func TestManagerTornCandidateStaging(t *testing.T) {
	dir := t.TempDir()
	mgr, active, _ := managerFixture(t, dir)

	cand := testGen(t, 2, 3, "")
	restore := safeio.SetHook(faultinject.TornPathHook(genFileName(cand), 0))
	rep, err := mgr.Promote(cand)
	restore()
	if !errors.Is(err, safeio.ErrTorn) {
		t.Fatalf("torn staging err = %v, want ErrTorn", err)
	}
	if rep.Swapped || mgr.Active() != active || mgr.Swapper().Epoch() != 1 {
		t.Fatalf("torn staging changed the serving state: %+v", rep)
	}

	reopened, oerr := Open(ManagerConfig{Dir: dir})
	if oerr != nil || reopened.Active().Hash() != active.Hash() {
		t.Fatalf("recovery after torn staging: %v", oerr)
	}

	// The same candidate promotes cleanly once the fault clears.
	if rep, err := mgr.Promote(cand); err != nil || !rep.Swapped {
		t.Fatalf("retry after torn staging: rep=%+v err=%v", rep, err)
	}
}

// TestManagerTornLedgerWrite: the power cut lands between the swap and the
// ledger replacement (kill-mid-swap). The in-memory swap is undone so memory
// and disk agree, and recovery yields the incumbent.
func TestManagerTornLedgerWrite(t *testing.T) {
	dir := t.TempDir()
	mgr, active, _ := managerFixture(t, dir)

	cand := testGen(t, 2, 3, "")
	restore := safeio.SetHook(faultinject.TornPathHook(stateFileName, 0))
	rep, err := mgr.Promote(cand)
	restore()
	if !errors.Is(err, safeio.ErrTorn) {
		t.Fatalf("torn ledger err = %v, want ErrTorn", err)
	}
	if rep.Swapped {
		t.Fatalf("report claims a swap that was not persisted: %+v", rep)
	}
	if mgr.Active() != active {
		t.Fatal("in-memory active diverged from the on-disk ledger")
	}

	reopened, oerr := Open(ManagerConfig{Dir: dir})
	if oerr != nil || reopened.Active().Hash() != active.Hash() {
		t.Fatalf("recovery after torn ledger: %v", oerr)
	}
}

// TestOpenRecoversFallbackWhenActiveBroken: a torn active slot degrades to
// the fallback generation — the same decision a live health probe makes,
// taken at recovery time. With both slots broken, Open fails and the staged
// files also refuse to load as plain bundles, so callers degrade to the
// always-secure flagger.
func TestOpenRecoversFallbackWhenActiveBroken(t *testing.T) {
	dir := t.TempDir()
	mgr, active, _ := managerFixture(t, dir)
	cand := testGen(t, 2, 3, "")
	if _, err := mgr.Promote(cand); err != nil {
		t.Fatal(err)
	}

	// Tear the active slot's staged file (partial write: truncated JSON).
	activeFile := filepath.Join(dir, genFileName(cand))
	if err := safeio.WriteFile(activeFile, []byte(`{"detector":`), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(ManagerConfig{Dir: dir})
	if err != nil {
		t.Fatalf("open with broken active slot: %v", err)
	}
	if reopened.Active().Hash() != active.Hash() {
		t.Fatalf("recovered %s, want fallback %s", reopened.Active().HashHex(), active.HashHex())
	}
	if reopened.Swapper().Fallback() != nil {
		t.Fatal("broken active slot must not come back as a rollback target")
	}

	// Now break the fallback slot too: recovery has nothing left.
	fallbackFile := filepath.Join(dir, genFileName(active))
	if err := safeio.WriteFile(fallbackFile, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ManagerConfig{Dir: dir}); err == nil {
		t.Fatal("open recovered a manager from two broken slots")
	}

	// The staged generation files are plain bundles; with both torn, the
	// defense loader degrades to always-secure rather than refusing to run.
	for _, path := range []string{activeFile, fallbackFile} {
		fl, err := defense.LoadBundleOrSecure(path)
		if err == nil || !isAlwaysOn(fl) {
			t.Fatalf("%s: flagger %T err %v, want AlwaysOn with cause", path, fl, err)
		}
	}
}

// TestManagerManualRollback: the admin-frame escape hatch restores the
// fallback and persists the restored pair.
func TestManagerManualRollback(t *testing.T) {
	dir := t.TempDir()
	mgr, active, _ := managerFixture(t, dir)
	cand := testGen(t, 2, 3, "")
	if _, err := mgr.Promote(cand); err != nil {
		t.Fatal(err)
	}

	rep, err := mgr.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledBack || rep.ActiveHash != active.HashHex() || mgr.Active().Hash() != active.Hash() {
		t.Fatalf("manual rollback: %+v", rep)
	}
	reopened, err := Open(ManagerConfig{Dir: dir})
	if err != nil || reopened.Active().Hash() != active.Hash() {
		t.Fatalf("rollback not persisted: %v", err)
	}

	// With no fallback (fresh manager), rollback reports the error.
	fresh, err := NewManager(testGen(t, 9, 2, ""), ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Rollback(); !errors.Is(err, ErrNoFallback) {
		t.Fatalf("rollback with no fallback: %v", err)
	}
}

// TestManagerRescan: the intake scan is deterministic (sorted names), skips
// non-bundles, reports unreadable candidates without aborting, and decides
// every content hash exactly once — including under a rename.
func TestManagerRescan(t *testing.T) {
	intake := t.TempDir()
	mgr, _, _ := managerFixture(t, "")

	writeCandidate(t, filepath.Join(intake, "b_cand.json"), 2, 3)
	if err := safeio.WriteFile(filepath.Join(intake, "a_garbage.json"), []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := safeio.WriteFile(filepath.Join(intake, "notes.txt"), []byte("not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(intake, "sub.json"), 0o755); err != nil {
		t.Fatal(err)
	}

	reports, err := mgr.Rescan(intake)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2: %+v", len(reports), reports)
	}
	if !strings.HasSuffix(reports[0].CandidatePath, "a_garbage.json") || reports[0].Reason == "" {
		t.Fatalf("report order/garbage handling: %+v", reports[0])
	}
	if !strings.HasSuffix(reports[1].CandidatePath, "b_cand.json") || !reports[1].Swapped {
		t.Fatalf("candidate report: %+v", reports[1])
	}

	// Second scan: everything already decided, nothing re-litigated.
	reports, err = mgr.Rescan(intake)
	if err != nil || len(reports) != 0 {
		t.Fatalf("rescan re-decided candidates: %+v (%v)", reports, err)
	}

	// The same content under a new name is still the same decision.
	data, err := os.ReadFile(filepath.Join(intake, "b_cand.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := safeio.WriteFile(filepath.Join(intake, "c_copy.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	reports, err = mgr.Rescan(intake)
	if err != nil || len(reports) != 0 {
		t.Fatalf("renamed copy re-promoted: %+v (%v)", reports, err)
	}

	epoch := mgr.Swapper().Epoch()
	if epoch != 2 {
		t.Fatalf("epoch %d after one real promotion, want 2", epoch)
	}
}
