// Package engine owns the bundle→detector→scorer lifecycle: it turns a
// deployable detection bundle into an immutable, versioned Generation
// (content hash + compiled float/quantized kernel + flagger wiring) and
// hot-swaps generations behind an atomic pointer with canary gating,
// crash-safe staging, and automatic rollback — the paper's "pro-active &
// adaptive" loop made operational (live vaccination). Every serving
// consumer (serve shards, the defense flagger, replay) resolves its scorer
// per batch from the Swapper's current generation, so a validated candidate
// goes live with zero dropped frames: in-flight batches finish on the
// generation they started on, and the next batch scores on the new one.
//
// The package is the only one allowed to load bundles from disk (the
// evaxlint bundleload rule): defense.DecodeBundle validates bytes, engine
// decides which bytes are trusted to go live. See DESIGN.md §14 for the
// generation state machine (staged → canaried → active → fallback →
// rolled-back).
package engine

import (
	"fmt"
	"os"

	"evax/internal/dataset"
	"evax/internal/defense"
	"evax/internal/detect"
	"evax/internal/hpc"
	"evax/internal/kernel"
	"evax/internal/safeio"
)

// Backend selectors: the fused float kernel (bit-identical to offline
// scoring) and the quantized int8 kernel (the paper's hardware arithmetic;
// fastest, gated by verdict agreement). The empty string means float.
const (
	BackendFloat     = "float"
	BackendQuantized = "quantized"
)

// ValidBackend reports whether s names a scoring backend. Flag handlers
// should call this before any construction so an operator typo surfaces as
// a clean usage message, not a deep compile error.
func ValidBackend(s string) bool {
	switch s {
	case BackendFloat, BackendQuantized, "":
		return true
	}
	return false
}

// Generation is one immutable, versioned deployment of the detection
// pipeline: the bundle's content hash (FNV-1a over the bundle bytes — the
// provenance operators see in logs, stats frames and /metrics), the decoded
// detector + normalizer, and the kernel compiled for the selected backend.
// A Generation never mutates after construction; consumers share it freely
// and clone per-consumer scratch through NewScorer.
type Generation struct {
	hash    uint64
	path    string
	backend string
	data    []byte // encoded bundle bytes, the unit the manager persists

	det    *detect.Detector
	ds     *dataset.Dataset
	rawDim int

	// be is the compiled master backend (nil for deep detectors, which
	// score through the legacy three-pass pipeline per scorer).
	be kernel.Backend
}

// build compiles a generation from decoded parts.
func build(det *detect.Detector, ds *dataset.Dataset, backend, path string, data []byte) (*Generation, error) {
	g := &Generation{
		hash:    safeio.Checksum(data),
		path:    path,
		backend: backend,
		data:    data,
		det:     det,
		ds:      ds,
	}
	k, err := detect.CompileScorer(det, ds.Maxima())
	switch backend {
	case BackendQuantized:
		if err != nil {
			return nil, fmt.Errorf("engine: quantized backend: %w", err)
		}
		q, qerr := kernel.Quantize(k)
		if qerr != nil {
			return nil, fmt.Errorf("engine: quantized backend: %w", qerr)
		}
		g.be = q
		g.rawDim = k.RawDim()
	case BackendFloat, "":
		g.backend = BackendFloat
		if err == nil {
			g.be = k
			g.rawDim = k.RawDim()
		} else {
			// Deep detector: keep the legacy expand→normalize→score path;
			// the raw dimension follows from the derived space the
			// normalizer covers.
			g.rawDim = ds.DerivedDim / int(hpc.NumDerivedKinds)
		}
	default:
		return nil, fmt.Errorf("engine: unknown backend %q (want %q or %q)", backend, BackendFloat, BackendQuantized)
	}
	return g, nil
}

// New builds a generation from an in-memory detector and normalizer. The
// content hash is computed over the encoded bundle bytes, so an in-memory
// generation and the same bundle loaded from disk report the same
// provenance lineage.
func New(det *detect.Detector, ds *dataset.Dataset, backend string) (*Generation, error) {
	data, err := defense.EncodeBundle(det, ds)
	if err != nil {
		return nil, err
	}
	return FromBytes(data, "", backend)
}

// FromBytes decodes, validates and compiles bundle bytes into a generation.
// path is recorded for provenance only.
func FromBytes(data []byte, path, backend string) (*Generation, error) {
	det, ds, err := defense.DecodeBundle(data)
	if err != nil {
		if path != "" {
			return nil, fmt.Errorf("engine: bundle %s: %w", path, err)
		}
		return nil, err
	}
	return build(det, ds, backend, path, data)
}

// Load reads a bundle file into a generation: the one sanctioned
// disk→generation path (evaxlint's bundleload rule confines bundle loading
// to this package).
func Load(path, backend string) (*Generation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(data, path, backend)
}

// Hash returns the FNV-1a content hash of the generation's bundle bytes.
func (g *Generation) Hash() uint64 { return g.hash }

// HashHex renders the content hash the way logs, stats frames and /metrics
// report it.
func (g *Generation) HashHex() string { return fmt.Sprintf("%016x", g.hash) }

// Path returns the bundle file this generation was loaded from ("" for
// in-memory generations).
func (g *Generation) Path() string { return g.path }

// Backend returns the compiled backend selector (BackendFloat for deep
// detectors, which fall back to the legacy pipeline).
func (g *Generation) Backend() string { return g.backend }

// RawDim returns the base counter-space width clients must stream.
func (g *Generation) RawDim() int { return g.rawDim }

// Threshold exposes the decision boundary of the compiled backend.
func (g *Generation) Threshold() float64 {
	if g.be != nil {
		return g.be.Threshold()
	}
	return g.det.Threshold
}

// Detector returns the decoded detector. Callers must not mutate it; clone
// first (generations are immutable).
func (g *Generation) Detector() *detect.Detector { return g.det }

// Dataset returns the normalizer the detector was trained with.
func (g *Generation) Dataset() *dataset.Dataset { return g.ds }

// Flagger returns a defense controller flagger pinned to this generation.
func (g *Generation) Flagger() defense.Flagger {
	return defense.NewDetectorFlagger(g.det, g.ds)
}

// LoadFlaggerOrSecure loads a bundle into a generation and returns its
// flagger, degrading to the AlwaysOn flagger when the bundle is missing,
// torn, or fails validation — the paper's safe default (full protection, no
// performance recovery) until a valid detector update arrives. The error
// explains why the fallback engaged; the returned Flagger is usable either
// way.
func LoadFlaggerOrSecure(path string) (defense.Flagger, error) {
	g, err := Load(path, BackendFloat)
	if err != nil {
		return defense.AlwaysOn, err
	}
	return g.Flagger(), nil
}
