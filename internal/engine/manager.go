package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"evax/internal/dataset"
	"evax/internal/safeio"
)

// Sentinel outcomes of the live-vaccination loop. Both are returned wrapped
// with the candidate's provenance; the SwapReport alongside carries the
// numbers.
var (
	// ErrCanaryRejected means the candidate's verdicts disagreed with the
	// active generation beyond the configured gate; it never went live.
	ErrCanaryRejected = errors.New("engine: canary gate rejected candidate")
	// ErrProbeFailed means the candidate went live but the post-swap health
	// probe failed, and the swapper rolled back to the previous generation.
	ErrProbeFailed = errors.New("engine: post-swap probe failed, rolled back")
)

// DefaultAgreementGate is the canary verdict-agreement floor applied when
// ManagerConfig leaves AgreementGate zero: a candidate may flip at most one
// verdict in two hundred against the active generation on the golden corpus.
const DefaultAgreementGate = 0.995

// stateFile is the recovery root inside a manager state directory: it names
// which staged generation file is active and which is the fallback. It is
// only ever replaced atomically (safeio), after the generation files it
// points at are durably on disk — so a crash at any instant leaves a state
// that recovers either the old generation pair or the new one, never a torn
// hybrid.
const stateFileName = "state.json"

// HasState reports whether dir holds a recoverable generation ledger — the
// "should I Open or NewManager?" probe daemons run at startup.
func HasState(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, stateFileName))
	return err == nil
}

// state is the persisted swap ledger.
type state struct {
	Seq      uint64 `json:"seq"`
	Active   string `json:"active"`
	Fallback string `json:"fallback,omitempty"`
}

// ManagerConfig configures the live-vaccination loop.
type ManagerConfig struct {
	// Dir is the state directory for crash-safe staging ("" disables
	// persistence: swaps still happen, nothing survives a restart).
	Dir string
	// Backend selects the scoring kernel candidates are compiled for.
	Backend string
	// Corpus is the golden replay corpus candidates are canary-scored
	// against. Empty means swaps are ungated (trust the bundle validation
	// alone) — fine for tests, not recommended in production.
	Corpus []dataset.Sample
	// AgreementGate is the minimum verdict agreement (flag decisions, not
	// raw scores) a candidate must reach against the active generation on
	// the corpus. Zero means DefaultAgreementGate.
	AgreementGate float64
	// Probe, when set, replaces the default post-swap health probe (re-score
	// the corpus through the swapped-in generation and require its digest to
	// equal the canary digest). A non-nil error triggers automatic rollback.
	Probe func(g *Generation) error
}

func (c ManagerConfig) gate() float64 {
	if c.AgreementGate <= 0 {
		return DefaultAgreementGate
	}
	return c.AgreementGate
}

// SwapReport records one promotion attempt end to end. Hashes and digests
// are rendered as fixed-width hex strings: the report travels through JSON
// (admin frames, BENCH_runner.json), where raw uint64s would lose precision
// past 2^53.
type SwapReport struct {
	// CandidatePath is the bundle file the candidate came from ("" for
	// in-memory candidates).
	CandidatePath string `json:"candidate_path,omitempty"`
	// CandidateHash is the candidate bundle's FNV-1a content hash.
	CandidateHash string `json:"candidate_hash"`
	// PrevHash is the generation that was active when the attempt started —
	// the incumbent the canary compared against.
	PrevHash string `json:"prev_hash"`
	// ActiveHash is the generation left active when the attempt finished.
	ActiveHash string `json:"active_hash"`
	// Epoch is the swapper's activation sequence number after the attempt.
	Epoch uint64 `json:"epoch"`
	// CanaryRows is how many golden-corpus rows the canary scored (0 means
	// the swap was ungated).
	CanaryRows int `json:"canary_rows"`
	// Agreement is the fraction of canary rows where candidate and incumbent
	// flag decisions matched (1 when ungated).
	Agreement float64 `json:"agreement"`
	// Gate is the agreement floor the candidate had to clear.
	Gate float64 `json:"gate"`
	// CanaryDigest is the candidate's verdict digest over the corpus — the
	// value the post-swap replay digest must reproduce.
	CanaryDigest string `json:"canary_digest,omitempty"`
	// Swapped reports whether the candidate went (and stayed) live.
	Swapped bool `json:"swapped"`
	// RolledBack reports whether the candidate went live and was then rolled
	// back by a failed health probe.
	RolledBack bool `json:"rolled_back"`
	// Reason explains a rejected or rolled-back attempt.
	Reason string `json:"reason,omitempty"`
}

// Manager drives the generation state machine (staged → canaried → active →
// fallback → rolled-back; DESIGN.md §14) over a Swapper, with crash-safe
// persistence of the active/fallback pair under Dir.
type Manager struct {
	cfg ManagerConfig
	sw  *Swapper

	mu   sync.Mutex
	seen map[uint64]bool // candidate hashes already decided, for Rescan dedup
}

// NewManager adopts initial as the first active generation. With a state
// directory configured, the initial generation is staged and the ledger
// written before the manager is returned, so a crash immediately after
// startup already recovers to it.
func NewManager(initial *Generation, cfg ManagerConfig) (*Manager, error) {
	m := &Manager{
		cfg:  cfg,
		sw:   NewSwapper(initial),
		seen: map[uint64]bool{initial.Hash(): true},
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: state dir: %w", err)
		}
		if err := m.persistLocked(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Open recovers a manager from a state directory written by a previous
// process. Recovery prefers the active slot; if its file is missing, torn,
// or fails validation, the fallback slot is tried — mirroring at runtime
// what Rollback does live. Only when both slots are unrecoverable does Open
// fail (callers then degrade to the secure AlwaysOn policy).
func Open(cfg ManagerConfig) (*Manager, error) {
	data, err := os.ReadFile(filepath.Join(cfg.Dir, stateFileName))
	if err != nil {
		return nil, fmt.Errorf("engine: open state: %w", err)
	}
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("engine: open state: %w", err)
	}
	if st.Active == "" {
		return nil, fmt.Errorf("engine: open state: ledger names no active generation")
	}

	active, aerr := Load(filepath.Join(cfg.Dir, st.Active), cfg.Backend)
	var fallback *Generation
	if st.Fallback != "" {
		// The fallback slot is allowed to be broken as long as the active
		// one recovers; it just cannot serve as a rollback target.
		//evaxlint:ignore droppederr a torn fallback degrades to no-fallback, it does not fail recovery
		fallback, _ = Load(filepath.Join(cfg.Dir, st.Fallback), cfg.Backend)
	}
	if aerr != nil {
		if fallback == nil {
			return nil, fmt.Errorf("engine: open state: active slot unrecoverable (%v) and no valid fallback", aerr)
		}
		// Active slot is torn or invalid: recover on the fallback, exactly
		// the decision a live health probe would have made.
		active, fallback = fallback, nil
	}

	m := &Manager{
		cfg:  cfg,
		sw:   NewSwapper(active),
		seen: map[uint64]bool{active.Hash(): true},
	}
	m.sw.epoch.Store(st.Seq)
	if fallback != nil {
		m.sw.fallback = fallback
		m.seen[fallback.Hash()] = true
	}
	return m, nil
}

// Swapper exposes the active/fallback slots consumers resolve scorers from.
func (m *Manager) Swapper() *Swapper { return m.sw }

// Active returns the currently serving generation.
func (m *Manager) Active() *Generation { return m.sw.Active() }

// genFileName is the staged filename for a generation — content-addressed,
// so re-staging the same bundle is idempotent and two generations never
// collide.
func genFileName(g *Generation) string {
	return fmt.Sprintf("gen-%016x.json", g.Hash())
}

// persistLocked stages the current active/fallback generation files and then
// atomically replaces the ledger to point at them. Callers hold m.mu (or are
// inside construction, before the manager escapes).
func (m *Manager) persistLocked() error {
	if m.cfg.Dir == "" {
		return nil
	}
	st := state{Seq: m.sw.Epoch()}
	active := m.sw.Active()
	if err := safeio.WriteFile(filepath.Join(m.cfg.Dir, genFileName(active)), active.data, 0o644); err != nil {
		return fmt.Errorf("engine: staging active generation: %w", err)
	}
	st.Active = genFileName(active)
	if fb := m.sw.fallback; fb != nil {
		if err := safeio.WriteFile(filepath.Join(m.cfg.Dir, genFileName(fb)), fb.data, 0o644); err != nil {
			return fmt.Errorf("engine: staging fallback generation: %w", err)
		}
		st.Fallback = genFileName(fb)
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("engine: encoding state: %w", err)
	}
	if err := safeio.WriteFile(filepath.Join(m.cfg.Dir, stateFileName), data, 0o644); err != nil {
		return fmt.Errorf("engine: writing state: %w", err)
	}
	return nil
}

// verdicts scores the golden corpus through g sequentially (canary scoring
// is off the serving path) and returns the per-row flag decisions plus the
// verdict digest in corpus order.
func (m *Manager) verdicts(g *Generation) ([]bool, Digest, error) {
	for i, s := range m.cfg.Corpus {
		if len(s.Raw) != g.RawDim() {
			return nil, Digest{}, fmt.Errorf("engine: canary row %d has %d counters, generation wants %d",
				i, len(s.Raw), g.RawDim())
		}
	}
	sc := g.NewScorer()
	thr := sc.Threshold()
	flags := make([]bool, len(m.cfg.Corpus))
	d := NewDigest()
	for i := range m.cfg.Corpus {
		s := &m.cfg.Corpus[i]
		score := sc.Score(s.Raw, s.Instructions, s.Cycles)
		flags[i] = score >= thr
		d.Add(score, flags[i])
	}
	return flags, d, nil
}

// Promote runs one candidate through the full live-vaccination sequence:
// canary-score against the golden corpus, gate on verdict agreement with the
// incumbent, durably stage, atomically swap, then health-probe the swapped-in
// generation — rolling back (and persisting the restored pair) if the probe
// fails. The returned report is filled in every outcome; the error is nil
// only when the candidate ends up live.
func (m *Manager) Promote(cand *Generation) (SwapReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	incumbent := m.sw.Active()
	rep := SwapReport{
		CandidatePath: cand.Path(),
		CandidateHash: cand.HashHex(),
		PrevHash:      incumbent.HashHex(),
		ActiveHash:    incumbent.HashHex(),
		Epoch:         m.sw.Epoch(),
		Gate:          m.cfg.gate(),
		Agreement:     1,
	}
	m.seen[cand.Hash()] = true

	if cand.Hash() == incumbent.Hash() {
		rep.Reason = "candidate is identical to the active generation"
		return rep, nil
	}
	if cand.RawDim() != incumbent.RawDim() {
		// Connected clients agreed on the counter dimensionality at hello; a
		// generation that changes it can never swap in live.
		err := fmt.Errorf("engine: candidate streams %d raw counters, active generation streams %d",
			cand.RawDim(), incumbent.RawDim())
		rep.Reason = err.Error()
		return rep, err
	}

	// Canary: the candidate must reproduce the incumbent's flag decisions on
	// the golden corpus up to the configured gate.
	var canary Digest
	if len(m.cfg.Corpus) > 0 {
		candFlags, candDigest, err := m.verdicts(cand)
		if err != nil {
			rep.Reason = err.Error()
			return rep, err
		}
		actFlags, _, err := m.verdicts(incumbent)
		if err != nil {
			rep.Reason = err.Error()
			return rep, err
		}
		agree := 0
		for i := range candFlags {
			if candFlags[i] == actFlags[i] {
				agree++
			}
		}
		canary = candDigest
		rep.CanaryRows = len(candFlags)
		rep.Agreement = float64(agree) / float64(len(candFlags))
		rep.CanaryDigest = fmt.Sprintf("%016x", canary.Sum())
		if rep.Agreement < rep.Gate {
			err := fmt.Errorf("%w: agreement %.6f < gate %.6f over %d rows",
				ErrCanaryRejected, rep.Agreement, rep.Gate, rep.CanaryRows)
			rep.Reason = err.Error()
			return rep, err
		}
	}

	// Durably stage the candidate before it serves: crash after the swap
	// must recover the new generation, crash before must recover the old.
	if m.cfg.Dir != "" {
		if err := safeio.WriteFile(filepath.Join(m.cfg.Dir, genFileName(cand)), cand.data, 0o644); err != nil {
			err = fmt.Errorf("engine: staging candidate: %w", err)
			rep.Reason = err.Error()
			return rep, err
		}
	}

	m.sw.Swap(cand)
	if err := m.persistLocked(); err != nil {
		// The ledger still names the old pair: undo the in-memory swap so
		// memory and disk agree.
		//evaxlint:ignore droppederr fallback is non-nil right after a swap
		m.sw.Rollback()
		rep.Epoch = m.sw.Epoch()
		rep.Reason = err.Error()
		return rep, err
	}

	// Post-swap health probe: by default the swapped-in generation must
	// reproduce the canary digest, proving the slot that is now serving
	// scores exactly like the candidate the gate approved.
	perr := m.probeLocked(canary)
	if perr != nil {
		//evaxlint:ignore droppederr fallback is non-nil right after a swap
		m.sw.Rollback()
		if err := m.persistLocked(); err != nil {
			perr = errors.Join(perr, err)
		}
		rep.Epoch = m.sw.Epoch()
		rep.ActiveHash = m.sw.Active().HashHex()
		rep.RolledBack = true
		err := fmt.Errorf("%w: %w", ErrProbeFailed, perr)
		rep.Reason = err.Error()
		return rep, err
	}

	rep.Epoch = m.sw.Epoch()
	rep.ActiveHash = cand.HashHex()
	rep.Swapped = true
	return rep, nil
}

// probeLocked runs the post-swap health probe against the now-active
// generation.
func (m *Manager) probeLocked(canary Digest) error {
	g := m.sw.Active()
	if m.cfg.Probe != nil {
		return m.cfg.Probe(g)
	}
	if len(m.cfg.Corpus) == 0 {
		return nil
	}
	_, d, err := m.verdicts(g)
	if err != nil {
		return err
	}
	if d.Sum() != canary.Sum() {
		return fmt.Errorf("engine: post-swap digest %016x != canary digest %016x", d.Sum(), canary.Sum())
	}
	return nil
}

// PromoteFile loads a candidate bundle from disk and promotes it.
func (m *Manager) PromoteFile(path string) (SwapReport, error) {
	cand, err := Load(path, m.cfg.Backend)
	if err != nil {
		m.mu.Lock()
		active := m.sw.Active().HashHex()
		epoch := m.sw.Epoch()
		m.mu.Unlock()
		return SwapReport{
			CandidatePath: path,
			PrevHash:      active,
			ActiveHash:    active,
			Epoch:         epoch,
			Gate:          m.cfg.gate(),
			Reason:        err.Error(),
		}, err
	}
	return m.Promote(cand)
}

// Rollback re-activates the fallback generation on operator demand (the
// admin-frame escape hatch) and persists the restored pair.
func (m *Manager) Rollback() (SwapReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	prev := m.sw.Active()
	rep := SwapReport{
		PrevHash:   prev.HashHex(),
		ActiveHash: prev.HashHex(),
		Epoch:      m.sw.Epoch(),
		Gate:       m.cfg.gate(),
		Agreement:  1,
	}
	restored, err := m.sw.Rollback()
	if err != nil {
		rep.Reason = err.Error()
		return rep, err
	}
	rep.Epoch = m.sw.Epoch()
	rep.ActiveHash = restored.HashHex()
	rep.CandidateHash = restored.HashHex()
	rep.RolledBack = true
	rep.Swapped = true
	if err := m.persistLocked(); err != nil {
		rep.Reason = err.Error()
		return rep, err
	}
	return rep, nil
}

// Rescan walks a candidate intake directory deterministically (sorted file
// names) and promotes every not-yet-seen bundle, in order. A candidate's
// content hash is marked seen whether or not it goes live, so a rejected or
// torn bundle is decided once, not re-litigated every scan. Unreadable
// files are reported, not fatal: the scan continues.
func (m *Manager) Rescan(dir string) ([]SwapReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: rescan: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)

	var reports []SwapReport
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			reports = append(reports, SwapReport{
				CandidatePath: path,
				Gate:          m.cfg.gate(),
				Reason:        err.Error(),
			})
			continue
		}
		hash := safeio.Checksum(data)
		m.mu.Lock()
		decided := m.seen[hash]
		m.seen[hash] = true
		m.mu.Unlock()
		if decided {
			continue
		}
		cand, err := FromBytes(data, path, m.cfg.Backend)
		if err != nil {
			reports = append(reports, SwapReport{
				CandidatePath: path,
				CandidateHash: fmt.Sprintf("%016x", hash),
				Gate:          m.cfg.gate(),
				Reason:        err.Error(),
			})
			continue
		}
		//evaxlint:ignore droppederr the report's Reason carries the outcome either way
		rep, _ := m.Promote(cand)
		reports = append(reports, rep)
	}
	return reports, nil
}
