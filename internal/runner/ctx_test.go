package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapErrCtxEquivalentToMapErr pins the compatibility contract: without
// cancellation, retry, or timeout, the Ctx variant is bit-identical to
// MapErr for every worker count.
func TestMapErrCtxEquivalentToMapErr(t *testing.T) {
	fn := func(i int) (int, error) { return i*i + 7, nil }
	ref, err := MapErr(Options{Jobs: 1}, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 2, 4, 100} {
		got, rep, err := MapErrCtx(context.Background(), Options{Jobs: jobs}, 50,
			func(_ context.Context, i int) (int, error) { return fn(i) })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("jobs=%d diverged from MapErr", jobs)
		}
		if rep.CompletedCount() != 50 {
			t.Fatalf("jobs=%d: %d slots completed, want 50", jobs, rep.CompletedCount())
		}
	}
}

// TestMapErrCtxCancellation cancels mid-run and checks the report: every
// slot marked completed holds the correct value, and no new jobs start
// after cancellation.
func TestMapErrCtxCancellation(t *testing.T) {
	for _, jobs := range []int{2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		o := Options{Jobs: jobs}
		const cancelAfter = 5
		o.OnJobDone = func(done int) {
			if done >= cancelAfter {
				cancel()
			}
		}
		results, rep, err := MapErrCtx(ctx, o, 200, func(_ context.Context, i int) (int, error) {
			return 3 * i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		n := rep.CompletedCount()
		if n < cancelAfter || n >= 200 {
			t.Fatalf("jobs=%d: %d slots completed, want in [%d,200)", jobs, n, cancelAfter)
		}
		for _, i := range rep.CompletedSlots() {
			if results[i] != 3*i {
				t.Fatalf("jobs=%d: completed slot %d holds %d, want %d", jobs, i, results[i], 3*i)
			}
		}
		// Uncompleted slots were either never started or are attributable:
		// attempts for never-started slots must be zero.
		for i, c := range rep.Completed {
			if !c && rep.Attempts[i] != 0 {
				t.Fatalf("jobs=%d: slot %d not completed but has %d attempts and nil error",
					jobs, i, rep.Attempts[i])
			}
		}
	}
}

// TestRetryDeterministic injects failures on the first k attempts of
// selected jobs; with enough retry budget the output must be bit-identical
// to a fault-free run, and the attempt counts must match the schedule.
func TestRetryDeterministic(t *testing.T) {
	failsFor := func(i int) int { return i % 3 } // jobs 0,3,6.. never fail; 2,5,.. fail twice
	mk := func() func(context.Context, int) (int, error) {
		var tries [30]atomic.Int32
		return func(_ context.Context, i int) (int, error) {
			if int(tries[i].Add(1)) <= failsFor(i) {
				return 0, Retryable(fmt.Errorf("transient fault on job %d", i))
			}
			return i + 100, nil
		}
	}
	ref, _, err := MapErrCtx(context.Background(), Options{Jobs: 1}, 30,
		func(_ context.Context, i int) (int, error) { return i + 100, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		o := Options{Jobs: jobs, Retry: Retry{Attempts: 3, Backoff: time.Microsecond}}
		got, rep, err := MapErrCtx(context.Background(), o, 30, mk())
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("jobs=%d: retried run diverged from fault-free reference", jobs)
		}
		for i := 0; i < 30; i++ {
			if want := failsFor(i) + 1; rep.Attempts[i] != want {
				t.Fatalf("jobs=%d: job %d took %d attempts, want %d", jobs, i, rep.Attempts[i], want)
			}
		}
	}
}

// TestRetryBudgetExhausted: a job that keeps failing surfaces its last
// error with lowest-index attribution, and non-retryable errors never
// retry.
func TestRetryBudgetExhausted(t *testing.T) {
	o := Options{Jobs: 2, Retry: Retry{Attempts: 3, Backoff: time.Microsecond}}
	_, rep, err := MapErrCtx(context.Background(), o, 8, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, Retryable(errors.New("always failing"))
		}
		if i == 6 {
			return 0, errors.New("fatal: not retryable")
		}
		return i, nil
	})
	if err == nil || !contains(err.Error(), "job 5") {
		t.Fatalf("err = %v, want lowest-index attribution to job 5", err)
	}
	if rep.Attempts[5] != 3 {
		t.Fatalf("retryable job took %d attempts, want 3", rep.Attempts[5])
	}
	if rep.Attempts[6] != 1 {
		t.Fatalf("non-retryable job took %d attempts, want 1", rep.Attempts[6])
	}
	if rep.Completed[5] || rep.Completed[6] {
		t.Fatal("failed jobs marked completed")
	}
	if rep.CompletedCount() != 6 {
		t.Fatalf("%d slots completed, want 6", rep.CompletedCount())
	}
}

// TestJobTimeout: a job that honors its context is cut off by the per-job
// deadline while the campaign context stays live, and other jobs complete.
func TestJobTimeout(t *testing.T) {
	o := Options{Jobs: 2, JobTimeout: 5 * time.Millisecond}
	_, rep, err := MapErrCtx(context.Background(), o, 4, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			<-ctx.Done() // cooperative: the job observes its deadline
			return 0, ctx.Err()
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from job 2", err)
	}
	if rep.Completed[2] {
		t.Fatal("timed-out job marked completed")
	}
	if rep.CompletedCount() != 3 {
		t.Fatalf("%d slots completed, want 3", rep.CompletedCount())
	}
}

// TestBackoffDeterministic: the backoff schedule is a pure function of
// (job, attempt) — identical across calls — grows with the attempt number,
// and respects the cap.
func TestBackoffDeterministic(t *testing.T) {
	r := Retry{Attempts: 5, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	for i := 0; i < 10; i++ {
		for k := 1; k <= 6; k++ {
			d1, d2 := r.backoffFor(i, k), r.backoffFor(i, k)
			if d1 != d2 {
				t.Fatalf("backoff(%d,%d) not deterministic: %v vs %v", i, k, d1, d2)
			}
			if d1 < 0 || d1 > r.MaxBackoff {
				t.Fatalf("backoff(%d,%d) = %v outside (0, %v]", i, k, d1, r.MaxBackoff)
			}
		}
		if base, later := r.backoffFor(i, 1), r.backoffFor(i, 4); later <= base {
			t.Fatalf("backoff not growing for job %d: attempt1=%v attempt4=%v", i, base, later)
		}
	}
	if (Retry{}).backoffFor(3, 2) != 0 {
		t.Fatal("zero Retry must not wait")
	}
}

// TestMapCtxPanicAttribution: panics still attribute to the lowest index
// through the Ctx path.
func TestMapCtxPanicAttribution(t *testing.T) {
	o := Options{Jobs: 4, CapturePanics: true}
	_, _, err := MapErrCtx(context.Background(), o, 16, func(_ context.Context, i int) (int, error) {
		if i%5 == 2 { // jobs 2, 7, 12 panic; 2 must win
			panic(fmt.Sprintf("boom %d", i))
		}
		return i, nil
	})
	var jp *JobPanic
	if !errors.As(err, &jp) || jp.Index != 2 {
		t.Fatalf("err = %v, want *JobPanic at index 2", err)
	}
}

// TestMapCtxCancelledBeforeStart: an already-cancelled context runs
// nothing.
func TestMapCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rep, err := MapCtx(ctx, Options{Jobs: 4}, 10, func(_ context.Context, i int) int { return i })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if rep.CompletedCount() != 0 {
		t.Fatalf("%d jobs ran under a dead context", rep.CompletedCount())
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
