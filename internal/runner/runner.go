// Package runner is evax's deterministic fan-out engine. Every simulation
// campaign in the repository — corpus generation, k-fold retraining, fuzz
// sweeps, defense-overhead sweeps — is a set of independent jobs whose
// results must merge into exactly the order a sequential loop would have
// produced. The engine guarantees that:
//
//   - results are index-addressed: job i writes slot i, so the merged output
//     is identical for any worker count and any scheduling interleaving;
//   - jobs never share mutable state: each job derives its own seed via
//     DeriveSeed (a stable hash), never a shared *rand.Rand;
//   - panics are captured per job and re-raised (or returned) with job
//     attribution, and the job chosen is the lowest index — deterministic
//     even when several workers panic in the same run.
//
// The evaxlint rule "goroutine" forbids raw go statements and
// sync.WaitGroup outside this package, so all future concurrency inherits
// the contract. See DESIGN.md §9 for the determinism argument.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one fan-out.
type Options struct {
	// Jobs is the worker count. Zero or negative means GOMAXPROCS(0).
	// Jobs == 1 executes inline on the calling goroutine (no pool), which
	// is the reference ordering every other worker count must reproduce.
	Jobs int
	// CapturePanics converts job panics into *JobPanic errors returned
	// from MapErr instead of re-panicking on the caller's goroutine.
	CapturePanics bool
	// JobTimeout, when positive, bounds each job's context in the Ctx
	// variants: the job's ctx is cancelled after this duration. Jobs that
	// ignore their context are not interrupted (cancellation is
	// cooperative), but well-behaved jobs return a deadline error, which
	// can be marked Retryable by the job for the retry loop.
	JobTimeout time.Duration
	// Retry re-runs jobs whose error is marked Retryable, with a
	// deterministic backoff schedule. Only the Ctx variants retry.
	Retry Retry
	// OnJobDone, when non-nil, is called after each successful job
	// completion with the total number completed so far (1-based). It is
	// invoked from worker goroutines, so it must be safe for concurrent
	// use; campaigns use it for progress reporting, and the
	// fault-injection tests use it to trigger mid-run cancellation at an
	// exact completion count.
	OnJobDone func(done int)
}

// Workers resolves the effective worker count for n jobs.
func (o Options) Workers(n int) int {
	w := o.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// JobPanic is a panic captured inside a worker, attributed to its job.
type JobPanic struct {
	// Index is the job that panicked (the lowest-indexed one when several
	// jobs panic in one fan-out).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error renders the attribution and the original panic value.
func (p *JobPanic) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", p.Index, p.Value)
}

// Stats is a process-wide snapshot of engine activity, for throughput
// reporting in cmd/evaxbench and cmd/evaxtrain.
type Stats struct {
	// JobsRun counts jobs executed since process start.
	JobsRun uint64
	// FanOuts counts Map/MapErr invocations.
	FanOuts uint64
}

var (
	statJobs    atomic.Uint64
	statFanOuts atomic.Uint64
)

// Snapshot returns the cumulative engine statistics. Callers measuring one
// campaign take a snapshot before and after and subtract.
func Snapshot() Stats {
	return Stats{JobsRun: statJobs.Load(), FanOuts: statFanOuts.Load()}
}

// Map runs fn(0..n-1) across the worker pool and returns the results in
// index order — byte-identical to a sequential loop regardless of worker
// count. A job panic is re-raised on the caller's goroutine as *JobPanic.
func Map[T any](o Options, n int, fn func(i int) T) []T {
	o.CapturePanics = false
	//evaxlint:ignore droppederr error-free by construction: fn returns nil errors and panics re-raise
	out, _ := MapErr(o, n, func(i int) (T, error) { return fn(i), nil })
	return out
}

// MapErr runs fn(0..n-1) across the pool. Results are index-addressed; the
// returned error is the lowest-indexed job error (deterministic across
// scheduling), wrapped with its job index. With Options.CapturePanics, a
// job panic surfaces as a *JobPanic error under the same lowest-index rule;
// otherwise it re-panics on the caller's goroutine.
func MapErr[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	out, _, err := MapErrCtx(context.Background(), o, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
	return out, err
}

// forEachIndex drives the claim loop shared by every fan-out: workers
// atomically claim ascending indices until the range is exhausted or ctx is
// done. A cancelled campaign stops claiming new jobs; in-flight jobs run to
// completion (cancellation is cooperative — jobs see ctx through their own
// argument).
func forEachIndex(ctx context.Context, o Options, n int, runJob func(i int, done func() int)) {
	var doneCount atomic.Int64
	done := func() int { return int(doneCount.Add(1)) }
	if w := o.Workers(n); w == 1 {
		// Reference ordering: inline, no goroutines.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			runJob(i, done)
		}
		return
	}
	w := o.Workers(n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runJob(i, done)
			}
		}()
	}
	wg.Wait()
}

// FlatMap runs fn(0..n-1) and concatenates the per-job slices in job order
// — the shape of every corpus merge (each job yields a batch of samples).
func FlatMap[T any](o Options, n int, fn func(i int) []T) []T {
	batches := Map(o, n, fn)
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// stack captures the recovering goroutine's stack for JobPanic.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
