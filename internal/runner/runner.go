// Package runner is evax's deterministic fan-out engine. Every simulation
// campaign in the repository — corpus generation, k-fold retraining, fuzz
// sweeps, defense-overhead sweeps — is a set of independent jobs whose
// results must merge into exactly the order a sequential loop would have
// produced. The engine guarantees that:
//
//   - results are index-addressed: job i writes slot i, so the merged output
//     is identical for any worker count and any scheduling interleaving;
//   - jobs never share mutable state: each job derives its own seed via
//     DeriveSeed (a stable hash), never a shared *rand.Rand;
//   - panics are captured per job and re-raised (or returned) with job
//     attribution, and the job chosen is the lowest index — deterministic
//     even when several workers panic in the same run.
//
// The evaxlint rule "goroutine" forbids raw go statements and
// sync.WaitGroup outside this package, so all future concurrency inherits
// the contract. See DESIGN.md §9 for the determinism argument.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one fan-out.
type Options struct {
	// Jobs is the worker count. Zero or negative means GOMAXPROCS(0).
	// Jobs == 1 executes inline on the calling goroutine (no pool), which
	// is the reference ordering every other worker count must reproduce.
	Jobs int
	// CapturePanics converts job panics into *JobPanic errors returned
	// from MapErr instead of re-panicking on the caller's goroutine.
	CapturePanics bool
}

// Workers resolves the effective worker count for n jobs.
func (o Options) Workers(n int) int {
	w := o.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// JobPanic is a panic captured inside a worker, attributed to its job.
type JobPanic struct {
	// Index is the job that panicked (the lowest-indexed one when several
	// jobs panic in one fan-out).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error renders the attribution and the original panic value.
func (p *JobPanic) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", p.Index, p.Value)
}

// Stats is a process-wide snapshot of engine activity, for throughput
// reporting in cmd/evaxbench and cmd/evaxtrain.
type Stats struct {
	// JobsRun counts jobs executed since process start.
	JobsRun uint64
	// FanOuts counts Map/MapErr invocations.
	FanOuts uint64
}

var (
	statJobs    atomic.Uint64
	statFanOuts atomic.Uint64
)

// Snapshot returns the cumulative engine statistics. Callers measuring one
// campaign take a snapshot before and after and subtract.
func Snapshot() Stats {
	return Stats{JobsRun: statJobs.Load(), FanOuts: statFanOuts.Load()}
}

// Map runs fn(0..n-1) across the worker pool and returns the results in
// index order — byte-identical to a sequential loop regardless of worker
// count. A job panic is re-raised on the caller's goroutine as *JobPanic.
func Map[T any](o Options, n int, fn func(i int) T) []T {
	o.CapturePanics = false
	//evaxlint:ignore droppederr error-free by construction: fn returns nil errors and panics re-raise
	out, _ := MapErr(o, n, func(i int) (T, error) { return fn(i), nil })
	return out
}

// MapErr runs fn(0..n-1) across the pool. Results are index-addressed; the
// returned error is the lowest-indexed job error (deterministic across
// scheduling), wrapped with its job index. With Options.CapturePanics, a
// job panic surfaces as a *JobPanic error under the same lowest-index rule;
// otherwise it re-panics on the caller's goroutine.
func MapErr[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	statFanOuts.Add(1)
	results := make([]T, n)
	errs := make([]error, n)
	panics := make([]*JobPanic, n)

	runJob := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &JobPanic{Index: i, Value: r, Stack: stack()}
			}
		}()
		statJobs.Add(1)
		results[i], errs[i] = fn(i)
	}

	if w := o.Workers(n); w == 1 {
		// Reference ordering: inline, no goroutines.
		for i := 0; i < n; i++ {
			runJob(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runJob(i)
				}
			}()
		}
		wg.Wait()
	}

	for i := 0; i < n; i++ { // lowest index wins: deterministic attribution
		if panics[i] != nil {
			if o.CapturePanics {
				return results, panics[i]
			}
			panic(panics[i])
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return results, nil
}

// FlatMap runs fn(0..n-1) and concatenates the per-job slices in job order
// — the shape of every corpus merge (each job yields a batch of samples).
func FlatMap[T any](o Options, n int, fn func(i int) []T) []T {
	batches := Map(o, n, fn)
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// stack captures the recovering goroutine's stack for JobPanic.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
