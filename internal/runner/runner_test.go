package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// sequential is the reference every worker count must reproduce.
func sequential(n int, fn func(i int) int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = fn(i)
	}
	return out
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int {
		// Per-job derived seed: no shared RNG across jobs.
		rng := rand.New(rand.NewSource(DeriveSeed("job", i, 0)))
		return i*1000 + rng.Intn(1000)
	}
	want := sequential(512, fn)
	for _, jobs := range []int{1, 2, 3, 4, 7, 16, 1000} {
		got := Map(Options{Jobs: jobs}, 512, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: result order diverged from sequential", jobs)
		}
	}
}

func TestMapDefaultsToGOMAXPROCS(t *testing.T) {
	got := Map(Options{}, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestFlatMapMergesInEnumerationOrder(t *testing.T) {
	fn := func(i int) []string {
		batch := make([]string, i%3)
		for k := range batch {
			batch[k] = fmt.Sprintf("job%d-%d", i, k)
		}
		return batch
	}
	want := FlatMap(Options{Jobs: 1}, 50, fn)
	for _, jobs := range []int{2, 4, 9} {
		got := FlatMap(Options{Jobs: jobs}, 50, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: merged order diverged", jobs)
		}
	}
}

func TestMapErrLowestIndexWins(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		_, err := MapErr(Options{Jobs: jobs}, 64, func(i int) (int, error) {
			if i%2 == 1 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "job 1:") {
			t.Fatalf("jobs=%d: want lowest-indexed job error, got %v", jobs, err)
		}
	}
}

func TestPanicCaptureAttribution(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		_, err := MapErr(Options{Jobs: jobs, CapturePanics: true}, 32, func(i int) (int, error) {
			if i >= 5 {
				panic(fmt.Sprintf("job %d exploded", i))
			}
			return i, nil
		})
		var jp *JobPanic
		if !errors.As(err, &jp) {
			t.Fatalf("jobs=%d: want *JobPanic, got %v", jobs, err)
		}
		if jp.Index != 5 {
			t.Fatalf("jobs=%d: attributed to job %d, want 5 (lowest index)", jobs, jp.Index)
		}
		if len(jp.Stack) == 0 {
			t.Fatal("no stack captured")
		}
	}
}

func TestMapRepanicsWithAttribution(t *testing.T) {
	defer func() {
		r := recover()
		jp, ok := r.(*JobPanic)
		if !ok {
			t.Fatalf("recovered %T, want *JobPanic", r)
		}
		if jp.Index != 3 || jp.Value != "dead" {
			t.Fatalf("bad attribution: %+v", jp)
		}
	}()
	Map(Options{Jobs: 2}, 8, func(i int) int {
		if i == 3 {
			panic("dead")
		}
		return i
	})
	t.Fatal("did not panic")
}

func TestMapEmpty(t *testing.T) {
	if got := Map(Options{Jobs: 4}, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("empty fan-out returned %v", got)
	}
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct {
		opts Options
		n    int
		min  int
	}{
		{Options{Jobs: 8}, 3, 3},  // never more workers than jobs
		{Options{Jobs: -1}, 4, 1}, // GOMAXPROCS default, at least 1
		{Options{Jobs: 1}, 10, 1},
	}
	for _, c := range cases {
		w := c.opts.Workers(c.n)
		if w < 1 || w > c.n {
			t.Fatalf("Workers(%d) with %+v = %d", c.n, c.opts, w)
		}
		if c.opts.Jobs > 0 && w > c.opts.Jobs {
			t.Fatalf("worker count %d exceeds requested %d", w, c.opts.Jobs)
		}
	}
}

func TestDeriveSeedStableAndCollisionFree(t *testing.T) {
	// Regression for the linear-stride hazard: benign s*37+1 and attack
	// s*41+11 strides collide across offsets (4*37+1 == 3*41+11+15).
	if DeriveSeed("compress", 4, 0) == DeriveSeed("meltdown", 3, 15) {
		t.Fatal("hash seeds reproduce the stride collision")
	}
	// Stability: the derivation is part of the corpus identity; changing
	// it silently invalidates every recorded experiment.
	if got := DeriveSeed("compress", 0, 0); got != DeriveSeed("compress", 0, 0) {
		t.Fatalf("DeriveSeed not stable: %d", got)
	}
	seen := map[int64]string{}
	for _, name := range []string{"compress", "scheduler", "meltdown", "spectre-pht"} {
		for idx := 0; idx < 64; idx++ {
			for _, off := range []int64{0, 15, 4500, 7000} {
				s := DeriveSeed(name, idx, off)
				if s < 0 {
					t.Fatalf("negative seed %d", s)
				}
				key := fmt.Sprintf("%s/%d/%d", name, idx, off)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s -> %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestSnapshotCounts(t *testing.T) {
	before := Snapshot()
	Map(Options{Jobs: 2}, 10, func(i int) int { return i })
	after := Snapshot()
	if after.JobsRun-before.JobsRun != 10 {
		t.Fatalf("jobs counted: %d", after.JobsRun-before.JobsRun)
	}
	if after.FanOuts-before.FanOuts != 1 {
		t.Fatalf("fan-outs counted: %d", after.FanOuts-before.FanOuts)
	}
}
