package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// jobScript describes one job's behavior in a mixed-outcome campaign and the
// slot accounting it must produce in the Report.
type jobScript struct {
	// behavior is one of: ok, retry-ok (fails retryably until the last
	// allowed attempt), retry-exhaust (fails retryably forever), fatal
	// (fails non-retryably), timeout (waits out its per-job deadline),
	// timeout-retry (same, but marks the deadline error retryable), cancel
	// (succeeds, then cancels the campaign).
	behavior string

	wantCompleted bool
	wantAttempts  int
}

// scriptErr is the sentinel failure scripts return.
var scriptErr = errors.New("scripted failure")

func TestReportMixedOutcomes(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		scripts []jobScript
		wantErr error // nil, scriptErr, or a context error
	}{
		{
			name: "all-success",
			scripts: []jobScript{
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
			},
		},
		{
			name: "fatal-error-still-runs-other-slots",
			scripts: []jobScript{
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "fatal", wantCompleted: false, wantAttempts: 1},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
			},
			wantErr: scriptErr,
		},
		{
			name: "retry-exhaustion-counts-every-attempt",
			opts: Options{Retry: Retry{Attempts: 3}},
			scripts: []jobScript{
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "retry-exhaust", wantCompleted: false, wantAttempts: 3},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
			},
			wantErr: scriptErr,
		},
		{
			name: "retry-until-success",
			opts: Options{Retry: Retry{Attempts: 4}},
			scripts: []jobScript{
				{behavior: "retry-ok", wantCompleted: true, wantAttempts: 3},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
			},
		},
		{
			name: "timeout-is-one-attempt",
			opts: Options{JobTimeout: 5 * time.Millisecond},
			scripts: []jobScript{
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "timeout", wantCompleted: false, wantAttempts: 1},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
			},
			wantErr: context.DeadlineExceeded,
		},
		{
			name: "retryable-timeout-retries-then-fails",
			opts: Options{JobTimeout: 2 * time.Millisecond, Retry: Retry{Attempts: 2}},
			scripts: []jobScript{
				{behavior: "timeout-retry", wantCompleted: false, wantAttempts: 2},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
			},
			wantErr: context.DeadlineExceeded,
		},
		{
			name: "cancel-leaves-unclaimed-slots-at-zero-attempts",
			scripts: []jobScript{
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "cancel", wantCompleted: true, wantAttempts: 1},
				{behavior: "ok", wantCompleted: false, wantAttempts: 0},
				{behavior: "ok", wantCompleted: false, wantAttempts: 0},
			},
			wantErr: context.Canceled,
		},
		{
			name: "cancel-after-mixed-outcomes",
			opts: Options{Retry: Retry{Attempts: 2}},
			scripts: []jobScript{
				{behavior: "retry-exhaust", wantCompleted: false, wantAttempts: 2},
				{behavior: "ok", wantCompleted: true, wantAttempts: 1},
				{behavior: "cancel", wantCompleted: true, wantAttempts: 1},
				{behavior: "retry-exhaust", wantCompleted: false, wantAttempts: 0},
			},
			wantErr: scriptErr, // job errors take precedence over cancellation
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := runReportCase(t, tc.opts, tc.scripts)
			if tc.wantErr == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
			if len(rep.Completed) != len(tc.scripts) || len(rep.Attempts) != len(tc.scripts) {
				t.Fatalf("report sized %d/%d for %d jobs",
					len(rep.Completed), len(rep.Attempts), len(tc.scripts))
			}
			wantDone := 0
			for i, s := range tc.scripts {
				if rep.Completed[i] != s.wantCompleted {
					t.Errorf("job %d (%s): Completed = %v, want %v",
						i, s.behavior, rep.Completed[i], s.wantCompleted)
				}
				if rep.Attempts[i] != s.wantAttempts {
					t.Errorf("job %d (%s): Attempts = %d, want %d",
						i, s.behavior, rep.Attempts[i], s.wantAttempts)
				}
				if s.wantCompleted {
					wantDone++
				}
			}
			if got := rep.CompletedCount(); got != wantDone {
				t.Errorf("CompletedCount = %d, want %d", got, wantDone)
			}
			slots := rep.CompletedSlots()
			if len(slots) != wantDone {
				t.Errorf("CompletedSlots has %d entries, want %d", len(slots), wantDone)
			}
			for _, s := range slots {
				if !rep.Completed[s] {
					t.Errorf("CompletedSlots reports slot %d, but Completed[%d] is false", s, s)
				}
			}
		})
	}
}

// runReportCase executes one campaign sequentially (Jobs: 1, the reference
// ordering) so the claim order — and therefore which jobs a mid-campaign
// cancel prevents from starting — is exact. attempts tracks per-job
// executions so retry-ok can succeed on its final allowed attempt.
func runReportCase(t *testing.T, o Options, scripts []jobScript) (*Report, error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o.Jobs = 1
	attempts := make([]int, len(scripts))
	_, rep, err := MapErrCtx(ctx, o, len(scripts), func(jctx context.Context, i int) (int, error) {
		attempts[i]++
		switch scripts[i].behavior {
		case "ok":
			return i, nil
		case "retry-ok":
			if attempts[i] < scripts[i].wantAttempts {
				return 0, Retryable(fmt.Errorf("attempt %d: %w", attempts[i], scriptErr))
			}
			return i, nil
		case "retry-exhaust":
			return 0, Retryable(fmt.Errorf("attempt %d: %w", attempts[i], scriptErr))
		case "fatal":
			return 0, scriptErr
		case "timeout":
			<-jctx.Done()
			return 0, jctx.Err()
		case "timeout-retry":
			<-jctx.Done()
			return 0, Retryable(jctx.Err())
		case "cancel":
			cancel()
			return i, nil
		default:
			t.Errorf("unknown behavior %q", scripts[i].behavior)
			return 0, scriptErr
		}
	})
	for i := range attempts {
		if attempts[i] != rep.Attempts[i] {
			t.Errorf("job %d: engine reports %d attempts, job observed %d",
				i, rep.Attempts[i], attempts[i])
		}
	}
	return rep, err
}
