package runner

// DeriveSeed maps a (name, index, offset) job identity to a stable 63-bit
// seed via FNV-1a. The previous linear strides (benign s*37+1+offset vs
// attack s*41+11+offset) could collide across SeedOffset values — e.g.
// benign seed 4*37+1 = 149 equals attack seed 3*41+11+15 at offset 15 — so
// two corpora meant to be disjoint could share program instances. Hashing
// the program name into the seed makes collisions across (name, index,
// offset) triples as unlikely as a 63-bit hash collision, and keeps the
// derivation independent of enumeration order and worker count.
func DeriveSeed(name string, index int, offset int64) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	step := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	for i := 0; i < len(name); i++ {
		step(name[i])
	}
	step(0xff) // domain separator: name | index | offset
	for s := 0; s < 64; s += 8 {
		step(byte(uint64(index) >> s))
	}
	step(0xff)
	for s := 0; s < 64; s += 8 {
		step(byte(uint64(offset) >> s))
	}
	return int64(h &^ (1 << 63)) // non-negative: callers treat seeds as int64
}
