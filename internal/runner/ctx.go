package runner

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Retry bounds re-execution of jobs that fail with retryable errors (see
// Retryable). Retries preserve the determinism contract because a job's
// result depends only on its index and its derived seed, never on how many
// attempts it took: a campaign that eventually succeeds is bit-identical to
// one that never faulted.
type Retry struct {
	// Attempts is the maximum number of executions per job, including the
	// first. Zero or one disables retry.
	Attempts int
	// Backoff is the base delay before retry k (1-based): the wait grows
	// as Backoff << (k-1) plus a deterministic FNV-derived jitter, so
	// colliding jobs spread out identically on every run.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay. Zero means 64 × Backoff.
	MaxBackoff time.Duration
}

// backoffFor returns the deterministic delay before retry attempt k
// (1-based) of job i — a pure function of (i, k), so fault-injection tests
// can predict the schedule exactly.
func (r Retry) backoffFor(i, k int) time.Duration {
	if r.Backoff <= 0 {
		return 0
	}
	shift := k - 1
	if shift > 16 {
		shift = 16
	}
	d := r.Backoff << shift
	// Deterministic jitter in [0, d/4]: derived from job identity, not
	// from the global RNG, to keep the engine clock-free.
	if q := int64(d / 4); q > 0 {
		d += time.Duration(DeriveSeed("runner/backoff", i, int64(k)) % (q + 1))
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = 64 * r.Backoff
	}
	if d > max {
		d = max
	}
	return d
}

// retryableError marks an error as safe to re-execute.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable marks err as transient: MapErrCtx re-runs the job (up to
// Options.Retry.Attempts) instead of failing the campaign. Wrapping nil
// returns nil.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (or anything it wraps) was marked with
// Retryable.
func IsRetryable(err error) bool {
	var r *retryableError
	return errors.As(err, &r)
}

// Report records the outcome of a context-aware fan-out: which index slots
// ran to completion and how many attempts each consumed. A cancelled
// campaign is not an all-or-nothing loss — the caller knows exactly which
// slots hold valid results (the checkpoint journal persists those), and a
// resumed run re-executes only the rest.
type Report struct {
	// Completed[i] is true when job i finished without error or panic, so
	// results[i] is valid.
	Completed []bool
	// Attempts[i] counts executions of job i (retries included); zero
	// means the job was never started (cancelled before being claimed).
	Attempts []int
}

// CompletedCount returns how many slots completed.
func (r *Report) CompletedCount() int {
	n := 0
	for _, c := range r.Completed {
		if c {
			n++
		}
	}
	return n
}

// CompletedSlots returns the completed indices in ascending order.
func (r *Report) CompletedSlots() []int {
	var out []int
	for i, c := range r.Completed {
		if c {
			out = append(out, i)
		}
	}
	return out
}

// MapCtx is Map with cooperative cancellation: workers stop claiming jobs
// once ctx is done (in-flight jobs run to completion), and the report says
// exactly which slots hold valid results. The returned error is non-nil
// only for cancellation. Panics re-raise as *JobPanic unless
// Options.CapturePanics is set.
func MapCtx[T any](ctx context.Context, o Options, n int, fn func(ctx context.Context, i int) T) ([]T, *Report, error) {
	return MapErrCtx(ctx, o, n, func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i), nil
	})
}

// MapErrCtx runs fn(0..n-1) across the pool with cooperative cancellation,
// optional per-job deadlines (Options.JobTimeout) and bounded retry of
// retryable errors (Options.Retry). Results stay index-addressed: for a run
// that completes without cancellation the output is bit-identical to
// MapErr for every worker count. Error precedence is deterministic: the
// lowest-indexed captured panic (with Options.CapturePanics), then the
// lowest-indexed job error, then ctx's error.
func MapErrCtx[T any](ctx context.Context, o Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, *Report, error) {
	if n <= 0 {
		return nil, &Report{}, ctx.Err()
	}
	statFanOuts.Add(1)
	results := make([]T, n)
	errs := make([]error, n)
	panics := make([]*JobPanic, n)
	rep := &Report{Completed: make([]bool, n), Attempts: make([]int, n)}

	runJob := makeJobRunner(ctx, o, results, errs, panics, rep, fn)
	forEachIndex(ctx, o, n, runJob)

	for i := 0; i < n; i++ { // lowest index wins: deterministic attribution
		if panics[i] != nil {
			if o.CapturePanics {
				return results, rep, panics[i]
			}
			panic(panics[i])
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, rep, fmt.Errorf("runner: job %d: %w", i, err)
		}
	}
	return results, rep, ctx.Err()
}

// makeJobRunner builds the per-job execution closure: panic capture, the
// attempt/retry loop, per-job deadline, and report bookkeeping.
func makeJobRunner[T any](ctx context.Context, o Options, results []T, errs []error, panics []*JobPanic, rep *Report, fn func(ctx context.Context, i int) (T, error)) func(i int, done func() int) {
	return func(i int, done func() int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &JobPanic{Index: i, Value: r, Stack: stack()}
			}
		}()
		for {
			rep.Attempts[i]++
			statJobs.Add(1)
			jctx, cancel := jobContext(ctx, o.JobTimeout)
			v, err := fn(jctx, i)
			cancel()
			results[i], errs[i] = v, err
			if err == nil {
				rep.Completed[i] = true
				if o.OnJobDone != nil {
					o.OnJobDone(done())
				}
				return
			}
			if !IsRetryable(err) || rep.Attempts[i] >= o.Retry.Attempts {
				return
			}
			if !sleepCtx(ctx, o.Retry.backoffFor(i, rep.Attempts[i])) {
				return // cancelled while backing off; the last error stands
			}
		}
	}
}

// jobContext derives the per-job context: a deadline when Options.JobTimeout
// is set, otherwise the campaign context unchanged.
func jobContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// sleepCtx waits d, returning false if ctx is done first (or already).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
