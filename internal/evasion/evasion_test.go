package evasion

import (
	"math/rand"
	"testing"

	"evax/internal/attacks"
	"evax/internal/detect"
	"evax/internal/isa"
	"evax/internal/sim"
)

func TestMutatePreservesSemantics(t *testing.T) {
	p := attacks.Meltdown(11, 2)
	mp := Mutate(p, MutateOptions{Strength: 0.4, CacheNoise: true, Seed: 5})
	if err := mp.Validate(); err != nil {
		t.Fatal(err)
	}
	if mp.Len() <= p.Len() {
		t.Fatal("no noise inserted")
	}
	if mp.Class != p.Class {
		t.Fatal("class changed")
	}
	m := sim.New(sim.DefaultConfig(), mp)
	m.Run(5_000_000)
	if !m.Done() {
		t.Fatal("mutated program did not finish")
	}
	// The attack must still work: transient leaks still occur.
	if m.C.LeakedTransientLoads == 0 {
		t.Fatal("mutation killed the attack")
	}
	if m.Ctr(sim.CtrCommitFaults) == 0 {
		t.Fatal("meltdown fault path lost")
	}
}

func TestMutateAllAttacks(t *testing.T) {
	for _, spec := range attacks.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := spec.Build(11, 1)
			mp := Mutate(p, MutateOptions{Strength: 0.3, CacheNoise: true, SyscallNoise: true, Seed: 9})
			if err := mp.Validate(); err != nil {
				t.Fatal(err)
			}
			m := sim.New(sim.DefaultConfig(), mp)
			m.Run(5_000_000)
			if !m.Done() {
				t.Fatalf("mutated %s did not finish", spec.Name)
			}
		})
	}
}

func TestMutateRefusesIndirectJumps(t *testing.T) {
	p := attacks.SpectreBTB(11, 1)
	mp := Mutate(p, MutateOptions{Strength: 0.5, Seed: 1})
	if mp != p {
		t.Fatal("programs with indirect jumps must be returned unmodified")
	}
}

func TestMutateStrengthScalesDilution(t *testing.T) {
	p := attacks.FlushReload(11, 1)
	weak := Mutate(p, MutateOptions{Strength: 0.1, Seed: 2})
	strong := Mutate(p, MutateOptions{Strength: 0.8, CacheNoise: true, Seed: 2})
	if strong.Len() <= weak.Len() {
		t.Fatalf("strength had no effect: %d vs %d", weak.Len(), strong.Len())
	}
}

func TestTransyntherVariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := Transynther(seed, 1)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		m := sim.New(sim.DefaultConfig(), p)
		m.Run(3_000_000)
		if !m.Done() {
			t.Fatalf("seed %d did not finish", seed)
		}
		// Meltdown-style variants must exercise a replay channel.
		if m.Ctr(sim.CtrCommitFaults) == 0 && m.Ctr(sim.CtrLSQIgnoredResponses) == 0 {
			t.Fatalf("seed %d produced no fault/assist activity", seed)
		}
	}
}

func TestTransyntherDiversity(t *testing.T) {
	a, b := Transynther(1, 1), Transynther(2, 1)
	if a.Len() == b.Len() {
		// Same structure is possible; check register seeds differ.
		if a.InitRegs[isa.R21] == b.InitRegs[isa.R21] {
			t.Fatal("seeds produced identical variants")
		}
	}
}

func TestTRRespassManySided(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.DRAM.FlipThreshold = 150
	cfg.DRAM.TRRTrackers = 2
	flipped := 0
	for seed := int64(0); seed < 6; seed++ {
		p := TRRespass(seed, 2)
		m := sim.New(cfg, p)
		m.Run(5_000_000)
		if !m.Done() {
			t.Fatalf("seed %d did not finish", seed)
		}
		if m.DRAM().Stats.BitFlips > 0 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("no TRRespass pattern defeated the weak TRR")
	}
}

func TestOsirisTriples(t *testing.T) {
	for seed := int64(0); seed < 9; seed++ {
		p := Osiris(seed, 1)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		m := sim.New(sim.DefaultConfig(), p)
		m.Run(3_000_000)
		if !m.Done() {
			t.Fatalf("seed %d did not finish", seed)
		}
	}
}

// tinyDetector trains a 3-feature perceptron where feature 0 is the
// "leak-critical" one.
func tinyDetector(t *testing.T) *detect.Detector {
	t.Helper()
	fs := detect.NewPlan("tiny", []int{0, 1, 2}, []string{"a", "b", "c"})
	d := detect.NewPerceptron(1, fs)
	rng := rand.New(rand.NewSource(4))
	var base [][]float64
	var labels []bool
	for i := 0; i < 400; i++ {
		mal := i%2 == 0
		x := []float64{rng.Float64() * 0.2, rng.Float64() * 0.5, rng.Float64() * 0.5}
		if mal {
			x[0] = 0.6 + rng.Float64()*0.4
		}
		base = append(base, x)
		labels = append(labels, mal)
	}
	d.TrainVectors(base, labels, detect.DefaultTrainOptions())
	return d
}

func TestAMLEvadesWeakDetectorWithoutFloors(t *testing.T) {
	d := tinyDetector(t)
	aml := NewAML([]float64{0, 0, 0}) // unconstrained
	mal := []float64{0.9, 0.3, 0.3}
	if !d.FlagBase(mal) {
		t.Fatal("malicious sample not flagged pre-attack")
	}
	res := aml.Perturb(d, mal, false)
	if !res.Evaded {
		t.Fatal("unconstrained AML failed to evade a linear detector")
	}
}

func TestAMLFloorsBlockEvasionWhenMarginLarge(t *testing.T) {
	d := tinyDetector(t)
	// Floor the leak-critical feature at the malicious operating level.
	aml := NewAML([]float64{0.6, 0, 0})
	mal := []float64{0.9, 0.3, 0.3}
	res := aml.Perturb(d, mal, true)
	if res.Evaded {
		// With the decision boundary below the floor (a well-margined
		// detector on feature 0), evasion should be impossible.
		t.Fatalf("evaded while respecting floors: adv=%v score=%v threshold=%v",
			res.Adv, d.ScoreBase(res.Adv), d.Threshold)
	}
	if !res.AttackAlive {
		t.Fatal("floors were violated despite respectFloors")
	}
}

func TestAMLIgnoringFloorsDisablesAttack(t *testing.T) {
	d := tinyDetector(t)
	aml := NewAML([]float64{0.6, 0, 0})
	mal := []float64{0.9, 0.3, 0.3}
	res := aml.Perturb(d, mal, false)
	if res.Evaded && res.AttackAlive {
		t.Fatal("evasion succeeded with the attack alive — detector margin too small for this synthetic setup")
	}
}

func TestFloorsFromSamples(t *testing.T) {
	attack := [][]float64{
		{0.8, 0.1, 0.5},
		{0.9, 0.2, 0.6},
		{0.7, 0.1, 0.4},
	}
	benign := [][]float64{
		{0.1, 0.1, 0.5},
		{0.05, 0.15, 0.45},
		{0.12, 0.12, 0.55},
	}
	floors := FloorsFromSamples(attack, benign, 0.5)
	if floors[0] <= 0 {
		t.Fatal("leak-critical feature 0 got no floor")
	}
	if floors[1] != 0 {
		t.Fatal("noise feature 1 got a floor")
	}
	if floors[2] != 0 {
		t.Fatal("feature 2 matches benign levels; no floor expected")
	}
	if FloorsFromSamples(nil, benign, 0.5) != nil {
		t.Fatal("empty attack set should give nil floors")
	}
}

func TestDescendReachesFloorMinimum(t *testing.T) {
	d := tinyDetector(t)
	aml := NewAML([]float64{0.6, 0, 0})
	aml.MaxIter = 200
	mal := []float64{0.9, 0.3, 0.3}
	res := aml.Descend(d, mal)
	// Descend never stops at the boundary: the floored feature must sit
	// exactly at its floor and the others at a box extreme.
	if res.Adv[0] != 0.6 {
		t.Fatalf("floored feature at %v, want 0.6", res.Adv[0])
	}
	if !res.AttackAlive {
		t.Fatal("Descend crossed a floor")
	}
	// The descended score is at most the boundary-stop score.
	stop := aml.Perturb(d, []float64{0.9, 0.3, 0.3}, true)
	if d.ScoreBase(res.Adv) > d.ScoreBase(stop.Adv)+1e-12 {
		t.Fatal("Descend found a higher score than Perturb")
	}
}

func TestMonotoneDetectorBlocksAML(t *testing.T) {
	// Against a monotone detector, a floor-respecting attacker cannot
	// push the score below the floor point's score.
	fs := detect.NewPlan("m", []int{0, 1, 2}, []string{"a", "b", "c"})
	d := detect.NewPerceptron(5, fs)
	rng := rand.New(rand.NewSource(7))
	var base [][]float64
	var labels []bool
	for i := 0; i < 300; i++ {
		mal := i%2 == 0
		x := []float64{rng.Float64() * 0.2, rng.Float64() * 0.4, rng.Float64() * 0.4}
		if mal {
			x[0] = 0.6 + rng.Float64()*0.4
		}
		base = append(base, x)
		labels = append(labels, mal)
	}
	opts := detect.DefaultTrainOptions()
	opts.Monotone = true
	d.TrainVectors(base, labels, opts)
	aml := NewAML([]float64{0.6, 0, 0})
	aml.MaxIter = 300
	res := aml.Perturb(d, []float64{0.9, 0.3, 0.3}, true)
	if res.Evaded {
		t.Fatalf("monotone detector evaded at score %v (threshold %v)",
			d.ScoreBase(res.Adv), d.Threshold)
	}
}
