package evasion

import "evax/internal/detect"

// AML is a white-box feature-space adversarial attack on a detector
// (FGSM/DeepFool-style iterative perturbation). The attacker minimizes the
// detector's malicious score by gradient descent over the feature vector,
// but microarchitectural attacks are physical processes: the features that
// realize the leakage cannot drop below their floors without disabling the
// attack (the transient window bounded by the ROB). The paper's defense is
// to push classification margins past those floors.
type AML struct {
	// Floors are the per-feature minima (base-feature space) the sample
	// must keep for the attack to still leak. Zero means unconstrained.
	Floors []float64
	// StepSize of each gradient step.
	StepSize float64
	// MaxIter bounds the search.
	MaxIter int
}

// NewAML builds an attack with the given leakage floors.
func NewAML(floors []float64) *AML {
	return &AML{Floors: floors, StepSize: 0.05, MaxIter: 60}
}

// Result describes one evasion attempt.
type Result struct {
	// Adv is the final adversarial feature vector (base space).
	Adv []float64
	// Evaded reports the detector classified Adv as benign.
	Evaded bool
	// AttackAlive reports the floors were respected: the evasive sample
	// still leaks. Evaded && !AttackAlive is a pyrrhic evasion — the
	// transformation disabled the attack.
	AttackAlive bool
	// Iterations consumed.
	Iterations int
}

// Perturb runs the iterative attack against det starting from a malicious
// base-space sample. At each step the detector's input gradient is followed
// downhill; features are clamped to [0,1]. If respectFloors is true the
// perturbation never crosses a floor (the attacker preserves the attack);
// otherwise floors may be crossed and the attack silently dies.
func (a *AML) Perturb(det *detect.Detector, base []float64, respectFloors bool) Result {
	return a.perturb(det, base, respectFloors, true)
}

// Descend is Perturb without the early exit: it walks all the way to the
// attack's floor-constrained score minimum. Defenders use it to find the
// worst-case reachable evasion point when hardening margins.
func (a *AML) Descend(det *detect.Detector, base []float64) Result {
	return a.perturb(det, base, true, false)
}

func (a *AML) perturb(det *detect.Detector, base []float64, respectFloors, stopAtBoundary bool) Result {
	adv := append([]float64(nil), base...)
	res := Result{}
	for it := 0; it < a.MaxIter; it++ {
		res.Iterations = it + 1
		score := det.ScoreBase(adv)
		if stopAtBoundary && score < det.Threshold {
			break // already classified benign
		}
		// Gradient of the score w.r.t. the detector input, pulled back
		// through the engineered-feature extension.
		x := det.Plan.Extend(adv)
		det.Net.Forward(x)
		gradOut := []float64{1}
		gIn := det.Net.Backward(gradOut)
		det.Net.ClearGrads()
		// Engineered features j = A*B contribute dJ/dA = grad_j * B.
		g := make([]float64, len(adv))
		copy(g, gIn[:len(adv)])
		for k, f := range det.Plan.Engineered() {
			ge := gIn[len(adv)+k]
			g[f.A] += ge * adv[f.B]
			g[f.B] += ge * adv[f.A]
		}
		for i := range adv {
			adv[i] -= a.StepSize * sign(g[i])
			if adv[i] < 0 {
				adv[i] = 0
			}
			if adv[i] > 1 {
				adv[i] = 1
			}
			if respectFloors && i < len(a.Floors) && adv[i] < a.Floors[i] {
				adv[i] = a.Floors[i]
			}
		}
	}
	res.Adv = adv
	res.Evaded = !det.FlagBase(adv)
	res.AttackAlive = true
	for i, f := range a.Floors {
		if f > 0 && adv[i] < f-1e-9 {
			res.AttackAlive = false
			break
		}
	}
	return res
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// FloorsFromSamples derives leakage floors for an attack class: for each
// feature, take frac times the median value over the class's leak-phase
// samples, but only for features whose class median clearly exceeds the
// benign median (the leak-critical features). Everything else is
// unconstrained.
func FloorsFromSamples(attack, benign [][]float64, frac float64) []float64 {
	if len(attack) == 0 {
		return nil
	}
	dim := len(attack[0])
	floors := make([]float64, dim)
	med := func(vs [][]float64, j int) float64 {
		col := make([]float64, len(vs))
		for i := range vs {
			col[i] = vs[i][j]
		}
		// insertion sort: dims small
		for i := 1; i < len(col); i++ {
			for k := i; k > 0 && col[k] < col[k-1]; k-- {
				col[k], col[k-1] = col[k-1], col[k]
			}
		}
		return col[len(col)/2]
	}
	for j := 0; j < dim; j++ {
		am := med(attack, j)
		bm := 0.0
		if len(benign) > 0 {
			bm = med(benign, j)
		}
		if am > 2*bm && am > 0.005 {
			floors[j] = am * frac
		}
	}
	return floors
}
