// Package evasion implements the attacker tooling the paper evaluates
// against:
//
//   - program-level evasive mutation (the malware-community techniques):
//     benign instruction insertion, padding and cache-noise injection that
//     dilute an attack's counter signature while preserving its semantics;
//   - automated attack-generation in the style of Transynther (Meltdown/MDS
//     variant synthesis), TRRespass (many-sided Rowhammer patterns) and
//     Osiris (random trigger/measure/reset timing triples);
//   - feature-space adversarial-ML attacks that gradient-walk a sample
//     toward a detector's benign region subject to leakage floors — the
//     constraint that makes over-evasion disable the attack itself
//     (the paper's Figure 18 argument).
package evasion

import (
	"math/rand"

	"evax/internal/isa"
)

// noise registers reserved for inserted instructions (unused by the attack
// and workload builders).
const (
	noiseRegA = isa.Reg(28)
	noiseRegB = isa.Reg(29)
	noiseRegC = isa.Reg(31)
)

// noiseBase is a benign scratch region the inserted loads touch.
const noiseBase uint64 = 0x70_0000

// MutateOptions controls the evasive mutation engine.
type MutateOptions struct {
	// Strength in [0,1]: the probability of inserting noise after each
	// instruction. Higher strength dilutes the signature more but risks
	// breaking the attack's timing.
	Strength float64
	// CacheNoise inserts benign loads (vs pure ALU/nop noise).
	CacheNoise bool
	// SyscallNoise sprinkles serializing syscalls (bandwidth evasion).
	SyscallNoise bool
	Seed         int64
}

// Mutate produces an evasive variant of p: semantics-preserving noise
// instructions are inserted between the original micro-ops, with all branch
// targets relocated. The returned program keeps p's class (it is still the
// same attack).
func Mutate(p *isa.Program, o MutateOptions) *isa.Program {
	rng := rand.New(rand.NewSource(o.Seed))
	var code []isa.Inst
	remap := make([]int, len(p.Code)+1)

	emitNoise := func(phase isa.Phase) {
		r := rng.Float64()
		switch {
		case o.SyscallNoise && r < 0.05:
			code = append(code, isa.Inst{Kind: isa.Syscall, Phase: phase})
		case o.CacheNoise && r < 0.45:
			off := int64(rng.Intn(256)) * 64
			code = append(code, isa.Inst{
				Kind: isa.Load, Dest: noiseRegB, Base: isa.R0,
				Imm: int64(noiseBase) + off, Phase: phase,
			})
		case r < 0.75:
			code = append(code, isa.Inst{
				Kind: isa.IntAlu, Alu: isa.OpAdd, Dest: noiseRegA,
				Src1: noiseRegA, Src2: noiseRegC, Imm: 1, Phase: phase,
			})
		default:
			code = append(code, isa.Inst{Kind: isa.Nop, Phase: phase})
		}
	}

	for i, in := range p.Code {
		remap[i] = len(code)
		code = append(code, in)
		// Strength <= 1 is an insertion probability; above 1 it also
		// scales how much noise each insertion injects (deep dilution).
		if rng.Float64() < o.Strength {
			n := 1 + rng.Intn(3)
			if o.Strength > 1 {
				n += int(2 * (o.Strength - 1) * float64(1+rng.Intn(3)))
			}
			for k := 0; k < n; k++ {
				emitNoise(in.Phase)
			}
		}
	}
	remap[len(p.Code)] = len(code)

	for i := range code {
		switch code[i].Kind {
		case isa.Branch, isa.Jump, isa.Call:
			code[i].Target = remap[code[i].Target]
		}
	}

	out := &isa.Program{
		Name:     p.Name + "-evasive",
		Class:    p.Class,
		Code:     code,
		InitRegs: cloneRegs(p.InitRegs),
		InitMem:  cloneMem(p.InitMem),
	}
	// Indirect jumps carry instruction indices in registers/memory; remap
	// any initial values that are valid old indices. Attack builders store
	// gadget indices via immediates, which Mutate cannot see — programs
	// using IndirectJump should be re-generated rather than mutated, so
	// Mutate refuses them.
	for _, in := range p.Code {
		if in.Kind == isa.IndirectJump {
			return p
		}
	}
	return out
}

func cloneRegs(m map[isa.Reg]uint64) map[isa.Reg]uint64 {
	out := make(map[isa.Reg]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneMem(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Transynther synthesizes a Meltdown/MDS-style variant from a primitive
// pool, in the spirit of the Medusa paper's fuzzer: random choice of fault
// or assist leak primitive, alias offsets, retirement-delay style, encode
// stride and gadget interleaving.
func Transynther(seed int64, scale int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	if scale < 1 {
		scale = 1
	}
	b := isa.NewBuilder("transynther", isa.ClassMedusaCacheIndex)
	probe := uint64(0x80_0000) + uint64(rng.Intn(64))*64
	victim := uint64(0x10_0000) + uint64(rng.Intn(64))*64
	slow := uint64(0x24_0000) + uint64(rng.Intn(64))*64
	kernel := isa.KernelBase + 0x1000 + uint64(rng.Intn(64))*64
	secret := int64(1 + rng.Intn(7))
	stride := int64(4096)
	if rng.Intn(2) == 0 {
		stride = 2048 + int64(rng.Intn(4))*1024
	}
	b.InitMem(kernel, uint64(secret))
	b.InitReg(isa.R1, victim)
	b.InitReg(isa.R2, probe)
	b.InitReg(isa.R3, slow)
	b.InitReg(isa.R21, kernel)

	useFault := rng.Intn(2) == 0
	aliasOff := int64(0x1000 * (1 + rng.Intn(3)))

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(8*scale))
	b.Label("round")
	b.SetPhase(isa.PhaseSetup)
	// Flush the probe region.
	b.Li(isa.R14, 0)
	b.Li(isa.R15, 8)
	b.Label("fl")
	b.CLFlush(isa.R2, isa.R14, stride, 0)
	b.Addi(isa.R14, isa.R14, 1)
	b.Br(isa.CondNE, isa.R14, isa.R15, "fl")
	// Retirement delay: flushed load or a division chain.
	if rng.Intn(2) == 0 {
		b.CLFlush(isa.R3, isa.R0, 0, 0)
		b.SetPhase(isa.PhaseLeak)
		b.Load(isa.R9, isa.R3, isa.R0, 0, 0)
	} else {
		b.SetPhase(isa.PhaseLeak)
		b.InitReg(isa.R12, 977)
		b.InitReg(isa.R13, 3)
		b.Div(isa.R9, isa.R12, isa.R13)
		b.Div(isa.R9, isa.R9, isa.R13)
		b.Div(isa.R9, isa.R9, isa.R13)
	}
	if useFault {
		b.Prefetch(isa.R21, isa.R0, 0, 0)
		b.LoadK(isa.R4, isa.R21, isa.R0, 0, 0)
	} else {
		b.Li(isa.R5, secret)
		b.Store(isa.R5, isa.R1, isa.R0, 0, aliasOff)
		b.LoadAssist(isa.R4, isa.R1, isa.R0, 0, 0)
	}
	// Optional gadget interleaving noise.
	for k := 0; k < rng.Intn(3); k++ {
		b.Addi(isa.R19, isa.R19, 7)
	}
	b.Load(isa.R6, isa.R2, isa.R4, stride, 0) // encode
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "round")
	return b.MustBuild()
}

// TRRespass synthesizes an n-sided Rowhammer pattern with randomized
// aggressor count, ordering and intensity — the patterns that slip past
// Target Row Refresh when n exceeds the tracker capacity.
func TRRespass(seed int64, scale int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	if scale < 1 {
		scale = 1
	}
	b := isa.NewBuilder("trrespass", isa.ClassRowhammer)
	const rowStride = 8192 * 8
	sides := 3 + rng.Intn(10) // 3- to 12-sided
	base := uint64(0x10_0000) + uint64(rng.Intn(32))*rowStride
	order := rng.Perm(sides)
	for i, r := range order {
		b.InitReg(isa.Reg(1+i), base+uint64(r*2)*rowStride)
	}
	b.SetPhase(isa.PhaseLeak)
	b.Li(isa.R20, 0)
	b.Li(isa.R21, int64(300*scale))
	b.Label("hammer")
	for i := 0; i < sides; i++ {
		r := isa.Reg(1 + i)
		b.CLFlush(r, isa.R0, 0, 0)
		b.Load(isa.R22, r, isa.R0, 0, 0)
	}
	b.Addi(isa.R20, isa.R20, 1)
	b.Br(isa.CondNE, isa.R20, isa.R21, "hammer")
	b.SetPhase(isa.PhaseNone)
	return b.MustBuild()
}

// Osiris synthesizes a random (trigger, measure, reset) side-channel triple
// from a primitive pool, mirroring the Osiris fuzzer's search for timing
// channels. Many triples are duds; the interesting ones exercise unusual
// counter mixes the detector must still flag.
func Osiris(seed int64, scale int) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	if scale < 1 {
		scale = 1
	}
	b := isa.NewBuilder("osiris", isa.ClassFlushConflict)
	target := uint64(0x40_0000) + uint64(rng.Intn(256))*64
	b.InitReg(isa.R1, target)
	b.InitMem(target, 1)

	trigger := rng.Intn(4)
	measure := rng.Intn(3)
	reset := rng.Intn(3)

	b.Li(isa.R10, 0)
	b.Li(isa.R11, int64(60*scale))
	b.Label("triple")
	b.SetPhase(isa.PhaseLeak)
	switch trigger { // bring the microarchitecture into a state
	case 0:
		b.Load(isa.R2, isa.R1, isa.R0, 0, 0)
	case 1:
		b.Prefetch(isa.R1, isa.R0, 0, 0)
	case 2:
		b.Store(isa.R2, isa.R1, isa.R0, 0, 0)
	case 3:
		b.RdRand(isa.R2)
	}
	b.SetPhase(isa.PhaseTransmit)
	b.LFence()
	b.RdTSC(isa.R3)
	switch measure { // observe the state through timing
	case 0:
		b.Load(isa.R4, isa.R1, isa.R0, 0, 0)
	case 1:
		b.CLFlush(isa.R1, isa.R0, 0, 0)
	case 2:
		b.RdRand(isa.R4)
	}
	b.LFence()
	b.RdTSC(isa.R5)
	b.Sub(isa.R6, isa.R5, isa.R3)
	b.SetPhase(isa.PhaseRecover)
	switch reset { // restore a known state
	case 0:
		b.CLFlush(isa.R1, isa.R0, 0, 0)
	case 1:
		b.Load(isa.R7, isa.R1, isa.R0, 0, 0)
	case 2:
		b.Nop()
	}
	b.SetPhase(isa.PhaseNone)
	b.Addi(isa.R10, isa.R10, 1)
	b.Br(isa.CondNE, isa.R10, isa.R11, "triple")
	return b.MustBuild()
}
