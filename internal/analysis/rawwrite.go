package analysis

import (
	"go/ast"
)

// rawWriteExemptScope lists the package-path suffixes allowed to call the
// raw file-creation APIs. internal/safeio is the crash-safe persistence
// layer: it alone owns the temp-file/fsync/rename protocol and the
// checksummed read-back, so a write that bypasses it can tear under a crash
// and silently corrupt a detector bundle, model output, or bench report.
var rawWriteExemptScope = []string{
	"internal/safeio",
}

// rawWriteBanned maps the banned os functions to the approved replacement
// named in each diagnostic.
var rawWriteBanned = map[string]string{
	"WriteFile": "os.WriteFile is not crash-safe (a kill mid-write leaves a torn file); " +
		"persist through safeio.WriteFile (temp + fsync + atomic rename)",
	"Create": "os.Create truncates the destination before any byte is written; " +
		"persist through safeio.WriteFile, or os.OpenFile for append-only journals",
}

// RawWriteAnalyzer flags os.WriteFile and os.Create outside
// internal/safeio. Test files are exempt by construction: the loader skips
// _test.go files, so fixtures and golden helpers may write directly.
//
// The rule is transitive over the call graph (see confine.go): a wrapper
// that launders os.WriteFile behind an //evaxlint:ignore is a silent
// reacher, and every call site that can reach it is flagged. Calling
// safeio itself is the approved idiom and never propagates.
func RawWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawwrite",
		Doc:  "forbid os.WriteFile/os.Create, even through helpers, outside internal/safeio",
		Run:  runRawWrite,
	}
}

func rawWriteExempt(pkg *Package) bool {
	for _, s := range rawWriteExemptScope {
		if pkg.HasSuffix(s) {
			return true
		}
	}
	return false
}

// rawWriteUses scans one package for raw file-creation references. The
// function reference itself (not just a call) counts, so passing os.Create
// as a value is caught too.
func rawWriteUses(pkg *Package) []useSite {
	var uses []useSite
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			msg, banned := rawWriteBanned[sel.Sel.Name]
			if !banned {
				return true
			}
			if ident, ok := sel.X.(*ast.Ident); ok && pkgNameOf(pkg.Info, ident) == "os" {
				uses = append(uses, useSite{
					Pos:       sel.Pos(),
					What:      "os." + sel.Sel.Name,
					DirectMsg: msg,
				})
			}
			return true
		})
	}
	return uses
}

func rawWriteSpec() confineSpec {
	return confineSpec{
		rule:   "rawwrite",
		exempt: rawWriteExempt,
		uses:   rawWriteUses,
		verb:   "reaches a raw file write",
		remedy: "persist through safeio.WriteFile even when the os call sits behind a helper",
	}
}

func runRawWrite(pass *Pass) []Diagnostic {
	diags := diagsInPackage(pass, transitiveConfineDiags(pass.Prog, rawWriteSpec()))
	if rawWriteExempt(pass.Pkg) {
		return diags
	}
	for _, u := range rawWriteUses(pass.Pkg) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Position(u.Pos),
			Rule:    "rawwrite",
			Message: u.DirectMsg,
		})
	}
	return diags
}
