package analysis

import (
	"go/ast"
)

// rawWriteExemptScope lists the package-path suffixes allowed to call the
// raw file-creation APIs. internal/safeio is the crash-safe persistence
// layer: it alone owns the temp-file/fsync/rename protocol and the
// checksummed read-back, so a write that bypasses it can tear under a crash
// and silently corrupt a detector bundle, model output, or bench report.
var rawWriteExemptScope = []string{
	"internal/safeio",
}

// rawWriteBanned maps the banned os functions to the approved replacement
// named in each diagnostic.
var rawWriteBanned = map[string]string{
	"WriteFile": "os.WriteFile is not crash-safe (a kill mid-write leaves a torn file); " +
		"persist through safeio.WriteFile (temp + fsync + atomic rename)",
	"Create": "os.Create truncates the destination before any byte is written; " +
		"persist through safeio.WriteFile, or os.OpenFile for append-only journals",
}

// RawWriteAnalyzer flags os.WriteFile and os.Create outside
// internal/safeio. Test files are exempt by construction: the loader skips
// _test.go files, so fixtures and golden helpers may write directly.
func RawWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawwrite",
		Doc:  "forbid os.WriteFile/os.Create outside internal/safeio",
		Run:  runRawWrite,
	}
}

func runRawWrite(pass *Pass) []Diagnostic {
	for _, s := range rawWriteExemptScope {
		if pass.Pkg.HasSuffix(s) {
			return nil
		}
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			msg, banned := rawWriteBanned[sel.Sel.Name]
			if !banned {
				return true
			}
			// Flag the function reference itself (not just calls) so
			// passing os.Create as a value is caught too.
			if ident, ok := sel.X.(*ast.Ident); ok && pkgNameOf(pass.Pkg.Info, ident) == "os" {
				diags = append(diags, Diagnostic{
					Pos:     pass.Position(sel.Pos()),
					Rule:    "rawwrite",
					Message: msg,
				})
			}
			return true
		})
	}
	return diags
}
