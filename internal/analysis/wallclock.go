package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// wallclockExemptScope lists the package-path suffixes where sampling the
// wall clock is part of the job: the online serving layer (batch linger,
// latency histograms, I/O deadlines) and the run engine (retry backoff,
// job timeouts). Command mains (any package under a cmd/ segment) are also
// exempt — progress lines and wall-clock reports are their interface.
var wallclockExemptScope = []string{
	"internal/serve",
	"internal/runner",
}

// wallclockFuncs are the real-time reads the rule bans. time.Duration
// arithmetic, constants and timers fed by explicit durations remain fine
// everywhere; only sampling the actual clock leaks real time into results.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallClockAnalyzer flags time.Now/Since/Until outside the serving layer,
// the run engine, and command mains. The determinism rule already bans
// wall-clock reads inside the simulator and training packages; this rule
// closes the rest of the library: a time.Now in, say, dataset or checkpoint
// is either dead weight or a nondeterminism seed waiting to flow into a
// result, and measurement belongs in the cmds or the exempt engines.
func WallClockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc:  "forbid time.Now/Since/Until outside internal/serve, internal/runner, and cmd/",
		Run:  runWallClock,
	}
}

func runWallClock(pass *Pass) []Diagnostic {
	for _, s := range wallclockExemptScope {
		if pass.Pkg.HasSuffix(s) {
			return nil
		}
	}
	if isCommandPath(pass.Pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgNameOf(pass.Pkg.Info, ident) == "time" && wallclockFuncs[sel.Sel.Name] {
				diags = append(diags, Diagnostic{
					Pos:  pass.Position(call.Pos()),
					Rule: "wallclock",
					Message: fmt.Sprintf("time.%s outside internal/serve, internal/runner and cmd/; library code must not read the wall clock — measure in a cmd or thread a timestamp in",
						sel.Sel.Name),
				})
			}
			return true
		})
	}
	return diags
}

// isCommandPath reports whether the import path names a main package under a
// cmd/ tree ("evax/cmd/evaxd", "cmd/evaxd", ...).
func isCommandPath(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
