package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// wallclockExemptScope lists the package-path suffixes where sampling the
// wall clock is part of the job: the online serving layer (batch linger,
// latency histograms, I/O deadlines), the run engine (retry backoff, job
// timeouts), and the fleet layer (heartbeat pacing, probe RTTs, replay
// rates). Command mains (any package under a cmd/ segment) are also exempt
// — progress lines and wall-clock reports are their interface.
var wallclockExemptScope = []string{
	"internal/serve",
	"internal/serve/client",
	"internal/runner",
	"internal/fleet",
}

// wallclockFuncs are the real-time reads the rule bans. time.Duration
// arithmetic, constants and timers fed by explicit durations remain fine
// everywhere; only sampling the actual clock leaks real time into results.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallClockAnalyzer flags time.Now/Since/Until outside the serving layer,
// the run engine, and command mains. The determinism rule already bans
// wall-clock reads inside the simulator and training packages; this rule
// closes the rest of the library: a time.Now in, say, dataset or checkpoint
// is either dead weight or a nondeterminism seed waiting to flow into a
// result, and measurement belongs in the cmds or the exempt engines.
//
// The rule is transitive over the call graph (see confine.go): a helper
// whose own time.Now was suppressed with //evaxlint:ignore — or that hides
// it behind further wrappers — is a "silent reacher", and every call site
// that can reach it from a non-exempt package is flagged with the chain as
// witness. Calls into the exempt engines themselves are trusted and never
// propagate.
func WallClockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc:  "forbid reaching time.Now/Since/Until, even through helpers, outside internal/serve, internal/runner, and cmd/",
		Run:  runWallClock,
	}
}

func wallclockExempt(pkg *Package) bool {
	for _, s := range wallclockExemptScope {
		if pkg.HasSuffix(s) {
			return true
		}
	}
	return isCommandPath(pkg.Path)
}

// wallclockUses scans one package for direct clock reads.
func wallclockUses(pkg *Package) []useSite {
	var uses []useSite
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkgNameOf(pkg.Info, ident) == "time" && wallclockFuncs[sel.Sel.Name] {
				uses = append(uses, useSite{
					Pos:  call.Pos(),
					What: "time." + sel.Sel.Name,
					DirectMsg: fmt.Sprintf("time.%s outside internal/serve, internal/runner and cmd/; library code must not read the wall clock — measure in a cmd or thread a timestamp in",
						sel.Sel.Name),
				})
			}
			return true
		})
	}
	return uses
}

func wallclockSpec() confineSpec {
	return confineSpec{
		rule:   "wallclock",
		exempt: wallclockExempt,
		uses:   wallclockUses,
		verb:   "reaches the wall clock",
		remedy: "library code must not read the wall clock even through helpers; measure in a cmd or thread a timestamp in",
	}
}

func runWallClock(pass *Pass) []Diagnostic {
	diags := diagsInPackage(pass, transitiveConfineDiags(pass.Prog, wallclockSpec()))
	if wallclockExempt(pass.Pkg) {
		return diags
	}
	for _, u := range wallclockUses(pass.Pkg) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Position(u.Pos),
			Rule:    "wallclock",
			Message: u.DirectMsg,
		})
	}
	return diags
}

// isCommandPath reports whether the import path names a main package under a
// cmd/ tree ("evax/cmd/evaxd", "cmd/evaxd", ...).
func isCommandPath(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
