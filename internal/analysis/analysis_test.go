package analysis

import (
	"flag"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixturePkg describes one synthetic package assembled from testdata files.
type fixturePkg struct {
	// path is the import path the fixture pretends to have; analyzers
	// scope by path suffix, so tests pick paths inside/outside each scope.
	path  string
	files []string
}

// loadFixtureProg parses and type-checks fixture packages into a Program.
// Packages are checked in argument order and registered with the importer as
// they complete, so later fixtures may import earlier ones by their fixture
// path (the cross-package call-graph tests rely on this).
func loadFixtureProg(t *testing.T, pkgs ...fixturePkg) *Program {
	t.Helper()
	fset := token.NewFileSet()
	prog := &Program{Fset: fset}
	imp := &progImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: map[string]*types.Package{},
	}
	for _, fp := range pkgs {
		var files []*ast.File
		for _, fn := range fp.files {
			f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", fn, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(fp.path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", fp.path, err)
		}
		imp.local[fp.path] = tpkg
		prog.Packages = append(prog.Packages, &Package{
			Path:      fp.path,
			Files:     files,
			Filenames: fp.files,
			Types:     tpkg,
			Info:      info,
		})
	}
	return prog
}

// formatDiags renders diagnostics with base filenames for stable goldens.
func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("updating golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run `go test -run %s -update` to create): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// runRule loads fixtures, runs a single analyzer via the full Analyze
// pipeline (so suppression applies) and compares against the golden file.
func runRule(t *testing.T, a *Analyzer, goldenPath string, pkgs ...fixturePkg) {
	t.Helper()
	prog := loadFixtureProg(t, pkgs...)
	got := formatDiags(Analyze(prog, []*Analyzer{a}))
	checkGolden(t, goldenPath, got)
}

func fixture(rule string, names ...string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join("testdata", "src", rule, n)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	runRule(t, DeterminismAnalyzer(),
		filepath.Join("testdata", "src", "determinism", "bad.golden"),
		fixturePkg{path: "evax/internal/sim", files: fixture("determinism", "bad.go")})
	runRule(t, DeterminismAnalyzer(),
		filepath.Join("testdata", "src", "determinism", "clean.golden"),
		fixturePkg{path: "evax/internal/sim", files: fixture("determinism", "clean.go")})
}

func TestDeterminismOutOfScope(t *testing.T) {
	// The same violating file outside the deterministic packages is fine:
	// wall-clock use in cmd/ tooling is allowed.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/cmd/evaxbench",
		files: fixture("determinism", "bad.go"),
	})
	if diags := Analyze(prog, []*Analyzer{DeterminismAnalyzer()}); len(diags) != 0 {
		t.Errorf("determinism fired outside its scope: %v", diags)
	}
}

func TestMapOrder(t *testing.T) {
	runRule(t, MapOrderAnalyzer(),
		filepath.Join("testdata", "src", "maporder", "bad.golden"),
		fixturePkg{path: "evax/internal/ml", files: fixture("maporder", "bad.go")})
	runRule(t, MapOrderAnalyzer(),
		filepath.Join("testdata", "src", "maporder", "clean.golden"),
		fixturePkg{path: "evax/internal/ml", files: fixture("maporder", "clean.go")})
}

func TestFloatEq(t *testing.T) {
	runRule(t, FloatEqAnalyzer(),
		filepath.Join("testdata", "src", "floateq", "bad.golden"),
		fixturePkg{path: "evax/internal/detect", files: fixture("floateq", "bad.go")})
	runRule(t, FloatEqAnalyzer(),
		filepath.Join("testdata", "src", "floateq", "clean.golden"),
		fixturePkg{path: "evax/internal/detect", files: fixture("floateq", "clean.go")})
}

func TestDroppedErr(t *testing.T) {
	runRule(t, DroppedErrAnalyzer(),
		filepath.Join("testdata", "src", "droppederr", "bad.golden"),
		fixturePkg{path: "evax/internal/dataset", files: fixture("droppederr", "bad.go")})
	runRule(t, DroppedErrAnalyzer(),
		filepath.Join("testdata", "src", "droppederr", "clean.golden"),
		fixturePkg{path: "evax/internal/dataset", files: fixture("droppederr", "clean.go")})
}

func TestCtrName(t *testing.T) {
	runRule(t, CtrNameAnalyzer(),
		filepath.Join("testdata", "src", "ctrname", "bad.golden"),
		fixturePkg{path: "evax/internal/sim", files: fixture("ctrname", "registry.go")},
		fixturePkg{path: "evax/internal/detect", files: fixture("ctrname", "bad.go")})
	runRule(t, CtrNameAnalyzer(),
		filepath.Join("testdata", "src", "ctrname", "clean.golden"),
		fixturePkg{path: "evax/internal/sim", files: fixture("ctrname", "registry_clean.go")},
		fixturePkg{path: "evax/internal/detect", files: fixture("ctrname", "clean.go")})
}

func TestGoroutine(t *testing.T) {
	runRule(t, GoroutineAnalyzer(),
		filepath.Join("testdata", "src", "goroutine", "bad.golden"),
		fixturePkg{path: "evax/internal/experiments", files: fixture("goroutine", "bad.go")})
	runRule(t, GoroutineAnalyzer(),
		filepath.Join("testdata", "src", "goroutine", "clean.golden"),
		fixturePkg{path: "evax/internal/experiments", files: fixture("goroutine", "clean.go")})
}

func TestGoroutineExemptInRunner(t *testing.T) {
	// The same raw worker pool inside the engine package is the one place
	// it is allowed: runner owns goroutine lifecycle for the whole module.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/runner",
		files: fixture("goroutine", "bad.go"),
	})
	if diags := Analyze(prog, []*Analyzer{GoroutineAnalyzer()}); len(diags) != 0 {
		t.Errorf("goroutine fired inside internal/runner: %v", diags)
	}
}

func TestRawWrite(t *testing.T) {
	runRule(t, RawWriteAnalyzer(),
		filepath.Join("testdata", "src", "rawwrite", "bad.golden"),
		fixturePkg{path: "evax/internal/detect", files: fixture("rawwrite", "bad.go")})
	runRule(t, RawWriteAnalyzer(),
		filepath.Join("testdata", "src", "rawwrite", "clean.golden"),
		fixturePkg{path: "evax/internal/detect", files: fixture("rawwrite", "clean.go")})
}

func TestRawWriteExemptInSafeio(t *testing.T) {
	// The same raw writes inside the persistence layer are the one place
	// they are allowed: safeio owns the crash-safe write protocol.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/safeio",
		files: fixture("rawwrite", "bad.go"),
	})
	if diags := Analyze(prog, []*Analyzer{RawWriteAnalyzer()}); len(diags) != 0 {
		t.Errorf("rawwrite fired inside internal/safeio: %v", diags)
	}
}

// bundleFixtureDeps returns the fake defense and detect fixture packages the
// bundleload fixtures import; they must be registered (type-checked) first.
func bundleFixtureDeps() []fixturePkg {
	return []fixturePkg{
		{path: "evax/internal/defense", files: fixture("bundleload", "defense.go")},
		{path: "evax/internal/detect", files: fixture("bundleload", "detect.go")},
	}
}

func TestBundleLoad(t *testing.T) {
	runRule(t, BundleLoadAnalyzer(),
		filepath.Join("testdata", "src", "bundleload", "bad.golden"),
		append(bundleFixtureDeps(),
			fixturePkg{path: "evax/internal/serve", files: fixture("bundleload", "bad.go")})...)
	runRule(t, BundleLoadAnalyzer(),
		filepath.Join("testdata", "src", "bundleload", "clean.golden"),
		append(bundleFixtureDeps(),
			fixturePkg{path: "evax/internal/engine", files: fixture("bundleload", "clean.go")})...)
}

func TestBundleLoadLaunder(t *testing.T) {
	runRule(t, BundleLoadAnalyzer(),
		filepath.Join("testdata", "src", "bundleload", "launder.golden"),
		append(bundleFixtureDeps(),
			fixturePkg{path: "evax/internal/serve", files: fixture("bundleload", "launder.go")})...)
}

func TestBundleLoadExemptInEngine(t *testing.T) {
	// The same raw loads inside the engine are the one place they are
	// allowed: engine owns the generation lifecycle the rule protects.
	prog := loadFixtureProg(t, append(bundleFixtureDeps(),
		fixturePkg{path: "evax/internal/engine", files: fixture("bundleload", "bad.go")})...)
	if diags := Analyze(prog, []*Analyzer{BundleLoadAnalyzer()}); len(diags) != 0 {
		t.Errorf("bundleload fired inside internal/engine: %v", diags)
	}
}

func TestWallClock(t *testing.T) {
	runRule(t, WallClockAnalyzer(),
		filepath.Join("testdata", "src", "wallclock", "bad.golden"),
		fixturePkg{path: "evax/internal/dataset", files: fixture("wallclock", "bad.go")})
	runRule(t, WallClockAnalyzer(),
		filepath.Join("testdata", "src", "wallclock", "clean.golden"),
		fixturePkg{path: "evax/internal/dataset", files: fixture("wallclock", "clean.go")})
}

func TestWallClockExemptScopes(t *testing.T) {
	// The same wall-clock reads are legitimate in the serving layer
	// (latency measurement), the run engine (backoff), the fleet layer
	// (heartbeats, probe RTTs), and command mains.
	for _, path := range []string{
		"evax/internal/serve",
		"evax/internal/runner",
		"evax/internal/fleet",
		"evax/cmd/evaxd",
	} {
		prog := loadFixtureProg(t, fixturePkg{
			path:  path,
			files: fixture("wallclock", "bad.go"),
		})
		if diags := Analyze(prog, []*Analyzer{WallClockAnalyzer()}); len(diags) != 0 {
			t.Errorf("wallclock fired inside exempt scope %s: %v", path, diags)
		}
	}
}

func TestGoroutineExemptInServe(t *testing.T) {
	// The serving layer owns its connection readers/writers and shard
	// batchers; raw concurrency there is part of its contract.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/serve",
		files: fixture("goroutine", "bad.go"),
	})
	if diags := Analyze(prog, []*Analyzer{GoroutineAnalyzer()}); len(diags) != 0 {
		t.Errorf("goroutine fired inside internal/serve: %v", diags)
	}
}

func TestSuppression(t *testing.T) {
	// suppressed.go carries the same violations as the floateq bad fixture
	// but every site is annotated with //evaxlint:ignore.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/detect",
		files: fixture("floateq", "suppressed.go"),
	})
	if diags := Analyze(prog, Analyzers()); len(diags) != 0 {
		t.Errorf("expected all diagnostics suppressed, got: %v", diags)
	}
}

func TestMatch(t *testing.T) {
	pkg := &Package{Path: "evax/internal/sim"}
	cases := []struct {
		patterns []string
		want     bool
	}{
		{[]string{"./..."}, true},
		{[]string{"..."}, true},
		{[]string{"./internal/..."}, true},
		{[]string{"internal/sim"}, true},
		{[]string{"./internal/sim"}, true},
		{[]string{"evax/internal/sim"}, true},
		{[]string{"./internal/sim/..."}, true},
		{[]string{"./internal/gan"}, false},
		{[]string{"internal/simx"}, false},
		{[]string{"./cmd/..."}, false},
	}
	for _, c := range cases {
		if got := pkg.Match("evax", c.patterns); got != c.want {
			t.Errorf("Match(%v) = %v, want %v", c.patterns, got, c.want)
		}
	}
}
