package dataset

import (
	"fmt"
	"os"
	"strings"
)

func mayFail2() error { return nil }

func value2() (int, error) { return 0, nil }

// Clean handles every error, or calls allowlisted stdio/builder functions.
func Clean(path string) error {
	if err := mayFail2(); err != nil {
		return err
	}
	n, err := value2()
	if err != nil {
		return err
	}
	_ = n // blank-assigning a non-call value is fine

	fmt.Println("progress:", path) // stdio printing is allowlisted
	fmt.Fprintf(os.Stderr, "n=%d\n", n)

	var b strings.Builder
	b.WriteString("builder writes never fail") // documented nil error
	fmt.Println(b.String())
	return nil
}
