package dataset

import "os"

func mayFail() error { return nil }

func value() (int, error) { return 0, nil }

// Bad discards errors every way the rule catches.
func Bad(path string) {
	mayFail()
	os.Remove(path)
	_ = mayFail()
	n, _ := value()
	_ = n
	go mayFail()
	defer mayFail()
}
