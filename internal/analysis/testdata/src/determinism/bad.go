package sim

import (
	"math/rand"
	"time"
)

// Bad exercises every banned nondeterminism source in a sim-scoped package.
func Bad() float64 {
	t0 := time.Now()
	elapsed := time.Since(t0)
	_ = elapsed
	x := rand.Float64()
	y := rand.Intn(10)
	rand.Shuffle(y, func(i, j int) {})
	return x + float64(y)
}
