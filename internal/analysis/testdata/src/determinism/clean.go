package sim

import (
	"math/rand"
	"time"
)

// Clean uses only the approved idioms: an explicitly seeded generator and
// time.Duration arithmetic (no wall-clock reads).
func Clean(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	budget := 5 * time.Millisecond
	if budget > time.Second {
		return 0
	}
	return rng.Float64()
}
