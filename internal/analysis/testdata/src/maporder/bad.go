package ml

// Bad accumulates order-dependent state while ranging over a map.
func Bad(m map[string]float64) ([]string, float64) {
	var keys []string
	var sum float64
	for k, v := range m {
		keys = append(keys, k)
		sum += v
	}
	return keys, sum
}
