package ml

import "sort"

// Clean demonstrates the approved patterns around map iteration.
func Clean(m map[string]float64) ([]string, float64) {
	// Collect-then-sort: the append target is sorted after the loop, so
	// the map-order dependence is erased before anyone observes it.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Deterministic accumulation over the sorted keys.
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}

	// Integer accumulation is associative — order cannot change the result.
	n := 0
	for range m {
		n++
	}

	// Loop-local float work does not escape the iteration.
	for _, v := range m {
		local := v * 2
		_ = local
	}
	_ = n
	return keys, sum
}
