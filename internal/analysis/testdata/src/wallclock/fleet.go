package fleet

import "time"

// ProbeStart samples the wall clock for a heartbeat RTT: inside the fleet
// barrier this is part of the job, so the rule never fires and calls into it
// never propagate.
func ProbeStart() int64 {
	return time.Now().UnixNano()
}
