package dataset

import "time"

// Clean keeps to the approved idioms: duration arithmetic, constants, and
// timestamps threaded in by the caller — never sampled locally.
func Clean(start time.Time, budget time.Duration) bool {
	if budget <= 0 {
		budget = 5 * time.Millisecond
	}
	deadline := start.Add(budget)
	return deadline.After(start)
}
