package dataset

import (
	"time"

	"evax/internal/fleet"
)

// Route calls into the fleet barrier: trusted, never flagged — the barrier
// absorbs the clock read the way internal/serve and internal/runner do.
func Route() int64 {
	return fleet.ProbeStart()
}

// stampLocal launders its own wall-clock read behind a suppression — a
// fleet-looking helper that does NOT live inside internal/fleet gets no
// barrier trust.
func stampLocal() int64 {
	//evaxlint:ignore wallclock cached coarse clock, refreshed out of band
	return time.Now().UnixNano()
}

// Tag reaches the wall clock through the local launder: still flagged with
// the chain as witness, proving the fleet exemption is scoped to the real
// package, not to helpers that merely look like it.
func Tag() int64 {
	return Route() + stampLocal()
}
