package dataset

import "time"

// Bad exercises every banned wall-clock read in a library package.
func Bad(deadline time.Time) time.Duration {
	start := time.Now()
	left := time.Until(deadline)
	_ = left
	return time.Since(start)
}
