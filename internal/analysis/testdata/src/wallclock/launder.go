package dataset

import "time"

// stamp launders the wall clock: the direct finding is suppressed, so only
// the transitive layer can reveal callers pulling real time in.
func stamp() int64 {
	//evaxlint:ignore wallclock cached coarse clock, refreshed out of band
	return time.Now().UnixNano()
}

// Tag reaches the wall clock through stamp: flagged at the call site with
// the chain as witness.
func Tag() int64 {
	return stamp()
}

// TagQuiet suppresses the call edge itself, which prunes the transitive
// finding attributed through it.
func TagQuiet() int64 {
	return stamp() //evaxlint:ignore wallclock deliberate: coarse timestamps only label cache entries
}
