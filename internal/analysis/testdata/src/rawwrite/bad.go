package detect

import "os"

// SavePatch persists with os.WriteFile: a crash between the truncate and
// the final byte leaves a torn patch that the loader must then reject.
func SavePatch(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// OpenReport truncates the previous report before writing the new one —
// the worst-case window for a crash.
func OpenReport(path string) (*os.File, error) {
	return os.Create(path)
}

// creator smuggles the banned function as a value; the reference itself is
// flagged, not just direct calls.
var creator = os.Create
