package detect

import "os"

// ReadPatch only reads — the rule bans creation, not consumption.
func ReadPatch(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// AppendJournal uses os.OpenFile, the approved primitive for append-only
// journals (which carry their own record checksums and torn-tail recovery
// instead of the safeio rename protocol).
func AppendJournal(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Suppressed is the escape hatch for vetted one-off writes.
func Suppressed(path string, data []byte) error {
	//evaxlint:ignore rawwrite vetted: scratch file on a path nothing re-reads
	return os.WriteFile(path, data, 0o600)
}
