package detect

import "os"

// dump launders os.WriteFile behind a suppressed helper.
func dump(path string, b []byte) error {
	//evaxlint:ignore rawwrite scratch output, rewritten whole on the next run
	return os.WriteFile(path, b, 0o644)
}

// Save reaches the raw write through dump: flagged at the call site with
// the chain as witness.
func Save(path string, b []byte) error {
	return dump(path, b)
}
