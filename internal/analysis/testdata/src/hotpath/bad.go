package hot

import "fmt"

// Sink is an interface target for the call-site boxing check.
type Sink interface{ Put(v any) }

type point struct{ x, y float64 }

// Score exercises every banned construct, both directly in the root and
// through helper/deep (an allocation two call-hops below the root).
//
//evaxlint:hotpath
func Score(vals []float64, name string, s Sink) float64 {
	buf := make([]float64, len(vals))
	copy(buf, vals)
	buf = append(buf, 1)
	p := &point{x: 1}
	pair := []float64{1, 2}
	idx := map[string]int{"a": 1}
	np := new(point)
	label := name + "!"
	bs := []byte(name)
	back := string(bs)
	f := func() float64 { return 0 }
	fmt.Println(label, back)
	s.Put(p.x)
	_ = pair
	_ = idx
	_ = np
	_ = f
	return helper(vals) + buf[0]
}

// helper is one hop below the root and clean itself.
func helper(vals []float64) float64 {
	return deep(vals)
}

// deep is two call hops below the root: its allocation must be attributed
// through Score → helper → deep.
func deep(vals []float64) float64 {
	tmp := make([]float64, len(vals))
	copy(tmp, vals)
	return tmp[0]
}
