package hot

import "fmt"

type sample struct {
	values []float64
	total  float64
}

type scorer struct {
	scratch []float64
}

// ScoreInto writes into caller-owned memory only: index writes, a plain
// struct value literal (stack), and a panic whose formatting is exempt (the
// crash path is not the steady-state path).
//
//evaxlint:hotpath
func (s *scorer) ScoreInto(dst, vals []float64) float64 {
	if len(dst) != len(vals) {
		panic(fmt.Sprintf("hot: dst %d != vals %d", len(dst), len(vals)))
	}
	var total float64
	for i, v := range vals {
		dst[i] = v * 2
		total += v
	}
	sm := sample{values: dst, total: total}
	return tally(sm)
}

// tally is reachable and clean: loops and arithmetic only.
func tally(sm sample) float64 {
	var t float64
	for _, v := range sm.values {
		t += v
	}
	return t + sm.total
}
