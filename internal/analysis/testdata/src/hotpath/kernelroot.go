package hot

// This fixture mirrors the fused scoring kernel's shape (internal/kernel):
// a compiled scorer with owned scratch, a batch root that blocks over rows,
// a per-block helper, and an expansion helper two call hops below the root.
// The injected allocation lives in the deepest hop — the analyzer must
// attribute it up through ScoreRows → scoreBlock → expandRow.

type fused struct {
	w       []float64
	scratch []float64
}

// ScoreRows is the batch entry point: rows of raw counters scored through
// the per-block helper, no allocation of its own.
//
//evaxlint:hotpath
func (k *fused) ScoreRows(raw []float64, dim int, out []float64) {
	for i := range out {
		out[i] = k.scoreBlock(raw[i*dim : (i+1)*dim])
	}
}

// scoreBlock is one hop below the root: expand, then dot product over the
// owned scratch. Clean itself.
func (k *fused) scoreBlock(row []float64) float64 {
	expanded := k.expandRow(row)
	var z float64
	for i, v := range expanded {
		z += k.w[i] * v
	}
	return z
}

// expandRow is two hops below the root; the make is the injected allocation
// the fixture exists to catch (the real kernel writes into k.scratch).
func (k *fused) expandRow(row []float64) []float64 {
	tmp := make([]float64, len(row)*2)
	for i, v := range row {
		tmp[2*i] = v
		tmp[2*i+1] = v * v
	}
	return tmp
}
