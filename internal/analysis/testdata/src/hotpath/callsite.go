package hot

// coldState is compiled lazily, outside the steady state.
type coldState struct{ buf []float64 }

// Serve's one-time lazy compile is suppressed at the call site: the ignore
// prunes the whole call edge, so coldInit's allocations never join the hot
// set even though coldInit itself carries no directive.
//
//evaxlint:hotpath
func Serve(vals []float64) float64 {
	st := coldInit(len(vals)) //evaxlint:ignore hotpath one-time lazy compile; not the steady-state path
	var total float64
	for i, v := range vals {
		st.buf[i] = v
		total += v
	}
	return total
}

// coldInit allocates freely; only the suppressed edge keeps it cold.
func coldInit(n int) *coldState {
	return &coldState{buf: make([]float64, n)}
}
