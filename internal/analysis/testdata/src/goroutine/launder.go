package experiments

// spawn launders a go statement behind a suppressed helper.
func spawn(f func()) {
	//evaxlint:ignore goroutine fire-and-forget helper, callers are tests
	go f()
}

// Fan reaches raw concurrency through spawn: every call site is flagged
// with the chain as witness.
func Fan(fs []func()) {
	for _, f := range fs {
		spawn(f)
	}
}
