package experiments

import "sync"

// FanOut hand-rolls a worker pool: completion order decides nothing here,
// but the pattern invites append-on-completion merges and shared RNGs, so
// the rule bans the primitives outright outside internal/runner.
func FanOut(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

// Wait takes the group by pointer — still a reference to the banned type.
func Wait(wg *sync.WaitGroup) {
	wg.Wait()
}
