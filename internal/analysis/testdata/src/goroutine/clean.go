package experiments

import "sync"

// Clean uses the allowed sync primitives: Once/Mutex guard lazy
// initialization without spawning workers, and the fan-out itself is
// delegated to the runner engine (not reproduced in this fixture).
type Clean struct {
	once sync.Once
	mu   sync.Mutex
	val  int
}

// Value lazily initializes under the lock.
func (c *Clean) Value() int {
	c.once.Do(func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.val = 42
	})
	return c.val
}

// Suppressed is the escape hatch for vetted one-off concurrency.
func Suppressed(n int) []int {
	out := make([]int, n)
	done := make(chan struct{})
	//evaxlint:ignore goroutine vetted: single goroutine, joined via channel before return
	go func() {
		for i := range out {
			out[i] = i
		}
		close(done)
	}()
	<-done
	return out
}
