package detect

// Bad compares floats exactly.
func Bad(a, b float64, xs []float32) bool {
	if a == b {
		return true
	}
	if b != 0 {
		return false
	}
	return xs[0] == 1.5
}
