package detect

// Suppressed carries floateq violations annotated with ignore directives:
// one trailing, one on the line above, and one using the "all" rule list.
func Suppressed(a, b float64) bool {
	if a == b { //evaxlint:ignore floateq inputs are bit-identical snapshots
		return true
	}
	//evaxlint:ignore floateq sentinel zero is assigned, never computed
	if b != 0 {
		return false
	}
	//evaxlint:ignore all demonstration of the catch-all form
	return a == 1.5
}
