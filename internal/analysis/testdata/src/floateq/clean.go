package detect

// Clean uses ordered comparison, integer equality, and constant folding —
// none of which the floateq rule flags.
func Clean(a, b float64, n, m int) bool {
	if a < b || a >= b {
		return n == m
	}
	const half = 1.5
	const whole = 3.0
	if half == whole/2 { // constant-folded at compile time: exact
		return true
	}
	return false
}
