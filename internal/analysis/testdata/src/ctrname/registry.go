package sim

// counterDef mirrors the shape of internal/sim/counters.go: the first
// field of each entry is the registered counter name.
type counterDef struct {
	name string
	get  func() uint64
}

var counterDefs = []counterDef{
	{"fetch.Cycles", nil},
	{"lsq.forwLoads", nil},
	{"dcache.ReadReq_misses", nil},
	{"fetch.Cycles", nil}, // duplicate registration
}
