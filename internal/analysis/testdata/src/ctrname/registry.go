package sim

// Mirrors the shape of internal/sim/counters.go: a typed CtrID constant
// block backing a dense counterNames registry array.
type CtrID int

const (
	CtrFetchCycles CtrID = iota
	CtrLSQForwLoads
	CtrDcacheReadReqMisses
	CtrDcacheWriteReqMisses
	CtrOrphan // no counterNames entry: registry no longer dense
	NumCounters
	CtrAfterEnd // constant after NumCounters widens the array silently
)

var counterNames = [NumCounters]string{
	CtrFetchCycles:          "fetch.Cycles",
	CtrLSQForwLoads:         "lsq.forwLoads",
	"dcache.ReadReq_misses", // positional entry: must be keyed by its CtrID
	CtrDcacheWriteReqMisses: "fetch.Cycles", // duplicate registration
}
