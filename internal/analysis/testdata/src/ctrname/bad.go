package detect

// features references counters by name; "lsq.forwLoad" drops the final
// "s" — the kind of typo that compiles fine and breaks at runtime.
var features = []string{
	"fetch.Cycles",
	"lsq.forwLoads",
	"lsq.forwLoad",
	"fetch.Cycles.rate",
	"unknowngroup.Whatever",
	"not a counter name",
}
