package detect

// features references only registered counters (one via a derived view).
var features = []string{
	"fetch.Cycles",
	"lsq.forwLoads",
	"dcache.ReadReq_misses",
	"lsq.forwLoads.percycle",
}
