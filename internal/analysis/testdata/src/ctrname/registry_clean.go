package sim

type CtrID int

const (
	CtrFetchCycles CtrID = iota
	CtrLSQForwLoads
	CtrDcacheReadReqMisses
	NumCounters
)

var counterNames = [NumCounters]string{
	CtrFetchCycles:         "fetch.Cycles",
	CtrLSQForwLoads:        "lsq.forwLoads",
	CtrDcacheReadReqMisses: "dcache.ReadReq_misses",
}
