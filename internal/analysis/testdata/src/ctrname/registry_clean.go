package sim

type counterDef struct {
	name string
	get  func() uint64
}

var counterDefs = []counterDef{
	{"fetch.Cycles", nil},
	{"lsq.forwLoads", nil},
	{"dcache.ReadReq_misses", nil},
}
