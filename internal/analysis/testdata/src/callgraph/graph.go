package cg

import "evax/internal/util"

// Doer has two module implementations; interface calls resolve to both.
type Doer interface{ Do() int }

// A implements Doer with a value receiver.
type A struct{}

// Do is a method-call target (and calls onward, cross-package).
func (A) Do() int { return value() }

// B implements Doer with a pointer receiver.
type B struct{ n int }

func (b *B) Do() int { return b.n }

// value crosses packages with a static call.
func value() int { return util.Helper() }

// Run exercises every edge kind: interface dispatch, static same- and
// cross-package calls, concrete method calls, function-value references,
// and closure attribution to the enclosing declaration.
func Run(d Doer) int {
	total := d.Do()
	total += value()
	a := A{}
	total += a.Do()
	f := value
	total += util.Apply(f)
	c := func() int { return util.Helper() }
	total += c()
	return total
}
