package util

// Helper is a cross-package static call target.
func Helper() int { return 1 }

// Apply invokes a function value; callers that pass a named function get a
// conservative ref edge to it.
func Apply(f func() int) int { return f() }
