package serve

import (
	"evax/internal/defense"
	"evax/internal/detect"
)

// Hydrate loads a bundle straight from disk: the resulting flagger has no
// generation hash, no canary gate, and hot swaps cannot see it.
func Hydrate(path string) (defense.Flagger, error) {
	return defense.LoadBundle(path)
}

// HydrateOrSecure launders the always-secure fallback variant.
func HydrateOrSecure(path string) (defense.Flagger, error) {
	return defense.LoadBundleOrSecure(path)
}

// RawDetector bypasses the bundle format entirely.
func RawDetector(path string) (*detect.Detector, error) {
	return detect.Load(path)
}

// loader smuggles the banned function as a value; the reference itself is
// flagged, not just direct calls.
var loader = defense.LoadBundle
