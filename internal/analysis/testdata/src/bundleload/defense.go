package defense

// Fixture stand-in for evax/internal/defense: the rule matches the import
// path suffix and the selector names, not the real signatures.

type Flagger interface{ FlagWindow() bool }

type DetectorFlagger struct{}

func (*DetectorFlagger) FlagWindow() bool { return false }

func LoadBundle(path string) (*DetectorFlagger, error) { return &DetectorFlagger{}, nil }

func LoadBundleOrSecure(path string) (Flagger, error) { return &DetectorFlagger{}, nil }
