package serve

import "evax/internal/defense"

// open launders defense.LoadBundle behind a suppressed helper.
func open(path string) (defense.Flagger, error) {
	//evaxlint:ignore bundleload vetted: one-off migration shim
	return defense.LoadBundle(path)
}

// Restore reaches the raw bundle load through open: flagged at the call
// site with the chain as witness.
func Restore(path string) (defense.Flagger, error) {
	return open(path)
}
