package engine

import (
	"evax/internal/defense"
	"evax/internal/detect"
)

// Load is the approved owner: inside internal/engine the raw decoders are
// the implementation of the generation lifecycle, not a bypass of it.
func Load(path string) (defense.Flagger, error) {
	if _, err := detect.Load(path); err != nil {
		return nil, err
	}
	return defense.LoadBundleOrSecure(path)
}
