package detect

// Fixture stand-in for evax/internal/detect.

type Detector struct{}

func Load(path string) (*Detector, error) { return &Detector{}, nil }
