package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAnalyzer statically verifies the zero-allocation contract of the
// scoring path. Functions annotated //evaxlint:hotpath in their doc comment
// are roots; the analyzer walks everything transitively reachable from them
// through the call graph (methods, conservative interface dispatch,
// function values, closures) and flags every allocating construct on the
// way:
//
//   - make / new
//   - composite literals that escape: &T{...}, slice and map literals
//     (plain value struct literals stay on the stack and are allowed)
//   - append (may grow its backing array; preallocate and index, or reuse
//     capacity through an owned scratch/freelist)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface boxing at call sites (a non-pointer concrete argument
//     passed to an interface parameter heap-allocates its value)
//   - closure creation (func literals)
//   - any call into fmt or reflect
//
// Constructs inside panic(...) arguments are exempt: the crash path is not
// the steady-state path AllocsPerRun pins. An //evaxlint:ignore hotpath on
// a call site prunes the whole call edge, so one-time lazy-compile calls
// (e.g. a first-window expander build) do not drag their callee's
// constructors into the hot set; an ignore on a construct suppresses just
// that finding.
//
// This turns PR 3's dynamic AllocsPerRun spot checks into a statically
// verified property of the entire reachable scoring path.
func HotPathAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocating constructs in functions reachable from //evaxlint:hotpath roots",
		Run:  runHotPath,
	}
}

func runHotPath(pass *Pass) []Diagnostic {
	return diagsInPackage(pass, hotPathProgramDiags(pass.Prog))
}

// diagsInPackage filters whole-program diagnostics down to the ones whose
// file belongs to the pass's package (the per-package Run contract).
func diagsInPackage(pass *Pass, all []Diagnostic) []Diagnostic {
	files := make(map[string]bool, len(pass.Pkg.Filenames))
	for _, f := range pass.Pkg.Filenames {
		files[f] = true
	}
	var out []Diagnostic
	for _, d := range all {
		if files[d.Pos.Filename] {
			out = append(out, d)
		}
	}
	return out
}

// hotPathProgramDiags computes (once per Program) the full hot-path finding
// set.
func hotPathProgramDiags(prog *Program) []Diagnostic {
	if prog.reachCache == nil {
		prog.reachCache = map[string][]Diagnostic{}
	}
	if d, ok := prog.reachCache["hotpath"]; ok {
		return d
	}
	g := prog.CallGraph()
	sup := prog.suppressions()

	// BFS from every root; parent links reconstruct the reaching chain for
	// attribution.
	parent := map[*FuncNode]*FuncNode{}
	rootOf := map[*FuncNode]*FuncNode{}
	var queue []*FuncNode
	for _, n := range g.Nodes() {
		if n.HotRoot {
			parent[n] = nil
			rootOf[n] = n
			queue = append(queue, n)
		}
	}

	var diags []Diagnostic
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		diags = append(diags, hotConstructDiags(prog, n, chainString(parent, n))...)
		for _, e := range n.Out {
			pos := prog.Fset.Position(e.Pos)
			if sup.lineSuppressed(pos.Filename, pos.Line, "hotpath") {
				continue // the ignore directive blesses this edge
			}
			if _, seen := rootOf[e.Callee]; seen {
				continue
			}
			parent[e.Callee] = n
			rootOf[e.Callee] = rootOf[n]
			queue = append(queue, e.Callee)
		}
	}
	prog.reachCache["hotpath"] = diags
	return diags
}

// chainString renders "root → ... → n" for attribution ("hotpath root" for
// a root itself).
func chainString(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	if parent[n] == nil {
		return "hotpath root"
	}
	var names []string
	for m := n; m != nil; m = parent[m] {
		names = append(names, m.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return "reachable from hotpath root via " + strings.Join(names, " → ")
}

// hotConstructDiags scans one function body for allocating constructs.
func hotConstructDiags(prog *Program, n *FuncNode, chain string) []Diagnostic {
	info := n.Pkg.Info
	var diags []Diagnostic
	flag := func(pos token.Pos, what string) {
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Rule: "hotpath",
			Message: fmt.Sprintf("%s in %s (%s); the hot path must not allocate — "+
				"hoist into setup, reuse owned scratch, or annotate the cold call site with //evaxlint:ignore hotpath",
				what, n.Name(), chain),
		})
	}

	// panicArgs marks argument subtrees of panic(...) calls: the crash path
	// is exempt from the allocation contract.
	panicArgs := map[ast.Node]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				for _, a := range call.Args {
					panicArgs[a] = true
				}
			}
		}
		return true
	})

	// flaggedLits marks composite literals already reported through their
	// enclosing &-expression.
	flaggedLits := map[ast.Node]bool{}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if panicArgs[node] {
			return false
		}
		switch e := node.(type) {
		case *ast.FuncLit:
			flag(e.Pos(), "closure creation allocates")
			return false // the creation is the finding; don't pile on its body
		case *ast.UnaryExpr:
			if lit, ok := e.X.(*ast.CompositeLit); ok && e.Op == token.AND {
				flaggedLits[lit] = true
				flag(e.Pos(), "&composite literal escapes to the heap")
			}
		case *ast.CompositeLit:
			if flaggedLits[e] {
				return true
			}
			switch info.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				flag(e.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				flag(e.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(info.TypeOf(e.X)) {
				flag(e.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			diagnoseHotCall(info, e, flag)
		}
		return true
	})
	return diags
}

// diagnoseHotCall classifies one call expression: builtin allocators,
// allocating conversions, fmt/reflect calls, and interface boxing of
// arguments.
func diagnoseHotCall(info *types.Info, call *ast.CallExpr, flag func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Builtins: make / new / append.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				flag(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	tv, ok := info.Types[fun]
	if !ok {
		return
	}

	// Conversions: string <-> []byte/[]rune copy their payload; conversion
	// to an interface type boxes.
	if tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		target := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case isString(target) && isByteOrRuneSlice(src):
			flag(call.Pos(), "string conversion copies the slice")
		case isByteOrRuneSlice(target) && isString(src):
			flag(call.Pos(), "byte/rune-slice conversion copies the string")
		case types.IsInterface(target) && src != nil && !types.IsInterface(src) && boxingAllocates(src):
			flag(call.Pos(), "conversion to interface boxes the value")
		}
		return
	}

	// fmt / reflect are wholesale banned on the hot path.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			switch pkgNameOf(info, x) {
			case "fmt":
				flag(call.Pos(), "fmt call allocates (formatting state and boxed operands)")
				return
			case "reflect":
				flag(call.Pos(), "reflect call allocates")
				return
			}
		}
	}

	// Interface boxing at the call site: a concrete, non-pointer-shaped
	// argument passed to an interface parameter heap-allocates.
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if isUntypedNil(info, arg) || !boxingAllocates(at) {
			continue
		}
		flag(arg.Pos(), fmt.Sprintf("argument boxed into interface parameter (%s)", at.String()))
	}
}

// boxingAllocates reports whether converting a value of concrete type t to
// an interface heap-allocates. Pointer-shaped types (pointers, channels,
// maps, funcs, unsafe pointers) fit the interface data word directly.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isUntypedNil reports whether e is the nil literal.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
