package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCallGraphEdges(t *testing.T) {
	// util is checked first so graph.go can import it: the loader test
	// below covers the same property for real on-disk modules.
	prog := loadFixtureProg(t,
		fixturePkg{path: "evax/internal/util", files: fixture("callgraph", "util.go")},
		fixturePkg{path: "evax/internal/cg", files: fixture("callgraph", "graph.go")},
	)
	g := prog.CallGraph()
	var b strings.Builder
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			pos := prog.Fset.Position(e.Pos)
			fmt.Fprintf(&b, "%s -> %s [%s] %s:%d\n",
				n.Name(), e.Callee.Name(), e.Kind, filepath.Base(pos.Filename), pos.Line)
		}
	}
	checkGolden(t, filepath.Join("testdata", "src", "callgraph", "edges.golden"), b.String())
}

func TestCallGraphLookupAndRoots(t *testing.T) {
	prog := loadFixtureProg(t,
		fixturePkg{path: "evax/internal/hot", files: fixture("hotpath", "bad.go")})
	g := prog.CallGraph()
	root := g.Lookup("hot.Score")
	if root == nil {
		t.Fatal("Lookup(hot.Score) = nil")
	}
	if !root.HotRoot {
		t.Error("hot.Score not marked HotRoot despite //evaxlint:hotpath")
	}
	if helper := g.Lookup("hot.helper"); helper == nil || helper.HotRoot {
		t.Errorf("hot.helper: node %v, want non-root node", helper)
	}
}

func TestHotPath(t *testing.T) {
	runRule(t, HotPathAnalyzer(),
		filepath.Join("testdata", "src", "hotpath", "bad.golden"),
		fixturePkg{path: "evax/internal/hot", files: fixture("hotpath", "bad.go")})
	runRule(t, HotPathAnalyzer(),
		filepath.Join("testdata", "src", "hotpath", "clean.golden"),
		fixturePkg{path: "evax/internal/hot", files: fixture("hotpath", "clean.go")})
	// The fused-kernel-shaped fixture: an injected allocation two call hops
	// below a batch scoring root must be attributed through the chain.
	runRule(t, HotPathAnalyzer(),
		filepath.Join("testdata", "src", "hotpath", "kernelroot.golden"),
		fixturePkg{path: "evax/internal/hot", files: fixture("hotpath", "kernelroot.go")})
}

func TestHotPathCallSiteSuppression(t *testing.T) {
	// The ignore on Serve's coldInit call prunes the edge: coldInit's
	// allocations must not be attributed into the hot set at all.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/hot",
		files: fixture("hotpath", "callsite.go"),
	})
	if diags := Analyze(prog, []*Analyzer{HotPathAnalyzer()}); len(diags) != 0 {
		t.Errorf("expected the suppressed call edge to keep coldInit out of the hot set, got: %v", diags)
	}
}

func TestWallClockLaunder(t *testing.T) {
	runRule(t, WallClockAnalyzer(),
		filepath.Join("testdata", "src", "wallclock", "launder.golden"),
		fixturePkg{path: "evax/internal/dataset", files: fixture("wallclock", "launder.go")})
}

func TestGoroutineLaunder(t *testing.T) {
	runRule(t, GoroutineAnalyzer(),
		filepath.Join("testdata", "src", "goroutine", "launder.golden"),
		fixturePkg{path: "evax/internal/experiments", files: fixture("goroutine", "launder.go")})
}

func TestRawWriteLaunder(t *testing.T) {
	runRule(t, RawWriteAnalyzer(),
		filepath.Join("testdata", "src", "rawwrite", "launder.golden"),
		fixturePkg{path: "evax/internal/detect", files: fixture("rawwrite", "launder.go")})
}

func TestFleetBarrier(t *testing.T) {
	// internal/fleet is a trusted barrier for both confinement rules: its
	// own clock reads (heartbeat pacing, probe RTTs) and goroutines
	// (coordinator loop, tenant streams) are part of its contract.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/fleet",
		files: fixture("wallclock", "fleet.go"),
	})
	if diags := Analyze(prog, []*Analyzer{WallClockAnalyzer()}); len(diags) != 0 {
		t.Errorf("wallclock fired inside internal/fleet: %v", diags)
	}
	prog = loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/fleet",
		files: fixture("goroutine", "bad.go"),
	})
	if diags := Analyze(prog, []*Analyzer{GoroutineAnalyzer()}); len(diags) != 0 {
		t.Errorf("goroutine fired inside internal/fleet: %v", diags)
	}

	// The barrier is precisely scoped: a non-exempt caller may call INTO
	// the fleet helper (trusted, no finding), but laundering its own
	// time.Now through a local fleet-looking helper is still flagged with
	// the chain as witness.
	runRule(t, WallClockAnalyzer(),
		filepath.Join("testdata", "src", "wallclock", "fleetcaller.golden"),
		fixturePkg{path: "evax/internal/fleet", files: fixture("wallclock", "fleet.go")},
		fixturePkg{path: "evax/internal/dataset", files: fixture("wallclock", "fleetcaller.go")})
}

func TestConfineExemptBarrier(t *testing.T) {
	// The laundering wrapper inside an exempt package is trusted: neither
	// its own use nor calls into it propagate.
	prog := loadFixtureProg(t, fixturePkg{
		path:  "evax/internal/runner",
		files: fixture("wallclock", "launder.go"),
	})
	if diags := Analyze(prog, []*Analyzer{WallClockAnalyzer()}); len(diags) != 0 {
		t.Errorf("wallclock propagated out of an exempt package: %v", diags)
	}
}

// TestLoadModuleMultiPackage builds a real two-package module on disk and
// checks the loader resolves the cross-package import, orders dependencies
// first, and feeds the call graph cross-package edges.
func TestLoadModuleMultiPackage(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/m\n\ngo 1.21\n")
	write("internal/lib/lib.go", `package lib

// Add is called cross-package.
func Add(a, b int) int { return a + b }
`)
	write("internal/app/app.go", `package app

import "example.com/m/internal/lib"

// Total calls into lib.
func Total(xs []int) int {
	t := 0
	for _, x := range xs {
		t = lib.Add(t, x)
	}
	return t
}
`)
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(prog.Packages) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(prog.Packages))
	}
	if prog.Packages[0].Path != "example.com/m/internal/lib" {
		t.Errorf("dependency not loaded first: order %q, %q",
			prog.Packages[0].Path, prog.Packages[1].Path)
	}
	g := prog.CallGraph()
	total := g.Lookup("app.Total")
	if total == nil {
		t.Fatal("Lookup(app.Total) = nil")
	}
	found := false
	for _, e := range total.Out {
		if e.Callee.Name() == "lib.Add" && e.Kind == EdgeCall {
			found = true
		}
	}
	if !found {
		t.Errorf("no cross-package call edge app.Total -> lib.Add; edges: %v", total.Out)
	}
}
