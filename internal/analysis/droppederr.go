package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrAllowedFuncs maps package path -> function names whose error
// (or (n, error)) result may be ignored: terminal/stdout printing, where
// the conventional Go idiom is to ignore the write error.
var droppedErrAllowedFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
}

// droppedErrAllowedMethods lists receiver types (sans pointer) whose
// Write*/Read* style methods are documented to always return a nil error.
var droppedErrAllowedMethods = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
	"strings.Reader":  true,
	"hash.Hash":       true,
}

// DroppedErrAnalyzer flags call statements whose error result is silently
// discarded: bare expression statements, go/defer statements, and
// blank-identifier assignments. A dropped error in the training or
// persistence paths (detector save/load, corpus I/O) turns a hard failure
// into silent result corruption. Allowed: fmt printing to stdio and
// bytes.Buffer/strings.Builder writes (documented nil-error).
func DroppedErrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc:  "forbid silently discarded error results",
		Run:  runDroppedErr,
	}
}

func runDroppedErr(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	check := func(call *ast.CallExpr, how string) {
		if call == nil || !callReturnsError(pass, call) || callErrAllowed(pass, call) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  pass.Position(call.Pos()),
			Rule: "droppederr",
			Message: "error result of " + callName(call) + " is " + how +
				"; handle it or annotate with //evaxlint:ignore droppederr <reason>",
		})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "discarded")
				}
			case *ast.GoStmt:
				check(st.Call, "discarded (go statement)")
			case *ast.DeferStmt:
				check(st.Call, "discarded (deferred call)")
			case *ast.AssignStmt:
				diags = append(diags, blankErrAssigns(pass, st)...)
			}
			return true
		})
	}
	return diags
}

// blankErrAssigns flags error results assigned to the blank identifier.
func blankErrAssigns(pass *Pass, st *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	flag := func(call *ast.CallExpr) {
		if callErrAllowed(pass, call) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  pass.Position(call.Pos()),
			Rule: "droppederr",
			Message: "error result of " + callName(call) + " is blank-assigned" +
				"; handle it or annotate with //evaxlint:ignore droppederr <reason>",
		})
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// n, err := f() form: find which tuple slots are errors.
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok {
			return nil
		}
		for i := 0; i < tuple.Len() && i < len(st.Lhs); i++ {
			if !isErrorType(tuple.At(i).Type()) {
				continue
			}
			if ident, ok := st.Lhs[i].(*ast.Ident); ok && ident.Name == "_" {
				flag(call)
			}
		}
		return diags
	}
	// 1:1 assignments: _ = f() where f returns exactly an error.
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		ident, ok := st.Lhs[i].(*ast.Ident)
		if !ok || ident.Name != "_" {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if isErrorType(pass.TypeOf(call)) {
			flag(call)
		}
	}
	return diags
}

// callReturnsError reports whether the call's result is or contains error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// callErrAllowed reports whether the callee is on the ignore allowlist.
func callErrAllowed(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level function: fmt.Printf etc.
	if ident, ok := sel.X.(*ast.Ident); ok {
		if funcs, ok := droppedErrAllowedFuncs[pkgNameOf(pass.Pkg.Info, ident)]; ok {
			return funcs[sel.Sel.Name]
		}
	}
	// Method call: match the receiver type string.
	if s, ok := pass.Pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		recv := s.Recv().String()
		if droppedErrAllowedMethods[recv] || droppedErrAllowedMethods[strings.TrimPrefix(recv, "*")] {
			return true
		}
	}
	return false
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "call"
}
