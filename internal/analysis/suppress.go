package analysis

import (
	"strings"
)

// Suppressions are parsed from //evaxlint:ignore comments. The syntax is
//
//	//evaxlint:ignore rule1[,rule2,...] optional justification
//
// A suppression applies to diagnostics of the named rules on the comment's
// own line (trailing comment) and on the line immediately below (comment on
// its own line above the offending statement). The rule list may be "all"
// to suppress every rule.
type suppressions struct {
	// byFile maps filename -> line -> set of suppressed rule names.
	byFile map[string]map[int]map[string]bool
}

const ignoreDirective = "evaxlint:ignore"

// collectSuppressions scans every comment in the program.
func collectSuppressions(prog *Program) *suppressions {
	s := &suppressions{byFile: map[string]map[int]map[string]bool{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, ignoreDirective)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					rules := strings.Split(fields[0], ",")
					pos := prog.Fset.Position(c.Pos())
					lines := s.byFile[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						s.byFile[pos.Filename] = lines
					}
					// Apply to the comment's line and the next line.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = map[string]bool{}
							lines[line] = set
						}
						for _, r := range rules {
							if r = strings.TrimSpace(r); r != "" {
								set[r] = true
							}
						}
					}
				}
			}
		}
	}
	return s
}

// suppressed reports whether d is covered by an ignore directive.
func (s *suppressions) suppressed(d Diagnostic) bool {
	return s.lineSuppressed(d.Pos.Filename, d.Pos.Line, d.Rule)
}

// lineSuppressed reports whether rule is ignored at filename:line. The
// interprocedural rules use this during traversal: an ignore directive on a
// call site prunes that call edge, so findings attributed through it (a
// transitively reached allocation, a laundered primitive) are suppressed
// along with the direct one.
func (s *suppressions) lineSuppressed(filename string, line int, rule string) bool {
	lines, ok := s.byFile[filename]
	if !ok {
		return false
	}
	set, ok := lines[line]
	if !ok {
		return false
	}
	return set[rule] || set["all"]
}
