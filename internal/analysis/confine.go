package analysis

import (
	"fmt"
	"go/token"
)

// This file implements the transitive layer shared by the confinement rules
// (wallclock, goroutine, rawwrite). Each rule names a set of banned
// primitives and a set of exempt packages; the direct layer flags primitive
// uses in non-exempt packages at the use site, exactly as the pre-call-graph
// analyzers did. The transitive layer closes the laundering hole: a helper
// whose direct finding was silenced with //evaxlint:ignore (or that hides
// behind more wrappers) no longer smuggles the primitive into banned
// packages, because every call site that can reach it is flagged too.
//
// Semantics, precisely:
//
//   - Exempt packages are trusted barriers. Their own primitive uses are
//     legitimate, and calling INTO them is legitimate (dataset calling
//     runner.Map must not inherit runner's goroutines), so reachability
//     never propagates through them.
//   - A non-exempt function with an unsuppressed direct use is "reported":
//     the root cause is already visible at the use site, so its callers are
//     not flagged again.
//   - A non-exempt function is "silent" if its only direct uses are
//     suppressed, or if it has an unsuppressed call edge to another silent
//     function: it reaches the primitive with no diagnostic revealing that.
//   - Every call edge from a non-exempt function into a silent function is
//     flagged at the call site, with the reaching chain as witness.
//
// An //evaxlint:ignore <rule> on a call-site line prunes that edge from the
// traversal, so a deliberate suppression stops the transitive findings
// attributed through it instead of merely hiding one layer.

// useSite is one occurrence of a rule's banned primitive.
type useSite struct {
	Pos token.Pos
	// What names the primitive for chain rendering, e.g. "time.Now",
	// "go statement".
	What string
	// DirectMsg is the message attached when the use is flagged directly.
	DirectMsg string
}

// confineSpec parameterizes the transitive engine for one rule.
type confineSpec struct {
	rule string
	// exempt reports whether pkg may use the primitive (and acts as a
	// propagation barrier).
	exempt func(*Package) bool
	// uses scans one package for primitive uses.
	uses func(*Package) []useSite
	// verb completes "call to <fn> <verb>", e.g. "reaches the wall clock".
	verb string
	// remedy completes the diagnostic with the approved idiom.
	remedy string
}

// nodeAt returns the function whose declaration spans pos, or nil for
// positions outside any declared body (package-level initializers).
func (g *CallGraph) nodeAt(pos token.Pos) *FuncNode {
	for _, n := range g.order {
		if n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			return n
		}
	}
	return nil
}

// transitiveConfineDiags computes (once per Program per rule) the call-site
// findings for silent reachers of the rule's primitive.
func transitiveConfineDiags(prog *Program, spec confineSpec) []Diagnostic {
	if prog.reachCache == nil {
		prog.reachCache = map[string][]Diagnostic{}
	}
	if d, ok := prog.reachCache[spec.rule]; ok {
		return d
	}
	g := prog.CallGraph()
	sup := prog.suppressions()

	edgeOK := func(e CallEdge) bool {
		p := prog.Fset.Position(e.Pos)
		return !sup.lineSuppressed(p.Filename, p.Line, spec.rule)
	}

	// Attribute primitive uses to their enclosing declarations.
	type nodeUses struct {
		unsuppressed bool
		first        useSite
	}
	usesOf := map[*FuncNode]*nodeUses{}
	for _, pkg := range prog.Packages {
		for _, u := range spec.uses(pkg) {
			n := g.nodeAt(u.Pos)
			if n == nil {
				continue
			}
			nu := usesOf[n]
			if nu == nil {
				nu = &nodeUses{first: u}
				usesOf[n] = nu
			}
			p := prog.Fset.Position(u.Pos)
			if !sup.lineSuppressed(p.Filename, p.Line, spec.rule) {
				nu.unsuppressed = true
			}
		}
	}

	// Seed: reported nodes stop propagation; suppressed-only users start
	// silent. Exempt packages are neither.
	silent := map[*FuncNode]bool{}
	reported := map[*FuncNode]bool{}
	for n, nu := range usesOf {
		if spec.exempt(n.Pkg) {
			continue
		}
		if nu.unsuppressed {
			reported[n] = true
		} else {
			silent[n] = true
		}
	}

	// Fixpoint: silence spreads backwards over unsuppressed edges through
	// non-exempt, non-reported callers.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if silent[n] || reported[n] || spec.exempt(n.Pkg) {
				continue
			}
			for _, e := range n.Out {
				if e.Callee != n && silent[e.Callee] && edgeOK(e) {
					silent[n] = true
					changed = true
					break
				}
			}
		}
	}

	// witness renders "n → ... → primitive" for diagnostics; the visiting
	// set breaks recursion cycles among mutually silent functions.
	var witness func(n *FuncNode, visiting map[*FuncNode]bool) string
	witness = func(n *FuncNode, visiting map[*FuncNode]bool) string {
		visiting[n] = true
		defer delete(visiting, n)
		if nu := usesOf[n]; nu != nil && !nu.unsuppressed {
			return n.Name() + " → " + nu.first.What
		}
		for _, e := range n.Out {
			if e.Callee != n && silent[e.Callee] && !visiting[e.Callee] && edgeOK(e) {
				return n.Name() + " → " + witness(e.Callee, visiting)
			}
		}
		return n.Name()
	}

	var diags []Diagnostic
	seen := map[string]bool{}
	for _, f := range g.Nodes() {
		if spec.exempt(f.Pkg) {
			continue
		}
		for _, e := range f.Out {
			if e.Callee == f || !silent[e.Callee] || !edgeOK(e) {
				continue
			}
			pos := prog.Fset.Position(e.Pos)
			key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, e.Callee.Name())
			if seen[key] {
				continue
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos:  pos,
				Rule: spec.rule,
				Message: fmt.Sprintf("call to %s %s (%s); the %s rule is transitive — %s",
					e.Callee.Name(), spec.verb, witness(e.Callee, map[*FuncNode]bool{}), spec.rule, spec.remedy),
			})
		}
	}
	prog.reachCache[spec.rule] = diags
	return diags
}
