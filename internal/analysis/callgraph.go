package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the whole-program call graph the interprocedural
// rules (hotpath, and the transitive wallclock/goroutine/rawwrite
// confinement rules) are built on. The graph covers every function and
// method declared in the module; edges are resolved with the go/types
// results the loader already computes:
//
//   - static calls (pkg-level functions, same- and cross-package) resolve
//     to their declaration;
//   - method calls resolve through types.Selections to the declared
//     method (embedding-promoted methods resolve to the embedded
//     declaration);
//   - interface method calls resolve conservatively to *every* module
//     type that implements the interface (value and pointer method sets);
//   - a function referenced as a value (stored, passed, returned) gets a
//     conservative "may call" edge from the referencing function, since
//     the graph cannot see where the value is eventually invoked;
//   - function literals are attributed to their enclosing declaration:
//     calls inside a closure become edges of the function that created it.
//
// Calls into packages outside the module (stdlib) have no callee body and
// produce no edge; rules that care about specific stdlib primitives
// (time.Now, os.WriteFile, fmt.*) detect those at the call site instead.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// EdgeCall is a direct static call: pkg-level function or a method
	// resolved through a concrete receiver.
	EdgeCall EdgeKind = iota
	// EdgeInterface is a conservative edge from an interface method call
	// to one concrete implementation in the module.
	EdgeInterface
	// EdgeRef is a conservative edge for a function referenced as a value
	// (assigned, passed, or returned) rather than called directly.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeInterface:
		return "iface"
	default:
		return "ref"
	}
}

// CallEdge is one resolved caller→callee relationship.
type CallEdge struct {
	Callee *FuncNode
	// Pos is the call site (or value reference) in the caller's body.
	Pos  token.Pos
	Kind EdgeKind
}

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Out lists resolved outgoing edges in source order.
	Out []CallEdge
	// HotRoot records a //evaxlint:hotpath annotation in the declaration's
	// doc comment: the function and everything reachable from it must stay
	// allocation-free (see hotpath.go).
	HotRoot bool
}

// Name renders the node as pkg.Func or (pkg.Recv).Method / (*pkg.Recv).Method
// — the form diagnostics and goldens use.
func (n *FuncNode) Name() string { return funcDisplayName(n.Fn) }

// funcDisplayName formats fn with its package's last path segment as the
// qualifier, e.g. "detect.(*Detector).Score" or "hpc.NewExpander".
func funcDisplayName(fn *types.Func) string {
	qual := func(p *types.Package) string {
		path := p.Path()
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// The package segment already qualifies the name; keep the receiver
		// type bare ("detect.(*Detector).Score", not "detect.(*detect.Detector).Score").
		bare := func(*types.Package) string { return "" }
		return fmt.Sprintf("%s.(%s).%s", qual(fn.Pkg()), types.TypeString(sig.Recv().Type(), bare), fn.Name())
	}
	return fmt.Sprintf("%s.%s", qual(fn.Pkg()), fn.Name())
}

// CallGraph is the resolved whole-program graph.
type CallGraph struct {
	prog  *Program
	nodes map[*types.Func]*FuncNode
	// order holds nodes in deterministic (package, file, position) order.
	order []*FuncNode
}

// Nodes returns every declared function in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// NodeOf returns the node for a declared function, or nil for functions
// outside the module (or without bodies).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Lookup finds a node by display name (tests and tooling).
func (g *CallGraph) Lookup(name string) *FuncNode {
	for _, n := range g.order {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// CallGraph builds (once) and returns the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	if prog.callGraph == nil {
		prog.callGraph = buildCallGraph(prog)
	}
	return prog.callGraph
}

const hotpathDirective = "evaxlint:hotpath"

// hasHotpathDirective reports whether a doc comment carries the
// //evaxlint:hotpath annotation.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{prog: prog, nodes: map[*types.Func]*FuncNode{}}

	// Pass 1: one node per function declaration with a body.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Pkg: pkg, Decl: fd, HotRoot: hasHotpathDirective(fd.Doc)}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}

	impls := newImplIndex(prog)

	// Pass 2: resolve edges from every body.
	for _, n := range g.order {
		g.resolveEdges(n, impls)
	}
	return g
}

// implIndex resolves interface methods to the module's concrete
// implementations.
type implIndex struct {
	// named lists every module-declared non-interface named type.
	named []*types.Named
	// cache memoizes interface-method → implementations lookups.
	cache map[*types.Func][]*types.Func
}

func newImplIndex(prog *Program) *implIndex {
	idx := &implIndex{cache: map[*types.Func][]*types.Func{}}
	for _, pkg := range prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// implementations returns the declared methods named like m on every module
// type whose pointer method set satisfies m's interface.
func (idx *implIndex) implementations(m *types.Func) []*types.Func {
	if out, ok := idx.cache[m]; ok {
		return out
	}
	var out []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		idx.cache[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		idx.cache[m] = nil
		return nil
	}
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return funcDisplayName(out[i]) < funcDisplayName(out[j]) })
	idx.cache[m] = out
	return out
}

// resolveEdges walks one declaration body (closures included) and records
// outgoing edges.
func (g *CallGraph) resolveEdges(n *FuncNode, impls *implIndex) {
	info := n.Pkg.Info

	// calleeExprs marks expressions in call position, so identifiers used
	// as plain values (function references) can be told apart.
	calleeExprs := map[ast.Expr]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			calleeExprs[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	addEdge := func(fn *types.Func, pos token.Pos, kind EdgeKind) {
		callee := g.nodes[fn]
		if callee == nil {
			return // stdlib or bodiless declaration
		}
		n.Out = append(n.Out, CallEdge{Callee: callee, Pos: pos, Kind: kind})
	}

	// handled marks selector Sel identifiers already resolved through their
	// parent SelectorExpr, so the Ident case below does not double-count
	// them (descent must still continue: the receiver expression may itself
	// contain calls).
	handled := map[*ast.Ident]bool{}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.Ident:
			if handled[e] {
				return true
			}
			fn, ok := info.Uses[e].(*types.Func)
			if !ok {
				return true
			}
			if calleeExprs[ast.Expr(e)] {
				addEdge(fn, e.Pos(), EdgeCall)
			} else {
				addEdge(fn, e.Pos(), EdgeRef)
			}
		case *ast.SelectorExpr:
			kind := EdgeCall
			if !calleeExprs[ast.Expr(e)] {
				kind = EdgeRef
			}
			if sel, ok := info.Selections[e]; ok {
				// Method value/expression or concrete method call.
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				handled[e.Sel] = true
				if recv := sel.Recv(); recv != nil && types.IsInterface(recv) {
					for _, impl := range impls.implementations(fn) {
						addEdge(impl, e.Pos(), EdgeInterface)
					}
					return true
				}
				addEdge(fn, e.Pos(), kind)
				return true
			}
			// Package-qualified reference: pkg.Func.
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
				handled[e.Sel] = true
				addEdge(fn, e.Pos(), kind)
			}
		}
		return true
	})
}
