package analysis

import (
	"go/ast"
	"go/token"
)

// floatEqExemptPkgs are the approved epsilon-helper packages; comparisons
// inside them are the implementation of the approved idiom itself.
var floatEqExemptPkgs = []string{
	"internal/fmath",
}

// FloatEqAnalyzer flags == and != between floating-point operands. The
// detector thresholds, GAN losses and normalized counters all live in
// float64; exact comparison silently diverges across compilers, FMA
// contraction, and accumulation order, which breaks run-to-run
// reproducibility of the paper's figures. The approved idiom is
// evax/internal/fmath: fmath.Eq(a, b), fmath.Zero(x), fmath.Near(a, b, eps).
func FloatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "forbid ==/!= between floating-point operands",
		Run:  runFloatEq,
	}
}

func runFloatEq(pass *Pass) []Diagnostic {
	for _, s := range floatEqExemptPkgs {
		if pass.Pkg.HasSuffix(s) {
			return nil
		}
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if bin.Op != token.EQL && bin.Op != token.NEQ {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			// Constant-folded comparisons (e.g. two untyped constants)
			// are evaluated at compile time and are exact.
			if tv, ok := pass.Pkg.Info.Types[bin]; ok && tv.Value != nil {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pass.Position(bin.Pos()),
				Rule: "floateq",
				Message: "exact float comparison (" + bin.Op.String() + ") is not reproducible across " +
					"optimization/accumulation-order changes; use fmath.Eq/fmath.Zero/fmath.Near",
			})
			return true
		})
	}
	return diags
}
