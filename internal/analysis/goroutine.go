package analysis

import (
	"go/ast"
)

// goroutineExemptScope lists the package-path suffixes allowed to use raw
// concurrency primitives. internal/runner is the deterministic fan-out
// engine every campaign must flow through: it alone owns goroutines and
// WaitGroups, so index-addressed merging and per-job seed derivation cannot
// be bypassed by ad-hoc parallel loops. internal/serve is the online
// service: connection readers/writers and shard batchers are long-lived
// event loops, not fan-out jobs — scheduling there never reaches a score
// (verdicts depend only on their row), so raw concurrency is part of its
// contract rather than a determinism leak.
var goroutineExemptScope = []string{
	"internal/runner",
	"internal/serve",
}

// GoroutineAnalyzer flags raw go statements and sync.WaitGroup references
// outside internal/runner. Ad-hoc goroutines reintroduce exactly the
// nondeterminism PR 2 removed: completion-order-dependent merges and shared
// RNG state across workers. The approved idiom is runner.Map/FlatMap/MapErr
// with a per-job seed from runner.DeriveSeed.
func GoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine",
		Doc:  "forbid raw go statements and sync.WaitGroup outside internal/runner",
		Run:  runGoroutine,
	}
}

func runGoroutine(pass *Pass) []Diagnostic {
	for _, s := range goroutineExemptScope {
		if pass.Pkg.HasSuffix(s) {
			return nil
		}
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				diags = append(diags, Diagnostic{
					Pos:  pass.Position(node.Pos()),
					Rule: "goroutine",
					Message: "raw go statement outside internal/runner; fan work out with " +
						"runner.Map/FlatMap (index-addressed, deterministic merge) instead",
				})
			case *ast.SelectorExpr:
				// A sync.WaitGroup type reference: declarations, fields,
				// parameters. Method calls on a WaitGroup require one of
				// these, so flagging the reference covers every use.
				if ident, ok := node.X.(*ast.Ident); ok &&
					pkgNameOf(pass.Pkg.Info, ident) == "sync" && node.Sel.Name == "WaitGroup" {
					diags = append(diags, Diagnostic{
						Pos:  pass.Position(node.Pos()),
						Rule: "goroutine",
						Message: "sync.WaitGroup outside internal/runner; the runner engine owns " +
							"worker lifecycle — submit jobs through runner.Map instead",
					})
				}
			}
			return true
		})
	}
	return diags
}
