package analysis

import (
	"go/ast"
)

// goroutineExemptScope lists the package-path suffixes allowed to use raw
// concurrency primitives. internal/runner is the deterministic fan-out
// engine every campaign must flow through: it alone owns goroutines and
// WaitGroups, so index-addressed merging and per-job seed derivation cannot
// be bypassed by ad-hoc parallel loops. internal/serve is the online
// service: connection readers/writers and shard batchers are long-lived
// event loops, not fan-out jobs — scheduling there never reaches a score
// (verdicts depend only on their row), so raw concurrency is part of its
// contract rather than a determinism leak. internal/fleet extends the same
// argument one level up: coordinator heartbeats and tenant streams are
// serve-style event loops, and the merged replay digest is folded in corpus
// order, so fleet scheduling cannot perturb a verdict either.
var goroutineExemptScope = []string{
	"internal/runner",
	"internal/serve",
	"internal/serve/client",
	"internal/fleet",
}

// GoroutineAnalyzer flags raw go statements and sync.WaitGroup references
// outside internal/runner. Ad-hoc goroutines reintroduce exactly the
// nondeterminism PR 2 removed: completion-order-dependent merges and shared
// RNG state across workers. The approved idiom is runner.Map/FlatMap/MapErr
// with a per-job seed from runner.DeriveSeed.
//
// The rule is transitive over the call graph (see confine.go): a helper
// that wraps a go statement behind an //evaxlint:ignore cannot be called
// from banned packages without every such call site being flagged. Calling
// into internal/runner or internal/serve themselves is the approved idiom
// and never propagates.
func GoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine",
		Doc:  "forbid raw go statements and sync.WaitGroup, even through helpers, outside internal/runner",
		Run:  runGoroutine,
	}
}

func goroutineExempt(pkg *Package) bool {
	for _, s := range goroutineExemptScope {
		if pkg.HasSuffix(s) {
			return true
		}
	}
	return false
}

// goroutineUses scans one package for raw concurrency primitives.
func goroutineUses(pkg *Package) []useSite {
	var uses []useSite
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				uses = append(uses, useSite{
					Pos:  node.Pos(),
					What: "go statement",
					DirectMsg: "raw go statement outside internal/runner; fan work out with " +
						"runner.Map/FlatMap (index-addressed, deterministic merge) instead",
				})
			case *ast.SelectorExpr:
				// A sync.WaitGroup type reference: declarations, fields,
				// parameters. Method calls on a WaitGroup require one of
				// these, so flagging the reference covers every use.
				if ident, ok := node.X.(*ast.Ident); ok &&
					pkgNameOf(pkg.Info, ident) == "sync" && node.Sel.Name == "WaitGroup" {
					uses = append(uses, useSite{
						Pos:  node.Pos(),
						What: "sync.WaitGroup",
						DirectMsg: "sync.WaitGroup outside internal/runner; the runner engine owns " +
							"worker lifecycle — submit jobs through runner.Map instead",
					})
				}
			}
			return true
		})
	}
	return uses
}

func goroutineSpec() confineSpec {
	return confineSpec{
		rule:   "goroutine",
		exempt: goroutineExempt,
		uses:   goroutineUses,
		verb:   "launches raw concurrency",
		remedy: "fan out through runner.Map instead of helpers that wrap go statements",
	}
}

func runGoroutine(pass *Pass) []Diagnostic {
	diags := diagsInPackage(pass, transitiveConfineDiags(pass.Prog, goroutineSpec()))
	if goroutineExempt(pass.Pkg) {
		return diags
	}
	for _, u := range goroutineUses(pass.Pkg) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Position(u.Pos),
			Rule:    "goroutine",
			Message: u.DirectMsg,
		})
	}
	return diags
}
