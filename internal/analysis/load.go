package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every non-test package under root (a
// directory containing go.mod) and returns them in dependency order.
// Patterns restrict which packages are *analyzed* later (see Match);
// loading always covers the whole module so cross-package rules (ctrname)
// see the full picture. Test files (_test.go) are excluded by design: the
// rule suite targets production code, and the race gate covers tests.
func LoadModule(root string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path      string
		files     []*ast.File
		filenames []string
		imports   map[string]bool
	}
	raw := make(map[string]*rawPkg)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		impPath := modPath
		if rel != "." {
			impPath = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		rp := &rawPkg{path: impPath, imports: map[string]bool{}}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			fname := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", fname, err)
			}
			rp.files = append(rp.files, f)
			rp.filenames = append(rp.filenames, fname)
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					rp.imports[p] = true
				}
			}
		}
		if len(rp.files) > 0 {
			raw[impPath] = rp
		}
	}

	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	order, err := topoSort(paths, func(p string) []string {
		rp, ok := raw[p]
		if !ok {
			return nil
		}
		deps := make([]string, 0, len(rp.imports))
		for d := range rp.imports {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		return deps
	})
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: fset}
	std := importer.ForCompiler(fset, "source", nil)
	local := make(map[string]*types.Package)
	imp := &progImporter{std: std, local: local}
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		local[path] = tpkg
		prog.Packages = append(prog.Packages, &Package{
			Path:      path,
			Files:     rp.files,
			Filenames: rp.filenames,
			Types:     tpkg,
			Info:      info,
		})
	}
	return prog, nil
}

// progImporter serves module-local packages from the checked set and
// delegates everything else (stdlib) to the source importer.
type progImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if p, ok := pi.local[path]; ok {
		return p, nil
	}
	return pi.std.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// packageDirs lists directories under root that may hold Go packages,
// skipping hidden dirs, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// topoSort orders package paths so dependencies precede dependents. deps
// must return only paths present in the input set (or paths it tolerates
// being visited with an empty dependency list).
func topoSort(paths []string, deps func(string) []string) ([]string, error) {
	known := make(map[string]bool, len(paths))
	for _, p := range paths {
		known[p] = true
	}
	const (
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case gray:
			return fmt.Errorf("import cycle through %s", p)
		case black:
			return nil
		}
		state[p] = gray
		for _, d := range deps(p) {
			if !known[d] {
				continue
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Match reports whether the package's import path matches any of the
// patterns. Supported forms: "./..." (everything), "dir/..." or
// "./dir/..." (subtree), "./dir" / "dir" (exact directory), and a full
// import path. Patterns are interpreted relative to the module root.
func (p *Package) Match(modPath string, patterns []string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, modPath), "/")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") ||
				p.Path == sub || strings.HasPrefix(p.Path, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat || p.Path == pat {
			return true
		}
	}
	return false
}

// LintModule loads the module at root and runs the full analyzer suite
// over packages matching patterns, returning unsuppressed diagnostics with
// file paths made relative to root.
func LintModule(root string, patterns []string) ([]Diagnostic, error) {
	return lintModule(root, patterns, false)
}

// LintModuleAll is LintModule keeping suppressed findings (Suppressed set on
// each); cmd/evaxlint -json uses it so audit tooling sees every directive.
func LintModuleAll(root string, patterns []string) ([]Diagnostic, error) {
	return lintModule(root, patterns, true)
}

func lintModule(root string, patterns []string, includeSuppressed bool) ([]Diagnostic, error) {
	prog, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	matched := 0
	for _, p := range prog.Packages {
		if p.Match(modPath, patterns) {
			matched++
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no packages match %v — a typo here would silently disable the gate", patterns)
	}
	var diags []Diagnostic
	if includeSuppressed {
		diags = AnalyzeAll(prog, Analyzers())
	} else {
		diags = Analyze(prog, Analyzers())
	}
	var out []Diagnostic
	for _, d := range diags {
		pkg := prog.packageOfFile(d.Pos.Filename)
		if pkg == nil || !pkg.Match(modPath, patterns) {
			continue
		}
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		out = append(out, d)
	}
	return out, nil
}

// packageOfFile finds the package owning filename.
func (prog *Program) packageOfFile(filename string) *Package {
	for _, p := range prog.Packages {
		for _, f := range p.Filenames {
			if f == filename {
				return p
			}
		}
	}
	return nil
}
