package analysis

import (
	"fmt"
	"go/ast"
)

// determinismScope lists the package-path suffixes whose results must be
// bit-for-bit reproducible across runs: the cycle-level simulator and every
// ML/training path. The paper's figures (0.2% overhead, 93.1% zero-day
// detection) are regenerated from fixed seeds, so wall-clock reads and the
// process-global RNG are banned here.
var determinismScope = []string{
	"internal/sim",
	"internal/gan",
	"internal/perceptron",
	"internal/ml",
	"internal/runner", // the fan-out engine: seeds derive from job identity, never from time/global RNG
}

// approvedRandFuncs are the only top-level math/rand functions allowed in
// deterministic packages: constructing an explicitly-seeded generator.
var approvedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *rand.Rand; inherits its seed
}

// bannedTimeFuncs are wall-clock reads. (time.Duration arithmetic and
// constants remain fine; only sampling the real clock is nondeterministic.)
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// DeterminismAnalyzer flags wall-clock reads (time.Now/Since/Until) and
// process-global math/rand calls (rand.Intn, rand.Float64, rand.Seed, ...)
// inside the simulator and ML packages. The approved idiom is a seeded
// local generator: rand.New(rand.NewSource(seed)).
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock and global-RNG use in sim/ML packages",
		Run:  runDeterminism,
	}
}

func runDeterminism(pass *Pass) []Diagnostic {
	inScope := false
	for _, s := range determinismScope {
		if pass.Pkg.HasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pkgNameOf(pass.Pkg.Info, ident) {
			case "time":
				if bannedTimeFuncs[sel.Sel.Name] {
					diags = append(diags, Diagnostic{
						Pos:  pass.Position(call.Pos()),
						Rule: "determinism",
						Message: fmt.Sprintf("time.%s reads the wall clock; simulation/training paths must be reproducible — use the machine's cycle/instruction counters instead",
							sel.Sel.Name),
					})
				}
			case "math/rand", "math/rand/v2":
				if !approvedRandFuncs[sel.Sel.Name] {
					diags = append(diags, Diagnostic{
						Pos:  pass.Position(call.Pos()),
						Rule: "determinism",
						Message: fmt.Sprintf("rand.%s uses the process-global RNG; thread a seeded generator (rand.New(rand.NewSource(seed))) instead",
							sel.Sel.Name),
					})
				}
			}
			return true
		})
	}
	return diags
}
