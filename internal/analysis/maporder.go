package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mapOrderScope lists the package-path suffixes where map-iteration-order
// sensitivity corrupts results: feature vectors, training updates, and
// simulator statistics must not depend on Go's randomized map ordering.
var mapOrderScope = []string{
	"internal/sim",
	"internal/ml",
	"internal/gan",
	"internal/perceptron",
	"internal/featureng",
	"internal/hpc",
	"internal/detect",
}

// MapOrderAnalyzer flags `range` loops over maps whose body appends to a
// slice declared outside the loop or float-accumulates (+=, -=, *=, /=)
// into a variable declared outside the loop. Both make the result depend
// on Go's randomized map iteration order: appends reorder elements, and
// float accumulation is not associative, so even a "sum" changes across
// runs. The fix is to extract and sort the keys first.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "forbid order-dependent accumulation while ranging over a map",
		Run:  runMapOrder,
	}
}

func runMapOrder(pass *Pass) []Diagnostic {
	inScope := false
	for _, s := range mapOrderScope {
		if pass.Pkg.HasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		sorted := sortCallSites(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			diags = append(diags, mapOrderBody(pass, rng, sorted)...)
			return true
		})
	}
	return diags
}

// sortFuncs lists sort-package (and slices-package) functions whose first
// argument establishes a deterministic order for the slice passed in.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Ints": true, "Strings": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortCallSites maps each identifier object passed as the first argument
// of a sort call to the positions of those calls. The canonical maporder
// fix — collect map keys into a slice, sort it, then iterate — appends in
// map order on purpose; an append target that is sorted after the loop is
// therefore exempt.
func sortCallSites(pass *Pass, f *ast.File) map[types.Object][]token.Pos {
	sites := map[types.Object][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		funcs, ok := sortFuncs[pkgNameOf(pass.Pkg.Info, pkgIdent)]
		if !ok || !funcs[sel.Sel.Name] {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Pkg.Info.ObjectOf(arg); obj != nil {
			sites[obj] = append(sites[obj], call.Pos())
		}
		return true
	})
	return sites
}

// mapOrderBody scans one map-range body for order-dependent accumulation.
func mapOrderBody(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object][]token.Pos) []Diagnostic {
	var diags []Diagnostic
	outside := func(ident *ast.Ident) bool {
		obj := pass.Pkg.Info.ObjectOf(ident)
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// x += v with float x declared outside the loop: float addition
			// is not associative, so the sum depends on iteration order.
			if ident, ok := assign.Lhs[0].(*ast.Ident); ok &&
				isFloat(pass.TypeOf(assign.Lhs[0])) && outside(ident) {
				diags = append(diags, Diagnostic{
					Pos:  pass.Position(assign.Pos()),
					Rule: "maporder",
					Message: "float accumulation inside a map range depends on iteration order " +
						"(float addition is not associative); iterate over sorted keys instead",
				})
			}
		case token.ASSIGN, token.DEFINE:
			// s = append(s, ...) with s declared outside the loop: element
			// order follows map iteration order.
			for i, rhs := range assign.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					continue
				}
				if obj := pass.Pkg.Info.Uses[fn]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						continue
					}
				}
				if i < len(assign.Lhs) {
					if ident, ok := assign.Lhs[i].(*ast.Ident); ok && outside(ident) && !sortedAfter(pass, sorted, ident, rng) {
						diags = append(diags, Diagnostic{
							Pos:  pass.Position(assign.Pos()),
							Rule: "maporder",
							Message: "append inside a map range produces map-iteration-order-dependent " +
								"element order; iterate over sorted keys instead",
						})
					}
				}
			}
		}
		return true
	})
	return diags
}

// sortedAfter reports whether ident's object is passed to a sort call
// positioned after the range loop — the collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, sorted map[types.Object][]token.Pos, ident *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.Pkg.Info.ObjectOf(ident)
	if obj == nil {
		return false
	}
	for _, pos := range sorted[obj] {
		if pos > rng.End() {
			return true
		}
	}
	return false
}
