package analysis

import (
	"go/ast"
	"strings"
)

// bundleLoadExemptScope lists the package-path suffixes allowed to read
// detection bundles and detector files from disk. internal/engine owns the
// generation lifecycle: every deployed bundle must enter the process as a
// hash-stamped, swappable Generation so live vaccination (canary gating,
// crash-safe staging, rollback) sees it. internal/defense and
// internal/detect define the decoding primitives the engine builds on.
var bundleLoadExemptScope = []string{
	"internal/engine",
	"internal/defense",
	"internal/detect",
}

// bundleLoadBanned enumerates the raw disk-load APIs: the selector name, the
// import-path suffix that identifies the owning package, and the replacement
// named in each diagnostic.
var bundleLoadBanned = []struct {
	pkgSuffix string
	name      string
	what      string
	msg       string
}{
	{
		pkgSuffix: "internal/defense",
		name:      "LoadBundle",
		what:      "defense.LoadBundle",
		msg: "defense.LoadBundle reads a bundle from disk outside the generation lifecycle; " +
			"load through engine.Load so the bundle becomes a hash-stamped, swappable generation",
	},
	{
		pkgSuffix: "internal/defense",
		name:      "LoadBundleOrSecure",
		what:      "defense.LoadBundleOrSecure",
		msg: "defense.LoadBundleOrSecure reads a bundle from disk outside the generation lifecycle; " +
			"use engine.LoadFlaggerOrSecure (same always-secure fallback, generation-tracked load)",
	},
	{
		pkgSuffix: "internal/detect",
		name:      "Load",
		what:      "detect.Load",
		msg: "detect.Load reads a detector file outside the generation lifecycle; " +
			"load through engine.Load so the detector becomes a hash-stamped, swappable generation",
	},
}

// BundleLoadAnalyzer confines disk bundle/detector loading to
// internal/engine (plus defense and detect, which own the decoders). A
// bundle loaded anywhere else bypasses the generation ledger: it has no
// content hash in /metrics, no canary gate, and no crash-safe staging, so a
// hot swap cannot see or roll it back. Test files are exempt by
// construction: the loader skips _test.go files.
//
// The rule is transitive over the call graph (see confine.go): a helper
// that launders defense.LoadBundle behind an //evaxlint:ignore is a silent
// reacher, and every call site that can reach it is flagged. Calling
// engine.Load itself is the approved idiom and never propagates.
func BundleLoadAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "bundleload",
		Doc:  "confine disk bundle loading, even through helpers, to internal/engine",
		Run:  runBundleLoad,
	}
}

func bundleLoadExempt(pkg *Package) bool {
	for _, s := range bundleLoadExemptScope {
		if pkg.HasSuffix(s) {
			return true
		}
	}
	return false
}

// importPathHasSuffix matches suffix at a path-segment boundary, so
// "internal/detect" does not match "internal/detectx".
func importPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// bundleLoadUses scans one package for raw bundle-load references. The
// function reference itself (not just a call) counts, so passing
// defense.LoadBundle as a value is caught too.
func bundleLoadUses(pkg *Package) []useSite {
	var uses []useSite
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := pkgNameOf(pkg.Info, ident)
			if path == "" {
				return true
			}
			for _, b := range bundleLoadBanned {
				if sel.Sel.Name == b.name && importPathHasSuffix(path, b.pkgSuffix) {
					uses = append(uses, useSite{
						Pos:       sel.Pos(),
						What:      b.what,
						DirectMsg: b.msg,
					})
					break
				}
			}
			return true
		})
	}
	return uses
}

func bundleLoadSpec() confineSpec {
	return confineSpec{
		rule:   "bundleload",
		exempt: bundleLoadExempt,
		uses:   bundleLoadUses,
		verb:   "reaches a raw bundle load",
		remedy: "load bundles through engine.Load / engine.LoadFlaggerOrSecure so swaps stay generation-tracked",
	}
}

func runBundleLoad(pass *Pass) []Diagnostic {
	diags := diagsInPackage(pass, transitiveConfineDiags(pass.Prog, bundleLoadSpec()))
	if bundleLoadExempt(pass.Pkg) {
		return diags
	}
	for _, u := range bundleLoadUses(pass.Pkg) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Position(u.Pos),
			Rule:    "bundleload",
			Message: u.DirectMsg,
		})
	}
	return diags
}
