// Package analysis is evax's project-specific static-analysis suite. It
// implements a small, stdlib-only (go/ast, go/parser, go/token, go/types)
// multi-analyzer framework plus EVAX-specific rules that enforce the
// invariants the paper's reproducibility and robustness claims rest on: no
// wall-clock or global RNG in simulation/training paths (determinism), no
// map-iteration-order-dependent accumulation (maporder), no exact float
// comparison (floateq), no silently dropped errors (droppederr),
// counter-name referential integrity against the internal/sim registry
// (ctrname), no ad-hoc concurrency outside the runner engine (goroutine),
// and no crash-unsafe file writes outside internal/safeio (rawwrite).
//
// The suite is wired into CI via cmd/evaxlint; see DESIGN.md ("Static
// analysis & determinism guarantees") for the rule catalog, the approved
// idioms, and the //evaxlint:ignore suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed records that an //evaxlint:ignore directive covers the
	// finding. Analyze drops suppressed findings; AnalyzeAll keeps them
	// flagged (cmd/evaxlint -json reports them for audit tooling).
	Suppressed bool
}

// String formats the diagnostic as file:line:col: rule: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the import path, e.g. "evax/internal/sim".
	Path string
	// Files holds the parsed non-test files; Filenames is aligned with it.
	Files     []*ast.File
	Filenames []string
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// HasSuffix reports whether the package's import path ends with suffix
// (matched at a path-segment boundary, so "internal/sim" does not match
// "internal/simx").
func (p *Package) HasSuffix(suffix string) bool {
	return p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix)
}

// Program is the full set of packages loaded for one lint run, in
// dependency (topological) order.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// ctrRegistry caches the counter registry extracted from internal/sim
	// (see ctrname.go).
	ctrRegistry *counterRegistry
	// callGraph caches the whole-program call graph (see callgraph.go).
	callGraph *CallGraph
	// sup caches parsed //evaxlint:ignore directives; the interprocedural
	// rules consult them during traversal (a suppressed call site prunes
	// the edge), not just when filtering finished diagnostics.
	sup *suppressions
	// reachCache memoizes per-rule transitive reachability results
	// (see confine.go).
	reachCache map[string][]Diagnostic
}

// suppressions returns the program's parsed ignore directives, cached.
func (prog *Program) suppressions() *suppressions {
	if prog.sup == nil {
		prog.sup = collectSuppressions(prog)
	}
	return prog.sup
}

// PackageBySuffix returns the first package whose import path ends with
// suffix, or nil.
func (prog *Program) PackageBySuffix(suffix string) *Package {
	for _, p := range prog.Packages {
		if p.HasSuffix(suffix) {
			return p
		}
	}
	return nil
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Prog *Program
	Pkg  *Package
}

// Position resolves a token.Pos against the program's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Prog.Fset.Position(pos)
}

// TypeOf returns the static type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Analyzer is one lint rule.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //evaxlint:ignore comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package and returns its findings.
	Run func(*Pass) []Diagnostic
}

// Analyzers is the full evaxlint rule suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		MapOrderAnalyzer(),
		FloatEqAnalyzer(),
		DroppedErrAnalyzer(),
		CtrNameAnalyzer(),
		GoroutineAnalyzer(),
		RawWriteAnalyzer(),
		BundleLoadAnalyzer(),
		WallClockAnalyzer(),
		HotPathAnalyzer(),
	}
}

// Analyze runs every analyzer over every package of prog, drops
// suppressed findings (//evaxlint:ignore), and returns the remainder
// sorted by position.
func Analyze(prog *Program, analyzers []*Analyzer) []Diagnostic {
	all := AnalyzeAll(prog, analyzers)
	out := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// AnalyzeAll is Analyze keeping suppressed findings, with Suppressed set on
// each directive-covered diagnostic. The result is sorted by position.
func AnalyzeAll(prog *Program, analyzers []*Analyzer) []Diagnostic {
	sup := prog.suppressions()
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		pass := &Pass{Prog: prog, Pkg: pkg}
		for _, a := range analyzers {
			for _, d := range a.Run(pass) {
				d.Suppressed = sup.suppressed(d)
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// pkgNameOf returns the imported package path if ident is a package name
// (e.g. the "rand" in rand.Intn), or "".
func pkgNameOf(info *types.Info, ident *ast.Ident) string {
	if obj, ok := info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// isFloat reports whether t is a floating-point type (after unwrapping
// named types and untyped constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
