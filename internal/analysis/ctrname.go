package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// ctrNameScope lists the packages whose counter-name string literals are
// cross-checked against the internal/sim registry. A typo here compiles
// fine and only explodes at runtime (or worse, silently selects the wrong
// feature), so the check runs at lint time.
var ctrNameScope = []string{
	"internal/detect",
	"internal/featureng",
	"internal/hpc",
}

// counterNameRE matches a counter-name-shaped string literal: a group
// prefix, a dot, then a counter identifier (possibly with a gem5-style
// "::" bucket or a derived-view suffix).
var counterNameRE = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9]*\.[A-Za-z_][A-Za-z0-9_:.]*$`)

// derivedSuffixes mirrors internal/hpc's derived-view names; a reference
// "lsq.forwLoads.rate" is valid when its base name is registered.
var derivedSuffixes = map[string]bool{
	"total": true, "rate": true, "percycle": true, "burst": true,
	"presence": true, "log": true, "share": true,
}

// counterRegistry is the name set extracted from internal/sim/counters.go.
type counterRegistry struct {
	names  map[string]token.Pos
	groups map[string]bool
	dups   []Diagnostic
	found  bool
}

// CtrNameAnalyzer cross-checks counter references against the registry:
// every counter-name string literal in internal/detect, internal/featureng
// and internal/hpc must name a counter registered in the counterDefs table
// of internal/sim/counters.go, and registry names must be unique.
func CtrNameAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctrname",
		Doc:  "cross-check counter-name literals against the internal/sim registry",
		Run:  runCtrName,
	}
}

func runCtrName(pass *Pass) []Diagnostic {
	reg := pass.Prog.registry()
	var diags []Diagnostic
	if pass.Pkg.HasSuffix("internal/sim") {
		// Report duplicate registry entries at their definition sites.
		diags = append(diags, reg.dups...)
	}
	inScope := false
	for _, s := range ctrNameScope {
		if pass.Pkg.HasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope || !reg.found {
		return diags
	}
	for _, f := range pass.Pkg.Files {
		// Struct tags are BasicLits too; collect them so they are skipped.
		tags := map[*ast.BasicLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if field, ok := n.(*ast.Field); ok && field.Tag != nil {
				tags[field.Tag] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || tags[lit] {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !counterNameRE.MatchString(val) {
				return true
			}
			group := val[:strings.IndexByte(val, '.')]
			if !reg.groups[group] {
				return true
			}
			if reg.valid(val) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pass.Position(lit.Pos()),
				Rule: "ctrname",
				Message: fmt.Sprintf("counter %q is not registered in internal/sim/counters.go "+
					"(group %q exists; check the counter name)", val, group),
			})
			return true
		})
	}
	return diags
}

// valid reports whether name (or its derived-view base) is registered.
func (r *counterRegistry) valid(name string) bool {
	if _, ok := r.names[name]; ok {
		return true
	}
	// Derived view: strip a trailing ".suffix" and retry.
	if i := strings.LastIndexByte(name, '.'); i > 0 && derivedSuffixes[name[i+1:]] {
		if _, ok := r.names[name[:i]]; ok {
			return true
		}
	}
	return false
}

// registry lazily extracts the counter registry from the module's
// internal/sim package: the string literal in the first field of each
// element of the top-level `counterDefs` composite literal.
func (prog *Program) registry() *counterRegistry {
	if prog.ctrRegistry != nil {
		return prog.ctrRegistry
	}
	reg := &counterRegistry{names: map[string]token.Pos{}, groups: map[string]bool{}}
	prog.ctrRegistry = reg
	sim := prog.PackageBySuffix("internal/sim")
	if sim == nil {
		return reg
	}
	for _, f := range sim.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "counterDefs" || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				reg.found = true
				for _, elt := range cl.Elts {
					entry, ok := elt.(*ast.CompositeLit)
					if !ok || len(entry.Elts) == 0 {
						continue
					}
					lit, ok := entry.Elts[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil {
						continue
					}
					if prev, dup := reg.names[name]; dup {
						reg.dups = append(reg.dups, Diagnostic{
							Pos:  prog.Fset.Position(lit.Pos()),
							Rule: "ctrname",
							Message: fmt.Sprintf("duplicate counter name %q in registry (first registered at %s)",
								name, prog.Fset.Position(prev)),
						})
						continue
					}
					reg.names[name] = lit.Pos()
					if i := strings.IndexByte(name, '.'); i > 0 {
						reg.groups[name[:i]] = true
					}
				}
			}
		}
	}
	return reg
}
