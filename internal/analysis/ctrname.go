package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// ctrNameScope lists the packages whose counter-name string literals are
// cross-checked against the internal/sim registry. A typo here compiles
// fine and only explodes at runtime (or worse, silently selects the wrong
// feature), so the check runs at lint time.
var ctrNameScope = []string{
	"internal/detect",
	"internal/featureng",
	"internal/hpc",
}

// counterNameRE matches a counter-name-shaped string literal: a group
// prefix, a dot, then a counter identifier (possibly with a gem5-style
// "::" bucket or a derived-view suffix).
var counterNameRE = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9]*\.[A-Za-z_][A-Za-z0-9_:.]*$`)

// derivedSuffixes mirrors internal/hpc's derived-view names; a reference
// "lsq.forwLoads.rate" is valid when its base name is registered.
var derivedSuffixes = map[string]bool{
	"total": true, "rate": true, "percycle": true, "burst": true,
	"presence": true, "log": true, "share": true,
}

// counterRegistry is the registry extracted from internal/sim/counters.go:
// the CtrID constant block plus the counterNames array it indexes.
type counterRegistry struct {
	names  map[string]token.Pos
	groups map[string]bool
	// diags holds registry-shape violations (duplicates, positional
	// entries, orphan constants, misplaced NumCounters), reported when
	// linting internal/sim itself.
	diags []Diagnostic
	found bool
}

// CtrNameAnalyzer cross-checks counter references against the registry and
// enforces the registry contract itself: the CtrID constant block and the
// counterNames array in internal/sim/counters.go must stay dense and 1:1
// (every constant below NumCounters keys exactly one unique, non-empty name;
// no positional entries; NumCounters terminates the block), and every
// counter-name string literal in internal/detect, internal/featureng and
// internal/hpc must name a registered counter.
func CtrNameAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctrname",
		Doc:  "cross-check counter-name literals against the internal/sim registry",
		Run:  runCtrName,
	}
}

func runCtrName(pass *Pass) []Diagnostic {
	reg := pass.Prog.registry()
	var diags []Diagnostic
	if pass.Pkg.HasSuffix("internal/sim") {
		// Report registry-shape violations at their definition sites.
		diags = append(diags, reg.diags...)
	}
	inScope := false
	for _, s := range ctrNameScope {
		if pass.Pkg.HasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope || !reg.found {
		return diags
	}
	for _, f := range pass.Pkg.Files {
		// Struct tags are BasicLits too; collect them so they are skipped.
		tags := map[*ast.BasicLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if field, ok := n.(*ast.Field); ok && field.Tag != nil {
				tags[field.Tag] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || tags[lit] {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !counterNameRE.MatchString(val) {
				return true
			}
			group := val[:strings.IndexByte(val, '.')]
			if !reg.groups[group] {
				return true
			}
			if reg.valid(val) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pass.Position(lit.Pos()),
				Rule: "ctrname",
				Message: fmt.Sprintf("counter %q is not registered in internal/sim/counters.go "+
					"(group %q exists; check the counter name)", val, group),
			})
			return true
		})
	}
	return diags
}

// valid reports whether name (or its derived-view base) is registered.
func (r *counterRegistry) valid(name string) bool {
	if _, ok := r.names[name]; ok {
		return true
	}
	// Derived view: strip a trailing ".suffix" and retry.
	if i := strings.LastIndexByte(name, '.'); i > 0 && derivedSuffixes[name[i+1:]] {
		if _, ok := r.names[name[:i]]; ok {
			return true
		}
	}
	return false
}

// registry lazily extracts the counter registry from the module's
// internal/sim package: the CtrID constant block and the keyed entries of
// the top-level `counterNames` array literal, cross-checked for density.
func (prog *Program) registry() *counterRegistry {
	if prog.ctrRegistry != nil {
		return prog.ctrRegistry
	}
	reg := &counterRegistry{names: map[string]token.Pos{}, groups: map[string]bool{}}
	prog.ctrRegistry = reg
	sim := prog.PackageBySuffix("internal/sim")
	if sim == nil {
		return reg
	}
	var ctrConsts []*ast.Ident // CtrID constant block, in declaration order
	keyed := map[string]bool{} // constants that key a counterNames entry
	diag := func(pos token.Pos, format string, args ...interface{}) {
		reg.diags = append(reg.diags, Diagnostic{
			Pos:     prog.Fset.Position(pos),
			Rule:    "ctrname",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range sim.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				// The CtrID block declares its type on the first spec
				// (`CtrFetchCycles CtrID = iota`); later specs inherit it.
				isCtr := false
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if id, ok := vs.Type.(*ast.Ident); ok {
						isCtr = id.Name == "CtrID"
					}
					if !isCtr {
						break
					}
					ctrConsts = append(ctrConsts, vs.Names...)
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "counterNames" || len(vs.Values) != 1 {
						continue
					}
					cl, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						continue
					}
					reg.found = true
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							diag(elt.Pos(), "positional entry in counterNames; key every entry by its CtrID constant")
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							diag(kv.Key.Pos(), "counterNames key must be a CtrID constant")
							continue
						}
						keyed[key.Name] = true
						lit, ok := kv.Value.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						name, err := strconv.Unquote(lit.Value)
						if err != nil {
							continue
						}
						if name == "" {
							diag(lit.Pos(), "empty counter name for %s", key.Name)
							continue
						}
						if prev, dup := reg.names[name]; dup {
							diag(lit.Pos(), "duplicate counter name %q in registry (first registered at %s)",
								name, prog.Fset.Position(prev))
							continue
						}
						reg.names[name] = lit.Pos()
						if i := strings.IndexByte(name, '.'); i > 0 {
							reg.groups[name[:i]] = true
						}
					}
				}
			}
		}
	}
	if !reg.found || len(ctrConsts) == 0 {
		return reg
	}
	// Density: every CtrID constant below NumCounters keys a name entry,
	// and NumCounters terminates the block (orphan constants after it
	// would silently widen the counter array).
	end := -1
	for i, id := range ctrConsts {
		if id.Name == "NumCounters" {
			end = i
			break
		}
	}
	if end < 0 {
		diag(ctrConsts[0].Pos(), "CtrID constant block has no terminating NumCounters")
		end = len(ctrConsts)
	} else if end != len(ctrConsts)-1 {
		diag(ctrConsts[end].Pos(), "NumCounters must be the final CtrID constant (found %d constants after it)",
			len(ctrConsts)-1-end)
	}
	for _, id := range ctrConsts[:end] {
		if id.Name == "_" {
			continue
		}
		if !keyed[id.Name] {
			diag(id.Pos(), "CtrID constant %s has no counterNames entry (registry must stay dense and 1:1)", id.Name)
		}
	}
	return reg
}
