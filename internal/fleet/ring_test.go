package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		key := Key(fmt.Sprintf("tenant-%d", i))
		sa, sb := a.Shard(key), b.Shard(key)
		if sa != sb {
			t.Fatalf("key %d: ring instances disagree (%d vs %d)", i, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("key %d routed to shard %d, want [0,4)", i, sa)
		}
	}
	if a.Shards() != 4 {
		t.Fatalf("Shards() = %d", a.Shards())
	}
}

func TestRingRejectsBadShardCount(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewRing(n, 0); err == nil {
			t.Fatalf("NewRing(%d) accepted", n)
		}
	}
}

// TestRingGrowthMovesKeysOnlyToNewShard: vnode positions derive from the
// shard index alone, so growing the fleet adds points without moving any
// existing ones — a key either keeps its shard or lands on the new one.
// That is the property that makes resharding an incremental migration
// instead of a full reshuffle.
func TestRingGrowthMovesKeysOnlyToNewShard(t *testing.T) {
	small, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 4096
	for i := 0; i < keys; i++ {
		key := Key(fmt.Sprintf("tenant-%d", i))
		before, after := small.Shard(key), big.Shard(key)
		if before == after {
			continue
		}
		if after != 4 {
			t.Fatalf("key %d moved %d -> %d; growth may only move keys to the new shard", i, before, after)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no key moved to the new shard; ring growth is broken")
	}
	if moved > keys/2 {
		t.Fatalf("%d/%d keys moved on growth; expected roughly 1/5", moved, keys)
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, 4)
	for i := 0; i < 10000; i++ {
		rows[r.Shard(Key(fmt.Sprintf("tenant-%d", i)))]++
	}
	if skew := Skew(rows); skew > 1.15 {
		t.Fatalf("ring skew %.3f over %v; vnode placement is unbalanced", skew, rows)
	}
}

func TestKeyStable(t *testing.T) {
	if Key("tenant-a") != Key("tenant-a") {
		t.Fatal("Key not deterministic")
	}
	if Key("tenant-a") == Key("tenant-b") {
		t.Fatal("distinct tenants collided")
	}
	// The hash family is pinned — FNV-1a offset basis through the mix64
	// finalizer — so a refactor cannot silently re-route every tenant.
	if got, want := Key(""), mix64(14695981039346656037); got != want {
		t.Fatalf("Key(\"\") = %d, want %d (mixed FNV-1a offset basis)", got, want)
	}
}

func TestSkew(t *testing.T) {
	for _, tc := range []struct {
		rows []int
		want float64
	}{
		{[]int{10, 10, 10, 10}, 1.0},
		{[]int{40, 0, 0, 0}, 4.0},
		{[]int{}, 0},
		{[]int{0, 0}, 0},
	} {
		if got := Skew(tc.rows); got != tc.want {
			t.Errorf("Skew(%v) = %v, want %v", tc.rows, got, tc.want)
		}
	}
}
