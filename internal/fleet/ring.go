// Package fleet scales the online detection service from one evaxd process
// to a sharded fleet: a key-routed shard router (deterministic FNV hash
// ring), a coordinator that tracks shard membership, health and fleet-wide
// generation swaps, and a typed publish/subscribe control plane carrying
// config updates, verdict aggregates and shard stats frames — modeled on
// EVE's pillar pubsub shape, but kept under this repo's replay-digest
// determinism discipline. The golden invariant mirrors runner's worker-count
// independence: replaying a recorded corpus through the fleet produces a
// bit-identical merged verdict digest at ANY shard count, because routing is
// a pure function of (key, ring), every score depends only on its row, and
// the merged digest folds verdicts in corpus order. See DESIGN.md §16.
package fleet

import (
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard on the ring. More
// replicas smooth the key distribution (lower routing skew) at the cost of a
// larger sorted point table; 64 keeps worst-case skew under ~15% for small
// fleets while lookups stay a cheap binary search.
const DefaultReplicas = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is the deterministic key→shard router: shards × replicas virtual
// nodes placed by FNV-1a hashes of derived vnode names (the same fold Key
// applies to tenants), sorted once at construction. Routing a key walks to
// its successor point. The placement is a pure function of (shards,
// replicas) — independent of registration order, worker count, or any
// runtime state — so two processes that agree on the shard count agree on
// every route.
type Ring struct {
	shards   int
	replicas int
	points   []ringPoint
}

// NewRing builds the ring for a fleet of shards. replicas <= 0 uses
// DefaultReplicas.
func NewRing(shards, replicas int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("fleet: ring needs a positive shard count, got %d", shards)
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		shards:   shards,
		replicas: replicas,
		points:   make([]ringPoint, 0, shards*replicas),
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			// Vnodes must span the same full 64-bit range keys do (a 63-bit
			// derivation like runner.DeriveSeed would park every point in the
			// lower half of the ring, wrapping half the keyspace onto one
			// shard). Raw FNV-1a of near-identical vnode names also clusters
			// (weak avalanche leaves arc ownership off by 10×), which is why
			// Key finalizes its fold with mix64 — the placement is a pure
			// function of (shards, replicas).
			h := Key(fmt.Sprintf("fleet/ring/%d/%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between two shards' points would make the
		// route depend on sort stability; break it by shard index so the
		// ring stays a pure function of (shards, replicas).
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring routes over.
func (r *Ring) Shards() int { return r.shards }

// Shard routes a key to its shard: the owner of the first virtual node at or
// after the key's position, wrapping at the top of the ring.
func (r *Ring) Shard(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// mix64 is the splitmix64 finalizer: a fixed bijective avalanche over
// uint64, used to spread structured hash inputs uniformly around the ring.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Key maps a tenant/connection name to its position on the ring: the FNV-1a
// fold finalized by mix64, so short names with shared prefixes still spread
// uniformly. Routing composes Key and Shard: Shard(Key(tenant)).
func Key(tenant string) uint64 {
	const (
		fnvOffset uint64 = 14695981039346656037
		fnvPrime  uint64 = 1099511628211
	)
	h := fnvOffset
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// Skew summarizes a routing distribution: the largest per-shard load divided
// by the mean load (1.0 = perfectly even). Zero total load reports 0.
func Skew(rows []int) float64 {
	if len(rows) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, n := range rows {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(rows)) / float64(total)
}
