package fleet

import (
	"fmt"
	"time"

	"evax/internal/dataset"
	"evax/internal/engine"
	"evax/internal/runner"
	"evax/internal/serve"
)

// DefaultTenants is the tenant fan-out Replay uses when ReplayOptions leaves
// Tenants zero: enough concurrent streams to exercise routing at the shard
// counts the golden gate sweeps (1, 2, 4).
const DefaultTenants = 8

// ReplayOptions parameterizes a fleet replay.
type ReplayOptions struct {
	// Tenants is how many concurrent client streams the corpus is
	// partitioned across (<= 0 means DefaultTenants, capped at the row
	// count). Rows are dealt round-robin: row i belongs to tenant
	// i % Tenants, preserving corpus order within each tenant.
	Tenants int
	// Seed varies the tenant routing keys (and nothing else): a different
	// seed lands tenants on different shards, yet the merged digest must
	// not move — that is the invariant under test.
	Seed int64
	// AfterSend, when non-nil, runs on the tenant's sender goroutine after
	// each accepted Send with the tenant index and its sent-so-far count.
	// Tests use it to trigger a fleet-wide swap deterministically
	// mid-replay.
	AfterSend func(tenant, sent int)
}

// ReplayReport summarizes a fleet replay. Hash is the merged verdict digest:
// every verdict's (score, flag) folded in corpus order — the same fold
// engine canaries and serve.ReplayGeneration compute — so two fleet replays
// agree iff their verdicts are bit-identical, regardless of shard count,
// tenant count, or routing seed.
type ReplayReport struct {
	Rows    int    `json:"rows"`
	Flagged int    `json:"flagged"`
	Tenants int    `json:"tenants"`
	Shards  int    `json:"shards"`
	Seed    int64  `json:"seed"`
	Hash    uint64 `json:"-"`
	// ShardRows[i] is how many rows the ring routed to shard i.
	ShardRows []int `json:"shard_rows"`
	// ShardRates[i] is shard i's scoring rate over the replay (rows/sec).
	ShardRates []float64 `json:"shard_rates"`
	// Skew is max shard load over mean shard load (1.0 = perfectly even).
	Skew float64 `json:"skew"`
	// MeanRate is the fleet-wide scoring rate (rows/sec).
	MeanRate float64 `json:"mean_rate"`
}

// HashHex renders the merged digest the way reports carry it.
func (r ReplayReport) HashHex() string { return fmt.Sprintf("%016x", r.Hash) }

// Replay streams a recorded corpus through the fleet — tenants partition the
// rows, the ring routes each tenant to its shard, every shard scores its
// share through the full framing protocol — and returns the merged verdict
// digest. Zero loss is enforced, not assumed: any reject, missing verdict,
// or per-connection accounting mismatch fails the replay rather than
// silently perturbing the digest.
func (f *Fleet) Replay(samples []dataset.Sample, opt ReplayOptions) (ReplayReport, error) {
	rep := ReplayReport{Seed: opt.Seed, Shards: f.Shards()}
	if len(samples) == 0 {
		return rep, nil
	}
	for i, s := range samples {
		if len(s.Raw) != f.rawDim {
			return rep, fmt.Errorf("fleet: replay row %d has %d counters, fleet streams %d", i, len(s.Raw), f.rawDim)
		}
	}
	tenants := opt.Tenants
	if tenants <= 0 {
		tenants = DefaultTenants
	}
	if tenants > len(samples) {
		tenants = len(samples)
	}
	rep.Tenants = tenants

	// Deal rows to tenants and route each tenant to its shard. The key is
	// seed-varied so different runs exercise different placements, but for
	// a given (seed, shards) the route is a pure function.
	rows := make([][]int, tenants)
	for i := range samples {
		t := i % tenants
		rows[t] = append(rows[t], i)
	}
	shardOf := make([]int, tenants)
	addrs := f.Addrs()
	for t := range shardOf {
		key := fmt.Sprintf("tenant-%016x", uint64(runner.DeriveSeed("fleet/tenant", t, opt.Seed)))
		shardOf[t] = f.ring.Shard(Key(key))
	}

	// scores/flags are written at disjoint indices (each row belongs to
	// exactly one tenant), so tenant goroutines never race.
	scores := make([]float64, len(samples))
	flags := make([]bool, len(samples))
	start := time.Now()
	_, err := runner.MapErr(runner.Options{Jobs: tenants}, tenants, func(t int) (struct{}, error) {
		return struct{}{}, f.streamTenant(t, addrs[shardOf[t]], shardOf[t], samples, rows[t], scores, flags, opt.AfterSend)
	})
	if err != nil {
		return rep, err
	}
	elapsed := time.Since(start).Seconds()

	// Merge in corpus order; shard attribution recomputes the pure route.
	d := engine.NewDigest()
	rep.ShardRows = make([]int, f.Shards())
	shardFlagged := make([]int, f.Shards())
	shardDigests := make([]engine.Digest, f.Shards())
	for i := range shardDigests {
		shardDigests[i] = engine.NewDigest()
	}
	for i := range samples {
		d.Add(scores[i], flags[i])
		sh := shardOf[i%tenants]
		rep.ShardRows[sh]++
		if flags[i] {
			shardFlagged[sh]++
		}
		shardDigests[sh].Add(scores[i], flags[i])
	}
	rep.Rows = d.Rows()
	rep.Flagged = d.Flagged()
	rep.Hash = d.Sum()
	rep.Skew = Skew(rep.ShardRows)
	rep.ShardRates = make([]float64, f.Shards())
	if elapsed > 0 {
		rep.MeanRate = float64(rep.Rows) / elapsed
		for i, n := range rep.ShardRows {
			rep.ShardRates[i] = float64(n) / elapsed
		}
	}
	for i := range shardDigests {
		f.bus.Verdicts.Publish(VerdictAggregate{
			Shard:   i,
			Rows:    rep.ShardRows[i],
			Flagged: shardFlagged[i],
			Digest:  fmt.Sprintf("%016x", shardDigests[i].Sum()),
		})
	}
	return rep, nil
}

// streamTenant drives one tenant's connection: stream its rows (Seq = global
// corpus index), bye, then reconcile the returned verdicts against exactly-
// once accounting. The receiver runs concurrently with the sender so verdict
// backpressure never deadlocks the stream.
func (f *Fleet) streamTenant(t int, addr string, shard int, samples []dataset.Sample, rows []int, scores []float64, flags []bool, afterSend func(tenant, sent int)) error {
	if len(rows) == 0 {
		return nil
	}
	cl, err := serve.Dial(addr, f.rawDim)
	if err != nil {
		return fmt.Errorf("fleet: tenant %d dial shard %d: %w", t, shard, err)
	}
	//evaxlint:ignore droppederr the stream already ended in Bye/drain; a close failure loses nothing
	defer cl.Close()

	recvErr := make(chan error, 1)
	go func() {
		st, verdicts, rejects, err := cl.DrainStats()
		if err != nil {
			recvErr <- fmt.Errorf("fleet: tenant %d drain: %w", t, err)
			return
		}
		if len(rejects) > 0 {
			recvErr <- fmt.Errorf("fleet: tenant %d: shard %d rejected %d samples (first: seq %d code %d %q)",
				t, shard, len(rejects), rejects[0].Seq, rejects[0].Code, rejects[0].Msg)
			return
		}
		if len(verdicts) != len(rows) || st.Scored != uint64(len(rows)) {
			recvErr <- fmt.Errorf("fleet: tenant %d: sent %d rows, got %d verdicts (conn scored %d)",
				t, len(rows), len(verdicts), st.Scored)
			return
		}
		if st.Shard != shard {
			recvErr <- fmt.Errorf("fleet: tenant %d: routed to shard %d but stats frame says shard %d", t, shard, st.Shard)
			return
		}
		seen := make(map[uint64]bool, len(verdicts))
		for _, v := range verdicts {
			if v.Seq >= uint64(len(samples)) || seen[v.Seq] {
				recvErr <- fmt.Errorf("fleet: tenant %d: bad or duplicate verdict seq %d", t, v.Seq)
				return
			}
			seen[v.Seq] = true
			scores[v.Seq] = v.Score
			flags[v.Seq] = v.Flagged()
		}
		recvErr <- nil
	}()

	var instrStart uint64
	for sent, idx := range rows {
		s := &samples[idx]
		if err := cl.Send(serve.SampleHeader{Seq: uint64(idx), InstrStart: instrStart}, s.Instructions, s.Cycles, s.Raw); err != nil {
			return fmt.Errorf("fleet: tenant %d send row %d: %w", t, idx, err)
		}
		instrStart += s.Instructions
		if afterSend != nil {
			afterSend(t, sent+1)
		}
	}
	if err := cl.Bye(); err != nil {
		return fmt.Errorf("fleet: tenant %d bye: %w", t, err)
	}
	return <-recvErr
}
