package fleet

import (
	"testing"
)

func TestTopicPublishOrderAndSeq(t *testing.T) {
	top := NewTopic[int]("t")
	if top.Name() != "t" {
		t.Fatalf("Name() = %q", top.Name())
	}
	a, err := top.Subscribe("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := top.Subscribe("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if seq := top.Publish(i * 10); seq != uint64(i+1) {
			t.Fatalf("publish %d assigned seq %d", i, seq)
		}
	}
	if top.Seq() != 5 {
		t.Fatalf("Seq() = %d", top.Seq())
	}
	for _, sub := range []*Sub[int]{a, b} {
		for i := 0; i < 5; i++ {
			env := <-sub.C()
			if env.Seq != uint64(i+1) || env.Val != i*10 {
				t.Fatalf("sub %q envelope %d: %+v", sub.Name(), i, env)
			}
		}
		if sub.Shed() != 0 {
			t.Fatalf("sub %q shed %d with room to spare", sub.Name(), sub.Shed())
		}
	}
	top.Close()
	if _, ok := <-a.C(); ok {
		t.Fatal("channel still open after Close")
	}
}

func TestTopicShedOnOverflow(t *testing.T) {
	top := NewTopic[string]("t")
	slow, err := top.Subscribe("slow", 2)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := top.Subscribe("fast", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		top.Publish("v") // never blocks, even with nobody draining
	}
	if slow.Shed() != 3 {
		t.Fatalf("slow shed %d, want 3", slow.Shed())
	}
	if fast.Shed() != 0 {
		t.Fatalf("fast shed %d, want 0", fast.Shed())
	}
	// The slow subscriber kept the OLDEST envelopes: overflow sheds the new
	// publish, it never evicts queued history.
	for want := uint64(1); want <= 2; want++ {
		if env := <-slow.C(); env.Seq != want {
			t.Fatalf("slow queue head seq %d, want %d", env.Seq, want)
		}
	}
	top.Close()
}

func TestTopicCancelAndClose(t *testing.T) {
	top := NewTopic[int]("t")
	s, err := top.Subscribe("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	s.Cancel() // idempotent
	if _, ok := <-s.C(); ok {
		t.Fatal("cancelled channel still open")
	}
	if seq := top.Publish(1); seq != 1 {
		t.Fatalf("publish after cancel: seq %d", seq)
	}

	top.Close()
	top.Close() // idempotent
	if seq := top.Publish(2); seq != 0 {
		t.Fatalf("publish on closed topic returned seq %d", seq)
	}
	if _, err := top.Subscribe("late", 0); err == nil {
		t.Fatal("subscribe on closed topic accepted")
	}
	s.Cancel() // cancelling after close must not double-close the channel
}
